// google-benchmark microbenchmarks of the simulator's own hot paths.
//
// These do not reproduce paper results; they keep the simulator honest:
// event-queue throughput bounds how long the figure benches take, and the
// per-component costs document where simulation time goes.
#include <benchmark/benchmark.h>

#include "config/platform.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "hw/interrupt_controller.h"
#include "kernel/goodness_scheduler.h"
#include "kernel/irq_pipeline.h"
#include "kernel/o1_scheduler.h"
#include "metrics/histogram.h"
#include "rt/realfeel_test.h"
#include "sim/engine.h"
#include "telemetry/sampler.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Time t = 0;
  for (auto _ : state) {
    q.schedule_at(t += 10, [] {});
    if (q.size() > 1000) q.pop().second();
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_EventQueueCancel(benchmark::State& state) {
  // Steady-state schedule+cancel against a queue held at a fixed live
  // depth — the simulator's dominant pattern (every preemption cancels a
  // segment-completion event while other events stay pending).
  const auto depth = static_cast<std::size_t>(state.range(0));
  sim::EventQueue q;
  sim::Time t = 0;
  for (std::size_t i = 0; i < depth; ++i) q.schedule_at(t += 10, [] {});
  for (auto _ : state) {
    const auto id = q.schedule_at(t += 10, [] {});
    benchmark::DoNotOptimize(q.cancel(id));
  }
}
BENCHMARK(BM_EventQueueCancel)->Arg(1'000)->Arg(100'000);

void BM_RngBoundedPareto(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bounded_pareto(1.0, 1e6, 1.1));
  }
}
BENCHMARK(BM_RngBoundedPareto);

void BM_HistogramAdd(benchmark::State& state) {
  metrics::LatencyHistogram h;
  sim::Rng rng(1);
  for (auto _ : state) {
    h.add(rng.uniform_duration(0, 100_ms));
  }
}
BENCHMARK(BM_HistogramAdd);

void BM_SchedulerPick(benchmark::State& state) {
  const bool o1 = state.range(0) != 0;
  const int ntasks = static_cast<int>(state.range(1));
  auto cfg = o1 ? config::KernelConfig::redhawk_1_4()
                : config::KernelConfig::vanilla_2_4_20();
  std::unique_ptr<kernel::Scheduler> s;
  if (o1) {
    s = std::make_unique<kernel::O1Scheduler>(cfg, sim::Rng(1));
  } else {
    s = std::make_unique<kernel::GoodnessScheduler>(cfg, sim::Rng(1));
  }
  s->init(1);
  std::vector<kernel::Task> tasks(static_cast<std::size_t>(ntasks));
  int pid = 1;
  for (auto& t : tasks) {
    t.pid = pid++;
    t.user_affinity = t.effective_affinity = hw::CpuMask(1);
    t.state = kernel::TaskState::kReady;
    t.timeslice_remaining = 60_ms;
  }
  for (auto& t : tasks) s->enqueue(t, 0);
  for (auto _ : state) {
    kernel::Task* t = s->pick_next(0);
    benchmark::DoNotOptimize(t);
    if (t != nullptr) {
      t->state = kernel::TaskState::kReady;
      s->enqueue(*t, 0);
    }
  }
}
BENCHMARK(BM_SchedulerPick)
    ->Args({0, 4})
    ->Args({0, 64})
    ->Args({1, 4})
    ->Args({1, 64});

void BM_SimulatedSecondUnderStressKernel(benchmark::State& state) {
  // Wall-clock cost of one simulated second of the Fig-5 scenario.
  for (auto _ : state) {
    state.PauseTiming();
    config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                       config::KernelConfig::vanilla_2_4_20(), 5);
    workload::StressKernel{}.install(p);
    rt::RealfeelTest::Params rp;
    rp.samples = ~std::uint64_t{0};
    rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);
    p.boot();
    test.start();
    state.ResumeTiming();
    p.run_for(1_s);
    benchmark::DoNotOptimize(p.engine().events_executed());
  }
}
BENCHMARK(BM_SimulatedSecondUnderStressKernel)->Unit(benchmark::kMillisecond);

void BM_SimulatedSecondWithOobStage(benchmark::State& state) {
  // The same scenario with the realfeel reader and its RTC line adopted
  // onto the out-of-band stage. bench_trend.py divides the cpu-time delta
  // against the plain bench above by the dispatch counter to record
  // oob_dispatch_ns — what one oob delivery costs the simulator.
  std::uint64_t events = 0;
  std::uint64_t dispatches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                       config::KernelConfig::vanilla_2_4_20(), 5);
    workload::StressKernel{}.install(p);
    rt::RealfeelTest::Params rp;
    rp.samples = ~std::uint64_t{0};
    rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);
    kernel::Kernel& k = p.kernel();
    k.set_mechanism(kernel::MechanismKind::kOob);
    auto& oob = static_cast<kernel::OobPipeline&>(k.pipeline());
    oob.adopt_task(test.task());
    oob.adopt_irq(p.rtc_device().irq());
    p.boot();
    test.start();
    state.ResumeTiming();
    p.run_for(1_s);
    events += p.engine().events_executed();
    dispatches += oob.dispatches();
    benchmark::DoNotOptimize(p.engine().events_executed());
  }
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
  state.counters["dispatches"] = benchmark::Counter(
      static_cast<double>(dispatches), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SimulatedSecondWithOobStage)->Unit(benchmark::kMillisecond);

void BM_SimulatedSecondWithFaultInjector(benchmark::State& state) {
  // Same scenario with a fault::Injector attached. Arg 0: an empty plan —
  // the contract is that this is free (no hooks, no RNG draws), and
  // bench_trend.py gates on the per-event delta against the bench above.
  // Arg 1: the hostile-device plan, to document what a live plan costs.
  const bool hostile = state.range(0) != 0;
  fault::FaultPlan plan;
  if (hostile) {
    fault::FaultSpec storm;
    storm.kind = fault::FaultKind::kIrqStorm;
    storm.irq = hw::kIrqNic;
    storm.rate_hz = 10'000.0;
    plan.faults.push_back(storm);
    fault::FaultSpec delay;
    delay.kind = fault::FaultKind::kDeviceDelay;
    delay.device = "disk";
    delay.probability = 0.25;
    delay.min_ns = 2_ms;
    delay.max_ns = 8_ms;
    plan.faults.push_back(delay);
  }
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                       config::KernelConfig::vanilla_2_4_20(), 5);
    workload::StressKernel{}.install(p);
    rt::RealfeelTest::Params rp;
    rp.samples = ~std::uint64_t{0};
    rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);
    p.boot();
    test.start();
    fault::Injector injector(p, plan, 5);
    if (!plan.empty()) injector.arm(p.engine().now() + 1_s);
    state.ResumeTiming();
    p.run_for(1_s);
    events += p.engine().events_executed();
    benchmark::DoNotOptimize(p.engine().events_executed());
  }
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SimulatedSecondWithFaultInjector)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedSecondWithTelemetry(benchmark::State& state) {
  // The stress-kernel second with the sampler and the flight recorder both
  // live. bench_trend.py gates the per-event delta against the plain bench
  // above: observability must stay under 2% of the hot path.
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                       config::KernelConfig::vanilla_2_4_20(), 5);
    workload::StressKernel{}.install(p);
    rt::RealfeelTest::Params rp;
    rp.samples = ~std::uint64_t{0};
    rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);
    p.engine().flight_recorder().enable(4096);
    telemetry::Sampler sampler(p.engine(), p.engine().telemetry());
    p.boot();
    test.start();
    sampler.start(10_ms);
    state.ResumeTiming();
    p.run_for(1_s);
    events += p.engine().events_executed();
    benchmark::DoNotOptimize(p.engine().events_executed());
    state.PauseTiming();
    sampler.stop();
    benchmark::DoNotOptimize(sampler.points().size());
    state.ResumeTiming();
  }
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(events),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SimulatedSecondWithTelemetry)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

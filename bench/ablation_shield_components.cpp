// Ablation A: which shield component buys what?
//
// The paper's /proc/shield interface controls processes, device interrupts
// and the local timer independently (§3). This bench reruns the Fig-6
// scenario (realfeel @2048 Hz under stress-kernel on RedHawk 1.4) with each
// subset of shields enabled and reports the latency profile. The eight
// subsets are the registry's abl-shield-* scenarios.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "metrics/report.h"
#include "scenario_bench.h"

using namespace sim::literals;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  bench::print_header(
      "Ablation A: shield components (Fig-6 scenario, RedHawk 1.4, "
      "realfeel on CPU 1)");
  std::printf("samples per case: %llu\n\n",
              static_cast<unsigned long long>(opt.scaled(400'000)));

  const auto specs = bench::specs_for(
      {"abl-shield-none", "abl-shield-procs", "abl-shield-irqs",
       "abl-shield-ltmr", "abl-shield-procs-irqs", "abl-shield-procs-ltmr",
       "abl-shield-irqs-ltmr", "abl-shield-full"});
  auto runner = bench::make_runner(opt);
  const auto results = runner.run_batch(specs, opt.seed);

  std::printf("  %-32s %12s %12s %12s\n", "configuration", "max", "p99.9",
              "<0.1ms");
  std::printf("  %s\n", std::string(72, '-').c_str());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& lat = results[i].probe.primary;
    std::printf("  %-32s %12s %12s %10.4f%%\n", specs[i].title.c_str(),
                sim::format_duration(lat.max()).c_str(),
                sim::format_duration(lat.percentile(0.999)).c_str(),
                100.0 * lat.fraction_below(100_us));
  }
  std::printf(
      "\nExpected shape: each component removes a jitter source; the full\n"
      "shield (paper Fig 6) is the only configuration with a sub-millisecond\n"
      "worst case under load.\n");
  return bench::exit_code(bench::all_complete(results));
}

// Ablation A: which shield component buys what?
//
// The paper's /proc/shield interface controls processes, device interrupts
// and the local timer independently (§3). This bench reruns the Fig-6
// scenario (realfeel @2048 Hz under stress-kernel on RedHawk 1.4) with each
// subset of shields enabled and reports the latency profile.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "config/platform.h"
#include "metrics/report.h"
#include "rt/realfeel_test.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

namespace {

struct Case {
  const char* name;
  bool procs;
  bool irqs;
  bool ltmr;
};

struct Row {
  const char* name;
  sim::Duration max;
  sim::Duration p999;
  double below_100us;
};

Row run_case(const Case& c, std::uint64_t samples, std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::redhawk_1_4(), seed);
  workload::StressKernel{}.install(p);

  rt::RealfeelTest::Params rp;
  rp.samples = samples;
  rp.affinity = hw::CpuMask::single(1);
  rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);

  p.boot();
  // RTC interrupt bound to CPU 1 in every case (the user intent).
  p.kernel().procfs().write("/proc/irq/8/smp_affinity", "2");
  auto& s = p.shield();
  if (c.procs) s.set_process_shield(hw::CpuMask::single(1));
  if (c.irqs) s.set_irq_shield(hw::CpuMask::single(1));
  if (c.ltmr) s.set_ltmr_shield(hw::CpuMask::single(1));
  test.start();

  p.run_for(sim::from_seconds(static_cast<double>(samples) / 2048.0 * 2) + 5_s);
  return Row{c.name, test.latencies().max(), test.latencies().percentile(0.999),
             100.0 * test.latencies().fraction_below(100_us)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t samples = opt.scaled(400'000);

  bench::print_header(
      "Ablation A: shield components (Fig-6 scenario, RedHawk 1.4, "
      "realfeel on CPU 1)");
  std::printf("samples per case: %llu\n\n",
              static_cast<unsigned long long>(samples));

  const Case cases[] = {
      {"no shield", false, false, false},
      {"procs only", true, false, false},
      {"irqs only", false, true, false},
      {"ltmr only", false, false, true},
      {"procs+irqs", true, true, false},
      {"procs+ltmr", true, false, true},
      {"irqs+ltmr", false, true, true},
      {"procs+irqs+ltmr (full shield)", true, true, true},
  };

  std::printf("  %-32s %12s %12s %12s\n", "configuration", "max", "p99.9",
              "<0.1ms");
  std::printf("  %s\n", std::string(72, '-').c_str());
  const auto rows = bench::SweepRunner{}.map<Row>(
      std::size(cases),
      [&](std::size_t i) { return run_case(cases[i], samples, opt.seed); });
  for (const Row& r : rows) {
    std::printf("  %-32s %12s %12s %10.4f%%\n", r.name,
                sim::format_duration(r.max).c_str(),
                sim::format_duration(r.p999).c_str(), r.below_100us);
  }
  std::printf(
      "\nExpected shape: each component removes a jitter source; the full\n"
      "shield (paper Fig 6) is the only configuration with a sub-millisecond\n"
      "worst case under load.\n");
  return 0;
}

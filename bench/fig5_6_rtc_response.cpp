// Figures 5 & 6: realfeel RTC interrupt response under the stress-kernel
// load.
//
//  Fig 5: kernel.org 2.4.20 (no low-latency, no preemption) — the paper
//         measured max latency 92.3 ms with 99.140% of samples < 0.1 ms.
//  Fig 6: RedHawk 1.4 with CPU 1 shielded, RTC IRQ + realfeel bound to
//         CPU 1 — the paper measured max latency 0.565 ms.
//
// The paper ran 60,000,000 samples (~8 h at 2048 Hz); the default here is
// smaller for runtime, with the contended-lock probability documented in
// DESIGN.md calibrated for this scale. Use --paper for longer runs.
#include <cstdio>

#include "bench_util.h"
#include "config/platform.h"
#include "kernel/trace_export.h"
#include "metrics/report.h"
#include "rt/realfeel_test.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

namespace {

void run_case(const std::string& title, const config::KernelConfig& kcfg,
              bool shield_cpu1, std::uint64_t samples,
              const bench::Options& opt, std::uint64_t seed,
              const std::string& tag) {
  bench::print_subheader(title);

  config::Platform p(config::MachineConfig::dual_p3_xeon_933(), kcfg, seed);
  workload::StressKernel{}.install(p);
  if (opt.trace) p.engine().chain_tracer().enable();

  rt::RealfeelTest::Params rp;
  rp.rate_hz = 2048;
  rp.samples = samples;
  if (shield_cpu1) rp.affinity = hw::CpuMask::single(1);
  rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);

  p.boot();
  if (shield_cpu1) {
    p.shield().dedicate_cpu(1, test.task(), p.rtc_device().irq());
  }
  test.start();

  // 2048 Hz → samples/2048 seconds of simulated time, plus margin.
  const sim::Duration horizon =
      sim::from_seconds(static_cast<double>(samples) / 2048.0 * 1.5) + 5_s;
  p.run_for(horizon);

  if (!test.done()) {
    std::printf("WARNING: only %llu/%llu samples collected\n",
                static_cast<unsigned long long>(test.collected()),
                static_cast<unsigned long long>(samples));
  }
  const auto thresholds = metrics::figure5_thresholds();
  std::fputs(metrics::cumulative_bucket_table(test.latencies(), thresholds)
                 .c_str(),
             stdout);
  std::fputs(metrics::ascii_histogram(test.latencies()).c_str(), stdout);

  if (opt.trace) {
    if (test.worst_chain()) {
      std::printf("\nworst-sample decomposition:\n%s",
                  test.worst_chain()->format().c_str());
    } else {
      std::printf("\nworst-sample decomposition: no chain captured\n");
    }
    if (!opt.trace_json.empty()) {
      std::vector<kernel::NamedChain> chains;
      if (test.worst_chain()) {
        chains.push_back(kernel::NamedChain{title, *test.worst_chain()});
      }
      const std::string path = opt.trace_json + "." + tag + ".json";
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        std::fputs(kernel::latency_report_json(p.kernel(), chains).c_str(), f);
        std::fclose(f);
        std::printf("latency report written to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t samples = opt.scaled(2'000'000);

  bench::print_header(
      "Figures 5-6: RTC interrupt response (realfeel @2048 Hz, "
      "stress-kernel load)");
  std::printf("samples per configuration: %llu (paper: 60,000,000)\n",
              static_cast<unsigned long long>(samples));

  run_case("Figure 5: kernel.org 2.4.20",
           config::KernelConfig::vanilla_2_4_20(),
           /*shield_cpu1=*/false, samples, opt, opt.seed, "fig5");

  run_case("Figure 6: RedHawk 1.4, CPU 1 shielded (procs+irqs+ltmr)",
           config::KernelConfig::redhawk_1_4(),
           /*shield_cpu1=*/true, samples, opt, opt.seed + 1, "fig6");

  std::printf(
      "\nPaper reference: Fig5 max 92.3 ms (99.140%% < 0.1 ms); "
      "Fig6 max 0.565 ms (99.99989%% < 0.1 ms)\n");
  return 0;
}

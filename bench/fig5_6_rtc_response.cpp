// Figures 5 & 6: realfeel RTC interrupt response under the stress-kernel
// load.
//
//  Fig 5: kernel.org 2.4.20 (no low-latency, no preemption) — the paper
//         measured max latency 92.3 ms with 99.140% of samples < 0.1 ms.
//  Fig 6: RedHawk 1.4 with CPU 1 shielded, RTC IRQ + realfeel bound to
//         CPU 1 — the paper measured max latency 0.565 ms.
//
// The paper ran 60,000,000 samples (~8 h at 2048 Hz); the default here is
// smaller for runtime, with the contended-lock probability documented in
// DESIGN.md calibrated for this scale. Use --paper for longer runs.
//
// The scenarios are registry entries fig5/fig6; --trace re-runs them with
// runner hooks (which bypass the result cache) to capture the worst-sample
// latency chain.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernel/trace_export.h"
#include "scenario_bench.h"
#include "sim/rng.h"

namespace {

struct TraceCapture {
  std::string text;    ///< worst-sample decomposition, ready to print
  std::string report;  ///< latency_report_json payload (may be empty)
};

config::ScenarioRunner::Hooks trace_hooks(const std::string& title,
                                          TraceCapture& out) {
  config::ScenarioRunner::Hooks hooks;
  hooks.configured = [](config::Platform& p) {
    p.engine().chain_tracer().enable();
  };
  hooks.finished = [&out, title](config::Platform& p, rt::Probe& probe) {
    if (probe.worst_chain()) {
      out.text = "\nworst-sample decomposition:\n" +
                 probe.worst_chain()->format();
    } else {
      out.text = "\nworst-sample decomposition: no chain captured\n";
    }
    std::vector<kernel::NamedChain> chains;
    if (probe.worst_chain()) {
      chains.push_back(kernel::NamedChain{title, *probe.worst_chain()});
    }
    out.report = kernel::latency_report_json(p.kernel(), chains);
  };
  return hooks;
}

void write_report(const TraceCapture& cap, const std::string& path) {
  if (path.empty()) return;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fputs(cap.report.c_str(), f);
    std::fclose(f);
    std::printf("latency report written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t samples = opt.scaled(2'000'000);

  bench::print_header(
      "Figures 5-6: RTC interrupt response (realfeel @2048 Hz, "
      "stress-kernel load)");
  std::printf("samples per configuration: %llu (paper: 60,000,000)\n",
              static_cast<unsigned long long>(samples));

  const auto specs = bench::specs_for({"fig5", "fig6"});
  auto runner = bench::make_runner(opt);

  std::vector<config::ScenarioResult> results;
  if (opt.trace) {
    // Hooks need live Platform/Probe state, so trace runs are serial and
    // uncached; the default path below stays parallel.
    const char* tags[] = {"fig5", "fig6"};
    for (std::size_t i = 0; i < specs.size(); ++i) {
      TraceCapture cap;
      results.push_back(runner.run(specs[i],
                                   sim::derive_seed(opt.seed, specs[i].name),
                                   trace_hooks(specs[i].title, cap)));
      std::fputs(results[i].render(specs[i]).c_str(), stdout);
      std::fputs(cap.text.c_str(), stdout);
      if (!opt.trace_json.empty()) {
        write_report(cap, opt.trace_json + "." + tags[i] + ".json");
      }
    }
  } else {
    results = runner.run_batch(specs, opt.seed);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      std::fputs(results[i].render(specs[i]).c_str(), stdout);
    }
  }

  std::printf(
      "\nPaper reference: Fig5 max 92.3 ms (99.140%% < 0.1 ms); "
      "Fig6 max 0.565 ms (99.99989%% < 0.1 ms)\n");
  return bench::exit_code(bench::all_complete(results));
}

// Figures 1-4: execution determinism of a CPU-bound SCHED_FIFO loop under
// the scp + disknoise interrupt load (§5).
//
//  Fig 1: kernel.org 2.4.20, hyperthreading on  — paper: 26.17% jitter
//  Fig 2: RedHawk 1.4, shielded CPU             — paper:  1.87% jitter
//  Fig 3: RedHawk 1.4, unshielded CPU           — paper: 14.82% jitter
//  Fig 4: kernel.org 2.4.20, hyperthreading off — paper: 13.15% jitter
//
// Jitter = (worst loop time - ideal loop time) / ideal.
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "config/platform.h"
#include "metrics/report.h"
#include "rt/determinism_test.h"
#include "workload/disk_noise.h"
#include "workload/scp_copy.h"

using namespace sim::literals;

namespace {

struct CaseResult {
  std::string title;
  sim::Duration ideal;
  sim::Duration max;
};

CaseResult run_case(const std::string& title, const config::KernelConfig& kcfg,
                    std::optional<bool> ht_override, bool shield_cpu,
                    int iterations, std::uint64_t seed) {
  bench::print_subheader(title);

  config::Platform p(config::MachineConfig::dual_p4_xeon_1400(), kcfg, seed,
                     ht_override);
  workload::ScpCopy{}.install(p);
  workload::DiskNoise{}.install(p);

  rt::DeterminismTest::Params dp;
  dp.iterations = iterations;
  if (shield_cpu) dp.affinity = hw::CpuMask::single(1);
  rt::DeterminismTest test(p.kernel(), dp);

  p.boot();
  if (shield_cpu) {
    // Shield CPU 1 from processes, interrupts and the local timer; the
    // test task explicitly opted onto it via its affinity.
    p.shield().shield_all(hw::CpuMask::single(1));
  }

  const sim::Duration horizon =
      dp.loop_work * static_cast<sim::Duration>(iterations) * 2 + 10_s;
  p.run_for(horizon);

  if (!test.done()) {
    std::printf("WARNING: only %zu/%d iterations finished\n",
                test.samples().size(), iterations);
  }
  std::printf("(%d logical CPUs, %s)\n", p.topology().logical_cpus(),
              p.topology().hyperthreading() ? "hyperthreading on"
                                            : "hyperthreading off");
  const sim::Duration max = test.max_observed();
  std::fputs(metrics::determinism_legend(test.ideal(), max).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::ascii_histogram(test.excess_histogram(), 50, 8).c_str(),
             stdout);
  return CaseResult{title, test.ideal(), max};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const int iterations = static_cast<int>(opt.scaled(60));

  bench::print_header(
      "Figures 1-4: execution determinism (sine loop, scp + disknoise load)");
  std::printf("iterations per configuration: %d (loop ideal 1.150 s)\n",
              iterations);

  std::vector<CaseResult> results;
  results.push_back(run_case("Figure 1: kernel.org 2.4.20 (hyperthreading)",
                             config::KernelConfig::vanilla_2_4_20(),
                             std::nullopt, /*shield=*/false, iterations,
                             opt.seed));
  results.push_back(run_case("Figure 2: RedHawk 1.4, shielded CPU",
                             config::KernelConfig::redhawk_1_4(), std::nullopt,
                             /*shield=*/true, iterations, opt.seed + 1));
  results.push_back(run_case("Figure 3: RedHawk 1.4, unshielded CPU",
                             config::KernelConfig::redhawk_1_4(), std::nullopt,
                             /*shield=*/false, iterations, opt.seed + 2));
  results.push_back(run_case("Figure 4: kernel.org 2.4.20 (no hyperthreading)",
                             config::KernelConfig::vanilla_2_4_20(),
                             /*ht=*/false, /*shield=*/false, iterations,
                             opt.seed + 3));

  bench::print_subheader("summary (paper reference in parentheses)");
  const double paper[] = {26.17, 1.87, 14.82, 13.15};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double jit = 100.0 *
                       static_cast<double>(r.max - r.ideal) /
                       static_cast<double>(r.ideal);
    std::printf("  %-48s jitter %6.2f%%  (paper: %5.2f%%)\n", r.title.c_str(),
                jit, paper[i]);
  }
  return 0;
}

// Figures 1-4: execution determinism of a CPU-bound SCHED_FIFO loop under
// the scp + disknoise interrupt load (§5).
//
//  Fig 1: kernel.org 2.4.20, hyperthreading on  — paper: 26.17% jitter
//  Fig 2: RedHawk 1.4, shielded CPU             — paper:  1.87% jitter
//  Fig 3: RedHawk 1.4, unshielded CPU           — paper: 14.82% jitter
//  Fig 4: kernel.org 2.4.20, hyperthreading off — paper: 13.15% jitter
//
// Jitter = (worst loop time - ideal loop time) / ideal. The four scenarios
// live in the registry as fig1..fig4; this binary only renders them.
#include <cstdio>

#include "bench_util.h"
#include "scenario_bench.h"

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  bench::print_header(
      "Figures 1-4: execution determinism (sine loop, scp + disknoise load)");
  std::printf("iterations per configuration: %d (loop ideal 1.150 s)\n",
              static_cast<int>(opt.scaled(60)));

  const auto specs = bench::specs_for({"fig1", "fig2", "fig3", "fig4"});
  auto runner = bench::make_runner(opt);
  const auto results = runner.run_batch(specs, opt.seed);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::fputs(results[i].render(specs[i]).c_str(), stdout);
  }

  bench::print_subheader("summary (paper reference in parentheses)");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& pr = results[i].probe;
    const double ideal = static_cast<double>(pr.ideal);
    const double max = pr.stats.at("max_observed_ns");
    const double jit = ideal > 0 ? 100.0 * (max - ideal) / ideal : 0.0;
    std::printf("  %-48s jitter %6.2f%%  (paper: %s)\n",
                specs[i].title.c_str(), jit, specs[i].paper_ref.c_str());
  }
  return bench::exit_code(bench::all_complete(results));
}

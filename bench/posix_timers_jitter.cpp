// The POSIX-timers patch (§4): periodic-wakeup quality without a device.
//
// A 100 Hz SCHED_FIFO task sleeps on a kernel periodic timer. On stock 2.4
// (HZ=100, jiffy timer wheel) expirations quantize to 10 ms boundaries and
// the achievable period floor is a whole jiffy; with the high-res POSIX
// timers patch the timer fires where it was asked. The table reports the
// inter-wakeup error distribution for several requested periods.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "config/platform.h"
#include "metrics/histogram.h"
#include "metrics/report.h"
#include "workload/workload.h"

using namespace sim::literals;

namespace {

struct Row {
  sim::Duration avg_err;
  sim::Duration max_err;
  std::uint64_t wakeups;
};

Row run_case(const config::KernelConfig& kcfg, sim::Duration period,
             sim::Duration run_time, std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(), kcfg, seed);
  auto& k = p.kernel();
  const auto wq = k.create_wait_queue("periodic");

  struct State {
    metrics::LatencyHistogram err;
    sim::Time prev = 0;
    bool have_prev = false;
  };
  auto st = std::make_shared<State>();

  kernel::Kernel::TaskParams tp;
  tp.name = "periodic";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 90;
  tp.mlocked = true;
  workload::spawn(k, std::move(tp),
                  [st, wq, period](kernel::Kernel& kk,
                                   kernel::Task&) -> kernel::Action {
                    const sim::Time now = kk.now();
                    if (st->have_prev) {
                      const sim::Duration gap = now - st->prev;
                      st->err.add(gap > period ? gap - period
                                               : period - gap);
                    }
                    st->prev = now;
                    st->have_prev = true;
                    return kernel::SyscallAction{
                        "timer_wait",
                        kernel::ProgramBuilder{}.block(wq).build()};
                  });

  p.boot();
  k.arm_periodic_timer(wq, period);
  p.run_for(run_time);
  return Row{st->err.mean(), st->err.max(), st->err.count()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const auto run_time =
      static_cast<sim::Duration>(30.0e9 * opt.scale);  // 30 s default

  bench::print_header(
      "POSIX timers patch: periodic wakeup error, stock jiffy wheel vs "
      "high-res");
  std::printf("  %-12s %-22s %12s %12s %10s\n", "period", "kernel",
              "avg |error|", "max |error|", "wakeups");
  std::printf("  %s\n", std::string(74, '-').c_str());
  const sim::Duration periods[] = {3_ms, 7_ms, 10_ms, 25_ms};
  // Case order (and so seed assignment) matches the old serial loop:
  // per period, jiffy wheel first, then high-res.
  const auto rows = bench::SweepRunner{}.map<Row>(
      2 * std::size(periods), [&](std::size_t i) {
        const bool hi_res = i % 2 == 1;
        const auto& cfg = hi_res ? config::KernelConfig::redhawk_1_4()
                                 : config::KernelConfig::vanilla_2_4_20();
        return run_case(cfg, periods[i / 2], run_time, opt.seed + i);
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("  %-12s %-22s %12s %12s %10llu\n",
                sim::format_duration(periods[i / 2]).c_str(),
                i % 2 == 1 ? "RedHawk (high-res)" : "2.4.20 (jiffy wheel)",
                sim::format_duration(r.avg_err).c_str(),
                sim::format_duration(r.max_err).c_str(),
                static_cast<unsigned long long>(r.wakeups));
  }
  std::printf(
      "\nExpected shape: the jiffy wheel turns every requested period into\n"
      "ceil(period, 10 ms) with millisecond-scale error; the high-res\n"
      "kernel's error is the wake-path cost (microseconds), independent of\n"
      "period — the reason the POSIX timers patch is part of RedHawk (§4).\n");
  return 0;
}

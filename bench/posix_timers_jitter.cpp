// The POSIX-timers patch (§4): periodic-wakeup quality without a device.
//
// A SCHED_FIFO task sleeps on a kernel periodic timer. On stock 2.4
// (HZ=100, jiffy timer wheel) expirations quantize to 10 ms boundaries and
// the achievable period floor is a whole jiffy; with the high-res POSIX
// timers patch the timer fires where it was asked. The table reports the
// inter-wakeup error distribution for several requested periods — the
// registry's timer-gap-* scenarios.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "metrics/report.h"
#include "scenario_bench.h"

using namespace sim::literals;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  bench::print_header(
      "POSIX timers patch: periodic wakeup error, stock jiffy wheel vs "
      "high-res");
  std::printf("  %-12s %-22s %12s %12s %10s\n", "period", "kernel",
              "avg |error|", "max |error|", "wakeups");
  std::printf("  %s\n", std::string(74, '-').c_str());

  // Per period: jiffy wheel first, then high-res.
  const auto specs = bench::specs_for(
      {"timer-gap-3ms-jiffy", "timer-gap-3ms-hires", "timer-gap-7ms-jiffy",
       "timer-gap-7ms-hires", "timer-gap-10ms-jiffy", "timer-gap-10ms-hires",
       "timer-gap-25ms-jiffy", "timer-gap-25ms-hires"});
  auto runner = bench::make_runner(opt);
  const auto results = runner.run_batch(specs, opt.seed);

  const sim::Duration periods[] = {3_ms, 7_ms, 10_ms, 25_ms};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& err = results[i].probe.primary;
    std::printf("  %-12s %-22s %12s %12s %10llu\n",
                sim::format_duration(periods[i / 2]).c_str(),
                i % 2 == 1 ? "RedHawk (high-res)" : "2.4.20 (jiffy wheel)",
                sim::format_duration(err.mean()).c_str(),
                sim::format_duration(err.max()).c_str(),
                static_cast<unsigned long long>(err.count()));
  }
  std::printf(
      "\nExpected shape: the jiffy wheel turns every requested period into\n"
      "ceil(period, 10 ms) with millisecond-scale error; the high-res\n"
      "kernel's error is the wake-path cost (microseconds), independent of\n"
      "period — the reason the POSIX timers patch is part of RedHawk (§4).\n");
  return bench::exit_code(bench::all_complete(results));
}

// Ablation C: hyperthread contention sweep (§5.2).
//
// The paper identifies hyperthreading as "another layer of indeterminism":
// the sibling logical CPU contends for the shared execution unit. This
// bench runs the determinism loop with the sibling kept busy for a
// controlled fraction of the time and reports jitter vs sibling duty.
// The (duty, sibling-kind) grid is the registry's abl-ht-* scenarios.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario_bench.h"

namespace {

double jitter_percent(const config::ScenarioResult& r) {
  const double ideal = static_cast<double>(r.probe.ideal);
  if (ideal <= 0) return 0.0;
  return 100.0 * (r.probe.stats.at("max_observed_ns") - ideal) / ideal;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  bench::print_header(
      "Ablation C: hyperthread execution-unit contention (§5.2)");
  std::printf("%d iterations of a 300 ms loop per case\n\n",
              static_cast<int>(opt.scaled(25)));
  std::printf("  %-22s %16s %16s\n", "neighbour duty", "jitter (HT sibling)",
              "jitter (other core)");
  std::printf("  %s\n", std::string(58, '-').c_str());

  // Row pairs: per duty, the HT-sibling case then the other-core case.
  const auto specs = bench::specs_for(
      {"abl-ht-duty0-sibling", "abl-ht-duty0-core", "abl-ht-duty25-sibling",
       "abl-ht-duty25-core", "abl-ht-duty50-sibling", "abl-ht-duty50-core",
       "abl-ht-duty75-sibling", "abl-ht-duty75-core",
       "abl-ht-duty100-sibling", "abl-ht-duty100-core"});
  auto runner = bench::make_runner(opt);
  const auto results = runner.run_batch(specs, opt.seed);

  const double duties[] = {0.0, 25.0, 50.0, 75.0, 100.0};
  for (std::size_t d = 0; d < std::size(duties); ++d) {
    const auto& ht = results[2 * d];
    const auto& core = results[2 * d + 1];
    if (!ht.probe.complete || !core.probe.complete) {
      std::printf("  (warning: run did not finish)\n");
    }
    std::printf("  %20.0f%% %15.2f%% %15.2f%%\n", duties[d],
                jitter_percent(ht), jitter_percent(core));
  }
  std::printf(
      "\nExpected shape: jitter grows steeply with sibling duty when the\n"
      "neighbour shares the execution unit (HT), and stays near the bus-\n"
      "contention floor when it lives on its own core — the paper's Fig 1\n"
      "vs Fig 4 difference, parameterised.\n");
  return bench::exit_code(bench::all_complete(results));
}

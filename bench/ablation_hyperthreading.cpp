// Ablation C: hyperthread contention sweep (§5.2).
//
// The paper identifies hyperthreading as "another layer of indeterminism":
// the sibling logical CPU contends for the shared execution unit. This
// bench runs the determinism loop with the sibling kept busy for a
// controlled fraction of the time and reports jitter vs sibling duty.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "config/platform.h"
#include "metrics/report.h"
#include "rt/determinism_test.h"
#include "workload/workload.h"

using namespace sim::literals;

namespace {

struct JitterResult {
  double percent = 0.0;
  bool finished = true;
};

JitterResult jitter_percent(bool ht, double sibling_duty, int iterations,
                            std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p4_xeon_1400(),
                     config::KernelConfig::vanilla_2_4_20(), seed, ht);

  rt::DeterminismTest::Params dp;
  dp.loop_work = 300_ms;
  dp.iterations = iterations;
  dp.affinity = hw::CpuMask::single(0);
  rt::DeterminismTest test(p.kernel(), dp);

  if (ht && sibling_duty > 0.0) {
    // A duty-cycled hog pinned to the sibling (logical CPU 1).
    kernel::Kernel::TaskParams tp;
    tp.name = "sibling-hog";
    tp.affinity = hw::CpuMask::single(1);
    tp.memory_intensity = 0.7;
    const auto busy = static_cast<sim::Duration>(10.0e6 * sibling_duty);
    const auto idle = static_cast<sim::Duration>(10.0e6 * (1.0 - sibling_duty));
    auto on = std::make_shared<bool>(true);
    workload::spawn(p.kernel(), std::move(tp),
                    [busy, idle, on](kernel::Kernel&, kernel::Task&) -> kernel::Action {
                      *on = !*on;
                      if (*on && idle > 0) return kernel::SleepAction{idle};
                      return kernel::ComputeAction{busy == 0 ? 1u : busy, 0.7};
                    });
  } else if (!ht && sibling_duty > 0.0) {
    // Without HT the "sibling" is a separate core: same load, no execution
    // unit sharing.
    kernel::Kernel::TaskParams tp;
    tp.name = "other-core-hog";
    tp.affinity = hw::CpuMask::single(1);
    tp.memory_intensity = 0.7;
    const auto busy = static_cast<sim::Duration>(10.0e6 * sibling_duty);
    const auto idle = static_cast<sim::Duration>(10.0e6 * (1.0 - sibling_duty));
    auto on = std::make_shared<bool>(true);
    workload::spawn(p.kernel(), std::move(tp),
                    [busy, idle, on](kernel::Kernel&, kernel::Task&) -> kernel::Action {
                      *on = !*on;
                      if (*on && idle > 0) return kernel::SleepAction{idle};
                      return kernel::ComputeAction{busy == 0 ? 1u : busy, 0.7};
                    });
  }

  p.boot();
  p.run_for(dp.loop_work * static_cast<sim::Duration>(iterations) * 3 + 10_s);
  return JitterResult{100.0 *
                          static_cast<double>(test.max_observed() -
                                              test.ideal()) /
                          static_cast<double>(test.ideal()),
                      test.done()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const int iterations = static_cast<int>(opt.scaled(25));

  bench::print_header(
      "Ablation C: hyperthread execution-unit contention (§5.2)");
  std::printf("%d iterations of a 300 ms loop per case\n\n", iterations);
  std::printf("  %-22s %16s %16s\n", "neighbour duty", "jitter (HT sibling)",
              "jitter (other core)");
  std::printf("  %s\n", std::string(58, '-').c_str());
  const double duties[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  // One case per (duty, sibling-kind) pair, spread across all cores.
  const auto rows = bench::SweepRunner{}.map<JitterResult>(
      2 * std::size(duties), [&](std::size_t i) {
        return jitter_percent(/*ht=*/i % 2 == 0, duties[i / 2], iterations,
                              opt.seed);
      });
  for (std::size_t d = 0; d < std::size(duties); ++d) {
    const JitterResult& ht_jit = rows[2 * d];
    const JitterResult& core_jit = rows[2 * d + 1];
    if (!ht_jit.finished || !core_jit.finished) {
      std::printf("  (warning: run did not finish)\n");
    }
    std::printf("  %20.0f%% %15.2f%% %15.2f%%\n", duties[d] * 100,
                ht_jit.percent, core_jit.percent);
  }
  std::printf(
      "\nExpected shape: jitter grows steeply with sibling duty when the\n"
      "neighbour shares the execution unit (HT), and stays near the bus-\n"
      "contention floor when it lives on its own core — the paper's Fig 1\n"
      "vs Fig 4 difference, parameterised.\n");
  return 0;
}

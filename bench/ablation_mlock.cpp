// Ablation D: memory locking.
//
// §5 credits stock Linux with "the ability to lock an application's pages
// in memory, preventing the jitter that would be caused when a program
// first accesses a page not resident in memory". This bench quantifies the
// claim: the determinism loop with and without mlockall, on an otherwise
// idle shielded CPU (so paging is the only jitter source) and under load.
// The four cells are the registry's abl-mlock-* scenarios.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "scenario_bench.h"

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  bench::print_header(
      "Ablation D: mlockall vs page-fault jitter (shielded CPU)");
  std::printf("%d iterations of a 300 ms loop per case\n\n",
              static_cast<int>(opt.scaled(30)));
  std::printf("  %-28s %10s %12s\n", "configuration", "jitter",
              "minor faults");
  std::printf("  %s\n", std::string(54, '-').c_str());

  const auto specs = bench::specs_for(
      {"abl-mlock-locked-idle", "abl-mlock-pageable-idle",
       "abl-mlock-locked-loaded", "abl-mlock-pageable-loaded"});
  auto runner = bench::make_runner(opt);
  const auto results = runner.run_batch(specs, opt.seed);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& pr = results[i].probe;
    const double ideal = static_cast<double>(pr.ideal);
    const double jitter =
        ideal > 0
            ? 100.0 * (pr.stats.at("max_observed_ns") - ideal) / ideal
            : 0.0;
    std::printf("  %-28s %9.3f%% %12llu\n", specs[i].title.c_str(), jitter,
                static_cast<unsigned long long>(pr.stats.at("minor_faults")));
  }
  std::printf(
      "\nExpected shape: the pageable rows fault continuously and carry\n"
      "visibly more jitter; mlockall eliminates faults entirely (§5's\n"
      "prerequisite for every RT measurement in the paper).\n");
  return bench::exit_code(bench::all_complete(results));
}

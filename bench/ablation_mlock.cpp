// Ablation D: memory locking.
//
// §5 credits stock Linux with "the ability to lock an application's pages
// in memory, preventing the jitter that would be caused when a program
// first accesses a page not resident in memory". This bench quantifies the
// claim: the determinism loop with and without mlockall, on an otherwise
// idle shielded CPU (so paging is the only jitter source) and under load.
#include <cstdio>

#include "bench_util.h"
#include "config/platform.h"
#include "metrics/report.h"
#include "rt/determinism_test.h"
#include "workload/disk_noise.h"
#include "workload/scp_copy.h"

using namespace sim::literals;

namespace {

struct Row {
  double jitter_pct;
  std::uint64_t faults;
};

Row run_case(bool mlocked, bool loaded, int iterations, std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p4_xeon_1400(),
                     config::KernelConfig::redhawk_1_4(), seed);
  if (loaded) {
    workload::ScpCopy{}.install(p);
    workload::DiskNoise{}.install(p);
  }
  rt::DeterminismTest::Params dp;
  dp.loop_work = 300_ms;
  dp.iterations = iterations;
  dp.affinity = hw::CpuMask::single(1);
  rt::DeterminismTest test(p.kernel(), dp);
  test.task().mlocked = mlocked;  // the knob under study
  p.boot();
  p.shield().shield_all(hw::CpuMask::single(1));
  p.run_for(dp.loop_work * static_cast<sim::Duration>(iterations) * 3 + 10_s);
  const double jitter =
      100.0 * static_cast<double>(test.max_observed() - test.ideal()) /
      static_cast<double>(test.ideal());
  return Row{jitter, test.task().minor_faults};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const int iterations = static_cast<int>(opt.scaled(30));

  bench::print_header("Ablation D: mlockall vs page-fault jitter (shielded CPU)");
  std::printf("%d iterations of a 300 ms loop per case\n\n", iterations);
  std::printf("  %-28s %10s %12s\n", "configuration", "jitter", "minor faults");
  std::printf("  %s\n", std::string(54, '-').c_str());

  struct Case {
    const char* name;
    bool mlocked;
    bool loaded;
  };
  const Case cases[] = {
      {"mlockall, idle system", true, false},
      {"pageable, idle system", false, false},
      {"mlockall, scp+disknoise", true, true},
      {"pageable, scp+disknoise", false, true},
  };
  const auto rows = bench::SweepRunner{}.map<Row>(
      std::size(cases), [&](std::size_t i) {
        return run_case(cases[i].mlocked, cases[i].loaded, iterations,
                        opt.seed + i);
      });
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    std::printf("  %-28s %9.3f%% %12llu\n", cases[i].name, rows[i].jitter_pct,
                static_cast<unsigned long long>(rows[i].faults));
  }
  std::printf(
      "\nExpected shape: the pageable rows fault continuously and carry\n"
      "visibly more jitter; mlockall eliminates faults entirely (§5's\n"
      "prerequisite for every RT measurement in the paper).\n");
  return 0;
}

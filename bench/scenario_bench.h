// Shared shell for the registry-backed benches.
//
// Since the ScenarioSpec refactor a bench binary owns no wiring: it looks
// its scenarios up in config::ScenarioRegistry, fans them out through one
// config::ScenarioRunner (--jobs controls the worker count) and formats
// the returned ScenarioResults. Everything that used to be a hand-built
// Platform in these files now lives in src/config/experiment.cpp as data.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <vector>

#include "bench_util.h"
#include "config/experiment.h"
#include "config/scenario_runner.h"

namespace bench {

/// Look up scenarios by name, in the given order. A missing name is a
/// build error in disguise (the registry and the benches ship together),
/// so it exits rather than returning a partial list.
inline std::vector<config::ScenarioSpec> specs_for(
    std::initializer_list<const char*> names) {
  const auto& reg = config::ScenarioRegistry::builtin();
  std::vector<config::ScenarioSpec> out;
  out.reserve(names.size());
  for (const char* n : names) {
    const config::ScenarioSpec* s = reg.find(n);
    if (s == nullptr) {
      std::fprintf(stderr, "scenario '%s' is not in the registry\n", n);
      std::exit(2);
    }
    out.push_back(*s);
  }
  return out;
}

inline config::ScenarioRunner make_runner(const Options& opt) {
  config::ScenarioRunner::Options ro;
  ro.jobs = opt.jobs;
  ro.scale = opt.scale;
  return config::ScenarioRunner{ro};
}

inline bool all_complete(const std::vector<config::ScenarioResult>& results) {
  for (const auto& r : results) {
    if (!r.probe.complete) return false;
  }
  return true;
}

}  // namespace bench

// Shared helpers for the figure-reproduction benches.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/time.h"

namespace bench {

/// Command-line knobs shared by every figure bench. Defaults are sized so
/// the whole bench suite runs in minutes; pass --paper for runs closer to
/// the paper's sample counts (hours of simulated time).
struct Options {
  std::uint64_t seed = 2003;
  double scale = 1.0;  ///< multiplies sample counts / durations
  bool paper = false;
  /// Enable the latency-chain tracer and print each case's worst-sample
  /// decomposition after the regular figure output. Off by default: the
  /// default output stays byte-identical with the tracer disabled.
  bool trace = false;
  /// Write the latency report (counters + worst chains) as JSON to this
  /// path (a per-case suffix is appended by multi-case benches). Implies
  /// --trace. Consumed by tools/trace_report.py.
  std::string trace_json;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper") == 0) {
        o.paper = true;
        o.scale = 10.0;
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        o.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
        o.scale = std::strtod(argv[++i], nullptr);
      } else if (std::strcmp(argv[i], "--trace") == 0) {
        o.trace = true;
      } else if (std::strcmp(argv[i], "--trace-json") == 0 && i + 1 < argc) {
        o.trace_json = argv[++i];
        o.trace = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "usage: %s [--paper] [--seed N] [--scale X] [--trace]"
            " [--trace-json FILE]\n"
            "  --paper           run at ~10x the default sample counts\n"
            "  --seed N          RNG seed (default 2003)\n"
            "  --scale X         multiply sample counts by X\n"
            "  --trace           decompose worst-case samples into kernel-path"
            " segments\n"
            "  --trace-json FILE also write the latency report as JSON\n",
            argv[0]);
        std::exit(0);
      }
    }
    return o;
  }

  [[nodiscard]] std::uint64_t scaled(std::uint64_t n) const {
    const auto s = static_cast<std::uint64_t>(static_cast<double>(n) * scale);
    return s == 0 ? 1 : s;
  }
};

/// Runs the independent cases of a config sweep across all hardware
/// threads. Each case builds its own Platform (engine, kernel, devices,
/// RNG streams) from its own seed, so workers share no mutable state and
/// the per-case results are identical to a serial run; only wall-clock
/// changes. Results come back in case order — print them serially after.
class SweepRunner {
 public:
  explicit SweepRunner(unsigned workers = 0)
      : workers_(workers != 0
                     ? workers
                     : std::max(1u, std::thread::hardware_concurrency())) {}

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Invoke `fn(i)` for every i in [0, n), spread over the workers, and
  /// return the results in index order. `fn` must be self-contained: one
  /// engine per case, no shared mutable state, no printing. If a case
  /// throws, the sweep stops claiming new cases and the first exception is
  /// rethrown here after all workers have joined (an exception escaping a
  /// plain thread would have called std::terminate).
  template <typename T, typename Fn>
  std::vector<T> map(std::size_t n, Fn fn) const {
    std::vector<T> results(n);
    const auto workers = static_cast<unsigned>(
        std::min<std::size_t>(workers_, n));
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
      return results;
    }
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    const auto drain = [&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          results[i] = fn(i);
        } catch (...) {
          const std::scoped_lock hold(error_mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (auto& t : pool) t.join();
    if (error) std::rethrow_exception(error);
    return results;
  }

 private:
  unsigned workers_;
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_subheader(const std::string& title) {
  std::printf("\n---- %s ----\n", title.c_str());
}

}  // namespace bench

// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/time.h"

namespace bench {

/// Command-line knobs shared by every figure bench. Defaults are sized so
/// the whole bench suite runs in minutes; pass --paper for runs closer to
/// the paper's sample counts (hours of simulated time).
struct Options {
  std::uint64_t seed = 2003;
  double scale = 1.0;  ///< multiplies sample counts / durations
  bool paper = false;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper") == 0) {
        o.paper = true;
        o.scale = 10.0;
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        o.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
        o.scale = std::strtod(argv[++i], nullptr);
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "usage: %s [--paper] [--seed N] [--scale X]\n"
            "  --paper   run at ~10x the default sample counts\n"
            "  --seed N  RNG seed (default 2003)\n"
            "  --scale X multiply sample counts by X\n",
            argv[0]);
        std::exit(0);
      }
    }
    return o;
  }

  [[nodiscard]] std::uint64_t scaled(std::uint64_t n) const {
    const auto s = static_cast<std::uint64_t>(static_cast<double>(n) * scale);
    return s == 0 ? 1 : s;
  }
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_subheader(const std::string& title) {
  std::printf("\n---- %s ----\n", title.c_str());
}

}  // namespace bench

// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "config/sweep_runner.h"
#include "sim/time.h"

namespace bench {

/// Command-line knobs shared by every figure bench. Defaults are sized so
/// the whole bench suite runs in minutes; pass --paper for runs closer to
/// the paper's sample counts (hours of simulated time).
struct Options {
  std::uint64_t seed = 2003;
  double scale = 1.0;  ///< multiplies sample counts / durations
  bool paper = false;
  /// Worker threads for config sweeps (0 = all hardware threads).
  unsigned jobs = 0;
  /// Enable the latency-chain tracer and print each case's worst-sample
  /// decomposition after the regular figure output. Off by default: the
  /// default output stays byte-identical with the tracer disabled.
  bool trace = false;
  /// Write the latency report (counters + worst chains) as JSON to this
  /// path (a per-case suffix is appended by multi-case benches). Implies
  /// --trace. Consumed by tools/trace_report.py.
  std::string trace_json;

  static void usage(const char* argv0, std::FILE* to) {
    std::fprintf(
        to,
        "usage: %s [--paper] [--seed N] [--scale X] [--jobs N] [--trace]"
        " [--trace-json FILE]\n"
        "  --paper           run at ~10x the default sample counts\n"
        "  --seed N          RNG seed (default 2003)\n"
        "  --scale X         multiply sample counts by X\n"
        "  --jobs N          sweep worker threads (default: all cores)\n"
        "  --trace           decompose worst-case samples into kernel-path"
        " segments\n"
        "  --trace-json FILE also write the latency report as JSON\n",
        argv0);
  }

  /// Parse the shared flags. Unknown arguments are an error: a typo like
  /// `--sedd 7` must not silently run the default configuration.
  static Options parse(int argc, char** argv) {
    Options o;
    const auto need_value = [&](int i) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
        usage(argv[0], stderr);
        std::exit(2);
      }
    };
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper") == 0) {
        o.paper = true;
        o.scale = 10.0;
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        need_value(i);
        o.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--scale") == 0) {
        need_value(i);
        o.scale = std::strtod(argv[++i], nullptr);
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        need_value(i);
        o.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--trace") == 0) {
        o.trace = true;
      } else if (std::strcmp(argv[i], "--trace-json") == 0) {
        need_value(i);
        o.trace_json = argv[++i];
        o.trace = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        usage(argv[0], stdout);
        std::exit(0);
      } else {
        std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
        usage(argv[0], stderr);
        std::exit(2);
      }
    }
    return o;
  }

  [[nodiscard]] std::uint64_t scaled(std::uint64_t n) const {
    const auto s = static_cast<std::uint64_t>(static_cast<double>(n) * scale);
    return s == 0 ? 1 : s;
  }
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_subheader(const std::string& title) {
  std::printf("\n---- %s ----\n", title.c_str());
}

/// Exit-code policy shared by the benches: a bench whose cases did not all
/// finish inside their horizons exits nonzero so CI cannot mistake a
/// truncated run for a clean one. Warnings are printed where the bench's
/// historical output format had them; this only turns them into a status.
inline int exit_code(bool all_complete) { return all_complete ? 0 : 1; }

}  // namespace bench

// Frequency sweep: how fast can a shielded CPU run a periodic RT task?
//
// §2 lists "tasks that must be run at very high frequencies" as a shielded-
// CPU use case. This bench programs the RCIM from 250 Hz up to 10 kHz on a
// shielded CPU under full load and reports, per rate, the latency profile
// and whether any period was overrun — the practical frequency ceiling.
// The rate ladder is the registry's freq-* scenarios.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "metrics/report.h"
#include "scenario_bench.h"

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  bench::print_header(
      "Frequency sweep: shielded-CPU periodic response, 250 Hz - 10 kHz "
      "(stress-kernel load)");
  std::printf("samples per rate: %llu\n\n",
              static_cast<unsigned long long>(opt.scaled(150'000)));
  std::printf("  %11s %10s %10s %12s %10s\n", "rate", "min", "avg", "max",
              "overruns");
  std::printf("  %s\n", std::string(58, '-').c_str());

  const auto specs =
      bench::specs_for({"freq-250", "freq-500", "freq-1000", "freq-2000",
                        "freq-4000", "freq-8000", "freq-10000"});
  auto runner = bench::make_runner(opt);
  const auto results = runner.run_batch(specs, opt.seed);

  const unsigned rates[] = {250u, 500u, 1000u, 2000u, 4000u, 8000u, 10000u};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& pr = results[i].probe;
    // min/avg from the RCIM register measurement; the worst case from the
    // ground-truth series, which cannot wrap at the period.
    std::printf("  %8u Hz %10s %10s %12s %10llu\n", rates[i],
                sim::format_duration(pr.primary.min()).c_str(),
                sim::format_duration(pr.primary.mean()).c_str(),
                sim::format_duration(pr.secondary.max()).c_str(),
                static_cast<unsigned long long>(pr.stats.at("overruns")));
  }
  std::printf(
      "\nExpected shape: latency is rate-independent (the fixed wake-path\n"
      "cost) and stays far below even the 100 us period at 10 kHz — the\n"
      "\"very high frequencies\" use case of §2. Zero overruns throughout.\n");
  return bench::exit_code(bench::all_complete(results));
}

// Frequency sweep: how fast can a shielded CPU run a periodic RT task?
//
// §2 lists "tasks that must be run at very high frequencies" as a shielded-
// CPU use case. This bench programs the RCIM from 250 Hz up to 10 kHz on a
// shielded CPU under full load and reports, per rate, the latency profile
// and whether any period was overrun — the practical frequency ceiling.
#include <cstdio>

#include "bench_util.h"
#include "config/platform.h"
#include "metrics/report.h"
#include "rt/rcim_test.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

namespace {

struct Row {
  sim::Duration min;
  sim::Duration avg;
  sim::Duration max;
  std::uint64_t overruns;
};

Row run_rate(std::uint32_t hz, std::uint64_t samples, std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                     config::KernelConfig::redhawk_1_4(), seed);
  workload::StressKernel{}.install(p);

  rt::RcimTest::Params rp;
  // count = period / 400 ns tick.
  rp.count = 2'500'000u / hz;
  rp.samples = samples;
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest test(p.kernel(), p.rcim_driver(), rp);

  p.boot();
  p.shield().dedicate_cpu(1, test.task(), p.rcim_device().irq());
  test.start();
  p.run_for(sim::from_seconds(static_cast<double>(samples) /
                              static_cast<double>(hz) * 2) +
            5_s);

  return Row{test.latencies().min(), test.latencies().mean(),
             test.true_latencies().max(), test.overruns()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t samples = opt.scaled(150'000);

  bench::print_header(
      "Frequency sweep: shielded-CPU periodic response, 250 Hz - 10 kHz "
      "(stress-kernel load)");
  std::printf("samples per rate: %llu\n\n",
              static_cast<unsigned long long>(samples));
  std::printf("  %11s %10s %10s %12s %10s\n", "rate", "min", "avg", "max",
              "overruns");
  std::printf("  %s\n", std::string(58, '-').c_str());
  const std::uint32_t rates[] = {250u,  500u,  1000u, 2000u,
                                 4000u, 8000u, 10000u};
  const auto rows = bench::SweepRunner{}.map<Row>(
      std::size(rates), [&](std::size_t i) {
        return run_rate(rates[i], samples, opt.seed + i);
      });
  for (std::size_t i = 0; i < std::size(rates); ++i) {
    std::printf("  %8u Hz %10s %10s %12s %10llu\n", rates[i],
                sim::format_duration(rows[i].min).c_str(),
                sim::format_duration(rows[i].avg).c_str(),
                sim::format_duration(rows[i].max).c_str(),
                static_cast<unsigned long long>(rows[i].overruns));
  }
  std::printf(
      "\nExpected shape: latency is rate-independent (the fixed wake-path\n"
      "cost) and stays far below even the 100 us period at 10 kHz — the\n"
      "\"very high frequencies\" use case of §2. Zero overruns throughout.\n");
  return 0;
}

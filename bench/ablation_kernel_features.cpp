// Ablation B: the RedHawk patch stack, feature by feature.
//
// §4 lists the ingredients: preemption patch, low-latency patches, O(1)
// scheduler, softirq changes, BKL-free ioctl, shielding. Table B1 builds
// the kernel up one feature at a time and measures realfeel worst-case
// latency under stress-kernel — reproducing the paper's narrative arc from
// "92 ms" to "1.2 ms" [5] to "sub-millisecond with shielding".
//
// A second table isolates the §6.3 BKL-ioctl flag using the RCIM wait path
// (ground-truth latencies: with the BKL the latency can exceed the RCIM
// period, which wraps the register measurement).
//
// Both ladders are registry scenarios (abl-kernel-*, abl-bkl-*); the
// kernel-feature deltas live in their kernel_overrides.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "metrics/report.h"
#include "scenario_bench.h"

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  const auto specs = bench::specs_for(
      {"abl-kernel-vanilla", "abl-kernel-lowlat", "abl-kernel-preempt",
       "abl-kernel-preempt-lowlat", "abl-kernel-redhawk-noshield",
       "abl-kernel-redhawk-shielded", "abl-bkl-locked", "abl-bkl-flagged"});
  auto runner = bench::make_runner(opt);
  const auto results = runner.run_batch(specs, opt.seed);
  constexpr std::size_t kB1 = 6;  // first six rows are the feature ladder

  bench::print_header(
      "Ablation B1: kernel feature stack vs realfeel worst case");
  std::printf("samples per case: %llu\n\n",
              static_cast<unsigned long long>(opt.scaled(400'000)));
  std::printf("  %-34s %14s\n", "kernel", "max latency");
  std::printf("  %s\n", std::string(50, '-').c_str());
  for (std::size_t i = 0; i < kB1; ++i) {
    std::printf("  %-34s %14s\n", specs[i].title.c_str(),
                sim::format_duration(results[i].probe.primary.max()).c_str());
  }

  bench::print_header(
      "Ablation B2: the BKL-ioctl flag (§6.3) on the RCIM wait path");
  std::printf("samples per case: %llu\n\n",
              static_cast<unsigned long long>(opt.scaled(200'000)));
  std::printf("  %-34s %10s %10s %12s\n", "generic ioctl layer", "min", "avg",
              "max");
  std::printf("  %s\n", std::string(70, '-').c_str());
  for (std::size_t i = kB1; i < specs.size(); ++i) {
    const auto& lat = results[i].probe.primary;
    std::printf("  %-34s %10s %10s %12s\n", specs[i].title.c_str(),
                sim::format_duration(lat.min()).c_str(),
                sim::format_duration(lat.mean()).c_str(),
                sim::format_duration(lat.max()).c_str());
  }
  std::printf(
      "\nExpected shape: the BKL row's worst case is orders of magnitude\n"
      "larger (sub-millisecond at default scale, multi-millisecond at\n"
      "--paper — \"several milliseconds of jitter\", §6.3), while the\n"
      "flagged driver stays in the tens of microseconds.\n");
  return bench::exit_code(bench::all_complete(results));
}

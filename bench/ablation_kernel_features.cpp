// Ablation B: the RedHawk patch stack, feature by feature.
//
// §4 lists the ingredients: preemption patch, low-latency patches, O(1)
// scheduler, softirq changes, BKL-free ioctl, shielding. This bench builds
// the kernel up one feature at a time and measures realfeel worst-case
// latency under stress-kernel — reproducing the paper's narrative arc from
// "92 ms" to "1.2 ms" [5] to "sub-millisecond with shielding".
//
// A second table isolates the §6.3 BKL-ioctl flag using the RCIM wait path.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "config/platform.h"
#include "metrics/report.h"
#include "rt/rcim_test.h"
#include "rt/realfeel_test.h"
#include "workload/disk_noise.h"
#include "workload/legacy_ioctl.h"
#include "workload/workload.h"
#include "workload/stress_kernel.h"
#include "workload/ttcp.h"
#include "workload/x11perf.h"

using namespace sim::literals;

namespace {

sim::Duration realfeel_worst(const config::KernelConfig& kcfg, bool shield,
                             std::uint64_t samples, std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(), kcfg, seed);
  workload::StressKernel{}.install(p);
  rt::RealfeelTest::Params rp;
  rp.samples = samples;
  if (shield) rp.affinity = hw::CpuMask::single(1);
  rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);
  p.boot();
  if (shield) p.shield().dedicate_cpu(1, test.task(), p.rtc_device().irq());
  test.start();
  p.run_for(sim::from_seconds(static_cast<double>(samples) / 2048.0 * 2) + 5_s);
  return test.latencies().max();
}

struct RcimResult {
  sim::Duration min;
  sim::Duration avg;
  sim::Duration max;
};

RcimResult rcim_with_flag(bool bkl_flag_supported, std::uint64_t samples,
                          std::uint64_t seed) {
  // The §6.3 problem was observed before RedHawk's "BKL hold time
  // reduction" (§1) landed: model that kernel — preemptible, shielded,
  // RCIM-equipped, but with 2.4-length BKL/section hold times — so the
  // flag's effect is visible in isolation.
  auto kcfg = config::KernelConfig::redhawk_1_4();
  kcfg.section_min = 2 * sim::kMicrosecond;
  kcfg.section_max = 8 * sim::kMillisecond;
  kcfg.section_alpha = 1.1;
  kcfg.bkl_ioctl_flag = bkl_flag_supported;
  kcfg.name = bkl_flag_supported ? "early RedHawk (BKL-free ioctl)"
                                 : "early RedHawk (BKL in every ioctl)";
  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(), kcfg,
                     seed);
  workload::StressKernel{}.install(p);
  workload::X11Perf{}.install(p);
  workload::TtcpEthernet{}.install(p);
  workload::DiskNoise{}.install(p);
  // BKL-heavy legacy drivers: tty/console/graphics ioctls all ran under
  // lock_kernel() in 2.4, which is what made the BKL "one of the most
  // highly contended spin locks in Linux".
  workload::LegacyIoctl{}.install(p);
  rt::RcimTest::Params rp;
  rp.samples = samples;
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest test(p.kernel(), p.rcim_driver(), rp);
  p.boot();
  p.shield().dedicate_cpu(1, test.task(), p.rcim_device().irq());
  test.start();
  p.run_for(sim::from_seconds(static_cast<double>(samples) / 1000.0 * 2) + 5_s);
  // Use ground truth here: with the BKL the latency can exceed the RCIM
  // period, which wraps the register-based measurement.
  return RcimResult{test.true_latencies().min(), test.true_latencies().mean(),
                    test.true_latencies().max()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t samples = opt.scaled(400'000);

  bench::print_header("Ablation B1: kernel feature stack vs realfeel worst case");
  std::printf("samples per case: %llu\n\n",
              static_cast<unsigned long long>(samples));

  struct Step {
    const char* name;
    config::KernelConfig cfg;
    bool shield;
  };
  auto lowlat_only = config::KernelConfig::vanilla_2_4_20();
  lowlat_only.name = "2.4.20 + low-latency";
  lowlat_only.low_latency = true;
  lowlat_only.section_min = 1_us;
  lowlat_only.section_max = 1200_us;
  lowlat_only.section_alpha = 1.3;

  auto preempt_only = config::KernelConfig::vanilla_2_4_20();
  preempt_only.name = "2.4.20 + preempt";
  preempt_only.preempt_kernel = true;

  auto redhawk_noshield = config::KernelConfig::redhawk_1_4();
  redhawk_noshield.name = "RedHawk (shield unused)";

  const Step steps[] = {
      {"kernel.org 2.4.20", config::KernelConfig::vanilla_2_4_20(), false},
      {"+ low-latency patches only", lowlat_only, false},
      {"+ preemption patch only", preempt_only, false},
      {"+ preempt + low-latency [5]", config::KernelConfig::patched_preempt_lowlat(),
       false},
      {"RedHawk 1.4, unshielded", redhawk_noshield, false},
      {"RedHawk 1.4, shielded CPU", config::KernelConfig::redhawk_1_4(), true},
  };

  std::printf("  %-34s %14s\n", "kernel", "max latency");
  std::printf("  %s\n", std::string(50, '-').c_str());
  const bench::SweepRunner runner;
  const auto worsts = runner.map<sim::Duration>(
      std::size(steps), [&](std::size_t i) {
        return realfeel_worst(steps[i].cfg, steps[i].shield, samples,
                              opt.seed + i);
      });
  for (std::size_t i = 0; i < std::size(steps); ++i) {
    std::printf("  %-34s %14s\n", steps[i].name,
                sim::format_duration(worsts[i]).c_str());
  }

  bench::print_header(
      "Ablation B2: the BKL-ioctl flag (§6.3) on the RCIM wait path");
  const std::uint64_t rcim_samples = opt.scaled(200'000);
  std::printf("samples per case: %llu\n\n",
              static_cast<unsigned long long>(rcim_samples));
  std::printf("  %-34s %10s %10s %12s\n", "generic ioctl layer", "min", "avg",
              "max");
  std::printf("  %s\n", std::string(70, '-').c_str());
  const auto rcim_rows = runner.map<RcimResult>(2, [&](std::size_t i) {
    return rcim_with_flag(i == 1, rcim_samples, opt.seed + 100);
  });
  for (std::size_t i = 0; i < rcim_rows.size(); ++i) {
    const RcimResult& r = rcim_rows[i];
    std::printf("  %-34s %10s %10s %12s\n",
                i == 1 ? "driver flag honoured (no BKL)" : "BKL around ioctl",
                sim::format_duration(r.min).c_str(),
                sim::format_duration(r.avg).c_str(),
                sim::format_duration(r.max).c_str());
  }
  std::printf(
      "\nExpected shape: the BKL row's worst case is orders of magnitude\n"
      "larger (sub-millisecond at default scale, multi-millisecond at\n"
      "--paper — \"several milliseconds of jitter\", §6.3), while the\n"
      "flagged driver stays in the tens of microseconds.\n");
  return 0;
}

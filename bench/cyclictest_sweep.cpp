// cyclictest-equivalent: scheduling latency of a periodic FIFO task under
// a scheduler-hostile load (hackbench + stress-kernel), per kernel, with
// and without shielding.
//
// Complements the paper's device-interrupt measurements: here no device is
// involved — the jitter is pure timer + scheduler + preemption behaviour,
// the quantity cyclictest made the community standard years later.
#include <cstdio>

#include "bench_util.h"
#include "config/platform.h"
#include "metrics/report.h"
#include "rt/cyclictest.h"
#include "workload/hackbench.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

namespace {

struct Row {
  sim::Duration min;
  sim::Duration avg;
  sim::Duration max;
  std::uint64_t cycles;
};

Row run_case(const config::KernelConfig& kcfg, bool shield,
             std::uint64_t cycles, std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(), kcfg, seed);
  workload::StressKernel{}.install(p);
  workload::Hackbench{}.install(p);

  rt::CyclicTest::Params cp;
  cp.period = 1_ms;
  cp.cycles = cycles;
  if (shield) cp.affinity = hw::CpuMask::single(1);
  rt::CyclicTest test(p.kernel(), cp);

  p.boot();
  if (shield) p.shield().shield_all(hw::CpuMask::single(1));
  test.start();
  p.run_for(sim::from_seconds(static_cast<double>(cycles) / 1000.0 * 2) + 5_s);
  return Row{test.latencies().min(), test.latencies().mean(),
             test.latencies().max(), test.collected()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t cycles = opt.scaled(200'000);

  bench::print_header(
      "cyclictest: 1 kHz periodic wakeup latency under stress-kernel + "
      "hackbench");
  std::printf("cycles per case: %llu\n\n",
              static_cast<unsigned long long>(cycles));
  std::printf("  %-38s %10s %10s %12s %10s\n", "configuration", "min",
              "avg", "max", "cycles");
  std::printf("  %s\n", std::string(84, '-').c_str());

  struct Case {
    const char* name;
    config::KernelConfig cfg;
    bool shield;
  };
  const Case cases[] = {
      {"kernel.org 2.4.20", config::KernelConfig::vanilla_2_4_20(), false},
      {"2.4 + preempt + low-latency", config::KernelConfig::patched_preempt_lowlat(),
       false},
      {"RedHawk 1.4, unshielded", config::KernelConfig::redhawk_1_4(), false},
      {"RedHawk 1.4, shielded CPU", config::KernelConfig::redhawk_1_4(), true},
  };
  const auto rows = bench::SweepRunner{}.map<Row>(
      std::size(cases), [&](std::size_t i) {
        return run_case(cases[i].cfg, cases[i].shield, cycles, opt.seed + i);
      });
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const Row& r = rows[i];
    std::printf("  %-38s %10s %10s %12s %10llu\n", cases[i].name,
                sim::format_duration(r.min).c_str(),
                sim::format_duration(r.avg).c_str(),
                sim::format_duration(r.max).c_str(),
                static_cast<unsigned long long>(r.cycles));
  }
  std::printf(
      "\nExpected shape: same ladder as the interrupt-response figures —\n"
      "tens of ms on vanilla, ~1 ms patched, tens of µs shielded — because\n"
      "timer wakeups cross the same preemption obstacles as device ones.\n"
      "(2.4 rows collect fewer cycles in the same horizon: their 1 ms\n"
      "period is jiffy-quantized up to 10 ms.)\n");
  return 0;
}

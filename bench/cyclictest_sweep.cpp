// cyclictest-equivalent: scheduling latency of a periodic FIFO task under
// a scheduler-hostile load (hackbench + stress-kernel), per kernel, with
// and without shielding.
//
// Complements the paper's device-interrupt measurements: here no device is
// involved — the jitter is pure timer + scheduler + preemption behaviour,
// the quantity cyclictest made the community standard years later.
// The kernel ladder is the registry's cyclic-* scenarios.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "metrics/report.h"
#include "scenario_bench.h"

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);

  bench::print_header(
      "cyclictest: 1 kHz periodic wakeup latency under stress-kernel + "
      "hackbench");
  std::printf("cycles per case: %llu\n\n",
              static_cast<unsigned long long>(opt.scaled(200'000)));
  std::printf("  %-38s %10s %10s %12s %10s\n", "configuration", "min", "avg",
              "max", "cycles");
  std::printf("  %s\n", std::string(84, '-').c_str());

  const auto specs = bench::specs_for({"cyclic-vanilla",
                                       "cyclic-preempt-lowlat",
                                       "cyclic-redhawk",
                                       "cyclic-redhawk-shielded"});
  auto runner = bench::make_runner(opt);
  const auto results = runner.run_batch(specs, opt.seed);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& lat = results[i].probe.primary;
    std::printf("  %-38s %10s %10s %12s %10llu\n", specs[i].title.c_str(),
                sim::format_duration(lat.min()).c_str(),
                sim::format_duration(lat.mean()).c_str(),
                sim::format_duration(lat.max()).c_str(),
                static_cast<unsigned long long>(results[i].probe.collected));
  }
  std::printf(
      "\nExpected shape: same ladder as the interrupt-response figures —\n"
      "tens of ms on vanilla, ~1 ms patched, tens of µs shielded — because\n"
      "timer wakeups cross the same preemption obstacles as device ones.\n"
      "(2.4 rows collect fewer cycles in the same horizon: their 1 ms\n"
      "period is jiffy-quantized up to 10 ms.)\n");
  return bench::exit_code(bench::all_complete(results));
}

// Figure 7: RCIM interrupt response on a shielded CPU (§6.3).
//
// RedHawk 1.4 on a dual 2.0 GHz P4 Xeon with the RCIM PCI card. Load:
// stress-kernel + X11perf on the console + ttcp over 10BaseT Ethernet.
// CPU 1 is shielded; the RCIM timer interrupt and the measuring task are
// bound to it. The ioctl wait path sets the multithreaded-driver flag, so
// no BKL is taken (the kernel change described in §6.3).
//
// Paper: min 11 us, avg 11.3 us, max 27 us over 10,000,000 interrupts.
#include <cstdio>

#include "bench_util.h"
#include "config/platform.h"
#include "kernel/trace_export.h"
#include "metrics/report.h"
#include "rt/rcim_test.h"
#include "workload/stress_kernel.h"
#include "workload/ttcp.h"
#include "workload/x11perf.h"

using namespace sim::literals;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t samples = opt.scaled(2'000'000);

  bench::print_header(
      "Figure 7: RCIM interrupt response, shielded CPU "
      "(stress-kernel + x11perf + ttcp-over-Ethernet)");
  std::printf("samples: %llu (paper: 10,000,000)\n",
              static_cast<unsigned long long>(samples));

  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                     config::KernelConfig::redhawk_1_4(), opt.seed);
  workload::StressKernel{}.install(p);
  if (opt.trace) p.engine().chain_tracer().enable();
  workload::X11Perf{}.install(p);
  workload::TtcpEthernet{}.install(p);

  rt::RcimTest::Params rp;
  rp.count = 2'500;  // 1 ms period at the RCIM's 400 ns tick
  rp.samples = samples;
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest test(p.kernel(), p.rcim_driver(), rp);

  p.boot();
  p.shield().dedicate_cpu(1, test.task(), p.rcim_device().irq());
  test.start();

  const sim::Duration horizon =
      sim::from_seconds(static_cast<double>(samples) / 1000.0 * 1.5) + 5_s;
  p.run_for(horizon);

  if (!test.done()) {
    std::printf("WARNING: only %llu/%llu samples collected\n",
                static_cast<unsigned long long>(test.collected()),
                static_cast<unsigned long long>(samples));
  }

  std::fputs(metrics::min_avg_max_line(test.latencies()).c_str(), stdout);
  std::printf("overruns (period missed entirely): %llu\n",
              static_cast<unsigned long long>(test.overruns()));
  const sim::Duration edges[] = {10_us, 15_us, 20_us, 25_us, 30_us, 50_us, 100_us};
  std::fputs(metrics::cumulative_bucket_table(test.latencies(),
                                              std::span(edges))
                 .c_str(),
             stdout);
  std::fputs(metrics::ascii_histogram(test.latencies()).c_str(), stdout);

  if (opt.trace) {
    if (test.worst_chain()) {
      std::printf("\nworst-sample decomposition:\n%s",
                  test.worst_chain()->format().c_str());
    } else {
      std::printf("\nworst-sample decomposition: no chain captured\n");
    }
    if (!opt.trace_json.empty()) {
      std::vector<kernel::NamedChain> chains;
      if (test.worst_chain()) {
        chains.push_back(
            kernel::NamedChain{"Figure 7: RCIM shielded", *test.worst_chain()});
      }
      if (std::FILE* f = std::fopen(opt.trace_json.c_str(), "w")) {
        std::fputs(kernel::latency_report_json(p.kernel(), chains).c_str(), f);
        std::fclose(f);
        std::printf("latency report written to %s\n", opt.trace_json.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", opt.trace_json.c_str());
      }
    }
  }

  std::printf(
      "\nPaper reference: min 11 us / avg 11.3 us / max 27 us; "
      "all 10,000,000 samples < 0.03 ms\n");
  return 0;
}

// Figure 7: RCIM interrupt response on a shielded CPU (§6.3).
//
// RedHawk 1.4 on a dual 2.0 GHz P4 Xeon with the RCIM PCI card. Load:
// stress-kernel + X11perf on the console + ttcp over 10BaseT Ethernet.
// CPU 1 is shielded; the RCIM timer interrupt and the measuring task are
// bound to it. The ioctl wait path sets the multithreaded-driver flag, so
// no BKL is taken (the kernel change described in §6.3).
//
// Paper: min 11 us, avg 11.3 us, max 27 us over 10,000,000 interrupts.
// The scenario is the registry entry fig7; this binary renders it.
#include <cstdio>
#include <span>
#include <vector>

#include "bench_util.h"
#include "kernel/trace_export.h"
#include "metrics/report.h"
#include "scenario_bench.h"
#include "sim/rng.h"

using namespace sim::literals;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::uint64_t samples = opt.scaled(2'000'000);

  bench::print_header(
      "Figure 7: RCIM interrupt response, shielded CPU "
      "(stress-kernel + x11perf + ttcp-over-Ethernet)");
  std::printf("samples: %llu (paper: 10,000,000)\n",
              static_cast<unsigned long long>(samples));

  const auto specs = bench::specs_for({"fig7"});
  auto runner = bench::make_runner(opt);

  std::string trace_text;
  std::string trace_report;
  config::ScenarioRunner::Hooks hooks;
  if (opt.trace) {
    hooks.configured = [](config::Platform& p) {
      p.engine().chain_tracer().enable();
    };
    hooks.finished = [&](config::Platform& p, rt::Probe& probe) {
      if (probe.worst_chain()) {
        trace_text = "\nworst-sample decomposition:\n" +
                     probe.worst_chain()->format();
      } else {
        trace_text = "\nworst-sample decomposition: no chain captured\n";
      }
      std::vector<kernel::NamedChain> chains;
      if (probe.worst_chain()) {
        chains.push_back(kernel::NamedChain{"Figure 7: RCIM shielded",
                                            *probe.worst_chain()});
      }
      trace_report = kernel::latency_report_json(p.kernel(), chains);
    };
  }

  const auto r =
      runner.run(specs[0], sim::derive_seed(opt.seed, specs[0].name), hooks);

  if (!r.probe.complete) {
    std::printf("WARNING: only %llu/%llu samples collected\n",
                static_cast<unsigned long long>(r.probe.collected),
                static_cast<unsigned long long>(r.probe.expected));
  }
  std::fputs(metrics::min_avg_max_line(r.probe.primary).c_str(), stdout);
  std::printf("overruns (period missed entirely): %llu\n",
              static_cast<unsigned long long>(r.probe.stats.at("overruns")));
  const sim::Duration edges[] = {10_us, 15_us, 20_us, 25_us,
                                 30_us, 50_us, 100_us};
  std::fputs(
      metrics::cumulative_bucket_table(r.probe.primary, std::span(edges))
          .c_str(),
      stdout);
  std::fputs(metrics::ascii_histogram(r.probe.primary).c_str(), stdout);

  if (opt.trace) {
    std::fputs(trace_text.c_str(), stdout);
    if (!opt.trace_json.empty()) {
      if (std::FILE* f = std::fopen(opt.trace_json.c_str(), "w")) {
        std::fputs(trace_report.c_str(), f);
        std::fclose(f);
        std::printf("latency report written to %s\n", opt.trace_json.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", opt.trace_json.c_str());
      }
    }
  }

  std::printf(
      "\nPaper reference: min 11 us / avg 11.3 us / max 27 us; "
      "all 10,000,000 samples < 0.03 ms\n");
  return bench::exit_code(r.probe.complete);
}

// Holdoff tracer: worst interrupts-off and preemption-off intervals per
// kernel configuration under the stress-kernel load.
//
// This is the measurement the low-latency patch effort optimised directly
// (Morton's tracer; Williams' study [5]) and the quantity §6 argues bounds
// worst-case response: "the worst-case time to respond to an interrupt is
// going to be at least as long as the worst-case time that preemption is
// disabled in the kernel."
#include <cstdio>

#include "bench_util.h"
#include "config/platform.h"
#include "metrics/report.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

namespace {

struct Row {
  sim::Duration worst_irq_off;
  sim::Duration worst_preempt_off;
  sim::Duration p999_preempt_off;
};

Row run_case(const config::KernelConfig& kcfg, sim::Duration run_time,
             std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(), kcfg, seed);
  workload::StressKernel{}.install(p);
  p.boot();
  p.run_for(run_time);
  auto& a = p.kernel().auditor();
  metrics::LatencyHistogram all_preempt_off;
  for (int c = 0; c < p.kernel().ncpus(); ++c) {
    all_preempt_off.merge(a.preempt_off(c));
  }
  return Row{a.worst_irq_off(), a.worst_preempt_off(),
             all_preempt_off.count() > 0 ? all_preempt_off.percentile(0.999)
                                         : 0};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const auto run_time = static_cast<sim::Duration>(60.0e9 * opt.scale);

  bench::print_header(
      "Holdoff tracer: worst irq-off / preempt-off under stress-kernel");
  std::printf("simulated time per kernel: %s\n\n",
              sim::format_duration(run_time).c_str());
  std::printf("  %-30s %14s %16s %16s\n", "kernel", "worst irq-off",
              "worst preempt-off", "p99.9 preempt-off");
  std::printf("  %s\n", std::string(80, '-').c_str());

  struct Case {
    const char* name;
    config::KernelConfig cfg;
  };
  const Case cases[] = {
      {"kernel.org 2.4.20", config::KernelConfig::vanilla_2_4_20()},
      {"2.4 + preempt + low-latency", config::KernelConfig::patched_preempt_lowlat()},
      {"RedHawk 1.4", config::KernelConfig::redhawk_1_4()},
  };
  std::uint64_t seed = opt.seed;
  for (const auto& c : cases) {
    const Row r = run_case(c.cfg, run_time, seed++);
    std::printf("  %-30s %14s %16s %16s\n", c.name,
                sim::format_duration(r.worst_irq_off).c_str(),
                sim::format_duration(r.worst_preempt_off).c_str(),
                sim::format_duration(r.p999_preempt_off).c_str());
  }
  std::printf(
      "\nExpected shape: vanilla's preempt-off tail reaches tens of ms (its\n"
      "critical sections); the patched kernels cap it near a millisecond or\n"
      "below. irq-off stays short everywhere — handlers and irq-safe locks\n"
      "are brief; it is the preempt-off tail that the patches attack.\n"
      "Note: on the unpatched kernel the whole syscall is non-preemptible,\n"
      "so its effective holdoff is even larger than the section tail shown.\n");
  return 0;
}

// Holdoff tracer: worst interrupts-off and preemption-off intervals per
// kernel configuration under the stress-kernel load.
//
// This is the measurement the low-latency patch effort optimised directly
// (Morton's tracer; Williams' study [5]) and the quantity §6 argues bounds
// worst-case response: "the worst-case time to respond to an interrupt is
// going to be at least as long as the worst-case time that preemption is
// disabled in the kernel." The kernel ladder is the registry's holdoff-*
// scenarios.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "metrics/report.h"
#include "scenario_bench.h"

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const auto run_time = static_cast<sim::Duration>(60.0e9 * opt.scale);

  bench::print_header(
      "Holdoff tracer: worst irq-off / preempt-off under stress-kernel");
  std::printf("simulated time per kernel: %s\n\n",
              sim::format_duration(run_time).c_str());
  std::printf("  %-30s %14s %16s %16s\n", "kernel", "worst irq-off",
              "worst preempt-off", "p99.9 preempt-off");
  std::printf("  %s\n", std::string(80, '-').c_str());

  const auto specs = bench::specs_for(
      {"holdoff-vanilla", "holdoff-preempt-lowlat", "holdoff-redhawk"});
  auto runner = bench::make_runner(opt);
  const auto results = runner.run_batch(specs, opt.seed);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& pr = results[i].probe;
    const sim::Duration p999 =
        pr.primary.count() > 0 ? pr.primary.percentile(0.999) : 0;
    std::printf(
        "  %-30s %14s %16s %16s\n", specs[i].title.c_str(),
        sim::format_duration(
            static_cast<sim::Duration>(pr.stats.at("worst_irq_off_ns")))
            .c_str(),
        sim::format_duration(
            static_cast<sim::Duration>(pr.stats.at("worst_preempt_off_ns")))
            .c_str(),
        sim::format_duration(p999).c_str());
  }
  std::printf(
      "\nExpected shape: vanilla's preempt-off tail reaches tens of ms (its\n"
      "critical sections); the patched kernels cap it near a millisecond or\n"
      "below. irq-off stays short everywhere — handlers and irq-safe locks\n"
      "are brief; it is the preempt-off tail that the patches attack.\n"
      "Note: on the unpatched kernel the whole syscall is non-preemptible,\n"
      "so its effective holdoff is even larger than the section tail shown.\n");
  return bench::exit_code(bench::all_complete(results));
}

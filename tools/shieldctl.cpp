// shieldctl — command-line front end for the shieldsim library.
//
//   shieldctl list                      list built-in experiments
//   shieldctl run fig6 [--seed N] [--scale X]
//                                       run one experiment, print its figure
//   shieldctl demo [--seconds S]        boot a loaded RedHawk box, shield
//                                       CPU 1 live via /proc, show reports
//   shieldctl inspect [--seconds S]     run stress-kernel and print the
//                                       ps/vmstat/lock tables
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "config/experiment.h"
#include "kernel/stats_report.h"
#include "shieldsim.h"

using namespace sim::literals;

namespace {

struct Args {
  std::uint64_t seed = 2003;
  double scale = 1.0;
  double seconds = 10.0;

  static Args parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i < argc; ++i) {
      if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        a.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
        a.scale = std::strtod(argv[++i], nullptr);
      } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
        a.seconds = std::strtod(argv[++i], nullptr);
      }
    }
    return a;
  }
};

int cmd_list() {
  std::printf("built-in experiments:\n");
  for (const auto& e : config::ExperimentRegistry::builtin().all()) {
    std::printf("  %-16s %s\n", e.name().c_str(), e.description().c_str());
  }
  return 0;
}

int cmd_run(const std::string& name, const Args& a) {
  const auto* e = config::ExperimentRegistry::builtin().find(name);
  if (e == nullptr) {
    std::fprintf(stderr, "unknown experiment '%s' (try: shieldctl list)\n",
                 name.c_str());
    return 1;
  }
  std::printf("running %s (seed %llu, scale %.2f)...\n", name.c_str(),
              static_cast<unsigned long long>(a.seed), a.scale);
  const auto result = e->run(a.seed, a.scale);
  std::fputs(result.render().c_str(), stdout);
  std::printf("(%llu simulator events)\n",
              static_cast<unsigned long long>(result.events));
  return 0;
}

int cmd_demo(const Args& a) {
  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                     config::KernelConfig::redhawk_1_4(), a.seed);
  workload::StressKernel{}.install(p);
  rt::RcimTest::Params rp;
  rp.samples = ~std::uint64_t{0};  // run for the whole demo
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest probe(p.kernel(), p.rcim_driver(), rp);
  p.boot();
  probe.start();

  const auto half = sim::from_seconds(a.seconds / 2);
  std::printf("phase 1: %2.0f s unshielded...\n", a.seconds / 2);
  p.run_for(half);
  const auto unshielded_max = probe.true_latencies().max();

  std::printf("phase 2: echo 2 > /proc/shield/{procs,irqs,ltmr} ...\n");
  auto& fs = p.kernel().procfs();
  fs.write("/proc/irq/5/smp_affinity", "2\n");
  fs.write("/proc/shield/procs", "2\n");
  fs.write("/proc/shield/irqs", "2\n");
  fs.write("/proc/shield/ltmr", "2\n");
  // Fresh histogram for the shielded phase: approximate by tracking the
  // running max before/after (the probe accumulates over both phases).
  p.run_for(half);

  std::printf("\nworst RCIM response, unshielded first half: %s\n",
              sim::format_duration(unshielded_max).c_str());
  std::printf("worst RCIM response, whole run:             %s\n",
              sim::format_duration(probe.true_latencies().max()).c_str());
  std::printf(
      "(if the whole-run max equals the first-half max, the shielded half\n"
      " never exceeded it — shielding held the line)\n\n");
  std::fputs(kernel::format_cpu_table(p.kernel()).c_str(), stdout);
  return 0;
}

int cmd_inspect(const Args& a) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::vanilla_2_4_20(), a.seed);
  workload::StressKernel{}.install(p);
  p.boot();
  p.run_for(sim::from_seconds(a.seconds));
  std::fputs(kernel::format_system_report(p.kernel()).c_str(), stdout);
  auto& aud = p.kernel().auditor();
  std::printf("\nworst irq-off: %s   worst preempt-off: %s\n",
              sim::format_duration(aud.worst_irq_off()).c_str(),
              sim::format_duration(aud.worst_preempt_off()).c_str());
  return 0;
}

void usage(const char* argv0) {
  std::printf(
      "usage:\n"
      "  %s list\n"
      "  %s run <experiment> [--seed N] [--scale X]\n"
      "  %s demo [--seconds S] [--seed N]\n"
      "  %s inspect [--seconds S] [--seed N]\n",
      argv0, argv0, argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "run" && argc >= 3) {
    return cmd_run(argv[2], Args::parse(argc, argv, 3));
  }
  if (cmd == "demo") return cmd_demo(Args::parse(argc, argv, 2));
  if (cmd == "inspect") return cmd_inspect(Args::parse(argc, argv, 2));
  usage(argv[0]);
  return 1;
}

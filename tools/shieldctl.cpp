// shieldctl — command-line front end for the shieldsim library.
//
//   shieldctl list [--group G]          list registry scenarios
//   shieldctl describe <scenario>       print a scenario's spec JSON + digest
//   shieldctl run <scenario>... [--jobs N] [--json] [--smoke]
//   shieldctl run --all [--jobs N] [--json] [--smoke]
//                                       run scenarios (in parallel with
//                                       --jobs), print figures or JSON
//   shieldctl stat <scenario>           run one scenario with telemetry on
//                                       and print its counters (table,
//                                       --json or --prom)
//   shieldctl demo [--seconds S]        boot a loaded RedHawk box, shield
//                                       CPU 1 live via /proc, show reports
//   shieldctl inspect [--seconds S]     run stress-kernel and print the
//                                       ps/vmstat/lock tables
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "config/experiment.h"
#include "config/scenario_runner.h"
#include "config/telemetry_export.h"
#include "kernel/stats_report.h"
#include "shieldsim.h"
#include "telemetry/registry.h"

using namespace sim::literals;

namespace {

void usage(const char* argv0, std::FILE* to) {
  std::fprintf(
      to,
      "usage:\n"
      "  %s list [--group G] [--json]\n"
      "  %s describe <scenario>\n"
      "  %s run <scenario>... [options]\n"
      "  %s run --all [options]\n"
      "  %s stat <scenario> [--seed N] [--scale X] [--top N] [--json|--prom]\n"
      "  %s demo [--seconds S] [--seed N]\n"
      "  %s inspect [--seconds S] [--seed N]\n"
      "run options:\n"
      "  --jobs N        worker threads (default: all cores)\n"
      "  --seed N        root RNG seed (default 2003; per-scenario seeds\n"
      "                  derive from it by name)\n"
      "  --scale X       multiply sample counts / fixed horizons by X\n"
      "  --smoke         shorthand for --scale 0.01\n"
      "  --json          print {spec, result} JSON per scenario instead of\n"
      "                  the rendered figure\n"
      "  --cache-dir D   persist results under D keyed by (digest, seed,\n"
      "                  scale); later runs reuse them\n"
      "  --report PATH   write the degraded-run batch report JSON to PATH\n"
      "                  (per-spec ok/retried/failed/timed_out + cache\n"
      "                  repairs); a failing spec no longer aborts the "
      "batch\n"
      "  --telemetry     force the sampler on for every selected scenario\n"
      "                  (results gain a telemetry document; digests "
      "change)\n"
      "  --mechanism M   override the interrupt-delivery mechanism for every\n"
      "                  selected scenario (inband|oob; non-default digests\n"
      "                  change)\n"
      "  --max-events N  watchdog: abort a run after N simulated events\n"
      "  --wall-limit S  watchdog: abort a run after S wall-clock seconds\n"
      "  --no-prefix     disable prefix-snapshot sharing (scenarios with\n"
      "                  the same machine+kernel+workloads normally fork\n"
      "                  one warmed snapshot instead of booting each time)\n"
      "stat options:\n"
      "  --top N         show the N largest series (default 25; 0 = all)\n"
      "  --json          print the full telemetry document\n"
      "  --prom          print the Prometheus text exposition\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0);
}

[[noreturn]] void bad_arg(char** argv, const char* what) {
  std::fprintf(stderr, "%s: %s\n", argv[0], what);
  usage(argv[0], stderr);
  std::exit(2);
}

struct RunArgs {
  std::vector<std::string> names;
  bool all = false;
  bool json = false;
  std::uint64_t seed = 2003;
  double scale = 1.0;
  unsigned jobs = 0;
  std::string cache_dir;
  std::string report_path;
  bool telemetry = false;
  std::uint64_t max_events = 0;
  double wall_limit_s = 0.0;
  bool no_prefix = false;
  std::string mechanism;  ///< empty = leave each spec's own mechanism
};

RunArgs parse_run(int argc, char** argv, int from) {
  RunArgs a;
  const auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      bad_arg(argv, (std::string("missing value for ") + argv[i]).c_str());
    }
  };
  for (int i = from; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all") == 0) {
      a.all = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      a.json = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      a.scale = 0.01;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      need_value(i);
      a.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      need_value(i);
      a.scale = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      need_value(i);
      a.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      need_value(i);
      a.cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0) {
      need_value(i);
      a.report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      a.telemetry = true;
    } else if (std::strcmp(argv[i], "--mechanism") == 0) {
      need_value(i);
      a.mechanism = argv[++i];
      if (a.mechanism != "inband" && a.mechanism != "oob") {
        bad_arg(argv, "--mechanism expects 'inband' or 'oob'");
      }
    } else if (std::strcmp(argv[i], "--max-events") == 0) {
      need_value(i);
      a.max_events = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--wall-limit") == 0) {
      need_value(i);
      a.wall_limit_s = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--no-prefix") == 0) {
      a.no_prefix = true;
    } else if (argv[i][0] == '-') {
      bad_arg(argv, (std::string("unknown option '") + argv[i] + "'").c_str());
    } else {
      a.names.emplace_back(argv[i]);
    }
  }
  return a;
}

int cmd_list(int argc, char** argv) {
  std::string group;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--group") == 0 && i + 1 < argc) {
      group = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      bad_arg(argv, (std::string("unknown option '") + argv[i] + "'").c_str());
    }
  }
  const auto& reg = config::ScenarioRegistry::builtin();
  if (json) {
    auto arr = config::json::Value::array();
    for (const auto& s : reg.all()) {
      if (!group.empty() && s.group != group) continue;
      auto e = config::json::Value::object();
      e.set("name", s.name);
      e.set("group", s.group);
      e.set("title", s.title);
      e.set("probe", s.probe);
      e.set("mechanism", s.mechanism);
      arr.push(std::move(e));
    }
    std::printf("%s\n", arr.dump(2).c_str());
    return 0;
  }
  std::printf("built-in scenarios:\n");
  for (const auto& s : reg.all()) {
    if (!group.empty() && s.group != group) continue;
    std::printf("  %-28s [%-10s]%s %s\n", s.name.c_str(), s.group.c_str(),
                s.mechanism == "oob" ? " (oob)" : "", s.title.c_str());
  }
  return 0;
}

int cmd_describe(const std::string& name) {
  const auto* s = config::ScenarioRegistry::builtin().find(name);
  if (s == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try: shieldctl list)\n",
                 name.c_str());
    return 1;
  }
  std::printf("%s\n", s->to_json().dump(2).c_str());
  std::printf("mechanism: %s\n", s->mechanism.c_str());
  std::printf("digest: %s\n", s->digest().c_str());
  return 0;
}

int cmd_run(const RunArgs& a) {
  const auto& reg = config::ScenarioRegistry::builtin();
  std::vector<config::ScenarioSpec> specs;
  if (a.all) {
    specs = reg.all();
  } else {
    if (a.names.empty()) {
      std::fprintf(stderr, "run: no scenario names (or --all) given\n");
      return 2;
    }
    for (const auto& n : a.names) {
      const auto* s = reg.find(n);
      if (s == nullptr) {
        std::fprintf(stderr, "unknown scenario '%s' (try: shieldctl list)\n",
                     n.c_str());
        return 1;
      }
      specs.push_back(*s);
    }
  }
  if (a.telemetry) {
    for (auto& s : specs) s.telemetry.sampler = true;
  }
  if (!a.mechanism.empty()) {
    for (auto& s : specs) s.mechanism = a.mechanism;
  }

  config::ScenarioRunner::Options ro;
  ro.jobs = a.jobs;
  ro.scale = a.scale;
  ro.cache_dir = a.cache_dir;
  ro.max_events = a.max_events;
  ro.wall_limit_s = a.wall_limit_s;
  ro.prefix_reuse = !a.no_prefix;
  config::ScenarioRunner runner(ro);

  if (!a.json) {
    std::printf("running %zu scenario%s (seed %llu, scale %g)...\n",
                specs.size(), specs.size() == 1 ? "" : "s",
                static_cast<unsigned long long>(a.seed), a.scale);
  }
  // Hardened batch: a failing or hanging spec is recorded in its outcome
  // and the rest of the batch still runs to completion.
  const auto report = runner.run_batch_report(specs, a.seed);

  bool all_complete = true;
  if (a.json) {
    // One {spec, outcome[, result]} object per scenario: everything needed
    // to re-execute or verify the run round-trips through this output.
    auto arr = config::json::Value::array();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto& out = report.outcomes[i];
      auto entry = config::json::Value::object();
      entry.set("spec", specs[i].to_json());
      entry.set("outcome", out.to_json());
      if (out.result.has_value()) {
        entry.set("result", out.result->to_json());
        all_complete = all_complete && out.result->probe.complete;
      }
      arr.push(std::move(entry));
    }
    std::printf("%s\n", arr.dump(2).c_str());
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto& out = report.outcomes[i];
      if (out.result.has_value()) {
        std::fputs(out.result->render(specs[i]).c_str(), stdout);
        std::printf("(%llu simulator events%s%s)\n",
                    static_cast<unsigned long long>(out.result->events),
                    out.result->from_cache ? ", cached" : "",
                    out.status == config::RunStatus::kRetried ? ", retried"
                                                              : "");
        all_complete = all_complete && out.result->probe.complete;
      } else {
        std::fprintf(stderr, "%s: %s: %s\n", specs[i].name.c_str(),
                     to_string(out.status), out.error.c_str());
      }
    }
  }
  if (!a.json && report.prefix_hits + report.prefix_misses > 0) {
    const double rate =
        static_cast<double>(report.prefix_hits) /
        static_cast<double>(report.prefix_hits + report.prefix_misses);
    std::printf(
        "fork reuse: %llu of %llu runs forked a shared prefix snapshot "
        "(%.0f%% hit rate)\n",
        static_cast<unsigned long long>(report.prefix_hits),
        static_cast<unsigned long long>(report.prefix_hits +
                                        report.prefix_misses),
        100.0 * rate);
  }
  // Per-mechanism pass/fail breakdown whenever the batch mixed mechanisms
  // in (mirrors the report JSON's by_mechanism object).
  bool mixed_mechanisms = false;
  for (const auto& out : report.outcomes) {
    if (out.mechanism != "inband") mixed_mechanisms = true;
  }
  if (!a.json && mixed_mechanisms) {
    std::map<std::string, std::pair<std::size_t, std::size_t>> mech;
    for (const auto& out : report.outcomes) {
      auto& [okc, failc] = mech[out.mechanism];
      (out.ok() ? okc : failc)++;
    }
    for (const auto& [kind, counts] : mech) {
      std::printf("mechanism %-7s %zu ok, %zu failed\n", kind.c_str(),
                  counts.first, counts.second);
    }
  }
  if (!a.report_path.empty()) {
    std::FILE* f = std::fopen(a.report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write report to '%s'\n",
                   a.report_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", report.to_json().dump(2).c_str());
    std::fclose(f);
  }
  if (!report.all_ok()) {
    std::fprintf(stderr,
                 "error: %zu of %zu scenarios failed (%zu timed out); see "
                 "the outcomes above%s\n",
                 report.count(config::RunStatus::kFailed) +
                     report.count(config::RunStatus::kTimedOut),
                 report.outcomes.size(),
                 report.count(config::RunStatus::kTimedOut),
                 a.report_path.empty() ? "" : " or the --report file");
  }
  if (!all_complete) {
    std::fprintf(stderr,
                 "warning: some scenarios did not reach their sample "
                 "targets inside the horizon\n");
  }
  return report.all_ok() && all_complete ? 0 : 1;
}

struct StatArgs {
  std::string name;
  std::uint64_t seed = 2003;
  double scale = 1.0;
  std::size_t top = 25;
  bool json = false;
  bool prom = false;
};

StatArgs parse_stat(int argc, char** argv, int from) {
  StatArgs a;
  const auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      bad_arg(argv, (std::string("missing value for ") + argv[i]).c_str());
    }
  };
  for (int i = from; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0) {
      need_value(i);
      a.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      need_value(i);
      a.scale = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      a.scale = 0.01;
    } else if (std::strcmp(argv[i], "--top") == 0) {
      need_value(i);
      a.top = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      a.json = true;
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      a.prom = true;
    } else if (argv[i][0] == '-') {
      bad_arg(argv, (std::string("unknown option '") + argv[i] + "'").c_str());
    } else if (a.name.empty()) {
      a.name = argv[i];
    } else {
      bad_arg(argv, "stat takes exactly one scenario");
    }
  }
  if (a.name.empty()) bad_arg(argv, "stat: no scenario name given");
  return a;
}

int cmd_stat(const StatArgs& a) {
  const auto* base = config::ScenarioRegistry::builtin().find(a.name);
  if (base == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try: shieldctl list)\n",
                 a.name.c_str());
    return 1;
  }
  config::ScenarioSpec spec = *base;
  spec.telemetry.sampler = true;  // stat is pointless without the sampler

  config::ScenarioRunner::Options ro;
  ro.scale = a.scale;
  ro.cache = false;  // hooks force a fresh run anyway; don't pollute caches
  config::ScenarioRunner runner(ro);

  // The registry lives on the engine inside the run's Platform, so the
  // Prometheus text and the top-N snapshot must be harvested through the
  // finished hook, while the platform is still alive.
  std::string prom;
  std::vector<telemetry::Registry::Sample> samples;
  config::ScenarioRunner::Hooks hooks;
  hooks.finished = [&](config::Platform& p, rt::Probe&) {
    prom = p.engine().telemetry().prometheus_text();
    samples = p.engine().telemetry().snapshot();
  };
  const auto r = runner.run(spec, a.seed, hooks);

  if (a.prom) {
    std::fputs(prom.c_str(), stdout);
    return 0;
  }
  if (a.json) {
    std::printf("%s\n", r.telemetry.dump(2).c_str());
    return 0;
  }
  std::stable_sort(samples.begin(), samples.end(),
                   [](const auto& x, const auto& y) { return x.value > y.value; });
  std::printf("%s: %zu series after %llu events (seed %llu, scale %g)\n",
              spec.name.c_str(), samples.size(),
              static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(a.seed), a.scale);
  std::size_t shown = 0;
  for (const auto& s : samples) {
    if (a.top != 0 && shown >= a.top) break;
    if (s.value == 0) continue;  // quiet series are noise in a top table
    std::printf("  %-44s %14llu  (%s)\n", s.series.c_str(),
                static_cast<unsigned long long>(s.value),
                to_string(s.kind));
    ++shown;
  }
  if (shown == 0) std::printf("  (all series are zero)\n");
  return 0;
}

struct Args {
  std::uint64_t seed = 2003;
  double seconds = 10.0;

  static Args parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i < argc; ++i) {
      if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        a.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
        a.seconds = std::strtod(argv[++i], nullptr);
      } else {
        bad_arg(argv,
                (std::string("unknown option '") + argv[i] + "'").c_str());
      }
    }
    return a;
  }
};

int cmd_demo(const Args& a) {
  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                     config::KernelConfig::redhawk_1_4(), a.seed);
  workload::StressKernel{}.install(p);
  rt::RcimTest::Params rp;
  rp.samples = ~std::uint64_t{0};  // run for the whole demo
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest probe(p.kernel(), p.rcim_driver(), rp);
  p.boot();
  probe.start();

  const auto half = sim::from_seconds(a.seconds / 2);
  std::printf("phase 1: %2.0f s unshielded...\n", a.seconds / 2);
  p.run_for(half);
  const auto unshielded_max = probe.true_latencies().max();

  std::printf("phase 2: echo 2 > /proc/shield/{procs,irqs,ltmr} ...\n");
  auto& fs = p.kernel().procfs();
  fs.write("/proc/irq/5/smp_affinity", "2\n");
  fs.write("/proc/shield/procs", "2\n");
  fs.write("/proc/shield/irqs", "2\n");
  fs.write("/proc/shield/ltmr", "2\n");
  // Fresh histogram for the shielded phase: approximate by tracking the
  // running max before/after (the probe accumulates over both phases).
  p.run_for(half);

  std::printf("\nworst RCIM response, unshielded first half: %s\n",
              sim::format_duration(unshielded_max).c_str());
  std::printf("worst RCIM response, whole run:             %s\n",
              sim::format_duration(probe.true_latencies().max()).c_str());
  std::printf(
      "(if the whole-run max equals the first-half max, the shielded half\n"
      " never exceeded it — shielding held the line)\n\n");
  std::fputs(kernel::format_cpu_table(p.kernel()).c_str(), stdout);
  return 0;
}

int cmd_inspect(const Args& a) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::vanilla_2_4_20(), a.seed);
  workload::StressKernel{}.install(p);
  p.boot();
  p.run_for(sim::from_seconds(a.seconds));
  std::fputs(kernel::format_system_report(p.kernel()).c_str(), stdout);
  auto& aud = p.kernel().auditor();
  std::printf("\nworst irq-off: %s   worst preempt-off: %s\n",
              sim::format_duration(aud.worst_irq_off()).c_str(),
              sim::format_duration(aud.worst_preempt_off()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0], stderr);
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list(argc, argv);
  if (cmd == "describe" && argc >= 3) return cmd_describe(argv[2]);
  if (cmd == "run") return cmd_run(parse_run(argc, argv, 2));
  if (cmd == "stat") return cmd_stat(parse_stat(argc, argv, 2));
  if (cmd == "demo") return cmd_demo(Args::parse(argc, argv, 2));
  if (cmd == "inspect") return cmd_inspect(Args::parse(argc, argv, 2));
  if (cmd == "--help" || cmd == "help") {
    usage(argv[0], stdout);
    return 0;
  }
  usage(argv[0], stderr);
  return 1;
}

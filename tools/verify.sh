#!/usr/bin/env bash
# Tier-1 verify flow: the plain build + tests, then the same tests under
# ASan+UBSan so the calendar's slot reuse and the threaded bench
# SweepRunner stay sanitizer-clean, then a build with the chain tracer
# compiled out (-DSHIELDSIM_CHAIN_TRACE=0) so the stubbed emit sites keep
# compiling and the figure pipeline works without the tracer.
# ASan aborts on the first finding (-fno-sanitize-recover=all), so any
# sanitizer hit fails its test and set -e stops the script there.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

cmake --preset default
cmake --build --preset default -j "${jobs}"
ctest --preset default

# Whole-registry smoke: every built-in scenario through the parallel
# ScenarioRunner at 1% scale. Exits nonzero when any scenario misses its
# sample target, so registry rot (bad spec, broken preset token) fails
# verify even though no unit test names that scenario.
./build/tools/shieldctl run --all --smoke --jobs "${jobs}" > /dev/null

# Hardened-execution smoke: populate a disk cache, corrupt a few real
# entries the way a crashed writer or bit rot would, then re-run. The
# runner must quarantine the corrupt files, recompute them, still exit 0,
# and account for the repairs in the degraded-run report.
cachedir="$(mktemp -d)"
trap 'rm -rf "${cachedir}"' EXIT
./build/tools/shieldctl run --all --smoke --jobs "${jobs}" \
  --cache-dir "${cachedir}" > /dev/null
corrupted=0
for f in "${cachedir}"/*.json; do
  if [ "${corrupted}" -lt 3 ]; then
    printf '{"format":"shieldsim-cache-v1","checksum":"tru' > "${f}"
    corrupted=$((corrupted + 1))
  fi
done
./build/tools/shieldctl run --all --smoke --jobs "${jobs}" \
  --cache-dir "${cachedir}" --report "${cachedir}/report.json" > /dev/null
python3 - "${cachedir}/report.json" "${corrupted}" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "degraded-run-report-v1", report
assert report["failed"] == 0 and report["timed_out"] == 0, report
assert report["ok"] == report["total"] > 0, report
assert report["cache_entries_recomputed"] >= int(sys.argv[2]), report
EOF

# Telemetry smoke: a fault scenario with the sampler forced on must yield a
# Prometheus exposition that parses line-by-line and a timeline with points,
# and a forced watchdog timeout must leave a flight-recorder dump in the
# degraded-run report. Also the trace_report regression: empty/garbage chain
# files exit 1 with a message instead of a traceback.
./build/tools/shieldctl stat faults-storm-shielded --smoke --prom \
  > "${cachedir}/telemetry.prom"
./build/tools/shieldctl stat faults-storm-shielded --smoke --json \
  > "${cachedir}/telemetry.json"
./build/tools/shieldctl run faults-storm-shielded --smoke --max-events 20000 \
  --report "${cachedir}/timeout-report.json" > /dev/null 2>&1 && {
    echo "verify: watchdogged run unexpectedly exited 0"; exit 1; } || true
python3 - "${cachedir}" <<'EOF'
import json, os, sys
d = sys.argv[1]
lines = [l for l in open(os.path.join(d, "telemetry.prom"))
         if l.strip() and not l.startswith("#")]
assert lines, "empty prometheus exposition"
for line in lines:
    name, value = line.rsplit(None, 1)
    assert name.startswith("shieldsim_"), line
    int(value)  # every sample parses as an integer
doc = json.load(open(os.path.join(d, "telemetry.json")))
assert doc["schema"] == "telemetry-v1", doc.get("schema")
assert doc["timeline"]["points"], "sampler produced no points"
assert any(doc["counters"].values()), "all counters zero"
report = json.load(open(os.path.join(d, "timeout-report.json")))
assert report["timed_out"] == 1, report
dump = report["outcomes"][0]["flight_recording"]
assert dump["schema"] == "flight-recorder-v1", dump
assert dump["events"], "flight dump has no events"
EOF

# Forked-child degradation: two specs that share a simulated prefix, with an
# event budget between their costs, so the first (cold) run completes and the
# second — forked from the shared prefix snapshot — hits the watchdog. The
# report must show the prefix hit AND attach the child's own flight recording
# to the timed-out outcome, not the prefix parent's.
./build/tools/shieldctl run abl-shield-full faults-storm-shielded --smoke \
  --max-events 100000 --report "${cachedir}/fork-timeout-report.json" \
  > /dev/null 2>&1 && {
    echo "verify: forked watchdogged run unexpectedly exited 0"; exit 1; } || true
python3 - "${cachedir}/fork-timeout-report.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "degraded-run-report-v1", report
assert report["timed_out"] == 1 and report["ok"] == 1, report
reuse = report["prefix_reuse"]
assert reuse["hits"] >= 1, reuse
by_name = {o["name"]: o for o in report["outcomes"]}
assert by_name["abl-shield-full"]["status"] == "ok", by_name
doomed = by_name["faults-storm-shielded"]
assert doomed["status"] == "timed_out", doomed
dump = doomed["flight_recording"]
assert dump["schema"] == "flight-recorder-v1", dump
assert dump["events"], "forked child's flight dump has no events"
EOF
# Out-of-band delivery smoke: the whole faults-* family re-run with the
# oob mechanism forced on through the CLI. The rival mechanism must survive
# every hostile fault plan (storms, SMI stalls, lost/duplicated edges,
# timer drift) end-to-end — all ok, counted under the report's
# per-mechanism breakdown, and the storm plan must not push the oob stage
# anywhere near the shielded in-band kernel's tens of microseconds.
oob_faults() {
  local ctl="$1" out="$2"
  "${ctl}" run faults-storm-shielded faults-storm-unshielded \
    faults-smi-shielded faults-lost-dup-shielded faults-drift-shielded \
    --smoke --jobs "${jobs}" --mechanism oob --json --report "${out}" \
    > "${out%.json}-results.json"
  python3 - "${out}" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["failed"] == 0 and report["timed_out"] == 0, report
mech = report["by_mechanism"]
assert mech["oob"]["ok"] == report["total"] > 0, report
results = json.load(open(sys.argv[1][:-5] + "-results.json"))
for r in results:
    worst = r["result"]["probe"]["primary"]["summary"]["max"]
    assert worst < 10_000, (r["spec"]["name"], worst)
EOF
}
oob_faults ./build/tools/shieldctl "${cachedir}/oob-report.json"

python3 tools/telemetry_report.py "${cachedir}/telemetry.json" > /dev/null
: > "${cachedir}/empty.json"
if python3 tools/trace_report.py "${cachedir}/empty.json" \
    2> "${cachedir}/trace-err.txt"; then
  echo "verify: trace_report accepted an empty file"; exit 1
fi
grep -q "empty" "${cachedir}/trace-err.txt"

cmake --preset asan
cmake --build --preset asan -j "${jobs}"
ctest --preset asan

# The oob faults family again under ASan+UBSan: the stage's context
# interpreter, captured-timer rearming and stall charging all run off the
# kernel's usual paths, so they get their own sanitizer pass.
oob_faults ./build-asan/tools/shieldctl "${cachedir}/oob-asan-report.json"

cmake -S . -B build-notrace -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSHIELDSIM_CHAIN_TRACE=OFF
cmake --build build-notrace -j "${jobs}"
ctest --test-dir build-notrace --output-on-failure -j 4

# Snapshot bit-identity, explicitly, in both hardened builds: every builtin
# spec must survive a mid-run capture/restore byte-identically (probe output,
# latency JSON, telemetry timeline), and prefix-forked runs must match cold
# runs. ctest above already covers these; the standalone invocations make the
# gate visible and keep it failing loudly if the suites are ever renamed or
# filtered out of the ctest registration.
./build-asan/tests/shieldsim_tests \
  --gtest_filter='SnapshotBitIdentity.*:PrefixReuse.*' --gtest_brief=1
./build-notrace/tests/shieldsim_tests \
  --gtest_filter='SnapshotBitIdentity.*:PrefixReuse.*' --gtest_brief=1

#!/usr/bin/env bash
# Tier-1 verify flow: the plain build + tests, then the same tests under
# ASan+UBSan so the calendar's slot reuse and the threaded bench
# SweepRunner stay sanitizer-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

cmake --preset default
cmake --build --preset default -j "${jobs}"
ctest --preset default

cmake --preset asan
cmake --build --preset asan -j "${jobs}"
ctest --preset asan

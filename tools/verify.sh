#!/usr/bin/env bash
# Tier-1 verify flow: the plain build + tests, then the same tests under
# ASan+UBSan so the calendar's slot reuse and the threaded bench
# SweepRunner stay sanitizer-clean, then a build with the chain tracer
# compiled out (-DSHIELDSIM_CHAIN_TRACE=0) so the stubbed emit sites keep
# compiling and the figure pipeline works without the tracer.
# ASan aborts on the first finding (-fno-sanitize-recover=all), so any
# sanitizer hit fails its test and set -e stops the script there.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

cmake --preset default
cmake --build --preset default -j "${jobs}"
ctest --preset default

# Whole-registry smoke: every built-in scenario through the parallel
# ScenarioRunner at 1% scale. Exits nonzero when any scenario misses its
# sample target, so registry rot (bad spec, broken preset token) fails
# verify even though no unit test names that scenario.
./build/tools/shieldctl run --all --smoke --jobs "${jobs}" > /dev/null

cmake --preset asan
cmake --build --preset asan -j "${jobs}"
ctest --preset asan

cmake -S . -B build-notrace -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSHIELDSIM_CHAIN_TRACE=OFF
cmake --build build-notrace -j "${jobs}"
ctest --test-dir build-notrace --output-on-failure -j 4

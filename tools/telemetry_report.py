#!/usr/bin/env python3
"""Render a telemetry document (shieldctl stat --json / result.telemetry).

Default mode prints the final counters (largest first) and, when the
document carries a sampler timeline, a per-series activity summary with a
sparkline of per-tick deltas — which simulated interval an IRQ storm or a
softirq flood actually occupied, not just its total.

Diff mode (--diff A B) compares the final counters of two runs and prints
the series that moved, largest absolute change first: the quickest way to
see what a kernel-config or shielding change did to a scenario.

Accepted inputs: a telemetry-v1 object, a `shieldctl run --json` array
(every entry with a telemetry document is rendered), or any object with a
result.telemetry / telemetry member.

Stdlib only; no third-party dependencies.

Usage:
  tools/telemetry_report.py DOC.json [--top N]
  tools/telemetry_report.py --diff A.json B.json [--top N]
"""

import json
import os
import sys

SPARK = "▁▂▃▄▅▆▇█"


class ReportError(Exception):
    """An input that cannot be rendered; message names file and cause."""


def load_json(path):
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        raise ReportError(f"{path}: cannot read: {e.strerror}")
    if not text.strip():
        raise ReportError(f"{path}: file is empty")
    try:
        return json.loads(text)
    except json.JSONDecodeError as e:
        raise ReportError(f"{path}: not valid JSON ({e})")


def extract_docs(obj, path):
    """Pull every telemetry-v1 document out of whatever shape we were fed."""
    if isinstance(obj, dict):
        if obj.get("schema") == "telemetry-v1":
            return [("", obj)]
        for key in ("telemetry",):
            if isinstance(obj.get(key), dict):
                return [("", obj[key])]
        result = obj.get("result")
        if isinstance(result, dict) and isinstance(result.get("telemetry"), dict):
            name = obj.get("spec", {}).get("name", "")
            return [(name, result["telemetry"])]
    if isinstance(obj, list):
        docs = []
        for entry in obj:
            if isinstance(entry, dict):
                docs.extend(extract_docs(entry, path))
        if docs:
            return docs
    raise ReportError(
        f"{path}: no telemetry document found — expected telemetry-v1 "
        "(from `shieldctl stat --json`, or `shieldctl run --telemetry "
        "--json`; plain runs carry no telemetry)")


def sparkline(values, width=32):
    """Downsample per-tick deltas into a fixed-width unicode sparkline."""
    if not values:
        return ""
    if len(values) > width:
        chunk = len(values) / width
        values = [
            sum(values[int(i * chunk):max(int(i * chunk) + 1,
                                          int((i + 1) * chunk))])
            for i in range(width)
        ]
    peak = max(values)
    if peak == 0:
        return SPARK[0] * len(values)
    return "".join(SPARK[min(len(SPARK) - 1,
                             int(v * len(SPARK) / (peak + 1)))]
                   for v in values)


def timeline_activity(doc):
    """Per-series list of per-tick deltas from the sparse timeline."""
    timeline = doc.get("timeline")
    if not isinstance(timeline, dict):
        return None, None
    series = timeline.get("series", [])
    ticks = timeline.get("points", [])
    activity = {}
    for t, point in enumerate(ticks):
        for index, delta in point.get("d", []):
            if index >= len(series):
                continue  # series registered after the name list was taken
            row = activity.setdefault(series[index], [0] * len(ticks))
            row[t] = delta
    return timeline, activity


def print_doc(name, doc, top):
    if name:
        print(f"== {name} ==")
    counters = doc.get("counters", {})
    nonzero = sorted(((v, k) for k, v in counters.items() if v),
                     reverse=True)
    print(f"{len(counters)} series, {len(nonzero)} non-zero")
    for value, series in nonzero[:top] if top else nonzero:
        print(f"  {series:<44} {value:>14}")
    if top and len(nonzero) > top:
        print(f"  ... {len(nonzero) - top} more (raise --top)")

    timeline, activity = timeline_activity(doc)
    if timeline is None:
        return
    ticks = timeline.get("points", [])
    period = timeline.get("period_ns", 0)
    print(f"\ntimeline: {len(ticks)} points every {period} ns")
    busiest = sorted(activity.items(), key=lambda kv: -sum(kv[1]))
    for series, deltas in busiest[:top] if top else busiest:
        total = sum(deltas)
        if total == 0:
            continue
        print(f"  {series:<44} {total:>14}  {sparkline(deltas)}")


def print_diff(path_a, path_b, top):
    docs_a = extract_docs(load_json(path_a), path_a)
    docs_b = extract_docs(load_json(path_b), path_b)
    if len(docs_a) != 1 or len(docs_b) != 1:
        raise ReportError("--diff needs exactly one telemetry document "
                          "per file")
    a = docs_a[0][1].get("counters", {})
    b = docs_b[0][1].get("counters", {})
    rows = []
    for series in sorted(set(a) | set(b)):
        va, vb = a.get(series, 0), b.get(series, 0)
        if va != vb:
            rows.append((abs(vb - va), series, va, vb))
    rows.sort(reverse=True)
    print(f"a: {path_a}\nb: {path_b}")
    print(f"{len(rows)} of {len(set(a) | set(b))} series differ")
    print(f"  {'series':<44} {'a':>14} {'b':>14} {'delta':>15}")
    for _, series, va, vb in rows[:top] if top else rows:
        print(f"  {series:<44} {va:>14} {vb:>14} {vb - va:>+15}")
    if top and len(rows) > top:
        print(f"  ... {len(rows) - top} more (raise --top)")


def main(argv):
    args = argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    top = 25
    if "--top" in args:
        i = args.index("--top")
        try:
            top = int(args[i + 1])
        except (IndexError, ValueError):
            print("telemetry_report: --top needs an integer", file=sys.stderr)
            return 2
        del args[i:i + 2]
    try:
        if args and args[0] == "--diff":
            if len(args) != 3:
                print("telemetry_report: --diff needs exactly two files",
                      file=sys.stderr)
                return 2
            print_diff(args[1], args[2], top)
            return 0
        for i, path in enumerate(args):
            if i:
                print()
            docs = extract_docs(load_json(path), path)
            multiple = len(docs) > 1
            for j, (name, doc) in enumerate(docs):
                if j:
                    print()
                print_doc(name if multiple or name else path, doc, top)
        return 0
    except ReportError as e:
        print(f"telemetry_report: {e}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Track the microbenchmark trajectory across PRs.

Runs ``bench/microbench`` with ``--benchmark_format=json`` and appends one
entry (git revision, label, per-benchmark cpu time) to ``BENCH_micro.json``
at the repo root. Run it once per PR so regressions in the simulator's hot
paths show up as a trend, not a surprise:

    tools/bench_trend.py --label "pr1 timing wheel"

Compare the last two entries:

    tools/bench_trend.py --compare

Gate on regressions (CI): exits nonzero when any benchmark's cpu time in
the latest entry is more than 10% above the previous entry's:

    tools/bench_trend.py --check [--tolerance 0.10]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BIN = os.path.join(REPO_ROOT, "build", "bench", "microbench")
DEFAULT_SHIELDCTL = os.path.join(REPO_ROOT, "build", "tools", "shieldctl")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_micro.json")


def git_rev():
    try:
        return subprocess.check_output(
            ["git", "-C", REPO_ROOT, "rev-parse", "--short", "HEAD"],
            text=True).strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def load_history(path):
    if not os.path.exists(path):
        return []
    with open(path) as f:
        return json.load(f)


def run_bench(binary, bench_filter, min_time, repetitions):
    cmd = [binary, "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    if min_time:
        cmd.append(f"--benchmark_min_time={min_time}")
    if repetitions > 1:
        cmd.append(f"--benchmark_repetitions={repetitions}")
    raw = subprocess.check_output(cmd, text=True)
    report = json.loads(raw)
    # Collect the per-repetition runs and record each benchmark's *median*
    # cpu time: single-shot numbers on a shared machine swing by +/-15%,
    # which is useless against a 2% overhead gate.
    runs = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        runs.setdefault(b["name"], []).append(b)
    benchmarks = {}
    for name, reps in runs.items():
        reps.sort(key=lambda b: b["cpu_time"])
        mid = reps[len(reps) // 2]
        entry = {
            "cpu_time": mid["cpu_time"],
            # Best-of-N: scheduler interference on a shared box is strictly
            # additive, so the min is the noise-robust estimator the tight
            # overhead gates compare.
            "cpu_time_min": reps[0]["cpu_time"],
            "time_unit": mid["time_unit"],
            "iterations": mid["iterations"],
            "repetitions": len(reps),
        }
        if "events" in mid:  # user counter: simulated events per iteration
            entry["events"] = mid["events"]
        if "dispatches" in mid:  # user counter: oob-stage deliveries
            entry["dispatches"] = mid["dispatches"]
        benchmarks[name] = entry
    return report.get("context", {}), benchmarks


def injector_overhead(benchmarks):
    """What attaching a fault::Injector with an *empty* FaultPlan costs,
    per simulated event. The design contract is ~zero (no hooks installed,
    no RNG draws); this keeps it measured instead of assumed."""
    base = benchmarks.get("BM_SimulatedSecondUnderStressKernel")
    empty = benchmarks.get("BM_SimulatedSecondWithFaultInjector/0")
    if not base or not empty or not empty.get("events"):
        return None
    if base["time_unit"] != "ms" or empty["time_unit"] != "ms":
        return None
    bt = base.get("cpu_time_min", base["cpu_time"])
    et = empty.get("cpu_time_min", empty["cpu_time"])
    delta_ns = (et - bt) * 1e6
    return {
        "empty_plan_ns_per_event": round(delta_ns / empty["events"], 4),
        "empty_plan_pct": round(100.0 * (et / bt - 1.0), 2),
    }


def telemetry_overhead(benchmarks):
    """What leaving the sampler + flight recorder enabled costs, per
    simulated event, against the same scenario with telemetry off. The
    acceptance gate for the observability layer is 2%."""
    base = benchmarks.get("BM_SimulatedSecondUnderStressKernel")
    on = benchmarks.get("BM_SimulatedSecondWithTelemetry")
    if not base or not on or not on.get("events"):
        return None
    if base["time_unit"] != "ms" or on["time_unit"] != "ms":
        return None
    bt = base.get("cpu_time_min", base["cpu_time"])
    ot = on.get("cpu_time_min", on["cpu_time"])
    delta_ns = (ot - bt) * 1e6
    return {
        "enabled_ns_per_event": round(delta_ns / on["events"], 4),
        "enabled_pct": round(100.0 * (ot / bt - 1.0), 2),
    }


def oob_overhead(benchmarks):
    """What routing the probe through the out-of-band stage costs the
    simulator, per oob dispatch, against the same scenario delivered
    in-band. Records oob_dispatch_ns so the stage's hot path (stall
    charging, context interpretation, captured timers) has a trend line."""
    base = benchmarks.get("BM_SimulatedSecondUnderStressKernel")
    oob = benchmarks.get("BM_SimulatedSecondWithOobStage")
    if not base or not oob or not oob.get("dispatches"):
        return None
    if base["time_unit"] != "ms" or oob["time_unit"] != "ms":
        return None
    bt = base.get("cpu_time_min", base["cpu_time"])
    ot = oob.get("cpu_time_min", oob["cpu_time"])
    delta_ns = (ot - bt) * 1e6
    return {
        "oob_dispatch_ns": round(delta_ns / oob["dispatches"], 4),
        "oob_pct": round(100.0 * (ot / bt - 1.0), 2),
    }


def run_scenario_throughput(shieldctl, runs=3):
    """End-to-end throughput of the scenario layer: wall-clock the whole
    registry at smoke scale through the parallel runner and report
    scenarios/min. Complements the per-hot-path microbenchmarks — a
    regression here that they miss means the runner itself (dispatch,
    caching, serialization) got slower.

    The recorded time is the best of `runs` back-to-back batches (the same
    reasoning as the microbenchmarks' median-of-5: single-shot wall clock
    on a shared machine swings too much to gate on). Also captures the
    batch's prefix fork-reuse counters from the degraded-run report, so the
    trend log shows whether prefix sharing keeps finding its families."""
    if not os.path.exists(shieldctl):
        return None
    best = None
    count = 0
    fork_reuse = None
    for _ in range(max(1, runs)):
        with tempfile.NamedTemporaryFile(suffix=".json") as report:
            cmd = [shieldctl, "run", "--all", "--smoke", "--json",
                   "--report", report.name]
            start = time.monotonic()
            raw = subprocess.check_output(cmd, text=True)
            elapsed = time.monotonic() - start
            count = len(json.loads(raw))
            if best is None or elapsed < best:
                best = elapsed
            report.seek(0)
            reuse = json.load(report).get("prefix_reuse")
            if reuse is not None:
                fork_reuse = reuse
    entry = {
        "scenarios": count,
        "elapsed_s": round(best, 3),
        "scenarios_per_min": round(60.0 * count / best, 1),
        "runs": max(1, runs),
    }
    if fork_reuse is not None:
        entry["fork_reuse"] = {
            "hits": fork_reuse.get("hits"),
            "misses": fork_reuse.get("misses"),
            "hit_rate": round(fork_reuse.get("hit_rate", 0.0), 4),
        }
    return entry


def compare(history):
    if len(history) < 2:
        print("need at least two entries to compare")
        return 1
    prev, cur = history[-2], history[-1]
    print(f"{prev['label'] or prev['git_rev']}  ->  "
          f"{cur['label'] or cur['git_rev']}")
    names = sorted(set(prev["benchmarks"]) & set(cur["benchmarks"]))
    for name in names:
        p = prev["benchmarks"][name]
        c = cur["benchmarks"][name]
        if p["time_unit"] != c["time_unit"]:
            continue
        speedup = p["cpu_time"] / c["cpu_time"] if c["cpu_time"] else 0.0
        print(f"  {name:<55} {p['cpu_time']:>10.1f} -> {c['cpu_time']:>10.1f} "
              f"{c['time_unit']}  ({speedup:.2f}x)")
    return 0


def check(history, tolerance):
    """Fail when the latest entry regressed more than `tolerance` vs the
    previous one. Benchmarks present in only one entry are ignored (new or
    retired benchmarks are not regressions)."""
    if len(history) < 2:
        print("need at least two entries to check")
        return 1
    prev, cur = history[-2], history[-1]
    names = sorted(set(prev["benchmarks"]) & set(cur["benchmarks"]))
    regressions = []
    for name in names:
        p = prev["benchmarks"][name]
        c = cur["benchmarks"][name]
        if p["time_unit"] != c["time_unit"] or not p["cpu_time"]:
            continue
        ratio = c["cpu_time"] / p["cpu_time"]
        flag = ""
        if ratio > 1.0 + tolerance:
            regressions.append(name)
            flag = "  <-- REGRESSION"
        print(f"  {name:<55} {p['cpu_time']:>10.1f} -> {c['cpu_time']:>10.1f} "
              f"{c['time_unit']}  ({(ratio - 1.0) * 100.0:+.1f}%){flag}")
    # Tighter gate on the injector's empty-plan cost: an inert fault layer
    # must stay within 2% of the plain run, whatever the general tolerance.
    inj = cur.get("injector_overhead")
    if inj is not None and inj["empty_plan_pct"] > 2.0:
        regressions.append("injector_overhead")
        print(f"  injector empty-plan overhead {inj['empty_plan_pct']:+.1f}% "
              f"({inj['empty_plan_ns_per_event']} ns/event) exceeds 2%"
              "  <-- REGRESSION")
    # Same 2% bar for telemetry: sampling and the flight ring must stay in
    # the observability budget, whatever the general tolerance.
    tel = cur.get("telemetry_overhead")
    if tel is not None and tel["enabled_pct"] > 2.0:
        regressions.append("telemetry_overhead")
        print(f"  telemetry enabled overhead {tel['enabled_pct']:+.1f}% "
              f"({tel['enabled_ns_per_event']} ns/event) exceeds 2%"
              "  <-- REGRESSION")
    # The mechanism layer put a virtual hop on the in-band delivery hot
    # path; its acceptance gate is 2% on the stress-kernel second,
    # whatever the general tolerance. Cross-entry like the main loop, but
    # with the tighter bar this one benchmark has to hold.
    name = "BM_SimulatedSecondUnderStressKernel"
    if name in prev["benchmarks"] and name in cur["benchmarks"]:
        p, c = prev["benchmarks"][name], cur["benchmarks"][name]
        if p["time_unit"] == c["time_unit"] and p["cpu_time"]:
            # Compare best-of-N when both entries carry it: the medians on
            # a shared box swing more than the 2% bar itself.
            pv = p.get("cpu_time_min", p["cpu_time"])
            cv = c.get("cpu_time_min", c["cpu_time"])
            pct = 100.0 * (cv / pv - 1.0)
            flag = ""
            if pct > 2.0:
                regressions.append("inband_pipeline_overhead")
                flag = "  <-- REGRESSION"
            print(f"  in-band delivery cost {pct:+.1f}% on {name} "
                  f"(2% pipeline-layer budget){flag}")
    # Campaign-throughput gates. The builtin registry's families are built
    # to share prefixes; a hit rate under 30% means the prefix key or the
    # batch scheduling broke. And scenarios/min is the headline the
    # snapshot/fork work bought — a >10% drop is a regression regardless of
    # the microbench tolerance.
    cur_st = cur.get("scenario_throughput")
    prev_st = prev.get("scenario_throughput")
    if cur_st is not None:
        reuse = cur_st.get("fork_reuse")
        if reuse is not None and reuse.get("hit_rate", 0.0) < 0.30:
            regressions.append("fork_reuse_hit_rate")
            print(f"  fork-reuse hit rate {100.0 * reuse['hit_rate']:.0f}% "
                  f"({reuse['hits']}/{reuse['hits'] + reuse['misses']} runs) "
                  "below the 30% floor  <-- REGRESSION")
        if prev_st is not None and prev_st.get("scenarios_per_min"):
            ratio = (cur_st["scenarios_per_min"] /
                     prev_st["scenarios_per_min"])
            flag = ""
            if ratio < 0.90:
                regressions.append("scenario_throughput")
                flag = "  <-- REGRESSION"
            print(f"  scenario throughput "
                  f"{prev_st['scenarios_per_min']:.0f} -> "
                  f"{cur_st['scenarios_per_min']:.0f} scenarios/min "
                  f"({(ratio - 1.0) * 100.0:+.1f}%){flag}")
    if regressions:
        print(f"FAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{tolerance * 100.0:.0f}%: {', '.join(regressions)}")
        return 1
    print(f"OK: no benchmark regressed more than {tolerance * 100.0:.0f}% "
          f"across {len(names)} compared")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin", default=DEFAULT_BIN,
                    help="microbench binary (default: build/bench/microbench)")
    ap.add_argument("--shieldctl", default=DEFAULT_SHIELDCTL,
                    help="shieldctl binary for the scenario-throughput "
                         "metric (default: build/tools/shieldctl; skipped "
                         "when missing)")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help="history file (default: BENCH_micro.json)")
    ap.add_argument("--label", default="", help="entry label, e.g. 'pr1'")
    ap.add_argument("--filter", default="", help="--benchmark_filter regex")
    ap.add_argument("--min-time", default="0.2",
                    help="--benchmark_min_time seconds (default 0.2)")
    ap.add_argument("--repetitions", type=int, default=5,
                    help="benchmark repetitions; the recorded cpu time is "
                         "the median across them (default 5)")
    ap.add_argument("--compare", action="store_true",
                    help="diff the last two recorded entries and exit")
    ap.add_argument("--check", action="store_true",
                    help="fail (exit 1) when the latest entry regressed "
                         "more than --tolerance vs the previous one")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional cpu-time growth for --check "
                         "(default 0.10)")
    args = ap.parse_args()

    history = load_history(args.out)
    if args.compare:
        return compare(history)
    if args.check:
        return check(history, args.tolerance)

    if not os.path.exists(args.bin):
        print(f"error: {args.bin} not found — build first "
              f"(cmake --preset default && cmake --build --preset default)",
              file=sys.stderr)
        return 1

    context, benchmarks = run_bench(args.bin, args.filter, args.min_time,
                                    args.repetitions)
    scenario_throughput = run_scenario_throughput(args.shieldctl)
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": git_rev(),
        "label": args.label,
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "build_type": context.get("library_build_type"),
        },
        "benchmarks": benchmarks,
    }
    if scenario_throughput is not None:
        entry["scenario_throughput"] = scenario_throughput
    overhead = injector_overhead(benchmarks)
    if overhead is not None:
        entry["injector_overhead"] = overhead
    tel = telemetry_overhead(benchmarks)
    if tel is not None:
        entry["telemetry_overhead"] = tel
    oob = oob_overhead(benchmarks)
    if oob is not None:
        entry["oob_stage"] = oob
    history.append(entry)
    with open(args.out, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    print(f"recorded {len(benchmarks)} benchmarks to {args.out} "
          f"(entry #{len(history)})")
    if scenario_throughput is not None:
        print(f"scenario throughput: {scenario_throughput['scenarios']} "
              f"scenarios in {scenario_throughput['elapsed_s']} s "
              f"({scenario_throughput['scenarios_per_min']}/min)")
        reuse = scenario_throughput.get("fork_reuse")
        if reuse is not None:
            print(f"fork reuse: {reuse['hits']} of "
                  f"{reuse['hits'] + reuse['misses']} runs forked a shared "
                  f"prefix ({100.0 * reuse['hit_rate']:.0f}% hit rate)")
    if overhead is not None:
        print(f"injector empty-plan overhead: "
              f"{overhead['empty_plan_ns_per_event']} ns/event "
              f"({overhead['empty_plan_pct']:+.1f}%)")
    if tel is not None:
        print(f"telemetry enabled overhead: "
              f"{tel['enabled_ns_per_event']} ns/event "
              f"({tel['enabled_pct']:+.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Render a latency report JSON (bench --trace-json / latency_report_json).

Prints, for every recorded chain, the worst-case decomposition: each
segment kind's total time and share of the chain, in the spirit of the
paper's §6.2 analysis (where does a 92 ms /dev/rtc worst case go, and why
the RCIM ioctl path has none of those stretches). Then the per-CPU kernel
counters and the spinlock table.

Stdlib only; no third-party dependencies.

Usage: tools/trace_report.py REPORT.json [REPORT2.json ...]
"""

import json
import sys


class ReportError(Exception):
    """A report file that cannot be rendered; message names file and cause."""


def load_report(path):
    """Parse one report, turning the empty/truncated/wrong-shape cases into
    a ReportError with a usable message instead of a traceback."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        raise ReportError(f"{path}: cannot read: {e.strerror}")
    if not text.strip():
        raise ReportError(
            f"{path}: file is empty — the run produced no trace output "
            "(was the tracer compiled out or never enabled?)")
    try:
        report = json.loads(text)
    except json.JSONDecodeError as e:
        raise ReportError(f"{path}: not valid JSON ({e})")
    if not isinstance(report, dict) or "sim_time_ns" not in report:
        raise ReportError(
            f"{path}: not a latency report (no 'sim_time_ns' field); "
            "expected the output of latency_report_json / bench --trace-json")
    return report


def fmt_ns(ns):
    """Render nanoseconds with an adaptive unit, matching format_duration."""
    ns = int(ns)
    if ns < 10_000:
        return f"{ns} ns"
    if ns < 10_000_000:
        return f"{ns / 1e3:.1f} us"
    if ns < 10_000_000_000:
        return f"{ns / 1e6:.3f} ms"
    return f"{ns / 1e9:.3f} s"


def print_chain(label, chain):
    total = chain.get("total_ns", 0)
    print(f"\n== {label} ==")
    segments = chain.get("segments", [])
    print(f"origin {chain.get('origin', '?')}, total {fmt_ns(total)} "
          f"({len(segments)} segments)")
    if not segments:
        print("  (no samples: the chain recorded zero segments)")
        return

    # Timeline: every segment in order.
    print(f"  {'offset':>12}  {'span':>12}  {'%':>6}  segment")
    for seg in segments:
        pct = 100.0 * seg["span_ns"] / total if total else 0.0
        where = seg["kind"]
        if seg.get("cpu", -1) >= 0:
            where += f" cpu{seg['cpu']}"
        if seg.get("detail"):
            where += f" ({seg['detail']})"
        offset = seg["begin_ns"] - chain["start_ns"]
        print(f"  {fmt_ns(offset):>12}  {fmt_ns(seg['span_ns']):>12}  "
              f"{pct:5.1f}%  {where}")

    # Attribution: aggregate by (kind, detail), largest first.
    by_kind = {}
    for seg in segments:
        key = (seg["kind"], seg.get("detail", ""))
        by_kind[key] = by_kind.get(key, 0) + seg["span_ns"]
    print("  attribution:")
    for (kind, detail), span in sorted(by_kind.items(), key=lambda kv: -kv[1]):
        name = f"{kind} ({detail})" if detail else kind
        pct = 100.0 * span / total if total else 0.0
        print(f"    {fmt_ns(span):>12}  {pct:5.1f}%  {name}")
    accounted = sum(by_kind.values())
    if total and abs(accounted - total) > total * 0.01:
        print(f"    WARNING: segments sum to {fmt_ns(accounted)}, "
              f"not {fmt_ns(total)}")


def print_report(path):
    report = load_report(path)

    print(f"# {path}")
    print(f"simulated time: {fmt_ns(report['sim_time_ns'])}")

    tracer = report.get("tracer", {})
    if tracer:
        state = "enabled" if tracer.get("enabled") else "disabled"
        if not tracer.get("compiled_in"):
            state = "compiled out"
        print(f"tracer: {state}; opened {tracer.get('opened', 0)}, "
              f"completed {tracer.get('completed', 0)}, "
              f"abandoned {tracer.get('abandoned', 0)}, "
              f"dropped {tracer.get('dropped', 0)}")

    for entry in report.get("chains", []):
        print_chain(entry["label"], entry["chain"])

    cpus = report.get("cpus", [])
    if cpus:
        print("\nper-CPU kernel time:")
        print(f"  {'cpu':>3}  {'irq':>12}  {'softirq':>12}  {'spin-wait':>12}"
              f"  {'bkl-hold':>12}  {'irq-off max':>12}  {'pre-off max':>12}")
        for c in cpus:
            print(f"  {c['cpu']:>3}  {fmt_ns(c['irq_ns']):>12}"
                  f"  {fmt_ns(c['softirq_ns']):>12}"
                  f"  {fmt_ns(c['spin_wait_ns']):>12}"
                  f"  {fmt_ns(c['bkl_hold_ns']):>12}"
                  f"  {fmt_ns(c['irq_off_max_ns']):>12}"
                  f"  {fmt_ns(c['preempt_off_max_ns']):>12}")

    locks = report.get("locks", [])
    if locks:
        print("\nspinlocks:")
        print(f"  {'lock':<12}  {'acquisitions':>12}  {'contentions':>11}"
              f"  {'wait':>12}  {'hold':>12}")
        for l in locks:
            print(f"  {l['lock']:<12}  {l['acquisitions']:>12}"
                  f"  {l['contentions']:>11}  {fmt_ns(l['wait_ns']):>12}"
                  f"  {fmt_ns(l['hold_ns']):>12}")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for i, path in enumerate(argv[1:]):
        if i:
            print()
        try:
            print_report(path)
        except ReportError as e:
            print(f"trace_report: {e}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#include <gtest/gtest.h>

#include "metrics/report.h"

using namespace sim::literals;

TEST(Report, DeterminismLegendMatchesPaperFormat) {
  // Fig 1 legend: ideal 1.150000, max 1.450000, jitter 0.300000 (26.09%).
  const std::string s =
      metrics::determinism_legend(1'150'000'000, 1'450'000'000);
  EXPECT_NE(s.find("ideal: 1.150000 sec"), std::string::npos) << s;
  EXPECT_NE(s.find("max: 1.450000 sec"), std::string::npos) << s;
  EXPECT_NE(s.find("jitter: 0.300000 sec (26.09%)"), std::string::npos) << s;
}

TEST(Report, DeterminismLegendZeroJitter) {
  const std::string s = metrics::determinism_legend(1_s, 1_s);
  EXPECT_NE(s.find("(0.00%)"), std::string::npos) << s;
}

TEST(Report, CumulativeTableShowsCountsAndPercents) {
  metrics::LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.add(50_us);
  h.add(5_ms);
  const sim::Duration edges[] = {100_us, 10_ms};
  const std::string s = metrics::cumulative_bucket_table(h, std::span(edges));
  EXPECT_NE(s.find("100 measured interrupts"), std::string::npos) << s;
  EXPECT_NE(s.find("99"), std::string::npos) << s;
  EXPECT_NE(s.find("99.0000%"), std::string::npos) << s;
  EXPECT_NE(s.find("100.0000%"), std::string::npos) << s;
}

TEST(Report, CumulativeTableStopsWhenSaturated) {
  metrics::LatencyHistogram h;
  h.add(1_us);
  const auto edges = metrics::figure5_thresholds();
  const std::string s = metrics::cumulative_bucket_table(h, edges);
  // Everything is below the first threshold; the ladder must not print all
  // fifteen redundant lines (the paper truncates too).
  EXPECT_EQ(s.find("90.00ms"), std::string::npos) << s;
}

TEST(Report, Figure5ThresholdLadder) {
  const auto t = metrics::figure5_thresholds();
  ASSERT_EQ(t.size(), 15u);
  EXPECT_EQ(t.front(), 100_us);
  EXPECT_EQ(t.back(), 100_ms);
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_GT(t[i], t[i - 1]);
}

TEST(Report, MinAvgMaxLineMicroseconds) {
  metrics::LatencyHistogram h;
  h.add(11'000);
  h.add(27'000);
  const std::string s = metrics::min_avg_max_line(h);
  EXPECT_NE(s.find("minimum latency: 11.0 microseconds"), std::string::npos) << s;
  EXPECT_NE(s.find("maximum latency: 27.0 microseconds"), std::string::npos) << s;
  EXPECT_NE(s.find("average latency: 19.0 microseconds"), std::string::npos) << s;
}

TEST(Report, AsciiHistogramHandlesEmpty) {
  metrics::LatencyHistogram h;
  EXPECT_EQ(metrics::ascii_histogram(h), "(no samples)\n");
}

TEST(Report, AsciiHistogramHasAxisAndBars) {
  metrics::LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.add(10_us);
  h.add(1_ms);
  const std::string s = metrics::ascii_histogram(h, 40, 6);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("+---"), std::string::npos);
}

TEST(Report, RenderTableAligns) {
  const std::string s = metrics::render_table(
      "t", {{"name", "value"}, {"a", "1"}, {"long-name", "22"}});
  EXPECT_NE(s.find("== t =="), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
}

// Device models: RTC, RCIM, NIC, disk, GPU.
#include <gtest/gtest.h>

#include "hw/disk_device.h"
#include "hw/gpu_device.h"
#include "hw/interrupt_controller.h"
#include "hw/nic_device.h"
#include "hw/rcim_device.h"
#include "hw/rtc_device.h"
#include "sim/engine.h"

using namespace sim::literals;

namespace {

struct Rig {
  sim::Engine engine{1};
  hw::Topology topo{2, false};
  hw::InterruptController ic{engine, topo};
  int deliveries = 0;
  hw::Irq last_irq = -1;

  Rig() {
    ic.set_deliver_fn([this](hw::CpuId, hw::Irq irq) {
      ++deliveries;
      last_irq = irq;
    });
  }
};

}  // namespace

TEST(RtcDevice, FiresAtProgrammedRate) {
  Rig rig;
  hw::RtcDevice rtc(rig.engine, rig.ic);
  rtc.set_rate_hz(2048);
  rtc.start_periodic();
  rig.engine.run_until(1_s);
  EXPECT_EQ(rtc.fire_count(), 2048u);
  EXPECT_EQ(rig.last_irq, hw::kIrqRtc);
}

TEST(RtcDevice, BresenhamKeepsLongRunAccuracy) {
  // 2048 Hz has a fractional ns period (488281.25); over 100 s the fire
  // count must not drift by even one interrupt.
  Rig rig;
  hw::RtcDevice rtc(rig.engine, rig.ic);
  rtc.set_rate_hz(2048);
  rtc.start_periodic();
  rig.engine.run_until(100_s);
  EXPECT_EQ(rtc.fire_count(), 204'800u);
}

TEST(RtcDevice, StopCeasesInterrupts) {
  Rig rig;
  hw::RtcDevice rtc(rig.engine, rig.ic);
  rtc.set_rate_hz(64);
  rtc.start_periodic();
  rig.engine.run_until(500_ms);
  rtc.stop();
  const auto fired = rtc.fire_count();
  rig.engine.run_until(1_s);
  EXPECT_EQ(rtc.fire_count(), fired);
}

TEST(RtcDevice, RejectsBadRates) {
  Rig rig;
  hw::RtcDevice rtc(rig.engine, rig.ic);
  EXPECT_DEATH(rtc.set_rate_hz(1000), "power of two");
  EXPECT_DEATH(rtc.set_rate_hz(1), "power of two");
  EXPECT_DEATH(rtc.set_rate_hz(16384), "power of two");
}

TEST(RtcDevice, NominalPeriod) {
  Rig rig;
  hw::RtcDevice rtc(rig.engine, rig.ic);
  rtc.set_rate_hz(2048);
  EXPECT_EQ(rtc.nominal_period(), 488'281u);
}

TEST(RcimDevice, PeriodicFiresAndAutoReloads) {
  Rig rig;
  hw::RcimDevice rcim(rig.engine, rig.ic, 400);
  rcim.program_periodic(2500);  // 1 ms
  rig.engine.run_until(10500_us);
  EXPECT_EQ(rcim.fire_count(), 10u);
}

TEST(RcimDevice, CountRegisterDecrements) {
  Rig rig;
  hw::RcimDevice rcim(rig.engine, rig.ic, 400);
  rcim.program_periodic(2500);
  rig.engine.run_until(400_us);  // 1000 ticks into the cycle
  EXPECT_EQ(rcim.read_count(), 1500u);
  EXPECT_EQ(rcim.elapsed_in_cycle(), 400'000u);
}

TEST(RcimDevice, ElapsedResetsAtFire) {
  Rig rig;
  hw::RcimDevice rcim(rig.engine, rig.ic, 400);
  rcim.program_periodic(2500);
  rig.engine.run_until(1_ms + 20_us);  // 50 ticks into cycle 2
  EXPECT_EQ(rcim.elapsed_in_cycle(), 20'000u);
}

TEST(RcimDevice, StopFreezes) {
  Rig rig;
  hw::RcimDevice rcim(rig.engine, rig.ic, 400);
  rcim.program_periodic(2500);
  rig.engine.run_until(5500_us);
  rcim.stop();
  const auto fired = rcim.fire_count();
  rig.engine.run_until(20_ms);
  EXPECT_EQ(rcim.fire_count(), fired);
  EXPECT_EQ(rcim.read_count(), 0u);
}

TEST(NicDevice, RxRaisesAfterWireDelay) {
  Rig rig;
  hw::NicDevice nic(rig.engine, rig.ic);
  nic.set_link_mbps(100.0);
  nic.rx(12'500);  // 1 ms at 100 Mbit
  rig.engine.run_until(900_us);
  EXPECT_EQ(rig.deliveries, 0);
  rig.engine.run_until(2_ms);
  EXPECT_EQ(rig.deliveries, 1);
  EXPECT_EQ(nic.drain_rx_bytes(), 12'500u);
  EXPECT_EQ(nic.drain_rx_bytes(), 0u);  // drained
}

TEST(NicDevice, TxCompletionsAccumulate) {
  Rig rig;
  hw::NicDevice nic(rig.engine, rig.ic);
  nic.tx(1000);
  nic.tx(2000);
  rig.engine.run_until(10_ms);
  EXPECT_EQ(nic.drain_tx_bytes(), 3000u);
  EXPECT_EQ(nic.total_tx_bytes(), 3000u);
}

TEST(DiskDevice, CompletionRaisesIrqWithCookie) {
  Rig rig;
  hw::DiskDevice disk(rig.engine, rig.ic);
  disk.submit(hw::DiskRequest{4096, true, 42});
  rig.engine.run_until(100_ms);
  EXPECT_EQ(rig.deliveries, 1);
  const auto cookies = disk.drain_completions();
  ASSERT_EQ(cookies.size(), 1u);
  EXPECT_EQ(cookies[0], 42u);
}

TEST(DiskDevice, ServesFifo) {
  Rig rig;
  hw::DiskDevice disk(rig.engine, rig.ic);
  for (std::uint64_t i = 0; i < 5; ++i) {
    disk.submit(hw::DiskRequest{4096, false, i});
  }
  EXPECT_EQ(disk.queue_depth(), 5u);
  rig.engine.run_until(1_s);
  const auto cookies = disk.drain_completions();
  ASSERT_EQ(cookies.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(cookies[i], i);
  EXPECT_EQ(disk.completed_requests(), 5u);
  EXPECT_EQ(disk.queue_depth(), 0u);
}

TEST(DiskDevice, ServiceTimeIsMilliseconds) {
  Rig rig;
  hw::DiskDevice disk(rig.engine, rig.ic);
  disk.submit(hw::DiskRequest{65'536, true, 1});
  rig.engine.run_until(50_us);
  EXPECT_EQ(rig.deliveries, 0);  // no disk completes in 50 us
  rig.engine.run_until(1_s);
  EXPECT_EQ(rig.deliveries, 1);
}

TEST(GpuDevice, BatchCompletionInterrupts) {
  Rig rig;
  hw::GpuDevice gpu(rig.engine, rig.ic);
  gpu.submit_batch(100);
  gpu.submit_batch(200);
  rig.engine.run_until(100_ms);
  EXPECT_EQ(rig.deliveries, 2);
  EXPECT_EQ(gpu.drain_completions(), 2u);
  EXPECT_EQ(gpu.drain_completions(), 0u);
  EXPECT_EQ(gpu.total_batches(), 2u);
}

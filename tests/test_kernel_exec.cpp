// Core execution semantics: tasks, syscalls, sleeping, accounting, and the
// preemption rules that define the paper's latency taxonomy.
#include <gtest/gtest.h>

#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

TEST(KernelExec, ComputeActionTakesAboutItsWork) {
  auto p = vanilla_rig();
  std::vector<sim::Time> marks;
  spawn_scripted(p->kernel(), {.name = "t"},
                 {kernel::ComputeAction{10_ms, 0.0}}, &marks);
  p->boot();
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);  // start + end-of-compute
  const sim::Duration took = marks[1] - marks[0];
  EXPECT_GE(took, 10_ms);
  EXPECT_LT(took, 13_ms);  // small dilation + tick interference only
}

TEST(KernelExec, TaskExitsAndCpuGoesIdle) {
  auto p = vanilla_rig();
  auto& t = spawn_scripted(p->kernel(), {.name = "t"},
                           {kernel::ComputeAction{1_ms, 0.0}});
  p->boot();
  p->run_for(1_s);
  EXPECT_EQ(t.state, kernel::TaskState::kExited);
  EXPECT_TRUE(p->kernel().cpu_idle(0) || p->kernel().cpu_idle(1));
}

TEST(KernelExec, SyscallProgramRunsToCompletion) {
  auto p = vanilla_rig();
  bool effect_ran = false;
  kernel::ProgramBuilder b;
  b.work(5_us, 0.3)
      .section(kernel::LockId::kFs, 2_us)
      .effect([&](kernel::Kernel&, kernel::Task&) { effect_ran = true; });
  std::vector<sim::Time> marks;
  auto& t = spawn_scripted(
      p->kernel(), {.name = "t"},
      {kernel::SyscallAction{"test", std::move(b).build()}}, &marks);
  p->boot();
  p->run_for(1_s);
  EXPECT_TRUE(effect_ran);
  EXPECT_EQ(t.syscalls, 1u);
  EXPECT_EQ(t.state, kernel::TaskState::kExited);
}

TEST(KernelExec, SleepRoundsUpToTickWithoutPosixTimers) {
  auto p = vanilla_rig();
  ASSERT_FALSE(p->kernel_config().posix_timers);
  std::vector<sim::Time> marks;
  spawn_scripted(p->kernel(), {.name = "t"}, {kernel::SleepAction{3_ms}},
                 &marks);
  p->boot();
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  // 3 ms rounds up to the 10 ms tick quantum.
  EXPECT_GE(marks[1] - marks[0], 10_ms);
  EXPECT_LT(marks[1] - marks[0], 12_ms);
}

TEST(KernelExec, SleepIsPreciseWithPosixTimers) {
  auto p = redhawk_rig();
  ASSERT_TRUE(p->kernel_config().posix_timers);
  std::vector<sim::Time> marks;
  spawn_scripted(p->kernel(), {.name = "t"}, {kernel::SleepAction{3_ms}},
                 &marks);
  p->boot();
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_GE(marks[1] - marks[0], 3_ms);
  EXPECT_LT(marks[1] - marks[0], 3_ms + 200_us);
}

TEST(KernelExec, UtimeStimeAccounting) {
  auto p = vanilla_rig();
  kernel::ProgramBuilder b;
  b.work(5_ms, 0.3);
  auto& t = spawn_scripted(p->kernel(), {.name = "t"},
                           {kernel::ComputeAction{20_ms, 0.0},
                            kernel::SyscallAction{"sys", std::move(b).build()}});
  p->boot();
  p->run_for(1_s);
  EXPECT_GE(t.utime, 20_ms);
  EXPECT_LT(t.utime, 25_ms);
  EXPECT_GE(t.stime, 5_ms);
  EXPECT_LT(t.stime, 8_ms);
}

TEST(KernelExec, TimerTicksInterruptComputation) {
  // A 100 ms compute stretch on a ticking CPU is hit by ~10 local timer
  // interrupts; wall time must exceed pure work by the tick costs.
  auto p = vanilla_rig();
  std::vector<sim::Time> marks;
  spawn_scripted(p->kernel(), {.name = "t", .affinity = hw::CpuMask::single(0)},
                 {kernel::ComputeAction{100_ms, 0.0}}, &marks);
  p->boot();
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_GT(marks[1] - marks[0], 100_ms + 10_us);
  EXPECT_GT(p->kernel().cpu(0).hardirqs, 5u);
}

TEST(KernelExec, TwoTasksShareOneCpuViaTimeslices) {
  auto p = vanilla_rig();
  const auto one = hw::CpuMask::single(0);
  auto& a = spawn_hog(p->kernel(), "a", one);
  auto& b = spawn_hog(p->kernel(), "b", one);
  p->boot();
  p->run_for(2_s);
  // Both made progress — rotation happened.
  EXPECT_GT(a.utime, 400_ms);
  EXPECT_GT(b.utime, 400_ms);
  EXPECT_GT(a.ctx_switches, 2u);
}

TEST(KernelExec, FifoBeatsOtherOnSameCpu) {
  auto p = vanilla_rig();
  const auto one = hw::CpuMask::single(0);
  auto& rt = spawn_hog(p->kernel(), "rt", one, kernel::SchedPolicy::kFifo, 50);
  auto& other = spawn_hog(p->kernel(), "other", one);
  p->boot();
  p->run_for(1_s);
  EXPECT_GT(rt.utime, 900_ms);
  EXPECT_LT(other.utime, 10_ms);
}

TEST(KernelExec, HigherFifoPriorityWins) {
  auto p = vanilla_rig();
  const auto one = hw::CpuMask::single(0);
  auto& hi = spawn_hog(p->kernel(), "hi", one, kernel::SchedPolicy::kFifo, 90);
  auto& lo = spawn_hog(p->kernel(), "lo", one, kernel::SchedPolicy::kFifo, 10);
  p->boot();
  p->run_for(1_s);
  EXPECT_GT(hi.utime, 900_ms);
  EXPECT_EQ(lo.utime, 0u);
}

TEST(KernelExec, AffinityConfinesTask) {
  auto p = vanilla_rig();
  auto& t = spawn_hog(p->kernel(), "pinned", hw::CpuMask::single(1));
  p->boot();
  p->run_for(500_ms);
  EXPECT_EQ(t.cpu, 1);
  EXPECT_EQ(t.migrations, 0u);
}

TEST(KernelExec, SchedSetaffinityMovesRunningTask) {
  auto p = vanilla_rig();
  auto& t = spawn_hog(p->kernel(), "mover", hw::CpuMask::single(0));
  p->boot();
  p->run_for(100_ms);
  EXPECT_EQ(t.cpu, 0);
  EXPECT_TRUE(p->kernel().sched_setaffinity(t, hw::CpuMask::single(1)));
  p->run_for(100_ms);
  EXPECT_EQ(t.cpu, 1);
}

TEST(KernelExec, SchedSetaffinityRejectsEmptyMask) {
  auto p = vanilla_rig();
  auto& t = spawn_hog(p->kernel(), "t");
  p->boot();
  EXPECT_FALSE(p->kernel().sched_setaffinity(t, hw::CpuMask::none()));
  EXPECT_FALSE(p->kernel().sched_setaffinity(t, hw::CpuMask(0b100)));  // no CPU 2
}

TEST(KernelExec, SetPolicyPromotesTask) {
  auto p = vanilla_rig();
  const auto one = hw::CpuMask::single(0);
  auto& a = spawn_hog(p->kernel(), "a", one);
  auto& b = spawn_hog(p->kernel(), "b", one);
  p->boot();
  p->run_for(200_ms);
  p->kernel().set_policy(b, kernel::SchedPolicy::kFifo, 50);
  const auto a_before = a.utime;
  p->run_for(500_ms);
  // b now monopolises the CPU.
  EXPECT_LT(a.utime - a_before, 20_ms);
}

TEST(KernelExec, KsoftirqdSpawnedPerCpu) {
  auto p = vanilla_rig();
  p->boot();
  EXPECT_NE(p->kernel().find_task("ksoftirqd/0"), nullptr);
  EXPECT_NE(p->kernel().find_task("ksoftirqd/1"), nullptr);
  EXPECT_EQ(p->kernel().find_task("ksoftirqd/2"), nullptr);
}

TEST(KernelExec, TasksCreatedAfterBootRun) {
  auto p = vanilla_rig();
  p->boot();
  p->run_for(10_ms);
  std::vector<sim::Time> marks;
  spawn_scripted(p->kernel(), {.name = "late"},
                 {kernel::ComputeAction{1_ms, 0.0}}, &marks);
  p->run_for(100_ms);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_GE(marks[0], 10_ms);
}

TEST(KernelExec, FindTaskByPidAndName) {
  auto p = vanilla_rig();
  auto& t = spawn_hog(p->kernel(), "needle");
  EXPECT_EQ(p->kernel().find_task("needle"), &t);
  EXPECT_EQ(p->kernel().find_task(t.pid), &t);
  EXPECT_EQ(p->kernel().find_task("missing"), nullptr);
  EXPECT_EQ(p->kernel().find_task(9999), nullptr);
}

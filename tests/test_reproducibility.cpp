// Bit-level reproducibility: the same seed must give the same results; a
// different seed must (almost surely) give different ones.
#include <gtest/gtest.h>

#include <tuple>

#include "kernel_test_util.h"
#include "rt/realfeel_test.h"
#include "workload/stress_kernel.h"

using namespace testutil;
using namespace sim::literals;

namespace {

struct RunResult {
  std::uint64_t events;
  sim::Duration max_latency;
  sim::Duration mean_latency;
  std::uint64_t syscalls;
};

RunResult run_once(std::uint64_t seed, bool trace = false) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::vanilla_2_4_20(), seed);
  workload::StressKernel{}.install(p);
  if (trace) p.engine().chain_tracer().enable();
  rt::RealfeelTest::Params rp;
  rp.samples = 20'000;
  rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);
  p.boot();
  test.start();
  p.run_for(30_s);
  std::uint64_t syscalls = 0;
  for (const auto& t : p.kernel().tasks()) syscalls += t->syscalls;
  return RunResult{p.engine().events_executed(), test.latencies().max(),
                   test.latencies().mean(), syscalls};
}

}  // namespace

TEST(Reproducibility, SameSeedSameRun) {
  const auto a = run_once(12345);
  const auto b = run_once(12345);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.syscalls, b.syscalls);
}

// The chain tracer only reads simulation time — it never schedules events
// or draws random numbers — so enabling it must not change the event
// stream or any figure metric. This is what lets verify.sh vouch that
// tracing-off figure outputs are byte-identical to a tracing build's.
TEST(Reproducibility, ChainTracerDoesNotPerturbTheRun) {
  const auto off = run_once(555, /*trace=*/false);
  const auto on = run_once(555, /*trace=*/true);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.max_latency, on.max_latency);
  EXPECT_EQ(off.mean_latency, on.mean_latency);
  EXPECT_EQ(off.syscalls, on.syscalls);
}

TEST(Reproducibility, DifferentSeedDifferentRun) {
  const auto a = run_once(1);
  const auto b = run_once(2);
  // Event counts of two 30 s stress runs colliding would be astonishing.
  EXPECT_NE(a.events, b.events);
}

// The timing-wheel calendar must preserve the determinism contract end to
// end: two runs with one seed agree on every event executed and on the
// full shape of the figure metrics, not just the summary moments.
TEST(Reproducibility, FigureMetricsBitIdenticalAcrossRuns) {
  const auto run = [](std::uint64_t seed) {
    config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                       config::KernelConfig::redhawk_1_4(), seed);
    workload::StressKernel{}.install(p);
    rt::RealfeelTest::Params rp;
    rp.samples = 20'000;
    rp.affinity = hw::CpuMask::single(1);
    rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);
    p.boot();
    p.shield().shield_all(hw::CpuMask::single(1));
    test.start();
    p.run_for(30_s);
    const auto& lat = test.latencies();
    return std::tuple{p.engine().events_executed(), lat.count(), lat.min(),
                      lat.max(),  lat.percentile(0.5), lat.percentile(0.999),
                      lat.fraction_below(100 * sim::kMicrosecond)};
  };
  EXPECT_EQ(run(2003), run(2003));
  EXPECT_NE(std::get<0>(run(2003)), std::get<0>(run(2004)));
}

TEST(Reproducibility, ShieldedRunsAreAlsoDeterministic) {
  const auto run = [](std::uint64_t seed) {
    auto p = redhawk_rig(seed);
    workload::StressKernel{}.install(*p);
    auto& rt = spawn_hog(p->kernel(), "rt", hw::CpuMask::single(1),
                         kernel::SchedPolicy::kFifo, 90);
    p->boot();
    p->shield().shield_all(hw::CpuMask::single(1));
    p->run_for(3_s);
    return std::pair{p->engine().events_executed(), rt.utime};
  };
  EXPECT_EQ(run(777), run(777));
}

// bench::SweepRunner must return results in index order and produce the
// same values as a serial loop — including on this repo's single-core CI,
// where the default worker count degenerates to the serial path, so the
// threaded path is forced explicitly here (and exercised under TSan-free
// ASan builds via the asan preset).
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "../bench/bench_util.h"
#include "config/platform.h"
#include "sim/time.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

TEST(SweepRunner, ThreadedMapMatchesSerialAndPreservesIndexOrder) {
  const auto square = [](std::size_t i) { return i * i; };
  const bench::SweepRunner threaded(4);
  ASSERT_EQ(threaded.workers(), 4u);
  const auto got = threaded.map<std::size_t>(100, square);
  ASSERT_EQ(got.size(), 100u);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i * i);
}

TEST(SweepRunner, SingleWorkerFallbackMatches) {
  const bench::SweepRunner serial(1);
  const auto got =
      serial.map<int>(7, [](std::size_t i) { return static_cast<int>(i) - 3; });
  EXPECT_EQ(std::accumulate(got.begin(), got.end(), 0), -7 + 4 + 3);
}

// Regression: an exception in a worker thread used to escape the plain
// std::thread and call std::terminate. It must be captured, stop further
// case claiming, and rethrow on the calling thread after the joins.
TEST(SweepRunner, WorkerExceptionPropagatesToCaller) {
  const auto boom = [](std::size_t i) -> int {
    if (i == 10) throw std::runtime_error("case 10 failed");
    return static_cast<int>(i);
  };
  EXPECT_THROW(bench::SweepRunner(3).map<int>(64, boom), std::runtime_error);
  try {
    bench::SweepRunner(3).map<int>(64, boom);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "case 10 failed");
  }
}

TEST(SweepRunner, SerialPathPropagatesExceptionToo) {
  EXPECT_THROW(bench::SweepRunner(1).map<int>(
                   4,
                   [](std::size_t i) -> int {
                     if (i == 2) throw std::runtime_error("serial boom");
                     return 0;
                   }),
               std::runtime_error);
}

// Parallel sweep cases each build a full Platform; results must not depend
// on which worker ran which case.
TEST(SweepRunner, PlatformPerCaseIsDeterministicAcrossWorkers) {
  const auto run_case = [](std::size_t i) {
    config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                       config::KernelConfig::vanilla_2_4_20(),
                       2003 + static_cast<std::uint64_t>(i));
    workload::StressKernel{}.install(p);
    p.boot();
    p.run_for(100_ms);
    return p.engine().events_executed();
  };
  const auto parallel = bench::SweepRunner(4).map<std::uint64_t>(4, run_case);
  const auto serial = bench::SweepRunner(1).map<std::uint64_t>(4, run_case);
  EXPECT_EQ(parallel, serial);
}

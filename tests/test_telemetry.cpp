// The telemetry subsystem: registry semantics (counters, pull gauges,
// idempotent registration, reset), Prometheus export shape, flight-recorder
// ring behavior, sampler timelines, and the integration contracts — procfs
// and latency_report_json agree field-for-field, telemetry leaves the
// simulation bit-identical, and a watchdog timeout yields a post-mortem
// flight dump in the degraded-run report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <set>
#include <string>
#include <vector>

#include "config/experiment.h"
#include "config/json.h"
#include "config/platform.h"
#include "config/scenario.h"
#include "config/scenario_runner.h"
#include "config/telemetry_export.h"
#include "kernel/kernel.h"
#include "kernel/trace_export.h"
#include "sim/engine.h"
#include "sim/time.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"
#include "workload/registry.h"

using namespace sim::literals;

namespace {

config::ScenarioSpec spec_of(const char* name) {
  const auto* s = config::ScenarioRegistry::builtin().find(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

// ---- registry ---------------------------------------------------------------

TEST(Registry, CounterCellsAccumulateIndependently) {
  telemetry::Registry reg;
  auto c = reg.counter("test.ops", "ops", 2);
  c.inc(0);
  c.add(1, 41);
  c.inc(1);
  EXPECT_EQ(reg.value("test.ops", 0), 1u);
  EXPECT_EQ(reg.value("test.ops", 1), 42u);
  EXPECT_EQ(c.value(0), 1u);
}

TEST(Registry, SeriesNamesCarryTheCellLabel) {
  telemetry::Registry reg;
  reg.counter("test.sharded", "h", 2, "cpu");
  reg.counter("test.scalar", "h", 1, "");
  reg.counter("test.named", "h", 2, "lock", {"BKL", "fs_lock"});
  const auto names = reg.series_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.sharded[cpu/0]"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test.scalar"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test.named[lock/fs_lock]"),
            names.end());
}

TEST(Registry, RegistrationIsIdempotentAndCellsOnlyGrow) {
  telemetry::Registry reg;
  auto a = reg.counter("test.c", "h", 2);
  a.add(1, 7);
  auto b = reg.counter("test.c", "h", 4);  // same metric, more cells
  EXPECT_EQ(reg.metric_count(), 1u);
  EXPECT_EQ(b.value(1), 7u);  // existing cells kept their values
  b.add(3, 5);
  EXPECT_EQ(reg.value("test.c", 3), 5u);
  reg.counter("test.c", "h", 2);  // fewer cells: no shrink
  EXPECT_EQ(reg.value("test.c", 3), 5u);
}

TEST(Registry, GaugeReregistrationRebindsTheCallback) {
  // The reused-engine contract: a second component instance re-registers
  // its gauges and must replace the dead closure, not keep the stale one.
  telemetry::Registry reg;
  std::uint64_t source = 5;
  reg.gauge("test.g", "h", 1, "", [&](int) { return source; });
  EXPECT_EQ(reg.value("test.g"), 5u);
  std::uint64_t other = 9;
  reg.gauge("test.g", "h", 1, "", [&](int) { return other; });
  EXPECT_EQ(reg.metric_count(), 1u);
  EXPECT_EQ(reg.value("test.g"), 9u);
}

TEST(Registry, ValueOfUnknownMetricReadsAsZero) {
  telemetry::Registry reg;
  EXPECT_EQ(reg.value("no.such.metric", 3), 0u);
  EXPECT_FALSE(reg.contains("no.such.metric"));
}

TEST(Registry, SnapshotOrderIsRegistrationOrder) {
  telemetry::Registry reg;
  reg.counter("z.last", "h", 1, "");
  reg.counter("a.first", "h", 1, "");
  const auto names = reg.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "z.last");
  EXPECT_EQ(names[1], "a.first");
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(Registry, ResetZeroesCountersAndHistogramsButNotGauges) {
  telemetry::Registry reg;
  auto c = reg.counter("test.c", "h", 1, "");
  c.add(0, 10);
  auto h = reg.histogram("test.h", "h", 1, "");
  h.add(0, 100);
  std::uint64_t live = 3;
  reg.gauge("test.g", "h", 1, "", [&](int) { return live; });
  reg.reset();
  EXPECT_EQ(reg.value("test.c"), 0u);
  EXPECT_EQ(reg.value("test.h"), 0u);  // histogram value = sample count
  EXPECT_EQ(reg.value("test.g"), 3u);  // gauges read live component state
}

// ---- histogram edge cases through the registry path (satellite) -------------

TEST(Registry, HistogramSingleSamplePercentilesAndCountBelow) {
  telemetry::Registry reg;
  auto h = reg.histogram("test.lat", "h", 1, "");
  h.add(0, 7);
  const metrics::LatencyHistogram* cell = h.cell(0);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->count(), 1u);
  EXPECT_EQ(cell->summary().count(), 1u);
  EXPECT_DOUBLE_EQ(cell->summary().min(), 7.0);
  EXPECT_DOUBLE_EQ(cell->summary().max(), 7.0);
  // Every percentile of a one-sample distribution is that sample.
  EXPECT_EQ(cell->percentile(0.0), 7);
  EXPECT_EQ(cell->percentile(0.5), 7);
  EXPECT_EQ(cell->percentile(1.0), 7);
  EXPECT_EQ(cell->count_below(7), 0u);   // strictly-below semantics
  EXPECT_EQ(cell->count_below(8), 1u);
}

TEST(Registry, HistogramAllEqualSamples) {
  telemetry::Registry reg;
  auto h = reg.histogram("test.lat", "h", 1, "");
  for (int i = 0; i < 100; ++i) h.add(0, 12);
  const metrics::LatencyHistogram* cell = h.cell(0);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->count(), 100u);
  EXPECT_EQ(cell->percentile(0.01), 12);
  EXPECT_EQ(cell->percentile(0.5), 12);
  EXPECT_EQ(cell->percentile(0.99), 12);
  EXPECT_EQ(cell->count_below(12), 0u);
  EXPECT_EQ(cell->count_below(13), 100u);
  EXPECT_DOUBLE_EQ(cell->fraction_below(13), 1.0);
}

// ---- prometheus export ------------------------------------------------------

TEST(Registry, PrometheusTextShape) {
  telemetry::Registry reg;
  auto c = reg.counter("kernel.test_ops", "operations issued", 2, "cpu");
  c.add(0, 3);
  c.add(1, 4);
  std::uint64_t v = 11;
  reg.gauge("test.depth", "queue depth", 1, "", [&](int) { return v; });
  auto h = reg.histogram("test.lat", "latency", 1, "");
  h.add(0, 10);
  h.add(0, 30);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP shieldsim_kernel_test_ops operations issued"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE shieldsim_kernel_test_ops counter"),
            std::string::npos);
  EXPECT_NE(text.find("shieldsim_kernel_test_ops{cpu=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("shieldsim_kernel_test_ops{cpu=\"1\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("shieldsim_test_depth 11"), std::string::npos);
  EXPECT_NE(text.find("shieldsim_test_lat_count 2"), std::string::npos);
  EXPECT_NE(text.find("shieldsim_test_lat_sum_ns 40"), std::string::npos);
  EXPECT_NE(text.find("shieldsim_test_lat_max_ns 30"), std::string::npos);
  // Every non-comment line is "name[{labels}] value": a minimal parse of
  // the whole exposition, so one malformed series cannot hide.
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.compare(0, 10, "shieldsim_"), 0) << line;
    EXPECT_NO_THROW((void)std::stoull(line.substr(space + 1))) << line;
  }
}

// ---- flight recorder --------------------------------------------------------

TEST(FlightRecorder, DisabledByDefaultAndRecordsNothing) {
  telemetry::FlightRecorder fr;
  EXPECT_FALSE(fr.enabled());
  fr.record(10, telemetry::EventKind::kIrqRaise, 0, 5);
  EXPECT_EQ(fr.total_recorded(), 0u);
  EXPECT_TRUE(fr.entries().empty());
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestEntriesOldestFirst) {
  telemetry::FlightRecorder fr;
  fr.enable(4);
  for (int i = 0; i < 6; ++i) {
    fr.record(static_cast<sim::Time>(i * 10), telemetry::EventKind::kCtxSwitch,
              0, i);
  }
  EXPECT_EQ(fr.total_recorded(), 6u);
  EXPECT_EQ(fr.dropped(), 2u);
  const auto entries = fr.entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().a, 2);  // the two oldest fell off
  EXPECT_EQ(entries.back().a, 5);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i - 1].at, entries[i].at);
  }
}

TEST(FlightRecorder, ReenableWithNewCapacityClearsTheRing) {
  telemetry::FlightRecorder fr;
  fr.enable(4);
  fr.record(1, telemetry::EventKind::kIrqRaise, 0);
  fr.enable(8);
  EXPECT_EQ(fr.total_recorded(), 0u);
  EXPECT_EQ(fr.capacity(), 8u);
}

TEST(FlightRecorder, FreshSessionAtSameCapacityStartsEmpty) {
  // Regression: disable() + enable(same capacity) used to keep the old
  // session's ring and count, so the next dump resurfaced stale events.
  telemetry::FlightRecorder fr;
  fr.enable(4);
  fr.record(1, telemetry::EventKind::kIrqRaise, 0, 11);
  fr.record(2, telemetry::EventKind::kCtxSwitch, 0, 12);
  fr.disable();
  fr.enable(4);
  EXPECT_EQ(fr.total_recorded(), 0u);
  EXPECT_TRUE(fr.entries().empty());
  fr.record(3, telemetry::EventKind::kLockContend, 1, 13);
  const auto entries = fr.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].a, 13);
  // A redundant enable() mid-session keeps the recording.
  fr.enable(4);
  EXPECT_EQ(fr.total_recorded(), 1u);
}

TEST(FlightRecorder, WrapBoundariesDropNothingValidAndEmitNothingStale) {
  // The edges the dump path has to get exactly right: a ring filled to
  // capacity (head back at 0, not yet wrapped past anything), one past it,
  // and one short of a second full lap.
  constexpr std::size_t kCap = 8;
  const auto fill = [](std::size_t n) {
    telemetry::FlightRecorder fr;
    fr.enable(kCap);
    for (std::size_t i = 0; i < n; ++i) {
      fr.record(static_cast<sim::Time>(i), telemetry::EventKind::kCtxSwitch, 0,
                static_cast<std::int32_t>(i));
    }
    return fr;
  };
  for (const std::size_t n : {kCap, kCap + 1, 2 * kCap - 1}) {
    const auto fr = fill(n);
    const auto entries = fr.entries();
    ASSERT_EQ(entries.size(), kCap) << n;
    EXPECT_EQ(fr.dropped(), n - kCap) << n;
    // Oldest surviving entry first, newest last, no uninitialized slots
    // and no gaps.
    for (std::size_t i = 0; i < kCap; ++i) {
      EXPECT_EQ(entries[i].a, static_cast<std::int32_t>(n - kCap + i)) << n;
    }
  }
}

TEST(FlightRecorder, EventKindNamesAreStable) {
  // The dump schema exposes these strings; renaming one breaks consumers.
  EXPECT_STREQ(to_string(telemetry::EventKind::kIrqRaise), "irq-raise");
  EXPECT_STREQ(to_string(telemetry::EventKind::kCtxSwitch), "ctx-switch");
  EXPECT_STREQ(to_string(telemetry::EventKind::kLockContend), "lock-contend");
  EXPECT_STREQ(to_string(telemetry::EventKind::kFaultFire), "fault-fire");
}

// ---- sampler ----------------------------------------------------------------

TEST(Sampler, StoresSparseDeltasPerTick) {
  sim::Engine e;
  telemetry::Registry reg;
  auto c = reg.counter("test.ops", "h", 1, "");
  reg.counter("test.quiet", "h", 1, "");
  telemetry::Sampler sampler(e, reg);
  sampler.start(10_us);
  e.schedule(5_us, [&] { c.add(0, 3); });
  e.schedule(15_us, [&] { c.add(0, 4); });
  e.run_until(30_us);
  sampler.stop();

  const auto& points = sampler.points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].at, 10'000);
  ASSERT_EQ(points[0].deltas.size(), 1u);  // the quiet series costs nothing
  EXPECT_EQ(points[0].deltas[0].second, 3u);
  ASSERT_EQ(points[1].deltas.size(), 1u);
  EXPECT_EQ(points[1].deltas[0].second, 4u);
  EXPECT_TRUE(points[2].deltas.empty());  // nothing moved in the last tick
}

TEST(Sampler, LateRegistrationGetsAZeroBaseline) {
  sim::Engine e;
  telemetry::Registry reg;
  reg.counter("test.early", "h", 1, "");
  telemetry::Sampler sampler(e, reg);
  sampler.start(10_us);
  telemetry::Registry::Counter late;
  e.schedule(12_us, [&] {
    late = reg.counter("test.late", "h", 1, "");
    late.add(0, 6);
  });
  e.run_until(20_us);
  sampler.stop();
  ASSERT_EQ(sampler.points().size(), 2u);
  const auto& deltas = sampler.points()[1].deltas;
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].first, 1u);  // flattened index of the new series
  EXPECT_EQ(deltas[0].second, 6u);
}

TEST(Sampler, StopCancelsAndARunDoesNotGrowPoints) {
  sim::Engine e;
  telemetry::Registry reg;
  telemetry::Sampler sampler(e, reg);
  sampler.start(10_us);
  e.run_until(20_us);
  sampler.stop();
  const auto n = sampler.points().size();
  e.run_until(100_us);
  EXPECT_EQ(sampler.points().size(), n);
}

// ---- procfs and JSON agree (satellite) --------------------------------------

TEST(TelemetryIntegration, ProcfsAndJsonReportTheSameCounters) {
  // Run a scenario whose plan exercises the PR 4 counters (softirq flood,
  // lock-holder delay), then check every /proc/latency/cpuN field against
  // the matching latency_report_json field. Agreement is by construction —
  // both render latency_counter_views() — but this pins the contract.
  auto spec = spec_of("faults-storm-shielded");
  fault::FaultSpec holder;
  holder.kind = fault::FaultKind::kLockHolderDelay;
  holder.lock = "dcache";
  holder.rate_hz = 200.0;
  holder.min_ns = 20'000;
  holder.max_ns = 60'000;
  spec.faults.faults.push_back(holder);

  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache = false;
  config::ScenarioRunner runner(ro);
  bool checked = false;
  config::ScenarioRunner::Hooks hooks;
  hooks.finished = [&](config::Platform& p, rt::Probe&) {
    kernel::Kernel& k = p.kernel();
    const auto doc = config::json::Value::parse(
        kernel::latency_report_json(k, {}));
    const auto* cpus = doc.find("cpus");
    ASSERT_NE(cpus, nullptr);
    ASSERT_EQ(cpus->items().size(), static_cast<std::size_t>(k.ncpus()));
    std::uint64_t softirq_raised = 0, lock_hold = 0;
    for (int c = 0; c < k.ncpus(); ++c) {
      const auto& obj = cpus->items()[static_cast<std::size_t>(c)];
      const auto text =
          k.procfs().read("/proc/latency/cpu" + std::to_string(c)).value();
      for (const auto& view : kernel::latency_counter_views()) {
        const auto* field = obj.find(view.key);
        ASSERT_NE(field, nullptr) << view.key;
        // The procfs line for the same counter.
        const std::string needle = std::string(view.key) + " ";
        const auto pos = text.find(needle);
        ASSERT_NE(pos, std::string::npos) << view.key;
        const auto value = std::stoull(text.substr(pos + needle.size()));
        EXPECT_EQ(field->as_u64(), value)
            << view.key << " on cpu" << c << " disagrees between "
            << "/proc/latency/cpu" << c << " and latency_report_json";
        if (std::string(view.key) == "softirq_raised") {
          softirq_raised += field->as_u64();
        }
        if (std::string(view.key) == "lock_hold_ns") {
          lock_hold += field->as_u64();
        }
      }
    }
    // The PR 4 fault counters must actually be live in both exports.
    EXPECT_GT(softirq_raised, 0u);
    EXPECT_GT(lock_hold, 0u);
    checked = true;
  };
  (void)runner.run(spec, 2003, hooks);
  EXPECT_TRUE(checked);
}

// ---- reset (satellite) ------------------------------------------------------

TEST(TelemetryIntegration, ResetLatencyCountersStartsASecondRunFromZero) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::vanilla_2_4_20(), 7);
  workload::make_workload("stress-kernel", config::json::Value::object())
      ->install(p);
  p.boot();
  p.run_for(100_ms);
  kernel::Kernel& k = p.kernel();
  EXPECT_GT(k.latency_counter("sched.switches", 0), 0u);
  EXPECT_GT(k.latency_counter("kernel.irq_time_ns", 0), 0u);

  k.reset_latency_counters();
  for (int c = 0; c < k.ncpus(); ++c) {
    for (const auto& view : kernel::latency_counter_views()) {
      EXPECT_EQ(k.latency_counter(view.series, c), 0u)
          << view.series << " on cpu" << c << " survived reset";
    }
  }
  // The accounting rebuilds from zero on the same kernel: a second
  // measurement window is independent of the first.
  p.run_for(100_ms);
  EXPECT_GT(k.latency_counter("sched.switches", 0), 0u);
}

TEST(TelemetryIntegration, ResetLeavesNoResidueInAnyRegistrySeries) {
  // The engine-reuse audit: after a warmed-up platform resets its counters,
  // *every* series in the registry must read zero — counters, histograms
  // and gauges alike (gauges read through to component state, so a nonzero
  // gauge here means some component kept first-window residue). The
  // allowlist names series that are genuinely allowed to survive; today it
  // is empty, and additions need a written justification.
  const std::set<std::string> allowlist = {};

  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::vanilla_2_4_20(), 7);
  workload::make_workload("stress-kernel", config::json::Value::object())
      ->install(p);
  p.boot();
  p.engine().chain_tracer().enable();
  p.engine().flight_recorder().enable(64);
  p.run_for(100_ms);

  // The first window actually exercised the residue carriers. (In a
  // -DSHIELDSIM_CHAIN_TRACE=OFF build the tracer is a stub that never
  // opens a chain; the rest of the audit still applies.)
  if (sim::ChainTracer::compiled_in()) {
    EXPECT_GT(p.engine().chain_tracer().opened(), 0u);
  }
  EXPECT_GT(p.engine().flight_recorder().total_recorded(), 0u);

  p.kernel().reset_latency_counters();

  const auto names = p.engine().telemetry().series_names();
  const auto values = p.engine().telemetry().snapshot_values();
  ASSERT_EQ(names.size(), values.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (allowlist.count(names[i]) > 0) continue;
    EXPECT_EQ(values[i], 0u) << names[i] << " survived reset";
  }
  EXPECT_EQ(p.engine().chain_tracer().opened(), 0u);
  EXPECT_EQ(p.engine().chain_tracer().completed(), 0u);
  EXPECT_EQ(p.engine().chain_tracer().dropped(), 0u);
  EXPECT_EQ(p.engine().flight_recorder().total_recorded(), 0u);
  EXPECT_TRUE(p.engine().flight_recorder().entries().empty());
}

// ---- spec plumbing ----------------------------------------------------------

TEST(TelemetryPlan, DefaultPlanIsNotSerializedAndDigestsAreUnchanged) {
  const auto base = spec_of("fig6");
  EXPECT_EQ(base.to_json().find("telemetry"), nullptr);
  auto with_default = base;
  with_default.telemetry = config::TelemetryPlan{};
  EXPECT_EQ(base.digest(), with_default.digest());
}

TEST(TelemetryPlan, RoundTripsThroughJson) {
  auto spec = spec_of("fig6");
  spec.telemetry.sampler = true;
  spec.telemetry.sample_period_ns = 5_ms;
  spec.telemetry.flight_recorder = true;
  spec.telemetry.flight_capacity = 128;
  const auto back = config::ScenarioSpec::from_json(spec.to_json());
  EXPECT_TRUE(back.telemetry.sampler);
  EXPECT_EQ(back.telemetry.sample_period_ns, 5_ms);
  EXPECT_TRUE(back.telemetry.flight_recorder);
  EXPECT_EQ(back.telemetry.flight_capacity, 128);
  EXPECT_EQ(back.digest(), spec.digest());
}

TEST(TelemetryPlan, UnknownKeysAndBadValuesAreRejected) {
  auto spec = spec_of("fig6");
  auto v = spec.to_json();
  auto t = config::json::Value::object();
  t.set("samplre", true);  // typo'd key
  v.set("telemetry", t);
  EXPECT_THROW((void)config::ScenarioSpec::from_json(v), std::runtime_error);

  spec.telemetry.sampler = true;
  spec.telemetry.sample_period_ns = 0;
  EXPECT_THROW(spec.validate(), std::runtime_error);
  spec.telemetry.sample_period_ns = 1_ms;
  spec.telemetry.flight_recorder = true;
  spec.telemetry.flight_capacity = 0;
  EXPECT_THROW(spec.validate(), std::runtime_error);
}

// ---- runner integration -----------------------------------------------------

TEST(TelemetryIntegration, SamplerDoesNotPerturbTheSimulation) {
  // The hard neutrality claim: with the sampler on, the probe's histograms
  // are bit-identical to the plain run — telemetry observes, never steers.
  const auto base = spec_of("faults-storm-shielded");
  auto observed = base;
  observed.telemetry.sampler = true;
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache = false;
  config::ScenarioRunner runner(ro);
  const auto plain = runner.run(base, 11);
  const auto with = runner.run(observed, 11);
  // The sampler's ticks are calendar events, so the executed-event count
  // grows by exactly the ticks; the model's outputs must not move at all.
  EXPECT_GE(with.events, plain.events);
  EXPECT_EQ(plain.to_json().find("probe")->dump(),
            with.to_json().find("probe")->dump());
  EXPECT_TRUE(plain.telemetry.is_null());
  ASSERT_FALSE(with.telemetry.is_null());
  EXPECT_EQ(with.telemetry.find("schema")->as_string(), "telemetry-v1");
  EXPECT_FALSE(with.telemetry.find("timeline")->find("points")->items().empty());
}

TEST(TelemetryIntegration, ResultTelemetryRoundTripsThroughTheCache) {
  auto spec = spec_of("faults-smi-shielded");
  spec.telemetry.sampler = true;
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  config::ScenarioRunner runner(ro);
  const auto fresh = runner.run(spec, 3);
  const auto cached = runner.run(spec, 3);
  EXPECT_FALSE(fresh.from_cache);
  EXPECT_TRUE(cached.from_cache);
  EXPECT_EQ(fresh.to_json().dump(), cached.to_json().dump());
  const auto back = config::ScenarioResult::from_json(fresh.to_json());
  EXPECT_EQ(back.telemetry.dump(), fresh.telemetry.dump());
}

TEST(TelemetryIntegration, WatchdogTimeoutCarriesAFlightDump) {
  const auto spec = spec_of("faults-storm-shielded");
  config::ScenarioRunner::Options ro;
  ro.scale = 0.02;
  ro.cache = false;
  ro.max_events = 20'000;  // fires long before the horizon
  config::ScenarioRunner runner(ro);
  const auto out = runner.run_outcome(spec, 2003);
  EXPECT_EQ(out.status, config::RunStatus::kTimedOut);
  ASSERT_FALSE(out.flight_recording.is_null());
  EXPECT_EQ(out.flight_recording.find("schema")->as_string(),
            "flight-recorder-v1");
  const auto* events = out.flight_recording.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->items().empty());
  // And the batch report carries it to disk consumers.
  const auto report_json = config::BatchReport{{out}, 0}.to_json();
  const auto& outcome = report_json.find("outcomes")->items().at(0);
  EXPECT_NE(outcome.find("flight_recording"), nullptr);
}

TEST(TelemetryIntegration, FlightDumpJsonMatchesTheRing) {
  telemetry::FlightRecorder fr;
  fr.enable(8);
  fr.record(100, telemetry::EventKind::kIrqRaise, -1, 10);
  fr.record(200, telemetry::EventKind::kLockContend, 1, 3, 0);
  const auto v = config::flight_dump_json(fr);
  EXPECT_EQ(v.find("schema")->as_string(), "flight-recorder-v1");
  EXPECT_EQ(v.find("capacity")->as_u64(), 8u);
  EXPECT_EQ(v.find("dropped")->as_u64(), 0u);
  const auto& events = v.find("events")->items();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].find("t_ns")->as_u64(), 100u);
  EXPECT_EQ(events[0].find("kind")->as_string(), "irq-raise");
  EXPECT_EQ(events[1].find("cpu")->as_i64(), 1);
  EXPECT_EQ(events[1].find("a")->as_i64(), 3);
}

}  // namespace

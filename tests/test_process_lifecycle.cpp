// fork/exec/exit/wait churn and zombie reaping.
#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel_test_util.h"
#include "workload/nfs_compile.h"

using namespace testutil;
using namespace sim::literals;

TEST(ProcessLifecycle, ForkExecCreatesChildInKernelContext) {
  auto p = vanilla_rig(191);
  auto& k = p->kernel();
  kernel::Task* child = nullptr;
  spawn_scripted(
      k, {.name = "parent"},
      {kernel::SyscallAction{
          "fork", kernel::sys::fork_exec(
                      k, [&child](kernel::Kernel& k2, kernel::Task&) {
                        kernel::Kernel::TaskParams tp;
                        tp.name = "child";
                        child = &workload::spawn(
                            k2, std::move(tp),
                            [](kernel::Kernel&, kernel::Task&) -> kernel::Action {
                              return kernel::ExitAction{};
                            });
                      })}});
  p->boot();
  p->run_for(1_s);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->state, kernel::TaskState::kExited);
  EXPECT_NE(k.find_task("child"), nullptr);  // zombie still listed
}

TEST(ProcessLifecycle, ReapRemovesZombiesAndTheirProcFiles) {
  auto p = vanilla_rig(192);
  auto& k = p->kernel();
  auto& t = spawn_scripted(k, {.name = "shortlived"}, {});  // exits at once
  const std::string stat_path = "/proc/" + std::to_string(t.pid) + "/stat";
  p->boot();
  p->run_for(100_ms);
  ASSERT_EQ(t.state, kernel::TaskState::kExited);
  ASSERT_TRUE(k.procfs().exists(stat_path));
  EXPECT_EQ(k.reap_exited(), 1u);
  EXPECT_FALSE(k.procfs().exists(stat_path));
  EXPECT_EQ(k.find_task("shortlived"), nullptr);
  EXPECT_EQ(k.reap_exited(), 0u);  // idempotent
}

TEST(ProcessLifecycle, ReapSparesLiveTasks) {
  auto p = vanilla_rig(193);
  auto& k = p->kernel();
  spawn_hog(k, "immortal");
  spawn_scripted(k, {.name = "mortal"}, {});
  p->boot();
  p->run_for(100_ms);
  EXPECT_EQ(k.reap_exited(), 1u);
  EXPECT_NE(k.find_task("immortal"), nullptr);
  EXPECT_NE(k.find_task("ksoftirqd/0"), nullptr);
}

TEST(ProcessLifecycle, NfsCompileChurnsProcesses) {
  auto p = vanilla_rig(194);
  workload::NfsCompile{}.install(*p);
  p->boot();
  p->run_for(10_s);
  auto* cc1 = p->kernel().find_task("cc1");
  ASSERT_NE(cc1, nullptr);
  // Steady-state: forked, waited, compiled, repeated. The task list stays
  // bounded because cc1 reaps — far fewer live tasks than total forks.
  auto& probe = spawn_hog(p->kernel(), "probe");
  EXPECT_GT(probe.pid, 30);  // dozens of pids were consumed by gcc children
  EXPECT_LT(p->kernel().tasks().size(), 40u);  // but zombies got reaped
}

TEST(ProcessLifecycle, ChurnIsDeterministic) {
  const auto run = [](std::uint64_t seed) {
    auto p = vanilla_rig(seed);
    workload::NfsCompile{}.install(*p);
    p->boot();
    p->run_for(5_s);
    return p->engine().events_executed();
  };
  EXPECT_EQ(run(195), run(195));
}

#include <gtest/gtest.h>

#include "kernel/stats_report.h"
#include "kernel_test_util.h"
#include "workload/stress_kernel.h"

using namespace testutil;
using namespace sim::literals;

TEST(StatsReport, TaskTableListsAllTasks) {
  auto p = vanilla_rig(141);
  spawn_hog(p->kernel(), "alpha");
  spawn_hog(p->kernel(), "beta", {}, kernel::SchedPolicy::kFifo, 42);
  p->boot();
  p->run_for(500_ms);
  const std::string s = kernel::format_task_table(p->kernel());
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("ksoftirqd/0"), std::string::npos);
  EXPECT_NE(s.find("FIFO"), std::string::npos);
  EXPECT_NE(s.find("OTH"), std::string::npos);
}

TEST(StatsReport, CpuTableShowsActivity) {
  auto p = vanilla_rig(142);
  spawn_hog(p->kernel(), "hog", hw::CpuMask::single(0));
  p->boot();
  p->run_for(500_ms);
  const std::string s = kernel::format_cpu_table(p->kernel());
  EXPECT_NE(s.find("hog"), std::string::npos);     // current on CPU 0
  EXPECT_NE(s.find("(idle)"), std::string::npos);  // CPU 1 idle
}

TEST(StatsReport, LockTableOnlyShowsUsedLocks) {
  auto p = vanilla_rig(143);
  p->boot();
  p->run_for(100_ms);
  const std::string quiet = kernel::format_lock_table(p->kernel());
  EXPECT_EQ(quiet.find("rtc_lock"), std::string::npos);
  workload::StressKernel{}.install(*p);
  p->run_for(1_s);
  const std::string busy = kernel::format_lock_table(p->kernel());
  EXPECT_NE(busy.find("fs_lock"), std::string::npos);
  EXPECT_NE(busy.find("socket_lock"), std::string::npos);
}

TEST(StatsReport, SystemReportCombinesSections) {
  auto p = vanilla_rig(144);
  p->boot();
  p->run_for(100_ms);
  const std::string s = kernel::format_system_report(p->kernel());
  EXPECT_NE(s.find("== tasks =="), std::string::npos);
  EXPECT_NE(s.find("== cpus =="), std::string::npos);
  EXPECT_NE(s.find("== locks =="), std::string::npos);
}

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"

using sim::Rng;

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitStreamsAreIndependentOfParentConsumption) {
  // Splitting then consuming the parent must not change the child stream.
  Rng parent1(7);
  Rng child1 = parent1.split();
  const auto v1 = child1.next_u64();

  Rng parent2(7);
  Rng child2 = parent2.split();
  parent2.next_u64();  // extra parent consumption
  const auto v2 = child2.next_u64();
  EXPECT_EQ(v1, v2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectssBounds) {
  Rng r(5);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.uniform(10, 20);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 20u);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng r(5);
  EXPECT_EQ(r.uniform(7, 7), 7u);
  EXPECT_EQ(r.uniform(0, 0), 0u);
}

TEST(Rng, UniformCoversRange) {
  Rng r(11);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    hits[r.uniform(0, 9)]++;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(hits[static_cast<std::size_t>(i)], 800) << "bucket " << i;
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(17);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(19);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, ExponentialAlwaysNonNegative) {
  Rng r(23);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_GE(r.exponential(1.0), 0.0);
  }
}

TEST(Rng, NormalMomentsConverge) {
  Rng r(29);
  const int n = 200'000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng r(31);
  for (int i = 0; i < 50'000; ++i) {
    const double x = r.bounded_pareto(2.0, 1000.0, 1.1);
    ASSERT_GE(x, 2.0);
    ASSERT_LE(x, 1000.0);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  // Most mass near the lower bound, a real tail near the top.
  Rng r(37);
  int low = 0, high = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.bounded_pareto(1.0, 10'000.0, 1.05);
    if (x < 10.0) ++low;
    if (x > 1'000.0) ++high;
  }
  EXPECT_GT(low, n / 2);  // majority short
  EXPECT_GT(high, 0);     // but the tail exists
  EXPECT_LT(high, n / 20);
}

TEST(Rng, BoundedParetoDurationBounds) {
  Rng r(41);
  for (int i = 0; i < 10'000; ++i) {
    const auto d = r.bounded_pareto_duration(100, 50'000, 1.2);
    ASSERT_GE(d, 100u);
    ASSERT_LE(d, 50'000u);
  }
}

TEST(Rng, LognormalPositive) {
  Rng r(43);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_GT(r.lognormal(0.0, 1.0), 0.0);
  }
}

// "One or more shielded CPUs" (§2): multi-CPU shields on a quad machine.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "metrics/histogram.h"
#include "workload/stress_kernel.h"

using namespace testutil;
using namespace sim::literals;

namespace {

std::unique_ptr<config::Platform> quad_rig(std::uint64_t seed = 1) {
  return std::make_unique<config::Platform>(
      config::MachineConfig::quad_p4_xeon_2000_rcim(),
      config::KernelConfig::redhawk_1_4(), seed);
}

}  // namespace

TEST(MultiShield, QuadMachineHasFourCpus) {
  auto p = quad_rig();
  EXPECT_EQ(p->topology().logical_cpus(), 4);  // RedHawk: HT off
}

TEST(MultiShield, TwoCpusShieldedSimultaneously) {
  auto p = quad_rig(161);
  workload::StressKernel{}.install(*p);
  auto& rt2 = spawn_hog(p->kernel(), "rt2", hw::CpuMask::single(2),
                        kernel::SchedPolicy::kFifo, 90);
  auto& rt3 = spawn_hog(p->kernel(), "rt3", hw::CpuMask::single(3),
                        kernel::SchedPolicy::kFifo, 90);
  p->boot();
  p->shield().shield_all(hw::CpuMask(0b1100));
  p->run_for(2_s);
  EXPECT_EQ(rt2.cpu, 2);
  EXPECT_EQ(rt3.cpu, 3);
  // Background tasks confined to CPUs 0-1.
  for (const auto& t : p->kernel().tasks()) {
    if (t.get() == &rt2 || t.get() == &rt3) continue;
    if (t->name.starts_with("ksoftirqd")) continue;
    EXPECT_TRUE(t->effective_affinity.subset_of(hw::CpuMask(0b0011)))
        << t->name;
  }
  // No interrupts delivered to the shielded pair after shielding.
  EXPECT_EQ(p->kernel().cpu(2).hardirqs + p->kernel().cpu(3).hardirqs, 0u);
}

TEST(MultiShield, TaskSpanningBothShieldedCpusAllowed) {
  // Affinity {2,3} ⊆ shield {2,3}: the task may float between the two
  // shielded CPUs (§3's subset rule with a multi-CPU mask).
  auto p = quad_rig(162);
  auto& rt = spawn_hog(p->kernel(), "rt", hw::CpuMask(0b1100),
                       kernel::SchedPolicy::kFifo, 70);
  p->boot();
  p->shield().set_process_shield(hw::CpuMask(0b1100));
  p->run_for(500_ms);
  EXPECT_EQ(rt.effective_affinity, hw::CpuMask(0b1100));
  EXPECT_TRUE(rt.cpu == 2 || rt.cpu == 3);
}

TEST(MultiShield, PartialOverlapTaskLosesShieldedHalf) {
  // Affinity {1,2}, shield {2,3} → effective {1}.
  auto p = quad_rig(163);
  auto& t = spawn_hog(p->kernel(), "half", hw::CpuMask(0b0110));
  p->boot();
  p->shield().set_process_shield(hw::CpuMask(0b1100));
  p->run_for(200_ms);
  EXPECT_EQ(t.effective_affinity, hw::CpuMask(0b0010));
  EXPECT_EQ(t.cpu, 1);
}

TEST(MultiShield, IndependentRtTasksBothMeetLatency) {
  // Two independent RT consumers, each with its own dedicated CPU: the
  // RCIM timer drives one, an external RCIM line drives the other.
  auto p = quad_rig(164);
  workload::StressKernel{}.install(*p);
  auto& k = p->kernel();

  struct Stats {
    metrics::LatencyHistogram lat;
    std::uint64_t n = 0;
  };
  auto s2 = std::make_shared<Stats>();
  auto& rcim = p->rcim_device();
  auto& drv = p->rcim_driver();

  kernel::Kernel::TaskParams tp2;
  tp2.name = "rt-timer";
  tp2.policy = kernel::SchedPolicy::kFifo;
  tp2.rt_priority = 95;
  tp2.affinity = hw::CpuMask::single(2);
  tp2.mlocked = true;
  auto& rt_timer = workload::spawn(
      k, std::move(tp2),
      [s2, &rcim, &drv](kernel::Kernel&, kernel::Task&) -> kernel::Action {
        if (s2->n > 0) s2->lat.add(rcim.elapsed_in_cycle());
        if (s2->n >= 2000) return kernel::ExitAction{};
        s2->n++;
        return kernel::SyscallAction{"ioctl", drv.wait_ioctl_program()};
      });

  auto s3 = std::make_shared<Stats>();
  kernel::Kernel::TaskParams tp3;
  tp3.name = "rt-edge";
  tp3.policy = kernel::SchedPolicy::kFifo;
  tp3.rt_priority = 95;
  tp3.affinity = hw::CpuMask::single(3);
  tp3.mlocked = true;
  workload::spawn(
      k, std::move(tp3),
      [s3, &rcim, &drv](kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
        if (s3->n > 0) s3->lat.add(kk.now() - rcim.last_external_edge(0));
        if (s3->n >= 500) return kernel::ExitAction{};
        s3->n++;
        return kernel::SyscallAction{"ioctl",
                                     drv.external_wait_ioctl_program(0)};
      });

  p->boot();
  // RCIM irq may fire on either shielded CPU.
  p->kernel().procfs().write("/proc/irq/5/smp_affinity", "c");  // CPUs 2,3
  (void)rt_timer;
  p->shield().shield_all(hw::CpuMask(0b1100));
  rcim.program_periodic(2'500);
  for (int i = 1; i <= 600; ++i) {
    p->engine().schedule(static_cast<sim::Duration>(i) * 4_ms,
                         [&rcim] { rcim.trigger_external(0); });
  }
  p->run_for(10_s);
  ASSERT_GT(s2->lat.count(), 1000u);
  ASSERT_GT(s3->lat.count(), 300u);
  EXPECT_LT(s2->lat.max(), 100_us);
  EXPECT_LT(s3->lat.max(), 100_us);
}

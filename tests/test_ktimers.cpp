// Kernel periodic timers and the POSIX-timers patch (§4): without it,
// expirations are quantized to the 10 ms jiffy grid; with it they are
// exact.
#include <gtest/gtest.h>

#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

TEST(KTimers, PeriodicFiresAtRequestedRate) {
  auto p = redhawk_rig(151);  // posix timers: exact
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("tick");
  p->boot();
  const auto id = k.arm_periodic_timer(wq, 5_ms);
  p->run_for(1_s);
  EXPECT_EQ(k.timer_expirations(id), 200u);
}

TEST(KTimers, VanillaQuantizesToJiffies) {
  auto p = vanilla_rig(152);
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("tick");
  p->boot();
  // A 3 ms itimer on a HZ=100 kernel can only fire on 10 ms boundaries.
  const auto id = k.arm_periodic_timer(wq, 3_ms);
  p->run_for(1_s);
  // Each rearm rounds up: effective period = 10 ms → ~100 expirations.
  EXPECT_LE(k.timer_expirations(id), 101u);
  EXPECT_GE(k.timer_expirations(id), 99u);
}

TEST(KTimers, HighResFiresSubJiffy) {
  auto p = redhawk_rig(153);
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("tick");
  p->boot();
  const auto id = k.arm_periodic_timer(wq, 3_ms);
  p->run_for(1_s);
  EXPECT_GE(k.timer_expirations(id), 330u);
}

TEST(KTimers, WakesBlockedTask) {
  auto p = redhawk_rig(154);
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("tick");
  std::vector<sim::Time> marks;
  spawn_scripted(k, {.name = "waiter"},
                 {kernel::SyscallAction{
                     "timer_wait", kernel::ProgramBuilder{}.block(wq).build()}},
                 &marks);
  p->boot();
  k.arm_periodic_timer(wq, 7_ms);
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_GE(marks[1], 7_ms);
  EXPECT_LT(marks[1], 7_ms + 200_us);
}

TEST(KTimers, CancelStopsExpirations) {
  auto p = redhawk_rig(155);
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("tick");
  p->boot();
  const auto id = k.arm_periodic_timer(wq, 5_ms);
  p->run_for(100_ms);
  const auto n = k.timer_expirations(id);
  k.cancel_timer(id);
  k.cancel_timer(id);  // idempotent
  p->run_for(1_s);
  EXPECT_EQ(k.timer_expirations(id), n);
}

TEST(KTimers, MultipleIndependentTimers) {
  auto p = redhawk_rig(156);
  auto& k = p->kernel();
  const auto wq1 = k.create_wait_queue("t1");
  const auto wq2 = k.create_wait_queue("t2");
  p->boot();
  const auto fast = k.arm_periodic_timer(wq1, 2_ms);
  const auto slow = k.arm_periodic_timer(wq2, 20_ms);
  p->run_for(1_s);
  EXPECT_EQ(k.timer_expirations(fast), 500u);
  EXPECT_EQ(k.timer_expirations(slow), 50u);
}

TEST(KTimers, QuantizationDoesNotAccumulateDrift) {
  // 2.4-style quantization rounds each expiry up, but the 10 ms grid is a
  // multiple of nothing in a 7 ms timer — the effective rate settles at
  // one expiry per jiffy-rounded period, not slower and slower.
  auto p = vanilla_rig(157);
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("tick");
  p->boot();
  const auto id = k.arm_periodic_timer(wq, 7_ms);
  p->run_for(10_s);
  // ceil(7 ms) on a fresh grid each time → 10 ms effective → ~1000 fires.
  EXPECT_NEAR(static_cast<double>(k.timer_expirations(id)), 1000.0, 10.0);
}

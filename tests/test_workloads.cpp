// Workload generators: each must install cleanly and produce its
// characteristic kernel-visible activity.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "workload/crashme.h"
#include "workload/disk_noise.h"
#include "workload/fifos_mmap.h"
#include "workload/fs_stress.h"
#include "workload/nfs_compile.h"
#include "workload/p3_fpu.h"
#include "workload/scp_copy.h"
#include "workload/stress_kernel.h"
#include "workload/ttcp.h"
#include "workload/x11perf.h"

using namespace testutil;
using namespace sim::literals;

namespace {

std::uint64_t total_syscalls(kernel::Kernel& k) {
  std::uint64_t n = 0;
  for (const auto& t : k.tasks()) n += t->syscalls;
  return n;
}

}  // namespace

TEST(Workloads, ScpCopyGeneratesNicTrafficAndDiskWrites) {
  auto p = vanilla_rig(91);
  workload::ScpCopy{}.install(*p);
  p->boot();
  p->run_for(3_s);
  EXPECT_GT(p->nic_device().total_rx_bytes(), 1'000'000u);  // ~10 MB/s stream
  EXPECT_GT(p->disk_device().completed_requests(), 5u);
  auto* recv = p->kernel().find_task("scp-recv");
  ASSERT_NE(recv, nullptr);
  EXPECT_GT(recv->utime, 100_ms);  // decryption CPU burn
}

TEST(Workloads, ScpCopyPausesBetweenFiles) {
  auto p = vanilla_rig(92);
  workload::ScpCopy::Params params;
  params.file_bytes = 64'000;  // small file → frequent handshake gaps
  workload::ScpCopy w(params);
  w.install(*p);
  p->boot();
  p->run_for(2_s);
  // With 64 KB files at ~32 KB/3 ms plus a 60+ ms gap per file, the stream
  // must be well below line rate.
  EXPECT_LT(p->nic_device().total_rx_bytes(), 15'000'000u);
  EXPECT_GT(p->nic_device().total_rx_bytes(), 500'000u);
}

TEST(Workloads, DiskNoiseHammersTheDisk) {
  auto p = vanilla_rig(93);
  workload::DiskNoise{}.install(*p);
  p->boot();
  p->run_for(3_s);
  EXPECT_GT(p->disk_device().completed_requests(), 20u);
  auto* t = p->kernel().find_task("disknoise");
  ASSERT_NE(t, nullptr);
  EXPECT_GT(t->syscalls, 50u);
  // fs locks were exercised.
  EXPECT_GT(p->kernel().lock(kernel::LockId::kFs).acquisitions(), 50u);
}

TEST(Workloads, NfsCompileDrivesRpcsAndServer) {
  auto p = vanilla_rig(94);
  workload::NfsCompile{}.install(*p);
  p->boot();
  p->run_for(5_s);
  auto* cc1 = p->kernel().find_task("cc1");
  auto* nfsd = p->kernel().find_task("nfsd");
  ASSERT_NE(cc1, nullptr);
  ASSERT_NE(nfsd, nullptr);
  EXPECT_GT(cc1->syscalls, 20u);   // fork/exec + wait4 churn
  EXPECT_GT(nfsd->syscalls, 10u);  // served RPCs
  // Process churn happened: many gcc pids were created (and mostly
  // reaped); a fresh task's pid reveals how many came before it.
  auto& probe = testutil::spawn_hog(p->kernel(), "pid-probe");
  EXPECT_GT(probe.pid, 20);
  // Loopback RPCs raise net-rx softirq work somewhere.
  std::uint64_t netrx = 0;
  for (int c = 0; c < p->kernel().ncpus(); ++c) {
    netrx += p->kernel().cpu(c).softirq.raise_count(kernel::SoftirqType::kNetRx);
  }
  EXPECT_GT(netrx, 10u);
}

TEST(Workloads, TtcpLoopbackMovesData) {
  auto p = vanilla_rig(95);
  workload::TtcpLoopback{}.install(*p);
  p->boot();
  p->run_for(2_s);
  auto* send = p->kernel().find_task("ttcp-lo-send");
  auto* recv = p->kernel().find_task("ttcp-lo-recv");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  EXPECT_GT(send->syscalls, 100u);
  EXPECT_GT(recv->syscalls, 100u);
}

TEST(Workloads, TtcpEthernetUsesTheWire) {
  auto p = vanilla_rig(96);
  workload::TtcpEthernet{}.install(*p);
  p->boot();
  p->run_for(2_s);
  EXPECT_GT(p->nic_device().total_rx_bytes(), 500'000u);
  EXPECT_GT(p->nic_device().total_tx_bytes(), 100'000u);
}

TEST(Workloads, FifosMmapPingPongs) {
  auto p = vanilla_rig(97);
  workload::FifosMmap{}.install(*p);
  p->boot();
  p->run_for(2_s);
  auto* a = p->kernel().find_task("fifos-a");
  auto* b = p->kernel().find_task("fifos-b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GT(a->syscalls, 100u);
  EXPECT_GT(b->syscalls, 100u);
  EXPECT_GT(p->kernel().lock(kernel::LockId::kPipe).acquisitions(), 100u);
  EXPECT_GT(p->kernel().lock(kernel::LockId::kMm).acquisitions(), 5u);
}

TEST(Workloads, P3FpuBurnsCpuWithHighMemoryTraffic) {
  auto p = vanilla_rig(98);
  workload::P3Fpu{}.install(*p);
  p->boot();
  p->run_for(2_s);
  auto* t = p->kernel().find_task("p3-fpu");
  ASSERT_NE(t, nullptr);
  EXPECT_GT(t->utime, 1500_ms);  // nearly pure compute
}

TEST(Workloads, FsStressUsesHeavyBodies) {
  auto p = vanilla_rig(99);
  workload::FsStress{}.install(*p);
  p->boot();
  p->run_for(3_s);
  auto* t = p->kernel().find_task("fs-stress0");
  ASSERT_NE(t, nullptr);
  EXPECT_GT(t->stime, 40_ms);  // big in-kernel bodies
  EXPECT_GT(p->disk_device().completed_requests(), 10u);
}

TEST(Workloads, CrashmeFaultStorm) {
  auto p = vanilla_rig(100);
  workload::Crashme{}.install(*p);
  p->boot();
  p->run_for(2_s);
  auto* t = p->kernel().find_task("crashme");
  ASSERT_NE(t, nullptr);
  EXPECT_GT(t->syscalls, 100u);
  EXPECT_GT(p->kernel().lock(kernel::LockId::kMm).acquisitions(), 100u);
}

TEST(Workloads, X11PerfDrivesGpu) {
  auto p = vanilla_rig(101);
  workload::X11Perf{}.install(*p);
  p->boot();
  p->run_for(2_s);
  EXPECT_GT(p->gpu_device().total_batches(), 50u);
  auto* x = p->kernel().find_task("Xorg");
  ASSERT_NE(x, nullptr);
  EXPECT_GT(x->syscalls, 50u);
}

TEST(Workloads, StressKernelInstallsAllComponents) {
  auto p = vanilla_rig(102);
  workload::StressKernel{}.install(*p);
  p->boot();
  p->run_for(1_s);
  for (const char* name : {"cc1", "nfsd", "ttcp-lo-send", "ttcp-lo-recv",
                           "fifos-a", "fifos-b", "p3-fpu", "fs-stress0",
                           "fs-stress1", "crashme"}) {
    EXPECT_NE(p->kernel().find_task(name), nullptr) << name;
  }
  EXPECT_GT(total_syscalls(p->kernel()), 500u);
}

TEST(Workloads, WorkloadSetComposes) {
  auto p = vanilla_rig(103);
  workload::WorkloadSet set;
  set.add(std::make_unique<workload::ScpCopy>());
  set.add(std::make_unique<workload::DiskNoise>());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.name(), "scp-copy+disknoise");
  set.install(*p);
  p->boot();
  p->run_for(1_s);
  EXPECT_NE(p->kernel().find_task("scp-recv"), nullptr);
  EXPECT_NE(p->kernel().find_task("disknoise"), nullptr);
}

TEST(Workloads, EmptyWorkloadSetName) {
  workload::WorkloadSet set;
  EXPECT_EQ(set.name(), "(empty)");
}

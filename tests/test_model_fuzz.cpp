// Model fuzzing: random task populations doing random action mixes for
// seconds of simulated time, across seeds and kernel configs. The
// simulator's internal SIM_ASSERT contracts are the primary oracle; the
// checks below verify global invariants survive arbitrary interleavings.
#include <gtest/gtest.h>

#include <memory>

#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "hw/interrupt_controller.h"
#include "kernel/syscalls.h"
#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

namespace {

/// A task that performs a random mix of every action type the model has.
class ChaoticBehavior final : public kernel::Behavior {
 public:
  explicit ChaoticBehavior(sim::Rng rng, kernel::WaitQueueId shared_wq)
      : rng_(rng), shared_wq_(shared_wq) {}

  kernel::Action next_action(kernel::Kernel& k, kernel::Task& t) override {
    switch (rng_.uniform(0, 9)) {
      case 0:
      case 1:
        return kernel::ComputeAction{rng_.uniform_duration(10_us, 5_ms),
                                     rng_.next_double()};
      case 2:
        return kernel::SleepAction{rng_.uniform_duration(100_us, 20_ms)};
      case 3:
        return kernel::SyscallAction{"fs",
                                     kernel::sys::fs_op(k, 100_us)};
      case 4:
        return kernel::SyscallAction{"mm", kernel::sys::mm_op(k, 80_us)};
      case 5:
        return kernel::SyscallAction{"fault", kernel::sys::fault_storm(k)};
      case 6:
        return kernel::SyscallAction{
            "net", kernel::sys::socket_op(
                       k, 50_us, [](kernel::Kernel& kk, kernel::Task& tt) {
                         kk.raise_softirq(tt.cpu, kernel::SoftirqType::kNetRx,
                                          30'000);
                       })};
      case 7: {
        // Wake anyone parked on the shared queue, then maybe park.
        kernel::ProgramBuilder b;
        const auto wq = shared_wq_;
        b.work(1_us, 0.3).effect([wq](kernel::Kernel& kk, kernel::Task&) {
          kk.wake_up_one(wq);
        });
        return kernel::SyscallAction{"wake", std::move(b).build()};
      }
      case 8: {
        // Change own affinity at random (never to an empty mask).
        const auto ncpus = k.ncpus();
        hw::CpuMask mask(rng_.uniform(1, (1u << ncpus) - 1));
        k.sched_setaffinity(t, mask);
        return kernel::ComputeAction{10_us, 0.2};
      }
      default: {
        kernel::ProgramBuilder b;
        b.section(kernel::LockId::kBkl, rng_.uniform_duration(1_us, 200_us));
        return kernel::SyscallAction{"bkl", std::move(b).build()};
      }
    }
  }

 private:
  sim::Rng rng_;
  kernel::WaitQueueId shared_wq_;
};

/// A random-but-valid small FaultPlan: 1-4 specs drawn from every kind the
/// injector supports, with random windows and moderate rates. The fuzz runs
/// half its seeds with one of these armed so the injector's hooks and
/// saboteurs face arbitrary interleavings too.
fault::FaultPlan random_fault_plan(sim::Rng& rng) {
  fault::FaultPlan plan;
  const int n = 1 + static_cast<int>(rng.uniform(0, 3));
  for (int i = 0; i < n; ++i) {
    fault::FaultSpec f;
    if (rng.chance(0.5)) {
      f.start = rng.uniform_duration(0, 2_s);
      f.duration = rng.uniform_duration(10_ms, 1_s);
    }
    switch (rng.uniform(0, 8)) {
      case 0:
        f.kind = fault::FaultKind::kIrqStorm;
        f.irq = rng.chance(0.5) ? hw::kIrqNic : hw::kIrqDisk;
        f.rate_hz = 100.0 + static_cast<double>(rng.uniform(0, 4900));
        break;
      case 1:
        f.kind = fault::FaultKind::kSpuriousIrq;
        f.irq = rng.chance(0.5) ? hw::kIrqNic : hw::kIrqGpu;
        f.rate_hz = 50.0 + static_cast<double>(rng.uniform(0, 950));
        break;
      case 2:
        f.kind = fault::FaultKind::kLostIrq;
        f.irq = rng.chance(0.5) ? hw::kIrqNic : hw::kIrqDisk;
        f.probability = 0.1 + 0.8 * rng.next_double();
        break;
      case 3:
        f.kind = fault::FaultKind::kDuplicateIrq;
        f.irq = rng.chance(0.5) ? hw::kIrqNic : hw::kIrqDisk;
        f.probability = 0.1 + 0.8 * rng.next_double();
        break;
      case 4:
        f.kind = fault::FaultKind::kCpuStall;
        f.rate_hz = 10.0 + static_cast<double>(rng.uniform(0, 190));
        f.min_ns = 1_us;
        f.max_ns = rng.uniform_duration(10_us, 300_us);
        f.cpu = rng.chance(0.5) ? -1 : 1;
        break;
      case 5:
        f.kind = fault::FaultKind::kClockDrift;
        f.drift = rng.chance(0.5) ? 0.01 : -0.01;
        break;
      case 6:
        f.kind = fault::FaultKind::kDeviceDelay;
        f.device = rng.chance(0.5) ? "disk" : "nic";
        f.probability = 0.1 + 0.8 * rng.next_double();
        f.min_ns = 10_us;
        f.max_ns = rng.uniform_duration(100_us, 5_ms);
        break;
      case 7:
        f.kind = fault::FaultKind::kSoftirqFlood;
        f.rate_hz = 100.0 + static_cast<double>(rng.uniform(0, 900));
        f.work_ns = rng.uniform_duration(1_us, 100_us);
        break;
      default:
        f.kind = fault::FaultKind::kLockHolderDelay;
        f.lock = rng.chance(0.5) ? "dcache" : "fs";
        f.rate_hz = 10.0 + static_cast<double>(rng.uniform(0, 90));
        f.min_ns = 10_us;
        f.max_ns = rng.uniform_duration(50_us, 1_ms);
        break;
    }
    plan.faults.push_back(std::move(f));
  }
  plan.validate("fuzz");  // the generator must only emit valid plans
  return plan;
}

struct FuzzParams {
  std::uint64_t seed;
  bool redhawk;
};

class ModelFuzz : public ::testing::TestWithParam<FuzzParams> {};

}  // namespace

TEST_P(ModelFuzz, InvariantsHoldUnderChaos) {
  const auto [seed, redhawk] = GetParam();
  auto p = redhawk ? redhawk_rig(seed) : vanilla_rig(seed);
  auto& k = p->kernel();
  sim::Rng rng(seed * 71);
  const auto shared_wq = k.create_wait_queue("chaos");

  const int ntasks = 6 + static_cast<int>(rng.uniform(0, 6));
  for (int i = 0; i < ntasks; ++i) {
    kernel::Kernel::TaskParams tp;
    tp.name = "chaos" + std::to_string(i);
    tp.policy = rng.chance(0.25) ? kernel::SchedPolicy::kFifo
                                 : kernel::SchedPolicy::kOther;
    tp.rt_priority = tp.policy == kernel::SchedPolicy::kFifo
                         ? static_cast<int>(rng.uniform(1, 80))
                         : 0;
    tp.nice = static_cast<int>(rng.uniform(0, 19));
    tp.mlocked = rng.chance(0.5);
    k.create_task(std::move(tp),
                  std::make_unique<ChaoticBehavior>(rng.split(), shared_wq));
  }

  p->boot();
  // Half the seeds also run under a random FaultPlan: injector hooks,
  // filters and saboteur tasks must uphold the same invariants.
  fault::FaultPlan plan;
  if (seed % 2 == 1) plan = random_fault_plan(rng);
  fault::Injector injector(*p, plan, seed);
  if (!plan.empty()) injector.arm(p->engine().now() + 4_s);
  // Toggle shielding mid-run on shield-capable kernels.
  if (redhawk) {
    p->engine().schedule(1_s, [&] {
      p->shield().shield_all(hw::CpuMask::single(1));
    });
    p->engine().schedule(2_s, [&] { p->shield().unshield_all(); });
  }
  p->run_for(4_s);

  // Global invariants after arbitrary interleavings:
  sim::Duration total_cpu = 0;
  for (const auto& t : k.tasks()) {
    // 1. No task stuck in a transitional state.
    EXPECT_NE(t->state, kernel::TaskState::kNew) << t->name;
    // 2. Balanced lock usage whenever a task is out of the kernel.
    if (!t->in_syscall) {
      EXPECT_EQ(t->preempt_count, 0) << t->name;
      EXPECT_EQ(t->bkl_depth, 0) << t->name;
      EXPECT_EQ(t->irq_disable_depth, 0) << t->name;
    }
    // 3. Accounted CPU time can't exceed wall clock.
    EXPECT_LE(t->utime, p->engine().now()) << t->name;
    total_cpu += t->utime + t->stime;
  }
  // 4. Total CPU time across tasks bounded by ncpus × wall clock.
  EXPECT_LE(total_cpu,
            p->engine().now() * static_cast<sim::Duration>(k.ncpus()));
  // 5. The system made real progress.
  EXPECT_GT(p->engine().events_executed(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ModelFuzz,
    ::testing::Values(FuzzParams{1, false}, FuzzParams{2, false},
                      FuzzParams{3, false}, FuzzParams{4, false},
                      FuzzParams{5, false}, FuzzParams{6, true},
                      FuzzParams{7, true}, FuzzParams{8, true},
                      FuzzParams{9, true}, FuzzParams{10, true},
                      FuzzParams{11, false}, FuzzParams{12, true},
                      FuzzParams{13, false}, FuzzParams{14, true},
                      FuzzParams{15, false}, FuzzParams{16, true}));

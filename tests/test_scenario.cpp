// The declarative scenario layer: spec JSON round-trips, validation,
// registry completeness, the parallel runner, result serialization, the
// (digest, seed, scale) cache and seed derivation.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <stdexcept>

#include "config/experiment.h"
#include "config/json.h"
#include "config/scenario.h"
#include "config/scenario_runner.h"
#include "rt/probe.h"
#include "sim/rng.h"
#include "workload/registry.h"

namespace {

config::ScenarioSpec spec_of(const char* name) {
  const auto* s = config::ScenarioRegistry::builtin().find(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

}  // namespace

// ---- spec serialization -----------------------------------------------------

TEST(ScenarioSpec, JsonRoundTripIsIdentityForEveryBuiltin) {
  for (const auto& spec : config::ScenarioRegistry::builtin().all()) {
    const auto dumped = spec.to_json().dump();
    const auto back =
        config::ScenarioSpec::from_json(config::json::Value::parse(dumped));
    EXPECT_EQ(back.to_json().dump(), dumped) << spec.name;
    EXPECT_EQ(back.digest(), spec.digest()) << spec.name;
  }
}

TEST(ScenarioSpec, DigestChangesWithContent) {
  auto a = spec_of("fig6");
  auto b = a;
  b.probe_params.set("samples", 12345);
  EXPECT_NE(a.digest(), b.digest());
  // But the digest ignores nothing: even a title change is a new spec.
  auto c = a;
  c.title += " (edited)";
  EXPECT_NE(a.digest(), c.digest());
}

TEST(ScenarioSpec, FromJsonRejectsUnknownKeys) {
  auto v = spec_of("fig6").to_json();
  v.set("not_a_field", 1);
  EXPECT_THROW(config::ScenarioSpec::from_json(v), std::runtime_error);
}

// ---- validation -------------------------------------------------------------

TEST(ScenarioSpec, ValidateRejectsUnknownWorkloadName) {
  auto s = spec_of("fig6");
  s.workloads.push_back(config::WorkloadRef{"no-such-workload",
                                            config::json::Value::object()});
  EXPECT_THROW(s.validate(), std::runtime_error);
}

TEST(ScenarioSpec, ValidateRejectsUnknownProbeName) {
  auto s = spec_of("fig6");
  s.probe = "no-such-probe";
  EXPECT_THROW(s.validate(), std::runtime_error);
}

TEST(ScenarioSpec, ValidateRejectsUnknownPresetsAndOverrides) {
  auto s = spec_of("fig6");
  s.machine = "quad-cray-1";
  EXPECT_THROW(s.validate(), std::runtime_error);

  s = spec_of("fig6");
  s.kernel = "hurd-0.9";
  EXPECT_THROW(s.validate(), std::runtime_error);

  s = spec_of("fig6");
  s.kernel_overrides.set("not_a_kernel_field", 1);
  EXPECT_THROW(s.validate(), std::runtime_error);
}

TEST(ScenarioSpec, ValidateRejectsBadWorkloadParams) {
  auto s = spec_of("fig6");
  auto params = config::json::Value::object();
  params.set("bogus_param", 3);
  s.workloads.push_back(config::WorkloadRef{"sibling-hog", params});
  EXPECT_THROW(s.validate(), std::runtime_error);
}

TEST(ScenarioSpec, DurationBoundProbesRequireFixedHorizon) {
  auto s = spec_of("timer-gap-10ms-jiffy");
  ASSERT_TRUE(rt::probe_duration_bound(s.probe));
  s.duration.fixed_ns = 0;
  EXPECT_THROW(s.validate(), std::runtime_error);
}

// ---- registries -------------------------------------------------------------

TEST(ScenarioRegistry, NamesAreUniqueAndSpecsValidate) {
  const auto& reg = config::ScenarioRegistry::builtin();
  std::set<std::string> seen;
  for (const auto& s : reg.all()) {
    EXPECT_TRUE(seen.insert(s.name).second) << "duplicate: " << s.name;
    EXPECT_NO_THROW(s.validate()) << s.name;
    EXPECT_FALSE(s.group.empty()) << s.name;
  }
  EXPECT_GE(reg.all().size(), 50u);
}

TEST(ScenarioRegistry, EveryBenchScenarioIsPresent) {
  const auto& reg = config::ScenarioRegistry::builtin();
  for (const char* name :
       {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "preempt-lowlat", "abl-shield-none", "abl-shield-full",
        "abl-kernel-vanilla", "abl-kernel-redhawk-shielded", "abl-bkl-locked",
        "abl-bkl-flagged", "abl-ht-duty0-sibling", "abl-ht-duty100-core",
        "abl-mlock-locked-idle", "abl-mlock-pageable-loaded",
        "cyclic-vanilla", "cyclic-redhawk-shielded", "freq-250", "freq-10000",
        "timer-gap-3ms-jiffy", "timer-gap-25ms-hires", "holdoff-vanilla",
        "holdoff-redhawk"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
}

TEST(ScenarioRegistry, AddRejectsDuplicates) {
  config::ScenarioRegistry reg;
  reg.add(spec_of("fig6"));
  EXPECT_THROW(reg.add(spec_of("fig6")), std::runtime_error);
}

TEST(WorkloadRegistry, NamesResolveAndUnknownsThrow) {
  EXPECT_TRUE(workload::registry_contains("stress-kernel"));
  EXPECT_TRUE(workload::registry_contains("sibling-hog"));
  EXPECT_FALSE(workload::registry_contains("fork-bomb"));
  EXPECT_THROW(
      workload::make_workload("fork-bomb", config::json::Value::object()),
      std::runtime_error);
  EXPECT_GE(workload::registry_names().size(), 14u);
}

TEST(ProbeRegistry, NamesResolveAndUnknownsThrow) {
  for (const char* name : {"determinism", "realfeel", "rcim", "cyclictest",
                           "timer-gap", "holdoff"}) {
    EXPECT_TRUE(rt::probe_contains(name)) << name;
  }
  EXPECT_FALSE(rt::probe_contains("lmbench"));
}

// ---- the runner -------------------------------------------------------------

TEST(ScenarioRunner, WholeRegistrySmokesInParallel) {
  // Every registry scenario must actually execute: tiny scale, parallel
  // batch, results in spec order with matching digests.
  const auto& specs = config::ScenarioRegistry::builtin().all();
  config::ScenarioRunner::Options ro;
  ro.scale = 0.002;
  config::ScenarioRunner runner(ro);
  const auto results = runner.run_batch(specs, 7);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].name, specs[i].name);
    EXPECT_EQ(results[i].digest, specs[i].digest());
    EXPECT_GT(results[i].events, 0u) << specs[i].name;
  }
}

TEST(ScenarioRunner, BatchSeedsAreOrderIndependent) {
  // Seeds derive from the scenario *name*, so a reordered batch reproduces
  // the same per-scenario numbers.
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache = false;
  config::ScenarioRunner runner(ro);
  const std::vector<config::ScenarioSpec> ab{spec_of("fig6"), spec_of("fig7")};
  const std::vector<config::ScenarioSpec> ba{spec_of("fig7"), spec_of("fig6")};
  const auto r1 = runner.run_batch(ab, 2003);
  const auto r2 = runner.run_batch(ba, 2003);
  EXPECT_EQ(r1[0].to_json().dump(), r2[1].to_json().dump());
  EXPECT_EQ(r1[1].to_json().dump(), r2[0].to_json().dump());
}

TEST(ScenarioRunner, MemoryCacheHitsAndIsExact) {
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  config::ScenarioRunner runner(ro);
  const auto spec = spec_of("fig6");
  const auto a = runner.run(spec, 11);
  EXPECT_FALSE(a.from_cache);
  const auto b = runner.run(spec, 11);
  EXPECT_TRUE(b.from_cache);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  // A different seed is a different key.
  EXPECT_FALSE(runner.run(spec, 12).from_cache);
}

TEST(ScenarioRunner, DiskCachePersistsAcrossRunners) {
  // Relative path: lands in the ctest working directory.
  const std::string dir = "scenario_cache_test";
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache_dir = dir;
  const auto spec = spec_of("fig7");
  std::string first;
  {
    config::ScenarioRunner runner(ro);
    first = runner.run(spec, 5).to_json().dump();
  }
  {
    config::ScenarioRunner runner(ro);  // fresh memory cache
    const auto r = runner.run(spec, 5);
    EXPECT_TRUE(r.from_cache);
    EXPECT_EQ(r.to_json().dump(), first);
  }
  std::remove((dir + "/" + spec.digest() + "-5-0.005.json").c_str());
}

TEST(ScenarioRunner, HooksBypassTheCache) {
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  config::ScenarioRunner runner(ro);
  const auto spec = spec_of("fig6");
  (void)runner.run(spec, 11);  // warm the cache
  int configured = 0;
  config::ScenarioRunner::Hooks hooks;
  hooks.configured = [&](config::Platform&) { ++configured; };
  const auto r = runner.run(spec, 11, hooks);
  EXPECT_FALSE(r.from_cache);
  EXPECT_EQ(configured, 1);
}

TEST(ScenarioRunner, ResultJsonRoundTripPreservesHistograms) {
  config::ScenarioRunner::Options ro;
  ro.scale = 0.01;
  config::ScenarioRunner runner(ro);
  const auto r = runner.run(spec_of("fig5"), 2003);
  const auto back = config::ScenarioResult::from_json(
      config::json::Value::parse(r.to_json().dump(2)));
  EXPECT_EQ(back.to_json().dump(), r.to_json().dump());
  EXPECT_EQ(back.probe.primary.count(), r.probe.primary.count());
  EXPECT_EQ(back.probe.primary.max(), r.probe.primary.max());
  EXPECT_EQ(back.probe.primary.percentile(0.999),
            r.probe.primary.percentile(0.999));
  EXPECT_EQ(back.probe.primary.mean(), r.probe.primary.mean());
}

TEST(ScenarioRunner, ExpandGridIsCartesianLastKeyFastest) {
  auto grid = config::json::Value::object();
  auto rates = config::json::Value::array();
  rates.push(512);
  rates.push(1024);
  auto samples = config::json::Value::array();
  samples.push(100);
  grid.set("rate_hz", std::move(rates));
  grid.set("samples", std::move(samples));
  const auto specs = config::expand_grid(spec_of("fig6"), grid);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "fig6/rate_hz=512/samples=100");
  EXPECT_EQ(specs[1].name, "fig6/rate_hz=1024/samples=100");
  EXPECT_EQ(specs[0].probe_params.find("rate_hz")->as_u64(), 512u);
  EXPECT_EQ(specs[1].probe_params.find("rate_hz")->as_u64(), 1024u);
  EXPECT_EQ(specs[0].probe_params.find("samples")->as_u64(), 100u);
}

TEST(ScenarioRunner, RunSeedsFansOut) {
  config::ScenarioRunner::Options ro;
  ro.scale = 0.002;
  config::ScenarioRunner runner(ro);
  const auto rs = runner.run_seeds(spec_of("fig6"), 2003, 3);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_NE(rs[0].seed, rs[1].seed);
  EXPECT_NE(rs[1].seed, rs[2].seed);
}

// ---- seed derivation --------------------------------------------------------

TEST(DeriveSeed, StableDistinctAndRootSensitive) {
  const auto a = sim::derive_seed(2003, "fig6");
  EXPECT_EQ(a, sim::derive_seed(2003, "fig6"));  // deterministic
  EXPECT_NE(a, sim::derive_seed(2003, "fig7"));  // label-sensitive
  EXPECT_NE(a, sim::derive_seed(2004, "fig6"));  // root-sensitive
  EXPECT_NE(sim::derive_seed(0, "a"), sim::derive_seed(0, "b"));
}

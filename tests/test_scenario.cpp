// The declarative scenario layer: spec JSON round-trips, validation,
// registry completeness, the parallel runner, result serialization, the
// (digest, seed, scale) cache and seed derivation.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <stdexcept>

#include "config/experiment.h"
#include "config/json.h"
#include "config/scenario.h"
#include "config/scenario_runner.h"
#include "rt/probe.h"
#include "sim/rng.h"
#include "workload/registry.h"

namespace {

config::ScenarioSpec spec_of(const char* name) {
  const auto* s = config::ScenarioRegistry::builtin().find(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

}  // namespace

// ---- spec serialization -----------------------------------------------------

TEST(ScenarioSpec, JsonRoundTripIsIdentityForEveryBuiltin) {
  for (const auto& spec : config::ScenarioRegistry::builtin().all()) {
    const auto dumped = spec.to_json().dump();
    const auto back =
        config::ScenarioSpec::from_json(config::json::Value::parse(dumped));
    EXPECT_EQ(back.to_json().dump(), dumped) << spec.name;
    EXPECT_EQ(back.digest(), spec.digest()) << spec.name;
  }
}

TEST(ScenarioSpec, DigestChangesWithContent) {
  auto a = spec_of("fig6");
  auto b = a;
  b.probe_params.set("samples", 12345);
  EXPECT_NE(a.digest(), b.digest());
  // Presentation-only fields are digest-neutral: retitling a spec must not
  // invalidate cached results whose simulated content is unchanged.
  auto c = a;
  c.title += " (edited)";
  c.description += " (edited)";
  c.group = "elsewhere";
  c.paper_ref = "reworded";
  EXPECT_EQ(a.digest(), c.digest());
  // `transient` only governs the runner's retry policy, never the
  // simulation a fixed (spec, seed) attempt performs.
  auto t = a;
  t.transient = !t.transient;
  EXPECT_EQ(a.digest(), t.digest());
}

TEST(ScenarioSpec, DigestCoversExactlyTheBehaviorAffectingFields) {
  // The cache-soundness contract, field by field: any mutation that can
  // change what a run produces must change the digest; any mutation that
  // cannot must leave it alone. A behavior field missing from the digest
  // means the cache serves stale results; a presentation field included
  // means retitling invalidates good ones.
  const auto base = spec_of("fig6");
  const auto mutated_digest = [&](auto&& mutate) {
    auto s = base;
    mutate(s);
    return s.digest();
  };

  using Spec = config::ScenarioSpec;
  // name appears in the serialized result, so it is (correctly) content.
  EXPECT_NE(base.digest(),
            mutated_digest([](Spec& s) { s.name += "-renamed"; }));
  EXPECT_NE(base.digest(),
            mutated_digest([](Spec& s) { s.machine = "dual-p4-1400"; }));
  EXPECT_NE(base.digest(),
            mutated_digest([](Spec& s) { s.kernel = "vanilla-2.4.20"; }));
  EXPECT_NE(base.digest(), mutated_digest([](Spec& s) {
              s.kernel_overrides.set("preempt_kernel", true);
            }));
  EXPECT_NE(base.digest(),
            mutated_digest([](Spec& s) { s.ht_override = false; }));
  EXPECT_NE(base.digest(),
            mutated_digest([](Spec& s) { s.workloads.pop_back(); }));
  EXPECT_NE(base.digest(),
            mutated_digest([](Spec& s) { s.probe = "cyclictest"; }));
  EXPECT_NE(base.digest(), mutated_digest([](Spec& s) {
              s.probe_params.set("samples", 999);
            }));
  EXPECT_NE(base.digest(),
            mutated_digest([](Spec& s) { s.shield = config::ShieldPlan{}; }));
  EXPECT_NE(base.digest(), mutated_digest([](Spec& s) {
              s.duration.fixed_ns = 123456789;
            }));
  EXPECT_NE(base.digest(), mutated_digest([](Spec& s) {
              fault::FaultSpec f;
              f.kind = fault::FaultKind::kIrqStorm;
              f.rate_hz = 100.0;
              s.faults.faults.push_back(f);
            }));
  EXPECT_NE(base.digest(), mutated_digest([](Spec& s) {
              s.telemetry.sampler = true;
            }));

  // Presentation and policy-only fields: digest-neutral.
  EXPECT_EQ(base.digest(),
            mutated_digest([](Spec& s) { s.title = "reworded"; }));
  EXPECT_EQ(base.digest(),
            mutated_digest([](Spec& s) { s.description = "reworded"; }));
  EXPECT_EQ(base.digest(), mutated_digest([](Spec& s) { s.group = "other"; }));
  EXPECT_EQ(base.digest(),
            mutated_digest([](Spec& s) { s.paper_ref = "reworded"; }));
  EXPECT_EQ(base.digest(),
            mutated_digest([](Spec& s) { s.transient = !s.transient; }));
}

TEST(ScenarioSpec, FromJsonRejectsUnknownKeys) {
  auto v = spec_of("fig6").to_json();
  v.set("not_a_field", 1);
  EXPECT_THROW(config::ScenarioSpec::from_json(v), std::runtime_error);
}

// ---- validation -------------------------------------------------------------

TEST(ScenarioSpec, ValidateRejectsUnknownWorkloadName) {
  auto s = spec_of("fig6");
  s.workloads.push_back(config::WorkloadRef{"no-such-workload",
                                            config::json::Value::object()});
  EXPECT_THROW(s.validate(), std::runtime_error);
}

TEST(ScenarioSpec, ValidateRejectsUnknownProbeName) {
  auto s = spec_of("fig6");
  s.probe = "no-such-probe";
  EXPECT_THROW(s.validate(), std::runtime_error);
}

TEST(ScenarioSpec, ValidateRejectsUnknownPresetsAndOverrides) {
  auto s = spec_of("fig6");
  s.machine = "quad-cray-1";
  EXPECT_THROW(s.validate(), std::runtime_error);

  s = spec_of("fig6");
  s.kernel = "hurd-0.9";
  EXPECT_THROW(s.validate(), std::runtime_error);

  s = spec_of("fig6");
  s.kernel_overrides.set("not_a_kernel_field", 1);
  EXPECT_THROW(s.validate(), std::runtime_error);
}

TEST(ScenarioSpec, ValidateRejectsBadWorkloadParams) {
  auto s = spec_of("fig6");
  auto params = config::json::Value::object();
  params.set("bogus_param", 3);
  s.workloads.push_back(config::WorkloadRef{"sibling-hog", params});
  EXPECT_THROW(s.validate(), std::runtime_error);
}

TEST(ScenarioSpec, DurationBoundProbesRequireFixedHorizon) {
  auto s = spec_of("timer-gap-10ms-jiffy");
  ASSERT_TRUE(rt::probe_duration_bound(s.probe));
  s.duration.fixed_ns = 0;
  EXPECT_THROW(s.validate(), std::runtime_error);
}

// ---- registries -------------------------------------------------------------

TEST(ScenarioRegistry, NamesAreUniqueAndSpecsValidate) {
  const auto& reg = config::ScenarioRegistry::builtin();
  std::set<std::string> seen;
  for (const auto& s : reg.all()) {
    EXPECT_TRUE(seen.insert(s.name).second) << "duplicate: " << s.name;
    EXPECT_NO_THROW(s.validate()) << s.name;
    EXPECT_FALSE(s.group.empty()) << s.name;
  }
  EXPECT_GE(reg.all().size(), 50u);
}

TEST(ScenarioRegistry, EveryBenchScenarioIsPresent) {
  const auto& reg = config::ScenarioRegistry::builtin();
  for (const char* name :
       {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "preempt-lowlat", "abl-shield-none", "abl-shield-full",
        "abl-kernel-vanilla", "abl-kernel-redhawk-shielded", "abl-bkl-locked",
        "abl-bkl-flagged", "abl-ht-duty0-sibling", "abl-ht-duty100-core",
        "abl-mlock-locked-idle", "abl-mlock-pageable-loaded",
        "cyclic-vanilla", "cyclic-redhawk-shielded", "freq-250", "freq-10000",
        "timer-gap-3ms-jiffy", "timer-gap-25ms-hires", "holdoff-vanilla",
        "holdoff-redhawk"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
}

TEST(ScenarioRegistry, AddRejectsDuplicates) {
  config::ScenarioRegistry reg;
  reg.add(spec_of("fig6"));
  EXPECT_THROW(reg.add(spec_of("fig6")), std::runtime_error);
}

TEST(WorkloadRegistry, NamesResolveAndUnknownsThrow) {
  EXPECT_TRUE(workload::registry_contains("stress-kernel"));
  EXPECT_TRUE(workload::registry_contains("sibling-hog"));
  EXPECT_FALSE(workload::registry_contains("fork-bomb"));
  EXPECT_THROW(
      workload::make_workload("fork-bomb", config::json::Value::object()),
      std::runtime_error);
  EXPECT_GE(workload::registry_names().size(), 14u);
}

TEST(ProbeRegistry, NamesResolveAndUnknownsThrow) {
  for (const char* name : {"determinism", "realfeel", "rcim", "cyclictest",
                           "timer-gap", "holdoff"}) {
    EXPECT_TRUE(rt::probe_contains(name)) << name;
  }
  EXPECT_FALSE(rt::probe_contains("lmbench"));
}

// ---- the runner -------------------------------------------------------------

TEST(ScenarioRunner, WholeRegistrySmokesInParallel) {
  // Every registry scenario must actually execute: tiny scale, parallel
  // batch, results in spec order with matching digests.
  const auto& specs = config::ScenarioRegistry::builtin().all();
  config::ScenarioRunner::Options ro;
  ro.scale = 0.002;
  config::ScenarioRunner runner(ro);
  const auto results = runner.run_batch(specs, 7);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].name, specs[i].name);
    EXPECT_EQ(results[i].digest, specs[i].digest());
    EXPECT_GT(results[i].events, 0u) << specs[i].name;
  }
}

TEST(ScenarioRunner, BatchSeedsAreOrderIndependent) {
  // Seeds derive from the scenario *name*, so a reordered batch reproduces
  // the same per-scenario numbers.
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache = false;
  config::ScenarioRunner runner(ro);
  const std::vector<config::ScenarioSpec> ab{spec_of("fig6"), spec_of("fig7")};
  const std::vector<config::ScenarioSpec> ba{spec_of("fig7"), spec_of("fig6")};
  const auto r1 = runner.run_batch(ab, 2003);
  const auto r2 = runner.run_batch(ba, 2003);
  EXPECT_EQ(r1[0].to_json().dump(), r2[1].to_json().dump());
  EXPECT_EQ(r1[1].to_json().dump(), r2[0].to_json().dump());
}

TEST(ScenarioRunner, MemoryCacheHitsAndIsExact) {
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  config::ScenarioRunner runner(ro);
  const auto spec = spec_of("fig6");
  const auto a = runner.run(spec, 11);
  EXPECT_FALSE(a.from_cache);
  const auto b = runner.run(spec, 11);
  EXPECT_TRUE(b.from_cache);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  // A different seed is a different key.
  EXPECT_FALSE(runner.run(spec, 12).from_cache);
}

TEST(ScenarioRunner, DiskCachePersistsAcrossRunners) {
  // Relative path: lands in the ctest working directory.
  const std::string dir = "scenario_cache_test";
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache_dir = dir;
  const auto spec = spec_of("fig7");
  std::string first;
  {
    config::ScenarioRunner runner(ro);
    first = runner.run(spec, 5).to_json().dump();
  }
  {
    config::ScenarioRunner runner(ro);  // fresh memory cache
    const auto r = runner.run(spec, 5);
    EXPECT_TRUE(r.from_cache);
    EXPECT_EQ(r.to_json().dump(), first);
  }
  std::remove((dir + "/" + spec.digest() + "-5-0.005-es1.json").c_str());
}

TEST(ScenarioRunner, SampleBoundRunsStopOnceTheProbeBanksItsBudget) {
  // DurationPolicy pads a sample-bound probe's nominal duration with
  // factor + margin slack so abnormal runs still finish; the probe itself
  // freezes and exits the moment its budget lands. The runner therefore
  // treats the horizon as an upper bound: the run stops at the first
  // done-check boundary past completion instead of simulating the slack.
  const auto spec = spec_of("abl-shield-full");
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache = false;
  config::ScenarioRunner early(ro);
  auto fo = ro;
  fo.full_horizon = true;
  config::ScenarioRunner full(fo);

  const auto a = early.run(spec, 2003);
  const auto b = full.run(spec, 2003);
  // The probe banked its full budget and its figures are identical to the
  // full-horizon run's — the slack contributed nothing...
  EXPECT_TRUE(a.probe.complete);
  EXPECT_EQ(a.probe.collected, a.probe.expected);
  EXPECT_EQ(a.to_json().find("probe")->dump(),
            b.to_json().find("probe")->dump());
  // ...but the early-stopped run simulated strictly less of it.
  EXPECT_LT(a.duration_ns, b.duration_ns);
  EXPECT_LT(a.events, b.events);

  // The stop time derives from the probe's nominal duration, not the
  // horizon, so duration-policy slack cannot shift it: padding the margin
  // changes the digest but not one simulated byte of the run.
  auto padded = spec;
  padded.duration.margin_ns *= 3;
  const auto c = early.run(padded, 2003);
  EXPECT_EQ(c.events, a.events);
  EXPECT_EQ(c.duration_ns, a.duration_ns);
  EXPECT_EQ(c.to_json().find("probe")->dump(),
            a.to_json().find("probe")->dump());
}

TEST(ScenarioRunner, FixedDurationRunsAlwaysCoverTheFullSpan) {
  // Duration-bound specs (timeline probes, cyclictest figures) keep their
  // exact pre-early-stop behavior: the scaled fixed horizon is simulated
  // in full, and full_horizon mode is byte-identical to the default.
  const auto spec = spec_of("timer-gap-10ms-jiffy");
  ASSERT_GT(spec.duration.fixed_ns, 0);
  config::ScenarioRunner::Options ro;
  ro.scale = 0.01;
  ro.cache = false;
  config::ScenarioRunner early(ro);
  auto fo = ro;
  fo.full_horizon = true;
  config::ScenarioRunner full(fo);

  const auto a = early.run(spec, 2003);
  const auto b = full.run(spec, 2003);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.duration_ns,
            static_cast<std::uint64_t>(
                static_cast<double>(spec.duration.fixed_ns) * ro.scale));
}

TEST(ScenarioRunner, HooksBypassTheCache) {
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  config::ScenarioRunner runner(ro);
  const auto spec = spec_of("fig6");
  (void)runner.run(spec, 11);  // warm the cache
  int configured = 0;
  config::ScenarioRunner::Hooks hooks;
  hooks.configured = [&](config::Platform&) { ++configured; };
  const auto r = runner.run(spec, 11, hooks);
  EXPECT_FALSE(r.from_cache);
  EXPECT_EQ(configured, 1);
}

TEST(ScenarioRunner, ResultJsonRoundTripPreservesHistograms) {
  config::ScenarioRunner::Options ro;
  ro.scale = 0.01;
  config::ScenarioRunner runner(ro);
  const auto r = runner.run(spec_of("fig5"), 2003);
  const auto back = config::ScenarioResult::from_json(
      config::json::Value::parse(r.to_json().dump(2)));
  EXPECT_EQ(back.to_json().dump(), r.to_json().dump());
  EXPECT_EQ(back.probe.primary.count(), r.probe.primary.count());
  EXPECT_EQ(back.probe.primary.max(), r.probe.primary.max());
  EXPECT_EQ(back.probe.primary.percentile(0.999),
            r.probe.primary.percentile(0.999));
  EXPECT_EQ(back.probe.primary.mean(), r.probe.primary.mean());
}

TEST(ScenarioRunner, ExpandGridIsCartesianLastKeyFastest) {
  auto grid = config::json::Value::object();
  auto rates = config::json::Value::array();
  rates.push(512);
  rates.push(1024);
  auto samples = config::json::Value::array();
  samples.push(100);
  grid.set("rate_hz", std::move(rates));
  grid.set("samples", std::move(samples));
  const auto specs = config::expand_grid(spec_of("fig6"), grid);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "fig6/rate_hz=512/samples=100");
  EXPECT_EQ(specs[1].name, "fig6/rate_hz=1024/samples=100");
  EXPECT_EQ(specs[0].probe_params.find("rate_hz")->as_u64(), 512u);
  EXPECT_EQ(specs[1].probe_params.find("rate_hz")->as_u64(), 1024u);
  EXPECT_EQ(specs[0].probe_params.find("samples")->as_u64(), 100u);
}

TEST(ScenarioRunner, RunSeedsFansOut) {
  config::ScenarioRunner::Options ro;
  ro.scale = 0.002;
  config::ScenarioRunner runner(ro);
  const auto rs = runner.run_seeds(spec_of("fig6"), 2003, 3);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_NE(rs[0].seed, rs[1].seed);
  EXPECT_NE(rs[1].seed, rs[2].seed);
}

// ---- kernel-override key validation -----------------------------------------

TEST(ScenarioSpec, OverrideTypoIsRejectedAtParseTimeWithSuggestion) {
  auto v = spec_of("fig6").to_json();
  auto overrides = config::json::Value::object();
  overrides.set("fault_mean_interval_nss", 123);  // note the typo
  v.set("kernel_overrides", std::move(overrides));
  try {
    (void)config::ScenarioSpec::from_json(v);
    FAIL() << "expected the typo to be rejected";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fault_mean_interval_nss"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'fault_mean_interval_ns'"),
              std::string::npos)
        << msg;
  }
}

TEST(ScenarioSpec, EveryAdvertisedOverrideKeyParses) {
  // kernel_override_keys() is the contract surface: each listed key must be
  // accepted by from_json's parse-time check.
  const auto keys = config::kernel_override_keys();
  EXPECT_GE(keys.size(), 30u);
  for (const auto& key : keys) {
    auto v = spec_of("fig6").to_json();
    auto overrides = config::json::Value::object();
    overrides.set(key, 1);
    v.set("kernel_overrides", std::move(overrides));
    EXPECT_NO_THROW((void)config::ScenarioSpec::from_json(v)) << key;
  }
}

// ---- hardened execution -----------------------------------------------------

TEST(ScenarioRunner, ProbeFailureIsAStructuredOutcomeNotAnAbort) {
  auto s = spec_of("fig6");
  s.probe = "no-such-probe";
  config::ScenarioRunner runner;
  const auto out = runner.run_outcome(s, 1);
  EXPECT_EQ(out.status, config::RunStatus::kFailed);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_FALSE(out.ok());
  EXPECT_FALSE(out.result.has_value());
  EXPECT_NE(out.error.find("probe"), std::string::npos) << out.error;
}

TEST(ScenarioRunner, ZeroHorizonIsAStructuredError) {
  auto s = spec_of("fig6");
  s.duration.fixed_ns = 100;  // scaled to zero below
  config::ScenarioRunner::Options ro;
  ro.scale = 0.001;
  config::ScenarioRunner runner(ro);
  try {
    (void)runner.run(s, 1);
    FAIL() << "expected a zero-horizon error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("horizon is zero"),
              std::string::npos)
        << e.what();
  }
  const auto out = runner.run_outcome(s, 1);
  EXPECT_EQ(out.status, config::RunStatus::kFailed);
}

TEST(ScenarioRunner, EventWatchdogTimesOutAsTimedOut) {
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.max_events = 100;  // far below any real run
  config::ScenarioRunner runner(ro);
  EXPECT_THROW((void)runner.run(spec_of("fig6"), 1), config::ScenarioTimeout);
  const auto out = runner.run_outcome(spec_of("fig6"), 1);
  EXPECT_EQ(out.status, config::RunStatus::kTimedOut);
  EXPECT_EQ(out.attempts, 1);  // not transient: no retry
}

TEST(ScenarioRunner, TransientSpecRetriesWithDerivedSeedAndCanRecover) {
  // Deterministic "flaky" setup: pre-warm the shared disk cache with the
  // result the retry seed will ask for, then run under a watchdog so tight
  // that any fresh simulation times out. Attempt 1 (fresh) times out;
  // attempt 2 hits the cache and succeeds -> kRetried.
  const std::string dir = "scenario_cache_retry_test";
  auto s = spec_of("fig6");
  s.transient = true;
  const std::uint64_t seed = 77;
  const auto retry_seed =
      sim::derive_seed(seed, sim::SeedDomain::kRetry, "retry#1");
  config::ScenarioRunner::Options warm;
  warm.scale = 0.005;
  warm.cache_dir = dir;
  {
    config::ScenarioRunner warmer(warm);
    (void)warmer.run(s, retry_seed);
  }
  auto ro = warm;
  ro.max_events = 100;
  config::ScenarioRunner runner(ro);
  const auto out = runner.run_outcome(s, seed);
  EXPECT_EQ(out.status, config::RunStatus::kRetried);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_TRUE(out.ok());
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(out.result->seed, retry_seed);
  std::remove(
      (dir + "/" + s.digest() + "-" + std::to_string(retry_seed) + "-0.005.json")
          .c_str());
}

TEST(ScenarioRunner, ForkedChildTimeoutAttachesItsOwnFlightRecording) {
  // Two children of the same warmed prefix: one with fault injection that
  // completes, then one without faults that trips the event watchdog. The
  // timeout's post-mortem dump must be the second child's own recording —
  // if the prefix entry leaked the first child's ring across the restore,
  // fault-arm/fault-fire events would surface in a run that has no faults.
  config::ScenarioRunner::Options opt;
  opt.scale = 0.005;
  opt.cache = false;
  opt.prefix_reuse = true;
  opt.max_events = 1'000'000;  // ~600k for the faulted child: comfortable
  config::ScenarioRunner runner(opt);

  const auto faulted = spec_of("faults-storm-shielded");
  auto doomed = spec_of("abl-shield-full");  // same (machine,kernel,workloads)
  doomed.probe_params.set("samples", 16'000'000);  // far past the watchdog

  const auto first = runner.run_outcome(faulted, 5);
  EXPECT_TRUE(first.ok()) << first.error;

  const auto second = runner.run_outcome(doomed, 5);
  EXPECT_EQ(second.status, config::RunStatus::kTimedOut);
  EXPECT_EQ(runner.prefix_stats().hits, 1u);  // it really shared the prefix

  const auto& flight = second.flight_recording;
  ASSERT_FALSE(flight.is_null());
  EXPECT_GT(flight.find("recorded")->as_u64(), 0u);
  const auto* events = flight.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->items().size(), 0u);
  for (const auto& ev : events->items()) {
    const auto& kind = ev.find("kind")->as_string();
    EXPECT_NE(kind.substr(0, 6), "fault-")
        << "sibling's fault event leaked into the forked child's dump";
  }
}

TEST(ScenarioRunner, BatchReportRecordsEveryOutcome) {
  auto bad = spec_of("fig7");
  bad.name = "fig7-broken";
  bad.probe = "no-such-probe";
  const std::vector<config::ScenarioSpec> specs{spec_of("fig6"), bad};
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  config::ScenarioRunner runner(ro);
  const auto report = runner.run_batch_report(specs, 2003);
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.count(config::RunStatus::kOk), 1u);
  EXPECT_EQ(report.count(config::RunStatus::kFailed), 1u);
  EXPECT_EQ(report.outcomes[0].name, "fig6");
  EXPECT_TRUE(report.outcomes[0].ok());
  EXPECT_EQ(report.outcomes[1].name, "fig7-broken");
  EXPECT_FALSE(report.outcomes[1].error.empty());

  const auto v = report.to_json();
  EXPECT_EQ(v.find("schema")->as_string(), "degraded-run-report-v1");
  EXPECT_EQ(v.find("total")->as_u64(), 2u);
  EXPECT_EQ(v.find("ok")->as_u64(), 1u);
  EXPECT_EQ(v.find("failed")->as_u64(), 1u);
  EXPECT_EQ(v.find("outcomes")->items().size(), 2u);
}

// ---- cache integrity --------------------------------------------------------

namespace {

std::string cache_file_path(const std::string& dir,
                            const config::ScenarioSpec& spec,
                            std::uint64_t seed, const char* scale) {
  // Mirrors ScenarioRunner::cache_key for an unforked run under the
  // early-stop horizon semantics (the "-es1" marker).
  return dir + "/" + spec.digest() + "-" + std::to_string(seed) + "-" + scale +
         "-es1.json";
}

}  // namespace

TEST(ScenarioRunner, TruncatedCacheEntryIsQuarantinedAndRecomputed) {
  const std::string dir = "scenario_cache_corrupt_test";
  const auto spec = spec_of("fig7");
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache_dir = dir;
  std::string fresh;
  {
    config::ScenarioRunner runner(ro);
    fresh = runner.run(spec, 5).to_json().dump();
  }
  const auto path = cache_file_path(dir, spec, 5, "0.005");
  {  // truncate the entry mid-payload, as a crashed writer would
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"format\":\"shieldsim-cache-v1\",\"checksum\":\"dead", f);
    std::fclose(f);
  }
  {
    config::ScenarioRunner runner(ro);  // fresh memory cache
    const auto r = runner.run(spec, 5);
    EXPECT_FALSE(r.from_cache);  // corrupt data was never trusted
    EXPECT_EQ(r.to_json().dump(), fresh);
    EXPECT_EQ(runner.cache_entries_recomputed(), 1u);
    // The bad bytes were quarantined for post-mortem, and a good entry
    // took their place.
    std::FILE* q = std::fopen((path + ".quarantined").c_str(), "r");
    EXPECT_NE(q, nullptr);
    if (q != nullptr) std::fclose(q);
    const auto again = runner.run(spec, 5);
    EXPECT_TRUE(again.from_cache);
  }
  {
    config::ScenarioRunner runner(ro);  // and it persists for later runners
    EXPECT_TRUE(runner.run(spec, 5).from_cache);
    EXPECT_EQ(runner.cache_entries_recomputed(), 0u);
  }
  std::remove(path.c_str());
  std::remove((path + ".quarantined").c_str());
}

TEST(ScenarioRunner, ChecksumMismatchIsQuarantinedAndRecomputed) {
  const std::string dir = "scenario_cache_bitrot_test";
  const auto spec = spec_of("fig7");
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache_dir = dir;
  {
    config::ScenarioRunner runner(ro);
    (void)runner.run(spec, 6);
  }
  const auto path = cache_file_path(dir, spec, 6, "0.005");
  {  // flip the checksum: valid JSON, wrong integrity
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string content;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
    std::fclose(f);
    const auto pos = content.find("\"checksum\"");
    ASSERT_NE(pos, std::string::npos);
    content[content.find(':', pos) + 3] ^= 1;  // corrupt one digest char
    f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
  }
  {
    config::ScenarioRunner runner(ro);
    const auto r = runner.run(spec, 6);
    EXPECT_FALSE(r.from_cache);
    EXPECT_EQ(runner.cache_entries_recomputed(), 1u);
  }
  std::remove(path.c_str());
  std::remove((path + ".quarantined").c_str());
}

TEST(ScenarioRunner, NestedCacheDirIsCreatedRecursively) {
  const std::string dir = "scenario_cache_nest_test/a/b";
  const auto spec = spec_of("fig7");
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache_dir = dir;
  {
    config::ScenarioRunner runner(ro);
    (void)runner.run(spec, 7);
  }
  const auto path = cache_file_path(dir, spec, 7, "0.005");
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  if (f != nullptr) std::fclose(f);
  std::remove(path.c_str());
  std::remove("scenario_cache_nest_test/a/b");
  std::remove("scenario_cache_nest_test/a");
  std::remove("scenario_cache_nest_test");
}

TEST(ScenarioRunner, UnusableCacheDirFallsBackToMemory) {
  // A cache_dir that collides with an existing *file* cannot be created;
  // the runner must warn and run memory-only, not crash.
  const std::string file = "scenario_cache_collision_test";
  {
    std::FILE* f = std::fopen(file.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a directory\n", f);
    std::fclose(f);
  }
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache_dir = file;
  config::ScenarioRunner runner(ro);
  const auto a = runner.run(spec_of("fig7"), 8);
  EXPECT_FALSE(a.from_cache);
  EXPECT_TRUE(runner.run(spec_of("fig7"), 8).from_cache);  // memory cache
  std::remove(file.c_str());
}

// ---- seed derivation --------------------------------------------------------

TEST(DeriveSeed, StableDistinctAndRootSensitive) {
  const auto a = sim::derive_seed(2003, "fig6");
  EXPECT_EQ(a, sim::derive_seed(2003, "fig6"));  // deterministic
  EXPECT_NE(a, sim::derive_seed(2003, "fig7"));  // label-sensitive
  EXPECT_NE(a, sim::derive_seed(2004, "fig6"));  // root-sensitive
  EXPECT_NE(sim::derive_seed(0, "a"), sim::derive_seed(0, "b"));
}

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

using namespace sim::literals;
using sim::Engine;

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
}

TEST(Engine, ScheduleAdvancesClockToEvent) {
  Engine e;
  sim::Time seen = 0;
  e.schedule(100_ns, [&] { seen = e.now(); });
  e.run_until(1_us);
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(e.now(), 1000u);  // clock lands on the deadline
}

TEST(Engine, RunUntilIncludesEventsAtDeadline) {
  Engine e;
  bool fired = false;
  e.schedule(1_us, [&] { fired = true; });
  e.run_until(1_us);
  EXPECT_TRUE(fired);
}

TEST(Engine, EventsBeyondDeadlineDoNotFire) {
  Engine e;
  bool fired = false;
  e.schedule(2_us, [&] { fired = true; });
  e.run_until(1_us);
  EXPECT_FALSE(fired);
  e.run_until(3_us);
  EXPECT_TRUE(fired);
}

TEST(Engine, NestedSchedulingWorks) {
  Engine e;
  std::vector<sim::Time> times;
  e.schedule(10_ns, [&] {
    times.push_back(e.now());
    e.schedule(10_ns, [&] { times.push_back(e.now()); });
  });
  e.run_until(1_us);
  EXPECT_EQ(times, (std::vector<sim::Time>{10, 20}));
}

TEST(Engine, CancelPreventsCallback) {
  Engine e;
  bool fired = false;
  const auto id = e.schedule(10_ns, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run_until(1_us);
  EXPECT_FALSE(fired);
}

TEST(Engine, StepRunsOneEvent) {
  Engine e;
  int count = 0;
  e.schedule(1_ns, [&] { ++count; });
  e.schedule(2_ns, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsExecutedCounts) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule(static_cast<sim::Duration>(i + 1), [] {});
  e.run_to_completion();
  EXPECT_EQ(e.events_executed(), 5u);
}

TEST(Engine, ClockFrozenDuringCallback) {
  Engine e;
  e.schedule(10_ns, [&] {
    const sim::Time t0 = e.now();
    e.schedule(100_ns, [] {});
    EXPECT_EQ(e.now(), t0);  // scheduling does not advance time
  });
  e.run_until(1_us);
}

TEST(Engine, SeedControlsRng) {
  Engine a(5), b(5), c(6);
  EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  Engine a2(5);
  EXPECT_NE(a2.rng().next_u64(), c.rng().next_u64());
}

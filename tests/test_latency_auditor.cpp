// The preempt-off/irq-off latency auditor.
#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

TEST(LatencyAuditor, UnitTransitions) {
  kernel::LatencyAuditor a(2);
  a.irqs_masked(0, 100);
  a.irqs_unmasked(0, 350);
  EXPECT_EQ(a.irq_off(0).count(), 1u);
  EXPECT_EQ(a.irq_off(0).max(), 250u);
  EXPECT_EQ(a.irq_off(1).count(), 0u);
  EXPECT_EQ(a.worst_irq_off(), 250u);

  a.preempt_disabled(1, 1000);
  a.preempt_enabled(1, 6000);
  EXPECT_EQ(a.worst_preempt_off(), 5000u);
}

TEST(LatencyAuditor, SchedLatencySplitsRtFromOther) {
  kernel::LatencyAuditor a(1);
  a.task_scheduled_in(0, 10'000, /*rt=*/true);
  a.task_scheduled_in(0, 50'000, /*rt=*/false);
  EXPECT_EQ(a.rt_sched_latency().count(), 1u);
  EXPECT_EQ(a.sched_latency().count(), 2u);
  EXPECT_EQ(a.rt_sched_latency().max(), 10'000u);
  EXPECT_EQ(a.sched_latency().max(), 50'000u);
}

TEST(LatencyAuditor, KernelRecordsIrqOffForHandlers) {
  auto p = vanilla_rig(181);
  p->rtc_device().set_rate_hz(64);
  p->boot();
  p->rtc_device().start_periodic();
  p->run_for(1_s);
  // Local timer ticks + RTC handlers all masked interrupts.
  EXPECT_GT(p->kernel().auditor().irq_off(0).count(), 50u);
  // Handler stretches are microseconds, not milliseconds.
  EXPECT_LT(p->kernel().auditor().irq_off(0).percentile(0.5), 50_us);
}

TEST(LatencyAuditor, PreemptOffTracksSectionLengths) {
  auto p = vanilla_rig(182);
  kernel::ProgramBuilder b;
  b.section(kernel::LockId::kFs, 2_ms);
  spawn_scripted(p->kernel(), {.name = "holder"},
                 {kernel::SyscallAction{"hold", std::move(b).build()}});
  p->boot();
  p->run_for(1_s);
  // The 2 ms section shows up as the worst preempt-off interval.
  EXPECT_GE(p->kernel().auditor().worst_preempt_off(), 2_ms);
  EXPECT_LT(p->kernel().auditor().worst_preempt_off(), 4_ms);
}

TEST(LatencyAuditor, IrqSafeLockCountsAsIrqOff) {
  auto p = vanilla_rig(183);
  kernel::ProgramBuilder b;
  b.lock(kernel::LockId::kIoRequest).work(1500_us, 0.3).unlock(kernel::LockId::kIoRequest);
  spawn_scripted(p->kernel(), {.name = "holder"},
                 {kernel::SyscallAction{"hold", std::move(b).build()}});
  p->boot();
  p->run_for(1_s);
  EXPECT_GE(p->kernel().auditor().worst_irq_off(), 1500_us);
}

TEST(LatencyAuditor, RtSchedLatencyRecordedOnWakeup) {
  auto p = redhawk_rig(184);
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("w");
  kernel::Kernel::TaskParams tp;
  tp.name = "rt";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 90;
  spawn_scripted(k, std::move(tp),
                 {kernel::SyscallAction{
                     "wait", kernel::ProgramBuilder{}.block(wq).build()}});
  p->boot();
  p->engine().schedule(50_ms, [&] { k.wake_up_one(wq); });
  p->run_for(1_s);
  EXPECT_GE(k.auditor().rt_sched_latency().count(), 1u);
  // Idle CPU: the wake→run latency is the pick+switch cost, microseconds.
  EXPECT_LT(k.auditor().rt_sched_latency().max(), 50_us);
}

TEST(LatencyAuditor, LowLatencyKernelHasShorterPreemptOffTail) {
  const auto worst_for = [](const config::KernelConfig& cfg,
                            std::uint64_t seed) {
    config::Platform p(config::MachineConfig::dual_p3_xeon_933(), cfg, seed);
    spawn_syscall_loop(p.kernel(), "fsloop", [](kernel::Kernel& kk) {
      return kernel::sys::fs_op(kk, 100_us);
    });
    p.boot();
    p.run_for(5_s);
    return p.kernel().auditor().worst_preempt_off();
  };
  const auto vanilla =
      worst_for(config::KernelConfig::vanilla_2_4_20(), 185);
  const auto redhawk = worst_for(config::KernelConfig::redhawk_1_4(), 185);
  EXPECT_GT(vanilla, redhawk * 2);  // the low-latency patches' entire point
}

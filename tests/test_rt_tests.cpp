// The RT measurement applications themselves.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "rt/determinism_test.h"
#include "rt/rcim_test.h"
#include "rt/realfeel_test.h"

using namespace testutil;
using namespace sim::literals;

TEST(DeterminismTest, UnloadedLoopIsNearIdeal) {
  auto p = redhawk_rig(111);
  rt::DeterminismTest::Params dp;
  dp.loop_work = 100_ms;
  dp.iterations = 10;
  dp.affinity = hw::CpuMask::single(1);
  rt::DeterminismTest test(p->kernel(), dp);
  p->boot();
  p->shield().shield_all(hw::CpuMask::single(1));
  p->run_for(5_s);
  ASSERT_TRUE(test.done());
  EXPECT_EQ(test.samples().size(), 10u);
  // Shielded + unloaded: every sample within 1% of ideal.
  for (const auto s : test.samples()) {
    EXPECT_GE(s, dp.loop_work);
    EXPECT_LT(s, dp.loop_work + dp.loop_work / 100);
  }
}

TEST(DeterminismTest, ExcessHistogramMatchesSamples) {
  auto p = redhawk_rig(112);
  rt::DeterminismTest::Params dp;
  dp.loop_work = 50_ms;
  dp.iterations = 5;
  rt::DeterminismTest test(p->kernel(), dp);
  p->boot();
  p->run_for(2_s);
  ASSERT_TRUE(test.done());
  const auto h = test.excess_histogram();
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.max(), test.max_observed() - test.ideal());
}

TEST(DeterminismTest, TaskIsFifoAndLocked) {
  auto p = vanilla_rig(113);
  rt::DeterminismTest test(p->kernel(), {});
  EXPECT_EQ(test.task().policy, kernel::SchedPolicy::kFifo);
  EXPECT_TRUE(test.task().mlocked);
}

TEST(RealfeelTest, CollectsRequestedSamples) {
  auto p = vanilla_rig(114);
  rt::RealfeelTest::Params rp;
  rp.rate_hz = 2048;
  rp.samples = 1000;
  rt::RealfeelTest test(p->kernel(), p->rtc_driver(), rp);
  p->boot();
  test.start();
  p->run_for(2_s);
  EXPECT_TRUE(test.done());
  EXPECT_EQ(test.latencies().count(), 1000u);
  EXPECT_EQ(test.wake_latencies().count(), 1000u);
}

TEST(RealfeelTest, IdleSystemLatencyIsMicroseconds) {
  auto p = redhawk_rig(115);
  rt::RealfeelTest::Params rp;
  rp.samples = 2000;
  rp.affinity = hw::CpuMask::single(1);
  rt::RealfeelTest test(p->kernel(), p->rtc_driver(), rp);
  p->boot();
  p->shield().dedicate_cpu(1, test.task(), p->rtc_device().irq());
  test.start();
  p->run_for(5_s);
  ASSERT_TRUE(test.done());
  // Gap-based latency on an idle shielded CPU: negligible.
  EXPECT_LT(test.latencies().max(), 50_us);
  // Absolute wake latency: handler + switch, some tens of microseconds.
  EXPECT_GT(test.wake_latencies().min(), 3_us);
  EXPECT_LT(test.wake_latencies().max(), 60_us);
}

TEST(RealfeelTest, LateReaderSkipsInterrupts) {
  // If the reader is delayed past a whole period, the gap latency reflects
  // the missed periods (realfeel's behaviour on the 92 ms outliers).
  auto p = vanilla_rig(116);
  auto& k = p->kernel();
  rt::RealfeelTest::Params rp;
  rp.rate_hz = 2048;
  rp.samples = 3000;
  rp.affinity = hw::CpuMask::single(0);
  rt::RealfeelTest test(k, p->rtc_driver(), rp);
  // A higher-priority FIFO hog periodically freezes the reader's CPU.
  kernel::Kernel::TaskParams tp;
  tp.name = "freezer";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 99;  // above realfeel's 95
  tp.affinity = hw::CpuMask::single(0);
  workload::spawn(k, std::move(tp),
                  [](kernel::Kernel&, kernel::Task&) -> kernel::Action {
                    static int n = 0;
                    if (++n % 2 == 1) return kernel::SleepAction{200_ms};
                    return kernel::ComputeAction{5_ms, 0.2};
                  });
  p->boot();
  test.start();
  p->run_for(10_s);
  ASSERT_TRUE(test.done());
  // The 5 ms freezes appear as multi-period gap latencies.
  EXPECT_GT(test.latencies().max(), 3_ms);
}

TEST(RcimTest, MeasurementAgreesWithGroundTruth) {
  auto p = redhawk_rig(117);
  rt::RcimTest::Params rp;
  rp.samples = 2000;
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest test(p->kernel(), p->rcim_driver(), rp);
  p->boot();
  p->shield().dedicate_cpu(1, test.task(), p->rcim_device().irq());
  test.start();
  p->run_for(5_s);
  ASSERT_TRUE(test.done());
  EXPECT_EQ(test.overruns(), 0u);
  // The register-based measurement and the simulator's ground truth agree
  // to within one RCIM tick (400 ns).
  EXPECT_NEAR(static_cast<double>(test.latencies().mean()),
              static_cast<double>(test.true_latencies().mean()), 400.0);
}

TEST(RcimTest, ShieldedLatencyIsTensOfMicroseconds) {
  auto p = redhawk_rig(118);
  rt::RcimTest::Params rp;
  rp.samples = 5000;
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest test(p->kernel(), p->rcim_driver(), rp);
  p->boot();
  p->shield().dedicate_cpu(1, test.task(), p->rcim_device().irq());
  test.start();
  p->run_for(10_s);
  ASSERT_TRUE(test.done());
  EXPECT_GT(test.latencies().min(), 3_us);
  EXPECT_LT(test.latencies().max(), 60_us);
}

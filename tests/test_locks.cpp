// Spinlock semantics: cross-CPU contention, FIFO grants, interrupt-safe
// masking, the BKL's sleep-drop behaviour, and the §6.2 bottom-half
// perforation of hold times.
#include <gtest/gtest.h>

#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

TEST(Locks, UncontendedAcquireIsImmediate) {
  auto p = vanilla_rig();
  std::vector<sim::Time> marks;
  kernel::ProgramBuilder b;
  b.section(kernel::LockId::kFs, 5_us);
  spawn_scripted(p->kernel(), {.name = "t"},
                 {kernel::SyscallAction{"s", std::move(b).build()}}, &marks);
  p->boot();
  p->run_for(100_ms);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_LT(marks[1] - marks[0], 50_us);
  EXPECT_EQ(p->kernel().lock(kernel::LockId::kFs).acquisitions(), 1u);
  EXPECT_EQ(p->kernel().lock(kernel::LockId::kFs).contentions(), 0u);
}

TEST(Locks, ContendedSpinnerWaitsForHolder) {
  auto p = vanilla_rig();
  auto& k = p->kernel();
  // Holder on CPU 0 grabs the lock for 5 ms.
  kernel::ProgramBuilder hold;
  hold.section(kernel::LockId::kFs, 5_ms);
  std::vector<sim::Time> hmarks;
  spawn_scripted(k, {.name = "holder", .affinity = hw::CpuMask::single(0)},
                 {kernel::SyscallAction{"hold", std::move(hold).build()}},
                 &hmarks);
  // Spinner on CPU 1 starts 1 ms later and wants the same lock.
  std::vector<sim::Time> smarks;
  kernel::ProgramBuilder spin;
  spin.section(kernel::LockId::kFs, 1_us);
  spawn_scripted(k, {.name = "spinner", .affinity = hw::CpuMask::single(1)},
                 {kernel::SleepAction{1_ms},  // rounds to 10ms... see below
                  kernel::SyscallAction{"take", std::move(spin).build()}},
                 &smarks);
  p->boot();
  p->run_for(200_ms);
  ASSERT_EQ(smarks.size(), 3u);
  // Sleep rounded to 10 ms (vanilla): the holder (0..~5 ms) has already
  // released, so no contention this time. Re-run the scenario with a
  // longer hold to force overlap:
  EXPECT_EQ(k.lock(kernel::LockId::kFs).acquisitions(), 2u);
}

TEST(Locks, SpinnerBlocksUntilRelease) {
  auto p = vanilla_rig();
  auto& k = p->kernel();
  kernel::ProgramBuilder hold;
  hold.section(kernel::LockId::kFs, 30_ms);
  std::vector<sim::Time> hmarks;
  spawn_scripted(k, {.name = "holder", .affinity = hw::CpuMask::single(0)},
                 {kernel::SyscallAction{"hold", std::move(hold).build()}},
                 &hmarks);
  std::vector<sim::Time> smarks;
  kernel::ProgramBuilder spin;
  spin.section(kernel::LockId::kFs, 1_us);
  spawn_scripted(k, {.name = "spinner", .affinity = hw::CpuMask::single(1)},
                 {kernel::SleepAction{5_ms},  // wakes at ~10 ms, mid-hold
                  kernel::SyscallAction{"take", std::move(spin).build()}},
                 &smarks);
  p->boot();
  p->run_for(500_ms);
  ASSERT_EQ(smarks.size(), 3u);
  ASSERT_EQ(hmarks.size(), 2u);
  // The spinner's syscall could only finish after the holder released.
  EXPECT_GE(smarks[2], hmarks[1]);
  // And it spent most of the wait spinning: syscall duration ~ hold tail.
  EXPECT_GT(smarks[2] - smarks[1], 15_ms);
  EXPECT_EQ(k.lock(kernel::LockId::kFs).contentions(), 1u);
}

TEST(Locks, FifoGrantOrder) {
  auto p = vanilla_rig();
  auto& k = p->kernel();
  // This machine has 2 CPUs; to observe FIFO we use holder + one spinner,
  // then verify the spinner becomes the holder the moment of release.
  kernel::ProgramBuilder hold;
  hold.section(kernel::LockId::kSocket, 20_ms);
  spawn_scripted(k, {.name = "holder", .affinity = hw::CpuMask::single(0)},
                 {kernel::SyscallAction{"hold", std::move(hold).build()}});
  sim::Time granted_at = 0;
  kernel::ProgramBuilder spin;
  spin.lock(kernel::LockId::kSocket)
      .effect([&](kernel::Kernel& kk, kernel::Task&) { granted_at = kk.now(); })
      .work(1_us, 0.3)
      .unlock(kernel::LockId::kSocket);
  spawn_scripted(k, {.name = "spinner", .affinity = hw::CpuMask::single(1)},
                 {kernel::SleepAction{5_ms},
                  kernel::SyscallAction{"take", std::move(spin).build()}});
  p->boot();
  p->run_for(500_ms);
  EXPECT_GT(granted_at, 19_ms);
  EXPECT_LT(granted_at, 26_ms);
}

TEST(Locks, IrqSafeLockMasksInterrupts) {
  // While a task holds an irq-safe lock, the local timer cannot tick on
  // that CPU; pended ticks arrive after release.
  auto p = vanilla_rig();
  auto& k = p->kernel();
  kernel::ProgramBuilder b;
  b.lock(kernel::LockId::kIoRequest).work(35_ms, 0.0).unlock(kernel::LockId::kIoRequest);
  std::vector<sim::Time> marks;
  spawn_scripted(k, {.name = "t", .affinity = hw::CpuMask::single(0)},
                 {kernel::SyscallAction{"masked", std::move(b).build()}},
                 &marks);
  p->boot();
  p->run_for(200_ms);
  ASSERT_EQ(marks.size(), 2u);
  // The 35 ms hold saw no interruptions: elapsed stays close to the work,
  // far below work + 3 tick costs and with irqs coalesced to one pending.
  EXPECT_LT(marks[1] - marks[0], 36'500_us);
}

TEST(Locks, BklDroppedAcrossSleepAndReacquired) {
  auto p = vanilla_rig();
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("drv");
  // Task A: lock_kernel(); sleep; (implicit reacquire); unlock_kernel().
  bool a_resumed = false;
  kernel::ProgramBuilder a;
  a.lock(kernel::LockId::kBkl)
      .work(1_us, 0.3)
      .block(wq)
      .effect([&](kernel::Kernel&, kernel::Task&) { a_resumed = true; })
      .work(1_us, 0.3)
      .unlock(kernel::LockId::kBkl);
  spawn_scripted(k, {.name = "a", .affinity = hw::CpuMask::single(0)},
                 {kernel::SyscallAction{"ioctl", std::move(a).build()}});
  // Task B: while A sleeps, B must be able to take the BKL (A dropped it).
  sim::Time b_got_bkl = 0;
  kernel::ProgramBuilder b;
  b.lock(kernel::LockId::kBkl)
      .effect([&](kernel::Kernel& kk, kernel::Task&) { b_got_bkl = kk.now(); })
      .work(1_us, 0.3)
      .unlock(kernel::LockId::kBkl);
  spawn_scripted(k, {.name = "b", .affinity = hw::CpuMask::single(1)},
                 {kernel::SleepAction{5_ms},
                  kernel::SyscallAction{"ioctl", std::move(b).build()}});
  p->boot();
  p->engine().schedule(50_ms, [&] { k.wake_up_one(wq); });
  p->run_for(500_ms);
  EXPECT_GT(b_got_bkl, 0u);
  EXPECT_LT(b_got_bkl, 20_ms);  // got it while A slept, not after A woke
  EXPECT_TRUE(a_resumed);
  EXPECT_FALSE(k.lock(kernel::LockId::kBkl).held());
}

TEST(Locks, BklReacquireSpinsIfContended) {
  auto p = vanilla_rig();
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("drv");
  // A sleeps holding (dropping) the BKL; wakes while B holds it; A must
  // wait for B's release before resuming.
  std::vector<sim::Time> amarks;
  kernel::ProgramBuilder a;
  a.lock(kernel::LockId::kBkl).block(wq).work(1_us, 0.3).unlock(kernel::LockId::kBkl);
  spawn_scripted(k, {.name = "a", .affinity = hw::CpuMask::single(0)},
                 {kernel::SyscallAction{"ioctl", std::move(a).build()}},
                 &amarks);
  sim::Time b_release = 0;
  kernel::ProgramBuilder b;
  b.lock(kernel::LockId::kBkl)
      .work(20_ms, 0.0)
      .effect([&](kernel::Kernel& kk, kernel::Task&) { b_release = kk.now(); })
      .unlock(kernel::LockId::kBkl);
  spawn_scripted(k, {.name = "b", .affinity = hw::CpuMask::single(1)},
                 {kernel::SleepAction{5_ms},
                  kernel::SyscallAction{"hog_bkl", std::move(b).build()}});
  p->boot();
  // Wake A while B is mid-hold (B runs ~10..30 ms).
  p->engine().schedule(15_ms, [&] { k.wake_up_one(wq); });
  p->run_for(500_ms);
  ASSERT_EQ(amarks.size(), 2u);
  EXPECT_GE(amarks[1], b_release);  // A finished only after B released
}

TEST(Locks, BottomHalfStormStretchesObservedHoldTime) {
  // The §6.2 mechanism: a holder of a non-irq-safe lock is interrupted and
  // bottom halves run for a long time in irq context on its CPU; a spinner
  // on the other CPU eats the whole delay.
  auto p = vanilla_rig(31);
  auto& k = p->kernel();
  // Holder on CPU 0: 200 us hold.
  kernel::ProgramBuilder hold;
  hold.section(kernel::LockId::kFs, 200_us);
  spawn_scripted(k, {.name = "holder", .affinity = hw::CpuMask::single(0)},
                 {kernel::SleepAction{10_ms},
                  kernel::SyscallAction{"hold", std::move(hold).build()}});
  // Storm: 5 ms of net-rx softirq raised on CPU 0 by an interrupt landing
  // mid-hold. (Raise via the NIC so it arrives in irq context.)
  p->nic_device().rx(200'000);  // ~5.2 ms of softirq work at 26 ns/B
  p->interrupt_controller().set_affinity(p->nic_device().irq(),
                                         hw::CpuMask::single(0));
  // Spinner on CPU 1 arrives just after the hold starts.
  std::vector<sim::Time> smarks;
  kernel::ProgramBuilder spin;
  spin.section(kernel::LockId::kFs, 1_us);
  spawn_scripted(k, {.name = "spinner", .affinity = hw::CpuMask::single(1)},
                 {kernel::SleepAction{10_ms},
                  kernel::SyscallAction{"take", std::move(spin).build()}},
                 &smarks);
  p->boot();
  p->run_for(1_s);
  ASSERT_EQ(smarks.size(), 3u);
  // NOTE: the NIC burst arrives early (wire delay ~ms), so the softirq may
  // run before the hold begins; all this asserts is consistency — the
  // spinner finished, and any wait it saw is bounded by hold + storm.
  EXPECT_LT(smarks[2] - smarks[1], 10_ms);
}

TEST(Locks, StatsTrackAcquisitionsAndContentions) {
  auto p = vanilla_rig();
  auto& k = p->kernel();
  auto& l = k.lock(kernel::LockId::kPipe);
  EXPECT_FALSE(l.held());
  EXPECT_FALSE(l.irq_safe());
  EXPECT_TRUE(k.lock(kernel::LockId::kIoRequest).irq_safe());
  EXPECT_TRUE(k.lock(kernel::LockId::kRcim).irq_safe());
  EXPECT_FALSE(k.lock(kernel::LockId::kBkl).irq_safe());
}

// Cross-module integration: the paper's qualitative claims must hold as
// statistical statements inside the model.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "rt/determinism_test.h"
#include "rt/rcim_test.h"
#include "rt/realfeel_test.h"
#include "workload/disk_noise.h"
#include "workload/scp_copy.h"
#include "workload/stress_kernel.h"

using namespace testutil;
using namespace sim::literals;

namespace {

/// Realfeel max latency on a given kernel, optionally shielded.
sim::Duration realfeel_max(const config::KernelConfig& kcfg, bool shielded,
                           std::uint64_t samples, std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(), kcfg, seed);
  workload::StressKernel{}.install(p);
  rt::RealfeelTest::Params rp;
  rp.samples = samples;
  if (shielded) rp.affinity = hw::CpuMask::single(1);
  rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);
  p.boot();
  if (shielded) p.shield().dedicate_cpu(1, test.task(), p.rtc_device().irq());
  test.start();
  p.run_for(sim::from_seconds(static_cast<double>(samples) / 2048.0 * 2) + 5_s);
  EXPECT_TRUE(test.done());
  return test.latencies().max();
}

}  // namespace

TEST(Integration, ShieldingBeatsVanillaByOrdersOfMagnitude) {
  const auto vanilla =
      realfeel_max(config::KernelConfig::vanilla_2_4_20(), false, 60'000, 1);
  const auto shielded =
      realfeel_max(config::KernelConfig::redhawk_1_4(), true, 60'000, 1);
  // Fig 5 vs Fig 6: tens of ms vs sub-ms.
  EXPECT_GT(vanilla, 2_ms);
  EXPECT_LT(shielded, 1_ms);
  EXPECT_GT(vanilla / std::max<sim::Duration>(shielded, 1), 10u);
}

TEST(Integration, PreemptLowlatSitsBetween) {
  // The [5] configuration: ~1.2 ms worst case — far better than vanilla,
  // worse than a shielded CPU.
  const auto patched = realfeel_max(
      config::KernelConfig::patched_preempt_lowlat(), false, 120'000, 2);
  EXPECT_LT(patched, 3_ms);
  EXPECT_GT(patched, 30_us);
}

TEST(Integration, DeterminismShieldedVsUnshielded) {
  const auto run = [](bool shielded, std::uint64_t seed) {
    config::Platform p(config::MachineConfig::dual_p4_xeon_1400(),
                       config::KernelConfig::redhawk_1_4(), seed);
    workload::ScpCopy{}.install(p);
    workload::DiskNoise{}.install(p);
    rt::DeterminismTest::Params dp;
    dp.loop_work = 200_ms;
    dp.iterations = 20;
    if (shielded) dp.affinity = hw::CpuMask::single(1);
    rt::DeterminismTest test(p.kernel(), dp);
    p.boot();
    if (shielded) p.shield().shield_all(hw::CpuMask::single(1));
    p.run_for(60_s);
    EXPECT_TRUE(test.done());
    return test.max_observed() - test.ideal();
  };
  const auto shielded_jitter = run(true, 7);
  const auto unshielded_jitter = run(false, 7);
  EXPECT_LT(shielded_jitter * 3, unshielded_jitter);
}

TEST(Integration, HyperthreadingWorsensDeterminism) {
  const auto run = [](bool ht, std::uint64_t seed) {
    config::Platform p(config::MachineConfig::dual_p4_xeon_1400(),
                       config::KernelConfig::vanilla_2_4_20(), seed, ht);
    workload::ScpCopy{}.install(p);
    workload::DiskNoise{}.install(p);
    rt::DeterminismTest::Params dp;
    dp.loop_work = 200_ms;
    dp.iterations = 20;
    rt::DeterminismTest test(p.kernel(), dp);
    p.boot();
    p.run_for(60_s);
    EXPECT_TRUE(test.done());
    return test.max_observed() - test.ideal();
  };
  EXPECT_GT(run(true, 9), run(false, 9));
}

TEST(Integration, RcimPathBeatsRtcPathOnShieldedCpu) {
  // §6.3's point: the ioctl/no-BKL/mmap path gives a tighter bound than
  // the read()/fs-layer path under identical shielding.
  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                     config::KernelConfig::redhawk_1_4(), 11);
  workload::StressKernel{}.install(p);
  rt::RcimTest::Params rp;
  rp.samples = 50'000;
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest rcim(p.kernel(), p.rcim_driver(), rp);
  p.boot();
  p.shield().dedicate_cpu(1, rcim.task(), p.rcim_device().irq());
  rcim.start();
  p.run_for(120_s);
  ASSERT_TRUE(rcim.done());
  const auto rcim_max = rcim.latencies().max();

  const auto rtc_max =
      realfeel_max(config::KernelConfig::redhawk_1_4(), true, 500'000, 11);
  EXPECT_LT(rcim_max, 60_us);            // the paper's <30 us scale
  EXPECT_GE(rtc_max, rcim_max);          // read() path never beats ioctl path
}

TEST(Integration, ShieldedCpuTakesNoBackgroundTasks) {
  auto p = redhawk_rig(13);
  workload::StressKernel{}.install(*p);
  auto& rt = spawn_hog(p->kernel(), "rt", hw::CpuMask::single(1),
                       kernel::SchedPolicy::kFifo, 90);
  p->boot();
  p->shield().shield_all(hw::CpuMask::single(1));
  p->run_for(5_s);
  // Background tasks never ran on CPU 1 after shielding.
  for (const auto& t : p->kernel().tasks()) {
    if (t.get() == &rt) continue;
    if (t->name.starts_with("ksoftirqd")) continue;
    EXPECT_NE(t->cpu, 1) << t->name;
  }
}

TEST(Integration, DynamicShieldToggleUnderLoad) {
  // Enable and disable shielding repeatedly while the system is loaded;
  // the model must stay consistent (no lost tasks, all still runnable).
  auto p = redhawk_rig(15);
  workload::StressKernel{}.install(*p);
  p->boot();
  for (int i = 0; i < 6; ++i) {
    p->run_for(300_ms);
    if (i % 2 == 0) {
      p->shield().shield_all(hw::CpuMask::single(1));
    } else {
      p->shield().unshield_all();
    }
  }
  p->run_for(1_s);
  std::uint64_t total = 0;
  for (const auto& t : p->kernel().tasks()) {
    EXPECT_NE(t->state, kernel::TaskState::kNew) << t->name;
    total += t->syscalls;
  }
  EXPECT_GT(total, 1000u);  // system still making progress
}

TEST(Integration, MlockedRtTaskNeverMigratesOffItsShield) {
  auto p = redhawk_rig(17);
  workload::StressKernel{}.install(*p);
  auto& rt = spawn_hog(p->kernel(), "rt", hw::CpuMask::single(1),
                       kernel::SchedPolicy::kFifo, 90);
  p->boot();
  p->shield().shield_all(hw::CpuMask::single(1));
  p->run_for(3_s);
  EXPECT_EQ(rt.cpu, 1);
  EXPECT_EQ(rt.migrations, 0u);
}

// The cyclictest app and the hackbench load.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "rt/cyclictest.h"
#include "workload/hackbench.h"

using namespace testutil;
using namespace sim::literals;

TEST(CyclicTest, CollectsCycles) {
  auto p = redhawk_rig(201);
  rt::CyclicTest::Params cp;
  cp.period = 1_ms;
  cp.cycles = 2000;
  rt::CyclicTest test(p->kernel(), cp);
  p->boot();
  test.start();
  p->run_for(5_s);
  EXPECT_TRUE(test.done());
  EXPECT_EQ(test.latencies().count(), 2000u);
}

TEST(CyclicTest, IdleShieldedLatencyIsWakePathOnly) {
  auto p = redhawk_rig(202);
  rt::CyclicTest::Params cp;
  cp.period = 1_ms;
  cp.cycles = 3000;
  cp.affinity = hw::CpuMask::single(1);
  rt::CyclicTest test(p->kernel(), cp);
  p->boot();
  p->shield().shield_all(hw::CpuMask::single(1));
  test.start();
  p->run_for(10_s);
  ASSERT_TRUE(test.done());
  EXPECT_GT(test.latencies().min(), 1_us);   // pick + switch
  EXPECT_LT(test.latencies().max(), 40_us);  // nothing else interferes
}

TEST(CyclicTest, VanillaIsWorseUnderLoad) {
  const auto max_for = [](const config::KernelConfig& cfg,
                          std::uint64_t seed) {
    config::Platform p(config::MachineConfig::dual_p3_xeon_933(), cfg, seed);
    workload::Hackbench{}.install(p);
    rt::CyclicTest::Params cp;
    // Vanilla quantizes the 1 ms period up to 10 ms (HZ=100), so it only
    // collects ~100 cycles/s; keep the target reachable for both kernels.
    cp.cycles = 4'000;
    rt::CyclicTest test(p.kernel(), cp);
    p.boot();
    test.start();
    p.run_for(60_s);
    EXPECT_TRUE(test.done());
    return test.latencies().max();
  };
  const auto vanilla = max_for(config::KernelConfig::vanilla_2_4_20(), 203);
  const auto redhawk = max_for(config::KernelConfig::redhawk_1_4(), 203);
  EXPECT_GT(vanilla, redhawk);
}

TEST(Hackbench, PairsChatterFuriously) {
  auto p = vanilla_rig(204);
  workload::Hackbench{}.install(*p);
  p->boot();
  p->run_for(2_s);
  auto* s0 = p->kernel().find_task("hb-send0");
  auto* r0 = p->kernel().find_task("hb-recv0");
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(r0, nullptr);
  EXPECT_GT(s0->syscalls, 200u);
  EXPECT_GT(r0->syscalls, 200u);
  // Lots of context switching is the point of this load.
  EXPECT_GT(p->kernel().cpu(0).switches + p->kernel().cpu(1).switches, 1000u);
}

TEST(Hackbench, ScalesWithPairCount) {
  auto p = vanilla_rig(205);
  workload::Hackbench::Params hp;
  hp.pairs = 3;
  workload::Hackbench(hp).install(*p);
  p->boot();
  p->run_for(500_ms);
  int hb_tasks = 0;
  for (const auto& t : p->kernel().tasks()) {
    if (t->name.starts_with("hb-")) ++hb_tasks;
  }
  EXPECT_EQ(hb_tasks, 6);
}

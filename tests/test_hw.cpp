// Hardware layer: topology, memory system, interrupt controller, timer.
#include <gtest/gtest.h>

#include "hw/interrupt_controller.h"
#include "hw/local_timer.h"
#include "hw/memory_system.h"
#include "hw/topology.h"
#include "sim/engine.h"

using namespace sim::literals;

TEST(Topology, NoHyperthreading) {
  hw::Topology t(2, false);
  EXPECT_EQ(t.logical_cpus(), 2);
  EXPECT_EQ(t.core_of(0), 0);
  EXPECT_EQ(t.core_of(1), 1);
  EXPECT_EQ(t.sibling_of(0), -1);
  EXPECT_EQ(t.all_cpus().bits(), 0b11u);
}

TEST(Topology, Hyperthreading) {
  hw::Topology t(2, true);
  EXPECT_EQ(t.logical_cpus(), 4);
  EXPECT_EQ(t.core_of(0), 0);
  EXPECT_EQ(t.core_of(1), 0);
  EXPECT_EQ(t.core_of(2), 1);
  EXPECT_EQ(t.sibling_of(0), 1);
  EXPECT_EQ(t.sibling_of(1), 0);
  EXPECT_EQ(t.sibling_of(3), 2);
}

TEST(Topology, ValidCpu) {
  hw::Topology t(2, false);
  EXPECT_TRUE(t.valid_cpu(0));
  EXPECT_TRUE(t.valid_cpu(1));
  EXPECT_FALSE(t.valid_cpu(2));
  EXPECT_FALSE(t.valid_cpu(-1));
}

TEST(MemorySystem, DilationAtLeastOne) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::MemorySystem m(e, t);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(m.sample_dilation(0, false, 0.5), 1.0);
  }
}

TEST(MemorySystem, ForeignTrafficExcludesOwnCore) {
  sim::Engine e(1);
  hw::Topology t(2, true);  // cpus 0,1 on core 0; 2,3 on core 1
  hw::MemorySystem m(e, t);
  m.set_traffic(1, 0.8);  // own sibling: shares the core, not "foreign"
  m.set_traffic(2, 0.5);
  EXPECT_DOUBLE_EQ(m.foreign_traffic(0), 0.5);
  EXPECT_DOUBLE_EQ(m.foreign_traffic(2), 0.8);
}

TEST(MemorySystem, SiblingBusyRaisesDilation) {
  sim::Engine e(1);
  hw::Topology t(1, true);
  hw::MemorySystem m(e, t);
  double with = 0, without = 0;
  for (int i = 0; i < 5000; ++i) {
    with += m.sample_dilation(0, true, 0.3);
    without += m.sample_dilation(0, false, 0.3);
  }
  EXPECT_GT(with / 5000, without / 5000 * 1.2);
}

TEST(MemorySystem, ForeignTrafficRaisesDilation) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::MemorySystem m(e, t);
  double quiet = 0;
  for (int i = 0; i < 5000; ++i) quiet += m.sample_dilation(0, false, 0.8);
  m.set_traffic(1, 1.0);
  double loud = 0;
  for (int i = 0; i < 5000; ++i) loud += m.sample_dilation(0, false, 0.8);
  EXPECT_GT(loud, quiet * 1.02);
}

TEST(MemorySystem, TrafficClamped) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::MemorySystem m(e, t);
  m.set_traffic(0, 5.0);
  EXPECT_DOUBLE_EQ(m.traffic(0), 1.0);
  m.set_traffic(0, -1.0);
  EXPECT_DOUBLE_EQ(m.traffic(0), 0.0);
}

TEST(InterruptController, DeliversToAffinityCpu) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::InterruptController ic(e, t);
  int delivered_cpu = -1;
  ic.set_deliver_fn([&](hw::CpuId c, hw::Irq) { delivered_cpu = c; });
  ic.set_affinity(5, hw::CpuMask::single(1));
  ic.raise(5);
  e.run_until(1_ms);
  EXPECT_EQ(delivered_cpu, 1);
}

TEST(InterruptController, RotatesWithinMask) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::InterruptController ic(e, t);
  std::vector<int> cpus;
  ic.set_deliver_fn([&](hw::CpuId c, hw::Irq) { cpus.push_back(c); });
  for (int i = 0; i < 10; ++i) ic.raise(3);
  e.run_until(1_ms);
  int on0 = 0, on1 = 0;
  for (int c : cpus) (c == 0 ? on0 : on1)++;
  EXPECT_EQ(on0, 5);
  EXPECT_EQ(on1, 5);
}

TEST(InterruptController, EmptyAffinityClampsToAll) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::InterruptController ic(e, t);
  ic.set_affinity(4, hw::CpuMask::none());
  EXPECT_EQ(ic.affinity(4), t.all_cpus());
  // Masks outside the machine are clipped.
  ic.set_affinity(4, hw::CpuMask(0b100));  // CPU 2 does not exist
  EXPECT_EQ(ic.affinity(4), t.all_cpus());
}

TEST(InterruptController, CountsRaisesAndDeliveries) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::InterruptController ic(e, t);
  ic.set_deliver_fn([](hw::CpuId, hw::Irq) {});
  ic.set_affinity(8, hw::CpuMask::single(0));
  ic.raise(8);
  ic.raise(8);
  e.run_until(1_ms);
  EXPECT_EQ(ic.raise_count(8), 2u);
  EXPECT_EQ(ic.delivery_count(8, 0), 2u);
  EXPECT_EQ(ic.delivery_count(8, 1), 0u);
}

TEST(InterruptController, PreferIdleWhenEnabled) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::InterruptController ic(e, t);
  std::vector<int> cpus;
  ic.set_deliver_fn([&](hw::CpuId c, hw::Irq) { cpus.push_back(c); });
  ic.set_idle_query([](hw::CpuId c) { return c == 1; });
  ic.set_prefer_idle(true);
  for (int i = 0; i < 5; ++i) ic.raise(3);
  e.run_until(1_ms);
  for (int c : cpus) EXPECT_EQ(c, 1);
}

TEST(LocalTimer, TicksAtConfiguredPeriod) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::LocalTimer lt(e, t, 10_ms);
  int ticks[2] = {0, 0};
  lt.set_tick_fn([&](hw::CpuId c) { ticks[c]++; });
  lt.start();
  e.run_until(1_s);
  EXPECT_EQ(ticks[0], 100);
  EXPECT_EQ(ticks[1], 100);
  EXPECT_EQ(lt.tick_count(0), 100u);
}

TEST(LocalTimer, PhasesAreStaggered) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::LocalTimer lt(e, t, 10_ms);
  std::vector<sim::Time> first_tick(2, 0);
  lt.set_tick_fn([&](hw::CpuId c) {
    if (first_tick[static_cast<std::size_t>(c)] == 0) {
      first_tick[static_cast<std::size_t>(c)] = e.now();
    }
  });
  lt.start();
  e.run_until(100_ms);
  EXPECT_NE(first_tick[0], first_tick[1]);
}

TEST(LocalTimer, DisableStopsTicks) {
  sim::Engine e(1);
  hw::Topology t(2, false);
  hw::LocalTimer lt(e, t, 10_ms);
  int ticks[2] = {0, 0};
  lt.set_tick_fn([&](hw::CpuId c) { ticks[c]++; });
  lt.start();
  e.run_until(500_ms);
  lt.set_enabled(1, false);
  EXPECT_FALSE(lt.enabled(1));
  const int at_disable = ticks[1];
  e.run_until(1_s);
  EXPECT_EQ(ticks[1], at_disable);   // CPU 1 frozen
  EXPECT_EQ(ticks[0], 100);          // CPU 0 unaffected
}

TEST(LocalTimer, ReenableResumesTicks) {
  sim::Engine e(1);
  hw::Topology t(1, false);
  hw::LocalTimer lt(e, t, 10_ms);
  int ticks = 0;
  lt.set_tick_fn([&](hw::CpuId) { ticks++; });
  lt.start();
  e.run_until(100_ms);
  lt.set_enabled(0, false);
  e.run_until(200_ms);
  const int frozen = ticks;
  lt.set_enabled(0, true);
  e.run_until(300_ms);
  EXPECT_GT(ticks, frozen);
}

TEST(LocalTimer, DoubleDisableIsIdempotent) {
  sim::Engine e(1);
  hw::Topology t(1, false);
  hw::LocalTimer lt(e, t, 10_ms);
  lt.set_tick_fn([](hw::CpuId) {});
  lt.start();
  lt.set_enabled(0, false);
  lt.set_enabled(0, false);
  e.run_until(100_ms);
  EXPECT_EQ(lt.tick_count(0), 0u);
}

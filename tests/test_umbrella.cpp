// The umbrella header must compile standalone and expose the full API.
#include "shieldsim.h"

#include <gtest/gtest.h>

TEST(Umbrella, EverythingReachable) {
  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                     config::KernelConfig::redhawk_1_4(), 1);
  workload::StressKernel{}.install(p);
  rt::RcimTest test(p.kernel(), p.rcim_driver(), {});
  p.boot();
  p.shield().dedicate_cpu(1, test.task(), p.rcim_device().irq());
  p.run_for(sim::kMillisecond);
  EXPECT_FALSE(kernel::format_system_report(p.kernel()).empty());
}

// Helpers for kernel-level tests: scripted tasks and a platform rig.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "config/platform.h"
#include "kernel/kernel.h"
#include "workload/workload.h"

namespace testutil {

using namespace sim::literals;

/// A task that performs a fixed list of actions, then exits. Each action
/// boundary records the simulation time it was reached.
class ScriptedBehavior final : public kernel::Behavior {
 public:
  explicit ScriptedBehavior(std::vector<kernel::Action> actions,
                            std::vector<sim::Time>* boundaries = nullptr)
      : actions_(std::move(actions)), boundaries_(boundaries) {}

  kernel::Action next_action(kernel::Kernel& k, kernel::Task&) override {
    if (boundaries_ != nullptr) boundaries_->push_back(k.now());
    if (next_ >= actions_.size()) return kernel::ExitAction{};
    return std::move(actions_[next_++]);
  }

 private:
  std::vector<kernel::Action> actions_;
  std::vector<sim::Time>* boundaries_;
  std::size_t next_ = 0;
};

/// Spawn a task that runs `actions` then exits; boundary timestamps go to
/// `*boundaries` if given.
inline kernel::Task& spawn_scripted(kernel::Kernel& k,
                                    kernel::Kernel::TaskParams params,
                                    std::vector<kernel::Action> actions,
                                    std::vector<sim::Time>* boundaries = nullptr) {
  return k.create_task(std::move(params), std::make_unique<ScriptedBehavior>(
                                              std::move(actions), boundaries));
}

/// Spawn an endless CPU hog at the given policy/priority.
inline kernel::Task& spawn_hog(kernel::Kernel& k, const std::string& name,
                               hw::CpuMask affinity = {},
                               kernel::SchedPolicy policy = kernel::SchedPolicy::kOther,
                               int rt_priority = 0) {
  kernel::Kernel::TaskParams tp;
  tp.name = name;
  tp.policy = policy;
  tp.rt_priority = rt_priority;
  tp.affinity = affinity;
  return workload::spawn(k, std::move(tp),
                         [](kernel::Kernel&, kernel::Task&) -> kernel::Action {
                           return kernel::ComputeAction{1_ms, 0.3};
                         });
}

/// Spawn a task that repeatedly issues the same syscall program.
inline kernel::Task& spawn_syscall_loop(
    kernel::Kernel& k, const std::string& name,
    std::function<kernel::KernelProgram(kernel::Kernel&)> make_program,
    hw::CpuMask affinity = {}) {
  kernel::Kernel::TaskParams tp;
  tp.name = name;
  tp.affinity = affinity;
  return workload::spawn(
      k, std::move(tp),
      [make_program](kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
        return kernel::SyscallAction{"loop", make_program(kk)};
      });
}

/// A two-CPU RedHawk platform for shield tests.
inline std::unique_ptr<config::Platform> redhawk_rig(std::uint64_t seed = 1) {
  return std::make_unique<config::Platform>(
      config::MachineConfig::dual_p4_xeon_2000_rcim(),
      config::KernelConfig::redhawk_1_4(), seed);
}

/// A two-CPU vanilla platform.
inline std::unique_ptr<config::Platform> vanilla_rig(std::uint64_t seed = 1) {
  return std::make_unique<config::Platform>(
      config::MachineConfig::dual_p3_xeon_933(),
      config::KernelConfig::vanilla_2_4_20(), seed);
}

}  // namespace testutil

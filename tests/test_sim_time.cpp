#include <gtest/gtest.h>

#include "sim/time.h"

using namespace sim;
using namespace sim::literals;

TEST(Time, LiteralsScale) {
  EXPECT_EQ(1_ns, 1u);
  EXPECT_EQ(1_us, 1'000u);
  EXPECT_EQ(1_ms, 1'000'000u);
  EXPECT_EQ(1_s, 1'000'000'000u);
  EXPECT_EQ(488_us + 281_ns, 488'281u);
}

TEST(Time, ConversionRoundTrips) {
  EXPECT_DOUBLE_EQ(to_seconds(1_s), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(1500_us), 1.5);
  EXPECT_DOUBLE_EQ(to_micros(2500_ns), 2.5);
  EXPECT_EQ(from_seconds(1.15), 1'150'000'000u);
  EXPECT_EQ(from_seconds(0.0), 0u);
}

TEST(Time, FromSecondsRounds) {
  // 0.1 is not exactly representable; rounding must stay within 1 ns.
  const Duration d = from_seconds(0.1);
  EXPECT_NEAR(static_cast<double>(d), 1e8, 1.0);
}

TEST(Time, FormatPicksUnit) {
  EXPECT_EQ(format_duration(27), "27 ns");
  EXPECT_EQ(format_duration(11'300), "11.300 us");
  EXPECT_EQ(format_duration(565'000), "565.000 us");
  EXPECT_EQ(format_duration(92'300'000), "92.300 ms");
  EXPECT_EQ(format_duration(1'150'000'000), "1.150 s");
}

TEST(Time, FormatBoundaries) {
  EXPECT_EQ(format_duration(0), "0 ns");
  EXPECT_EQ(format_duration(999), "999 ns");
  EXPECT_EQ(format_duration(1000), "1.000 us");
  EXPECT_EQ(format_duration(999'999), "999.999 us");
  EXPECT_EQ(format_duration(1'000'000), "1.000 ms");
}

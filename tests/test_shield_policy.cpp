// The §3 mask-interaction semantics, as pure algebra.
#include <gtest/gtest.h>

#include "shield/shield_policy.h"

using hw::CpuMask;
using shield::effective_affinity;
using shield::opted_onto_shield;

TEST(ShieldPolicy, NoShieldIsIdentity) {
  EXPECT_EQ(effective_affinity(CpuMask(0b11), CpuMask::none()), CpuMask(0b11));
  EXPECT_EQ(effective_affinity(CpuMask(0b01), CpuMask::none()), CpuMask(0b01));
}

TEST(ShieldPolicy, ShieldedCpusRemovedFromOrdinaryTasks) {
  // Affinity {0,1}, CPU 1 shielded → effective {0}.
  EXPECT_EQ(effective_affinity(CpuMask(0b11), CpuMask(0b10)), CpuMask(0b01));
}

TEST(ShieldPolicy, SubsetOfShieldKeepsItsMask) {
  // "To run on a shielded CPU, a process must set its CPU affinity such
  //  that it contains only shielded CPUs."
  EXPECT_EQ(effective_affinity(CpuMask(0b10), CpuMask(0b10)), CpuMask(0b10));
  EXPECT_EQ(effective_affinity(CpuMask(0b110), CpuMask(0b111)), CpuMask(0b110));
}

TEST(ShieldPolicy, PartialOverlapLosesShieldedCpus) {
  // Affinity {1,2}, shield {2,3} → effective {1}.
  EXPECT_EQ(effective_affinity(CpuMask(0b0110), CpuMask(0b1100)),
            CpuMask(0b0010));
}

TEST(ShieldPolicy, NeverProducesEmptyMask) {
  // Affinity exactly equal to shield → kept (subset rule).
  EXPECT_EQ(effective_affinity(CpuMask(0b11), CpuMask(0b11)), CpuMask(0b11));
}

TEST(ShieldPolicy, OptedOntoShield) {
  EXPECT_TRUE(opted_onto_shield(CpuMask(0b10), CpuMask(0b10)));
  EXPECT_TRUE(opted_onto_shield(CpuMask(0b10), CpuMask(0b110)));
  EXPECT_FALSE(opted_onto_shield(CpuMask(0b11), CpuMask(0b10)));
  EXPECT_FALSE(opted_onto_shield(CpuMask(0b10), CpuMask::none()));
}

// Property sweep over (requested, shielded) pairs on a 4-CPU machine.
class ShieldPolicySweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(ShieldPolicySweep, Invariants) {
  const CpuMask requested(std::get<0>(GetParam()));
  const CpuMask shielded(std::get<1>(GetParam()));
  if (requested.empty()) return;  // precondition of the function
  const CpuMask eff = effective_affinity(requested, shielded);

  // 1. Never empty.
  EXPECT_FALSE(eff.empty());
  // 2. Always a subset of what was requested.
  EXPECT_TRUE(eff.subset_of(requested));
  // 3. If the request opted fully onto the shield, it is unchanged.
  if (requested.subset_of(shielded)) {
    EXPECT_EQ(eff, requested);
  } else if (!(requested & ~shielded).empty()) {
    // 4. Otherwise no shielded CPU survives.
    EXPECT_FALSE(eff.intersects(shielded));
  }
  // 5. Idempotence: applying the shield twice changes nothing.
  EXPECT_EQ(effective_affinity(eff, shielded), eff);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ShieldPolicySweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 16),
                       ::testing::Range<std::uint64_t>(0, 16)));

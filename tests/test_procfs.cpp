#include <gtest/gtest.h>

#include "kernel/procfs.h"
#include "kernel_test_util.h"

using kernel::ProcFs;
using namespace testutil;

TEST(ProcFs, ReadMissingPathFails) {
  ProcFs fs;
  EXPECT_FALSE(fs.exists("/proc/nope"));
  EXPECT_FALSE(fs.read("/proc/nope").has_value());
}

TEST(ProcFs, RegisterAndRead) {
  ProcFs fs;
  fs.register_file("/proc/value", [] { return std::string("42\n"); });
  ASSERT_TRUE(fs.exists("/proc/value"));
  EXPECT_EQ(fs.read("/proc/value").value(), "42\n");
}

TEST(ProcFs, WriteDispatchesToHandler) {
  ProcFs fs;
  std::string stored;
  fs.register_file(
      "/proc/knob", [&] { return stored; },
      [&](std::string_view data) {
        stored = std::string(data);
        return true;
      });
  EXPECT_TRUE(fs.write("/proc/knob", "on"));
  EXPECT_EQ(fs.read("/proc/knob").value(), "on");
}

TEST(ProcFs, WriteToReadOnlyFails) {
  ProcFs fs;
  fs.register_file("/proc/ro", [] { return std::string("x"); });
  EXPECT_FALSE(fs.write("/proc/ro", "y"));
}

TEST(ProcFs, WriteToMissingFails) {
  ProcFs fs;
  EXPECT_FALSE(fs.write("/proc/nope", "y"));
}

TEST(ProcFs, HandlerCanReject) {
  ProcFs fs;
  fs.register_file("/proc/picky", [] { return std::string(); },
                   [](std::string_view data) { return data == "ok"; });
  EXPECT_TRUE(fs.write("/proc/picky", "ok"));
  EXPECT_FALSE(fs.write("/proc/picky", "bad"));
}

TEST(ProcFs, ListByPrefix) {
  ProcFs fs;
  fs.register_file("/proc/irq/8/smp_affinity", [] { return std::string(); });
  fs.register_file("/proc/irq/10/smp_affinity", [] { return std::string(); });
  fs.register_file("/proc/shield/procs", [] { return std::string(); });
  EXPECT_EQ(fs.list("/proc/irq/").size(), 2u);
  EXPECT_EQ(fs.list("/proc/").size(), 3u);
  EXPECT_EQ(fs.list("/proc/shield").size(), 1u);
}

TEST(ProcFs, ReRegisterOverrides) {
  ProcFs fs;
  fs.register_file("/proc/x", [] { return std::string("old"); });
  fs.register_file("/proc/x", [] { return std::string("new"); });
  EXPECT_EQ(fs.read("/proc/x").value(), "new");
}

TEST(ProcFs, RejectsRelativePaths) {
  ProcFs fs;
  EXPECT_DEATH(fs.register_file("proc/x", [] { return std::string(); }),
               "absolute");
}

TEST(ProcFs, KernelRegistersIrqAffinityFiles) {
  auto p = vanilla_rig();
  auto& fs = p->kernel().procfs();
  EXPECT_TRUE(fs.exists("/proc/irq/8/smp_affinity"));
  EXPECT_TRUE(fs.exists("/proc/interrupts"));
  // Hex write with the real format.
  EXPECT_TRUE(fs.write("/proc/irq/8/smp_affinity", "1\n"));
  EXPECT_EQ(p->interrupt_controller().affinity(8), hw::CpuMask::single(0));
  // Invalid mask (no online CPU) rejected.
  EXPECT_FALSE(fs.write("/proc/irq/8/smp_affinity", "4"));
}

TEST(ProcFs, InterruptsFileShowsCounts) {
  auto p = vanilla_rig(61);
  p->rtc_device().set_rate_hz(64);
  p->rtc_device().start_periodic();
  p->boot();
  p->run_for(1_s);
  const std::string s = p->kernel().procfs().read("/proc/interrupts").value();
  EXPECT_NE(s.find("CPU0"), std::string::npos);
  EXPECT_NE(s.find("8:"), std::string::npos);  // RTC line
}

// Bottom-half semantics: in-irq-context draining (vanilla), the budget +
// ksoftirqd offload (RedHawk), restart limits, and the interaction with
// running tasks.
#include <gtest/gtest.h>

#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

TEST(Softirq, PendingWorkAccounting) {
  kernel::SoftirqPending sp;
  EXPECT_FALSE(sp.any_pending());
  sp.raise(kernel::SoftirqType::kNetRx, 100_us);
  sp.raise(kernel::SoftirqType::kBlock, 50_us);
  EXPECT_EQ(sp.total_pending(), 150_us);
  EXPECT_EQ(sp.pending(kernel::SoftirqType::kNetRx), 100_us);
  EXPECT_EQ(sp.raise_count(kernel::SoftirqType::kNetRx), 1u);
}

TEST(Softirq, TakeRespectsBudget) {
  kernel::SoftirqPending sp;
  sp.raise(kernel::SoftirqType::kNetRx, 100_us);
  sp.raise(kernel::SoftirqType::kBlock, 100_us);
  EXPECT_EQ(sp.take(150_us), 150_us);
  EXPECT_EQ(sp.total_pending(), 50_us);
  EXPECT_EQ(sp.take(1_ms), 50_us);
  EXPECT_FALSE(sp.any_pending());
  EXPECT_EQ(sp.total_executed(), 200_us);
}

TEST(Softirq, VanillaDrainsInIrqContextStealingFromFifoTask) {
  // A FIFO hog owns CPU 0. A NIC interrupt routed there queues softirq
  // work; vanilla drains it all in interrupt context, dilating the hog's
  // wall time — exactly the §5 jitter mechanism.
  auto p = vanilla_rig(41);
  auto& k = p->kernel();
  p->interrupt_controller().set_affinity(p->nic_device().irq(),
                                         hw::CpuMask::single(0));
  std::vector<sim::Time> marks;
  kernel::Kernel::TaskParams tp;
  tp.name = "rt-hog";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 80;
  tp.affinity = hw::CpuMask::single(0);
  spawn_scripted(k, std::move(tp), {kernel::ComputeAction{50_ms, 0.0}}, &marks);
  p->boot();
  // One 400 KB burst = one interrupt carrying ~10 ms of net-rx softirq
  // work (wire delay ~32 ms, so it lands ~37 ms into the compute window).
  p->engine().schedule(5_ms, [&] { p->nic_device().rx(400'000); });
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  const sim::Duration took = marks[1] - marks[0];
  EXPECT_GT(took, 58_ms);  // work + ~10 ms of stolen softirq time
  EXPECT_GT(p->kernel().cpu(0).softirq_time, 9_ms);
}

TEST(Softirq, RedHawkBudgetCapsIrqContextDrain) {
  // Same scenario on RedHawk: only ~1 ms of budget runs per interrupt
  // exit; the bulk is deferred to ksoftirqd, which CANNOT preempt the FIFO
  // hog. The hog loses a few tick-exit budgets, not the whole 10 ms storm.
  auto p = redhawk_rig(41);
  auto& k = p->kernel();
  p->interrupt_controller().set_affinity(p->nic_device().irq(),
                                         hw::CpuMask::single(0));
  std::vector<sim::Time> marks;
  kernel::Kernel::TaskParams tp;
  tp.name = "rt-hog";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 80;
  tp.affinity = hw::CpuMask::single(0);
  spawn_scripted(k, std::move(tp), {kernel::ComputeAction{50_ms, 0.0}}, &marks);
  p->boot();
  p->engine().schedule(5_ms, [&] { p->nic_device().rx(400'000); });
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  const sim::Duration took = marks[1] - marks[0];
  EXPECT_LT(took, 56_ms);
}

TEST(Softirq, DeferredWorkRunsInKsoftirqdWhenCpuFree) {
  auto p = redhawk_rig(42);
  auto& k = p->kernel();
  p->interrupt_controller().set_affinity(p->nic_device().irq(),
                                         hw::CpuMask::single(0));
  p->boot();
  p->nic_device().rx(200'000);
  p->run_for(1_s);
  // All queued softirq work eventually executed (budget part in irq
  // context, remainder in ksoftirqd once the CPU idled).
  EXPECT_EQ(k.cpu(0).softirq.total_pending() +
                k.cpu(1).softirq.total_pending(),
            0u);
  auto* ksoftirqd = k.find_task("ksoftirqd/0");
  ASSERT_NE(ksoftirqd, nullptr);
  EXPECT_GT(ksoftirqd->stime, 3_ms);
}

TEST(Softirq, TaskContextRaiseGoesToKsoftirqd) {
  // Raising softirq work from task context (loopback traffic) must not run
  // inline; ksoftirqd picks it up.
  auto p = vanilla_rig(43);
  auto& k = p->kernel();
  kernel::ProgramBuilder b;
  b.effect([](kernel::Kernel& kk, kernel::Task& t) {
    kk.raise_softirq(t.cpu, kernel::SoftirqType::kNetRx, 2_ms);
  });
  spawn_scripted(k, {.name = "sender", .affinity = hw::CpuMask::single(0)},
                 {kernel::SyscallAction{"send", std::move(b).build()}});
  p->boot();
  p->run_for(1_s);
  auto* ksoftirqd = k.find_task("ksoftirqd/0");
  ASSERT_NE(ksoftirqd, nullptr);
  EXPECT_GT(ksoftirqd->stime, 1_ms);
  EXPECT_EQ(k.cpu(0).softirq.total_pending(), 0u);
}

TEST(Softirq, TimerTickRaisesTimerSoftirq) {
  auto p = vanilla_rig(44);
  p->boot();
  p->run_for(2_s);
  const auto& cs = p->kernel().cpu(0);
  EXPECT_GT(cs.softirq.raise_count(kernel::SoftirqType::kTimer), 100u);
}

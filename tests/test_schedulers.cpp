// Scheduler-specific behaviour: goodness (2.4) vs O(1).
#include <gtest/gtest.h>

#include "kernel/goodness_scheduler.h"
#include "kernel/o1_scheduler.h"
#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

namespace {

kernel::Task make_task(kernel::Pid pid, kernel::SchedPolicy policy,
                       int rt_prio, int nice, hw::CpuMask affinity) {
  kernel::Task t;
  t.pid = pid;
  t.policy = policy;
  t.rt_priority = rt_prio;
  t.nice = nice;
  t.user_affinity = affinity;
  t.effective_affinity = affinity;
  t.state = kernel::TaskState::kReady;
  return t;
}

}  // namespace

class SchedulerKindTest
    : public ::testing::TestWithParam<config::SchedulerKind> {
 protected:
  std::unique_ptr<kernel::Scheduler> make(const config::KernelConfig& cfg) {
    if (GetParam() == config::SchedulerKind::kGoodness24) {
      return std::make_unique<kernel::GoodnessScheduler>(cfg, sim::Rng(1));
    }
    return std::make_unique<kernel::O1Scheduler>(cfg, sim::Rng(1));
  }
  config::KernelConfig cfg_ = config::KernelConfig::vanilla_2_4_20();
};

TEST_P(SchedulerKindTest, PicksHighestPriority) {
  auto s = make(cfg_);
  s->init(2);
  auto rt = make_task(1, kernel::SchedPolicy::kFifo, 50, 0, hw::CpuMask(0b11));
  auto other = make_task(2, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b11));
  s->enqueue(other, 0);
  s->enqueue(rt, 0);
  EXPECT_EQ(s->pick_next(0), &rt);
  EXPECT_EQ(s->pick_next(0), &other);
  EXPECT_EQ(s->pick_next(0), nullptr);
}

TEST_P(SchedulerKindTest, HigherRtPriorityFirst) {
  auto s = make(cfg_);
  s->init(1);
  auto lo = make_task(1, kernel::SchedPolicy::kFifo, 10, 0, hw::CpuMask(0b1));
  auto hi = make_task(2, kernel::SchedPolicy::kFifo, 90, 0, hw::CpuMask(0b1));
  s->enqueue(lo, 0);
  s->enqueue(hi, 0);
  EXPECT_EQ(s->pick_next(0), &hi);
}

TEST_P(SchedulerKindTest, HonorsAffinity) {
  auto s = make(cfg_);
  s->init(2);
  auto pinned = make_task(1, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b10));
  s->enqueue(pinned, 1);
  EXPECT_EQ(s->pick_next(0), nullptr);  // pinned to CPU 1
  EXPECT_EQ(s->pick_next(1), &pinned);
}

TEST_P(SchedulerKindTest, DequeueRemoves) {
  auto s = make(cfg_);
  s->init(1);
  auto t = make_task(1, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b1));
  s->enqueue(t, 0);
  s->dequeue(t);
  EXPECT_FALSE(t.on_runqueue);
  EXPECT_EQ(s->pick_next(0), nullptr);
}

TEST_P(SchedulerKindTest, PreemptsRules) {
  auto s = make(cfg_);
  auto rt_hi = make_task(1, kernel::SchedPolicy::kFifo, 90, 0, hw::CpuMask(0b1));
  auto rt_lo = make_task(2, kernel::SchedPolicy::kFifo, 10, 0, hw::CpuMask(0b1));
  auto other_a = make_task(3, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b1));
  auto other_b = make_task(4, kernel::SchedPolicy::kOther, 0, -10, hw::CpuMask(0b1));
  EXPECT_TRUE(s->preempts(rt_hi, rt_lo));
  EXPECT_FALSE(s->preempts(rt_lo, rt_hi));
  EXPECT_FALSE(s->preempts(rt_hi, rt_hi));  // equal prio: FIFO, no preempt
  EXPECT_TRUE(s->preempts(rt_lo, other_a));
  EXPECT_FALSE(s->preempts(other_a, rt_lo));
  // OTHER never wake-preempts OTHER, regardless of nice.
  EXPECT_FALSE(s->preempts(other_b, other_a));
}

TEST_P(SchedulerKindTest, SelectCpuPrefersIdle) {
  auto s = make(cfg_);
  s->init(2);
  auto t = make_task(1, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b11));
  const auto cpu = s->select_cpu(t, hw::CpuMask(0b11),
                                 [](hw::CpuId c) { return c == 1; });
  EXPECT_EQ(cpu, 1);
}

TEST_P(SchedulerKindTest, SelectCpuPrefersLastCpuWhenIdle) {
  auto s = make(cfg_);
  s->init(2);
  auto t = make_task(1, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b11));
  t.cpu = 1;
  const auto cpu =
      s->select_cpu(t, hw::CpuMask(0b11), [](hw::CpuId) { return true; });
  EXPECT_EQ(cpu, 1);
}

TEST_P(SchedulerKindTest, PickCostIsPositive) {
  auto s = make(cfg_);
  s->init(1);
  auto t = make_task(1, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b1));
  s->enqueue(t, 0);
  EXPECT_GT(s->pick_cost(0), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothSchedulers, SchedulerKindTest,
                         ::testing::Values(config::SchedulerKind::kGoodness24,
                                           config::SchedulerKind::kO1));

// ---- scheduler-specific characteristics --------------------------------------

TEST(GoodnessScheduler, PickCostGrowsWithQueueLength) {
  auto cfg = config::KernelConfig::vanilla_2_4_20();
  kernel::GoodnessScheduler s(cfg, sim::Rng(1));
  s.init(1);
  std::vector<kernel::Task> tasks;
  tasks.reserve(64);
  for (int i = 0; i < 64; ++i) {
    tasks.push_back(make_task(i + 1, kernel::SchedPolicy::kOther, 0, 0,
                              hw::CpuMask(0b1)));
  }
  sim::Duration short_cost = 0, long_cost = 0;
  s.enqueue(tasks[0], 0);
  for (int i = 0; i < 20; ++i) short_cost += s.pick_cost(0);
  for (int i = 1; i < 64; ++i) s.enqueue(tasks[static_cast<std::size_t>(i)], 0);
  for (int i = 0; i < 20; ++i) long_cost += s.pick_cost(0);
  EXPECT_GT(long_cost, short_cost + 20 * 63 * cfg.sched_pick_per_task / 2);
}

TEST(O1Scheduler, PickCostIsConstant) {
  auto cfg = config::KernelConfig::redhawk_1_4();
  kernel::O1Scheduler s(cfg, sim::Rng(1));
  s.init(1);
  std::vector<kernel::Task> tasks;
  tasks.reserve(64);
  for (int i = 0; i < 64; ++i) {
    tasks.push_back(make_task(i + 1, kernel::SchedPolicy::kOther, 0, 0,
                              hw::CpuMask(0b1)));
    s.enqueue(tasks.back(), 0);
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(s.pick_cost(0), cfg.sched_pick_base + 300);
  }
}

TEST(O1Scheduler, PrioSlotMapping) {
  auto rt99 = make_task(1, kernel::SchedPolicy::kFifo, 99, 0, hw::CpuMask(1));
  auto rt1 = make_task(2, kernel::SchedPolicy::kFifo, 1, 0, hw::CpuMask(1));
  auto nice0 = make_task(3, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(1));
  auto nice19 = make_task(4, kernel::SchedPolicy::kOther, 0, 19, hw::CpuMask(1));
  EXPECT_EQ(kernel::O1Scheduler::prio_slot(rt99), 0);
  EXPECT_EQ(kernel::O1Scheduler::prio_slot(rt1), 98);
  EXPECT_EQ(kernel::O1Scheduler::prio_slot(nice0), 120);
  EXPECT_EQ(kernel::O1Scheduler::prio_slot(nice19), 139);
}

TEST(O1Scheduler, IdleCpuStealsFromBusiest) {
  auto cfg = config::KernelConfig::redhawk_1_4();
  kernel::O1Scheduler s(cfg, sim::Rng(1));
  s.init(2);
  auto a = make_task(1, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b11));
  auto b = make_task(2, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b11));
  s.enqueue(a, 0);
  s.enqueue(b, 0);
  // CPU 1 has an empty queue but can pull from CPU 0.
  kernel::Task* stolen = s.pick_next(1);
  ASSERT_NE(stolen, nullptr);
  EXPECT_EQ(stolen->migrations, 1u);
  EXPECT_EQ(s.nr_runnable(0), 1u);
}

TEST(O1Scheduler, StealHonorsAffinity) {
  auto cfg = config::KernelConfig::redhawk_1_4();
  kernel::O1Scheduler s(cfg, sim::Rng(1));
  s.init(2);
  auto pinned = make_task(1, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b1));
  s.enqueue(pinned, 0);
  EXPECT_EQ(s.pick_next(1), nullptr);  // cannot steal a CPU-0-pinned task
}

TEST(GoodnessScheduler, EpochRefillsExhaustedCounters) {
  auto cfg = config::KernelConfig::vanilla_2_4_20();
  kernel::GoodnessScheduler s(cfg, sim::Rng(1));
  s.init(1);
  auto a = make_task(1, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b1));
  auto b = make_task(2, kernel::SchedPolicy::kOther, 0, 0, hw::CpuMask(0b1));
  a.timeslice_remaining = 0;
  b.timeslice_remaining = 0;
  a.cpu = 0;  // a has the cache-affinity bonus
  s.enqueue(a, 0);
  s.enqueue(b, 0);
  kernel::Task* first = s.pick_next(0);
  ASSERT_NE(first, nullptr);
  // Epoch refilled both counters.
  EXPECT_GT(a.timeslice_remaining + b.timeslice_remaining, 0u);
}

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

using sim::EventId;
using sim::EventQueue;

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  q.schedule_at(100, [] {});
  EXPECT_EQ(q.next_time(), 100u);
  q.schedule_at(50, [] {});
  EXPECT_EQ(q.next_time(), 50u);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.schedule_at(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.schedule_at(10, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, InvalidIdCancelIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, CancelledEventsSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1, [&] { order.push_back(1); });
  const EventId mid = q.schedule_at(2, [&] { order.push_back(2); });
  q.schedule_at(3, [&] { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledPrefix) {
  EventQueue q;
  const EventId early = q.schedule_at(1, [] {});
  q.schedule_at(10, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 10u);
}

namespace {

/// The pre-timing-wheel implementation — a binary (time, seq) min-heap with
/// a lazy-cancellation set — kept here as the ordering oracle for the
/// randomized cross-check below.
class ReferenceQueue {
 public:
  std::uint64_t schedule_at(sim::Time at, int tag) {
    const std::uint64_t seq = next_seq_++;
    heap_.push_back(Entry{at, seq, tag});
    std::push_heap(heap_.begin(), heap_.end());
    pending_.insert(seq);
    return seq;
  }

  bool cancel(std::uint64_t seq) { return pending_.erase(seq) > 0; }

  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  sim::Time next_time() {
    drop_dead_prefix();
    return heap_.front().at;
  }

  std::pair<sim::Time, int> pop() {
    drop_dead_prefix();
    std::pop_heap(heap_.begin(), heap_.end());
    const Entry e = heap_.back();
    heap_.pop_back();
    pending_.erase(e.seq);
    return {e.at, e.tag};
  }

 private:
  struct Entry {
    sim::Time at;
    std::uint64_t seq;
    int tag;

    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_dead_prefix() {
    while (!heap_.empty() && !pending_.contains(heap_.front().seq)) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace

// Property test: on randomized schedule/cancel/pop sequences the timing
// wheel pops exactly the events the reference heap pops, at the same times,
// in the same order. Offsets mix every wheel path: the near window, all
// levels, the overflow heap, and (via zero offsets) the at-horizon edge.
TEST(EventQueue, MatchesReferenceHeapOnRandomizedOps) {
  std::mt19937_64 rng(20030415);
  for (int round = 0; round < 10; ++round) {
    EventQueue q;
    ReferenceQueue ref;
    struct LiveEvent {
      EventId id;
      std::uint64_t ref_seq;
    };
    std::vector<LiveEvent> live;
    std::vector<int> popped;  // filled by wheel callbacks
    sim::Time now = 0;
    int next_tag = 0;

    for (int op = 0; op < 20'000; ++op) {
      const auto dice = rng() % 100;
      if (dice < 55) {
        // Schedule at now + an offset spanning from 0 ns to beyond the
        // wheel's ~18-minute span, biased small like the simulator.
        const int magnitude = static_cast<int>(rng() % 15);
        const sim::Time offset = rng() % (sim::Time{1} << magnitude * 3);
        const int tag = next_tag++;
        const EventId id =
            q.schedule_at(now + offset, [tag, &popped] { popped.push_back(tag); });
        const std::uint64_t ref_seq = ref.schedule_at(now + offset, tag);
        live.push_back(LiveEvent{id, ref_seq});
      } else if (dice < 80 && !live.empty()) {
        const std::size_t pick = rng() % live.size();
        const LiveEvent victim = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        ASSERT_EQ(q.cancel(victim.id), ref.cancel(victim.ref_seq));
      } else if (ref.size() > 0) {
        ASSERT_EQ(q.size(), ref.size());
        ASSERT_EQ(q.next_time(), ref.next_time());
        auto [at, cb] = q.pop();
        const auto [ref_at, ref_tag] = ref.pop();
        ASSERT_EQ(at, ref_at);
        cb();
        ASSERT_FALSE(popped.empty());
        ASSERT_EQ(popped.back(), ref_tag);
        now = std::max(now, at);
        // Fired events stay in `live` on purpose: a later "cancel" of one
        // checks that both implementations agree it is a no-op.
      }
    }
    // Drain: the remaining pop order must match exactly.
    while (ref.size() > 0) {
      ASSERT_EQ(q.size(), ref.size());
      auto [at, cb] = q.pop();
      const auto [ref_at, ref_tag] = ref.pop();
      ASSERT_EQ(at, ref_at);
      cb();
      ASSERT_EQ(popped.back(), ref_tag);
    }
    EXPECT_TRUE(q.empty());
  }
}

// Regression for the unbounded-growth bug: the old lazy-cancellation heap
// only reclaimed cancelled entries when they surfaced at the heap top, so a
// schedule+cancel loop against far-future times grew the heap without
// bound. Compaction must keep slot memory proportional to peak live count.
TEST(EventQueue, MillionCancelsStayMemoryBounded) {
  EventQueue q;
  sim::Time t = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    const EventId id = q.schedule_at(t += 1000, [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
  // Peak live count is 1; tombstones must be swept, not accumulated.
  EXPECT_LT(q.slot_capacity(), 1024u);
}

TEST(EventQueue, CancelHeavyChurnWithLiveBacklogStaysBounded) {
  EventQueue q;
  std::vector<EventId> backlog;
  sim::Time t = 0;
  for (int i = 0; i < 10'000; ++i) backlog.push_back(q.schedule_at(t += 500, [] {}));
  for (int i = 0; i < 200'000; ++i) {
    const EventId id = q.schedule_at(t += 500, [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  EXPECT_EQ(q.size(), 10'000u);
  EXPECT_LT(q.slot_capacity(), 64'000u);
  for (const EventId id : backlog) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId first = q.schedule_at(10, [] {});
  q.pop().second();  // fires; the slot is recycled
  const EventId second = q.schedule_at(20, [] {});
  EXPECT_FALSE(q.cancel(first));  // stale id must not hit the reused slot
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(second));
}

// The wheel spans 2^40 ns (level 4's window edge). Events on either side of
// that boundary land in different structures — the top wheel level vs the
// overflow heap — and must still fire strictly in (time, insertion) order.
TEST(EventQueue, Level4SpanBoundaryScheduling) {
  EventQueue q;
  const sim::Time span = sim::Time{1} << 40;
  std::vector<int> order;
  q.schedule_at(span + 1, [&] { order.push_back(4); });
  q.schedule_at(span - 1, [&] { order.push_back(2); });
  q.schedule_at(span, [&] { order.push_back(3); });
  q.schedule_at(5, [&] { order.push_back(1); });
  q.schedule_at(span, [&] { order.push_back(5); });  // same time: FIFO after 3
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 5, 4}));
}

// Events beyond the wheel span sit in the overflow heap until the window
// jumps past them. The jump must promote them in order, skip entries
// cancelled while still in overflow, and interleave correctly with events
// scheduled into the already-promoted window mid-drain.
TEST(EventQueue, OverflowEventsRepromotedAfterWindowJump) {
  EventQueue q;
  const sim::Time far = sim::Time{1} << 41;
  std::vector<int> order;
  q.schedule_at(100, [&] { order.push_back(0); });
  std::vector<EventId> far_ids;
  for (int i = 0; i < 8; ++i) {
    far_ids.push_back(q.schedule_at(far + static_cast<sim::Time>(i) * 10,
                                    [&order, i] { order.push_back(1 + i); }));
  }
  EXPECT_TRUE(q.cancel(far_ids[3]));  // cancelled while still in overflow
  auto [t0, cb0] = q.pop();
  EXPECT_EQ(t0, 100u);
  cb0();
  // The next pop jumps the window across the whole wheel span.
  EXPECT_EQ(q.next_time(), far);
  auto [t1, cb1] = q.pop();
  EXPECT_EQ(t1, far);
  cb1();
  // Mid-drain, drop a new event between two promoted overflow events.
  q.schedule_at(far + 15, [&] { order.push_back(100); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 100, 3, 5, 6, 7, 8}));
}

// A compaction sweep recycles every tombstoned slot at once. Ids of the
// compacted events must stay stale after their slots are reused, and the
// survivors must be unaffected.
TEST(EventQueue, StaleIdsAfterCompactionCannotCancelReusedSlots) {
  EventQueue q;
  const EventId keeper = q.schedule_at(1'000'000, [] {});
  std::vector<EventId> doomed;
  for (int i = 0; i < 200; ++i) {
    doomed.push_back(
        q.schedule_at(2'000'000 + static_cast<sim::Time>(i), [] {}));
  }
  // dead > 64 && dead > live triggers compact() partway through this loop.
  for (const EventId id : doomed) ASSERT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    q.schedule_at(3'000'000 + static_cast<sim::Time>(i), [&] { ++fired; });
  }
  for (const EventId id : doomed) EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.cancel(keeper));
  EXPECT_EQ(q.size(), 200u);
  sim::Time prev = 0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, prev);
    prev = t;
    cb();
  }
  EXPECT_EQ(fired, 200);
}

// The LIFO free list makes one slot absorb every schedule/fire cycle; each
// reuse bumps its generation tag. Every previously issued id must stay
// stale across thousands of reuses (the 40-bit generation wraps only after
// ~10^12 reuses of one slot — the old 32-bit tag was within reach of a
// long cancel-heavy run).
TEST(EventQueue, HotSlotReuseKeepsStaleIdsStale) {
  EventQueue q;
  std::vector<EventId> stale;
  for (int i = 0; i < 10'000; ++i) {
    const EventId id = q.schedule_at(static_cast<sim::Time>(i), [] {});
    q.pop().second();
    stale.push_back(id);
  }
  const EventId live = q.schedule_at(99, [] {});
  for (const EventId id : stale) ASSERT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.cancel(live));
}

TEST(EventQueue, ManyInterleavedOpsStayConsistent) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 10; ++i) {
      ids.push_back(
          q.schedule_at(static_cast<sim::Time>(round * 10 + i), [] {}));
    }
    // Cancel every other one from this round.
    for (std::size_t i = ids.size() - 10; i < ids.size(); i += 2) {
      q.cancel(ids[i]);
    }
  }
  EXPECT_EQ(q.size(), 500u);
  sim::Time prev = 0;
  std::size_t popped = 0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, prev);
    prev = t;
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
}

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

using sim::EventId;
using sim::EventQueue;

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  q.schedule_at(100, [] {});
  EXPECT_EQ(q.next_time(), 100u);
  q.schedule_at(50, [] {});
  EXPECT_EQ(q.next_time(), 50u);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.schedule_at(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.schedule_at(10, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, InvalidIdCancelIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, CancelledEventsSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1, [&] { order.push_back(1); });
  const EventId mid = q.schedule_at(2, [&] { order.push_back(2); });
  q.schedule_at(3, [&] { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledPrefix) {
  EventQueue q;
  const EventId early = q.schedule_at(1, [] {});
  q.schedule_at(10, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 10u);
}

TEST(EventQueue, ManyInterleavedOpsStayConsistent) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 10; ++i) {
      ids.push_back(
          q.schedule_at(static_cast<sim::Time>(round * 10 + i), [] {}));
    }
    // Cancel every other one from this round.
    for (std::size_t i = ids.size() - 10; i < ids.size(); i += 2) {
      q.cancel(ids[i]);
    }
  }
  EXPECT_EQ(q.size(), 500u);
  sim::Time prev = 0;
  std::size_t popped = 0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, prev);
    prev = t;
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
}

// End-to-end smoke tests: boot a platform, run load, measure latency.
#include <gtest/gtest.h>

#include "config/platform.h"
#include "rt/rcim_test.h"
#include "rt/realfeel_test.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

TEST(Smoke, BootIdleVanilla) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::vanilla_2_4_20(), 1);
  p.boot();
  p.run_for(1_s);
  // Local timer ticked on both CPUs (HZ=100 → ~100 ticks/s).
  EXPECT_GE(p.kernel().local_timer().tick_count(0), 90u);
  EXPECT_GE(p.kernel().local_timer().tick_count(1), 90u);
}

TEST(Smoke, BootIdleRedHawk) {
  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                     config::KernelConfig::redhawk_1_4(), 1);
  p.boot();
  p.run_for(1_s);
  EXPECT_TRUE(p.has_rcim());
  EXPECT_TRUE(p.has_shield());
}

TEST(Smoke, StressKernelRuns) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::vanilla_2_4_20(), 7);
  workload::StressKernel{}.install(p);
  p.boot();
  p.run_for(5_s);
  // The load actually exercised the kernel: syscalls happened on every
  // workload task and softirq work was executed somewhere.
  std::uint64_t syscalls = 0;
  for (const auto& t : p.kernel().tasks()) syscalls += t->syscalls;
  EXPECT_GT(syscalls, 1000u);
}

TEST(Smoke, RealfeelVanillaUnderLoad) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::vanilla_2_4_20(), 11);
  workload::StressKernel{}.install(p);
  rt::RealfeelTest::Params rp;
  rp.samples = 20'000;
  rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);
  p.boot();
  test.start();
  p.run_for(30_s);
  EXPECT_TRUE(test.done()) << "collected " << test.collected();
  EXPECT_GT(test.latencies().count(), 0u);
}

TEST(Smoke, RcimShieldedRedHawk) {
  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                     config::KernelConfig::redhawk_1_4(), 13);
  workload::StressKernel{}.install(p);
  rt::RcimTest::Params rp;
  rp.samples = 10'000;
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest test(p.kernel(), p.rcim_driver(), rp);
  p.boot();
  p.shield().dedicate_cpu(1, test.task(), p.rcim_device().irq());
  test.start();
  p.run_for(30_s);
  EXPECT_TRUE(test.done()) << "collected " << test.collected();
  // Shielded RCIM latency should be tens of microseconds, worst case.
  EXPECT_LT(test.latencies().max(), 100_us)
      << "max latency " << sim::format_duration(test.latencies().max());
}

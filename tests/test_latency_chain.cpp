// End-to-end latency-chain tracing: the kernel's emit sites must assemble,
// for each RT measurement app, a chain whose segments partition the
// recorded worst-case latency exactly — the §6.2-style decomposition of
// *why* a sample was slow. Also covers the /proc/latency files and the
// JSON exporter fed by the same data.
#include <gtest/gtest.h>

#include <string>

#include "kernel/trace_export.h"
#include "kernel_test_util.h"
#include "rt/cyclictest.h"
#include "rt/rcim_test.h"
#include "rt/realfeel_test.h"
#include "workload/stress_kernel.h"

using namespace testutil;
using namespace sim::literals;

namespace {

// Every chain invariant the tracer guarantees by construction, asserted on
// a chain that came out of a real run.
void expect_well_formed(const sim::LatencyChain& c) {
  ASSERT_FALSE(c.segments.empty());
  EXPECT_EQ(c.segments.front().begin, c.start);
  EXPECT_EQ(c.segments.back().end, c.end);
  for (std::size_t i = 1; i < c.segments.size(); ++i) {
    EXPECT_EQ(c.segments[i].begin, c.segments[i - 1].end);
  }
  // The acceptance bar is "segments sum within 1% of the recorded
  // latency"; the partition construction makes the sum *exact*.
  EXPECT_EQ(c.segment_total(), c.total());
}

}  // namespace

TEST(LatencyChain, RealfeelWorstSampleDecomposesExactly) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  auto p = redhawk_rig(301);
  p->engine().chain_tracer().enable();
  rt::RealfeelTest::Params rp;
  rp.samples = 2000;
  rp.affinity = hw::CpuMask::single(1);
  rt::RealfeelTest test(p->kernel(), p->rtc_driver(), rp);
  p->boot();
  p->shield().dedicate_cpu(1, test.task(), p->rtc_device().irq());
  test.start();
  p->run_for(5_s);
  ASSERT_TRUE(test.done());

  ASSERT_TRUE(test.worst_chain().has_value());
  const sim::LatencyChain& c = *test.worst_chain();
  expect_well_formed(c);
  // The chain starts at the device raise and ends at the reader's return:
  // exactly the worst wake-latency sample.
  EXPECT_EQ(c.origin.substr(0, 3), "irq");
  EXPECT_EQ(c.segments.front().kind, sim::SegmentKind::kIrqRaise);
  EXPECT_EQ(c.total(), test.wake_latencies().max());
  // The wakeup must have crossed the scheduler.
  EXPECT_GT(c.total_for(sim::SegmentKind::kContextSwitch), 0u);
}

TEST(LatencyChain, RealfeelUnderStressStillPartitionsExactly) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  auto p = vanilla_rig(302);
  workload::StressKernel{}.install(*p);
  p->engine().chain_tracer().enable();
  rt::RealfeelTest::Params rp;
  rp.samples = 2000;
  rt::RealfeelTest test(p->kernel(), p->rtc_driver(), rp);
  p->boot();
  test.start();
  p->run_for(5_s);
  ASSERT_TRUE(test.done());

  ASSERT_TRUE(test.worst_chain().has_value());
  const sim::LatencyChain& c = *test.worst_chain();
  expect_well_formed(c);
  EXPECT_EQ(c.segments.front().kind, sim::SegmentKind::kIrqRaise);
  // The chain measures from the raise that actually woke the reader. When
  // the contended kernel delays the reader past further RTC periods, the
  // wake_latencies metric resets to the *newest* fire while the chain keeps
  // the full wakeup-to-run story — so the chain can only be the longer of
  // the two.
  EXPECT_GE(c.total(), test.wake_latencies().min());
}

TEST(LatencyChain, RcimWorstSampleDecomposesWithoutBkl) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  auto p = redhawk_rig(303);
  p->engine().chain_tracer().enable();
  rt::RcimTest::Params rp;
  rp.samples = 2000;
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest test(p->kernel(), p->rcim_driver(), rp);
  p->boot();
  p->shield().dedicate_cpu(1, test.task(), p->rcim_device().irq());
  test.start();
  p->run_for(5_s);
  ASSERT_TRUE(test.done());

  ASSERT_TRUE(test.worst_chain().has_value());
  const sim::LatencyChain& c = *test.worst_chain();
  expect_well_formed(c);
  EXPECT_EQ(c.segments.front().kind, sim::SegmentKind::kIrqRaise);
  EXPECT_EQ(c.total(), test.true_latencies().max());
  // §6.3: the RCIM wait path sets the multithreaded-driver flag, so the
  // wakeup never spins on the BKL — the reason its worst case stays tens
  // of microseconds where /dev/rtc's reaches milliseconds.
  for (const sim::ChainSegment& s : c.segments) {
    EXPECT_NE(s.detail, "BKL");
  }
}

TEST(LatencyChain, CyclictestChainsOriginateAtTheKernelTimer) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  auto p = redhawk_rig(304);
  p->engine().chain_tracer().enable();
  rt::CyclicTest::Params cp;
  cp.period = 1_ms;
  cp.cycles = 2000;
  cp.affinity = hw::CpuMask::single(1);
  rt::CyclicTest test(p->kernel(), cp);
  p->boot();
  p->shield().shield_all(hw::CpuMask::single(1));
  test.start();
  p->run_for(5_s);
  ASSERT_TRUE(test.done());

  ASSERT_TRUE(test.worst_chain().has_value());
  const sim::LatencyChain& c = *test.worst_chain();
  expect_well_formed(c);
  EXPECT_EQ(c.origin, "ktimer");
  // The 2.4 timer wheel's expiry and the wakeup share one event, so the
  // kTimerExpiry segment is zero-width and elided; the chain is pure
  // scheduling latency — no device interrupt appears anywhere in it.
  EXPECT_EQ(c.total_for(sim::SegmentKind::kIrqRaise), 0u);
  EXPECT_EQ(c.total_for(sim::SegmentKind::kIrqHandler), 0u);
  EXPECT_GT(c.total_for(sim::SegmentKind::kContextSwitch), 0u);
  EXPECT_LE(c.total(), test.latencies().max());
}

TEST(LatencyChain, ProcLatencyFilesExposePerCpuCounters) {
  auto p = vanilla_rig(305);
  workload::StressKernel{}.install(*p);
  p->boot();
  p->run_for(2_s);
  auto& fs = p->kernel().procfs();
  for (int cpu = 0; cpu < 2; ++cpu) {
    const auto text = fs.read("/proc/latency/cpu" + std::to_string(cpu));
    ASSERT_TRUE(text.has_value()) << "cpu" << cpu;
    EXPECT_NE(text->find("spin_wait_ns"), std::string::npos);
    EXPECT_NE(text->find("bkl_hold_ns"), std::string::npos);
    EXPECT_NE(text->find("irq_off_max_ns"), std::string::npos);
    EXPECT_NE(text->find("preempt_off_max_ns"), std::string::npos);
  }
  const auto locks = fs.read("/proc/latency/locks");
  ASSERT_TRUE(locks.has_value());
  EXPECT_NE(locks->find("lock"), std::string::npos);
  // The stress kernel's syscall soup takes the BKL within the first couple
  // of seconds, so the contended-lock table is not empty.
  EXPECT_NE(locks->find("BKL"), std::string::npos);
}

TEST(LatencyChain, JsonReportCarriesCountersAndChains) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  auto p = redhawk_rig(306);
  p->engine().chain_tracer().enable();
  rt::RealfeelTest::Params rp;
  rp.samples = 500;
  rp.affinity = hw::CpuMask::single(1);
  rt::RealfeelTest test(p->kernel(), p->rtc_driver(), rp);
  p->boot();
  p->shield().dedicate_cpu(1, test.task(), p->rtc_device().irq());
  test.start();
  p->run_for(3_s);
  ASSERT_TRUE(test.done());
  ASSERT_TRUE(test.worst_chain().has_value());

  const std::string json = kernel::latency_report_json(
      p->kernel(), {kernel::NamedChain{"realfeel", *test.worst_chain()}});
  for (const char* key :
       {"\"sim_time_ns\"", "\"cpus\"", "\"spin_wait_ns\"", "\"bkl_hold_ns\"",
        "\"locks\"", "\"tracer\"", "\"chains\"", "\"realfeel\"",
        "\"irq-raise\"", "\"total_ns\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Structural sanity: braces and brackets balance.
  int depth = 0;
  for (const char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

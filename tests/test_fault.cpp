// The fault layer: plan JSON round-trips and validation, injector
// determinism and stats accounting, the empty-plan-is-free contract, and the
// headline robustness claim — a shielded CPU's max latency stays bounded
// under hostile-device fault injection while the unshielded max blows up.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "config/experiment.h"
#include "config/json.h"
#include "config/platform.h"
#include "config/scenario.h"
#include "config/scenario_runner.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "hw/interrupt_controller.h"
#include "kernel/kernel.h"
#include "sim/time.h"

using namespace sim::literals;

namespace {

fault::FaultSpec make(fault::FaultKind kind) {
  fault::FaultSpec f;
  f.kind = kind;
  return f;
}

config::ScenarioSpec spec_of(const char* name) {
  const auto* s = config::ScenarioRegistry::builtin().find(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

/// A plan exercising every FaultKind with every optional field off-default.
fault::FaultPlan kitchen_sink_plan() {
  fault::FaultPlan plan;
  auto storm = make(fault::FaultKind::kIrqStorm);
  storm.irq = hw::kIrqNic;
  storm.rate_hz = 1000.0;
  storm.start = 1 * sim::kMillisecond;
  storm.duration = 5 * sim::kMillisecond;
  plan.faults.push_back(storm);
  auto spurious = make(fault::FaultKind::kSpuriousIrq);
  spurious.irq = hw::kIrqDisk;
  spurious.rate_hz = 50.0;
  plan.faults.push_back(spurious);
  auto lost = make(fault::FaultKind::kLostIrq);
  lost.irq = hw::kIrqDisk;
  lost.probability = 0.5;
  plan.faults.push_back(lost);
  auto dup = make(fault::FaultKind::kDuplicateIrq);
  dup.irq = hw::kIrqNic;
  dup.probability = 0.25;
  plan.faults.push_back(dup);
  auto stall = make(fault::FaultKind::kCpuStall);
  stall.rate_hz = 10.0;
  stall.min_ns = 10'000;
  stall.max_ns = 50'000;
  stall.cpu = 1;
  plan.faults.push_back(stall);
  auto drift = make(fault::FaultKind::kClockDrift);
  drift.drift = 0.001;
  plan.faults.push_back(drift);
  auto delay = make(fault::FaultKind::kDeviceDelay);
  delay.device = "disk";
  delay.probability = 0.3;
  delay.min_ns = 1'000'000;
  delay.max_ns = 4'000'000;
  plan.faults.push_back(delay);
  auto flood = make(fault::FaultKind::kSoftirqFlood);
  flood.rate_hz = 200.0;
  flood.work_ns = 20'000;
  flood.cpu = 0;
  plan.faults.push_back(flood);
  auto holder = make(fault::FaultKind::kLockHolderDelay);
  holder.lock = "dcache";
  holder.rate_hz = 20.0;
  holder.min_ns = 100'000;
  holder.max_ns = 400'000;
  plan.faults.push_back(holder);
  return plan;
}

}  // namespace

// ---- plan serialization -----------------------------------------------------

TEST(FaultPlan, JsonRoundTripIsIdentityForEveryKind) {
  const auto plan = kitchen_sink_plan();
  const auto dumped = plan.to_json().dump();
  const auto back =
      fault::FaultPlan::from_json(config::json::Value::parse(dumped));
  EXPECT_EQ(back.to_json().dump(), dumped);
  ASSERT_EQ(back.faults.size(), plan.faults.size());
  EXPECT_NO_THROW(back.validate("round-trip"));
}

TEST(FaultPlan, KindTokensRoundTrip) {
  for (auto kind :
       {fault::FaultKind::kIrqStorm, fault::FaultKind::kSpuriousIrq,
        fault::FaultKind::kLostIrq, fault::FaultKind::kDuplicateIrq,
        fault::FaultKind::kCpuStall, fault::FaultKind::kClockDrift,
        fault::FaultKind::kDeviceDelay, fault::FaultKind::kSoftirqFlood,
        fault::FaultKind::kLockHolderDelay}) {
    EXPECT_EQ(fault::fault_kind_from(fault::to_string(kind)), kind);
  }
  EXPECT_THROW((void)fault::fault_kind_from("meteor-strike"),
               std::runtime_error);
}

TEST(FaultPlan, FromJsonRejectsUnknownKeysAndMissingKind) {
  auto v = make(fault::FaultKind::kIrqStorm).to_json();
  v.set("not_a_field", 1);
  EXPECT_THROW((void)fault::FaultSpec::from_json(v), std::runtime_error);
  EXPECT_THROW(
      (void)fault::FaultSpec::from_json(config::json::Value::object()),
      std::runtime_error);
}

TEST(FaultPlan, ValidateEnforcesPerKindRequirements) {
  const auto expect_invalid = [](fault::FaultSpec f, const char* what) {
    fault::FaultPlan plan;
    plan.faults.push_back(std::move(f));
    EXPECT_THROW(plan.validate("t"), std::runtime_error) << what;
  };
  expect_invalid(make(fault::FaultKind::kIrqStorm), "storm without irq/rate");
  auto bad_irq = make(fault::FaultKind::kIrqStorm);
  bad_irq.irq = hw::kMaxIrq;
  bad_irq.rate_hz = 10.0;
  expect_invalid(bad_irq, "irq out of range");
  auto p0 = make(fault::FaultKind::kLostIrq);
  p0.irq = hw::kIrqDisk;
  expect_invalid(p0, "probability 0");
  auto inverted = make(fault::FaultKind::kCpuStall);
  inverted.rate_hz = 1.0;
  inverted.min_ns = 100;
  inverted.max_ns = 50;
  expect_invalid(inverted, "min > max");
  auto bad_dev = make(fault::FaultKind::kDeviceDelay);
  bad_dev.device = "teletype";
  bad_dev.probability = 0.5;
  bad_dev.min_ns = 1;
  bad_dev.max_ns = 2;
  expect_invalid(bad_dev, "unknown device");
  auto bad_lock = make(fault::FaultKind::kLockHolderDelay);
  bad_lock.lock = "no-such-lock";
  bad_lock.rate_hz = 1.0;
  bad_lock.min_ns = 1;
  bad_lock.max_ns = 2;
  expect_invalid(bad_lock, "unknown lock");
  auto bad_drift = make(fault::FaultKind::kClockDrift);
  bad_drift.drift = -1.5;
  expect_invalid(bad_drift, "drift <= -1");
}

TEST(FaultPlan, ValidateNamesTheScenarioAndFault) {
  fault::FaultPlan plan;
  plan.faults.push_back(make(fault::FaultKind::kSoftirqFlood));
  try {
    plan.validate("my-scenario");
    FAIL() << "expected validate to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("my-scenario"), std::string::npos) << msg;
    EXPECT_NE(msg.find("softirq-flood"), std::string::npos) << msg;
  }
}

TEST(FaultPlan, RidesOnScenarioSpecJsonAndDigest) {
  auto s = spec_of("fig6");
  const auto base_digest = s.digest();
  s.faults = kitchen_sink_plan();
  const auto dumped = s.to_json().dump();
  const auto back =
      config::ScenarioSpec::from_json(config::json::Value::parse(dumped));
  EXPECT_EQ(back.to_json().dump(), dumped);
  EXPECT_NE(s.digest(), base_digest);  // a plan is part of the spec identity
  // An empty plan is NOT part of the identity: digests (and thus cache keys)
  // of every pre-fault spec are unchanged.
  s.faults = fault::FaultPlan{};
  EXPECT_EQ(s.digest(), base_digest);
}

// ---- injector ---------------------------------------------------------------

namespace {

/// Boot a small loaded platform, arm `plan` over `horizon`, run, and return
/// the injector's stats.
fault::Injector::Stats run_plan(const fault::FaultPlan& plan,
                                sim::Duration horizon, std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::redhawk_1_4(), seed);
  p.boot();
  fault::Injector injector(p, plan, seed);
  injector.arm(p.engine().now() + horizon);
  EXPECT_TRUE(injector.armed());
  p.run_for(horizon);
  return injector.stats();
}

}  // namespace

TEST(Injector, StormAndSpuriousRaiseRegisteredLines) {
  fault::FaultPlan plan;
  auto storm = make(fault::FaultKind::kIrqStorm);
  storm.irq = hw::kIrqNic;
  storm.rate_hz = 5000.0;
  plan.faults.push_back(storm);
  auto spurious = make(fault::FaultKind::kSpuriousIrq);
  spurious.irq = hw::kIrqDisk;
  spurious.rate_hz = 2000.0;
  plan.faults.push_back(spurious);
  const auto stats = run_plan(plan, 100 * sim::kMillisecond, 7);
  EXPECT_GT(stats.storm_raises, 100u);
  EXPECT_GT(stats.spurious_raises, 50u);
  EXPECT_EQ(stats.skipped_specs, 0u);
}

TEST(Injector, StormOnUnregisteredLineIsSkippedNotFatal) {
  fault::FaultPlan plan;
  auto storm = make(fault::FaultKind::kIrqStorm);
  storm.irq = 3;  // nothing claims line 3 on this machine
  storm.rate_hz = 1000.0;
  plan.faults.push_back(storm);
  const auto stats = run_plan(plan, 10 * sim::kMillisecond, 7);
  EXPECT_EQ(stats.storm_raises, 0u);
  EXPECT_EQ(stats.skipped_specs, 1u);
}

TEST(Injector, CpuStallsAreCountedByTheKernel) {
  fault::FaultPlan plan;
  auto stall = make(fault::FaultKind::kCpuStall);
  stall.rate_hz = 1000.0;
  stall.min_ns = 10'000;
  stall.max_ns = 20'000;
  plan.faults.push_back(stall);

  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::redhawk_1_4(), 7);
  p.boot();
  fault::Injector injector(p, plan, 7);
  injector.arm(p.engine().now() + 50 * sim::kMillisecond);
  p.run_for(50 * sim::kMillisecond);
  EXPECT_GT(injector.stats().cpu_stalls, 10u);
  const auto taken =
      p.kernel().cpu(0).smi_stalls + p.kernel().cpu(1).smi_stalls;
  EXPECT_GT(taken, 0u);
  EXPECT_LE(taken, injector.stats().cpu_stalls);
}

TEST(Injector, ClockDriftIsWindowedAndRestored) {
  fault::FaultPlan plan;
  auto drift = make(fault::FaultKind::kClockDrift);
  drift.drift = 0.05;
  drift.start = 10 * sim::kMillisecond;
  drift.duration = 20 * sim::kMillisecond;
  plan.faults.push_back(drift);

  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::redhawk_1_4(), 7);
  p.boot();
  fault::Injector injector(p, plan, 7);
  injector.arm(p.engine().now() + 100 * sim::kMillisecond);
  auto& timer = p.kernel().local_timer();
  p.run_for(15 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(timer.drift(), 0.05);  // inside the window
  p.run_for(30 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(timer.drift(), 0.0);  // restored at window end
}

TEST(Injector, LostAndDuplicateEdgesAreAccounted) {
  fault::FaultPlan plan;
  auto storm = make(fault::FaultKind::kIrqStorm);  // traffic to filter
  storm.irq = hw::kIrqNic;
  storm.rate_hz = 5000.0;
  plan.faults.push_back(storm);
  auto lost = make(fault::FaultKind::kLostIrq);
  lost.irq = hw::kIrqNic;
  lost.probability = 0.5;
  plan.faults.push_back(lost);
  const auto stats = run_plan(plan, 100 * sim::kMillisecond, 7);
  EXPECT_GT(stats.lost_irqs, 50u);

  plan.faults[1].kind = fault::FaultKind::kDuplicateIrq;
  const auto stats2 = run_plan(plan, 100 * sim::kMillisecond, 7);
  EXPECT_GT(stats2.duplicated_irqs, 50u);
  EXPECT_EQ(stats2.lost_irqs, 0u);
}

TEST(Injector, StatsSerializeToJson) {
  fault::FaultPlan plan;
  auto flood = make(fault::FaultKind::kSoftirqFlood);
  flood.rate_hz = 1000.0;
  flood.work_ns = 5'000;
  plan.faults.push_back(flood);
  const auto stats = run_plan(plan, 50 * sim::kMillisecond, 7);
  EXPECT_GT(stats.softirq_raises, 10u);
  const auto v = stats.to_json();
  EXPECT_EQ(v.find("softirq_raises")->as_u64(), stats.softirq_raises);
  EXPECT_EQ(v.find("skipped_specs")->as_u64(), 0u);
}

// ---- determinism and the empty-plan contract --------------------------------

TEST(Injector, SameSeedSamePlanIsBitIdentical) {
  auto spec = spec_of("faults-storm-shielded");
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache = false;
  config::ScenarioRunner runner(ro);
  const auto a = runner.run(spec, 42);
  const auto b = runner.run(spec, 42);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

TEST(Injector, EmptyPlanDoesNotPerturbTheRun) {
  // A spec with an empty FaultPlan must produce the bit-identical result of
  // the same spec without one: no injector, no hooks, no RNG draws.
  auto base = spec_of("fig6");
  auto with_empty = base;
  with_empty.faults = fault::FaultPlan{};
  config::ScenarioRunner::Options ro;
  ro.scale = 0.005;
  ro.cache = false;
  config::ScenarioRunner runner(ro);
  EXPECT_EQ(runner.run(base, 9).to_json().dump(),
            runner.run(with_empty, 9).to_json().dump());
}

// ---- the robustness claim ---------------------------------------------------

TEST(PaperClaims, ShieldedMaxStaysBoundedUnderHostileDevices) {
  // The fault-family mirror of Figure 5 vs 6: under a NIC interrupt storm,
  // a softirq flood and disk timeouts, the shielded CPU's response stays
  // sub-millisecond (graceful degradation: disk timeouts still reach it
  // through the shared fs/BKL paths) while the unshielded distribution
  // collapses — its miss fraction above 100us blows up by >= 10x.
  config::ScenarioRunner::Options ro;
  ro.scale = 0.02;
  config::ScenarioRunner runner(ro);
  const auto shielded = runner.run(spec_of("faults-storm-shielded"), 2003);
  const auto unshielded = runner.run(spec_of("faults-storm-unshielded"), 2003);
  const auto& sh = shielded.probe.primary;
  const auto& un = unshielded.probe.primary;
  EXPECT_LT(sh.max(), sim::kMillisecond)
      << "shielded max should degrade gracefully (stay sub-millisecond)";
  const double sh_miss = 1.0 - sh.fraction_below(100 * sim::kMicrosecond);
  const double un_miss = 1.0 - un.fraction_below(100 * sim::kMicrosecond);
  EXPECT_GE(un_miss, 10.0 * std::max(sh_miss, 1e-4))
      << "miss fraction >100us: shielded " << sh_miss << " vs unshielded "
      << un_miss << " (max " << sh.max() << "ns vs " << un.max() << "ns)";
}

TEST(PaperClaims, SmiStallsPunchThroughButStayBounded) {
  // SMIs are unmaskable: the shield cannot stop them, so the max degrades —
  // but only to (stall ceiling + base latency), never unbounded.
  config::ScenarioRunner::Options ro;
  ro.scale = 0.02;
  config::ScenarioRunner runner(ro);
  const auto spec = spec_of("faults-smi-shielded");
  sim::Duration ceiling = 0;
  for (const auto& f : spec.faults.faults) {
    if (f.kind == fault::FaultKind::kCpuStall) ceiling = f.max_ns;
  }
  ASSERT_GT(ceiling, 0);
  const auto r = runner.run(spec, 2003);
  const auto baseline = runner.run(spec_of("faults-lost-dup-shielded"), 2003);
  EXPECT_GT(r.probe.primary.max(), baseline.probe.primary.max())
      << "stalls should be visible on the shielded CPU";
  EXPECT_LT(r.probe.primary.max(), ceiling + 100 * sim::kMicrosecond)
      << "and bounded by the stall ceiling";
}

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/summary.h"
#include "sim/rng.h"

using metrics::Summary;

TEST(Summary, EmptyState) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(7.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MatchesDirectComputation) {
  const std::vector<double> xs = {3.0, 1.5, 4.25, -2.0, 10.0, 0.0, 7.75};
  Summary s;
  double sum = 0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  const double var = m2 / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(Summary, MergeEqualsSequential) {
  sim::Rng rng(77);
  Summary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summary, DurationHelpers) {
  Summary s;
  s.add_duration(100);
  s.add_duration(300);
  EXPECT_EQ(s.min_duration(), 100u);
  EXPECT_EQ(s.max_duration(), 300u);
  EXPECT_EQ(s.mean_duration(), 200u);
}

// Edge cases and contract checks across the stack.
#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

TEST(EdgeCases, SchedulingIntoThePastDies) {
  sim::Engine e;
  e.schedule(100_ns, [] {});
  e.run_until(1_us);
  EXPECT_DEATH(e.schedule_at(10, [] {}), "past");
}

TEST(EdgeCases, ZeroWorkOpsAreSkipped) {
  auto p = vanilla_rig(211);
  std::vector<sim::Time> marks;
  kernel::ProgramBuilder b;
  b.work(0, 0.3).work(0, 0.3).work(1_us, 0.3).work(0, 0.3);
  spawn_scripted(p->kernel(), {.name = "t"},
                 {kernel::SyscallAction{"zeros", std::move(b).build()}},
                 &marks);
  p->boot();
  p->run_for(100_ms);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_LT(marks[1] - marks[0], 20_us);
}

TEST(EdgeCases, EmptySyscallProgramCompletes) {
  auto p = vanilla_rig(212);
  std::vector<sim::Time> marks;
  spawn_scripted(p->kernel(), {.name = "t"},
                 {kernel::SyscallAction{"nop", kernel::KernelProgram{}}},
                 &marks);
  p->boot();
  p->run_for(100_ms);
  ASSERT_EQ(marks.size(), 2u);  // entry+exit costs only
}

TEST(EdgeCases, UnlockByNonHolderDies) {
  auto p = vanilla_rig(213);
  kernel::ProgramBuilder b;
  b.unlock(kernel::LockId::kFs);
  spawn_scripted(p->kernel(), {.name = "bad"},
                 {kernel::SyscallAction{"bad", std::move(b).build()}});
  p->boot();
  EXPECT_DEATH(p->run_for(100_ms), "non-holder");
}

TEST(EdgeCases, SyscallExitHoldingLockDies) {
  auto p = vanilla_rig(214);
  kernel::ProgramBuilder b;
  b.lock(kernel::LockId::kFs);  // never unlocked
  spawn_scripted(p->kernel(), {.name = "leaker"},
                 {kernel::SyscallAction{"leak", std::move(b).build()}});
  p->boot();
  EXPECT_DEATH(p->run_for(100_ms), "holding");
}

TEST(EdgeCases, WakeOnEmptyQueueIsLost) {
  auto p = vanilla_rig(215);
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("lonely");
  p->boot();
  k.wake_up_one(wq);  // nobody waiting: must be a harmless no-op
  k.wake_up_all(wq);
  p->run_for(10_ms);
  EXPECT_TRUE(k.wait_queue(wq).empty());
}

TEST(EdgeCases, WakeUpAllWakesEveryWaiter) {
  auto p = vanilla_rig(216);
  auto& k = p->kernel();
  const auto wq = k.create_wait_queue("herd");
  std::vector<sim::Time> m1, m2, m3;
  for (auto* m : {&m1, &m2, &m3}) {
    spawn_scripted(k, {.name = "w"},
                   {kernel::SyscallAction{
                       "wait", kernel::ProgramBuilder{}.block(wq).build()}},
                   m);
  }
  p->boot();
  p->engine().schedule(20_ms, [&] { k.wake_up_all(wq); });
  p->run_for(1_s);
  EXPECT_EQ(m1.size(), 2u);
  EXPECT_EQ(m2.size(), 2u);
  EXPECT_EQ(m3.size(), 2u);
}

TEST(EdgeCases, RtcPathSurvivesBackToBackReads) {
  // Reads faster than the interrupt rate just block longer; nothing leaks.
  auto p = vanilla_rig(217);
  auto& k = p->kernel();
  p->rtc_device().set_rate_hz(8192);  // max hardware rate
  auto count = std::make_shared<int>(0);
  workload::spawn(k, {.name = "fastreader"},
                  [count, &p](kernel::Kernel&, kernel::Task&) -> kernel::Action {
                    if (++*count > 3000) return kernel::ExitAction{};
                    return kernel::SyscallAction{
                        "read", p->rtc_driver().read_program()};
                  });
  p->boot();
  p->rtc_device().start_periodic();
  p->run_for(2_s);
  EXPECT_GT(*count, 3000);
}

TEST(EdgeCases, ShieldMaskClippedToMachine) {
  auto p = redhawk_rig(218);
  p->boot();
  // Writing a mask with nonexistent CPUs clips to the machine.
  p->shield().set_process_shield(hw::CpuMask(0xFF));
  EXPECT_EQ(p->shield().process_shield(), p->topology().all_cpus());
  p->shield().unshield_all();
}

TEST(EdgeCases, FullMachineShieldKeepsPinnedTasksRunnable) {
  // Shielding EVERY CPU: ordinary tasks' affinity (all CPUs) is a subset of
  // the shield, so by §3 they keep their mask — nothing is stranded.
  auto p = redhawk_rig(219);
  auto& t = spawn_hog(p->kernel(), "bg");
  p->boot();
  p->shield().set_process_shield(p->topology().all_cpus());
  p->run_for(100_ms);
  EXPECT_FALSE(t.effective_affinity.empty());
  EXPECT_GT(t.utime, 0u);
}

TEST(EdgeCases, TimesliceSurvivesManyShortSleeps) {
  // Rapid sleep/wake cycling must not corrupt scheduler state.
  auto p = redhawk_rig(220);
  auto count = std::make_shared<int>(0);
  workload::spawn(p->kernel(), {.name = "napper"},
                  [count](kernel::Kernel&, kernel::Task&) -> kernel::Action {
                    if (++*count > 2000) return kernel::ExitAction{};
                    return kernel::SleepAction{500_us};
                  });
  p->boot();
  p->run_for(5_s);
  EXPECT_GT(*count, 2000);
}

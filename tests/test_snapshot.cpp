// The snapshot/fork layer: StateArena allocation semantics, Snapshot
// capture/restore, engine-level restore determinism, whole-registry
// bit-identity of snapshot-at-t/restore/continue versus uninterrupted
// runs, and ScenarioRunner prefix reuse (fork determinism, hit accounting,
// child-owned flight recordings).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "config/experiment.h"
#include "config/scenario_runner.h"
#include "sim/arena.h"
#include "sim/engine.h"
#include "sim/rng.h"
#include "sim/snapshot.h"

namespace {

config::ScenarioSpec spec_of(const char* name) {
  const auto* s = config::ScenarioRegistry::builtin().find(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

/// Force `p` to escape the optimizer's view. Snapshot::restore rewrites
/// arena memory through memcpy in another translation unit; a pointer the
/// compiler can prove never escaped would let it assume the opaque call
/// cannot alias the allocation and fold loads across the restore. (Real
/// model objects always escape — into the engine's event queue at least —
/// so only these synthetic unit tests need the barrier.)
void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

// gtest assertions must not run while an arena scope is active on this
// thread: a *failing* EXPECT records its message in gtest's process-lifetime
// result list, and those strings would land in the arena, get rewound with
// it, and blow up at exit. Tests below collect facts under the scope and
// assert after it closes.

}  // namespace

// ---- StateArena -------------------------------------------------------------

TEST(StateArena, ServesAndRoutesAllocationsWhileActive) {
  sim::PooledArena arena;
  void* outside = ::operator new(64);
  void* inside = nullptr;
  bool inside_contained = false;
  bool outside_contained = true;
  {
    sim::StateArena::Scope scope(*arena);
    inside = ::operator new(64);
    inside_contained = arena->contains(inside);
    outside_contained = arena->contains(outside);
    // Frees of foreign (malloc) pointers route past the arena even while
    // it is active.
    ::operator delete(outside);
  }
  EXPECT_TRUE(inside_contained);
  EXPECT_FALSE(outside_contained);
  // Arena blocks find their way home after the scope closed.
  EXPECT_EQ(arena->live_blocks(), 1u);
  ::operator delete(inside);
  EXPECT_EQ(arena->live_blocks(), 0u);
}

TEST(StateArena, FreelistReusesBlocksOfTheSameClass) {
  sim::PooledArena arena;
  void* a = nullptr;
  void* b = nullptr;
  {
    sim::StateArena::Scope scope(*arena);
    a = arena->allocate(48, 16);
    arena->deallocate(a);
    b = arena->allocate(40, 16);  // same 64-byte class
    arena->deallocate(b);
  }
  EXPECT_EQ(a, b);
}

TEST(StateArena, ScopePauseTemporarilyRevertsToMalloc) {
  sim::PooledArena arena;
  bool in_contained = false;
  bool out_contained = true;
  {
    sim::StateArena::Scope scope(*arena);
    void* in = ::operator new(32);
    scope.pause();
    void* out = ::operator new(32);
    scope.resume();
    in_contained = arena->contains(in);
    out_contained = arena->contains(out);
    ::operator delete(in);
    ::operator delete(out);
  }
  EXPECT_TRUE(in_contained);
  EXPECT_FALSE(out_contained);
}

TEST(StateArena, NestedScopesRestoreThePreviousArena) {
  sim::PooledArena outer;
  sim::PooledArena inner;
  const sim::StateArena* seen_inner = nullptr;
  const sim::StateArena* seen_outer = nullptr;
  {
    sim::StateArena::Scope so(*outer);
    {
      sim::StateArena::Scope si(*inner);
      seen_inner = sim::StateArena::current();
    }
    seen_outer = sim::StateArena::current();
  }
  EXPECT_EQ(seen_inner, inner.get());
  EXPECT_EQ(seen_outer, outer.get());
  EXPECT_EQ(sim::StateArena::current(), nullptr);
}

TEST(Snapshot, RestoreRewindsBytesAndCursor) {
  sim::PooledArena arena;
  std::size_t used_at_capture = 0;
  std::size_t used_mutated = 0;
  std::size_t used_restored = 0;
  std::size_t size_restored = 0;
  int elem_restored = 0;
  {
    sim::StateArena::Scope scope(*arena);
    auto* v = new std::vector<int>{1, 2, 3};
    escape(v);
    const sim::Snapshot snap = sim::Snapshot::capture(*arena);
    used_at_capture = arena->used();
    v->assign(100, 7);  // mutate + reallocate beyond the mark
    escape(new std::string(256, 'x'));
    used_mutated = arena->used();
    snap.restore(*arena);  // string's memory rewound; its dtor must not run
    used_restored = arena->used();
    size_restored = v->size();
    elem_restored = (*v)[2];
    delete v;
  }
  EXPECT_GT(used_mutated, used_at_capture);
  EXPECT_EQ(used_restored, used_at_capture);
  EXPECT_EQ(size_restored, 3u);
  EXPECT_EQ(elem_restored, 3);
}

// ---- engine-level restore determinism ---------------------------------------

namespace {

/// A self-rescheduling workload over the engine: hops its own counter
/// forward at RNG-drawn intervals. Everything (engine, counter, closure
/// captures) lives in the arena.
struct Hopper {
  sim::Engine* eng;
  sim::Rng rng;
  std::uint64_t sum = 0;
  void hop() {
    sum += rng.uniform(1, 100);
    eng->schedule(static_cast<sim::Duration>(rng.uniform(10, 1000)),
                  [this] { hop(); });
  }
};

}  // namespace

TEST(Snapshot, EngineContinuesBitIdenticallyAfterRestore) {
  sim::PooledArena arena;
  sim::Time now_restored = 0;
  std::uint64_t sum_continued = 0, sum_resumed = 0;
  std::uint64_t events_continued = 0, events_resumed = 0;
  {
    sim::StateArena::Scope scope(*arena);
    auto* eng = new sim::Engine(2024);
    auto* h = new Hopper{eng, eng->rng().split()};
    escape(eng);
    escape(h);
    h->hop();
    eng->run_until(50'000);

    const sim::Snapshot snap = sim::Snapshot::capture(*arena);
    eng->run_until(200'000);
    sum_continued = h->sum;
    events_continued = eng->events_executed();

    snap.restore(*arena);
    now_restored = eng->now();
    eng->run_until(200'000);
    sum_resumed = h->sum;
    events_resumed = eng->events_executed();

    snap.restore(*arena);
    delete h;
    delete eng;
  }
  EXPECT_EQ(now_restored, 50'000);
  EXPECT_EQ(sum_resumed, sum_continued);
  EXPECT_EQ(events_resumed, events_continued);
  EXPECT_GT(sum_continued, 0u);
}

// ---- seed-domain separation (regression: retry/fork/batch collisions) -------

TEST(SeedDomains, AllNamespacesAreMutuallyDisjoint) {
  const std::uint64_t root = 2003;
  // The adversarial labels: a batch spec literally named like a retry tag
  // or a fan-out label must not share a stream with the real thing.
  const std::vector<std::string> labels = {"retry#1", "foo#0", "foo",
                                           "digest#7", ""};
  const std::vector<sim::SeedDomain> domains = {
      sim::SeedDomain::kGeneric, sim::SeedDomain::kBatch,
      sim::SeedDomain::kRetry, sim::SeedDomain::kFanout,
      sim::SeedDomain::kFork};
  std::map<std::uint64_t, std::pair<int, std::string>> seen;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    for (const auto& label : labels) {
      const std::uint64_t s = sim::derive_seed(root, domains[d], label);
      const auto [it, inserted] =
          seen.emplace(s, std::make_pair(static_cast<int>(d), label));
      EXPECT_TRUE(inserted)
          << "collision: domain " << d << " label '" << label
          << "' vs domain " << it->second.first << " label '"
          << it->second.second << "'";
    }
  }
  // The two-argument overload stays byte-compatible with kGeneric: batch
  // results from before the domain split that used explicit labels keep
  // deriving identically.
  EXPECT_EQ(sim::derive_seed(root, "foo"),
            sim::derive_seed(root, sim::SeedDomain::kGeneric, "foo"));
}

// ---- whole-registry bit identity --------------------------------------------

TEST(SnapshotBitIdentity, EveryBuiltinSpecSurvivesMidRunRestore) {
  config::ScenarioRunner::Options opt;
  opt.scale = 0.01;  // smoke scale: full coverage, bounded runtime
  opt.cache = false;
  config::ScenarioRunner runner(opt);
  for (const auto& spec : config::ScenarioRegistry::builtin().all()) {
    const auto check = runner.snapshot_bit_identity(spec, 2003);
    EXPECT_TRUE(check.identical)
        << spec.name << ": continued " << (check.baseline == check.continued)
        << ", resumed " << (check.baseline == check.resumed);
    EXPECT_GT(check.snapshot_bytes, 0u) << spec.name;
  }
}

// The oob stage keeps live state outside the kernel proper (pipeline
// contexts, captured timers, stall counters). All of it is allocated while
// the arena is active, so a mid-run snapshot/restore of an oob scenario
// must be as bit-identical as the in-band ones the loop above also covers —
// this names the interop explicitly so a regression points here first.
TEST(SnapshotBitIdentity, OobMechanismSurvivesMidRunRestore) {
  config::ScenarioRunner::Options opt;
  opt.scale = 0.01;
  opt.cache = false;
  config::ScenarioRunner runner(opt);
  for (const char* name : {"mech-rcim-oob", "mech-cyclic-oob"}) {
    const auto spec = spec_of(name);
    ASSERT_EQ(spec.mechanism, "oob") << name;
    const auto check = runner.snapshot_bit_identity(spec, 2017);
    EXPECT_TRUE(check.identical)
        << name << ": continued " << (check.baseline == check.continued)
        << ", resumed " << (check.baseline == check.resumed);
    EXPECT_GT(check.snapshot_bytes, 0u) << name;
  }
}

// ---- fork/prefix reuse ------------------------------------------------------

namespace {

config::ScenarioRunner::Options prefix_options() {
  config::ScenarioRunner::Options opt;
  opt.scale = 0.01;
  opt.cache = false;  // observe real runs, not cache hits
  opt.prefix_reuse = true;
  return opt;
}

}  // namespace

TEST(PrefixReuse, ForkedRunsAreDeterministicAcrossRunnersAndOrder) {
  const auto specs = config::ScenarioRegistry::builtin().all();
  // A family sharing one prefix: same machine/kernel/workloads, different
  // shield plans (the registry's ablation pairs are exactly this shape).
  const auto a = spec_of("fig2");
  const auto b = spec_of("fig3");

  config::ScenarioRunner r1(prefix_options());
  const auto a1 = r1.run(a, 7).to_json().dump();
  const auto b1 = r1.run(b, 7).to_json().dump();

  // Fresh runner, opposite order: b first, so b forks from a newly-built
  // prefix instead of a's. Results must not care.
  config::ScenarioRunner r2(prefix_options());
  const auto b2 = r2.run(b, 7).to_json().dump();
  const auto a2 = r2.run(a, 7).to_json().dump();
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(b1, b2);

  // Same spec, different seeds: different runs.
  config::ScenarioRunner r3(prefix_options());
  EXPECT_NE(r3.run(a, 7).to_json().dump(), r3.run(a, 8).to_json().dump());
  (void)specs;
}

TEST(PrefixReuse, SiblingsShareOnePrefixAndHitCountsSaySo) {
  const auto a = spec_of("fig2");
  const auto b = spec_of("fig3");
  config::ScenarioRunner runner(prefix_options());
  (void)runner.run(a, 1);
  (void)runner.run(b, 1);
  (void)runner.run(a, 2);
  const auto stats = runner.prefix_stats();
  EXPECT_EQ(stats.misses, 1u);  // one prefix build
  EXPECT_EQ(stats.hits, 2u);    // two forks of it
}

TEST(PrefixReuse, ForkedAndColdRunsNeverShareACacheSlot) {
  const auto spec = spec_of("fig2");
  auto opt = prefix_options();
  opt.cache = true;
  config::ScenarioRunner forked(opt);
  opt.prefix_reuse = false;
  config::ScenarioRunner cold(opt);
  const auto rf = forked.run(spec, 5);
  const auto rc = cold.run(spec, 5);
  EXPECT_FALSE(rf.from_cache);
  EXPECT_FALSE(rc.from_cache);
  // Same spec and seed, but the forked child's streams derive from the
  // fork label — the runs are legitimately different simulations.
  EXPECT_NE(rf.to_json().dump(), rc.to_json().dump());
}

TEST(PrefixReuse, BatchReportGroupsByPrefixAndRecordsReuse) {
  const auto all = config::ScenarioRegistry::builtin().all();
  config::ScenarioRunner runner(prefix_options());
  const auto report = runner.run_batch_report(all, 2003);
  ASSERT_EQ(report.outcomes.size(), all.size());
  for (const auto& o : report.outcomes) {
    EXPECT_TRUE(o.ok()) << o.name << ": " << o.error;
  }
  EXPECT_EQ(report.prefix_hits + report.prefix_misses, all.size());
  EXPECT_GT(report.prefix_hits, 0u);
  // The gate bench_trend.py enforces on the trend log: at least 30% of
  // the builtin registry forks a shared prefix instead of building one.
  const double rate = static_cast<double>(report.prefix_hits) /
                      static_cast<double>(all.size());
  EXPECT_GE(rate, 0.30);
  const auto j = report.to_json();
  ASSERT_NE(j.find("prefix_reuse"), nullptr);
  EXPECT_EQ(j.find("prefix_reuse")->find("hits")->as_u64(),
            report.prefix_hits);

  // Determinism of the whole batch against a fresh runner.
  config::ScenarioRunner again(prefix_options());
  const auto report2 = again.run_batch_report(all, 2003);
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_TRUE(report2.outcomes[i].result.has_value());
    EXPECT_EQ(report.outcomes[i].result->to_json().dump(),
              report2.outcomes[i].result->to_json().dump())
        << all[i].name;
  }
}

TEST(PrefixReuse, BatchResultsMatchSingleRunResults) {
  const auto a = spec_of("fig2");
  const auto b = spec_of("fig3");
  config::ScenarioRunner batch_runner(prefix_options());
  const auto batch = batch_runner.run_batch({a, b}, 2003);
  config::ScenarioRunner single_runner(prefix_options());
  const auto sa = single_runner.run(
      a, sim::derive_seed(2003, sim::SeedDomain::kBatch, a.name));
  const auto sb = single_runner.run(
      b, sim::derive_seed(2003, sim::SeedDomain::kBatch, b.name));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].to_json().dump(), sa.to_json().dump());
  EXPECT_EQ(batch[1].to_json().dump(), sb.to_json().dump());
}

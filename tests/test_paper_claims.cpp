// The paper's headline claims, pinned as regression tests at reduced
// sample counts. These run the same registry scenarios as the bench
// binaries, through the same ScenarioRunner, so a calibration regression
// in the model breaks CI here before anyone re-reads a figure.
#include <gtest/gtest.h>

#include "config/experiment.h"
#include "config/scenario_runner.h"
#include "kernel_test_util.h"

using namespace sim::literals;

namespace {

config::ScenarioResult run(const char* name, double scale,
                           std::uint64_t seed = 2003) {
  const auto* s = config::ScenarioRegistry::builtin().find(name);
  EXPECT_NE(s, nullptr) << name;
  config::ScenarioRunner::Options ro;
  ro.scale = scale;
  config::ScenarioRunner runner(ro);
  return runner.run(*s, seed);
}

/// Determinism scenarios: worst excess over the ideal loop time, as a
/// percentage of the ideal (the figure-1..4 headline number).
double jitter_pct(const config::ScenarioResult& r) {
  return 100.0 * static_cast<double>(r.probe.primary.max()) /
         static_cast<double>(r.probe.ideal);
}

}  // namespace

TEST(PaperClaims, Fig1VanillaHtJitterAbove15Percent) {
  const auto r = run("fig1", 0.4);
  EXPECT_GT(jitter_pct(r), 15.0);  // paper: 26.17 %
  EXPECT_LT(jitter_pct(r), 45.0);
}

TEST(PaperClaims, Fig2ShieldedJitterBelow4Percent) {
  const auto r = run("fig2", 0.4);
  EXPECT_LT(jitter_pct(r), 4.0);  // paper: 1.87 %
  EXPECT_GT(jitter_pct(r), 0.1);  // but not zero: memory contention remains
}

TEST(PaperClaims, Fig3And4AreComparable) {
  // RedHawk unshielded ≈ vanilla no-HT: within 2x of each other, both far
  // above the shielded case.
  const auto f3 = run("fig3", 0.4);
  const auto f4 = run("fig4", 0.4);
  const double j3 = jitter_pct(f3);
  const double j4 = jitter_pct(f4);
  EXPECT_GT(j3, 5.0);
  EXPECT_GT(j4, 5.0);
  EXPECT_LT(j3 / j4, 2.0);
  EXPECT_LT(j4 / j3, 2.0);
}

TEST(PaperClaims, HyperthreadingRoughlyDoublesVanillaJitter) {
  const double j1 = jitter_pct(run("fig1", 0.4));
  const double j4 = jitter_pct(run("fig4", 0.4));
  EXPECT_GT(j1 / j4, 1.4);  // paper ratio: 26.17/13.15 ≈ 2.0
  EXPECT_LT(j1 / j4, 3.5);
}

TEST(PaperClaims, Fig5VanillaWorstCaseIsTensOfMilliseconds) {
  const auto r = run("fig5", 0.05);  // 100k samples
  EXPECT_GT(r.probe.primary.max(), 5_ms);
  EXPECT_LT(r.probe.primary.max(), 95_ms);
  // Majority of responses are still fast — the paper's histogram shape.
  EXPECT_GT(r.probe.primary.fraction_below(100_us), 0.90);
}

TEST(PaperClaims, Fig6ShieldedWorstCaseIsSubMillisecond) {
  const auto r = run("fig6", 0.05);
  EXPECT_LT(r.probe.primary.max(), 1_ms);  // paper: 0.565 ms
  EXPECT_GT(r.probe.primary.fraction_below(100_us), 0.999);
}

TEST(PaperClaims, Fig7RcimGuaranteeUnder100Microseconds) {
  const auto r = run("fig7", 0.02);
  EXPECT_LT(r.probe.primary.max(), 100_us);  // paper: 27 us
  EXPECT_GT(r.probe.primary.min(), 3_us);    // paper: 11 us
  // avg hugs min: the path is constant-cost.
  EXPECT_LT(r.probe.primary.mean(), r.probe.primary.min() * 2);
}

TEST(PaperClaims, PreemptLowlatLandsNearOneMillisecond) {
  // The Red Hat result the paper cites [5]: 1.2 ms worst case.
  const auto r = run("preempt-lowlat", 0.1);
  EXPECT_LT(r.probe.primary.max(), 3_ms);
  EXPECT_GT(r.probe.primary.max(), 50_us);
}

TEST(PaperClaims, ShieldingBeatsEveryUnshieldedConfiguration) {
  const auto f5 = run("fig5", 0.02);
  const auto pl = run("preempt-lowlat", 0.02);
  const auto f6 = run("fig6", 0.02);
  EXPECT_LT(f6.probe.primary.max(), pl.probe.primary.max());
  EXPECT_LT(pl.probe.primary.max(), f5.probe.primary.max());
}

// ---- registry plumbing ------------------------------------------------------

TEST(ScenarioRegistry, AllFiguresRegistered) {
  const auto& reg = config::ScenarioRegistry::builtin();
  for (const char* name :
       {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "preempt-lowlat"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.find("fig99"), nullptr);
  EXPECT_EQ(reg.names().size(), reg.all().size());
  EXPECT_EQ(reg.group("figure").size(), 8u);
}

TEST(ScenarioRegistry, ResultsRenderNonEmpty) {
  const auto* spec = config::ScenarioRegistry::builtin().find("fig7");
  ASSERT_NE(spec, nullptr);
  const auto r = run("fig7", 0.002);
  const std::string s = r.render(*spec);
  EXPECT_NE(s.find(spec->title), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);  // histogram bars
}

TEST(ScenarioRegistry, SameSeedSameResult) {
  const auto a = run("fig6", 0.005, 42);
  const auto b = run("fig6", 0.005, 42);
  EXPECT_EQ(a.probe.primary.max(), b.probe.primary.max());
  EXPECT_EQ(a.events, b.events);
}

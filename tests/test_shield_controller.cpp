// The shield controller: dynamic enable/disable, task migration, IRQ
// re-steering, local-timer disable, the /proc/shield files, and the
// interplay with smp_affinity.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "workload/stress_kernel.h"

using namespace testutil;
using namespace sim::literals;

TEST(ShieldController, RequiresKernelSupport) {
  auto p = vanilla_rig();
  EXPECT_FALSE(p->has_shield());
  EXPECT_DEATH(shield::ShieldController ctl(p->kernel()), "shield support");
}

TEST(ShieldController, ProcessShieldMigratesRunningTask) {
  auto p = redhawk_rig();
  auto& t = spawn_hog(p->kernel(), "bg");  // affinity: all CPUs
  p->boot();
  p->run_for(50_ms);
  const hw::CpuId was_on = t.cpu;
  ASSERT_GE(was_on, 0);
  p->shield().set_process_shield(hw::CpuMask::single(was_on));
  p->run_for(50_ms);
  EXPECT_NE(t.cpu, was_on);
  EXPECT_FALSE(t.effective_affinity.test(was_on));
  EXPECT_EQ(t.user_affinity, p->topology().all_cpus());  // request unchanged
}

TEST(ShieldController, OptedInTaskStaysOnShieldedCpu) {
  auto p = redhawk_rig();
  auto& rt = spawn_hog(p->kernel(), "rt", hw::CpuMask::single(1),
                       kernel::SchedPolicy::kFifo, 70);
  p->boot();
  p->run_for(20_ms);
  p->shield().set_process_shield(hw::CpuMask::single(1));
  p->run_for(50_ms);
  EXPECT_EQ(rt.cpu, 1);
  EXPECT_TRUE(rt.effective_affinity.test(1));
}

TEST(ShieldController, KsoftirqdSurvivesShielding) {
  // Per-CPU kernel threads have single-CPU affinity, which is a subset of
  // the shield — the §3 semantics keep them in place automatically.
  auto p = redhawk_rig();
  p->boot();
  p->shield().set_process_shield(hw::CpuMask::single(1));
  auto* kd = p->kernel().find_task("ksoftirqd/1");
  ASSERT_NE(kd, nullptr);
  EXPECT_TRUE(kd->effective_affinity.test(1));
}

TEST(ShieldController, IrqShieldSteersInterruptLines) {
  auto p = redhawk_rig();
  p->boot();
  auto& ic = p->interrupt_controller();
  EXPECT_TRUE(ic.affinity(hw::kIrqNic).test(1));
  p->shield().set_irq_shield(hw::CpuMask::single(1));
  EXPECT_FALSE(ic.affinity(hw::kIrqNic).test(1));
  EXPECT_FALSE(ic.affinity(hw::kIrqDisk).test(1));
}

TEST(ShieldController, IrqOptedOntoShieldStays) {
  auto p = redhawk_rig();
  p->boot();
  auto& ic = p->interrupt_controller();
  // Bind the RCIM IRQ to CPU 1 via smp_affinity, then shield CPU 1.
  ASSERT_TRUE(p->kernel().procfs().write(
      "/proc/irq/" + std::to_string(hw::kIrqRcim) + "/smp_affinity", "2"));
  p->shield().set_irq_shield(hw::CpuMask::single(1));
  EXPECT_EQ(ic.affinity(hw::kIrqRcim), hw::CpuMask::single(1));
  EXPECT_FALSE(ic.affinity(hw::kIrqNic).test(1));
}

TEST(ShieldController, LtmrShieldStopsTicks) {
  auto p = redhawk_rig();
  p->boot();
  p->run_for(100_ms);
  p->shield().set_ltmr_shield(hw::CpuMask::single(1));
  const auto ticks = p->kernel().local_timer().tick_count(1);
  p->run_for(500_ms);
  EXPECT_EQ(p->kernel().local_timer().tick_count(1), ticks);
  EXPECT_GT(p->kernel().local_timer().tick_count(0), 50u);
}

TEST(ShieldController, UnshieldRestoresEverything) {
  auto p = redhawk_rig();
  auto& t = spawn_hog(p->kernel(), "bg");
  p->boot();
  p->shield().shield_all(hw::CpuMask::single(1));
  p->run_for(100_ms);
  p->shield().unshield_all();
  p->run_for(100_ms);
  EXPECT_EQ(t.effective_affinity, p->topology().all_cpus());
  EXPECT_TRUE(p->interrupt_controller().affinity(hw::kIrqNic).test(1));
  EXPECT_TRUE(p->kernel().local_timer().enabled(1));
  // Ticks resumed on CPU 1.
  const auto ticks = p->kernel().local_timer().tick_count(1);
  p->run_for(200_ms);
  EXPECT_GT(p->kernel().local_timer().tick_count(1), ticks);
}

TEST(ShieldController, FullyShieldedPredicate) {
  auto p = redhawk_rig();
  p->boot();
  auto& s = p->shield();
  EXPECT_FALSE(s.fully_shielded(1));
  s.set_process_shield(hw::CpuMask::single(1));
  s.set_irq_shield(hw::CpuMask::single(1));
  EXPECT_FALSE(s.fully_shielded(1));
  s.set_ltmr_shield(hw::CpuMask::single(1));
  EXPECT_TRUE(s.fully_shielded(1));
  EXPECT_FALSE(s.fully_shielded(0));
}

TEST(ShieldController, DedicateCpuDoesTheWholeRecipe) {
  auto p = redhawk_rig();
  auto& rt = spawn_hog(p->kernel(), "rt", {}, kernel::SchedPolicy::kFifo, 90);
  p->boot();
  p->shield().dedicate_cpu(1, rt, p->rcim_device().irq());
  EXPECT_TRUE(p->shield().fully_shielded(1));
  EXPECT_EQ(rt.effective_affinity, hw::CpuMask::single(1));
  EXPECT_EQ(p->interrupt_controller().affinity(p->rcim_device().irq()),
            hw::CpuMask::single(1));
  p->run_for(50_ms);
  EXPECT_EQ(rt.cpu, 1);
}

// ---- /proc/shield interface --------------------------------------------------

TEST(ShieldProcfs, FilesExistOnShieldKernels) {
  auto p = redhawk_rig();
  auto& fs = p->kernel().procfs();
  EXPECT_TRUE(fs.exists("/proc/shield/procs"));
  EXPECT_TRUE(fs.exists("/proc/shield/irqs"));
  EXPECT_TRUE(fs.exists("/proc/shield/ltmr"));
}

TEST(ShieldProcfs, AbsentWithoutShieldSupport) {
  auto p = vanilla_rig();
  EXPECT_FALSE(p->kernel().procfs().exists("/proc/shield/procs"));
}

TEST(ShieldProcfs, WriteEnablesShieldDynamically) {
  auto p = redhawk_rig();
  auto& t = spawn_hog(p->kernel(), "bg");
  p->boot();
  p->run_for(20_ms);
  // Exactly the paper's administrative flow: echo 2 > /proc/shield/procs.
  ASSERT_TRUE(p->kernel().procfs().write("/proc/shield/procs", "2\n"));
  EXPECT_EQ(p->kernel().procfs().read("/proc/shield/procs").value(), "2\n");
  p->run_for(50_ms);
  EXPECT_FALSE(t.effective_affinity.test(1));
}

TEST(ShieldProcfs, RejectsGarbage) {
  auto p = redhawk_rig();
  EXPECT_FALSE(p->kernel().procfs().write("/proc/shield/procs", "zap"));
  EXPECT_FALSE(p->kernel().procfs().write("/proc/shield/irqs", ""));
}

TEST(ShieldProcfs, ReadsReflectCurrentMasks) {
  auto p = redhawk_rig();
  p->shield().set_irq_shield(hw::CpuMask(0b10));
  p->shield().set_ltmr_shield(hw::CpuMask(0b11));
  EXPECT_EQ(p->kernel().procfs().read("/proc/shield/irqs").value(), "2\n");
  EXPECT_EQ(p->kernel().procfs().read("/proc/shield/ltmr").value(), "3\n");
}

TEST(ShieldProcfs, SmpAffinityWriteComposesWithShield) {
  auto p = redhawk_rig();
  p->boot();
  p->shield().set_irq_shield(hw::CpuMask::single(1));
  // Writing an affinity overlapping the shield: the shielded CPU is
  // stripped from the delivered mask, but the user intent is remembered.
  ASSERT_TRUE(p->kernel().procfs().write(
      "/proc/irq/" + std::to_string(hw::kIrqNic) + "/smp_affinity", "3"));
  EXPECT_EQ(p->interrupt_controller().affinity(hw::kIrqNic),
            hw::CpuMask::single(0));
  // Dropping the shield restores the requested mask.
  p->shield().set_irq_shield(hw::CpuMask::none());
  EXPECT_EQ(p->interrupt_controller().affinity(hw::kIrqNic), hw::CpuMask(0b11));
}

TEST(ShieldedCpuBehaviour, NoInterruptsReachFullyShieldedCpu) {
  auto p = redhawk_rig(51);
  workload::StressKernel{}.install(*p);
  auto& rt = spawn_hog(p->kernel(), "rt", hw::CpuMask::single(1),
                       kernel::SchedPolicy::kFifo, 90);
  (void)rt;
  p->boot();
  p->shield().shield_all(hw::CpuMask::single(1));
  const auto before = p->kernel().cpu(1).hardirqs;
  p->run_for(2_s);
  // Only pre-shield deliveries (if any) count; after shielding, zero.
  EXPECT_EQ(p->kernel().cpu(1).hardirqs, before);
}

// Kernel/machine configuration presets and platform assembly.
#include <gtest/gtest.h>

#include "config/scenario.h"
#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

TEST(KernelConfig, VanillaMatchesPaperDescription) {
  const auto c = config::KernelConfig::vanilla_2_4_20();
  EXPECT_FALSE(c.preempt_kernel);
  EXPECT_FALSE(c.low_latency);
  EXPECT_FALSE(c.shield_support);
  EXPECT_FALSE(c.rcim_driver);
  EXPECT_FALSE(c.bkl_ioctl_flag);
  EXPECT_TRUE(c.default_hyperthreading);  // §5.2
  EXPECT_EQ(c.scheduler, config::SchedulerKind::kGoodness24);
  EXPECT_EQ(c.local_timer_period, 10_ms);  // HZ=100
  // Long critical sections are vanilla's signature.
  EXPECT_GT(c.section_max, 10_ms);
}

TEST(KernelConfig, RedHawkMatchesPaperDescription) {
  const auto c = config::KernelConfig::redhawk_1_4();
  EXPECT_TRUE(c.preempt_kernel);
  EXPECT_TRUE(c.low_latency);
  EXPECT_TRUE(c.shield_support);
  EXPECT_TRUE(c.rcim_driver);
  EXPECT_TRUE(c.bkl_ioctl_flag);
  EXPECT_TRUE(c.posix_timers);
  EXPECT_FALSE(c.default_hyperthreading);
  EXPECT_EQ(c.scheduler, config::SchedulerKind::kO1);
  // Low-latency patched sections stay sub-millisecond.
  EXPECT_LT(c.section_max, 2_ms);
}

TEST(KernelConfig, PatchedPreemptLowlat) {
  const auto c = config::KernelConfig::patched_preempt_lowlat();
  EXPECT_TRUE(c.preempt_kernel);
  EXPECT_TRUE(c.low_latency);
  EXPECT_FALSE(c.shield_support);
  // The configuration the 1.2 ms worst-case claim [5] was made on.
  EXPECT_LE(c.section_max, 1200_us);
}

TEST(MachineConfig, Presets) {
  const auto m1 = config::MachineConfig::dual_p4_xeon_1400();
  EXPECT_EQ(m1.physical_cores, 2);
  EXPECT_TRUE(m1.hyperthreading_capable);
  EXPECT_FALSE(m1.has_rcim);

  const auto m2 = config::MachineConfig::dual_p3_xeon_933();
  EXPECT_FALSE(m2.hyperthreading_capable);  // P3 has no HT

  const auto m3 = config::MachineConfig::dual_p4_xeon_2000_rcim();
  EXPECT_TRUE(m3.has_rcim);
}

TEST(Platform, HyperthreadingFollowsKernelDefault) {
  config::Platform vanilla(config::MachineConfig::dual_p4_xeon_1400(),
                           config::KernelConfig::vanilla_2_4_20(), 1);
  EXPECT_EQ(vanilla.topology().logical_cpus(), 4);  // HT on by default

  config::Platform redhawk(config::MachineConfig::dual_p4_xeon_1400(),
                           config::KernelConfig::redhawk_1_4(), 1);
  EXPECT_EQ(redhawk.topology().logical_cpus(), 2);  // HT off by default
}

TEST(Platform, HyperthreadingOverride) {
  // §5.2: vanilla "with hyperthreading disabled via the GRUB prompt".
  config::Platform p(config::MachineConfig::dual_p4_xeon_1400(),
                     config::KernelConfig::vanilla_2_4_20(), 1,
                     /*ht_override=*/false);
  EXPECT_EQ(p.topology().logical_cpus(), 2);
}

TEST(Platform, HtIncapableMachineIgnoresKernelDefault) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::vanilla_2_4_20(), 1);
  EXPECT_EQ(p.topology().logical_cpus(), 2);
}

TEST(Platform, RcimNeedsBothCardAndDriver) {
  config::Platform no_card(config::MachineConfig::dual_p3_xeon_933(),
                           config::KernelConfig::redhawk_1_4(), 1);
  EXPECT_FALSE(no_card.has_rcim());
  config::Platform no_driver(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                             config::KernelConfig::vanilla_2_4_20(), 1);
  EXPECT_FALSE(no_driver.has_rcim());
  config::Platform both(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                        config::KernelConfig::redhawk_1_4(), 1);
  EXPECT_TRUE(both.has_rcim());
  EXPECT_DEATH(no_card.rcim_device(), "RCIM");
}

TEST(Platform, ShieldOnlyWithSupport) {
  auto v = vanilla_rig();
  EXPECT_FALSE(v->has_shield());
  EXPECT_DEATH(v->shield(), "shield");
  auto r = redhawk_rig();
  EXPECT_TRUE(r->has_shield());
}

TEST(Platform, RunForAdvancesTime) {
  auto p = vanilla_rig();
  p->boot();
  p->run_for(123_ms);
  EXPECT_EQ(p->engine().now(), 123_ms);
  p->run_until(200_ms);
  EXPECT_EQ(p->engine().now(), 200_ms);
}

// ---- scenario preset lookups ------------------------------------------------

TEST(ScenarioPresets, MachineTokensResolve) {
  for (const auto& name : config::machine_preset_names()) {
    EXPECT_TRUE(config::find_machine(name).has_value()) << name;
  }
  EXPECT_FALSE(config::find_machine("pdp-11").has_value());
  const auto m = config::find_machine("dual-p4-2000-rcim");
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->has_rcim);
}

TEST(ScenarioPresets, KernelTokensResolve) {
  for (const auto& name : config::kernel_preset_names()) {
    EXPECT_TRUE(config::find_kernel(name).has_value()) << name;
  }
  EXPECT_FALSE(config::find_kernel("linux-6.0").has_value());
  EXPECT_TRUE(config::find_kernel("redhawk-1.4")->shield_support);
  EXPECT_FALSE(config::find_kernel("vanilla-2.4.20")->shield_support);
}

TEST(ScenarioPresets, KernelOverridesApplyAndReject) {
  auto cfg = *config::find_kernel("vanilla-2.4.20");
  auto ov = config::json::Value::object();
  ov.set("preempt_kernel", true);
  ov.set("section_max_ns", 1'200'000);
  ov.set("section_alpha", 1.3);
  config::apply_kernel_overrides(cfg, ov);
  EXPECT_TRUE(cfg.preempt_kernel);
  EXPECT_EQ(cfg.section_max, 1'200'000);
  EXPECT_DOUBLE_EQ(cfg.section_alpha, 1.3);

  auto bad = config::json::Value::object();
  bad.set("warp_factor", 9);
  EXPECT_THROW(config::apply_kernel_overrides(cfg, bad), std::runtime_error);
}

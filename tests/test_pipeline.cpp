// The interrupt-delivery mechanism layer: shared dispatch bookkeeping
// (auditor and chain tracer fed by the same IrqPipeline::note_dispatch
// hook), mechanism-neutrality of the `mechanism` spec field for in-band
// runs (digest, cache key and result bytes), and the out-of-band stage's
// headline claim — sub-microsecond response on a stock kernel under loads
// where the shielded in-band kernels sit at tens of microseconds.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "config/experiment.h"
#include "config/scenario_runner.h"
#include "kernel/irq_pipeline.h"
#include "kernel_test_util.h"
#include "rt/cyclictest.h"
#include "rt/rcim_test.h"
#include "rt/realfeel_test.h"
#include "workload/stress_kernel.h"

using namespace testutil;
using namespace sim::literals;

namespace {

config::ScenarioSpec spec_of(const char* name) {
  const auto* s = config::ScenarioRegistry::builtin().find(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

config::ScenarioRunner::Options smoke_options() {
  config::ScenarioRunner::Options opt;
  opt.scale = 0.01;
  opt.cache = false;  // observe real runs, not cache hits
  return opt;
}

}  // namespace

// ---- shared dispatch bookkeeping (note_dispatch) ----------------------------

// The auditor's raise→dispatch histogram and the chain tracer's kIrqRaise
// segment are fed by the same PendingRaise consumed once in
// IrqPipeline::note_dispatch, so the worst chain's first segment must be a
// sample the auditor also saw — agreement by construction, not by two
// call sites staying in sync.
TEST(PipelineBookkeeping, ChainRaiseSegmentIsAnAuditorDispatchSample) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  auto p = redhawk_rig(311);
  p->engine().chain_tracer().enable();
  rt::RealfeelTest::Params rp;
  rp.samples = 2000;
  rp.affinity = hw::CpuMask::single(1);
  rt::RealfeelTest test(p->kernel(), p->rtc_driver(), rp);
  p->boot();
  p->shield().dedicate_cpu(1, test.task(), p->rtc_device().irq());
  test.start();
  p->run_for(5_s);
  ASSERT_TRUE(test.done());

  ASSERT_TRUE(test.worst_chain().has_value());
  const sim::LatencyChain& c = *test.worst_chain();
  ASSERT_FALSE(c.segments.empty());
  ASSERT_EQ(c.segments.front().kind, sim::SegmentKind::kIrqRaise);
  const sim::Duration raise_span =
      c.segments.front().end - c.segments.front().begin;

  const metrics::LatencyHistogram& dispatch =
      p->kernel().auditor().irq_dispatch(1);
  ASSERT_GT(dispatch.count(), 0u);
  EXPECT_GE(raise_span, dispatch.min());
  EXPECT_LE(raise_span, dispatch.max());
}

// ---- mechanism neutrality (in-band) -----------------------------------------

// Writing `"mechanism": "inband"` explicitly must be indistinguishable
// from omitting the field: same parsed spec, same serialized bytes, same
// digest — so every pre-existing spec's digest (and its cached results)
// survives the pipeline refactor untouched.
TEST(MechanismNeutrality, ExplicitInbandSpecIsByteIdenticalToOmitted) {
  for (const auto& s : config::ScenarioRegistry::builtin().all()) {
    if (s.mechanism != "inband") continue;
    config::json::Value v = s.to_json();
    EXPECT_EQ(v.find("mechanism"), nullptr) << s.name;
    v.set("mechanism", "inband");
    const config::ScenarioSpec e = config::ScenarioSpec::from_json(v);
    EXPECT_EQ(e.digest(), s.digest()) << s.name;
    EXPECT_EQ(e.to_json().dump(), s.to_json().dump()) << s.name;
  }
}

// Same digest must mean same cache slot: a run of the explicit-inband spec
// is served from the cache entry the omitted-field spec populated.
TEST(MechanismNeutrality, ExplicitInbandSharesTheCacheSlot) {
  auto opt = smoke_options();
  opt.cache = true;
  config::ScenarioRunner runner(opt);
  const config::ScenarioSpec base = spec_of("fig2");
  config::json::Value v = base.to_json();
  v.set("mechanism", "inband");
  const config::ScenarioSpec explicit_spec =
      config::ScenarioSpec::from_json(v);

  const auto first = runner.run(base, 77);
  const auto second = runner.run(explicit_spec, 77);
  EXPECT_FALSE(first.from_cache);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(first.to_json().dump(), second.to_json().dump());
}

// Whole-registry smoke: every in-band spec re-parsed through an explicit
// "mechanism": "inband" field produces byte-identical results (probe JSON,
// latency-derived stats, telemetry timeline) to the original.
TEST(MechanismNeutrality, WholeRegistrySmokeRunsByteIdentically) {
  std::vector<config::ScenarioSpec> omitted;
  std::vector<config::ScenarioSpec> explicit_specs;
  for (const auto& s : config::ScenarioRegistry::builtin().all()) {
    if (s.mechanism != "inband") continue;
    omitted.push_back(s);
    config::json::Value v = s.to_json();
    v.set("mechanism", "inband");
    explicit_specs.push_back(config::ScenarioSpec::from_json(v));
  }
  ASSERT_FALSE(omitted.empty());

  config::ScenarioRunner runner(smoke_options());
  const auto a = runner.run_batch_report(omitted, 99);
  const auto b = runner.run_batch_report(explicit_specs, 99);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].to_json().dump(), b.outcomes[i].to_json().dump())
        << omitted[i].name;
  }
}

// ---- the out-of-band stage --------------------------------------------------

// An adopted RCIM reader on a *vanilla* kernel under the full stress-kernel
// load: the oob stage preempts the whole in-band kernel, so its response
// stays at single-microsecond scale (vanilla's slower read path rides the
// adopted task) where the paper's unshielded vanilla numbers reach
// milliseconds — and the stage's stolen cycles are visible as in-band
// stall accounting, not silently free.
TEST(OobPipeline, RcimUnderStressStaysMicrosecondScaleOnVanilla) {
  config::KernelConfig kc = config::KernelConfig::vanilla_2_4_20();
  kc.rcim_driver = true;  // vanilla ships without it; load just the driver
  auto p = std::make_unique<config::Platform>(
      config::MachineConfig::dual_p4_xeon_2000_rcim(), kc, 401);
  workload::StressKernel{}.install(*p);
  rt::RcimTest::Params rp;
  rp.samples = 3000;
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest test(p->kernel(), p->rcim_driver(), rp);

  kernel::Kernel& k = p->kernel();
  k.set_mechanism(kernel::MechanismKind::kOob);
  ASSERT_EQ(k.mechanism(), kernel::MechanismKind::kOob);
  auto& oob = static_cast<kernel::OobPipeline&>(k.pipeline());
  oob.adopt_task(test.task());
  oob.adopt_irq(p->rcim_device().irq());

  p->boot();
  test.start();
  p->run_for(10_s);
  ASSERT_TRUE(test.done());

  EXPECT_LT(test.true_latencies().max(), 2_us);
  EXPECT_GT(oob.dispatches(), 0u);
  EXPECT_GT(oob.switches(), 0u);
  EXPECT_GT(oob.stall_ns(), 0u);
  EXPECT_GT(k.cpu(1).oob_preemptions, 0u);
}

// The captured-timer fast path: an adopted cyclictest fires on the oob
// stage at exactly dispatch + switch cost every cycle — no tick
// quantization, no scheduler, no jitter at all.
TEST(OobPipeline, CyclictestTimerFastPathIsExact) {
  auto p = redhawk_rig(402);
  workload::StressKernel{}.install(*p);
  rt::CyclicTest::Params cp;
  cp.period = 1_ms;
  cp.cycles = 2000;
  cp.affinity = hw::CpuMask::single(1);
  rt::CyclicTest test(p->kernel(), cp);

  kernel::Kernel& k = p->kernel();
  k.set_mechanism(kernel::MechanismKind::kOob);
  auto& oob = static_cast<kernel::OobPipeline&>(k.pipeline());
  oob.adopt_task(test.task());

  p->boot();
  test.start();
  p->run_for(4_s);
  ASSERT_TRUE(test.done());

  const sim::Duration expected = p->kernel().config().oob_dispatch_cost +
                                 p->kernel().config().oob_switch_cost;
  EXPECT_EQ(test.latencies().min(), expected);
  EXPECT_EQ(test.latencies().max(), expected);
  EXPECT_GT(oob.timer_fires(), 0u);
}

// Selecting the current mechanism is a documented no-op.
TEST(OobPipeline, ReselectingTheCurrentMechanismIsANoOp) {
  auto p = redhawk_rig(403);
  kernel::Kernel& k = p->kernel();
  k.set_mechanism(kernel::MechanismKind::kOob);
  kernel::IrqPipeline* before = &k.pipeline();
  k.set_mechanism(kernel::MechanismKind::kOob);
  EXPECT_EQ(&k.pipeline(), before);
  EXPECT_EQ(std::string(kernel::to_string(k.mechanism())), "oob");
}

// ---- mech-* registry family: oob versus shielding ---------------------------

// The head-to-head the mech-* family exists for, at smoke scale: the oob
// stage holds sub-microsecond (rcim) / exactly-constant (cyclictest)
// response and shrugs off the interrupt storm and SMI plans that push the
// *shielded* in-band kernel to tens of microseconds.
TEST(MechanismComparison, OobBeatsShieldingUnderStormAndSmi) {
  const std::vector<std::string> names = {
      "mech-rcim-shielded", "mech-rcim-oob",  "mech-cyclic-oob",
      "mech-storm-shielded", "mech-storm-oob", "mech-smi-shielded",
      "mech-smi-oob",
  };
  std::vector<config::ScenarioSpec> specs;
  for (const auto& n : names) specs.push_back(spec_of(n.c_str()));

  config::ScenarioRunner runner(smoke_options());
  const auto report = runner.run_batch_report(specs, 42);
  ASSERT_TRUE(report.all_ok());

  std::map<std::string, const config::RunOutcome*> by_name;
  for (const auto& o : report.outcomes) by_name[o.name] = &o;
  auto max_of = [&](const std::string& n) {
    return by_name.at(n)->result->probe.primary.max();
  };

  // Sub-microsecond oob response on the interrupt-driven probes.
  EXPECT_LT(max_of("mech-rcim-oob"), 1_us);
  const auto& cyclic = by_name.at("mech-cyclic-oob")->result->probe.primary;
  EXPECT_EQ(cyclic.min(), cyclic.max());  // exactly constant, every cycle
  EXPECT_LT(cyclic.max(), 1_us);

  // Shielding floors in the paper's 11–27 µs band on rcim; the oob stage
  // is an order of magnitude under it.
  EXPECT_GT(max_of("mech-rcim-shielded"), 5_us);
  EXPECT_GT(max_of("mech-rcim-shielded"), 10 * max_of("mech-rcim-oob"));

  // The storm and SMI plans pierce shielding (they hit the shielded CPU
  // directly) but not the oob stage.
  EXPECT_LT(max_of("mech-storm-oob"), 4_us);
  EXPECT_GT(max_of("mech-storm-shielded"), 10_us);
  EXPECT_GT(max_of("mech-storm-shielded"), 10 * max_of("mech-storm-oob"));
  EXPECT_LT(max_of("mech-smi-oob"), 4_us);
  EXPECT_GT(max_of("mech-smi-shielded"), 10_us);
  EXPECT_GT(max_of("mech-smi-shielded"), 10 * max_of("mech-smi-oob"));

  // Outcomes carry their mechanism and the mixed batch reports the
  // per-mechanism breakdown.
  EXPECT_EQ(by_name.at("mech-rcim-oob")->mechanism, "oob");
  EXPECT_EQ(by_name.at("mech-rcim-shielded")->mechanism, "inband");
  EXPECT_NE(report.to_json().dump().find("by_mechanism"), std::string::npos);
}

// Page faults vs mlockall, tick-sampled CPU accounting, /proc/<pid>/stat,
// and the §3 trade-off: shielding the local timer freezes the sampled
// accounting while precise time keeps flowing.
#include <gtest/gtest.h>

#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

TEST(Paging, UnlockedTaskTakesMinorFaults) {
  auto p = vanilla_rig(121);
  auto& t = spawn_hog(p->kernel(), "pageable");  // mlocked defaults to false
  p->boot();
  p->run_for(2_s);
  // ~2 s of CPU at one fault per ~25 ms → dozens of faults.
  EXPECT_GT(t.minor_faults, 20u);
  EXPECT_GT(t.stime, 0u);  // fault handling is system time
}

TEST(Paging, MlockedTaskNeverFaults) {
  auto p = vanilla_rig(122);
  kernel::Kernel::TaskParams tp;
  tp.name = "locked";
  tp.mlocked = true;
  auto& t = workload::spawn(p->kernel(), std::move(tp),
                            [](kernel::Kernel&, kernel::Task&) -> kernel::Action {
                              return kernel::ComputeAction{1_ms, 0.3};
                            });
  p->boot();
  p->run_for(2_s);
  EXPECT_EQ(t.minor_faults, 0u);
}

TEST(Paging, FaultsAddJitterToComputeLoops) {
  // Identical compute on identical idle CPUs: the pageable task's wall
  // time must exceed the locked task's (fault handling is stolen time).
  auto p = vanilla_rig(123);
  std::vector<sim::Time> locked_marks, pageable_marks;
  kernel::Kernel::TaskParams lp;
  lp.name = "locked";
  lp.mlocked = true;
  lp.affinity = hw::CpuMask::single(0);
  spawn_scripted(p->kernel(), std::move(lp),
                 {kernel::ComputeAction{500_ms, 0.0}}, &locked_marks);
  kernel::Kernel::TaskParams pp;
  pp.name = "pageable";
  pp.mlocked = false;
  pp.affinity = hw::CpuMask::single(1);
  spawn_scripted(p->kernel(), std::move(pp),
                 {kernel::ComputeAction{500_ms, 0.0}}, &pageable_marks);
  p->boot();
  p->run_for(3_s);
  ASSERT_EQ(locked_marks.size(), 2u);
  ASSERT_EQ(pageable_marks.size(), 2u);
  EXPECT_GT(pageable_marks[1] - pageable_marks[0],
            locked_marks[1] - locked_marks[0]);
}

TEST(Paging, FaultStateIsNotUserMode) {
  // Vanilla: an RT wake while the current task handles a fault must wait
  // (fault handling is kernel code), unlike plain user compute.
  kernel::Task t;
  t.in_syscall = false;
  EXPECT_TRUE(t.in_user_mode());
  t.frames.push_back(kernel::TaskFrame{kernel::TaskFrame::Kind::kUserCompute,
                                       100, 0.2, kernel::LockId::kCount, false});
  EXPECT_TRUE(t.in_user_mode());
  t.frames.push_back(kernel::TaskFrame{kernel::TaskFrame::Kind::kFault, 100,
                                       0.5, kernel::LockId::kCount, false});
  EXPECT_FALSE(t.in_user_mode());
}

TEST(TickAccounting, SampledTimesTrackPreciseTimes) {
  auto p = vanilla_rig(124);
  auto& t = spawn_hog(p->kernel(), "hog", hw::CpuMask::single(0));
  p->boot();
  p->run_for(5_s);
  // ~500 ticks over 5 s, nearly all landing in user mode.
  EXPECT_GT(t.utime_ticks, 400u);
  // Sampled time (ticks × 10 ms) within 15% of precise utime.
  const double sampled = static_cast<double>(t.utime_ticks) * 10e6;
  EXPECT_NEAR(sampled, static_cast<double>(t.utime),
              static_cast<double>(t.utime) * 0.15);
}

TEST(TickAccounting, LtmrShieldFreezesSampledAccounting) {
  // The §3 trade-off, verbatim: disable the local timer on CPU 1 and the
  // tick-sampled accounting stops while the precise clock keeps counting.
  auto p = redhawk_rig(125);
  auto& t = spawn_hog(p->kernel(), "rt", hw::CpuMask::single(1),
                      kernel::SchedPolicy::kFifo, 80);
  p->boot();
  p->run_for(1_s);
  const auto ticks_before = t.utime_ticks;
  const auto utime_before = t.utime;
  EXPECT_GT(ticks_before, 50u);
  p->shield().set_ltmr_shield(hw::CpuMask::single(1));
  p->run_for(2_s);
  EXPECT_EQ(t.utime_ticks, ticks_before);   // frozen
  EXPECT_GT(t.utime, utime_before + 1_s);   // precise time keeps flowing
}

TEST(ProcPidStat, FileExistsAndReflectsTask) {
  auto p = vanilla_rig(126);
  auto& t = spawn_hog(p->kernel(), "statme", hw::CpuMask::single(0));
  p->boot();
  p->run_for(1_s);
  const auto content =
      p->kernel().procfs().read("/proc/" + std::to_string(t.pid) + "/stat");
  ASSERT_TRUE(content.has_value());
  EXPECT_NE(content->find("(statme)"), std::string::npos) << *content;
  // utime_ticks present and non-zero for a CPU hog.
  EXPECT_GT(t.utime_ticks, 10u);
}

TEST(ProcPidStat, KsoftirqdHasStatFile) {
  auto p = vanilla_rig(127);
  p->boot();
  auto* kd = p->kernel().find_task("ksoftirqd/0");
  ASSERT_NE(kd, nullptr);
  EXPECT_TRUE(p->kernel().procfs().exists("/proc/" + std::to_string(kd->pid) +
                                          "/stat"));
}

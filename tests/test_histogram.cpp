#include <gtest/gtest.h>

#include "metrics/histogram.h"
#include "sim/rng.h"

using metrics::LatencyHistogram;
using namespace sim::literals;

TEST(Histogram, EmptyState) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.count_below(1_ms), 0u);
  EXPECT_DOUBLE_EQ(h.fraction_below(1_ms), 0.0);
}

TEST(Histogram, MinMaxMeanExact) {
  LatencyHistogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_EQ(h.mean(), 20u);
}

TEST(Histogram, BucketIndexMonotonic) {
  int prev = -1;
  for (sim::Duration v = 0; v < 1'000'000; v = v < 64 ? v + 1 : v + v / 7) {
    const int idx = LatencyHistogram::bucket_index(v);
    ASSERT_GE(idx, prev);
    prev = idx;
  }
}

TEST(Histogram, BucketLowerBoundInverts) {
  // lower_bound(bucket_index(v)) <= v for all v; and v falls below the next
  // bucket's lower bound.
  for (sim::Duration v : {0ull, 1ull, 31ull, 32ull, 33ull, 63ull, 64ull,
                          1000ull, 488'281ull, 92'300'000ull, 1'150'000'000ull}) {
    const int idx = LatencyHistogram::bucket_index(v);
    EXPECT_LE(LatencyHistogram::bucket_lower_bound(idx), v) << v;
    if (idx + 1 < LatencyHistogram::kBucketCount) {
      EXPECT_GT(LatencyHistogram::bucket_lower_bound(idx + 1), v) << v;
    }
  }
}

TEST(Histogram, RelativeResolutionWithin4Percent) {
  // HDR property: bucket width / lower bound <= 1/32 + epsilon.
  for (int idx = 64; idx < LatencyHistogram::kBucketCount - 1; idx += 17) {
    const auto lo = LatencyHistogram::bucket_lower_bound(idx);
    const auto hi = LatencyHistogram::bucket_lower_bound(idx + 1);
    EXPECT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo), 0.04);
  }
}

TEST(Histogram, CountBelowExactOnBucketEdges) {
  LatencyHistogram h;
  h.add(10_us);
  h.add(200_us);
  h.add(3_ms);
  EXPECT_EQ(h.count_below(100_us), 1u);
  EXPECT_EQ(h.count_below(1_ms), 2u);
  EXPECT_EQ(h.count_below(100_ms), 3u);
}

TEST(Histogram, FractionBelow) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.add(10_us);
  h.add(10_ms);
  EXPECT_NEAR(h.fraction_below(1_ms), 0.99, 1e-9);
}

TEST(Histogram, PercentileOrdering) {
  LatencyHistogram h;
  for (sim::Duration v = 1; v <= 1000; ++v) h.add(v * 1_us);
  const auto p50 = h.percentile(0.50);
  const auto p90 = h.percentile(0.90);
  const auto p99 = h.percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(static_cast<double>(p50), 500e3, 25e3);
  EXPECT_NEAR(static_cast<double>(p99), 990e3, 50e3);
}

TEST(Histogram, PercentileExtremes) {
  LatencyHistogram h;
  h.add(5);
  h.add(500);
  EXPECT_EQ(h.percentile(0.0), 5u);
  EXPECT_EQ(h.percentile(1.0), 500u);
}

TEST(Histogram, MergeCombines) {
  LatencyHistogram a, b;
  a.add(10);
  a.add(100);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, ClearResets) {
  LatencyHistogram h;
  h.add(10);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, NonzeroBucketsCoverAllSamples) {
  LatencyHistogram h;
  for (sim::Duration v = 1; v < 100'000; v += 37) h.add(v);
  std::uint64_t total = 0;
  for (const auto& b : h.nonzero_buckets()) {
    EXPECT_GT(b.hi, b.lo);
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
}

// Property sweep: count_below is monotone and hits exact totals.
class HistogramThresholdSweep : public ::testing::TestWithParam<sim::Duration> {};

TEST_P(HistogramThresholdSweep, CountBelowMonotone) {
  LatencyHistogram h;
  sim::Rng rng(99);
  for (int i = 0; i < 10'000; ++i) {
    h.add(rng.uniform_duration(0, 10_ms));
  }
  const sim::Duration t = GetParam();
  EXPECT_LE(h.count_below(t), h.count_below(t * 2));
  EXPECT_LE(h.count_below(t), h.count());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HistogramThresholdSweep,
                         ::testing::Values(1_us, 10_us, 100_us, 500_us, 1_ms,
                                           5_ms, 20_ms));

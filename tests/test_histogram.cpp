#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "metrics/histogram.h"
#include "sim/rng.h"

using metrics::LatencyHistogram;
using namespace sim::literals;

TEST(Histogram, EmptyState) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.count_below(1_ms), 0u);
  EXPECT_DOUBLE_EQ(h.fraction_below(1_ms), 0.0);
}

TEST(Histogram, MinMaxMeanExact) {
  LatencyHistogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_EQ(h.mean(), 20u);
}

TEST(Histogram, BucketIndexMonotonic) {
  int prev = -1;
  for (sim::Duration v = 0; v < 1'000'000; v = v < 64 ? v + 1 : v + v / 7) {
    const int idx = LatencyHistogram::bucket_index(v);
    ASSERT_GE(idx, prev);
    prev = idx;
  }
}

TEST(Histogram, BucketLowerBoundInverts) {
  // lower_bound(bucket_index(v)) <= v for all v; and v falls below the next
  // bucket's lower bound.
  for (sim::Duration v : {0ull, 1ull, 31ull, 32ull, 33ull, 63ull, 64ull,
                          1000ull, 488'281ull, 92'300'000ull, 1'150'000'000ull}) {
    const int idx = LatencyHistogram::bucket_index(v);
    EXPECT_LE(LatencyHistogram::bucket_lower_bound(idx), v) << v;
    if (idx + 1 < LatencyHistogram::kBucketCount) {
      EXPECT_GT(LatencyHistogram::bucket_lower_bound(idx + 1), v) << v;
    }
  }
}

TEST(Histogram, RelativeResolutionWithin4Percent) {
  // HDR property: bucket width / lower bound <= 1/32 + epsilon.
  for (int idx = 64; idx < LatencyHistogram::kBucketCount - 1; idx += 17) {
    const auto lo = LatencyHistogram::bucket_lower_bound(idx);
    const auto hi = LatencyHistogram::bucket_lower_bound(idx + 1);
    EXPECT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo), 0.04);
  }
}

TEST(Histogram, CountBelowExactOnBucketEdges) {
  LatencyHistogram h;
  h.add(10_us);
  h.add(200_us);
  h.add(3_ms);
  EXPECT_EQ(h.count_below(100_us), 1u);
  EXPECT_EQ(h.count_below(1_ms), 2u);
  EXPECT_EQ(h.count_below(100_ms), 3u);
}

TEST(Histogram, FractionBelow) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.add(10_us);
  h.add(10_ms);
  EXPECT_NEAR(h.fraction_below(1_ms), 0.99, 1e-9);
}

TEST(Histogram, PercentileOrdering) {
  LatencyHistogram h;
  for (sim::Duration v = 1; v <= 1000; ++v) h.add(v * 1_us);
  const auto p50 = h.percentile(0.50);
  const auto p90 = h.percentile(0.90);
  const auto p99 = h.percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(static_cast<double>(p50), 500e3, 25e3);
  EXPECT_NEAR(static_cast<double>(p99), 990e3, 50e3);
}

TEST(Histogram, PercentileExtremes) {
  LatencyHistogram h;
  h.add(5);
  h.add(500);
  EXPECT_EQ(h.percentile(0.0), 5u);
  EXPECT_EQ(h.percentile(1.0), 500u);
}

TEST(Histogram, MergeCombines) {
  LatencyHistogram a, b;
  a.add(10);
  a.add(100);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, ClearResets) {
  LatencyHistogram h;
  h.add(10);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, NonzeroBucketsCoverAllSamples) {
  LatencyHistogram h;
  for (sim::Duration v = 1; v < 100'000; v += 37) h.add(v);
  std::uint64_t total = 0;
  for (const auto& b : h.nonzero_buckets()) {
    EXPECT_GT(b.hi, b.lo);
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
}

namespace {

std::uint64_t brute_count_below(const std::vector<sim::Duration>& samples,
                                sim::Duration threshold) {
  return static_cast<std::uint64_t>(
      std::count_if(samples.begin(), samples.end(),
                    [&](sim::Duration s) { return s < threshold; }));
}

}  // namespace

// Regression: a threshold exactly at a bucket's lower bound must count
// exactly the samples in earlier buckets — the buckets partition the value
// range there, so no proportional attribution applies. Cross-checked
// against a brute-force vector count at the bound, and sandwiched by the
// adjacent exact counts one past it.
TEST(Histogram, CountBelowExactAtBucketLowerBounds) {
  LatencyHistogram h;
  std::vector<sim::Duration> samples;
  sim::Rng rng(7);
  for (int i = 0; i < 20'000; ++i) {
    const sim::Duration v = rng.uniform_duration(1, 20_ms);
    h.add(v);
    samples.push_back(v);
  }
  for (const int b : {1, 31, 32, 33, 64, 200, 320, 500, 700, 800}) {
    const sim::Duration lo = LatencyHistogram::bucket_lower_bound(b);
    const std::uint64_t at_lo = h.count_below(lo);
    EXPECT_EQ(at_lo, brute_count_below(samples, lo)) << "bucket " << b;
    // lo + 1 lands inside bucket b: the proportional estimate must stay
    // between the two exact boundary counts.
    const std::uint64_t at_next =
        h.count_below(LatencyHistogram::bucket_lower_bound(b + 1));
    const std::uint64_t at_lo1 = h.count_below(lo + 1);
    EXPECT_GE(at_lo1, at_lo) << "bucket " << b;
    EXPECT_LE(at_lo1, at_next) << "bucket " << b;
  }
}

// Values beyond the table's ~2^49 ns range clamp into the last bucket
// (bucket_index used to walk off the table and trip its assert).
TEST(Histogram, HandlesValuesBeyondTableRange) {
  EXPECT_EQ(LatencyHistogram::bucket_index(~sim::Duration{0}),
            LatencyHistogram::kBucketCount - 1);
  // A merely-too-large value (the all-ones extreme above cannot round-trip
  // through the Summary's double min/max).
  const sim::Duration huge = sim::Duration{1} << 55;  // ~416 days
  EXPECT_EQ(LatencyHistogram::bucket_index(huge),
            LatencyHistogram::kBucketCount - 1);
  LatencyHistogram h;
  h.add(1_us);
  h.add(huge);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), huge);
  EXPECT_EQ(h.count_below(huge), 2u);
  EXPECT_EQ(h.percentile(1.0), huge);
}

// Regression for the percentile rank: the old `+ 0.5` rounding returned
// rank 0 for small p (bucket 0 regardless of the data) and fell one sample
// short whenever frac(p * count) was below 0.5. The rank is
// ceil(p * count): the smallest k with k/count >= p.
TEST(Histogram, PercentileRankIsCeilNotRound) {
  LatencyHistogram h;
  for (sim::Duration v = 1; v <= 10; ++v) h.add(v * 1_us);
  // p=0.01 of 10 samples is the smallest sample (ceil(0.1) = 1), not a
  // sub-microsecond bucket-0 value.
  EXPECT_EQ(LatencyHistogram::bucket_index(h.percentile(0.01)),
            LatencyHistogram::bucket_index(1_us));
  // p=0.91 needs 10 samples <= L (ceil(9.1) = 10): the answer lives in
  // 10 us's bucket, not 9 us's.
  EXPECT_EQ(LatencyHistogram::bucket_index(h.percentile(0.91)),
            LatencyHistogram::bucket_index(10_us));
}

// Randomized cross-check: percentile() must land in the same bucket as the
// true rank-ceil(p*n) order statistic computed by std::nth_element.
TEST(Histogram, PercentileMatchesNthElementBucket) {
  sim::Rng rng(1234);
  const double ps[] = {0.01, 0.1, 0.25, 0.5, 0.9, 0.91, 0.99, 0.999};
  for (int n = 1; n <= 50; ++n) {
    LatencyHistogram h;
    std::vector<sim::Duration> samples;
    for (int i = 0; i < n; ++i) {
      const sim::Duration s = rng.uniform_duration(1, 20_ms);
      h.add(s);
      samples.push_back(s);
    }
    for (const double p : ps) {
      const auto count = static_cast<std::uint64_t>(n);
      const auto rank = std::clamp<std::uint64_t>(
          static_cast<std::uint64_t>(
              std::ceil(p * static_cast<double>(count))),
          1, count);
      auto sorted = samples;
      std::nth_element(sorted.begin(),
                       sorted.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                       sorted.end());
      const sim::Duration truth = sorted[rank - 1];
      EXPECT_EQ(LatencyHistogram::bucket_index(h.percentile(p)),
                LatencyHistogram::bucket_index(truth))
          << "n=" << n << " p=" << p;
    }
  }
}

// Property sweep: count_below is monotone and hits exact totals.
class HistogramThresholdSweep : public ::testing::TestWithParam<sim::Duration> {};

TEST_P(HistogramThresholdSweep, CountBelowMonotone) {
  LatencyHistogram h;
  sim::Rng rng(99);
  for (int i = 0; i < 10'000; ++i) {
    h.add(rng.uniform_duration(0, 10_ms));
  }
  const sim::Duration t = GetParam();
  EXPECT_LE(h.count_below(t), h.count_below(t * 2));
  EXPECT_LE(h.count_below(t), h.count());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HistogramThresholdSweep,
                         ::testing::Values(1_us, 10_us, 100_us, 500_us, 1_ms,
                                           5_ms, 20_ms));

// Driver behaviour: RTC read path, RCIM ioctl path (and its BKL
// interaction), NIC softirq conversion, disk completion wakeups, GPU.
#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

TEST(RtcDriver, ReadBlocksUntilInterrupt) {
  auto p = vanilla_rig(71);
  auto& k = p->kernel();
  p->rtc_device().set_rate_hz(64);  // 15.625 ms period
  std::vector<sim::Time> marks;
  spawn_scripted(k, {.name = "reader"},
                 {kernel::SyscallAction{"read(/dev/rtc)",
                                        p->rtc_driver().read_program()}},
                 &marks);
  p->boot();
  p->rtc_device().start_periodic();
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  // The read returned just after the first RTC interrupt (~15.6 ms).
  EXPECT_GE(marks[1], 15'625_us);
  EXPECT_LT(marks[1], 16_ms);
}

TEST(RtcDriver, WakesAllReaders) {
  auto p = vanilla_rig(72);
  auto& k = p->kernel();
  p->rtc_device().set_rate_hz(64);
  std::vector<sim::Time> m1, m2;
  spawn_scripted(k, {.name = "r1"},
                 {kernel::SyscallAction{"read", p->rtc_driver().read_program()}},
                 &m1);
  spawn_scripted(k, {.name = "r2"},
                 {kernel::SyscallAction{"read", p->rtc_driver().read_program()}},
                 &m2);
  p->boot();
  p->rtc_device().start_periodic();
  p->run_for(1_s);
  ASSERT_EQ(m1.size(), 2u);
  ASSERT_EQ(m2.size(), 2u);
  EXPECT_LT(m1[1], 17_ms);
  EXPECT_LT(m2[1], 17_ms);
}

TEST(RcimDriver, RequiresKernelWithDriver) {
  // Vanilla has no RCIM driver; constructing one must die loudly.
  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                     config::KernelConfig::vanilla_2_4_20(), 1);
  EXPECT_FALSE(p.has_rcim());  // device not even instantiated without driver
}

TEST(RcimDriver, IoctlWaitsForTimer) {
  auto p = redhawk_rig(73);
  auto& k = p->kernel();
  std::vector<sim::Time> marks;
  spawn_scripted(k, {.name = "waiter"},
                 {kernel::SyscallAction{"ioctl",
                                        p->rcim_driver().wait_ioctl_program()}},
                 &marks);
  p->boot();
  p->rcim_device().program_periodic(2500);  // 1 ms
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_GE(marks[1], 1_ms);
  EXPECT_LT(marks[1], 1_ms + 100_us);
}

TEST(RcimDriver, SkipsBklWithFlagSupport) {
  // RedHawk honours the multithreaded-driver flag: the wait program must
  // not contain a BKL acquisition.
  auto p = redhawk_rig(74);
  const auto prog = p->rcim_driver().wait_ioctl_program();
  bool takes_bkl = false;
  for (const auto& op : prog) {
    if (const auto* l = std::get_if<kernel::OpLock>(&op)) {
      if (l->lock == kernel::LockId::kBkl) takes_bkl = true;
    }
  }
  EXPECT_FALSE(takes_bkl);
}

TEST(IoctlLayer, TakesBklWithoutFlagSupport) {
  auto p = vanilla_rig(75);
  const auto prog = kernel::sys::ioctl_op(
      p->kernel(), /*driver_multithreaded_flag=*/true,
      kernel::ProgramBuilder{}.work(1_us, 0.3).build());
  int bkl_locks = 0;
  for (const auto& op : prog) {
    if (const auto* l = std::get_if<kernel::OpLock>(&op)) {
      if (l->lock == kernel::LockId::kBkl) ++bkl_locks;
    }
  }
  // Vanilla has no per-driver flag: BKL wraps every ioctl.
  EXPECT_EQ(bkl_locks, 1);
}

TEST(IoctlLayer, TakesBklWhenDriverNotMultithreaded) {
  auto p = redhawk_rig(76);
  const auto prog = kernel::sys::ioctl_op(
      p->kernel(), /*driver_multithreaded_flag=*/false,
      kernel::ProgramBuilder{}.work(1_us, 0.3).build());
  int bkl_locks = 0;
  for (const auto& op : prog) {
    if (const auto* l = std::get_if<kernel::OpLock>(&op)) {
      if (l->lock == kernel::LockId::kBkl) ++bkl_locks;
    }
  }
  EXPECT_EQ(bkl_locks, 1);
}

TEST(NicDriver, ConvertsRxBytesToSoftirqWork) {
  auto p = vanilla_rig(77);
  p->interrupt_controller().set_affinity(p->nic_device().irq(),
                                         hw::CpuMask::single(0));
  p->boot();
  p->nic_device().rx(10'000);
  p->run_for(100_ms);
  const auto& cs = p->kernel().cpu(0);
  EXPECT_EQ(cs.softirq.raise_count(kernel::SoftirqType::kNetRx), 1u);
  EXPECT_GT(p->nic_driver().rx_interrupts(), 0u);
}

TEST(NicDriver, WakesBlockedReceiver) {
  auto p = vanilla_rig(78);
  auto& k = p->kernel();
  std::vector<sim::Time> marks;
  spawn_scripted(
      k, {.name = "recv"},
      {kernel::SyscallAction{
          "read(sock)",
          kernel::sys::socket_recv(k, p->nic_driver().rx_wait_queue())}},
      &marks);
  p->boot();
  p->engine().schedule(20_ms, [&] { p->nic_device().rx(1500); });
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_GT(marks[1], 20_ms);
  EXPECT_LT(marks[1], 25_ms);
}

TEST(DiskDriver, CompletionWakesSubmitter) {
  auto p = vanilla_rig(79);
  auto& k = p->kernel();
  auto& drv = p->disk_driver();
  const auto io_wq = k.create_wait_queue("io");
  std::vector<sim::Time> marks;
  spawn_scripted(k, {.name = "writer"},
                 {kernel::SyscallAction{
                     "write",
                     kernel::sys::fs_io(
                         k, 50_us,
                         [&drv, io_wq](kernel::Kernel&, kernel::Task&) {
                           drv.submit(8192, true, io_wq);
                         },
                         io_wq)}},
                 &marks);
  p->boot();
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_GT(marks[1], 100_us);  // waited for mechanical latency
  EXPECT_LT(marks[1], 100_ms);
  EXPECT_EQ(drv.completions(), 1u);
}

TEST(DiskDriver, CompletionRaisesBlockSoftirq) {
  auto p = vanilla_rig(80);
  auto& k = p->kernel();
  p->interrupt_controller().set_affinity(p->disk_device().irq(),
                                         hw::CpuMask::single(0));
  const auto io_wq = k.create_wait_queue("io");
  p->boot();
  p->disk_driver().submit(4096, false, io_wq);
  p->run_for(200_ms);
  EXPECT_GE(k.cpu(0).softirq.raise_count(kernel::SoftirqType::kBlock), 1u);
}

TEST(GpuDriver, CompletionWakesSubmitter) {
  auto p = vanilla_rig(81);
  auto& k = p->kernel();
  auto& gpu = p->gpu_device();
  std::vector<sim::Time> marks;
  kernel::ProgramBuilder b;
  b.work(2_us, 0.4)
      .effect([&gpu](kernel::Kernel&, kernel::Task&) { gpu.submit_batch(50); })
      .block(p->gpu_driver().completion_queue());
  spawn_scripted(k, {.name = "X"},
                 {kernel::SyscallAction{"gpu", std::move(b).build()}}, &marks);
  p->boot();
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_GT(marks[1], 50_us);
  EXPECT_LT(marks[1], 10_ms);
}

// RCIM external edge-triggered interrupt inputs (§4).
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "metrics/histogram.h"

using namespace testutil;
using namespace sim::literals;

TEST(RcimExternal, EdgeSetsStatusAndRaisesIrq) {
  auto p = redhawk_rig(131);
  p->boot();
  const auto irqs_before =
      p->interrupt_controller().raise_count(p->rcim_device().irq());
  p->rcim_device().trigger_external(2);
  p->run_for(1_ms);
  EXPECT_EQ(p->interrupt_controller().raise_count(p->rcim_device().irq()),
            irqs_before + 1);
  EXPECT_EQ(p->rcim_device().external_edge_count(2), 1u);
}

TEST(RcimExternal, StatusRegisterIsReadToClear) {
  auto p = redhawk_rig(132);
  p->boot();
  auto& dev = p->rcim_device();
  dev.trigger_external(0);
  dev.trigger_external(3);
  EXPECT_EQ(dev.read_and_clear_external_status(), 0b1001u);
  EXPECT_EQ(dev.read_and_clear_external_status(), 0u);
}

TEST(RcimExternal, WaiterWokenByItsLineOnly) {
  auto p = redhawk_rig(133);
  auto& k = p->kernel();
  std::vector<sim::Time> line0_marks, line1_marks;
  spawn_scripted(k, {.name = "wait0"},
                 {kernel::SyscallAction{
                     "ioctl(EXT0)",
                     p->rcim_driver().external_wait_ioctl_program(0)}},
                 &line0_marks);
  spawn_scripted(k, {.name = "wait1"},
                 {kernel::SyscallAction{
                     "ioctl(EXT1)",
                     p->rcim_driver().external_wait_ioctl_program(1)}},
                 &line1_marks);
  p->boot();
  p->engine().schedule(10_ms, [&] { p->rcim_device().trigger_external(0); });
  p->run_for(1_s);
  // Line 0's waiter completed; line 1's is still blocked.
  ASSERT_EQ(line0_marks.size(), 2u);
  EXPECT_GT(line0_marks[1], 10_ms);
  EXPECT_LT(line0_marks[1], 11_ms);
  EXPECT_EQ(line1_marks.size(), 1u);
}

TEST(RcimExternal, EdgeLatencyOnShieldedCpuIsTensOfMicroseconds) {
  // The paper's motivating use case: an external device interrupt wired
  // into the RCIM, serviced by a shielded CPU.
  auto p = redhawk_rig(134);
  auto& k = p->kernel();
  struct Stats {
    metrics::LatencyHistogram lat;
    int fired = 0;
  };
  auto stats = std::make_shared<Stats>();
  kernel::Kernel::TaskParams tp;
  tp.name = "edge-responder";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 95;
  tp.affinity = hw::CpuMask::single(1);
  tp.mlocked = true;
  auto& rcim = p->rcim_device();
  auto& drv = p->rcim_driver();
  auto& rt = workload::spawn(
      k, std::move(tp),
      [stats, &rcim, &drv](kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
        if (stats->fired > 0) {
          stats->lat.add(kk.now() - rcim.last_external_edge(0));
        }
        if (stats->fired >= 200) return kernel::ExitAction{};
        stats->fired++;
        return kernel::SyscallAction{"ioctl(EXT0)",
                                     drv.external_wait_ioctl_program(0)};
      });
  p->boot();
  p->shield().dedicate_cpu(1, rt, rcim.irq());
  // Edges every ~3 ms with deterministic spacing.
  for (int i = 1; i <= 250; ++i) {
    p->engine().schedule(static_cast<sim::Duration>(i) * 3_ms,
                         [&rcim] { rcim.trigger_external(0); });
  }
  p->run_for(2_s);
  ASSERT_GT(stats->lat.count(), 100u);
  EXPECT_LT(stats->lat.max(), 60_us);
  EXPECT_GT(stats->lat.min(), 3_us);
}

TEST(RcimExternal, InvalidLineDies) {
  auto p = redhawk_rig(135);
  p->boot();
  EXPECT_DEATH(p->rcim_device().trigger_external(4), "line");
  EXPECT_DEATH(p->rcim_device().trigger_external(-1), "line");
}

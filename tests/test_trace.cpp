// The event trace: ring-buffer mechanics and the kernel's emissions.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "sim/trace.h"

using namespace testutil;
using namespace sim::literals;

TEST(Trace, DisabledByDefaultCostsNothing) {
  sim::Trace t;
  EXPECT_FALSE(t.enabled());
  t.record(1, sim::TraceCategory::kSched, 0, "ignored");
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  sim::Trace t;
  t.enable();
  t.record(5, sim::TraceCategory::kIrq, 1, "eth0");
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records().front().at, 5u);
  EXPECT_EQ(t.records().front().cpu, 1);
  EXPECT_EQ(t.records().front().message, "eth0");
}

TEST(Trace, RingBufferDropsOldest) {
  sim::Trace t;
  t.enable(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    t.record(static_cast<sim::Time>(i), sim::TraceCategory::kSched, 0,
             std::to_string(i));
  }
  ASSERT_EQ(t.records().size(), 3u);
  EXPECT_EQ(t.records().front().message, "2");
  EXPECT_EQ(t.records().back().message, "4");
}

TEST(Trace, FilterByCategory) {
  sim::Trace t;
  t.enable();
  t.record(1, sim::TraceCategory::kSched, 0, "a");
  t.record(2, sim::TraceCategory::kIrq, 0, "b");
  t.record(3, sim::TraceCategory::kSched, 1, "c");
  EXPECT_EQ(t.count(sim::TraceCategory::kSched), 2u);
  EXPECT_EQ(t.by_category(sim::TraceCategory::kIrq).size(), 1u);
}

TEST(Trace, DumpIsHumanReadable) {
  sim::Trace t;
  t.enable();
  t.record(1500, sim::TraceCategory::kShield, 1, "mask=2");
  const std::string s = t.dump();
  EXPECT_NE(s.find("[shield]"), std::string::npos);
  EXPECT_NE(s.find("cpu1"), std::string::npos);
  EXPECT_NE(s.find("mask=2"), std::string::npos);
}

TEST(Trace, KernelEmitsSchedulingRecords) {
  auto p = vanilla_rig(171);
  p->engine().trace().enable();
  spawn_hog(p->kernel(), "traced");
  p->boot();
  p->run_for(200_ms);
  auto& t = p->engine().trace();
  EXPECT_GT(t.count(sim::TraceCategory::kSched), 0u);
  bool saw_switch = false;
  for (const auto& r : t.by_category(sim::TraceCategory::kSched)) {
    if (r.message.find("switch to traced") != std::string::npos) {
      saw_switch = true;
    }
  }
  EXPECT_TRUE(saw_switch);
}

// ---------------------------------------------------------------------------
// ChainTracer unit tests. When the tracer is compiled out these skip: the
// stub API still links (tested by the build itself), it just records nothing.
// ---------------------------------------------------------------------------

TEST(ChainTracer, DisabledOpenReturnsInvalidId) {
  sim::ChainTracer t;
  EXPECT_FALSE(t.enabled());
  const sim::ChainId id = t.open("irq8", 100);
  EXPECT_FALSE(id.valid());
  // Everything downstream of an invalid id is a no-op.
  t.mark(id, sim::SegmentKind::kIrqHandler, 0, 200);
  EXPECT_FALSE(t.close(id, sim::SegmentKind::kKernelExit, 0, 300).has_value());
  EXPECT_EQ(t.opened(), 0u);
}

TEST(ChainTracer, SegmentsPartitionTheChainExactly) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  sim::ChainTracer t;
  t.enable();
  const sim::ChainId id = t.open("irq8", 1'000);
  t.mark(id, sim::SegmentKind::kIrqRaise, 1, 1'450);
  t.mark(id, sim::SegmentKind::kIrqHandler, 1, 3'000);
  t.mark(id, sim::SegmentKind::kSpinWait, 1, 9'000, "bkl");
  const auto chain = t.close(id, sim::SegmentKind::kKernelExit, 1, 12'345);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->origin, "irq8");
  EXPECT_EQ(chain->total(), 11'345u);
  EXPECT_EQ(chain->segment_total(), chain->total());
  ASSERT_EQ(chain->segments.size(), 4u);
  EXPECT_EQ(chain->segments[0].kind, sim::SegmentKind::kIrqRaise);
  EXPECT_EQ(chain->segments[2].detail, "bkl");
  EXPECT_EQ(chain->total_for(sim::SegmentKind::kSpinWait), 6'000u);
  // Adjacent segments tile [start, end] with no gaps.
  for (std::size_t i = 1; i < chain->segments.size(); ++i) {
    EXPECT_EQ(chain->segments[i].begin, chain->segments[i - 1].end);
  }
  EXPECT_EQ(t.completed(), 1u);
  // The formatted decomposition names every segment.
  const std::string s = chain->format();
  EXPECT_NE(s.find("irq-raise"), std::string::npos);
  EXPECT_NE(s.find("spin-wait"), std::string::npos);
  EXPECT_NE(s.find("(bkl)"), std::string::npos);
}

TEST(ChainTracer, BackwardMarkIsClampedToKeepPartitionExact) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  sim::ChainTracer t;
  t.enable();
  const sim::ChainId id = t.open("ktimer", 1'000);
  t.mark(id, sim::SegmentKind::kTimerExpiry, 0, 2'000);
  // A mark at or before the previous one must not produce a negative or
  // overlapping segment; it is dropped.
  t.mark(id, sim::SegmentKind::kRunqueueWait, 0, 1'500);
  t.mark(id, sim::SegmentKind::kRunqueueWait, 0, 2'000);
  const auto chain = t.close(id, sim::SegmentKind::kContextSwitch, 0, 5'000);
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->segments.size(), 2u);
  EXPECT_EQ(chain->segment_total(), chain->total());
}

TEST(ChainTracer, StaleIdsAreRejectedAfterSlotReuse) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  sim::ChainTracer t;
  t.enable();
  const sim::ChainId first = t.open("irq1", 10);
  t.abandon(first);
  const sim::ChainId second = t.open("irq2", 20);  // reuses the slot
  EXPECT_FALSE(t.alive(first));
  EXPECT_TRUE(t.alive(second));
  t.mark(first, sim::SegmentKind::kIrqHandler, 0, 30);  // no-op
  EXPECT_FALSE(t.close(first, sim::SegmentKind::kKernelExit, 0, 40).has_value());
  const auto chain = t.close(second, sim::SegmentKind::kKernelExit, 0, 50);
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->segments.size(), 1u);
  EXPECT_EQ(chain->segments[0].begin, 20u);  // second's history, not first's
  EXPECT_EQ(t.abandoned(), 1u);
  EXPECT_EQ(t.completed(), 1u);
}

TEST(ChainTracer, LiveCapDropsExcessOpens) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  sim::ChainTracer t;
  t.enable(/*max_live=*/2);
  const sim::ChainId a = t.open("a", 1);
  const sim::ChainId b = t.open("b", 2);
  const sim::ChainId c = t.open("c", 3);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(t.dropped(), 1u);
  t.abandon(a);
  EXPECT_TRUE(t.open("d", 4).valid());  // slot freed, under the cap again
}

TEST(ChainTracer, DisableAbandonsChainsInFlight) {
  if (!sim::ChainTracer::compiled_in()) GTEST_SKIP();
  sim::ChainTracer t;
  t.enable();
  const sim::ChainId a = t.open("a", 1);
  t.disable();
  EXPECT_FALSE(t.alive(a));
  EXPECT_EQ(t.abandoned(), 1u);
  EXPECT_EQ(t.live(), 0u);
  EXPECT_FALSE(t.open("late", 2).valid());
}

TEST(Trace, KernelEmitsSyscallAndShieldRecords) {
  auto p = redhawk_rig(172);
  p->engine().trace().enable();
  auto& k = p->kernel();
  kernel::ProgramBuilder b;
  b.work(1_us, 0.3);
  spawn_scripted(k, {.name = "caller"},
                 {kernel::SyscallAction{"mysyscall", std::move(b).build()}});
  auto& hog = spawn_hog(k, "victim");
  (void)hog;
  p->boot();
  p->run_for(100_ms);
  p->shield().set_process_shield(hw::CpuMask::single(1));
  p->run_for(100_ms);
  auto& t = p->engine().trace();
  bool saw_syscall = false;
  for (const auto& r : t.by_category(sim::TraceCategory::kSyscall)) {
    if (r.message.find("mysyscall") != std::string::npos) saw_syscall = true;
  }
  EXPECT_TRUE(saw_syscall);
}

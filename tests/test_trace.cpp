// The event trace: ring-buffer mechanics and the kernel's emissions.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "sim/trace.h"

using namespace testutil;
using namespace sim::literals;

TEST(Trace, DisabledByDefaultCostsNothing) {
  sim::Trace t;
  EXPECT_FALSE(t.enabled());
  t.record(1, sim::TraceCategory::kSched, 0, "ignored");
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  sim::Trace t;
  t.enable();
  t.record(5, sim::TraceCategory::kIrq, 1, "eth0");
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records().front().at, 5u);
  EXPECT_EQ(t.records().front().cpu, 1);
  EXPECT_EQ(t.records().front().message, "eth0");
}

TEST(Trace, RingBufferDropsOldest) {
  sim::Trace t;
  t.enable(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    t.record(static_cast<sim::Time>(i), sim::TraceCategory::kSched, 0,
             std::to_string(i));
  }
  ASSERT_EQ(t.records().size(), 3u);
  EXPECT_EQ(t.records().front().message, "2");
  EXPECT_EQ(t.records().back().message, "4");
}

TEST(Trace, FilterByCategory) {
  sim::Trace t;
  t.enable();
  t.record(1, sim::TraceCategory::kSched, 0, "a");
  t.record(2, sim::TraceCategory::kIrq, 0, "b");
  t.record(3, sim::TraceCategory::kSched, 1, "c");
  EXPECT_EQ(t.count(sim::TraceCategory::kSched), 2u);
  EXPECT_EQ(t.by_category(sim::TraceCategory::kIrq).size(), 1u);
}

TEST(Trace, DumpIsHumanReadable) {
  sim::Trace t;
  t.enable();
  t.record(1500, sim::TraceCategory::kShield, 1, "mask=2");
  const std::string s = t.dump();
  EXPECT_NE(s.find("[shield]"), std::string::npos);
  EXPECT_NE(s.find("cpu1"), std::string::npos);
  EXPECT_NE(s.find("mask=2"), std::string::npos);
}

TEST(Trace, KernelEmitsSchedulingRecords) {
  auto p = vanilla_rig(171);
  p->engine().trace().enable();
  spawn_hog(p->kernel(), "traced");
  p->boot();
  p->run_for(200_ms);
  auto& t = p->engine().trace();
  EXPECT_GT(t.count(sim::TraceCategory::kSched), 0u);
  bool saw_switch = false;
  for (const auto& r : t.by_category(sim::TraceCategory::kSched)) {
    if (r.message.find("switch to traced") != std::string::npos) {
      saw_switch = true;
    }
  }
  EXPECT_TRUE(saw_switch);
}

TEST(Trace, KernelEmitsSyscallAndShieldRecords) {
  auto p = redhawk_rig(172);
  p->engine().trace().enable();
  auto& k = p->kernel();
  kernel::ProgramBuilder b;
  b.work(1_us, 0.3);
  spawn_scripted(k, {.name = "caller"},
                 {kernel::SyscallAction{"mysyscall", std::move(b).build()}});
  auto& hog = spawn_hog(k, "victim");
  (void)hog;
  p->boot();
  p->run_for(100_ms);
  p->shield().set_process_shield(hw::CpuMask::single(1));
  p->run_for(100_ms);
  auto& t = p->engine().trace();
  bool saw_syscall = false;
  for (const auto& r : t.by_category(sim::TraceCategory::kSyscall)) {
    if (r.message.find("mysyscall") != std::string::npos) saw_syscall = true;
  }
  EXPECT_TRUE(saw_syscall);
}

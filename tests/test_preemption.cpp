// The preemption taxonomy (§6): user code is always preemptible; on
// vanilla 2.4 a syscall runs to completion before a woken RT task can take
// the CPU; the preemption patch allows preemption except inside critical
// sections.
#include <gtest/gtest.h>

#include "kernel_test_util.h"

using namespace testutil;
using namespace sim::literals;

namespace {

/// Measure how long a top-priority task, woken at a chosen instant, waits
/// before it actually runs on a machine busy with `busy_program` loops on
/// both CPUs.
sim::Duration wake_latency(config::Platform& p,
                           std::function<kernel::KernelProgram(kernel::Kernel&)>
                               make_busy_program,
                           sim::Duration wake_after) {
  auto& k = p.kernel();
  spawn_syscall_loop(k, "busy0", make_busy_program, hw::CpuMask::single(0));
  spawn_syscall_loop(k, "busy1", make_busy_program, hw::CpuMask::single(1));

  // RT task: blocks on a wait queue, then stamps the time it runs.
  std::vector<sim::Time> marks;
  const auto wq = k.create_wait_queue("test");
  kernel::Kernel::TaskParams tp;
  tp.name = "rt";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 90;
  spawn_scripted(k, std::move(tp),
                 {kernel::SyscallAction{
                     "wait", kernel::ProgramBuilder{}.block(wq).build()}},
                 &marks);

  p.boot();
  sim::Time woke_at = 0;
  p.engine().schedule(wake_after, [&] {
    woke_at = k.now();
    k.wake_up_one(wq);
  });
  p.run_for(wake_after + 5_s);

  // marks: [t0 start, t1 after wait syscall completed]
  if (marks.size() < 2 || woke_at == 0) return ~sim::Duration{0};
  return marks[1] - woke_at;
}

}  // namespace

TEST(Preemption, UserModeCurrentIsPreemptedImmediately) {
  auto p = vanilla_rig(21);
  auto& k = p->kernel();
  spawn_hog(k, "user0", hw::CpuMask::single(0));
  spawn_hog(k, "user1", hw::CpuMask::single(1));

  std::vector<sim::Time> marks;
  kernel::Kernel::TaskParams tp;
  tp.name = "rt";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 90;
  const auto wq = k.create_wait_queue("test");
  spawn_scripted(k, std::move(tp),
                 {kernel::SyscallAction{
                     "wait", kernel::ProgramBuilder{}.block(wq).build()}},
                 &marks);
  p->boot();
  sim::Time woke_at = 0;
  p->engine().schedule(50_ms, [&] {
    woke_at = k.now();
    k.wake_up_one(wq);
  });
  p->run_for(1_s);
  ASSERT_EQ(marks.size(), 2u);
  // Preempting a user-mode hog costs only a context switch: microseconds.
  EXPECT_LT(marks[1] - woke_at, 30_us);
}

TEST(Preemption, VanillaWaitsForSyscallCompletion) {
  // Busy tasks run 5 ms non-preemptible syscalls back to back. On vanilla,
  // an RT wake must wait for the remainder — milliseconds.
  auto p = vanilla_rig(22);
  const auto lat = wake_latency(
      *p,
      [](kernel::Kernel&) {
        return kernel::ProgramBuilder{}.work(5_ms, 0.3).build();
      },
      53_ms + 137_us /* land mid-syscall */);
  EXPECT_GT(lat, 300_us);
  EXPECT_LT(lat, 7_ms);
}

TEST(Preemption, PreemptKernelInterruptsSyscallBody) {
  // Same busy pattern on a preemptible kernel: the body is interruptible,
  // so the RT task runs within tens of microseconds.
  auto p = std::make_unique<config::Platform>(
      config::MachineConfig::dual_p3_xeon_933(),
      config::KernelConfig::patched_preempt_lowlat(), 22);
  const auto lat = wake_latency(
      *p,
      [](kernel::Kernel&) {
        return kernel::ProgramBuilder{}.work(5_ms, 0.3).build();
      },
      53_ms + 137_us);
  EXPECT_LT(lat, 50_us);
}

namespace {

/// Deterministic single-CPU scenario: one busy task pinned to CPU 0 runs a
/// single long syscall built by `make_program`; the RT task (also pinned to
/// CPU 0) is woken `wake_at` into the run. Returns (rt_ran_at - woke_at)
/// and the busy task's syscall window via out-params.
sim::Duration pinned_wake_latency(config::Platform& p,
                                  kernel::KernelProgram program,
                                  sim::Duration wake_at,
                                  sim::Time* busy_start = nullptr,
                                  sim::Time* busy_end = nullptr) {
  auto& k = p.kernel();
  std::vector<sim::Time> busy_marks;
  spawn_scripted(k, {.name = "busy", .affinity = hw::CpuMask::single(0)},
                 {kernel::SyscallAction{"long", std::move(program)}},
                 &busy_marks);
  std::vector<sim::Time> rt_marks;
  kernel::Kernel::TaskParams tp;
  tp.name = "rt";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 90;
  tp.affinity = hw::CpuMask::single(0);
  const auto wq = k.create_wait_queue("test");
  spawn_scripted(k, std::move(tp),
                 {kernel::SyscallAction{
                     "wait", kernel::ProgramBuilder{}.block(wq).build()}},
                 &rt_marks);
  p.boot();
  sim::Time woke_at = 0;
  p.engine().schedule(wake_at, [&] {
    woke_at = k.now();
    k.wake_up_one(wq);
  });
  p.run_for(5_s);
  if (busy_marks.size() >= 2) {
    if (busy_start != nullptr) *busy_start = busy_marks[0];
    if (busy_end != nullptr) *busy_end = busy_marks[1];
  }
  if (rt_marks.size() < 2 || woke_at == 0) return ~sim::Duration{0};
  return rt_marks[1] - woke_at;
}

}  // namespace

TEST(Preemption, CriticalSectionDefersPreemptionUntilItsEnd) {
  // Preempt kernel; the busy task holds a lock from ~0 to ~20 ms and then
  // does 20 ms of preemptible work. The wake at 5 ms must wait for the
  // section end (~15 ms more) but NOT for the whole syscall.
  auto p = std::make_unique<config::Platform>(
      config::MachineConfig::dual_p3_xeon_933(),
      config::KernelConfig::patched_preempt_lowlat(), 23);
  const auto lat = pinned_wake_latency(
      *p,
      kernel::ProgramBuilder{}
          .section(kernel::LockId::kFs, 20_ms)
          .work(20_ms, 0.3)
          .build(),
      5_ms);
  EXPECT_GT(lat, 10_ms);  // waited for the section
  EXPECT_LT(lat, 17_ms);  // but not for the trailing 20 ms of body
}

TEST(Preemption, ExplicitPreemptDisableAlsoDefers) {
  auto p = std::make_unique<config::Platform>(
      config::MachineConfig::dual_p3_xeon_933(),
      config::KernelConfig::patched_preempt_lowlat(), 24);
  const auto lat = pinned_wake_latency(
      *p,
      kernel::ProgramBuilder{}.preempt_off(20_ms).work(20_ms, 0.3).build(),
      5_ms);
  EXPECT_GT(lat, 10_ms);
  EXPECT_LT(lat, 17_ms);
}

TEST(Preemption, NeedReschedHandledAtSyscallExit) {
  // Vanilla: RT woken mid-syscall runs exactly when the syscall finishes.
  auto p = vanilla_rig(25);
  auto& k = p->kernel();
  // One busy task pinned to CPU 0 doing a single long syscall.
  std::vector<sim::Time> busy_marks;
  kernel::ProgramBuilder b;
  b.work(20_ms, 0.0);
  spawn_scripted(k, {.name = "busy", .affinity = hw::CpuMask::single(0)},
                 {kernel::SyscallAction{"long", std::move(b).build()}},
                 &busy_marks);
  // RT task pinned to the same CPU, woken 5 ms into the syscall.
  std::vector<sim::Time> rt_marks;
  kernel::Kernel::TaskParams tp;
  tp.name = "rt";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 90;
  tp.affinity = hw::CpuMask::single(0);
  const auto wq = k.create_wait_queue("test");
  spawn_scripted(k, std::move(tp),
                 {kernel::SyscallAction{
                     "wait", kernel::ProgramBuilder{}.block(wq).build()}},
                 &rt_marks);
  p->boot();
  p->engine().schedule(5_ms, [&] { k.wake_up_one(wq); });
  p->run_for(1_s);
  ASSERT_EQ(rt_marks.size(), 2u);
  ASSERT_EQ(busy_marks.size(), 2u);
  // The RT task ran only after the busy syscall finished (~20 ms mark),
  // i.e. it waited ~15 ms even though it was top priority.
  EXPECT_GT(rt_marks[1], busy_marks[0] + 20_ms);
  EXPECT_LT(rt_marks[1], busy_marks[1] + 1_ms);
}

TEST(Preemption, TimesliceExpiryRotatesEqualPriorityOther) {
  auto p = vanilla_rig(26);
  auto& k = p->kernel();
  const auto one = hw::CpuMask::single(0);
  auto& a = spawn_hog(k, "a", one);
  auto& b = spawn_hog(k, "b", one);
  p->boot();
  p->run_for(3_s);
  const double ratio = static_cast<double>(a.utime) /
                       static_cast<double>(b.utime == 0 ? 1 : b.utime);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

// Cross-configuration semantics matrix: the same mixed scenario runs under
// every (kernel preset × shield state) combination, and the execution
// invariants must hold in all of them. Complements the fuzz tests with a
// deterministic, structured scenario.
#include <gtest/gtest.h>

#include <tuple>

#include "kernel/syscalls.h"
#include "kernel_test_util.h"
#include "workload/disk_noise.h"
#include "workload/ttcp.h"

using namespace testutil;
using namespace sim::literals;

namespace {

enum class KernelKind { kVanilla, kPreemptLowlat, kRedHawk };
enum class ShieldKind { kNone, kFull };

struct MatrixParams {
  KernelKind kernel;
  ShieldKind shield;
};

config::KernelConfig config_for(KernelKind k) {
  switch (k) {
    case KernelKind::kVanilla: return config::KernelConfig::vanilla_2_4_20();
    case KernelKind::kPreemptLowlat:
      return config::KernelConfig::patched_preempt_lowlat();
    case KernelKind::kRedHawk: return config::KernelConfig::redhawk_1_4();
  }
  return config::KernelConfig::vanilla_2_4_20();
}

class SemanticsMatrix : public ::testing::TestWithParam<MatrixParams> {};

}  // namespace

TEST_P(SemanticsMatrix, ScenarioRunsCleanlyEverywhere) {
  const auto [kind, shield_kind] = GetParam();
  auto kcfg = config_for(kind);
  const bool can_shield = kcfg.shield_support;
  if (shield_kind == ShieldKind::kFull && !can_shield) {
    GTEST_SKIP() << "kernel has no shield support";
  }

  config::Platform p(config::MachineConfig::dual_p3_xeon_933(), kcfg, 777);
  workload::DiskNoise{}.install(p);
  workload::TtcpLoopback{}.install(p);

  // An RT consumer fed by the RTC at 256 Hz.
  auto& k = p.kernel();
  p.rtc_device().set_rate_hz(256);
  auto consumed = std::make_shared<int>(0);
  kernel::Kernel::TaskParams tp;
  tp.name = "consumer";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 88;
  tp.mlocked = true;
  if (shield_kind == ShieldKind::kFull) tp.affinity = hw::CpuMask::single(1);
  auto& rt = workload::spawn(
      k, std::move(tp),
      [consumed, &p](kernel::Kernel&, kernel::Task&) -> kernel::Action {
        (*consumed)++;
        return kernel::SyscallAction{"read(/dev/rtc)",
                                     p.rtc_driver().read_program()};
      });

  p.boot();
  if (shield_kind == ShieldKind::kFull) {
    p.shield().dedicate_cpu(1, rt, p.rtc_device().irq());
  }
  p.rtc_device().start_periodic();
  p.run_for(5_s);

  // 1. The RT consumer kept pace with the interrupt source.
  EXPECT_GT(*consumed, 1200);  // ~1280 expected at 256 Hz
  // 2. Background progressed too (no starvation of the whole system).
  auto* dn = k.find_task("disknoise");
  ASSERT_NE(dn, nullptr);
  EXPECT_GT(dn->syscalls, 50u);
  // 3. Lock discipline held.
  for (const auto& t : k.tasks()) {
    if (!t->in_syscall) {
      EXPECT_EQ(t->preempt_count, 0) << t->name;
      EXPECT_EQ(t->bkl_depth, 0) << t->name;
    }
  }
  // 4. Shielded runs kept the RT task home and interrupt-free CPUs clean.
  if (shield_kind == ShieldKind::kFull) {
    EXPECT_EQ(rt.cpu, 1);
    EXPECT_EQ(rt.migrations, 0u);
  }
  // 5. mlocked RT task never faulted.
  EXPECT_EQ(rt.minor_faults, 0u);
  // 6. Sane accounting everywhere.
  for (const auto& t : k.tasks()) {
    EXPECT_LE(t->utime + t->stime, p.engine().now() + 1_ms) << t->name;
  }
}

TEST_P(SemanticsMatrix, DeterministicAcrossReruns) {
  const auto [kind, shield_kind] = GetParam();
  auto kcfg = config_for(kind);
  if (shield_kind == ShieldKind::kFull && !kcfg.shield_support) {
    GTEST_SKIP();
  }
  const auto run = [&] {
    config::Platform p(config::MachineConfig::dual_p3_xeon_933(), kcfg, 888);
    workload::DiskNoise{}.install(p);
    p.boot();
    if (shield_kind == ShieldKind::kFull) {
      p.shield().shield_all(hw::CpuMask::single(1));
    }
    p.run_for(2_s);
    return p.engine().events_executed();
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SemanticsMatrix,
    ::testing::Values(MatrixParams{KernelKind::kVanilla, ShieldKind::kNone},
                      MatrixParams{KernelKind::kPreemptLowlat, ShieldKind::kNone},
                      MatrixParams{KernelKind::kRedHawk, ShieldKind::kNone},
                      MatrixParams{KernelKind::kVanilla, ShieldKind::kFull},
                      MatrixParams{KernelKind::kPreemptLowlat, ShieldKind::kFull},
                      MatrixParams{KernelKind::kRedHawk, ShieldKind::kFull}));

#include <gtest/gtest.h>

#include "hw/cpu_mask.h"

using hw::CpuMask;

TEST(CpuMask, EmptyByDefault) {
  CpuMask m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.count(), 0);
}

TEST(CpuMask, SingleAndFirstN) {
  EXPECT_EQ(CpuMask::single(0).bits(), 1u);
  EXPECT_EQ(CpuMask::single(5).bits(), 32u);
  EXPECT_EQ(CpuMask::first_n(2).bits(), 3u);
  EXPECT_EQ(CpuMask::first_n(4).bits(), 15u);
  EXPECT_EQ(CpuMask::first_n(64).bits(), ~std::uint64_t{0});
}

TEST(CpuMask, SetClearTest) {
  CpuMask m;
  m.set(3);
  EXPECT_TRUE(m.test(3));
  EXPECT_FALSE(m.test(2));
  m.clear(3);
  EXPECT_TRUE(m.empty());
}

TEST(CpuMask, FirstAndCount) {
  CpuMask m(0b101000);
  EXPECT_EQ(m.first(), 3);
  EXPECT_EQ(m.count(), 2);
}

TEST(CpuMask, SubsetOf) {
  EXPECT_TRUE(CpuMask(0b010).subset_of(CpuMask(0b110)));
  EXPECT_FALSE(CpuMask(0b011).subset_of(CpuMask(0b110)));
  EXPECT_TRUE(CpuMask().subset_of(CpuMask(0b1)));  // empty ⊆ anything
  EXPECT_TRUE(CpuMask(0b11).subset_of(CpuMask(0b11)));
}

TEST(CpuMask, Intersects) {
  EXPECT_TRUE(CpuMask(0b011).intersects(CpuMask(0b110)));
  EXPECT_FALSE(CpuMask(0b001).intersects(CpuMask(0b110)));
}

TEST(CpuMask, Operators) {
  const CpuMask a(0b1100), b(0b1010);
  EXPECT_EQ((a & b).bits(), 0b1000u);
  EXPECT_EQ((a | b).bits(), 0b1110u);
  EXPECT_EQ((~a & CpuMask::first_n(4)).bits(), 0b0011u);
  EXPECT_EQ(a, CpuMask(0b1100));
  EXPECT_NE(a, b);
}

TEST(CpuMask, ForEachAscending) {
  CpuMask m(0b100101);
  std::vector<int> cpus;
  m.for_each([&](hw::CpuId c) { cpus.push_back(c); });
  EXPECT_EQ(cpus, (std::vector<int>{0, 2, 5}));
}

TEST(CpuMask, HexFormat) {
  EXPECT_EQ(CpuMask(0).to_hex(), "0");
  EXPECT_EQ(CpuMask(3).to_hex(), "3");
  EXPECT_EQ(CpuMask(255).to_hex(), "ff");
}

TEST(CpuMask, ParseHexValid) {
  CpuMask m;
  EXPECT_TRUE(CpuMask::parse_hex("2", m));
  EXPECT_EQ(m.bits(), 2u);
  EXPECT_TRUE(CpuMask::parse_hex("0xff", m));
  EXPECT_EQ(m.bits(), 255u);
  EXPECT_TRUE(CpuMask::parse_hex("  3\n", m));  // procfs-style trailing \n
  EXPECT_EQ(m.bits(), 3u);
  EXPECT_TRUE(CpuMask::parse_hex("DEAD", m));
  EXPECT_EQ(m.bits(), 0xDEADu);
}

TEST(CpuMask, ParseHexInvalid) {
  CpuMask m;
  EXPECT_FALSE(CpuMask::parse_hex("", m));
  EXPECT_FALSE(CpuMask::parse_hex("xyz", m));
  EXPECT_FALSE(CpuMask::parse_hex("12345678901234567", m));  // > 16 digits
  EXPECT_FALSE(CpuMask::parse_hex("1 2", m));
}

// Round-trip property over a sweep of masks.
class CpuMaskRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuMaskRoundTrip, HexRoundTrips) {
  const CpuMask m(GetParam());
  CpuMask back;
  ASSERT_TRUE(CpuMask::parse_hex(m.to_hex(), back));
  EXPECT_EQ(back, m);
}

INSTANTIATE_TEST_SUITE_P(Masks, CpuMaskRoundTrip,
                         ::testing::Values(0ull, 1ull, 2ull, 3ull, 0xffull,
                                           0xdeadbeefull, ~0ull));

// Administering shields the way a RedHawk sysadmin would: through the
// /proc text interface, while the system runs — demonstrating §3's
// "dynamically enabled" property and the affinity-interaction semantics.
#include <cstdio>
#include <string>

#include "config/platform.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

namespace {

void show(config::Platform& p, const std::string& when) {
  auto& fs = p.kernel().procfs();
  std::printf("\n-- %s --\n", when.c_str());
  for (const char* f : {"/proc/shield/procs", "/proc/shield/irqs",
                        "/proc/shield/ltmr"}) {
    std::printf("  %-24s %s", f, fs.read(f).value_or("?\n").c_str());
  }
  std::printf("  %-24s %s", "/proc/irq/8/smp_affinity",
              fs.read("/proc/irq/8/smp_affinity").value_or("?\n").c_str());
  std::printf("  local timer CPU1:        %s\n",
              p.kernel().local_timer().enabled(1) ? "ticking" : "off");
  int on_cpu1 = 0;
  for (const auto& t : p.kernel().tasks()) {
    if (t->state != kernel::TaskState::kExited &&
        t->effective_affinity.test(1) && !t->name.starts_with("ksoftirqd")) {
      ++on_cpu1;
    }
  }
  std::printf("  tasks allowed on CPU1:   %d\n", on_cpu1);
}

}  // namespace

int main() {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(),
                     config::KernelConfig::redhawk_1_4(), 7);
  workload::StressKernel{}.install(p);
  p.boot();
  auto& fs = p.kernel().procfs();

  p.run_for(1_s);
  show(p, "before shielding (system under stress-kernel load)");

  // Step 1: steer the RTC interrupt to CPU 1 — the "only shielded CPUs"
  // affinity that opts the interrupt onto the shield.
  fs.write("/proc/irq/8/smp_affinity", "2\n");

  // Step 2: shield CPU 1 from processes, maskable interrupts, and the
  // local timer — three separate writes, as the real files are separate.
  fs.write("/proc/shield/procs", "2\n");
  fs.write("/proc/shield/irqs", "2\n");
  fs.write("/proc/shield/ltmr", "2\n");
  p.run_for(1_s);
  show(p, "after echo 2 > /proc/shield/{procs,irqs,ltmr}");

  // Step 3: tuning experiment — drop only the local-timer shield (say the
  // application wants CPU-time accounting back, §3's trade-off).
  fs.write("/proc/shield/ltmr", "0\n");
  p.run_for(1_s);
  show(p, "after echo 0 > /proc/shield/ltmr (accounting restored)");

  // Step 4: drop everything; the system returns to normal symmetric use.
  fs.write("/proc/shield/procs", "0\n");
  fs.write("/proc/shield/irqs", "0\n");
  p.run_for(1_s);
  show(p, "after unshielding");

  std::printf(
      "\nEverything above happened on a live, loaded system — shields are\n"
      "reconfigured dynamically, no reboot, exactly as §3 describes.\n");
  return 0;
}

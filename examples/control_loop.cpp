// A 1 kHz closed-loop controller — the "tasks that must be run at very
// high frequencies" use case from §2 — with hard deadline accounting.
//
// Each cycle the controller waits for the RCIM tick, reads sensors
// (mmap'd: free), computes the control law (~120 us of math), and actuates.
// A cycle that finishes after 40% of the period counts as a deadline miss.
// The program runs the same controller unshielded and shielded and prints
// the miss rates side by side.
#include <cstdio>
#include <memory>

#include "config/platform.h"
#include "metrics/histogram.h"
#include "workload/stress_kernel.h"
#include "workload/workload.h"

using namespace sim::literals;

namespace {

struct ControlStats {
  metrics::LatencyHistogram cycle_completion;  // time from tick to actuation
  std::uint64_t cycles = 0;
  std::uint64_t deadline_misses = 0;
};

/// Install the controller task; returns its stats holder.
std::shared_ptr<ControlStats> install_controller(config::Platform& p,
                                                 sim::Duration deadline) {
  auto stats = std::make_shared<ControlStats>();
  auto& k = p.kernel();
  auto& rcim = p.rcim_device();
  auto& driver = p.rcim_driver();

  kernel::Kernel::TaskParams tp;
  tp.name = "servo-control";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = 97;
  tp.affinity = hw::CpuMask::single(1);
  tp.mlocked = true;
  tp.memory_intensity = 0.3;

  struct Phase {
    int step = 0;
  };
  auto phase = std::make_shared<Phase>();
  workload::spawn(
      k, std::move(tp),
      [stats, phase, &driver, &rcim, deadline](
          kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
        switch (phase->step) {
          case 0:  // wait for the next control tick
            phase->step = 1;
            return kernel::SyscallAction{"ioctl(RCIM_WAIT)",
                                         driver.wait_ioctl_program()};
          case 1:  // sensor read is an mmap'd register: free; now compute
            phase->step = 2;
            return kernel::ComputeAction{120_us, 0.3};
          default: {  // actuate: measure tick→done, account the deadline
            phase->step = 0;
            const sim::Duration elapsed = kk.now() - rcim.last_fire();
            stats->cycle_completion.add(elapsed);
            stats->cycles++;
            if (elapsed > deadline) stats->deadline_misses++;
            return kernel::SyscallAction{
                "write(dac)",
                kernel::ProgramBuilder{}
                    .section(kernel::LockId::kRcim, 300_ns, 0.3)
                    .build()};
          }
        }
      });
  return stats;
}

std::shared_ptr<ControlStats> run_case(bool shielded, sim::Duration seconds) {
  config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                     config::KernelConfig::redhawk_1_4(), 2026);
  workload::StressKernel{}.install(p);
  const sim::Duration period = 1_ms;
  const sim::Duration deadline = period * 2 / 5;  // 400 us
  auto stats = install_controller(p, deadline);
  p.boot();
  if (shielded) {
    p.kernel().procfs().write("/proc/irq/5/smp_affinity", "2");  // RCIM → CPU 1
    p.shield().shield_all(hw::CpuMask::single(1));
  }
  p.rcim_device().program_periodic(2'500);  // 1 ms at 400 ns/tick
  p.run_for(seconds);
  return stats;
}

}  // namespace

int main() {
  const sim::Duration run_time = 60_s;
  std::printf("1 kHz servo loop, 400 us deadline, stress-kernel load, 60 s\n\n");
  std::printf("  %-12s %10s %10s %12s %14s\n", "config", "cycles", "misses",
              "worst", "p99.99");
  std::printf("  %s\n", std::string(64, '-').c_str());
  for (const bool shielded : {false, true}) {
    const auto s = run_case(shielded, run_time);
    std::printf("  %-12s %10llu %10llu %12s %14s\n",
                shielded ? "shielded" : "unshielded",
                static_cast<unsigned long long>(s->cycles),
                static_cast<unsigned long long>(s->deadline_misses),
                sim::format_duration(s->cycle_completion.max()).c_str(),
                sim::format_duration(s->cycle_completion.percentile(0.9999))
                    .c_str());
  }
  std::printf(
      "\nThe shielded configuration should run every cycle inside the\n"
      "deadline; the unshielded one misses whenever interrupts or kernel\n"
      "activity land on the control CPU at the wrong moment.\n");
  return 0;
}

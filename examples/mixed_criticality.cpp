// Mixed criticality on a quad-CPU box: two independent real-time domains,
// each with its own dedicated shielded CPU, coexisting with a loaded
// general-purpose half of the machine — §2's "one or more shielded CPUs",
// end to end.
//
// Domain A: a 1 kHz motion controller on the RCIM periodic timer (CPU 2).
// Domain B: an event responder on an RCIM external line (CPU 3), fed by an
//           external sensor pulsing every few milliseconds.
// CPUs 0-1 run stress-kernel plus X11 as the "desktop half".
#include <cstdio>
#include <memory>

#include "kernel/stats_report.h"
#include "shieldsim.h"

using namespace sim::literals;

namespace {

struct Domain {
  metrics::LatencyHistogram latency;
  std::uint64_t cycles = 0;
};

}  // namespace

int main() {
  config::Platform p(config::MachineConfig::quad_p4_xeon_2000_rcim(),
                     config::KernelConfig::redhawk_1_4(), 4242);
  workload::StressKernel{}.install(p);
  workload::X11Perf{}.install(p);
  auto& k = p.kernel();
  auto& rcim = p.rcim_device();
  auto& drv = p.rcim_driver();

  // Domain A: periodic motion control on CPU 2.
  auto dom_a = std::make_shared<Domain>();
  kernel::Kernel::TaskParams tpa;
  tpa.name = "motion-ctl";
  tpa.policy = kernel::SchedPolicy::kFifo;
  tpa.rt_priority = 97;
  tpa.affinity = hw::CpuMask::single(2);
  tpa.mlocked = true;
  workload::spawn(k, std::move(tpa),
                  [dom_a, &rcim, &drv](kernel::Kernel&,
                                       kernel::Task&) -> kernel::Action {
                    static thread_local int phase = 0;
                    if (phase == 0) {
                      phase = 1;
                      return kernel::SyscallAction{"ioctl(RCIM_WAIT)",
                                                   drv.wait_ioctl_program()};
                    }
                    phase = 0;
                    dom_a->latency.add(rcim.elapsed_in_cycle());
                    dom_a->cycles++;
                    return kernel::ComputeAction{150_us, 0.3};  // control law
                  });

  // Domain B: sensor-event responder on CPU 3.
  auto dom_b = std::make_shared<Domain>();
  kernel::Kernel::TaskParams tpb;
  tpb.name = "event-resp";
  tpb.policy = kernel::SchedPolicy::kFifo;
  tpb.rt_priority = 96;
  tpb.affinity = hw::CpuMask::single(3);
  tpb.mlocked = true;
  workload::spawn(
      k, std::move(tpb),
      [dom_b, &rcim, &drv](kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
        static thread_local bool waited = false;
        if (waited) {
          dom_b->latency.add(kk.now() - rcim.last_external_edge(0));
          dom_b->cycles++;
        }
        waited = true;
        return kernel::SyscallAction{"ioctl(RCIM_EXT0)",
                                     drv.external_wait_ioctl_program(0)};
      });

  p.boot();
  // Shield CPUs 2 and 3; the RCIM interrupt may be serviced by either.
  k.procfs().write("/proc/irq/5/smp_affinity", "c");  // CPUs {2,3}
  p.shield().shield_all(hw::CpuMask(0b1100));
  rcim.program_periodic(2'500);  // 1 kHz for domain A

  // External sensor: a pulse every 2-5 ms.
  struct Sensor {
    static void arm(sim::Engine& e, hw::RcimDevice& dev,
                    std::shared_ptr<sim::Rng> rng) {
      e.schedule(rng->uniform_duration(2_ms, 5_ms), [&e, &dev, rng] {
        dev.trigger_external(0);
        arm(e, dev, rng);
      });
    }
  };
  auto rng = std::make_shared<sim::Rng>(p.engine().rng().split());
  Sensor::arm(p.engine(), rcim, rng);

  const sim::Duration run_time = 60_s;
  p.run_for(run_time);

  std::printf("quad Xeon, CPUs 2+3 shielded, stress-kernel + X11 on CPUs 0-1\n");
  std::printf("ran %s of simulated time\n\n",
              sim::format_duration(run_time).c_str());
  std::printf("  %-22s %10s %10s %10s %12s\n", "domain", "cycles", "min",
              "avg", "worst");
  std::printf("  %s\n", std::string(70, '-').c_str());
  std::printf("  %-22s %10llu %10s %10s %12s\n", "A: 1 kHz motion ctl",
              static_cast<unsigned long long>(dom_a->cycles),
              sim::format_duration(dom_a->latency.min()).c_str(),
              sim::format_duration(dom_a->latency.mean()).c_str(),
              sim::format_duration(dom_a->latency.max()).c_str());
  std::printf("  %-22s %10llu %10s %10s %12s\n", "B: sensor responder",
              static_cast<unsigned long long>(dom_b->cycles),
              sim::format_duration(dom_b->latency.min()).c_str(),
              sim::format_duration(dom_b->latency.mean()).c_str(),
              sim::format_duration(dom_b->latency.max()).c_str());

  std::printf("\nCPU activity:\n%s",
              kernel::format_cpu_table(p.kernel()).c_str());
  std::printf(
      "\nBoth domains keep tens-of-microseconds worst cases while the other\n"
      "half of the machine runs flat out — independent shields compose.\n");
  return 0;
}

// Quickstart: shield a CPU, bind a real-time task and its interrupt to it,
// and measure worst-case interrupt response under full system load.
//
//   $ ./examples/quickstart
//
// This is the paper's core recipe (§3, §6.3) in ~40 lines of library use.
#include <cstdio>

#include "config/platform.h"
#include "metrics/report.h"
#include "rt/rcim_test.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

int main() {
  // 1. A dual-CPU machine with the RCIM timer card, running RedHawk 1.4.
  config::Platform machine(config::MachineConfig::dual_p4_xeon_2000_rcim(),
                           config::KernelConfig::redhawk_1_4(), /*seed=*/42);

  // 2. Something to be disturbed by: the full stress-kernel suite.
  workload::StressKernel{}.install(machine);

  // 3. A SCHED_FIFO measurement task that waits on the RCIM periodic timer.
  rt::RcimTest::Params params;
  params.count = 2'500;    // 1 ms period
  params.samples = 200'000;
  params.affinity = hw::CpuMask::single(1);
  rt::RcimTest probe(machine.kernel(), machine.rcim_driver(), params);

  // 4. Boot, then dedicate CPU 1: pin the task and the RCIM interrupt to
  //    it and shield it from processes, interrupts and the local timer.
  machine.boot();
  machine.shield().dedicate_cpu(1, probe.task(), machine.rcim_device().irq());
  probe.start();

  // 5. Run five simulated minutes.
  machine.run_for(5 * 60 * sim::kSecond);

  std::printf("shielded CPU 1, %llu interrupts measured\n",
              static_cast<unsigned long long>(probe.collected()));
  std::fputs(metrics::min_avg_max_line(probe.latencies()).c_str(), stdout);
  std::fputs(metrics::ascii_histogram(probe.latencies(), 50, 8).c_str(),
             stdout);
  std::printf("\n(the paper's Fig 7 guarantee: worst case < 30 us)\n");
  return 0;
}

// A data-acquisition front end — the "tasks that require guaranteed
// interrupt response time" use case from §2.
//
// An instrument interrupts at 2048 Hz through /dev/rtc; each interrupt's
// sample must be collected before the next one overwrites the hardware
// latch (one-deep buffer, as on real ADC front ends). A collection that
// arrives later than one period loses samples. The example compares a
// stock 2.4.20 kernel against a shielded RedHawk CPU and reports loss.
#include <cstdio>

#include "config/platform.h"
#include "rt/realfeel_test.h"
#include "workload/disk_noise.h"
#include "workload/scp_copy.h"
#include "workload/stress_kernel.h"

using namespace sim::literals;

namespace {

struct DaqResult {
  std::uint64_t samples;
  std::uint64_t lost;   // latched values overwritten before collection
  sim::Duration worst;
};

DaqResult run_case(const config::KernelConfig& kcfg, bool shield,
                   std::uint64_t samples, std::uint64_t seed) {
  config::Platform p(config::MachineConfig::dual_p3_xeon_933(), kcfg, seed);
  // The lab machine is also someone's desktop: full stress load.
  workload::StressKernel{}.install(p);

  rt::RealfeelTest::Params rp;
  rp.rate_hz = 2048;
  rp.samples = samples;
  if (shield) rp.affinity = hw::CpuMask::single(1);
  rt::RealfeelTest daq(p.kernel(), p.rtc_driver(), rp);

  p.boot();
  if (shield) p.shield().dedicate_cpu(1, daq.task(), p.rtc_device().irq());
  daq.start();
  p.run_for(sim::from_seconds(static_cast<double>(samples) / 2048.0 * 2) + 5_s);

  // A gap-latency above one period means at least one latch overwrite; the
  // number of lost samples is the number of whole periods skipped.
  const sim::Duration period = p.rtc_device().nominal_period();
  std::uint64_t lost = 0;
  for (const auto& b : daq.latencies().nonzero_buckets()) {
    if (b.lo >= period) {
      lost += b.count * (b.lo / period);
    }
  }
  return DaqResult{daq.collected(), lost, daq.latencies().max()};
}

}  // namespace

int main() {
  const std::uint64_t samples = 300'000;  // ~2.5 simulated minutes
  std::printf(
      "2048 Hz instrument, one-deep hardware latch, stress-kernel load\n\n");
  std::printf("  %-34s %10s %10s %12s\n", "configuration", "collected", "lost",
              "worst gap");
  std::printf("  %s\n", std::string(70, '-').c_str());

  const auto vanilla = run_case(config::KernelConfig::vanilla_2_4_20(), false,
                                samples, 99);
  std::printf("  %-34s %10llu %10llu %12s\n", "kernel.org 2.4.20",
              static_cast<unsigned long long>(vanilla.samples),
              static_cast<unsigned long long>(vanilla.lost),
              sim::format_duration(vanilla.worst).c_str());

  const auto shielded = run_case(config::KernelConfig::redhawk_1_4(), true,
                                 samples, 99);
  std::printf("  %-34s %10llu %10llu %12s\n", "RedHawk 1.4, shielded CPU",
              static_cast<unsigned long long>(shielded.samples),
              static_cast<unsigned long long>(shielded.lost),
              sim::format_duration(shielded.worst).c_str());

  std::printf(
      "\nOn the stock kernel the worst-case response (~tens of ms) swallows\n"
      "dozens of consecutive samples; the shielded CPU collects every one.\n");
  return 0;
}

// Deterministic fault-injection engine.
//
// An Injector executes a FaultPlan against a config::Platform: it installs
// hooks on the interrupt controller / devices / local timer and schedules
// Poisson event chains on the platform's engine. Everything is driven by a
// dedicated RNG stream derived from the scenario seed, so runs are
// bit-reproducible and an empty plan perturbs nothing (no hook is installed,
// no RNG is consumed).
//
// Lifecycle: construct after Platform::boot() (and after the probe has set
// up its tasks), call arm() once with the run horizon, then run the
// platform. The Injector must outlive the run — its hooks and saboteur
// behaviors point back into it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/json.h"
#include "fault/fault_plan.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "telemetry/registry.h"

namespace config {
class Platform;
}

namespace fault {

class Injector {
 public:
  /// Counts of what the injector actually did (for tests and the degraded
  /// run report; also the cheapest way to assert "this fault was live").
  struct Stats {
    std::uint64_t storm_raises = 0;     ///< IRQ-storm edges raised
    std::uint64_t spurious_raises = 0;  ///< spurious edges raised
    std::uint64_t lost_irqs = 0;        ///< device raises dropped
    std::uint64_t duplicated_irqs = 0;  ///< extra copies delivered
    std::uint64_t cpu_stalls = 0;       ///< SMI-like stalls injected
    std::uint64_t device_delays = 0;    ///< completions delayed
    std::uint64_t softirq_raises = 0;   ///< flood raises issued
    std::uint64_t lock_holds = 0;       ///< saboteur critical sections
    std::uint64_t skipped_specs = 0;    ///< specs that could not be armed

    [[nodiscard]] config::json::Value to_json() const;
  };

  /// `seed` is the scenario seed; the injector derives its own stream so
  /// installing a plan never shifts the platform's RNG sequences.
  Injector(config::Platform& platform, const FaultPlan& plan,
           std::uint64_t seed);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Install hooks and schedule the fault event chains. Call exactly once;
  /// every fault window is clipped to [0, horizon_end).
  void arm(sim::Time horizon_end);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool armed() const { return armed_; }

  /// Registry cell per Stats field ("fault.events" counter). The counters
  /// live in the engine's registry — not on the injector — because the
  /// injector is destroyed before the platform and gauges over `stats_`
  /// would dangle.
  enum class Event : int {
    kStormRaise = 0,
    kSpuriousRaise,
    kLostIrq,
    kDuplicatedIrq,
    kCpuStall,
    kDeviceDelay,
    kSoftirqRaise,
    kLockHold,
    kSkippedSpec,
    kCount,
  };

  /// Called by the lock-holder saboteur task (and internally at every fault
  /// site): bump stats + registry + flight recorder for one fired fault.
  void note_lock_hold();

 private:
  void note(Event e, std::uint64_t n = 1) { events_.add(static_cast<int>(e), n); }
  /// A recurring Poisson event chain for one rate-driven spec.
  struct Chain {
    const FaultSpec* spec = nullptr;
    sim::Time begin = 0;
    sim::Time end = 0;
    sim::Duration mean = 0;  ///< mean inter-event gap (1/rate)
    sim::Rng rng;
    int rr_cpu = 0;  ///< round-robin cursor for cpu == -1 faults
  };

  /// A lost/duplicate rule folded into the controller's raise filter.
  struct FilterRule {
    int irq = -1;
    bool lose = false;  ///< true: drop; false: duplicate
    double probability = 0;
    sim::Time begin = 0;
    sim::Time end = 0;
  };

  /// A device-delay rule folded into one device's fault_delay closure.
  struct DelayRule {
    double probability = 0;
    sim::Duration min_ns = 0;
    sim::Duration max_ns = 0;
    sim::Time begin = 0;
    sim::Time end = 0;
  };

  void start_chain(std::size_t index);
  void chain_fire(std::size_t index);
  void fire_once(Chain& chain);
  void install_filter();
  void install_device_delays();
  sim::Duration sample_device_delay(std::vector<DelayRule>& rules,
                                    sim::Rng& rng);

  config::Platform& platform_;
  const FaultPlan& plan_;
  std::uint64_t seed_;
  Stats stats_;
  telemetry::Registry::Counter events_;
  bool armed_ = false;
  sim::Time horizon_ = 0;

  std::vector<Chain> chains_;
  std::vector<FilterRule> filter_rules_;
  sim::Rng filter_rng_;
  // Per-device delay rules, keyed by plan token.
  std::vector<DelayRule> disk_rules_, nic_rules_, rtc_rules_, rcim_rules_;
  sim::Rng delay_rng_;
  bool hooked_filter_ = false;
  bool hooked_disk_ = false, hooked_nic_ = false, hooked_rtc_ = false,
       hooked_rcim_ = false;
  bool touched_drift_ = false;
};

}  // namespace fault

#include "fault/injector.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "config/platform.h"
#include "kernel/kernel.h"
#include "kernel/task.h"
#include "sim/assert.h"

namespace fault {
namespace {

using config::json::Value;

/// The saboteur task behind kLockHolderDelay: sleeps Poisson intervals,
/// then enters the kernel and holds the target lock. Runs as an ordinary
/// nice-0 task so it competes like the stress scripts do.
class LockHolderBehavior : public kernel::Behavior {
 public:
  LockHolderBehavior(const FaultSpec& spec, sim::Time begin, sim::Time end,
                     std::uint64_t seed, Injector* injector)
      : lock_(lock_from_token(spec.lock)),
        min_(spec.min_ns),
        max_(spec.max_ns),
        mean_(static_cast<sim::Duration>(1e9 / spec.rate_hz)),
        begin_(begin),
        end_(end),
        rng_(seed),
        injector_(injector) {}

  kernel::Action next_action(kernel::Kernel& kernel,
                             kernel::Task& /*task*/) override {
    const sim::Time now = kernel.now();
    if (now < begin_) return kernel::SleepAction{begin_ - now};
    if (now >= end_) return kernel::ExitAction{};
    if (!slept_) {
      slept_ = true;
      return kernel::SleepAction{
          std::max<sim::Duration>(1, rng_.exponential_duration(mean_))};
    }
    slept_ = false;
    injector_->note_lock_hold();
    const sim::Duration hold = rng_.uniform_duration(min_, max_);
    return kernel::SyscallAction{
        "fault-lock-holder",
        kernel::ProgramBuilder{}.work(500, 0.3).section(lock_, hold).build()};
  }

 private:
  kernel::LockId lock_;
  sim::Duration min_, max_, mean_;
  sim::Time begin_, end_;
  sim::Rng rng_;
  Injector* injector_;
  bool slept_ = false;
};

}  // namespace

Value Injector::Stats::to_json() const {
  Value v = Value::object();
  v.set("storm_raises", storm_raises);
  v.set("spurious_raises", spurious_raises);
  v.set("lost_irqs", lost_irqs);
  v.set("duplicated_irqs", duplicated_irqs);
  v.set("cpu_stalls", cpu_stalls);
  v.set("device_delays", device_delays);
  v.set("softirq_raises", softirq_raises);
  v.set("lock_holds", lock_holds);
  v.set("skipped_specs", skipped_specs);
  return v;
}

Injector::Injector(config::Platform& platform, const FaultPlan& plan,
                   std::uint64_t seed)
    : platform_(platform),
      plan_(plan),
      seed_(sim::derive_seed(seed, "fault-injector")),
      filter_rng_(sim::derive_seed(seed_, "raise-filter")),
      delay_rng_(sim::derive_seed(seed_, "device-delay")) {}

Injector::~Injector() {
  // Uninstall everything that points back into this object so a platform
  // that outlives the injector cannot call through dangling hooks.
  if (hooked_filter_) platform_.interrupt_controller().set_raise_filter(nullptr);
  if (hooked_disk_) platform_.disk_device().set_fault_delay(nullptr);
  if (hooked_nic_) platform_.nic_device().set_fault_delay(nullptr);
  if (hooked_rtc_) platform_.rtc_device().set_fault_delay(nullptr);
  if (hooked_rcim_ && platform_.has_rcim()) {
    platform_.rcim_device().set_fault_delay(nullptr);
  }
  if (touched_drift_) platform_.kernel().local_timer().set_drift(0.0);
}

void Injector::note_lock_hold() {
  stats_.lock_holds++;
  note(Event::kLockHold);
  sim::Engine& engine = platform_.engine();
  engine.flight_recorder().record(
      engine.now(), telemetry::EventKind::kFaultFire, -1,
      static_cast<std::int32_t>(FaultKind::kLockHolderDelay));
}

void Injector::arm(sim::Time horizon_end) {
  SIM_ASSERT_MSG(!armed_, "Injector::arm called twice");
  armed_ = true;
  horizon_ = horizon_end;
  if (plan_.empty()) return;

  sim::Engine& engine = platform_.engine();
  kernel::Kernel& kernel = platform_.kernel();

  // Registered only for a live plan so an empty-plan injector stays
  // observationally identical to no injector at all (same registry series,
  // same digests). Cells mirror the Stats fields one-for-one.
  events_ = engine.telemetry().counter(
      "fault.events", "fault-injector actions by kind",
      static_cast<int>(Event::kCount), "event",
      {"storm_raises", "spurious_raises", "lost_irqs", "duplicated_irqs",
       "cpu_stalls", "device_delays", "softirq_raises", "lock_holds",
       "skipped_specs"});
  engine.flight_recorder().record(engine.now(),
                                  telemetry::EventKind::kFaultArm, -1,
                                  static_cast<std::int32_t>(plan_.faults.size()));

  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    const sim::Time begin = std::min(f.start, horizon_end);
    const sim::Time end =
        f.duration == 0 ? horizon_end
                        : std::min(horizon_end, f.start + f.duration);
    if (begin >= end) {
      stats_.skipped_specs++;
      note(Event::kSkippedSpec);
      continue;
    }
    switch (f.kind) {
      case FaultKind::kIrqStorm:
      case FaultKind::kSpuriousIrq:
      case FaultKind::kCpuStall:
      case FaultKind::kSoftirqFlood: {
        // Raising an unclaimed line is fatal in the kernel model (as a real
        // spurious interrupt on an unclaimed vector would be a bug report,
        // not a latency blip), so only storm lines with drivers behind them.
        const bool needs_handler = f.kind == FaultKind::kIrqStorm ||
                                   f.kind == FaultKind::kSpuriousIrq;
        if (needs_handler && !kernel.irq_handler_registered(f.irq)) {
          stats_.skipped_specs++;
          note(Event::kSkippedSpec);
          break;
        }
        Chain c;
        c.spec = &f;
        c.begin = begin;
        c.end = end;
        c.mean = std::max<sim::Duration>(
            1, static_cast<sim::Duration>(1e9 / f.rate_hz));
        c.rng = sim::Rng(
            sim::derive_seed(seed_, "chain#" + std::to_string(i)));
        chains_.push_back(c);
        start_chain(chains_.size() - 1);
        break;
      }
      case FaultKind::kLostIrq:
      case FaultKind::kDuplicateIrq:
        filter_rules_.push_back(FilterRule{
            f.irq, f.kind == FaultKind::kLostIrq, f.probability, begin, end});
        break;
      case FaultKind::kClockDrift: {
        touched_drift_ = true;
        hw::LocalTimer& timer = kernel.local_timer();
        const double drift = f.drift;
        engine.schedule_at(begin,
                           [&timer, drift] { timer.set_drift(drift); });
        if (end < horizon_end) {
          engine.schedule_at(end, [&timer] { timer.set_drift(0.0); });
        }
        break;
      }
      case FaultKind::kDeviceDelay: {
        const DelayRule rule{f.probability, f.min_ns, f.max_ns, begin, end};
        if (f.device == "disk") {
          disk_rules_.push_back(rule);
        } else if (f.device == "nic") {
          nic_rules_.push_back(rule);
        } else if (f.device == "rtc") {
          rtc_rules_.push_back(rule);
        } else if (f.device == "rcim") {
          if (!platform_.has_rcim()) {
            stats_.skipped_specs++;
            note(Event::kSkippedSpec);
            break;
          }
          rcim_rules_.push_back(rule);
        }
        break;
      }
      case FaultKind::kLockHolderDelay: {
        kernel::Kernel::TaskParams p;
        p.name = "fault-holder/" + std::string(to_string(f.kind)) + "#" +
                 std::to_string(i);
        if (f.cpu >= 0) p.affinity = hw::CpuMask::single(f.cpu);
        kernel.create_task(
            std::move(p),
            std::make_unique<LockHolderBehavior>(
                f, begin, end,
                sim::derive_seed(seed_, "holder#" + std::to_string(i)),
                this));
        break;
      }
    }
  }

  install_filter();
  install_device_delays();
}

void Injector::start_chain(std::size_t index) {
  Chain& c = chains_[index];
  const sim::Time first = c.begin + c.rng.exponential_duration(c.mean);
  if (first >= c.end) return;
  platform_.engine().schedule_at(first, [this, index] { chain_fire(index); });
}

void Injector::chain_fire(std::size_t index) {
  Chain& c = chains_[index];
  fire_once(c);
  const sim::Time next =
      platform_.engine().now() + c.rng.exponential_duration(c.mean);
  if (next < c.end) {
    platform_.engine().schedule_at(next, [this, index] { chain_fire(index); });
  }
}

void Injector::fire_once(Chain& c) {
  const FaultSpec& f = *c.spec;
  kernel::Kernel& kernel = platform_.kernel();
  platform_.engine().flight_recorder().record(
      platform_.engine().now(), telemetry::EventKind::kFaultFire, f.cpu,
      static_cast<std::int32_t>(f.kind));
  switch (f.kind) {
    case FaultKind::kIrqStorm:
      stats_.storm_raises++;
      note(Event::kStormRaise);
      platform_.interrupt_controller().raise(f.irq);
      break;
    case FaultKind::kSpuriousIrq:
      stats_.spurious_raises++;
      note(Event::kSpuriousRaise);
      platform_.interrupt_controller().raise(f.irq);
      break;
    case FaultKind::kCpuStall: {
      const sim::Duration stall = c.rng.uniform_duration(f.min_ns, f.max_ns);
      if (f.cpu >= 0) {
        stats_.cpu_stalls++;
        note(Event::kCpuStall);
        kernel.inject_cpu_stall(f.cpu, stall);
      } else {
        // A chipset-wide SMI: every CPU disappears for the same window.
        for (hw::CpuId cpu = 0; cpu < kernel.ncpus(); ++cpu) {
          stats_.cpu_stalls++;
          note(Event::kCpuStall);
          kernel.inject_cpu_stall(cpu, stall);
        }
      }
      break;
    }
    case FaultKind::kSoftirqFlood: {
      hw::CpuId cpu = static_cast<hw::CpuId>(f.cpu);
      if (cpu < 0) {
        cpu = static_cast<hw::CpuId>(c.rr_cpu % kernel.ncpus());
        c.rr_cpu++;
      }
      stats_.softirq_raises++;
      note(Event::kSoftirqRaise);
      kernel.raise_softirq(cpu, kernel::SoftirqType::kNetRx, f.work_ns);
      break;
    }
    default:
      SIM_ASSERT_MSG(false, "fault kind is not chain-driven");
  }
}

void Injector::install_filter() {
  if (filter_rules_.empty()) return;
  hooked_filter_ = true;
  sim::Engine& engine = platform_.engine();
  platform_.interrupt_controller().set_raise_filter([this,
                                                     &engine](hw::Irq irq) {
    const sim::Time now = engine.now();
    int copies = 1;
    for (const FilterRule& r : filter_rules_) {
      if (r.irq != irq || now < r.begin || now >= r.end) continue;
      if (!filter_rng_.chance(r.probability)) continue;
      if (r.lose) {
        copies = 0;
      } else if (copies > 0) {
        copies++;
      }
    }
    if (copies == 0) {
      stats_.lost_irqs++;
      note(Event::kLostIrq);
      engine.flight_recorder().record(
          now, telemetry::EventKind::kFaultFire, -1,
          static_cast<std::int32_t>(FaultKind::kLostIrq));
    } else if (copies > 1) {
      stats_.duplicated_irqs += static_cast<std::uint64_t>(copies - 1);
      note(Event::kDuplicatedIrq, static_cast<std::uint64_t>(copies - 1));
      engine.flight_recorder().record(
          now, telemetry::EventKind::kFaultFire, -1,
          static_cast<std::int32_t>(FaultKind::kDuplicateIrq), copies - 1);
    }
    return copies;
  });
}

sim::Duration Injector::sample_device_delay(std::vector<DelayRule>& rules,
                                            sim::Rng& rng) {
  const sim::Time now = platform_.engine().now();
  sim::Duration extra = 0;
  for (const DelayRule& r : rules) {
    if (now < r.begin || now >= r.end) continue;
    if (!rng.chance(r.probability)) continue;
    stats_.device_delays++;
    note(Event::kDeviceDelay);
    platform_.engine().flight_recorder().record(
        now, telemetry::EventKind::kFaultFire, -1,
        static_cast<std::int32_t>(FaultKind::kDeviceDelay));
    extra += rng.uniform_duration(r.min_ns, r.max_ns);
  }
  return extra;
}

void Injector::install_device_delays() {
  if (!disk_rules_.empty()) {
    hooked_disk_ = true;
    platform_.disk_device().set_fault_delay(
        [this] { return sample_device_delay(disk_rules_, delay_rng_); });
  }
  if (!nic_rules_.empty()) {
    hooked_nic_ = true;
    platform_.nic_device().set_fault_delay(
        [this] { return sample_device_delay(nic_rules_, delay_rng_); });
  }
  if (!rtc_rules_.empty()) {
    hooked_rtc_ = true;
    platform_.rtc_device().set_fault_delay(
        [this] { return sample_device_delay(rtc_rules_, delay_rng_); });
  }
  if (!rcim_rules_.empty()) {
    hooked_rcim_ = true;
    platform_.rcim_device().set_fault_delay(
        [this] { return sample_device_delay(rcim_rules_, delay_rng_); });
  }
}

}  // namespace fault

// Typed fault specifications.
//
// A FaultPlan is pure data: a list of FaultSpec records, each describing one
// perturbation of the simulated platform (an IRQ storm, a lost-interrupt
// window, an SMI-like CPU stall, ...). Plans ride on config::ScenarioSpec the
// same way workloads do — JSON round-trip, content digest, validate() — and
// are executed by fault::Injector (injector.h), which is deterministic and
// seed-reproducible like everything else in the simulator.
#pragma once

#include <string>
#include <vector>

#include "config/json.h"
#include "kernel/kernel_ops.h"
#include "sim/time.h"

namespace fault {

enum class FaultKind {
  /// Repeatedly raise one IRQ line at `rate_hz` (hostile device: stuck
  /// interrupt, misbehaving firmware). Needs: irq, rate_hz.
  kIrqStorm,
  /// Raise a line at `rate_hz` with no device event behind it (line glitch;
  /// the handler runs and finds nothing to do). Needs: irq, rate_hz.
  kSpuriousIrq,
  /// Each raise of `irq` is dropped with `probability` (edge lost on the
  /// wire). Needs: irq, probability.
  kLostIrq,
  /// Each raise of `irq` is delivered twice with `probability` (ringing
  /// edge). Needs: irq, probability.
  kDuplicateIrq,
  /// SMI-like stall: at `rate_hz`, steal the CPU (`cpu`, or every CPU when
  /// -1) for uniform [min_ns, max_ns] — unmaskable by shielding, like real
  /// system-management mode. Needs: rate_hz, min_ns, max_ns.
  kCpuStall,
  /// Scale the local-timer period by (1 + drift) for the window (crystal
  /// drift / thermal wander). Needs: drift.
  kClockDrift,
  /// Device timeout / late completion: with `probability`, a completion or
  /// periodic fire of `device` is delayed by uniform [min_ns, max_ns].
  /// Needs: device, probability, min_ns, max_ns.
  kDeviceDelay,
  /// Raise `work_ns` of net-rx softirq work at `rate_hz` on `cpu` (or
  /// round-robin when -1). Needs: rate_hz, work_ns.
  kSoftirqFlood,
  /// A saboteur task that grabs `lock` at `rate_hz` and holds it for
  /// uniform [min_ns, max_ns]. Needs: lock, rate_hz, min_ns, max_ns.
  kLockHolderDelay,
};

[[nodiscard]] const char* to_string(FaultKind k);
/// Throws std::runtime_error on an unknown token.
[[nodiscard]] FaultKind fault_kind_from(const std::string& token);

/// Map a plan lock token ("bkl", "fs", "dcache", ...) to the kernel lock it
/// names. Throws std::runtime_error on an unknown token.
[[nodiscard]] kernel::LockId lock_from_token(const std::string& token);

/// One fault. The field set is flat; which fields are meaningful depends on
/// `kind` (see the enum comments). validate() enforces the per-kind
/// requirements.
struct FaultSpec {
  FaultKind kind = FaultKind::kIrqStorm;

  /// Activation window in simulated time: [start, start + duration), with
  /// duration == 0 meaning "until the end of the run".
  sim::Time start = 0;
  sim::Duration duration = 0;

  int irq = -1;              ///< target interrupt line
  int cpu = -1;              ///< target CPU (-1 = all / round-robin)
  double rate_hz = 0.0;      ///< mean event rate (Poisson arrivals)
  double probability = 0.0;  ///< per-event trigger probability
  sim::Duration min_ns = 0;  ///< lower bound of the sampled magnitude
  sim::Duration max_ns = 0;  ///< upper bound of the sampled magnitude
  double drift = 0.0;        ///< fractional clock-period error
  std::string device;        ///< "disk" | "nic" | "rtc" | "rcim"
  std::string lock;          ///< lock token, e.g. "dcache" (see kernel_ops)
  sim::Duration work_ns = 0; ///< softirq work per raise

  [[nodiscard]] config::json::Value to_json() const;
  static FaultSpec from_json(const config::json::Value& v);
};

struct FaultPlan {
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }

  /// Serializes as a JSON array of fault objects; only non-default fields
  /// are emitted, so the dump is canonical and digest-stable.
  [[nodiscard]] config::json::Value to_json() const;
  static FaultPlan from_json(const config::json::Value& v);

  /// Per-kind requirement checks. Throws std::runtime_error naming the
  /// offending fault (index + kind) and field; `context` prefixes the
  /// message (typically the owning scenario's name).
  void validate(const std::string& context) const;
};

}  // namespace fault

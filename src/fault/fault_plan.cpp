#include "fault/fault_plan.h"

#include <iterator>
#include <stdexcept>
#include <utility>

#include "hw/types.h"

namespace fault {
namespace {

using config::json::Value;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("fault plan: " + what);
}

const char* const kLockTokens[] = {"bkl",  "fs",   "dcache",     "rtc",
                                   "socket", "pipe", "mm",
                                   "io-request", "rcim"};
static_assert(std::size(kLockTokens) ==
              static_cast<std::size_t>(kernel::LockId::kCount));

const char* const kDeviceTokens[] = {"disk", "nic", "rtc", "rcim"};

bool known_lock(const std::string& token) {
  for (const char* t : kLockTokens) {
    if (token == t) return true;
  }
  return false;
}

}  // namespace

kernel::LockId lock_from_token(const std::string& token) {
  for (std::size_t i = 0; i < std::size(kLockTokens); ++i) {
    if (token == kLockTokens[i]) return static_cast<kernel::LockId>(i);
  }
  fail("unknown lock token '" + token + "'");
}

namespace {

bool known_device(const std::string& token) {
  for (const char* t : kDeviceTokens) {
    if (token == t) return true;
  }
  return false;
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kIrqStorm: return "irq-storm";
    case FaultKind::kSpuriousIrq: return "spurious-irq";
    case FaultKind::kLostIrq: return "lost-irq";
    case FaultKind::kDuplicateIrq: return "duplicate-irq";
    case FaultKind::kCpuStall: return "cpu-stall";
    case FaultKind::kClockDrift: return "clock-drift";
    case FaultKind::kDeviceDelay: return "device-delay";
    case FaultKind::kSoftirqFlood: return "softirq-flood";
    case FaultKind::kLockHolderDelay: return "lock-holder-delay";
  }
  return "irq-storm";
}

FaultKind fault_kind_from(const std::string& token) {
  if (token == "irq-storm") return FaultKind::kIrqStorm;
  if (token == "spurious-irq") return FaultKind::kSpuriousIrq;
  if (token == "lost-irq") return FaultKind::kLostIrq;
  if (token == "duplicate-irq") return FaultKind::kDuplicateIrq;
  if (token == "cpu-stall") return FaultKind::kCpuStall;
  if (token == "clock-drift") return FaultKind::kClockDrift;
  if (token == "device-delay") return FaultKind::kDeviceDelay;
  if (token == "softirq-flood") return FaultKind::kSoftirqFlood;
  if (token == "lock-holder-delay") return FaultKind::kLockHolderDelay;
  fail("unknown fault kind '" + token + "'");
}

config::json::Value FaultSpec::to_json() const {
  Value v = Value::object();
  v.set("kind", to_string(kind));
  if (start != 0) v.set("start_ns", start);
  if (duration != 0) v.set("duration_ns", duration);
  if (irq >= 0) v.set("irq", irq);
  if (cpu >= 0) v.set("cpu", cpu);
  if (rate_hz != 0.0) v.set("rate_hz", rate_hz);
  if (probability != 0.0) v.set("probability", probability);
  if (min_ns != 0) v.set("min_ns", min_ns);
  if (max_ns != 0) v.set("max_ns", max_ns);
  if (drift != 0.0) v.set("drift", drift);
  if (!device.empty()) v.set("device", device);
  if (!lock.empty()) v.set("lock", lock);
  if (work_ns != 0) v.set("work_ns", work_ns);
  return v;
}

FaultSpec FaultSpec::from_json(const config::json::Value& v) {
  if (!v.is_object()) fail("fault entry must be a JSON object");
  FaultSpec f;
  bool have_kind = false;
  for (const auto& [key, val] : v.members()) {
    if (key == "kind") {
      f.kind = fault_kind_from(val.as_string());
      have_kind = true;
    } else if (key == "start_ns") {
      f.start = val.as_u64();
    } else if (key == "duration_ns") {
      f.duration = val.as_u64();
    } else if (key == "irq") {
      f.irq = static_cast<int>(val.as_i64());
    } else if (key == "cpu") {
      f.cpu = static_cast<int>(val.as_i64());
    } else if (key == "rate_hz") {
      f.rate_hz = val.as_double();
    } else if (key == "probability") {
      f.probability = val.as_double();
    } else if (key == "min_ns") {
      f.min_ns = val.as_u64();
    } else if (key == "max_ns") {
      f.max_ns = val.as_u64();
    } else if (key == "drift") {
      f.drift = val.as_double();
    } else if (key == "device") {
      f.device = val.as_string();
    } else if (key == "lock") {
      f.lock = val.as_string();
    } else if (key == "work_ns") {
      f.work_ns = val.as_u64();
    } else {
      fail("unknown fault key '" + key + "'");
    }
  }
  if (!have_kind) fail("fault entry has no 'kind'");
  return f;
}

config::json::Value FaultPlan::to_json() const {
  Value arr = Value::array();
  for (const auto& f : faults) arr.push(f.to_json());
  return arr;
}

FaultPlan FaultPlan::from_json(const config::json::Value& v) {
  if (!v.is_array()) fail("'faults' must be an array");
  FaultPlan plan;
  for (const auto& e : v.items()) plan.faults.push_back(FaultSpec::from_json(e));
  return plan;
}

void FaultPlan::validate(const std::string& context) const {
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultSpec& f = faults[i];
    const std::string where = "'" + context + "' fault #" + std::to_string(i) +
                              " (" + to_string(f.kind) + "): ";
    const auto need = [&](bool ok, const char* what) {
      if (!ok) fail(where + what);
    };
    const bool needs_irq = f.kind == FaultKind::kIrqStorm ||
                           f.kind == FaultKind::kSpuriousIrq ||
                           f.kind == FaultKind::kLostIrq ||
                           f.kind == FaultKind::kDuplicateIrq;
    if (needs_irq) {
      need(f.irq >= 0 && f.irq < hw::kMaxIrq,
           "'irq' must be in [0, 24)");
    }
    switch (f.kind) {
      case FaultKind::kIrqStorm:
      case FaultKind::kSpuriousIrq:
        need(f.rate_hz > 0.0, "'rate_hz' must be positive");
        break;
      case FaultKind::kLostIrq:
      case FaultKind::kDuplicateIrq:
        need(f.probability > 0.0 && f.probability <= 1.0,
             "'probability' must be in (0, 1]");
        break;
      case FaultKind::kCpuStall:
        need(f.rate_hz > 0.0, "'rate_hz' must be positive");
        need(f.min_ns > 0 && f.max_ns >= f.min_ns,
             "'min_ns'/'max_ns' must satisfy 0 < min <= max");
        break;
      case FaultKind::kClockDrift:
        need(f.drift > -1.0, "'drift' must be greater than -1");
        need(f.drift != 0.0, "'drift' must be non-zero");
        break;
      case FaultKind::kDeviceDelay:
        need(known_device(f.device),
             "'device' must be one of disk|nic|rtc|rcim");
        need(f.probability > 0.0 && f.probability <= 1.0,
             "'probability' must be in (0, 1]");
        need(f.min_ns > 0 && f.max_ns >= f.min_ns,
             "'min_ns'/'max_ns' must satisfy 0 < min <= max");
        break;
      case FaultKind::kSoftirqFlood:
        need(f.rate_hz > 0.0, "'rate_hz' must be positive");
        need(f.work_ns > 0, "'work_ns' must be positive");
        break;
      case FaultKind::kLockHolderDelay:
        need(known_lock(f.lock),
             "'lock' must be a known lock token (e.g. 'dcache', 'bkl')");
        need(f.rate_hz > 0.0, "'rate_hz' must be positive");
        need(f.min_ns > 0 && f.max_ns >= f.min_ns,
             "'min_ns'/'max_ns' must satisfy 0 < min <= max");
        break;
    }
  }
}

}  // namespace fault

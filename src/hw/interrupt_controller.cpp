#include "hw/interrupt_controller.h"

#include <string>

#include "sim/assert.h"

namespace hw {

using namespace sim::literals;

InterruptController::InterruptController(sim::Engine& engine,
                                         const Topology& topo)
    : engine_(engine), topo_(topo), rng_(engine.rng().split()) {
  affinity_.fill(topo.all_cpus());
  last_target_.fill(0);
  raised_at_.fill(0);
  has_raise_.fill(false);
  telemetry::Registry& reg = engine_.telemetry();
  reg.gauge("irq.raised", "device edges asserted per IRQ line", kMaxIrq,
            "irq", [this](int irq) {
              return raises_[static_cast<std::size_t>(irq)];
            });
  reg.gauge("irq.delivered", "edges delivered to a CPU per IRQ line",
            kMaxIrq, "irq", [this](int irq) {
              return delivery_total(static_cast<Irq>(irq));
            });
}

void InterruptController::set_affinity(Irq irq, CpuMask mask) {
  SIM_ASSERT(irq >= 0 && irq < kMaxIrq);
  mask = mask & topo_.all_cpus();
  if (mask.empty()) mask = topo_.all_cpus();
  affinity_[static_cast<std::size_t>(irq)] = mask;
}

CpuMask InterruptController::affinity(Irq irq) const {
  SIM_ASSERT(irq >= 0 && irq < kMaxIrq);
  return affinity_[static_cast<std::size_t>(irq)];
}

CpuId InterruptController::route(Irq irq) {
  const CpuMask mask = affinity_[static_cast<std::size_t>(irq)];
  SIM_ASSERT(!mask.empty());
  // Lowest-priority delivery with an idle preference only if enabled. The
  // 2003-era chipsets the paper ran on did NOT steer interrupts away from
  // busy CPUs (Linux 2.4 never programmed the TPR), so the default is a
  // plain rotation — a running RT task takes its share of interrupts,
  // which is the very problem shielding solves.
  if (prefer_idle_ && is_idle_) {
    CpuId idle_pick = -1;
    mask.for_each([&](CpuId cpu) {
      if (idle_pick < 0 && is_idle_(cpu)) idle_pick = cpu;
    });
    if (idle_pick >= 0) return idle_pick;
  }
  // Rotate through the mask so no CPU monopolises the line.
  CpuId prev = last_target_[static_cast<std::size_t>(irq)];
  for (int i = 0; i < 64; ++i) {
    prev = (prev + 1) % topo_.logical_cpus();
    if (mask.test(prev)) {
      last_target_[static_cast<std::size_t>(irq)] = prev;
      return prev;
    }
  }
  return mask.first();
}

void InterruptController::raise(Irq irq) {
  SIM_ASSERT(irq >= 0 && irq < kMaxIrq);
  SIM_ASSERT_MSG(static_cast<bool>(deliver_), "no delivery function installed");
  raises_[static_cast<std::size_t>(irq)]++;
  engine_.flight_recorder().record(engine_.now(),
                                   telemetry::EventKind::kIrqRaise, -1, irq);
  int copies = 1;
  if (raise_filter_) {
    copies = raise_filter_(irq);
    SIM_ASSERT(copies >= 0);
    if (copies == 0) return;  // edge lost on the wire: no chain, no delivery
  }
  sim::ChainTracer& tracer = engine_.chain_tracer();
  if (tracer.enabled()) {
    // One chain per line: a re-raise before the kernel entered the previous
    // hardirq supersedes it (the line is edge-triggered in this model).
    sim::ChainId& pending = chains_[static_cast<std::size_t>(irq)];
    tracer.abandon(pending);
    pending = tracer.open("irq" + std::to_string(irq), engine_.now());
  }
  // The raise timestamp follows the same edge-triggered supersede rule as
  // the chain, but is stamped unconditionally: dispatch-latency accounting
  // must work with the tracer compiled out.
  raised_at_[static_cast<std::size_t>(irq)] = engine_.now();
  has_raise_[static_cast<std::size_t>(irq)] = true;
  for (int c = 0; c < copies; ++c) {
    const CpuId target = route(irq);
    deliveries_[static_cast<std::size_t>(irq)]
               [static_cast<std::size_t>(target)]++;
    // APIC message + pin-to-vector latency: a few hundred nanoseconds.
    const sim::Duration wire = rng_.uniform_duration(200_ns, 600_ns);
    engine_.schedule(wire, [this, target, irq] { deliver_(target, irq); });
  }
}

InterruptController::PendingRaise InterruptController::take_pending(Irq irq) {
  SIM_ASSERT(irq >= 0 && irq < kMaxIrq);
  PendingRaise out;
  out.chain = chains_[static_cast<std::size_t>(irq)];
  out.raised_at = raised_at_[static_cast<std::size_t>(irq)];
  out.has_raise = has_raise_[static_cast<std::size_t>(irq)];
  chains_[static_cast<std::size_t>(irq)] = {};
  raised_at_[static_cast<std::size_t>(irq)] = 0;
  has_raise_[static_cast<std::size_t>(irq)] = false;
  return out;
}

std::uint64_t InterruptController::raise_count(Irq irq) const {
  SIM_ASSERT(irq >= 0 && irq < kMaxIrq);
  return raises_[static_cast<std::size_t>(irq)];
}

std::uint64_t InterruptController::delivery_count(Irq irq, CpuId cpu) const {
  SIM_ASSERT(irq >= 0 && irq < kMaxIrq);
  SIM_ASSERT(topo_.valid_cpu(cpu));
  return deliveries_[static_cast<std::size_t>(irq)][static_cast<std::size_t>(cpu)];
}

std::uint64_t InterruptController::delivery_total(Irq irq) const {
  SIM_ASSERT(irq >= 0 && irq < kMaxIrq);
  std::uint64_t sum = 0;
  for (auto d : deliveries_[static_cast<std::size_t>(irq)]) sum += d;
  return sum;
}

void InterruptController::reset_counters() {
  raises_.fill(0);
  for (auto& row : deliveries_) row.fill(0);
}

}  // namespace hw

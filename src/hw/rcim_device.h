// Real-Time Clock and Interrupt Module (RCIM) PCI card.
//
// Concurrent's RCIM provides high-resolution timers whose count register can
// be mapped directly into a user program (§6.3). Programming model, per the
// paper: the period is loaded into the count register, which decrements to
// zero, raises the interrupt, auto-reloads, and keeps decrementing. The
// latency measurement is `(initial_count - read_count()) * tick` at the
// moment the woken process reads the mapped register — near-zero overhead.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "hw/interrupt_controller.h"
#include "hw/types.h"
#include "sim/engine.h"

namespace hw {

class RcimDevice {
 public:
  /// `tick` is the counter resolution; the real card counts at 400 ns per
  /// tick, which comfortably resolves the paper's 11-27 µs measurements.
  RcimDevice(sim::Engine& engine, InterruptController& ic,
             sim::Duration tick = 400, Irq irq = kIrqRcim);

  /// Load the count register and start periodic operation.
  /// Period = count * tick().
  void program_periodic(std::uint32_t count);
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Read the (memory-mapped) count register: remaining ticks in the
  /// current cycle, computed from simulated time.
  [[nodiscard]] std::uint32_t read_count() const;

  /// Nanoseconds elapsed in the current cycle, as the user-space test
  /// computes it: (initial - read_count()) * tick.
  [[nodiscard]] sim::Duration elapsed_in_cycle() const;

  [[nodiscard]] std::uint32_t initial_count() const { return initial_count_; }
  [[nodiscard]] sim::Duration tick() const { return tick_; }
  [[nodiscard]] sim::Duration period() const { return tick_ * initial_count_; }
  [[nodiscard]] sim::Time last_fire() const { return last_fire_; }
  [[nodiscard]] std::uint64_t fire_count() const { return fires_; }
  [[nodiscard]] Irq irq() const { return irq_; }

  /// Fault hook: extra latency sampled per cycle, delaying the next fire
  /// (late auto-reload). nullptr clears the hook.
  void set_fault_delay(std::function<sim::Duration()> fn) {
    fault_delay_ = std::move(fn);
  }

  // ---- external edge-triggered inputs ------------------------------------
  // "The RCIM provides the ability to connect external edge-triggered
  //  device interrupts to the system" (§4). Each input line shares the
  //  card's interrupt; the driver reads the line status register to find
  //  which line fired.

  static constexpr int kExternalLines = 4;

  /// An external device pulses input line `line` (0-based).
  void trigger_external(int line);

  /// Status register: pending external lines as a bitmask; reading clears
  /// (edge semantics).
  [[nodiscard]] std::uint32_t read_and_clear_external_status();

  /// When the most recent external edge arrived (per line), for latency
  /// measurements.
  [[nodiscard]] sim::Time last_external_edge(int line) const;

  [[nodiscard]] std::uint64_t external_edge_count(int line) const;

 private:
  void fire();

  sim::Engine& engine_;
  InterruptController& ic_;
  sim::Duration tick_;
  Irq irq_;
  std::function<sim::Duration()> fault_delay_;
  bool running_ = false;
  std::uint32_t initial_count_ = 0;
  sim::Time cycle_start_ = 0;
  sim::EventId pending_{};
  sim::Time last_fire_ = 0;
  std::uint64_t fires_ = 0;
  std::uint32_t external_status_ = 0;
  std::array<sim::Time, kExternalLines> external_edge_at_{};
  std::array<std::uint64_t, kExternalLines> external_edges_{};
};

}  // namespace hw

// IO-APIC-like interrupt controller.
//
// Each IRQ line carries an affinity mask — the hardware half of the
// `/proc/irq/N/smp_affinity` interface the paper builds on. When a device
// raises a line, the controller picks one CPU from the mask (preferring an
// idle CPU, else rotating) and delivers after a short wire delay. Masked
// delivery (per-CPU interrupt disabling) is the kernel's job; the controller
// only routes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "hw/cpu_mask.h"
#include "hw/topology.h"
#include "hw/types.h"
#include "sim/engine.h"

namespace hw {

class InterruptController {
 public:
  /// Called when an IRQ arrives at a CPU.
  using DeliverFn = std::function<void(CpuId, Irq)>;
  /// Lets routing prefer idle CPUs (lowest-priority delivery heuristic).
  using IdleQueryFn = std::function<bool(CpuId)>;
  /// Fault hook: invoked per raise, returns how many copies of the edge to
  /// deliver (0 = lost on the wire, 1 = normal, 2+ = ringing edge). The
  /// raise is still counted either way — the device did assert the line.
  using RaiseFilter = std::function<int(Irq)>;

  InterruptController(sim::Engine& engine, const Topology& topo);

  void set_deliver_fn(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_idle_query(IdleQueryFn fn) { is_idle_ = std::move(fn); }
  /// Install (or clear, with nullptr) the fault-injection raise filter.
  void set_raise_filter(RaiseFilter fn) { raise_filter_ = std::move(fn); }
  /// Enable idle-CPU-preferring delivery (not the 2003 default; exposed for
  /// ablation studies of routing policy).
  void set_prefer_idle(bool on) { prefer_idle_ = on; }

  /// Program the line's affinity. An empty or invalid mask is clamped to
  /// all CPUs, as Linux does for smp_affinity writes with no online CPU.
  void set_affinity(Irq irq, CpuMask mask);
  [[nodiscard]] CpuMask affinity(Irq irq) const;

  /// Device edge: route and deliver after the wire delay.
  void raise(Irq irq);

  /// What the most recent raise of this line left behind: the latency chain
  /// opened at raise time (invalid id when chain tracing is off or the
  /// raise was already consumed) and the raise timestamp itself
  /// (has_raise false when already consumed; stamped unconditionally, so
  /// dispatch-latency accounting works even in no-trace builds).
  struct PendingRaise {
    sim::ChainId chain{};
    sim::Time raised_at = 0;
    bool has_raise = false;
  };

  /// Detach the pending raise of this line. The dispatching pipeline calls
  /// this exactly once per delivery, so the chain's first segment and the
  /// auditor's raise→dispatch sample both cover wire delay plus any time
  /// the line sat masked, from the same timestamp.
  PendingRaise take_pending(Irq irq);

  /// Total raises per line (for accounting like /proc/interrupts).
  [[nodiscard]] std::uint64_t raise_count(Irq irq) const;
  /// Deliveries per (line, cpu).
  [[nodiscard]] std::uint64_t delivery_count(Irq irq, CpuId cpu) const;
  /// Deliveries summed over CPUs.
  [[nodiscard]] std::uint64_t delivery_total(Irq irq) const;

  /// Zero raise/delivery accounting (routing state is untouched).
  void reset_counters();

  [[nodiscard]] const Topology& topology() const { return topo_; }

 private:
  CpuId route(Irq irq);

  sim::Engine& engine_;
  const Topology& topo_;
  sim::Rng rng_;
  DeliverFn deliver_;
  IdleQueryFn is_idle_;
  RaiseFilter raise_filter_;
  bool prefer_idle_ = false;
  std::array<CpuMask, kMaxIrq> affinity_{};
  std::array<CpuId, kMaxIrq> last_target_{};
  std::array<sim::ChainId, kMaxIrq> chains_{};  ///< pending latency chains
  std::array<sim::Time, kMaxIrq> raised_at_{};  ///< pending raise timestamps
  std::array<bool, kMaxIrq> has_raise_{};       ///< raised_at_ slot occupied
  std::array<std::uint64_t, kMaxIrq> raises_{};
  std::array<std::array<std::uint64_t, 64>, kMaxIrq> deliveries_{};
};

}  // namespace hw

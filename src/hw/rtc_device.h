// CMOS Real-Time Clock.
//
// The interrupt source of the realfeel benchmark (§6.1): programmable
// periodic interrupts at power-of-two rates up to 8192 Hz; the paper uses
// 2048 Hz. The device records when each interrupt fired so the latency
// measurement has an exact reference point.
#pragma once

#include <cstdint>
#include <functional>

#include "hw/interrupt_controller.h"
#include "hw/types.h"
#include "sim/engine.h"

namespace hw {

class RtcDevice {
 public:
  RtcDevice(sim::Engine& engine, InterruptController& ic, Irq irq = kIrqRtc);

  /// Program the periodic rate. Must be a power of two in [2, 8192], as on
  /// real CMOS RTC hardware.
  void set_rate_hz(int hz);
  [[nodiscard]] int rate_hz() const { return rate_hz_; }

  /// Start/stop periodic interrupts.
  void start_periodic();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Time the most recent interrupt was raised.
  [[nodiscard]] sim::Time last_fire() const { return last_fire_; }
  [[nodiscard]] std::uint64_t fire_count() const { return fires_; }

  [[nodiscard]] Irq irq() const { return irq_; }
  /// Exact period in nanoseconds (the 2048 Hz period is not integral; the
  /// device tracks the sub-nanosecond remainder so long runs don't drift).
  [[nodiscard]] sim::Duration nominal_period() const;

  /// Fault hook: extra latency sampled per cycle, delaying the next fire
  /// (late completion). The measurement reference (`last_fire`) still
  /// records the actual fire time, so latency stays well-defined. nullptr
  /// clears the hook.
  void set_fault_delay(std::function<sim::Duration()> fn) {
    fault_delay_ = std::move(fn);
  }

 private:
  void fire();
  void arm();

  sim::Engine& engine_;
  InterruptController& ic_;
  Irq irq_;
  std::function<sim::Duration()> fault_delay_;
  int rate_hz_ = 2048;
  bool running_ = false;
  sim::EventId pending_{};
  sim::Time last_fire_ = 0;
  std::uint64_t fires_ = 0;
  std::uint64_t frac_acc_ = 0;  ///< sub-ns remainder accumulator
};

}  // namespace hw

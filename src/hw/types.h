// Shared hardware identifier types.
#pragma once

namespace hw {

/// Logical CPU number (0-based). With hyperthreading enabled, two logical
/// CPUs share one physical execution unit.
using CpuId = int;

/// Interrupt line number on the (IO-APIC-like) interrupt controller.
using Irq = int;

/// Well-known IRQ assignments used by the modelled testbeds. These mirror
/// classic PC practice so traces read naturally.
inline constexpr Irq kIrqTimer = 0;    ///< PIT / global timer (unused; local APIC timers are per-CPU)
inline constexpr Irq kIrqRtc = 8;      ///< CMOS real-time clock
inline constexpr Irq kIrqNic = 10;     ///< Ethernet controller
inline constexpr Irq kIrqGpu = 11;     ///< graphics controller
inline constexpr Irq kIrqDisk = 14;    ///< SCSI/IDE disk controller
inline constexpr Irq kIrqRcim = 5;     ///< RCIM PCI card
inline constexpr int kMaxIrq = 24;

}  // namespace hw

#include "hw/rtc_device.h"

#include "sim/assert.h"

namespace hw {

RtcDevice::RtcDevice(sim::Engine& engine, InterruptController& ic, Irq irq)
    : engine_(engine), ic_(ic), irq_(irq) {}

void RtcDevice::set_rate_hz(int hz) {
  SIM_ASSERT_MSG(hz >= 2 && hz <= 8192 && (hz & (hz - 1)) == 0,
                 "RTC rate must be a power of two in [2, 8192]");
  rate_hz_ = hz;
}

sim::Duration RtcDevice::nominal_period() const {
  return sim::kSecond / static_cast<sim::Duration>(rate_hz_);
}

void RtcDevice::start_periodic() {
  if (running_) return;
  running_ = true;
  frac_acc_ = 0;
  arm();
}

void RtcDevice::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(pending_);
  pending_ = {};
}

void RtcDevice::arm() {
  // Bresenham-style remainder tracking: the true period is
  // 1e9 / rate ns which is fractional for 2048 Hz (488281.25 ns).
  const auto rate = static_cast<std::uint64_t>(rate_hz_);
  sim::Duration period = sim::kSecond / rate;
  frac_acc_ += sim::kSecond % rate;
  if (frac_acc_ >= rate) {
    frac_acc_ -= rate;
    period += 1;
  }
  if (fault_delay_) period += fault_delay_();
  pending_ = engine_.schedule(period, [this] { fire(); });
}

void RtcDevice::fire() {
  last_fire_ = engine_.now();
  ++fires_;
  ic_.raise(irq_);
  if (running_) arm();
}

}  // namespace hw

#include "hw/local_timer.h"

#include "sim/assert.h"

namespace hw {

LocalTimer::LocalTimer(sim::Engine& engine, const Topology& topo,
                       sim::Duration period)
    : engine_(engine),
      topo_(topo),
      period_(period),
      enabled_(static_cast<std::size_t>(topo.logical_cpus()), true),
      pending_(static_cast<std::size_t>(topo.logical_cpus())),
      ticks_(static_cast<std::size_t>(topo.logical_cpus()), 0) {
  SIM_ASSERT(period > 0);
}

void LocalTimer::start() {
  SIM_ASSERT_MSG(static_cast<bool>(tick_), "no tick function installed");
  SIM_ASSERT(!started_);
  started_ = true;
  for (CpuId cpu = 0; cpu < topo_.logical_cpus(); ++cpu) {
    if (!enabled_[static_cast<std::size_t>(cpu)]) continue;
    // Deterministic stagger: spread first ticks across the period.
    const sim::Duration phase =
        period_ * static_cast<sim::Duration>(cpu + 1) /
        static_cast<sim::Duration>(topo_.logical_cpus() + 1);
    arm(cpu, phase);
  }
}

void LocalTimer::arm(CpuId cpu, sim::Duration delay) {
  pending_[static_cast<std::size_t>(cpu)] =
      engine_.schedule(delay, [this, cpu] { fire(cpu); });
}

void LocalTimer::fire(CpuId cpu) {
  ticks_[static_cast<std::size_t>(cpu)]++;
  sim::Duration next = period_;
  if (drift_ != 0.0) {
    next = static_cast<sim::Duration>(static_cast<double>(period_) *
                                      (1.0 + drift_));
    if (next < 1) next = 1;
  }
  arm(cpu, next);
  tick_(cpu);
}

void LocalTimer::set_enabled(CpuId cpu, bool enabled) {
  SIM_ASSERT(topo_.valid_cpu(cpu));
  if (enabled_[static_cast<std::size_t>(cpu)] == enabled) return;
  enabled_[static_cast<std::size_t>(cpu)] = enabled;
  if (!enabled) {
    engine_.cancel(pending_[static_cast<std::size_t>(cpu)]);
    pending_[static_cast<std::size_t>(cpu)] = {};
  } else if (started_) {
    arm(cpu, period_);
  }
}

void LocalTimer::set_drift(double drift) {
  SIM_ASSERT_MSG(drift > -1.0, "drift would stop or reverse the clock");
  drift_ = drift;
}

bool LocalTimer::enabled(CpuId cpu) const {
  SIM_ASSERT(topo_.valid_cpu(cpu));
  return enabled_[static_cast<std::size_t>(cpu)];
}

std::uint64_t LocalTimer::tick_count(CpuId cpu) const {
  SIM_ASSERT(topo_.valid_cpu(cpu));
  return ticks_[static_cast<std::size_t>(cpu)];
}

}  // namespace hw

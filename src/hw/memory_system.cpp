#include "hw/memory_system.h"

#include <algorithm>
#include <cmath>

#include "sim/assert.h"

namespace hw {

MemorySystem::MemorySystem(sim::Engine& engine, const Topology& topo,
                           MemorySystemParams params)
    : topo_(topo),
      params_(params),
      rng_(engine.rng().split()),
      traffic_(static_cast<std::size_t>(topo.logical_cpus()), 0.0) {}

void MemorySystem::set_traffic(CpuId cpu, double intensity) {
  SIM_ASSERT(topo_.valid_cpu(cpu));
  traffic_[static_cast<std::size_t>(cpu)] = std::clamp(intensity, 0.0, 1.0);
}

double MemorySystem::traffic(CpuId cpu) const {
  SIM_ASSERT(topo_.valid_cpu(cpu));
  return traffic_[static_cast<std::size_t>(cpu)];
}

double MemorySystem::foreign_traffic(CpuId cpu) const {
  SIM_ASSERT(topo_.valid_cpu(cpu));
  const int my_core = topo_.core_of(cpu);
  double sum = 0.0;
  for (CpuId other = 0; other < topo_.logical_cpus(); ++other) {
    if (topo_.core_of(other) != my_core) {
      sum += traffic_[static_cast<std::size_t>(other)];
    }
  }
  return sum;
}

double MemorySystem::sample_dilation(CpuId cpu, bool sibling_busy,
                                     double self_intensity) {
  const double foreign = foreign_traffic(cpu);
  // Bus slowdown only bites in proportion to how memory-bound the work is;
  // the contention itself varies run to run, so sample it uniformly up to
  // the configured coefficient.
  const double bus = params_.bus_contention_coeff * self_intensity * foreign *
                     rng_.next_double();
  const double noise = std::abs(rng_.normal(0.0, params_.noise_sigma));
  double dilation = 1.0 + bus + noise;
  if (sibling_busy) {
    dilation *= params_.ht_contention_min +
                (params_.ht_contention_max - params_.ht_contention_min) *
                    rng_.next_double();
  }
  SIM_ASSERT(dilation >= 1.0);
  return dilation;
}

}  // namespace hw

#include "hw/cpu_mask.h"

#include <cctype>
#include <cstdio>

namespace hw {

std::string CpuMask::to_hex() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(bits_));
  return buf;
}

bool CpuMask::parse_hex(std::string_view text, CpuMask& out) {
  // Trim whitespace (procfs writes often end in '\n').
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.starts_with("0x") || text.starts_with("0X")) text.remove_prefix(2);
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t bits = 0;
  for (char c : text) {
    bits <<= 4;
    if (c >= '0' && c <= '9') {
      bits |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      bits |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  out = CpuMask(bits);
  return true;
}

}  // namespace hw

// Per-CPU local APIC timer.
//
// Fires on every CPU at HZ (100/s in 2.4, i.e. every 10 ms) and is "the most
// active interrupt in the system" (§3). Shielding a CPU from the local timer
// disables its tick entirely — the per-CPU enable bit below is exactly what
// `/proc/shield/ltmr` flips.
//
// The local timer bypasses the IO-APIC: it delivers straight to its own CPU
// via a callback the kernel installs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/topology.h"
#include "hw/types.h"
#include "sim/engine.h"

namespace hw {

class LocalTimer {
 public:
  using TickFn = std::function<void(CpuId)>;

  LocalTimer(sim::Engine& engine, const Topology& topo,
             sim::Duration period /* 10 ms for HZ=100 */);

  void set_tick_fn(TickFn fn) { tick_ = std::move(fn); }

  /// Arm every enabled CPU's timer. Phases are staggered: real APIC timers
  /// are started by each CPU during boot and are never aligned.
  void start();

  /// Enable/disable one CPU's tick (the shield mechanism's hook). Disabling
  /// cancels the pending tick; re-enabling re-arms a full period out.
  void set_enabled(CpuId cpu, bool enabled);
  [[nodiscard]] bool enabled(CpuId cpu) const;

  /// Fault hook: scale subsequent re-arm periods by (1 + drift), modelling
  /// crystal error. 0.0 restores the nominal period. Takes effect at each
  /// CPU's next fire; already-armed ticks are not rescheduled.
  void set_drift(double drift);
  [[nodiscard]] double drift() const { return drift_; }

  [[nodiscard]] sim::Duration period() const { return period_; }
  [[nodiscard]] std::uint64_t tick_count(CpuId cpu) const;

 private:
  void arm(CpuId cpu, sim::Duration delay);
  void fire(CpuId cpu);

  sim::Engine& engine_;
  const Topology& topo_;
  sim::Duration period_;
  double drift_ = 0.0;
  TickFn tick_;
  bool started_ = false;
  std::vector<bool> enabled_;
  std::vector<sim::EventId> pending_;
  std::vector<std::uint64_t> ticks_;
};

}  // namespace hw

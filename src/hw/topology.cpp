#include "hw/topology.h"

#include "sim/assert.h"

namespace hw {

Topology::Topology(int physical_cores, bool hyperthreading, double cpu_ghz)
    : physical_cores_(physical_cores),
      hyperthreading_(hyperthreading),
      logical_cpus_(hyperthreading ? physical_cores * 2 : physical_cores),
      cpu_ghz_(cpu_ghz) {
  SIM_ASSERT(physical_cores >= 1 && logical_cpus_ <= 64);
  SIM_ASSERT(cpu_ghz > 0.0);
}

int Topology::core_of(CpuId cpu) const {
  SIM_ASSERT(valid_cpu(cpu));
  return hyperthreading_ ? cpu / 2 : cpu;
}

CpuId Topology::sibling_of(CpuId cpu) const {
  SIM_ASSERT(valid_cpu(cpu));
  if (!hyperthreading_) return -1;
  return cpu ^ 1;
}

}  // namespace hw

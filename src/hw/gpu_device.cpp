#include "hw/gpu_device.h"

#include "sim/assert.h"

namespace hw {

using namespace sim::literals;

GpuDevice::GpuDevice(sim::Engine& engine, InterruptController& ic, Irq irq)
    : engine_(engine), ic_(ic), irq_(irq), rng_(engine.rng().split()) {}

void GpuDevice::submit_batch(std::uint32_t commands) {
  SIM_ASSERT(commands > 0);
  ++total_;
  // ~1 µs per command with fixed submission overhead.
  const sim::Duration render =
      50_us + static_cast<sim::Duration>(commands) * 1_us +
      rng_.uniform_duration(0, 100_us);
  engine_.schedule(render, [this] {
    ++pending_done_;
    ic_.raise(irq_);
  });
}

std::uint32_t GpuDevice::drain_completions() {
  const std::uint32_t n = pending_done_;
  pending_done_ = 0;
  return n;
}

}  // namespace hw

#include "hw/nic_device.h"

#include "sim/assert.h"

namespace hw {

NicDevice::NicDevice(sim::Engine& engine, InterruptController& ic, Irq irq)
    : engine_(engine), ic_(ic), irq_(irq) {}

void NicDevice::set_link_mbps(double mbps) {
  SIM_ASSERT(mbps > 0.0);
  link_mbps_ = mbps;
}

sim::Duration NicDevice::transfer_delay(std::uint32_t bytes) const {
  // Serialisation time at the link rate: bytes * 8 / (mbps * 1e6) seconds.
  return static_cast<sim::Duration>(static_cast<double>(bytes) * 8.0 * 1000.0 /
                                    link_mbps_);
}

void NicDevice::rx(std::uint32_t bytes) {
  SIM_ASSERT(bytes > 0);
  total_rx_ += bytes;
  sim::Duration delay = transfer_delay(bytes);
  if (fault_delay_) delay += fault_delay_();
  engine_.schedule(delay, [this, bytes] {
    pending_rx_ += bytes;
    ic_.raise(irq_);
  });
}

void NicDevice::tx(std::uint32_t bytes) {
  SIM_ASSERT(bytes > 0);
  total_tx_ += bytes;
  sim::Duration delay = transfer_delay(bytes);
  if (fault_delay_) delay += fault_delay_();
  engine_.schedule(delay, [this, bytes] {
    pending_tx_done_ += bytes;
    ic_.raise(irq_);
  });
}

std::uint32_t NicDevice::drain_rx_bytes() {
  const std::uint32_t n = pending_rx_;
  pending_rx_ = 0;
  return n;
}

std::uint32_t NicDevice::drain_tx_bytes() {
  const std::uint32_t n = pending_tx_done_;
  pending_tx_done_ = 0;
  return n;
}

}  // namespace hw

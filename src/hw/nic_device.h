// Ethernet controller (3Com 3c905C-class).
//
// Workloads inject receive/transmit traffic in bytes; the device batches it
// into interrupts (simple interrupt-per-burst coalescing, as 2003-era NICs
// did with their rx rings). The driver's hardirq handler drains the pending
// byte counts and converts them into net-rx softirq work — the bottom-half
// storms of §6.2.
#pragma once

#include <cstdint>
#include <functional>

#include "hw/interrupt_controller.h"
#include "hw/types.h"
#include "sim/engine.h"

namespace hw {

class NicDevice {
 public:
  NicDevice(sim::Engine& engine, InterruptController& ic, Irq irq = kIrqNic);

  /// A burst of `bytes` arrives on the wire now; the device DMAs it and
  /// raises the line after the transfer delay.
  void rx(std::uint32_t bytes);

  /// Queue `bytes` for transmission; a TX-complete interrupt follows.
  void tx(std::uint32_t bytes);

  /// Driver-side: collect and clear pending RX bytes.
  std::uint32_t drain_rx_bytes();
  /// Driver-side: collect and clear completed TX bytes.
  std::uint32_t drain_tx_bytes();

  [[nodiscard]] std::uint64_t total_rx_bytes() const { return total_rx_; }
  [[nodiscard]] std::uint64_t total_tx_bytes() const { return total_tx_; }
  [[nodiscard]] Irq irq() const { return irq_; }

  /// Wire rate used to compute DMA/serialisation delays (default 100 Mbit).
  void set_link_mbps(double mbps);

  /// Fault hook: extra latency sampled per burst before the interrupt is
  /// raised (DMA stall / descriptor-ring hiccup). nullptr clears the hook.
  void set_fault_delay(std::function<sim::Duration()> fn) {
    fault_delay_ = std::move(fn);
  }

 private:
  sim::Duration transfer_delay(std::uint32_t bytes) const;

  sim::Engine& engine_;
  InterruptController& ic_;
  Irq irq_;
  std::function<sim::Duration()> fault_delay_;
  double link_mbps_ = 100.0;
  std::uint32_t pending_rx_ = 0;
  std::uint32_t pending_tx_done_ = 0;
  std::uint64_t total_rx_ = 0;
  std::uint64_t total_tx_ = 0;
};

}  // namespace hw

// CPU affinity bit masks.
//
// Semantically identical to the kernel's cpumask_t for systems of up to 64
// logical CPUs (the paper's machines have 2-4). The shield mechanism is
// entirely mask algebra, so this type is the vocabulary of the whole repo.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "hw/types.h"
#include "sim/assert.h"

namespace hw {

class CpuMask {
 public:
  constexpr CpuMask() = default;
  constexpr explicit CpuMask(std::uint64_t bits) : bits_(bits) {}

  /// Mask containing exactly one CPU.
  static constexpr CpuMask single(CpuId cpu) {
    return CpuMask(std::uint64_t{1} << cpu);
  }

  /// Mask of all CPUs 0..n-1.
  static constexpr CpuMask first_n(int n) {
    return n >= 64 ? CpuMask(~std::uint64_t{0})
                   : CpuMask((std::uint64_t{1} << n) - 1);
  }

  static constexpr CpuMask none() { return CpuMask(0); }

  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }
  [[nodiscard]] constexpr bool test(CpuId cpu) const {
    return (bits_ >> cpu) & 1;
  }
  [[nodiscard]] constexpr int count() const { return std::popcount(bits_); }

  /// Lowest set CPU; requires !empty().
  [[nodiscard]] CpuId first() const {
    SIM_ASSERT(!empty());
    return std::countr_zero(bits_);
  }

  constexpr void set(CpuId cpu) { bits_ |= std::uint64_t{1} << cpu; }
  constexpr void clear(CpuId cpu) { bits_ &= ~(std::uint64_t{1} << cpu); }

  /// True if every CPU in this mask is also in `other`.
  [[nodiscard]] constexpr bool subset_of(CpuMask other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  [[nodiscard]] constexpr bool intersects(CpuMask other) const {
    return (bits_ & other.bits_) != 0;
  }

  friend constexpr CpuMask operator&(CpuMask a, CpuMask b) {
    return CpuMask(a.bits_ & b.bits_);
  }
  friend constexpr CpuMask operator|(CpuMask a, CpuMask b) {
    return CpuMask(a.bits_ | b.bits_);
  }
  friend constexpr CpuMask operator~(CpuMask a) { return CpuMask(~a.bits_); }
  friend constexpr bool operator==(CpuMask, CpuMask) = default;

  /// Call `fn(cpu)` for each CPU in the mask, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t rest = bits_;
    while (rest != 0) {
      const CpuId cpu = std::countr_zero(rest);
      fn(cpu);
      rest &= rest - 1;
    }
  }

  /// Hex rendering, matching /proc/irq/N/smp_affinity ("3" = CPUs 0,1).
  [[nodiscard]] std::string to_hex() const;

  /// Parse the /proc hex format. Returns nullopt-like failure via bool.
  static bool parse_hex(std::string_view text, CpuMask& out);

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace hw

#include "hw/rcim_device.h"

#include "sim/assert.h"

namespace hw {

RcimDevice::RcimDevice(sim::Engine& engine, InterruptController& ic,
                       sim::Duration tick, Irq irq)
    : engine_(engine), ic_(ic), tick_(tick), irq_(irq) {
  SIM_ASSERT(tick > 0);
}

void RcimDevice::program_periodic(std::uint32_t count) {
  SIM_ASSERT_MSG(count > 0, "RCIM count register must be non-zero");
  stop();
  running_ = true;
  initial_count_ = count;
  cycle_start_ = engine_.now();
  pending_ = engine_.schedule(period(), [this] { fire(); });
}

void RcimDevice::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(pending_);
  pending_ = {};
}

std::uint32_t RcimDevice::read_count() const {
  if (!running_) return 0;
  const sim::Duration in_cycle = (engine_.now() - cycle_start_) % period();
  return initial_count_ - static_cast<std::uint32_t>(in_cycle / tick_);
}

sim::Duration RcimDevice::elapsed_in_cycle() const {
  return static_cast<sim::Duration>(initial_count_ - read_count()) * tick_;
}

void RcimDevice::trigger_external(int line) {
  SIM_ASSERT(line >= 0 && line < kExternalLines);
  external_status_ |= 1u << line;
  external_edge_at_[static_cast<std::size_t>(line)] = engine_.now();
  external_edges_[static_cast<std::size_t>(line)]++;
  ic_.raise(irq_);
}

std::uint32_t RcimDevice::read_and_clear_external_status() {
  const std::uint32_t s = external_status_;
  external_status_ = 0;
  return s;
}

sim::Time RcimDevice::last_external_edge(int line) const {
  SIM_ASSERT(line >= 0 && line < kExternalLines);
  return external_edge_at_[static_cast<std::size_t>(line)];
}

std::uint64_t RcimDevice::external_edge_count(int line) const {
  SIM_ASSERT(line >= 0 && line < kExternalLines);
  return external_edges_[static_cast<std::size_t>(line)];
}

void RcimDevice::fire() {
  // Auto-reload: the new cycle starts exactly when the count hits zero.
  cycle_start_ = engine_.now();
  last_fire_ = engine_.now();
  ++fires_;
  ic_.raise(irq_);
  sim::Duration next = period();
  if (fault_delay_) next += fault_delay_();
  pending_ = engine_.schedule(next, [this] { fire(); });
}

}  // namespace hw

// Graphics controller (nVidia GeForce2 MXR class).
//
// X11perf drives this: command batches are submitted, the GPU processes them
// and raises a completion interrupt so X can submit the next batch. The
// paper's Fig 7 guarantee explicitly holds "in the presence of graphics
// activity", so the graphics IRQ load must exist in the model.
#pragma once

#include <cstdint>

#include "hw/interrupt_controller.h"
#include "hw/types.h"
#include "sim/engine.h"

namespace hw {

class GpuDevice {
 public:
  GpuDevice(sim::Engine& engine, InterruptController& ic, Irq irq = kIrqGpu);

  /// Submit a rendering batch; completion raises the GPU IRQ.
  void submit_batch(std::uint32_t commands);

  /// Driver-side: number of completed batches since last drain.
  std::uint32_t drain_completions();

  [[nodiscard]] std::uint64_t total_batches() const { return total_; }
  [[nodiscard]] Irq irq() const { return irq_; }

 private:
  sim::Engine& engine_;
  InterruptController& ic_;
  Irq irq_;
  sim::Rng rng_;
  std::uint32_t pending_done_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace hw

#include "hw/disk_device.h"

#include "sim/assert.h"

namespace hw {

using namespace sim::literals;

DiskDevice::DiskDevice(sim::Engine& engine, InterruptController& ic, Irq irq)
    : engine_(engine), ic_(ic), irq_(irq), rng_(engine.rng().split()) {}

void DiskDevice::submit(const DiskRequest& req) {
  queue_.push_back(req);
  if (!busy_) start_next();
}

void DiskDevice::start_next() {
  SIM_ASSERT(!busy_);
  if (queue_.empty()) return;
  busy_ = true;
  DiskRequest req = queue_.front();
  queue_.pop_front();
  // Seek + rotational latency (most of the cost) plus transfer at ~40 MB/s.
  // Sequential hits in the on-disk cache make some requests much faster.
  const bool cache_hit = rng_.chance(0.35);
  const sim::Duration mech =
      cache_hit ? rng_.uniform_duration(100_us, 500_us)
                : rng_.uniform_duration(2_ms, 9_ms);
  const auto transfer =
      static_cast<sim::Duration>(static_cast<double>(req.bytes) * 25.0);  // 40 MB/s
  sim::Duration total = mech + transfer;
  if (fault_delay_) total += fault_delay_();
  engine_.schedule(total, [this, req] { finish(req); });
}

void DiskDevice::finish(DiskRequest req) {
  busy_ = false;
  ++completed_;
  done_cookies_.push_back(req.cookie);
  ic_.raise(irq_);
  start_next();
}

std::vector<std::uint64_t> DiskDevice::drain_completions() {
  std::vector<std::uint64_t> out;
  out.swap(done_cookies_);
  return out;
}

}  // namespace hw

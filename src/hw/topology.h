// CPU topology: physical cores and hyperthread siblings.
//
// The paper's §5.2 finding — hyperthreading is a major determinism hazard —
// requires the model to know which logical CPUs share an execution unit.
// With HT enabled, logical CPUs 2k and 2k+1 are siblings on core k (the
// layout of the paper's dual Xeons).
#pragma once

#include <vector>

#include "hw/cpu_mask.h"
#include "hw/types.h"

namespace hw {

class Topology {
 public:
  /// `physical_cores` execution units; `hyperthreading` doubles the logical
  /// CPU count. `cpu_ghz` sets nominal execution speed (informational).
  Topology(int physical_cores, bool hyperthreading, double cpu_ghz = 1.4);

  [[nodiscard]] int logical_cpus() const { return logical_cpus_; }
  [[nodiscard]] int physical_cores() const { return physical_cores_; }
  [[nodiscard]] bool hyperthreading() const { return hyperthreading_; }
  [[nodiscard]] double cpu_ghz() const { return cpu_ghz_; }

  /// Mask of all logical CPUs.
  [[nodiscard]] CpuMask all_cpus() const {
    return CpuMask::first_n(logical_cpus_);
  }

  /// Physical core hosting a logical CPU.
  [[nodiscard]] int core_of(CpuId cpu) const;

  /// The other logical CPU on the same core, or -1 without HT.
  [[nodiscard]] CpuId sibling_of(CpuId cpu) const;

  [[nodiscard]] bool valid_cpu(CpuId cpu) const {
    return cpu >= 0 && cpu < logical_cpus_;
  }

 private:
  int physical_cores_;
  bool hyperthreading_;
  int logical_cpus_;
  double cpu_ghz_;
};

}  // namespace hw

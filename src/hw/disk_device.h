// SCSI disk.
//
// Requests complete after a sampled seek + transfer time (2003-era SCSI:
// a few ms). Completions raise the disk IRQ; the driver drains completion
// cookies and wakes the submitting tasks. The disknoise script and the FS
// stress test drive this device hard.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "hw/interrupt_controller.h"
#include "hw/types.h"
#include "sim/engine.h"

namespace hw {

struct DiskRequest {
  std::uint32_t bytes = 0;
  bool write = false;
  std::uint64_t cookie = 0;  ///< caller-defined identity, returned on completion
};

class DiskDevice {
 public:
  DiskDevice(sim::Engine& engine, InterruptController& ic, Irq irq = kIrqDisk);

  /// Queue a request. The device services requests one at a time, FIFO.
  void submit(const DiskRequest& req);

  /// Driver-side: collect cookies of completed requests.
  std::vector<std::uint64_t> drain_completions();

  /// Fault hook: extra completion latency sampled per request (device
  /// timeout / retried command). nullptr clears the hook.
  void set_fault_delay(std::function<sim::Duration()> fn) {
    fault_delay_ = std::move(fn);
  }

  [[nodiscard]] std::uint64_t completed_requests() const { return completed_; }
  [[nodiscard]] std::size_t queue_depth() const {
    return queue_.size() + (busy_ ? 1u : 0u);
  }
  [[nodiscard]] Irq irq() const { return irq_; }

 private:
  void start_next();
  void finish(DiskRequest req);

  sim::Engine& engine_;
  InterruptController& ic_;
  Irq irq_;
  sim::Rng rng_;
  std::function<sim::Duration()> fault_delay_;
  std::deque<DiskRequest> queue_;
  bool busy_ = false;
  std::vector<std::uint64_t> done_cookies_;
  std::uint64_t completed_ = 0;
};

}  // namespace hw

// SMP memory-bus and hyperthread contention model.
//
// Two of the paper's findings live here:
//  * Fig 2: even a fully shielded CPU keeps ~1.9% worst-case jitter, which
//    the paper attributes to memory contention from the other CPU.
//  * Fig 1 vs Fig 4: hyperthreading roughly doubles worst-case jitter
//    because the sibling logical CPU contends for the shared execution unit.
//
// The model is intentionally coarse: each CPU advertises a memory-traffic
// intensity in [0,1] (set by the kernel from the running task's profile);
// executing a work segment on a CPU is dilated by a factor sampled from the
// foreign traffic it sees plus an HT factor when the sibling is busy.
#pragma once

#include <vector>

#include "hw/topology.h"
#include "sim/engine.h"
#include "sim/rng.h"

namespace hw {

struct MemorySystemParams {
  /// Slowdown per unit of (self intensity × foreign traffic).
  double bus_contention_coeff = 0.45;
  /// Hyperthread slowdown factor range when the sibling is busy.
  double ht_contention_min = 1.30;
  double ht_contention_max = 1.75;
  /// Half-normal execution noise (cache effects on an otherwise idle bus).
  double noise_sigma = 0.0015;
};

class MemorySystem {
 public:
  MemorySystem(sim::Engine& engine, const Topology& topo,
               MemorySystemParams params = {});

  /// Advertise the memory intensity of whatever runs on `cpu` now.
  void set_traffic(CpuId cpu, double intensity);

  [[nodiscard]] double traffic(CpuId cpu) const;

  /// Total traffic from all physical cores other than `cpu`'s core.
  /// (HT siblings share a cache, not the bus, so they are excluded here —
  /// their interference is the separate HT factor.)
  [[nodiscard]] double foreign_traffic(CpuId cpu) const;

  /// Sample the wall-time dilation factor (>= 1.0) for a work segment on
  /// `cpu`, given whether the HT sibling is currently executing and the
  /// memory intensity of the work itself.
  double sample_dilation(CpuId cpu, bool sibling_busy, double self_intensity);

  const MemorySystemParams& params() const { return params_; }

 private:
  const Topology& topo_;
  MemorySystemParams params_;
  sim::Rng rng_;
  std::vector<double> traffic_;
};

}  // namespace hw

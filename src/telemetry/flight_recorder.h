// Flight recorder: a fixed-size ring of recent simulation events, kept for
// post-mortem dumps when a scenario dies (watchdog timeout, exhausted
// retries, runtime error).
//
// Entries are small PODs — no strings, no allocation per record — so
// leaving the recorder enabled costs a few stores per instrumented event.
// Recording is strictly passive: it never schedules events, draws RNG or
// mutates model state, so enabling it cannot change a scenario's outputs.
// Disabled (the default) the record() fast path is a single branch.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace telemetry {

enum class EventKind : std::uint8_t {
  kIrqRaise,      ///< a = irq line
  kIrqDispatch,   ///< a = vector (negative: pseudo vectors, e.g. SMI)
  kCtxSwitch,     ///< a = incoming pid, b = 1 when the task is RT
  kLockAcquire,   ///< a = lock id
  kLockContend,   ///< a = lock id, b = holder cpu (-1 unknown)
  kSoftirqRaise,  ///< a = softirq type
  kFaultArm,      ///< a = number of armed fault specs
  kFaultFire,     ///< a = fault kind, b = fault-specific detail
};

[[nodiscard]] const char* to_string(EventKind k);

class FlightRecorder {
 public:
  struct Entry {
    sim::Time at = 0;
    EventKind kind = EventKind::kIrqRaise;
    std::int16_t cpu = -1;
    std::int32_t a = 0;
    std::int32_t b = 0;
  };

  /// Start recording into a ring of `capacity` entries. Starting a fresh
  /// session (from disabled, or with a different capacity) clears the ring;
  /// a redundant enable() while already recording keeps it.
  void enable(std::size_t capacity);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  void record(sim::Time at, EventKind kind, int cpu, std::int32_t a = 0,
              std::int32_t b = 0) {
    if (!enabled_) return;
    Entry& e = ring_[head_];
    e.at = at;
    e.kind = kind;
    e.cpu = static_cast<std::int16_t>(cpu);
    e.a = a;
    e.b = b;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    ++recorded_;
  }

  /// Entries oldest-first. Empty when never enabled.
  [[nodiscard]] std::vector<Entry> entries() const;

  /// Total events offered to the ring since enable().
  [[nodiscard]] std::uint64_t total_recorded() const { return recorded_; }

  /// Events that fell off the ring (total - retained).
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

 private:
  std::vector<Entry> ring_;
  std::size_t head_ = 0;
  std::uint64_t recorded_ = 0;
  bool enabled_ = false;
};

}  // namespace telemetry

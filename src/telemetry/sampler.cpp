#include "telemetry/sampler.h"

#include "sim/assert.h"

namespace telemetry {

void Sampler::start(sim::Duration period) {
  SIM_ASSERT_MSG(period > 0, "sampler period must be positive");
  stop();
  period_ = period;
  last_ = registry_.snapshot_values();
  running_ = true;
  pending_ = engine_.schedule(period_, [this] { tick(); });
}

void Sampler::stop() {
  if (!running_) return;
  engine_.cancel(pending_);
  running_ = false;
}

void Sampler::tick() {
  auto values = registry_.snapshot_values();
  // Series registered after start() appear at the tail of the flattened
  // order; treat their baseline as zero.
  if (last_.size() < values.size()) last_.resize(values.size(), 0);

  Point p;
  p.at = engine_.now();
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Gauges over externally-reset state can go backwards; clamp to zero
    // delta rather than wrapping.
    if (values[i] > last_[i]) {
      p.deltas.emplace_back(static_cast<std::uint32_t>(i),
                            values[i] - last_[i]);
    }
  }
  last_ = std::move(values);
  points_.push_back(std::move(p));

  if (points_.size() >= kMaxPoints) {
    running_ = false;
    return;
  }
  pending_ = engine_.schedule(period_, [this] { tick(); });
}

}  // namespace telemetry

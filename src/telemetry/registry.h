// Central metric registry: named counters, gauges and histograms with
// per-cell sharding (cells are usually CPUs, sometimes locks or IRQ lines).
//
// The simulation is single-threaded per Platform (SweepRunner parallelism
// is across Platforms), so cells are plain uint64_t — no atomics anywhere
// on the hot path. Components register metrics once at construction:
//
//   * Counter   — registry-owned storage; the component increments through
//                 a small handle (one pointer indirection per add).
//   * Gauge     — pull-based: a callback sampled only when a snapshot or
//                 export is taken. Registering a gauge over an existing
//                 field costs the hot path nothing at all.
//   * Histogram — wraps metrics::LatencyHistogram per cell.
//
// Registration is idempotent by name: re-registering returns the existing
// metric (gauges re-bind their callback, so a second Kernel constructed on
// a reused Engine replaces the dead closure instead of leaving a dangling
// one). Snapshot order is registration order and is stable across runs of
// the same platform shape, which is what makes sampler timelines and
// Prometheus exports diffable between runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/histogram.h"
#include "sim/time.h"

namespace telemetry {

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind k);

class Registry {
  struct Metric;

 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  /// Handle for a registered counter. Cheap to copy; valid as long as the
  /// registry lives. add() is the only hot-path operation in this file.
  class Counter {
   public:
    Counter() = default;
    void add(int cell, std::uint64_t delta) {
      if (m_ != nullptr) cell_slot(cell) += delta;
    }
    void inc(int cell) { add(cell, 1); }
    [[nodiscard]] std::uint64_t value(int cell) const;
    [[nodiscard]] bool valid() const { return m_ != nullptr; }

   private:
    friend class Registry;
    explicit Counter(Metric* m) : m_(m) {}
    std::uint64_t& cell_slot(int cell);
    Metric* m_ = nullptr;
  };

  /// Handle for a registered histogram.
  class Histogram {
   public:
    Histogram() = default;
    void add(int cell, sim::Duration v);
    [[nodiscard]] const metrics::LatencyHistogram* cell(int cell) const;
    [[nodiscard]] bool valid() const { return m_ != nullptr; }

   private:
    friend class Registry;
    explicit Histogram(Metric* m) : m_(m) {}
    Metric* m_ = nullptr;
  };

  using GaugeFn = std::function<std::uint64_t(int cell)>;

  /// Register (or look up) a counter with `cells` shards. `cell_label`
  /// names the shard dimension ("cpu", "lock", "irq"; empty for a scalar);
  /// `cell_names` optionally names individual shards for exports.
  Counter counter(std::string_view name, std::string_view help, int cells,
                  std::string_view cell_label = "cpu",
                  std::vector<std::string> cell_names = {});

  /// Register (or re-bind) a pull-based gauge. `fn` is called with the cell
  /// index at snapshot/export time only. Re-registration replaces the
  /// callback — required when a new component instance reuses the name.
  void gauge(std::string_view name, std::string_view help, int cells,
             std::string_view cell_label, GaugeFn fn,
             std::vector<std::string> cell_names = {});

  Histogram histogram(std::string_view name, std::string_view help, int cells,
                      std::string_view cell_label = "cpu",
                      std::vector<std::string> cell_names = {});

  /// Current value of one cell of a named metric (counter cell, gauge call,
  /// or histogram sample count). Returns 0 when the metric or cell does not
  /// exist — procfs views use this so a missing registration reads as zero
  /// rather than crashing the text renderer.
  [[nodiscard]] std::uint64_t value(std::string_view name, int cell = 0) const;

  /// Whether a metric with this name exists.
  [[nodiscard]] bool contains(std::string_view name) const;

  /// Number of registered metrics.
  [[nodiscard]] std::size_t metric_count() const { return metrics_.size(); }

  /// Total number of flattened series (sum of cell counts).
  [[nodiscard]] std::size_t series_count() const;

  /// Flattened series names in snapshot order: "name" for scalars,
  /// "name[label/cellname]" for sharded metrics.
  [[nodiscard]] std::vector<std::string> series_names() const;

  /// Flattened current values in the same order as series_names().
  /// Histogram series report their sample count.
  [[nodiscard]] std::vector<std::uint64_t> snapshot_values() const;

  /// One flattened sample, for top-N views.
  struct Sample {
    std::string series;
    MetricKind kind;
    std::uint64_t value;
  };
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Prometheus text exposition: HELP/TYPE comments plus one line per cell,
  /// names sanitized and prefixed with "shieldsim_". Histograms export
  /// _count, _sum_ns and _max_ns series.
  [[nodiscard]] std::string prometheus_text() const;

  /// Zero all counter cells and clear all histograms. Gauges are views
  /// over component state and are unaffected — their sources reset through
  /// the owning component (see kernel::Kernel::reset_latency_counters).
  void reset();

 private:
  Metric* find(std::string_view name) const;
  Metric& intern(std::string_view name, std::string_view help,
                 MetricKind kind, int cells, std::string_view cell_label,
                 std::vector<std::string> cell_names);

  std::vector<Metric*> metrics_;  // owned; stable addresses for handles
};

}  // namespace telemetry

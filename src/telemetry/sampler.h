// Time-series sampler: a sim-time periodic event that snapshots registry
// deltas into a compact per-scenario timeline.
//
// Each tick reads every flattened series and stores only the (series index,
// delta) pairs that changed since the previous tick, so a quiet series
// costs nothing per point. The sampler reads the registry and the clock but
// never touches model state or RNG streams — its only observable footprint
// is the extra calendar events, which exist only when a scenario opts in.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "telemetry/registry.h"

namespace telemetry {

class Sampler {
 public:
  /// Hard cap on stored points — a runaway horizon cannot exhaust memory;
  /// sampling simply stops once the timeline is full.
  static constexpr std::size_t kMaxPoints = 65536;

  Sampler(sim::Engine& engine, Registry& registry)
      : engine_(engine), registry_(registry) {}
  ~Sampler() { stop(); }

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Begin sampling every `period` ns of sim time. The first point lands
  /// one period from now; the baseline snapshot is taken immediately.
  void start(sim::Duration period);

  /// Cancel the pending tick. Point data is retained.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] sim::Duration period() const { return period_; }

  struct Point {
    sim::Time at = 0;
    /// (flattened series index, increase since previous point).
    std::vector<std::pair<std::uint32_t, std::uint64_t>> deltas;
  };
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  /// Flattened series names, index-aligned with Point::deltas. Taken live
  /// from the registry so late registrations are included.
  [[nodiscard]] std::vector<std::string> series_names() const {
    return registry_.series_names();
  }

 private:
  void tick();

  sim::Engine& engine_;
  Registry& registry_;
  sim::Duration period_ = 0;
  sim::EventId pending_{};
  bool running_ = false;
  std::vector<std::uint64_t> last_;
  std::vector<Point> points_;
};

}  // namespace telemetry

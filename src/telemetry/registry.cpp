#include "telemetry/registry.h"

#include <algorithm>

#include "sim/assert.h"

namespace telemetry {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

struct Registry::Metric {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::string cell_label;
  std::vector<std::string> cell_names;
  std::vector<std::uint64_t> cells;                  // counters
  std::vector<GaugeFn> gauges;                       // gauges
  std::vector<metrics::LatencyHistogram> hists;      // histograms

  [[nodiscard]] int cell_count() const {
    switch (kind) {
      case MetricKind::kCounter: return static_cast<int>(cells.size());
      case MetricKind::kGauge: return static_cast<int>(gauges.size());
      case MetricKind::kHistogram: return static_cast<int>(hists.size());
    }
    return 0;
  }

  [[nodiscard]] std::uint64_t cell_value(int c) const {
    if (c < 0 || c >= cell_count()) return 0;
    switch (kind) {
      case MetricKind::kCounter:
        return cells[static_cast<std::size_t>(c)];
      case MetricKind::kGauge: {
        const auto& fn = gauges[static_cast<std::size_t>(c)];
        return fn ? fn(c) : 0;
      }
      case MetricKind::kHistogram:
        return hists[static_cast<std::size_t>(c)].count();
    }
    return 0;
  }

  [[nodiscard]] std::string series_name(int c) const {
    if (cell_count() == 1 && cell_label.empty()) return name;
    std::string cell = c < static_cast<int>(cell_names.size())
                           ? cell_names[static_cast<std::size_t>(c)]
                           : std::to_string(c);
    return name + "[" + cell_label + "/" + cell + "]";
  }
};

Registry::~Registry() {
  for (Metric* m : metrics_) delete m;
}

std::uint64_t& Registry::Counter::cell_slot(int cell) {
  SIM_ASSERT_MSG(m_ != nullptr && cell >= 0 &&
                     cell < static_cast<int>(m_->cells.size()),
                 "telemetry counter cell out of range");
  return m_->cells[static_cast<std::size_t>(cell)];
}

std::uint64_t Registry::Counter::value(int cell) const {
  return m_ != nullptr ? m_->cell_value(cell) : 0;
}

void Registry::Histogram::add(int cell, sim::Duration v) {
  if (m_ == nullptr) return;
  SIM_ASSERT_MSG(cell >= 0 && cell < static_cast<int>(m_->hists.size()),
                 "telemetry histogram cell out of range");
  m_->hists[static_cast<std::size_t>(cell)].add(v);
}

const metrics::LatencyHistogram* Registry::Histogram::cell(int cell) const {
  if (m_ == nullptr || cell < 0 ||
      cell >= static_cast<int>(m_->hists.size())) {
    return nullptr;
  }
  return &m_->hists[static_cast<std::size_t>(cell)];
}

Registry::Metric* Registry::find(std::string_view name) const {
  for (Metric* m : metrics_) {
    if (m->name == name) return m;
  }
  return nullptr;
}

Registry::Metric& Registry::intern(std::string_view name,
                                   std::string_view help, MetricKind kind,
                                   int cells, std::string_view cell_label,
                                   std::vector<std::string> cell_names) {
  SIM_ASSERT_MSG(cells > 0, "telemetry metric needs at least one cell");
  if (Metric* m = find(name)) {
    SIM_ASSERT_MSG(m->kind == kind,
                   "telemetry metric re-registered as a different kind");
    // Grow, never shrink: a wider platform reusing the name keeps all data.
    const auto want =
        static_cast<std::size_t>(std::max(cells, m->cell_count()));
    if (kind == MetricKind::kCounter) m->cells.resize(want);
    if (kind == MetricKind::kGauge) m->gauges.resize(want);
    if (kind == MetricKind::kHistogram) m->hists.resize(want);
    if (!cell_names.empty()) m->cell_names = std::move(cell_names);
    return *m;
  }
  auto* m = new Metric();
  m->name = std::string(name);
  m->help = std::string(help);
  m->kind = kind;
  m->cell_label = std::string(cell_label);
  m->cell_names = std::move(cell_names);
  switch (kind) {
    case MetricKind::kCounter:
      m->cells.assign(static_cast<std::size_t>(cells), 0);
      break;
    case MetricKind::kGauge:
      m->gauges.resize(static_cast<std::size_t>(cells));
      break;
    case MetricKind::kHistogram:
      m->hists.resize(static_cast<std::size_t>(cells));
      break;
  }
  metrics_.push_back(m);
  return *m;
}

Registry::Counter Registry::counter(std::string_view name,
                                    std::string_view help, int cells,
                                    std::string_view cell_label,
                                    std::vector<std::string> cell_names) {
  return Counter(&intern(name, help, MetricKind::kCounter, cells, cell_label,
                         std::move(cell_names)));
}

void Registry::gauge(std::string_view name, std::string_view help, int cells,
                     std::string_view cell_label, GaugeFn fn,
                     std::vector<std::string> cell_names) {
  Metric& m = intern(name, help, MetricKind::kGauge, cells, cell_label,
                     std::move(cell_names));
  // One registration call binds every cell: the callback receives the cell
  // index. Re-binding replaces stale closures from a previous component.
  for (auto& g : m.gauges) g = fn;
}

Registry::Histogram Registry::histogram(std::string_view name,
                                        std::string_view help, int cells,
                                        std::string_view cell_label,
                                        std::vector<std::string> cell_names) {
  return Histogram(&intern(name, help, MetricKind::kHistogram, cells,
                           cell_label, std::move(cell_names)));
}

std::uint64_t Registry::value(std::string_view name, int cell) const {
  const Metric* m = find(name);
  return m != nullptr ? m->cell_value(cell) : 0;
}

bool Registry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

std::size_t Registry::series_count() const {
  std::size_t n = 0;
  for (const Metric* m : metrics_) n += static_cast<std::size_t>(m->cell_count());
  return n;
}

std::vector<std::string> Registry::series_names() const {
  std::vector<std::string> out;
  out.reserve(series_count());
  for (const Metric* m : metrics_) {
    for (int c = 0; c < m->cell_count(); ++c) out.push_back(m->series_name(c));
  }
  return out;
}

std::vector<std::uint64_t> Registry::snapshot_values() const {
  std::vector<std::uint64_t> out;
  out.reserve(series_count());
  for (const Metric* m : metrics_) {
    for (int c = 0; c < m->cell_count(); ++c) out.push_back(m->cell_value(c));
  }
  return out;
}

std::vector<Registry::Sample> Registry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(series_count());
  for (const Metric* m : metrics_) {
    for (int c = 0; c < m->cell_count(); ++c) {
      out.push_back(Sample{m->series_name(c), m->kind, m->cell_value(c)});
    }
  }
  return out;
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = "shieldsim_";
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

void prom_series(std::string& out, const std::string& metric,
                 const std::string& label, const std::string& cell,
                 bool labelled, std::uint64_t value) {
  out += metric;
  if (labelled) {
    out += "{";
    out += label;
    out += "=\"";
    out += cell;
    out += "\"}";
  }
  out += " ";
  out += std::to_string(value);
  out += "\n";
}

}  // namespace

std::string Registry::prometheus_text() const {
  std::string out;
  for (const Metric* m : metrics_) {
    const std::string pname = prom_name(m->name);
    const bool labelled = !(m->cell_count() == 1 && m->cell_label.empty());
    const char* type =
        m->kind == MetricKind::kCounter ? "counter" : "gauge";
    auto cell_name = [&](int c) {
      return c < static_cast<int>(m->cell_names.size())
                 ? m->cell_names[static_cast<std::size_t>(c)]
                 : std::to_string(c);
    };
    if (m->kind == MetricKind::kHistogram) {
      for (const char* suffix : {"_count", "_sum_ns", "_max_ns"}) {
        const std::string sub = pname + suffix;
        out += "# HELP " + sub + " " + m->help + "\n";
        out += "# TYPE " + sub + " gauge\n";
        for (int c = 0; c < m->cell_count(); ++c) {
          const auto& h = m->hists[static_cast<std::size_t>(c)];
          std::uint64_t v = 0;
          if (suffix[1] == 'c') {
            v = h.count();
          } else if (suffix[1] == 's') {
            v = static_cast<std::uint64_t>(
                h.summary().sum() < 0 ? 0 : h.summary().sum());
          } else {
            v = h.count() > 0 ? static_cast<std::uint64_t>(h.max()) : 0;
          }
          prom_series(out, sub, m->cell_label, cell_name(c), labelled, v);
        }
      }
      continue;
    }
    out += "# HELP " + pname + " " + m->help + "\n";
    out += "# TYPE " + pname + " " + type + "\n";
    for (int c = 0; c < m->cell_count(); ++c) {
      prom_series(out, pname, m->cell_label, cell_name(c), labelled,
                  m->cell_value(c));
    }
  }
  return out;
}

void Registry::reset() {
  for (Metric* m : metrics_) {
    std::fill(m->cells.begin(), m->cells.end(), 0);
    for (auto& h : m->hists) h.clear();
  }
}

}  // namespace telemetry

#include "telemetry/flight_recorder.h"

#include <algorithm>

namespace telemetry {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kIrqRaise: return "irq-raise";
    case EventKind::kIrqDispatch: return "irq-dispatch";
    case EventKind::kCtxSwitch: return "ctx-switch";
    case EventKind::kLockAcquire: return "lock-acquire";
    case EventKind::kLockContend: return "lock-contend";
    case EventKind::kSoftirqRaise: return "softirq-raise";
    case EventKind::kFaultArm: return "fault-arm";
    case EventKind::kFaultFire: return "fault-fire";
  }
  return "?";
}

void FlightRecorder::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  // A fresh recording session (disabled -> enabled) always starts from an
  // empty ring: re-enabling at the same capacity must not resurface the
  // previous session's entries in the next dump. Only a redundant enable()
  // while already recording is a no-op.
  if (capacity != ring_.size() || !enabled_) {
    ring_.assign(capacity, Entry{});
    head_ = 0;
    recorded_ = 0;
  }
  enabled_ = true;
}

std::vector<FlightRecorder::Entry> FlightRecorder::entries() const {
  std::vector<Entry> out;
  if (ring_.empty() || recorded_ == 0) return out;
  const std::size_t kept = std::min<std::uint64_t>(recorded_, ring_.size());
  out.reserve(kept);
  // Oldest entry sits at head_ once the ring has wrapped; before that the
  // ring is filled from index 0.
  std::size_t start = recorded_ >= ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < kept; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::dropped() const {
  const std::uint64_t kept = std::min<std::uint64_t>(recorded_, ring_.size());
  return recorded_ - kept;
}

void FlightRecorder::clear() {
  std::fill(ring_.begin(), ring_.end(), Entry{});
  head_ = 0;
  recorded_ = 0;
}

}  // namespace telemetry

// The §3 shield semantics as pure mask algebra.
//
// "In general, the CPUs that are shielded are removed from the CPU affinity
//  of a process or interrupt. The only processes or interrupts that are
//  allowed to execute on a shielded CPU are [those] that would otherwise be
//  precluded from running unless they are allowed to run on a shielded CPU.
//  In other words, to run on a shielded CPU, a process must set its CPU
//  affinity such that it contains only shielded CPUs."
//
// These functions are the single source of truth for that rule; the kernel
// applies them to processes and the shield controller applies them to
// interrupt lines.
#pragma once

#include "hw/cpu_mask.h"

namespace shield {

/// Effective affinity of a process (or IRQ) with requested mask `requested`
/// under shield mask `shielded`. Precondition: `requested` is non-empty.
/// Result is always non-empty:
///  * requested ⊆ shielded  → requested (explicitly opted onto the shield)
///  * otherwise             → requested minus shielded CPUs; if that would
///    be empty the whole requested mask is kept (cannot strand the task,
///    matching Linux's refusal to leave an empty affinity)
[[nodiscard]] constexpr hw::CpuMask effective_affinity(hw::CpuMask requested,
                                                       hw::CpuMask shielded) {
  if (requested.subset_of(shielded)) return requested;
  const hw::CpuMask reduced = requested & ~shielded;
  return reduced.empty() ? requested : reduced;
}

/// True if the mask opts entirely onto shielded CPUs (the §3 condition for
/// being allowed to run there).
[[nodiscard]] constexpr bool opted_onto_shield(hw::CpuMask requested,
                                               hw::CpuMask shielded) {
  return !shielded.empty() && requested.subset_of(shielded);
}

}  // namespace shield

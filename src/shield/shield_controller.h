// Shielded-processor controller — the paper's primary contribution (§3).
//
// Three independent shield masks, exactly as in RedHawk's /proc/shield:
//  * procs — processes may run on a shielded CPU only if their affinity
//    contains *only* shielded CPUs;
//  * irqs  — device interrupt lines are steered away from shielded CPUs
//    unless their affinity contains only shielded CPUs;
//  * ltmr  — the per-CPU local timer interrupt is disabled on these CPUs.
//
// Writing a mask dynamically re-applies everything: running/queued tasks
// are migrated off, interrupt affinities are rewritten, and the local
// timer is reprogrammed — "the ability to dynamically enable CPU shielding
// allows a developer to easily make modifications when tuning".
#pragma once

#include <array>

#include "hw/cpu_mask.h"
#include "hw/interrupt_controller.h"
#include "kernel/kernel.h"

namespace shield {

class ShieldController {
 public:
  /// Requires a kernel built with shield support (config().shield_support).
  explicit ShieldController(kernel::Kernel& kernel);

  // ---- typed API -------------------------------------------------------------

  /// Shield `mask` from ordinary processes.
  void set_process_shield(hw::CpuMask mask);
  /// Shield `mask` from maskable device interrupts.
  void set_irq_shield(hw::CpuMask mask);
  /// Disable the local timer interrupt on `mask`.
  void set_ltmr_shield(hw::CpuMask mask);
  /// Convenience: apply the same mask to all three shields.
  void shield_all(hw::CpuMask mask);
  /// Drop all shielding.
  void unshield_all();

  [[nodiscard]] hw::CpuMask process_shield() const { return procs_; }
  [[nodiscard]] hw::CpuMask irq_shield() const { return irqs_; }
  [[nodiscard]] hw::CpuMask ltmr_shield() const { return ltmr_; }

  /// True if `cpu` is shielded from processes, IRQs and the local timer.
  [[nodiscard]] bool fully_shielded(hw::CpuId cpu) const;

  // ---- helpers for the canonical setup ---------------------------------------

  /// The standard recipe from §6: pin `task` and `irq` to `cpu`, then fully
  /// shield that CPU.
  void dedicate_cpu(hw::CpuId cpu, kernel::Task& task, hw::Irq irq);

 private:
  void apply_irq_shield();
  void apply_ltmr_shield();
  void register_proc_files();

  kernel::Kernel& kernel_;
  hw::CpuMask procs_;
  hw::CpuMask irqs_;
  hw::CpuMask ltmr_;
  /// What each IRQ line's affinity would be with no shield (the "user"
  /// affinity, so the shield algebra composes with smp_affinity writes).
  std::array<hw::CpuMask, hw::kMaxIrq> irq_user_affinity_{};
};

}  // namespace shield

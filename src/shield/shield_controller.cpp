#include "shield/shield_controller.h"

#include "shield/shield_policy.h"
#include "sim/assert.h"

namespace shield {

ShieldController::ShieldController(kernel::Kernel& kernel) : kernel_(kernel) {
  SIM_ASSERT_MSG(kernel.config().shield_support,
                 "kernel built without shield support");
  auto& ic = kernel_.interrupt_controller();
  for (hw::Irq irq = 0; irq < hw::kMaxIrq; ++irq) {
    irq_user_affinity_[static_cast<std::size_t>(irq)] = ic.affinity(irq);
  }
  register_proc_files();
}

void ShieldController::set_process_shield(hw::CpuMask mask) {
  procs_ = mask & kernel_.topology().all_cpus();
  kernel_.engine().trace().record(kernel_.now(), sim::TraceCategory::kShield,
                                  -1, "procs shield = " + procs_.to_hex());
  kernel_.set_process_shield_mask(procs_);
  kernel_.reapply_affinities();
}

void ShieldController::apply_irq_shield() {
  auto& ic = kernel_.interrupt_controller();
  for (hw::Irq irq = 0; irq < hw::kMaxIrq; ++irq) {
    const hw::CpuMask user = irq_user_affinity_[static_cast<std::size_t>(irq)];
    ic.set_affinity(irq, effective_affinity(user, irqs_));
  }
}

void ShieldController::set_irq_shield(hw::CpuMask mask) {
  irqs_ = mask & kernel_.topology().all_cpus();
  kernel_.engine().trace().record(kernel_.now(), sim::TraceCategory::kShield,
                                  -1, "irqs shield = " + irqs_.to_hex());
  apply_irq_shield();
}

void ShieldController::apply_ltmr_shield() {
  auto& timer = kernel_.local_timer();
  for (hw::CpuId cpu = 0; cpu < kernel_.ncpus(); ++cpu) {
    timer.set_enabled(cpu, !ltmr_.test(cpu));
  }
}

void ShieldController::set_ltmr_shield(hw::CpuMask mask) {
  ltmr_ = mask & kernel_.topology().all_cpus();
  kernel_.engine().trace().record(kernel_.now(), sim::TraceCategory::kShield,
                                  -1, "ltmr shield = " + ltmr_.to_hex());
  apply_ltmr_shield();
}

void ShieldController::shield_all(hw::CpuMask mask) {
  set_process_shield(mask);
  set_irq_shield(mask);
  set_ltmr_shield(mask);
}

void ShieldController::unshield_all() { shield_all(hw::CpuMask::none()); }

bool ShieldController::fully_shielded(hw::CpuId cpu) const {
  return procs_.test(cpu) && irqs_.test(cpu) && ltmr_.test(cpu);
}

void ShieldController::dedicate_cpu(hw::CpuId cpu, kernel::Task& task,
                                    hw::Irq irq) {
  SIM_ASSERT(kernel_.topology().valid_cpu(cpu));
  const hw::CpuMask one = hw::CpuMask::single(cpu);
  const bool ok = kernel_.sched_setaffinity(task, one);
  SIM_ASSERT(ok);
  irq_user_affinity_[static_cast<std::size_t>(irq)] = one;
  shield_all(one);  // re-applies process + irq + ltmr shielding
}

void ShieldController::register_proc_files() {
  auto& procfs = kernel_.procfs();

  procfs.register_file(
      "/proc/shield/procs", [this] { return procs_.to_hex() + "\n"; },
      [this](std::string_view data) {
        hw::CpuMask mask;
        if (!hw::CpuMask::parse_hex(data, mask)) return false;
        set_process_shield(mask);
        return true;
      });
  procfs.register_file(
      "/proc/shield/irqs", [this] { return irqs_.to_hex() + "\n"; },
      [this](std::string_view data) {
        hw::CpuMask mask;
        if (!hw::CpuMask::parse_hex(data, mask)) return false;
        set_irq_shield(mask);
        return true;
      });
  procfs.register_file(
      "/proc/shield/ltmr", [this] { return ltmr_.to_hex() + "\n"; },
      [this](std::string_view data) {
        hw::CpuMask mask;
        if (!hw::CpuMask::parse_hex(data, mask)) return false;
        set_ltmr_shield(mask);
        return true;
      });

  // Re-register /proc/irq/N/smp_affinity so writes record the *user*
  // affinity and the shield algebra is applied on top — matching the
  // paper's interaction semantics between smp_affinity and shielding.
  auto& ic = kernel_.interrupt_controller();
  for (hw::Irq irq = 0; irq < hw::kMaxIrq; ++irq) {
    const std::string path =
        "/proc/irq/" + std::to_string(irq) + "/smp_affinity";
    procfs.register_file(
        path, [&ic, irq] { return ic.affinity(irq).to_hex() + "\n"; },
        [this, &ic, irq](std::string_view data) {
          hw::CpuMask mask;
          if (!hw::CpuMask::parse_hex(data, mask)) return false;
          mask = mask & kernel_.topology().all_cpus();
          if (mask.empty()) return false;
          irq_user_affinity_[static_cast<std::size_t>(irq)] = mask;
          ic.set_affinity(irq, effective_affinity(mask, irqs_));
          return true;
        });
  }
}

}  // namespace shield

// Renderers that print results in the shape the paper reports them.
//
// Figures 1-4 carry a legend of (ideal, max, jitter seconds, jitter %).
// Figures 5-7 carry "N samples < X ms (P%)" bucket tables plus min/avg/max.
// The ASCII plots substitute for the paper's graphs.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "sim/time.h"

namespace metrics {

/// Legend for the determinism figures (Figs 1-4):
///   ideal: 1.150000 sec   max: 1.450000 sec   jitter: 0.300000 sec (26.17%)
std::string determinism_legend(sim::Duration ideal, sim::Duration max_observed);

/// Paper-style cumulative bucket table (Figs 5-6), e.g.
///   59,447,640 samples < 0.1ms (99.140%)
/// `thresholds` are the "< X" edges in nanoseconds.
std::string cumulative_bucket_table(const LatencyHistogram& hist,
                                    std::span<const sim::Duration> thresholds);

/// The exact threshold ladder Figure 5 uses (0.1, 0.2, 1, 2, 5, 10, 20, 30,
/// 40, 50, 60, 70, 80, 90, 100 ms).
std::vector<sim::Duration> figure5_thresholds();

/// min/avg/max line used for Figure 7:
///   minimum latency: 11 microseconds ...
std::string min_avg_max_line(const LatencyHistogram& hist);

/// ASCII bar chart of a latency histogram with a logarithmic y axis,
/// substituting for the paper's log-scale plots. `bins` x-axis bars between
/// min and max (linear in latency).
std::string ascii_histogram(const LatencyHistogram& hist, int bins = 50,
                            int height = 12);

/// One row of a results table: fixed-width label + free text.
std::string table_row(const std::string& label, const std::string& value);

/// Render a simple aligned table with a header rule.
std::string render_table(const std::string& title,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace metrics

// Running summary statistics (Welford's online algorithm).
#pragma once

#include <cstdint>
#include <limits>

#include "sim/time.h"

namespace metrics {

class Summary {
 public:
  void add(double x);
  void add_duration(sim::Duration d) { add(static_cast<double>(d)); }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }

  [[nodiscard]] sim::Duration min_duration() const { return to_duration(min_); }
  [[nodiscard]] sim::Duration max_duration() const { return to_duration(max_); }
  [[nodiscard]] sim::Duration mean_duration() const { return to_duration(mean()); }

  /// Merge another summary into this one (for parallel sweeps).
  void merge(const Summary& other);

  /// Welford M2 accumulator — exposed with `restore` so a summary can be
  /// serialized and rebuilt exactly (scenario result caching).
  [[nodiscard]] double m2() const { return m2_; }

  /// Rebuild a summary from its exact internal state.
  static Summary restore(std::uint64_t n, double min, double max, double mean,
                         double m2, double sum) {
    Summary s;
    s.n_ = n;
    s.min_ = min;
    s.max_ = max;
    s.mean_ = mean;
    s.m2_ = m2;
    s.sum_ = sum;
    return s;
  }

 private:
  static sim::Duration to_duration(double v) {
    return v <= 0 ? 0 : static_cast<sim::Duration>(v + 0.5);
  }

  std::uint64_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace metrics

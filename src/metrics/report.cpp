#include "metrics/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/assert.h"

namespace metrics {
namespace {

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace

std::string determinism_legend(sim::Duration ideal, sim::Duration max_observed) {
  SIM_ASSERT(max_observed >= ideal);
  const sim::Duration jitter = max_observed - ideal;
  const double pct =
      100.0 * static_cast<double>(jitter) / static_cast<double>(ideal);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "ideal: %.6f sec   max: %.6f sec   jitter: %.6f sec (%.2f%%)",
                sim::to_seconds(ideal), sim::to_seconds(max_observed),
                sim::to_seconds(jitter), pct);
  return buf;
}

std::string cumulative_bucket_table(const LatencyHistogram& hist,
                                    std::span<const sim::Duration> thresholds) {
  std::ostringstream os;
  os << with_commas(hist.count()) << " measured interrupts,  max latency: "
     << sim::format_duration(hist.max()) << "\n";
  for (sim::Duration t : thresholds) {
    const std::uint64_t n = hist.count_below(t);
    const double pct =
        hist.count() == 0
            ? 0.0
            : 100.0 * static_cast<double>(n) / static_cast<double>(hist.count());
    char line[128];
    std::snprintf(line, sizeof line, "%16s samples < %6.2fms (%8.4f%%)\n",
                  with_commas(n).c_str(), sim::to_millis(t), pct);
    os << line;
    if (n == hist.count()) break;  // ladder saturated, as in the paper
  }
  return os.str();
}

std::vector<sim::Duration> figure5_thresholds() {
  using namespace sim::literals;
  return {100'000_ns, 200'000_ns, 1_ms,  2_ms,  5_ms,  10_ms, 20_ms, 30_ms,
          40_ms,      50_ms,      60_ms, 70_ms, 80_ms, 90_ms, 100_ms};
}

std::string min_avg_max_line(const LatencyHistogram& hist) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "minimum latency: %.1f microseconds\n"
                "maximum latency: %.1f microseconds\n"
                "average latency: %.1f microseconds\n",
                sim::to_micros(hist.min()), sim::to_micros(hist.max()),
                sim::to_micros(hist.mean()));
  return buf;
}

std::string ascii_histogram(const LatencyHistogram& hist, int bins, int height) {
  if (hist.count() == 0) return "(no samples)\n";
  SIM_ASSERT(bins > 0 && height > 0);
  const sim::Duration lo = hist.min();
  const sim::Duration hi = std::max(hist.max(), lo + 1);
  std::vector<double> bar(static_cast<std::size_t>(bins), 0.0);
  for (const auto& b : hist.nonzero_buckets()) {
    const sim::Duration mid = b.lo / 2 + std::min(b.hi, hi) / 2;
    const auto clamped = std::clamp(mid, lo, hi);
    auto idx = static_cast<std::size_t>(
        static_cast<double>(clamped - lo) / static_cast<double>(hi - lo) *
        (bins - 1));
    bar[idx] += static_cast<double>(b.count);
  }
  double peak = 0.0;
  for (double v : bar) peak = std::max(peak, v);
  const double log_peak = std::log10(peak + 1.0);
  std::ostringstream os;
  for (int row = height; row >= 1; --row) {
    const double level = log_peak * row / height;
    os << "  |";
    for (int c = 0; c < bins; ++c) {
      const double v = std::log10(bar[static_cast<std::size_t>(c)] + 1.0);
      os << (v >= level && bar[static_cast<std::size_t>(c)] > 0 ? '#' : ' ');
    }
    os << "\n";
  }
  os << "  +" << std::string(static_cast<std::size_t>(bins), '-') << "\n";
  char axis[160];
  std::snprintf(axis, sizeof axis, "   %s%*s\n",
                sim::format_duration(lo).c_str(), bins - 4,
                sim::format_duration(hi).c_str());
  os << axis << "  (log-scale sample counts; x = latency)\n";
  return os.str();
}

std::string table_row(const std::string& label, const std::string& value) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "  %-40s %s\n", label.c_str(), value.c_str());
  return buf;
}

std::string render_table(const std::string& title,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width;
  for (const auto& row : rows) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  std::ostringstream os;
  os << "== " << title << " ==\n";
  bool first = true;
  for (const auto& row : rows) {
    os << "  ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i] << std::string(width[i] - row[i].size() + 2, ' ');
    }
    os << "\n";
    if (first) {
      std::size_t total = 2;
      for (auto w : width) total += w + 2;
      os << "  " << std::string(total, '-') << "\n";
      first = false;
    }
  }
  return os.str();
}

}  // namespace metrics

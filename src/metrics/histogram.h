// HDR-style latency histogram.
//
// Buckets are logarithmic octaves of nanoseconds, each split into 32 linear
// sub-buckets, giving ~3% relative resolution from 1 ns to ~18 minutes in a
// fixed 45*32 table. This is the shape the paper's figures need: latency
// distributions spanning microseconds to tens of milliseconds with a long
// tail.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "metrics/summary.h"
#include "sim/time.h"

namespace metrics {

class LatencyHistogram {
 public:
  static constexpr int kOctaves = 45;          // 2^44 ns ≈ 4.8 hours
  static constexpr int kSubBuckets = 32;
  static constexpr int kBucketCount = kOctaves * kSubBuckets;

  void add(sim::Duration latency);

  [[nodiscard]] std::uint64_t count() const { return summary_.count(); }
  [[nodiscard]] sim::Duration min() const { return summary_.min_duration(); }
  [[nodiscard]] sim::Duration max() const { return summary_.max_duration(); }
  [[nodiscard]] sim::Duration mean() const { return summary_.mean_duration(); }
  [[nodiscard]] const Summary& summary() const { return summary_; }

  /// Number of samples strictly below `threshold`.
  [[nodiscard]] std::uint64_t count_below(sim::Duration threshold) const;

  /// Fraction (0..1) of samples strictly below `threshold`.
  [[nodiscard]] double fraction_below(sim::Duration threshold) const;

  /// Smallest latency L such that at least `p` (0..1) of samples are <= L,
  /// resolved to bucket granularity. Requires count() > 0.
  [[nodiscard]] sim::Duration percentile(double p) const;

  /// Non-empty buckets as (lower_bound, upper_bound, count) for plotting.
  struct Bucket {
    sim::Duration lo;
    sim::Duration hi;
    std::uint64_t count;
  };
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

  void merge(const LatencyHistogram& other);
  void clear();

  /// Exact non-empty (bucket index, count) pairs — the serializable form.
  [[nodiscard]] std::vector<std::pair<int, std::uint64_t>> bucket_counts()
      const;
  /// Rebuild a histogram from bucket_counts() + summary(). The result is
  /// indistinguishable from the original: same percentiles, same summary.
  static LatencyHistogram restore(
      const std::vector<std::pair<int, std::uint64_t>>& buckets,
      const Summary& summary);

  /// Bucket index for a value — exposed for tests. Values beyond the table
  /// range (~2^49 ns) clamp into the last bucket.
  [[nodiscard]] static int bucket_index(sim::Duration v);
  /// Inclusive lower bound of a bucket — exposed for tests.
  [[nodiscard]] static sim::Duration bucket_lower_bound(int index);
  /// Width of a bucket (1 ns through the first octave, doubling per octave).
  [[nodiscard]] static sim::Duration bucket_width(int index);

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  Summary summary_;
};

}  // namespace metrics

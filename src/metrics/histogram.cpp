#include "metrics/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/assert.h"

namespace metrics {

int LatencyHistogram::bucket_index(sim::Duration v) {
  if (v < kSubBuckets) return static_cast<int>(v);
  const int msb = static_cast<int>(std::bit_width(v)) - 1;  // >= 5 here
  const int shift = msb - 5;
  const auto sub = static_cast<int>((v >> shift) - kSubBuckets);
  const int octave = msb - 4;
  const int index = octave * kSubBuckets + sub;
  // Durations beyond the table's ~2^49 ns (~6.5 day) range clamp into the
  // last bucket instead of walking off the array.
  return index < kBucketCount ? index : kBucketCount - 1;
}

sim::Duration LatencyHistogram::bucket_lower_bound(int index) {
  SIM_ASSERT(index >= 0 && index < kBucketCount);
  if (index < kSubBuckets) return static_cast<sim::Duration>(index);
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return static_cast<sim::Duration>(kSubBuckets + sub) << (octave - 1);
}

sim::Duration LatencyHistogram::bucket_width(int index) {
  SIM_ASSERT(index >= 0 && index < kBucketCount);
  if (index < kSubBuckets) return 1;
  return sim::Duration{1} << (index / kSubBuckets - 1);
}

void LatencyHistogram::add(sim::Duration latency) {
  buckets_[static_cast<std::size_t>(bucket_index(latency))]++;
  summary_.add_duration(latency);
}

std::uint64_t LatencyHistogram::count_below(sim::Duration threshold) const {
  if (threshold == 0 || count() == 0) return 0;
  if (threshold > max()) return count();
  // Buckets wholly below the threshold count exactly; the bucket containing
  // the threshold is attributed proportionally. A threshold at a bucket's
  // lower bound therefore counts exactly the buckets before it — bucket
  // resolution (~3%) only blurs thresholds strictly inside a bucket, which
  // at paper-style round thresholds (0.1 ms, 1 ms, ...) is negligible.
  const int b = bucket_index(threshold);
  std::uint64_t n = 0;
  for (int i = 0; i < b; ++i) n += buckets_[static_cast<std::size_t>(i)];
  const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(b)];
  const sim::Duration lo = bucket_lower_bound(b);
  if (in_bucket != 0 && threshold > lo) {
    // min(1, ...): with the threshold inside the (clamped) last bucket it
    // can exceed the bucket's nominal upper bound.
    const double frac =
        std::min(1.0, static_cast<double>(threshold - lo) /
                          static_cast<double>(bucket_width(b)));
    n += static_cast<std::uint64_t>(frac * static_cast<double>(in_bucket) + 0.5);
  }
  return n;
}

double LatencyHistogram::fraction_below(sim::Duration threshold) const {
  if (count() == 0) return 0.0;
  return static_cast<double>(count_below(threshold)) / static_cast<double>(count());
}

sim::Duration LatencyHistogram::percentile(double p) const {
  SIM_ASSERT(count() > 0);
  if (p <= 0.0) return min();
  if (p >= 1.0) return max();
  // 1-based rank of the percentile sample: the smallest k with
  // k/count >= p, i.e. ceil(p * count). (Rounding with +0.5 returned rank
  // 0 for small p — bucket 0 regardless of the data — and fell one sample
  // short whenever frac(p * count) was below 0.5.)
  const auto target = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(p * static_cast<double>(count()))),
      1, count());
  std::uint64_t cum = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum >= target) {
      const sim::Duration hi =
          i + 1 < kBucketCount ? bucket_lower_bound(i + 1) - 1 : max();
      return hi < max() ? hi : max();
    }
  }
  return max();
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    const sim::Duration hi =
        i + 1 < kBucketCount ? bucket_lower_bound(i + 1) : ~sim::Duration{0};
    out.push_back(Bucket{bucket_lower_bound(i), hi, c});
  }
  return out;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  }
  summary_.merge(other.summary_);
}

void LatencyHistogram::clear() {
  buckets_.fill(0);
  summary_ = Summary{};
}

std::vector<std::pair<int, std::uint64_t>> LatencyHistogram::bucket_counts()
    const {
  std::vector<std::pair<int, std::uint64_t>> out;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(i)];
    if (c != 0) out.emplace_back(i, c);
  }
  return out;
}

LatencyHistogram LatencyHistogram::restore(
    const std::vector<std::pair<int, std::uint64_t>>& buckets,
    const Summary& summary) {
  LatencyHistogram h;
  for (const auto& [index, c] : buckets) {
    SIM_ASSERT(index >= 0 && index < kBucketCount);
    h.buckets_[static_cast<std::size_t>(index)] = c;
  }
  h.summary_ = summary;
  return h;
}

}  // namespace metrics

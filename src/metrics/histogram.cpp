#include "metrics/histogram.h"

#include <bit>

#include "sim/assert.h"

namespace metrics {

int LatencyHistogram::bucket_index(sim::Duration v) {
  if (v < kSubBuckets) return static_cast<int>(v);
  const int msb = static_cast<int>(std::bit_width(v)) - 1;  // >= 5 here
  const int shift = msb - 5;
  const auto sub = static_cast<int>((v >> shift) - kSubBuckets);
  const int octave = msb - 4;
  const int index = octave * kSubBuckets + sub;
  SIM_ASSERT(index < kBucketCount);
  return index;
}

sim::Duration LatencyHistogram::bucket_lower_bound(int index) {
  SIM_ASSERT(index >= 0 && index < kBucketCount);
  if (index < kSubBuckets) return static_cast<sim::Duration>(index);
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return static_cast<sim::Duration>(kSubBuckets + sub) << (octave - 1);
}

void LatencyHistogram::add(sim::Duration latency) {
  buckets_[static_cast<std::size_t>(bucket_index(latency))]++;
  summary_.add_duration(latency);
}

std::uint64_t LatencyHistogram::count_below(sim::Duration threshold) const {
  if (threshold == 0) return 0;
  // All buckets wholly below the threshold, plus nothing partial: the
  // boundary bucket may contain samples on either side, so we count buckets
  // whose *upper* bound is <= threshold and then conservatively include the
  // boundary bucket's samples only if its lower bound is below threshold and
  // the threshold is >= its upper bound. For reporting at paper-style round
  // thresholds (0.1 ms, 1 ms, ...) bucket resolution (~3%) makes the
  // distinction negligible; we attribute the boundary bucket proportionally.
  const int limit = bucket_index(threshold - 1);
  std::uint64_t n = 0;
  for (int i = 0; i < limit; ++i) n += buckets_[static_cast<std::size_t>(i)];
  // Boundary bucket: include it fully if the threshold is at/above the next
  // bucket's lower bound (i.e. the whole bucket is below the threshold).
  const sim::Duration next_lo =
      limit + 1 < kBucketCount ? bucket_lower_bound(limit + 1) : ~sim::Duration{0};
  if (threshold >= next_lo) {
    n += buckets_[static_cast<std::size_t>(limit)];
  } else {
    // Proportional attribution within the boundary bucket.
    const sim::Duration lo = bucket_lower_bound(limit);
    const double width = static_cast<double>(next_lo - lo);
    const double frac = width <= 0 ? 1.0 : static_cast<double>(threshold - lo) / width;
    n += static_cast<std::uint64_t>(
        frac * static_cast<double>(buckets_[static_cast<std::size_t>(limit)]) + 0.5);
  }
  return n;
}

double LatencyHistogram::fraction_below(sim::Duration threshold) const {
  if (count() == 0) return 0.0;
  return static_cast<double>(count_below(threshold)) / static_cast<double>(count());
}

sim::Duration LatencyHistogram::percentile(double p) const {
  SIM_ASSERT(count() > 0);
  if (p <= 0.0) return min();
  if (p >= 1.0) return max();
  const auto target = static_cast<std::uint64_t>(p * static_cast<double>(count()) + 0.5);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum >= target) {
      const sim::Duration hi =
          i + 1 < kBucketCount ? bucket_lower_bound(i + 1) - 1 : max();
      return hi < max() ? hi : max();
    }
  }
  return max();
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    const sim::Duration hi =
        i + 1 < kBucketCount ? bucket_lower_bound(i + 1) : ~sim::Duration{0};
    out.push_back(Bucket{bucket_lower_bound(i), hi, c});
  }
  return out;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  }
  summary_.merge(other.summary_);
}

void LatencyHistogram::clear() {
  buckets_.fill(0);
  summary_ = Summary{};
}

}  // namespace metrics

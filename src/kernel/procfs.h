// /proc filesystem emulation (control plane).
//
// The paper's administrative interface is procfs: `/proc/irq/N/smp_affinity`
// for interrupt affinity (stock Linux) and the new `/proc/shield/{procs,
// irqs,ltmr}` files for shielding. Files are registered with read/write
// handlers; reads and writes carry the same hex-mask text format as the
// real files.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace kernel {

class ProcFs {
 public:
  using ReadFn = std::function<std::string()>;
  using WriteFn = std::function<bool(std::string_view)>;

  /// Register a file. `write` may be null for read-only files.
  void register_file(std::string path, ReadFn read, WriteFn write = nullptr);

  [[nodiscard]] bool exists(const std::string& path) const;

  /// Read a file's contents; nullopt if the path does not exist.
  [[nodiscard]] std::optional<std::string> read(const std::string& path) const;

  /// Write to a file. Returns false if the path does not exist, is
  /// read-only, or the handler rejected the data (EINVAL).
  bool write(const std::string& path, std::string_view data);

  /// All registered paths under a prefix, sorted.
  [[nodiscard]] std::vector<std::string> list(const std::string& prefix) const;

  /// Unregister a file (process exit removes /proc/<pid>). Returns false
  /// if the path was not registered.
  bool remove(const std::string& path);

 private:
  struct Node {
    ReadFn read;
    WriteFn write;
  };
  std::map<std::string, Node> files_;
};

}  // namespace kernel

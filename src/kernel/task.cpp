#include "kernel/task.h"

namespace kernel {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kOther: return "SCHED_OTHER";
    case SchedPolicy::kFifo: return "SCHED_FIFO";
    case SchedPolicy::kRr: return "SCHED_RR";
  }
  return "?";
}

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::kNew: return "new";
    case TaskState::kReady: return "ready";
    case TaskState::kRunning: return "running";
    case TaskState::kBlocked: return "blocked";
    case TaskState::kExited: return "exited";
  }
  return "?";
}

}  // namespace kernel

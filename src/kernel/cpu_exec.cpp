// CPU execution machinery: segments, frames, interrupts, preemption,
// context switches, and the kernel-program interpreter.
//
// See the invariants documented in kernel.h. The central idea: a CPU always
// executes the top of its stack (context switch > interrupt frames > the
// current task's frames) as a timed "segment". Interrupts pause the
// segment, push frames, and the partially-consumed work resumes later —
// that resumed stretch *is* the jitter the paper measures.
#include <algorithm>
#include <variant>

#include "kernel/kernel.h"
#include "sim/assert.h"

namespace kernel {

using namespace sim::literals;

namespace {
/// Re-sample dilation at least this often during long stretches of work so
/// hyperthread/bus conditions are tracked.
constexpr sim::Duration kSegmentChunk = 500_us;
/// Effective memory intensity while spinning on a lock (cacheline polling).
constexpr double kSpinTraffic = 0.05;
}  // namespace

// ---- segments ---------------------------------------------------------------------

void Kernel::start_segment(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(!cs.seg_active && !cs.switching);

  sim::Duration remaining = 0;
  double mem = 0.0;
  if (!cs.irq_frames.empty()) {
    const IrqFrame& f = cs.irq_frames.back();
    remaining = f.remaining;
    mem = f.memory_intensity;
  } else {
    SIM_ASSERT(cs.current != nullptr && !cs.current->frames.empty());
    Task& t = *cs.current;
    TaskFrame& f = t.frames.back();
    if (f.kind == TaskFrame::Kind::kSpinWait) {
      // Busy-spinning: no timed segment; resolution comes from the lock
      // release. The CPU still looks busy to the HT sibling.
      mem_.set_traffic(cpu, kSpinTraffic);
      return;
    }
    if (f.kind == TaskFrame::Kind::kUserCompute && !t.mlocked) {
      // Unlocked memory: user code takes the occasional minor fault —
      // "preventing the jitter that would be caused when a program first
      // accesses a page not resident in memory" (§5) is exactly what
      // mlockall buys. Sample per upcoming chunk.
      const sim::Duration span = std::min(f.remaining, kSegmentChunk);
      const double p = static_cast<double>(span) /
                       static_cast<double>(cfg_.fault_mean_interval);
      if (rng_.chance(p)) {
        t.minor_faults++;
        t.frames.push_back(TaskFrame{
            TaskFrame::Kind::kFault,
            rng_.uniform_duration(cfg_.fault_cost_min, cfg_.fault_cost_max),
            0.5, LockId::kCount, false});
        start_segment(cpu);
        return;
      }
    }
    remaining = f.remaining;
    mem = f.memory_intensity;
  }
  SIM_ASSERT(remaining > 0);

  const hw::CpuId sibling = topo_.sibling_of(cpu);
  const bool sibling_busy = sibling >= 0 && cpu_busy(sibling);
  const double dilation = mem_.sample_dilation(cpu, sibling_busy, mem);
  mem_.set_traffic(cpu, mem);

  const sim::Duration span = std::min(remaining, kSegmentChunk);
  const auto wall = std::max<sim::Duration>(
      1, static_cast<sim::Duration>(static_cast<double>(span) * dilation));

  cs.seg_start = engine_.now();
  cs.seg_dilation = dilation;
  cs.seg_span = span;
  cs.seg_active = true;
  cs.seg_end = engine_.schedule(wall, [this, cpu] { on_segment_end(cpu); });
}

void Kernel::pause_segment(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  if (!cs.seg_active) return;
  engine_.cancel(cs.seg_end);
  cs.seg_active = false;
  const sim::Duration elapsed = engine_.now() - cs.seg_start;
  auto consumed = static_cast<sim::Duration>(static_cast<double>(elapsed) /
                                             cs.seg_dilation);
  consumed = std::min(consumed, cs.seg_span);
  account_segment(cpu, elapsed);
  if (!cs.irq_frames.empty()) {
    IrqFrame& f = cs.irq_frames.back();
    f.remaining -= std::min(f.remaining, consumed);
  } else {
    SIM_ASSERT(cs.current != nullptr && !cs.current->frames.empty());
    TaskFrame& f = cs.current->frames.back();
    SIM_ASSERT(f.kind != TaskFrame::Kind::kSpinWait);
    f.remaining -= std::min(f.remaining, consumed);
    // A paused work frame must not vanish: resumption needs a frame, so
    // keep at least a sliver if the timing rounded to exactly zero.
    if (f.remaining == 0) f.remaining = 1;
  }
}

void Kernel::account_segment(hw::CpuId cpu, sim::Duration elapsed) {
  CpuState& cs = cpu_mut(cpu);
  if (!cs.irq_frames.empty()) {
    if (cs.irq_frames.back().kind == IrqFrame::Kind::kHardirq) {
      cs.irq_time += elapsed;
    } else {
      cs.softirq_time += elapsed;
    }
    return;
  }
  if (cs.current == nullptr || cs.current->frames.empty()) return;
  Task& t = *cs.current;
  // Fault handling and kernel work are system time; user compute is user
  // time (this is the precise accounting; the tick-sampled counters live
  // in the local-timer path).
  if (t.frames.back().kind == TaskFrame::Kind::kUserCompute) {
    t.utime += elapsed;
  } else {
    t.stime += elapsed;
  }
}

void Kernel::on_segment_end(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.seg_active);
  cs.seg_active = false;
  account_segment(cpu, engine_.now() - cs.seg_start);

  if (cs.switching) {
    finish_switch(cpu);
    return;
  }

  if (!cs.irq_frames.empty()) {
    IrqFrame& f = cs.irq_frames.back();
    f.remaining -= std::min(f.remaining, cs.seg_span);
    if (f.remaining == 0) {
      finish_irq_frame(cpu);
    } else {
      start_segment(cpu);
    }
    return;
  }

  SIM_ASSERT(cs.current != nullptr && !cs.current->frames.empty());
  Task& t = *cs.current;
  TaskFrame& f = t.frames.back();
  SIM_ASSERT(f.kind != TaskFrame::Kind::kSpinWait);
  f.remaining -= std::min(f.remaining, cs.seg_span);
  if (f.remaining > 0) {
    start_segment(cpu);
    return;
  }
  const TaskFrame::Kind kind = f.kind;
  t.frames.pop_back();
  if (kind == TaskFrame::Kind::kUserCompute) {
    next_action(cpu);
  } else if (kind == TaskFrame::Kind::kFault) {
    // Fault handled: fall back into the interrupted user compute.
    resume_task(cpu);
  } else {
    // Kernel work op complete: advance and continue the program.
    t.pc++;
    run_program(cpu);
  }
}

// ---- context switches --------------------------------------------------------------

void Kernel::begin_switch(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(!cs.switching && cs.current == nullptr && cs.irq_frames.empty());
  SIM_ASSERT(!cs.seg_active);
  cs.switching = true;
  mask_irqs(cpu);  // schedule() runs with interrupts disabled
  // Switch cost varies with cache state: mostly near nominal, occasionally
  // a cache-cold switch that must refill the working set.
  sim::Duration switch_cost =
      rng_.uniform_duration(cfg_.ctx_switch_cost * 3 / 4,
                            cfg_.ctx_switch_cost * 5 / 4);
  if (rng_.chance(0.03)) switch_cost *= 3;
  const sim::Duration cost = sched_->pick_cost(cpu) + switch_cost;
  cs.seg_start = engine_.now();
  cs.seg_dilation = 1.0;
  cs.seg_span = cost;
  cs.seg_active = true;
  cs.seg_end = engine_.schedule(cost, [this, cpu] { on_segment_end(cpu); });
}

void Kernel::finish_switch(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.switching);
  cs.switching = false;
  cs.switches++;
  cs.need_resched = false;

  Task* next = sched_->pick_next(cpu);
  if (next == nullptr) {
    cs.current = nullptr;
    mem_.set_traffic(cpu, 0.0);
    unmask_irqs(cpu);
    // Deliver anything that arrived during the switch; otherwise idle.
    flush_one_pending(cpu);
    return;
  }

  SIM_ASSERT(next->state == TaskState::kReady);
  SIM_ASSERT(next->effective_affinity.test(cpu));
  engine_.flight_recorder().record(engine_.now(),
                                   telemetry::EventKind::kCtxSwitch, cpu,
                                   next->pid, next->is_rt() ? 1 : 0);
  next->state = TaskState::kRunning;
  if (next->cpu != cpu && next->cpu >= 0) next->migrations++;
  next->cpu = cpu;
  next->ctx_switches++;
  sched_->refresh_timeslice(*next);
  cs.current = next;
  if (next->freshly_woken) {
    next->freshly_woken = false;
    auditor_.task_scheduled_in(next->last_wake, engine_.now(), next->is_rt());
  }
  if (next->chain.valid()) {
    // Attribute the gap since the wakeup: waiting on the runqueue until the
    // switch began (cs.seg_start), then the switch cost itself.
    sim::ChainTracer& tracer = engine_.chain_tracer();
    tracer.mark(next->chain, sim::SegmentKind::kRunqueueWait, cpu,
                cs.seg_start);
    tracer.mark(next->chain, sim::SegmentKind::kContextSwitch, cpu,
                engine_.now());
  }
  trace(sim::TraceCategory::kSched, cpu, "switch to " + next->name);

  unmask_irqs(cpu);
  if (flush_one_pending(cpu)) return;  // irq exit path resumes the task
  resume_task(cpu);
}

void Kernel::resume_task(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.current != nullptr && cs.irq_frames.empty() && !cs.switching);
  Task& t = *cs.current;
  if (!t.frames.empty()) {
    // Spin-wait frames resolve via lock release, not a segment.
    if (t.frames.back().kind == TaskFrame::Kind::kSpinWait) {
      mem_.set_traffic(cpu, kSpinTraffic);
      return;
    }
    start_segment(cpu);
    return;
  }
  if (t.in_syscall) {
    run_program(cpu);
    return;
  }
  next_action(cpu);
}

void Kernel::dispatch(hw::CpuId cpu) {
  // Entry point for "this idle CPU should schedule now".
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.current == nullptr && !cs.switching && cs.irq_frames.empty());
  begin_switch(cpu);
}

void Kernel::preempt_current(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.current != nullptr && !cs.switching && cs.irq_frames.empty());
  pause_segment(cpu);
  Task* t = cs.current;
  cs.current = nullptr;
  t->state = TaskState::kReady;
  trace(sim::TraceCategory::kSched, cpu, "preempt " + t->name);
  // Requeue; placement may move it to another allowed CPU.
  const hw::CpuId target = sched_->select_cpu(
      *t, t->effective_affinity, [this](hw::CpuId c) { return cpu_idle(c); });
  sched_->enqueue(*t, target);
  if (target != cpu) check_preempt(target, *t);
  begin_switch(cpu);
}

// ---- wake-time preemption ---------------------------------------------------------------

void Kernel::check_preempt(hw::CpuId cpu, Task& woken) {
  CpuState& cs = cpu_mut(cpu);
  if (!cpu_busy(cpu)) {
    dispatch(cpu);
    return;
  }
  if (cs.switching) {
    cs.need_resched = true;  // finish_switch re-picks and will see it
    return;
  }
  if (!cs.irq_frames.empty()) {
    if (cs.current == nullptr || sched_->preempts(woken, *cs.current)) {
      cs.need_resched = true;  // handled at interrupt exit
    }
    return;
  }
  SIM_ASSERT(cs.current != nullptr);
  Task& cur = *cs.current;
  if (!sched_->preempts(woken, cur)) return;
  if (cur.in_user_mode() || kernel_preemptible(cur)) {
    preempt_current(cpu);
  } else {
    cs.need_resched = true;  // syscall exit / preempt_enable will handle it
  }
}

bool Kernel::kernel_preemptible(const Task& t) const {
  if (!cfg_.preempt_kernel) return false;
  if (t.preempt_count > 0) return false;
  if (!t.frames.empty() && t.frames.back().kind == TaskFrame::Kind::kSpinWait) {
    return false;  // spinners hold the CPU until granted
  }
  return true;
}

void Kernel::preempt_enable_check(hw::CpuId cpu) {
  if (!cfg_.preempt_kernel) return;
  CpuState& cs = cpu_mut(cpu);
  if (!cs.need_resched || cs.current == nullptr) return;
  if (!cs.irq_frames.empty() || cs.switching) return;
  Task& t = *cs.current;
  if (t.in_user_mode() || kernel_preemptible(t)) preempt_current(cpu);
}

// ---- interrupts ------------------------------------------------------------------------

void Kernel::deliver_vector(hw::CpuId cpu, int vector) {
  CpuState& cs = cpu_mut(cpu);
  if (!cs.irqs_enabled()) {
    // One pending bit per vector, like a real local APIC.
    if (std::find(cs.pending_vectors.begin(), cs.pending_vectors.end(),
                  vector) == cs.pending_vectors.end()) {
      cs.pending_vectors.push_back(vector);
    }
    return;
  }
  begin_hardirq(cpu, vector);
}

void Kernel::begin_hardirq(hw::CpuId cpu, int vector) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.irqs_enabled() && !cs.switching);
  pause_segment(cpu);
  cs.hardirqs++;
  // Shared dispatch bookkeeping (flight event, chain pickup with its
  // irq-raise segment covering wire delay plus any time the line sat
  // pending, auditor dispatch-latency sample) lives in the pipeline so both
  // mechanisms and both consumers read the same raise timestamp.
  const sim::ChainId chain = pipeline_->note_dispatch(cpu, vector);

  sim::Duration cost = cfg_.irq_entry_cost + cfg_.irq_exit_cost;
  if (vector >= 0) {
    const IrqHandler& h = irq_handlers_[static_cast<std::size_t>(vector)];
    SIM_ASSERT_MSG(static_cast<bool>(h.effects) || !h.name.empty(),
                   "interrupt with no registered handler");
    cost += rng_.uniform_duration(h.cost_min, h.cost_max);
  } else if (vector == kVectorLocalTimer) {
    cost += rng_.uniform_duration(cfg_.tick_cost_min, cfg_.tick_cost_max);
  } else if (vector == kVectorSmi) {
    // System-management mode: the CPU simply disappears for the budgeted
    // stall — no kernel entry/exit path is involved.
    cost = cs.smi_stall_budget > 0 ? cs.smi_stall_budget : 500_ns;
    cs.smi_stall_budget = 0;
    cs.smi_stalls++;
  } else if (vector == kVectorOobStage) {
    // The oob stage stole these cycles: like an SMI, no kernel entry/exit,
    // just time the in-band CPU does not get.
    cost = cs.oob_stall_budget > 0 ? cs.oob_stall_budget : 500_ns;
    cs.oob_stall_budget = 0;
    cs.oob_preemptions++;
  } else {
    cost += 500_ns;  // reschedule IPI: acknowledge and return
  }

  cs.irq_frames.push_back(IrqFrame{IrqFrame::Kind::kHardirq, vector, cost, 0.4});
  if (vector >= 0) cs.irq_frames.back().chain = chain;
  mask_irqs(cpu);
  start_segment(cpu);
}

void Kernel::finish_irq_frame(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(!cs.irq_frames.empty());
  const IrqFrame frame = cs.irq_frames.back();

  // Handler effects run at the tail of the handler, still in irq context.
  if (frame.kind == IrqFrame::Kind::kHardirq) {
    if (frame.vector >= 0) {
      const IrqHandler& h =
          irq_handlers_[static_cast<std::size_t>(frame.vector)];
      // Open the wakeup-attribution window: the first task these effects
      // make runnable inherits the frame's latency chain (make_runnable
      // consumes wake_chain_). A handler that wakes nobody abandons it.
      wake_chain_ = frame.chain;
      wake_chain_kind_ = sim::SegmentKind::kIrqHandler;
      wake_chain_cpu_ = cpu;
      if (h.effects) h.effects(*this, cpu);
      engine_.chain_tracer().abandon(wake_chain_);
      wake_chain_ = {};
    } else if (frame.vector == kVectorLocalTimer) {
      if (cs.current != nullptr) {
        Task& cur = *cs.current;
        // Tick-sampled CPU time accounting (§3: this is the functionality
        // lost when a CPU is shielded from the local timer).
        if (cur.in_user_mode()) {
          cur.utime_ticks++;
        } else {
          cur.stime_ticks++;
        }
        if (sched_->task_tick(cur, cpu)) cs.need_resched = true;
      }
      // Timer-wheel bottom half: small sampled amount of expiry work.
      cs.softirq.raise(SoftirqType::kTimer, rng_.uniform_duration(1_us, 15_us));
    }
    // Reschedule IPIs carry no payload: need_resched was set by the waker.
  }

  cs.irq_frames.pop_back();
  if (frame.kind == IrqFrame::Kind::kHardirq) unmask_irqs(cpu);

  if (!cs.irq_frames.empty()) {
    start_segment(cpu);  // resume the interrupted softirq (or nested frame)
    return;
  }
  if (flush_one_pending(cpu)) return;
  do_softirq(cpu);
  // do_softirq may have pushed a softirq frame, or a ksoftirqd wake may
  // have put this (idle) CPU straight into a context switch.
  if (!cs.irq_frames.empty() || cs.switching) return;
  irq_stack_empty(cpu);
}

bool Kernel::flush_one_pending(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  if (!cs.irqs_enabled() || cs.pending_vectors.empty()) return false;
  const int vector = cs.pending_vectors.front();
  cs.pending_vectors.erase(cs.pending_vectors.begin());
  begin_hardirq(cpu, vector);
  return true;
}

void Kernel::do_softirq(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.irq_frames.empty());
  if (!cs.softirq.any_pending()) return;

  const int max_restart = cfg_.softirq_daemon_offload ? 1 : cfg_.softirq_max_restart;
  if (cs.softirq_restarts >= max_restart) {
    // Too much bottom-half work for interrupt context: kick ksoftirqd. The
    // wake may dispatch on this very CPU, so the callers re-check state.
    if (cs.ksoftirqd_wq != kNoWaitQueue) wake_up_one(cs.ksoftirqd_wq);
    return;
  }
  cs.softirq_restarts++;
  const sim::Duration take = cs.softirq.take(cfg_.softirq_budget_in_irq);
  SIM_ASSERT(take > 0);
  // Softirqs run with interrupts enabled — this is what perforates spinlock
  // hold times (§6.2). Push the frame before any wakeups so check_preempt
  // sees this CPU as being in interrupt context.
  cs.irq_frames.push_back(
      IrqFrame{IrqFrame::Kind::kSoftirq, /*vector=*/-100, take, 0.45});
  if (cfg_.softirq_daemon_offload && cs.softirq.any_pending() &&
      cs.ksoftirqd_wq != kNoWaitQueue) {
    wake_up_one(cs.ksoftirqd_wq);
  }
  start_segment(cpu);
}

void Kernel::irq_stack_empty(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.irq_frames.empty());
  if (cs.switching) return;  // a wake during irq exit already rescheduled us
  cs.softirq_restarts = 0;

  if (cs.current == nullptr) {
    if (cs.need_resched) {
      begin_switch(cpu);
    } else {
      mem_.set_traffic(cpu, 0.0);
    }
    return;
  }
  Task& t = *cs.current;
  if (cs.need_resched && (t.in_user_mode() || kernel_preemptible(t))) {
    preempt_current(cpu);
    return;
  }
  resume_task(cpu);
}

void Kernel::local_timer_tick(hw::CpuId cpu) {
  deliver_vector(cpu, kVectorLocalTimer);
}

// ---- the kernel-program interpreter ----------------------------------------------------

void Kernel::run_program(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.current != nullptr);
  Task& t = *cs.current;
  SIM_ASSERT(t.in_syscall);
  SIM_ASSERT(t.frames.empty());

  if (t.needs_bkl_reacquire) {
    // Returning from a sleep that auto-dropped the BKL: reacquire first.
    if (!acquire_lock(cpu, t, LockId::kBkl, /*bkl_reacquire=*/true)) {
      return;  // spinning; the grant path resumes us
    }
    t.needs_bkl_reacquire = false;
  }

  while (true) {
    if (cs.current != &t || !cs.irq_frames.empty() || cs.switching) return;
    if (t.pc >= t.program.size()) {
      finish_syscall(cpu);
      return;
    }
    const KernelOp& op = t.program[t.pc];

    if (const auto* w = std::get_if<OpWork>(&op)) {
      if (w->duration == 0) {  // sampled-to-zero work: nothing to run
        t.pc++;
        continue;
      }
      t.frames.push_back(TaskFrame{TaskFrame::Kind::kKernelWork, w->duration,
                                   w->memory_intensity, LockId::kCount, false});
      start_segment(cpu);
      return;
    }
    if (const auto* l = std::get_if<OpLock>(&op)) {
      if (!acquire_lock(cpu, t, l->lock)) return;  // spinning
      t.pc++;
      continue;
    }
    if (const auto* u = std::get_if<OpUnlock>(&op)) {
      t.pc++;
      release_lock(cpu, t, u->lock);
      continue;
    }
    if (std::get_if<OpPreemptDisable>(&op) != nullptr) {
      preempt_count_inc(t);
      t.pc++;
      continue;
    }
    if (std::get_if<OpPreemptEnable>(&op) != nullptr) {
      SIM_ASSERT(t.preempt_count > 0);
      preempt_count_dec(t);
      t.pc++;
      preempt_enable_check(cpu);
      continue;
    }
    if (const auto* b = std::get_if<OpBlock>(&op)) {
      t.pc++;
      block_current(cpu, b->wq);
      return;
    }
    if (const auto* e = std::get_if<OpEffect>(&op)) {
      t.pc++;
      e->fn(*this, t);
      continue;
    }
    SIM_UNREACHABLE("unhandled kernel op");
  }
}

void Kernel::finish_syscall(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  Task& t = *cs.current;
  SIM_ASSERT(t.in_syscall);
  SIM_ASSERT_MSG(t.preempt_count == 0 && t.bkl_depth == 0 &&
                     t.irq_disable_depth == 0,
                 "syscall exited holding a lock");
  t.in_syscall = false;
  t.syscall_name.clear();
  t.program.clear();
  t.pc = 0;
  t.syscalls++;

  // The return-to-user reschedule point: every kernel honours need_resched
  // here, patched or not.
  if (cs.need_resched) {
    preempt_current(cpu);
    return;
  }
  next_action(cpu);
}

void Kernel::block_current(hw::CpuId cpu, WaitQueueId wq) {
  CpuState& cs = cpu_mut(cpu);
  Task& t = *cs.current;
  SIM_ASSERT(!cs.seg_active && cs.irq_frames.empty());

  // 2.4 semantics: sleeping drops the BKL, wakeup must retake it.
  if (t.bkl_depth > 0) {
    SIM_ASSERT(t.bkl_depth == 1);
    t.needs_bkl_reacquire = true;
    release_lock(cpu, t, LockId::kBkl);
    if (cs.current != &t) {
      // release_lock's preempt check moved us off already; we are on the
      // runqueue but must block instead.
      sched_->dequeue(t);
      t.state = TaskState::kBlocked;
      t.waiting_on = wq;
      wait_queue(wq).add(t);
      return;
    }
  }
  SIM_ASSERT_MSG(t.preempt_count == 0 && t.irq_disable_depth == 0,
                 "blocking inside a critical section");

  t.state = TaskState::kBlocked;
  t.waiting_on = wq;
  wait_queue(wq).add(t);
  cs.current = nullptr;
  begin_switch(cpu);
}

void Kernel::next_action(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.current != nullptr && cs.irq_frames.empty() && !cs.switching);
  Task& t = *cs.current;
  SIM_ASSERT(t.frames.empty() && !t.in_syscall);

  Action action = t.behavior->next_action(*this, t);

  if (cs.current != &t) return;  // behavior side effects preempted us

  if (auto* c = std::get_if<ComputeAction>(&action)) {
    SIM_ASSERT(c->work > 0);
    t.frames.push_back(TaskFrame{TaskFrame::Kind::kUserCompute, c->work,
                                 c->memory_intensity, LockId::kCount, false});
    start_segment(cpu);
    return;
  }
  if (auto* s = std::get_if<SyscallAction>(&action)) {
    t.in_syscall = true;
    t.syscall_name = std::move(s->name);
    // Wrap with the fixed entry/exit path costs.
    KernelProgram prog;
    prog.reserve(s->program.size() + 2);
    prog.push_back(OpWork{cfg_.syscall_entry_cost, 0.3});
    for (auto& op : s->program) prog.push_back(std::move(op));
    prog.push_back(OpWork{cfg_.syscall_exit_cost, 0.3});
    t.program = std::move(prog);
    t.pc = 0;
    trace(sim::TraceCategory::kSyscall, cpu, t.name + ": " + t.syscall_name);
    run_program(cpu);
    return;
  }
  if (auto* sl = std::get_if<SleepAction>(&action)) {
    const sim::Time wake_at = engine_.now() + round_sleep(sl->duration);
    sleep_current_until(cpu, wake_at);
    return;
  }
  SIM_ASSERT(std::get_if<ExitAction>(&action) != nullptr);
  t.state = TaskState::kExited;
  if (t.chain.valid()) {
    engine_.chain_tracer().abandon(t.chain);
    t.chain = {};
  }
  cs.current = nullptr;
  trace(sim::TraceCategory::kSched, cpu, t.name + " exited");
  begin_switch(cpu);
}

void Kernel::sleep_current_until(hw::CpuId cpu, sim::Time wake_at) {
  CpuState& cs = cpu_mut(cpu);
  Task& t = *cs.current;
  t.state = TaskState::kBlocked;
  t.waiting_on = kNoWaitQueue;
  cs.current = nullptr;
  Task* tp = &t;
  engine_.schedule_at(std::max(wake_at, engine_.now() + 1),
                      [this, tp] { wake_task(*tp); });
  begin_switch(cpu);
}

// ---- locks -----------------------------------------------------------------------------

bool Kernel::acquire_lock(hw::CpuId cpu, Task& t, LockId id, bool bkl_reacquire) {
  SpinLock& l = lock(id);

  // spin_lock_irqsave: interrupts go off before the spin.
  if (l.irq_safe()) {
    mask_irqs(cpu);
    t.irq_disable_depth++;
  }
  if (id == LockId::kBkl) {
    SIM_ASSERT_MSG(t.bkl_depth == 0, "model limits BKL depth to 1");
  }

  if (l.try_acquire(t)) {
    // Holding any spinlock — the BKL included — disables preemption (the
    // preemption patch treats lock_kernel like every other spinlock; the
    // BKL's special power is being *dropped across sleeps*, not being
    // preemptible).
    preempt_count_inc(t);
    if (id == LockId::kBkl) t.bkl_depth = 1;
    l.note_acquired(engine_.now());
    engine_.flight_recorder().record(engine_.now(),
                                     telemetry::EventKind::kLockAcquire, cpu,
                                     static_cast<std::int32_t>(id));
    return true;
  }

  // Contended: spin. The task burns its CPU until the holder releases.
  engine_.flight_recorder().record(
      engine_.now(), telemetry::EventKind::kLockContend, cpu,
      static_cast<std::int32_t>(id),
      l.holder() != nullptr ? l.holder()->cpu : -1);
  l.add_waiter(t);
  t.frames.push_back(TaskFrame{TaskFrame::Kind::kSpinWait, 0, kSpinTraffic, id,
                               bkl_reacquire});
  t.spin_started_at = engine_.now();
  // Work done since the last chain mark was normal kernel-exit progress;
  // everything from here until the grant is spin time.
  engine_.chain_tracer().mark(t.chain, sim::SegmentKind::kKernelExit, cpu,
                              engine_.now());
  mem_.set_traffic(cpu, kSpinTraffic);
  trace(sim::TraceCategory::kLock, cpu,
        t.name + " spins on " + to_string(id));
  return false;
}

void Kernel::release_lock(hw::CpuId cpu, Task& t, LockId id) {
  SpinLock& l = lock(id);
  SIM_ASSERT_MSG(l.holder() == &t, "unlock by non-holder");
  CpuState& cs = cpu_mut(cpu);

  SIM_ASSERT(t.preempt_count > 0);
  preempt_count_dec(t);
  const sim::Duration held = engine_.now() - l.acquired_at();
  if (held > 0) {
    lock_hold_counter_.add(cpu, static_cast<std::uint64_t>(held));
  }
  if (id == LockId::kBkl) {
    t.bkl_depth = 0;
    cs.bkl_hold_time += held;
  }
  l.note_released(engine_.now());

  Task* granted = l.release_and_grant();

  if (l.irq_safe()) {
    SIM_ASSERT(t.irq_disable_depth > 0);
    t.irq_disable_depth--;
    unmask_irqs(cpu);
  }

  if (granted != nullptr) {
    // The spinner becomes the holder and continues on its own CPU.
    SIM_ASSERT(granted->state == TaskState::kRunning);
    const hw::CpuId gcpu = granted->cpu;
    SIM_ASSERT(!granted->frames.empty() &&
               granted->frames.back().kind == TaskFrame::Kind::kSpinWait);
    const bool reacquire = granted->frames.back().bkl_reacquire;
    granted->frames.pop_back();
    preempt_count_inc(*granted);
    if (id == LockId::kBkl) granted->bkl_depth = 1;
    l.note_acquired(engine_.now());
    const sim::Duration waited = engine_.now() - granted->spin_started_at;
    cpu_mut(gcpu).spin_wait_time += waited;
    l.add_wait_time(waited);
    engine_.chain_tracer().mark(granted->chain, sim::SegmentKind::kSpinWait,
                                gcpu, engine_.now(), to_string(id));
    if (reacquire) {
      granted->needs_bkl_reacquire = false;
    } else {
      granted->pc++;  // the OpLock completed
    }
    CpuState& gcs = cpu_mut(gcpu);
    if (gcs.current == granted && gcs.irq_frames.empty() && !gcs.switching) {
      run_program(gcpu);
    }
    // Otherwise the spinner's CPU is mid-interrupt; irq_stack_empty will
    // resume the program.
  }

  // Releasing a lock is a preemption point (preempt_enable inside
  // spin_unlock) — but only when *we* are the running context.
  if (cs.current == &t && cs.irq_frames.empty() && !cs.switching) {
    preempt_enable_check(cpu);
    // Interrupts pended while the lock was irq-safe arrive now; the irq
    // exit path resumes the program afterwards.
    if (cs.current == &t && !cs.switching) flush_one_pending(cpu);
  }
}

// ---- audited state transitions ---------------------------------------------------

void Kernel::mask_irqs(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  if (cs.irq_off_depth++ == 0) auditor_.irqs_masked(cpu, engine_.now());
}

void Kernel::unmask_irqs(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  SIM_ASSERT(cs.irq_off_depth > 0);
  if (--cs.irq_off_depth == 0) auditor_.irqs_unmasked(cpu, engine_.now());
}

void Kernel::preempt_count_inc(Task& t) {
  // Non-preemptible stretches always belong to a running task that cannot
  // move CPUs until the count drops, so the interval is per-CPU pairable.
  if (t.preempt_count++ == 0 && t.cpu >= 0) {
    auditor_.preempt_disabled(t.cpu, engine_.now());
  }
}

void Kernel::preempt_count_dec(Task& t) {
  SIM_ASSERT(t.preempt_count > 0);
  if (--t.preempt_count == 0 && t.cpu >= 0) {
    auditor_.preempt_enabled(t.cpu, engine_.now());
  }
}

}  // namespace kernel

#include "kernel/scheduler.h"

namespace kernel {

bool Scheduler::preempts(const Task& cand, const Task& cur) const {
  if (cand.is_rt() || cur.is_rt()) {
    return cand.static_priority() > cur.static_priority();
  }
  // OTHER vs OTHER: rotation happens on timeslice expiry, not at wakeup.
  return false;
}

}  // namespace kernel

#include "kernel/kernel_ops.h"

namespace kernel {

const char* to_string(LockId id) {
  switch (id) {
    case LockId::kBkl: return "BKL";
    case LockId::kFs: return "fs_lock";
    case LockId::kDcache: return "dcache_lock";
    case LockId::kRtc: return "rtc_lock";
    case LockId::kSocket: return "socket_lock";
    case LockId::kPipe: return "pipe_lock";
    case LockId::kMm: return "mm_lock";
    case LockId::kIoRequest: return "io_request_lock";
    case LockId::kRcim: return "rcim_lock";
    case LockId::kCount: return "?";
  }
  return "?";
}

const char* to_string(SoftirqType t) {
  switch (t) {
    case SoftirqType::kTimer: return "timer";
    case SoftirqType::kNetRx: return "net_rx";
    case SoftirqType::kNetTx: return "net_tx";
    case SoftirqType::kBlock: return "block";
    case SoftirqType::kTasklet: return "tasklet";
    case SoftirqType::kCount: return "?";
  }
  return "?";
}

}  // namespace kernel

// Molnar's O(1) scheduler (as adopted in 2.5 and in RedHawk 1.4).
//
// Per-CPU runqueues with 140 priority levels and a find-first-set bitmap:
// pick is constant time and takes only the local queue's lock. SCHED_OTHER
// tasks rotate through active/expired arrays on timeslice expiry; RT tasks
// sit at their fixed priority in the active array. An idle CPU pulls from
// the busiest queue (simplified load balancing) so background load still
// spreads across the machine.
#pragma once

#include <array>
#include <deque>
#include <unordered_map>
#include <vector>

#include "kernel/scheduler.h"
#include "sim/rng.h"

namespace kernel {

class O1Scheduler final : public Scheduler {
 public:
  static constexpr int kPrioLevels = 140;  // 0..99 RT, 100..139 OTHER

  O1Scheduler(const config::KernelConfig& cfg, sim::Rng rng)
      : cfg_(cfg), rng_(rng) {}

  void init(int ncpus) override;
  void enqueue(Task& t, hw::CpuId cpu) override;
  void dequeue(Task& t) override;
  Task* pick_next(hw::CpuId cpu) override;
  sim::Duration pick_cost(hw::CpuId cpu) override;
  hw::CpuId select_cpu(const Task& t, hw::CpuMask allowed,
                       const std::function<bool(hw::CpuId)>& is_idle) override;
  bool task_tick(Task& t, hw::CpuId cpu) override;
  void refresh_timeslice(Task& t) override;
  std::size_t nr_runnable(hw::CpuId cpu) const override;
  const char* name() const override { return "O(1)"; }

  /// Kernel-internal priority slot: 0 is highest (RT 99), 139 lowest.
  [[nodiscard]] static int prio_slot(const Task& t);

 private:
  struct Runqueue {
    std::array<std::deque<Task*>, kPrioLevels> active;
    std::size_t nr = 0;
  };

  Task* steal_for(hw::CpuId cpu);

  const config::KernelConfig& cfg_;
  sim::Rng rng_;
  std::vector<Runqueue> queues_;
  std::unordered_map<const Task*, hw::CpuId> queue_of_;  // which CPU's queue holds it
};

}  // namespace kernel

#include "kernel/irq_pipeline.h"

#include <algorithm>
#include <variant>

#include "kernel/kernel.h"
#include "kernel/task.h"
#include "sim/assert.h"

namespace kernel {

const char* to_string(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kInBand: return "inband";
    case MechanismKind::kOob: return "oob";
  }
  return "?";
}

// ---- shared dispatch bookkeeping -------------------------------------------------

bool IrqPipeline::owns(const Task& /*t*/) const { return false; }

bool IrqPipeline::owns_irq(int /*irq*/) const { return false; }

void IrqPipeline::on_runnable(Task& /*t*/) {
  SIM_UNREACHABLE("on_runnable on a pipeline that owns no tasks");
}

sim::ChainId IrqPipeline::note_dispatch(hw::CpuId cpu, int vector) {
  sim::Engine& eng = k_.engine();
  eng.flight_recorder().record(eng.now(), telemetry::EventKind::kIrqDispatch,
                               cpu, vector);
  if (vector < 0) return {};
  // One consumer per delivery: the raise timestamp and the chain leave the
  // controller together, so the auditor's dispatch sample and the chain's
  // irq-raise segment cover the identical interval (wire delay + any time
  // the line sat pending).
  const hw::InterruptController::PendingRaise pending =
      k_.interrupt_controller().take_pending(vector);
  if (pending.has_raise) {
    k_.auditor().irq_dispatched(cpu, eng.now() - pending.raised_at);
  }
  eng.chain_tracer().mark(pending.chain, sim::SegmentKind::kIrqRaise, cpu,
                          eng.now());
  return pending.chain;
}

// ---- in-band ---------------------------------------------------------------------

void InBandPipeline::device_irq(hw::CpuId cpu, hw::Irq irq) {
  k_.deliver_vector(cpu, irq);
}

void InBandPipeline::timer_tick(hw::CpuId cpu) { k_.local_timer_tick(cpu); }

// ---- out-of-band -----------------------------------------------------------------

OobPipeline::OobPipeline(Kernel& kernel) : IrqPipeline(kernel) {
  // Registered here, not in Kernel::register_telemetry: an in-band kernel
  // must export exactly the pre-refactor series set (byte-identity gate),
  // so the oob series exist only when the stage does.
  telemetry::Registry& reg = k_.engine().telemetry();
  reg.gauge("oob.dispatches", "interrupts taken by the oob stage", 1, "",
            [this](int) { return dispatches_; });
  reg.gauge("oob.switches", "oob-stage task switch-ins", 1, "",
            [this](int) { return switches_; });
  reg.gauge("oob.timer_fires", "oob hardware-timer fast-path expiries", 1, "",
            [this](int) { return timer_fires_; });
  reg.gauge("oob.stall_ns", "ns the stage stole from the in-band kernel", 1,
            "", [this](int) { return stall_ns_; });
  reg.gauge("kernel.oob_preemptions", "oob-stage stall frames taken",
            k_.ncpus(), "cpu",
            [this](int c) { return k_.cpu(c).oob_preemptions; });
}

bool OobPipeline::owns(const Task& t) const {
  for (const auto& c : contexts_) {
    if (c->task == &t) return true;
  }
  return false;
}

bool OobPipeline::owns_irq(int irq) const {
  return std::find(irqs_.begin(), irqs_.end(), irq) != irqs_.end();
}

OobPipeline::Context* OobPipeline::context_of(const Task* t) {
  for (auto& c : contexts_) {
    if (c->task == t) return c.get();
  }
  return nullptr;
}

void OobPipeline::adopt_task(Task& t) {
  SIM_ASSERT_MSG(context_of(&t) == nullptr, "task already on the oob stage");
  contexts_.push_back(std::make_unique<Context>());
  Context& c = *contexts_.back();
  c.task = &t;
  c.cpu = t.effective_affinity.empty() ? 0 : t.effective_affinity.first();
  if (t.state == TaskState::kNew) return;  // boot's make_runnable adopts it
  // Forked runs create probes post-boot, so the task is already sitting on
  // an in-band runqueue; pull it off (dequeue is a no-op guard against
  // double-removal) and switch it in on the stage instead.
  SIM_ASSERT_MSG(t.state == TaskState::kReady && t.on_runqueue,
                 "only new or queued-ready tasks can move to the oob stage");
  k_.scheduler().dequeue(t);
  on_runnable(t);
}

void OobPipeline::adopt_irq(int irq) {
  SIM_ASSERT(irq >= 0 && irq < hw::kMaxIrq);
  SIM_ASSERT_MSG(k_.irq_handler_registered(irq),
                 "adopting an IRQ line with no registered handler");
  if (!owns_irq(irq)) irqs_.push_back(irq);
}

void OobPipeline::charge_stall(hw::CpuId cpu, sim::Duration d) {
  if (d == 0) return;
  stall_ns_ += d;
  // Same budget-and-coalesce shape as inject_cpu_stall: the in-band CPU
  // loses the cycles the stage executed, taken as an unmaskable frame when
  // its interrupts are (re-)enabled.
  k_.cpu_mut(cpu).oob_stall_budget += d;
  k_.deliver_vector(cpu, kVectorOobStage);
}

// -- delivery ----------------------------------------------------------------------

void OobPipeline::device_irq(hw::CpuId cpu, hw::Irq irq) {
  if (!owns_irq(irq)) {
    k_.deliver_vector(cpu, irq);  // everything else stays in-band
    return;
  }
  // The stage takes the interrupt immediately: in-band masking, frames and
  // softirqs are invisible to it. Fixed dispatch cost, no RNG.
  const sim::ChainId chain = note_dispatch(cpu, irq);
  dispatches_++;
  const sim::Duration dispatch = k_.config().oob_dispatch_cost;
  charge_stall(cpu, dispatch);
  k_.engine().schedule(
      dispatch, [this, cpu, irq, chain] { finish_dispatch(cpu, irq, chain); });
}

void OobPipeline::finish_dispatch(hw::CpuId cpu, hw::Irq irq,
                                  sim::ChainId chain) {
  const IrqHandler& h = k_.irq_handlers_[static_cast<std::size_t>(irq)];
  // Wakeup-attribution window, oob-restricted: handler effects may also
  // poke in-band machinery (deferred softirq raises wake ksoftirqd), and
  // those helpers must not steal the stage's chain.
  k_.wake_chain_ = chain;
  k_.wake_chain_kind_ = sim::SegmentKind::kOobDispatch;
  k_.wake_chain_cpu_ = cpu;
  k_.wake_chain_oob_only_ = true;
  if (h.effects) h.effects(k_, cpu);
  k_.engine().chain_tracer().abandon(k_.wake_chain_);
  k_.wake_chain_ = {};
  k_.wake_chain_oob_only_ = false;
}

void OobPipeline::timer_tick(hw::CpuId cpu) {
  // The per-CPU local timer (jiffies, timeslices, CPU accounting) is
  // in-band kernel business either way.
  k_.local_timer_tick(cpu);
}

// -- the stage scheduler -----------------------------------------------------------

void OobPipeline::on_runnable(Task& t) {
  Context* c = context_of(&t);
  SIM_ASSERT(c != nullptr);
  const sim::Time now = k_.engine().now();
  t.state = TaskState::kReady;
  t.on_runqueue = false;
  t.last_wake = now;
  t.freshly_woken = true;
  k_.auditor().task_woken(now);
  k_.take_wake_chain(t);
  switches_++;
  const sim::Duration cost = k_.config().oob_switch_cost;
  charge_stall(c->cpu, cost);
  k_.engine().schedule(cost, [this, c] { switch_in(*c); });
}

void OobPipeline::switch_in(Context& c) {
  Task& t = *c.task;
  const sim::Time now = k_.engine().now();
  k_.engine().chain_tracer().mark(t.chain, sim::SegmentKind::kOobSwitch, c.cpu,
                                  now);
  t.state = TaskState::kRunning;
  t.cpu = c.cpu;
  t.ctx_switches++;
  if (t.freshly_woken) {
    t.freshly_woken = false;
    k_.auditor().task_scheduled_in(t.last_wake, now, t.is_rt());
  }
  advance(c);
}

void OobPipeline::begin_span(Context& c, sim::Duration d) {
  SIM_ASSERT(d > 0);
  c.span = d;
  charge_stall(c.cpu, d);
  k_.engine().schedule(d, [this, &c] { end_span(c); });
}

void OobPipeline::end_span(Context& c) {
  Task& t = *c.task;
  if (t.in_syscall) {
    t.stime += c.span;
    t.pc++;  // the completed OpWork
  } else {
    t.utime += c.span;
  }
  c.span = 0;
  advance(c);
}

void OobPipeline::advance(Context& c) {
  Task& t = *c.task;
  while (true) {
    SIM_ASSERT(t.state == TaskState::kRunning);
    if (t.in_syscall) {
      if (t.pc >= t.program.size()) {
        // Return to user space. The stage's syscall path is its own trap
        // gate: no in-band entry/exit work is charged.
        t.in_syscall = false;
        t.syscall_name.clear();
        t.program.clear();
        t.pc = 0;
        t.syscalls++;
        continue;
      }
      const KernelOp& op = t.program[t.pc];
      if (const auto* w = std::get_if<OpWork>(&op)) {
        if (w->duration <= 0) {
          t.pc++;
          continue;
        }
        begin_span(c, w->duration);
        return;
      }
      if (std::get_if<OpLock>(&op) != nullptr ||
          std::get_if<OpUnlock>(&op) != nullptr ||
          std::get_if<OpPreemptDisable>(&op) != nullptr ||
          std::get_if<OpPreemptEnable>(&op) != nullptr) {
        // Oob driver paths take no in-band spinlocks and need no preempt
        // control: the stage itself is the serialization domain, and
        // in-band contenders cannot spin it out anyway.
        t.pc++;
        continue;
      }
      if (const auto* b = std::get_if<OpBlock>(&op)) {
        t.pc++;
        maybe_capture_timer(c, b->wq);
        t.state = TaskState::kBlocked;
        t.waiting_on = b->wq;
        k_.wait_queue(b->wq).add(t);
        return;
      }
      const auto* e = std::get_if<OpEffect>(&op);
      SIM_ASSERT_MSG(e != nullptr, "unhandled kernel op on the oob stage");
      t.pc++;
      e->fn(k_, t);
      continue;
    }

    Action action = t.behavior->next_action(k_, t);
    if (const auto* cp = std::get_if<ComputeAction>(&action)) {
      if (cp->work <= 0) continue;
      begin_span(c, cp->work);
      return;
    }
    if (auto* s = std::get_if<SyscallAction>(&action)) {
      t.in_syscall = true;
      t.syscall_name = std::move(s->name);
      t.program = std::move(s->program);
      t.pc = 0;
      continue;
    }
    if (const auto* sl = std::get_if<SleepAction>(&action)) {
      // Exact wakeup: the stage's timer hardware is not jiffy-quantized.
      t.state = TaskState::kBlocked;
      t.waiting_on = kNoWaitQueue;
      Task* tp = &t;
      const sim::Time now = k_.engine().now();
      k_.engine().schedule_at(std::max(now + sl->duration, now + 1),
                              [this, tp] { k_.wake_task(*tp); });
      return;
    }
    SIM_ASSERT(std::get_if<ExitAction>(&action) != nullptr);
    k_.engine().chain_tracer().abandon(t.chain);
    t.chain = {};
    t.state = TaskState::kExited;
    return;
  }
}

// -- hardware-timer fast path ------------------------------------------------------

void OobPipeline::maybe_capture_timer(Context& c, WaitQueueId wq) {
  for (std::size_t i = 0; i < k_.timers_.size(); ++i) {
    Kernel::KernelTimer& kt = k_.timers_[i];
    const int id = static_cast<int>(i);
    if (!kt.armed || kt.wq != wq) continue;
    if (std::find(captured_timers_.begin(), captured_timers_.end(), id) !=
        captured_timers_.end()) {
      continue;
    }
    captured_timers_.push_back(id);
    // Move the timer off the in-band wheel: cancel the pending (possibly
    // jiffy-quantized) expiry and run exact periods from here. armed stays
    // true so cancel_timer / timer_expirations keep working.
    k_.engine().cancel(kt.pending);
    const sim::Time at =
        std::max(k_.engine().now() + kt.period, k_.engine().now() + 1);
    const hw::CpuId cpu = c.cpu;
    k_.engine().schedule_at(at, [this, id, cpu] { oob_timer_fire(id, cpu); });
  }
}

void OobPipeline::oob_timer_fire(int timer_id, hw::CpuId cpu) {
  Kernel::KernelTimer& kt = k_.timers_[static_cast<std::size_t>(timer_id)];
  if (!kt.armed) return;
  const sim::Time now = k_.engine().now();
  kt.expirations++;
  kt.last_expiry = now;
  timer_fires_++;
  // Expiry processing runs on the stage: fixed dispatch cost, then the
  // wakeup. No kTimer softirq — the in-band bottom half has no part here.
  const sim::Duration dispatch = k_.config().oob_dispatch_cost;
  charge_stall(cpu, dispatch);
  sim::ChainTracer& tracer = k_.engine().chain_tracer();
  sim::ChainId chain{};
  if (tracer.enabled()) chain = tracer.open("oob-timer", now);
  k_.engine().schedule(dispatch, [this, timer_id, cpu, chain] {
    Kernel::KernelTimer& t = k_.timers_[static_cast<std::size_t>(timer_id)];
    const WaitQueueId wq = t.wq;
    if (!t.armed) {
      k_.engine().chain_tracer().abandon(chain);
      return;
    }
    k_.wake_chain_ = chain;
    k_.wake_chain_kind_ = sim::SegmentKind::kTimerExpiry;
    k_.wake_chain_cpu_ = cpu;
    k_.wake_chain_oob_only_ = true;
    k_.wake_up_all(wq);
    k_.engine().chain_tracer().abandon(k_.wake_chain_);
    k_.wake_chain_ = {};
    k_.wake_chain_oob_only_ = false;
  });
  const sim::Time at = std::max(now + kt.period, now + 1);
  k_.engine().schedule_at(at,
                          [this, timer_id, cpu] { oob_timer_fire(timer_id, cpu); });
}

}  // namespace kernel

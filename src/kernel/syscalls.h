// Generic syscall program builders.
//
// Workloads call these to synthesise kernel paths with the right *shape*:
// which locks they take, how long the critical sections are (sampled from
// the kernel's distribution), how much non-preemptible body work runs, and
// which devices they touch. The figure-level behaviour of the whole model —
// 92 ms worst case on vanilla, sub-millisecond on RedHawk — emerges from
// these shapes interacting with the preemption rules.
#pragma once

#include <functional>

#include "kernel/kernel.h"
#include "kernel/kernel_ops.h"

namespace kernel::sys {

/// A filesystem metadata/data operation (open/stat/cat-style): dcache and
/// fs-lock sections around a sampled body. `body_typical` scales the
/// in-kernel work (the FS stress test uses large values; `ls` uses tiny).
KernelProgram fs_op(Kernel& k, sim::Duration body_typical);

/// A file read/write that goes to disk: fs sections, submit to the disk
/// device, block until the completion handler wakes `io_wq`.
/// `submit` runs in kernel context and must eventually cause a wake of
/// `io_wq` (the disk driver's completion does this).
KernelProgram fs_io(Kernel& k, sim::Duration body_typical,
                    std::function<void(Kernel&, Task&)> submit,
                    WaitQueueId io_wq);

/// Socket send/receive path: socket-lock sections + protocol work; the
/// `wire_effect` (e.g. NicDevice::tx) runs inside.
KernelProgram socket_op(Kernel& k, sim::Duration proto_work,
                        std::function<void(Kernel&, Task&)> wire_effect);

/// Blocking socket receive: socket sections then sleep on `rx_wq` until the
/// net-rx path delivers data.
KernelProgram socket_recv(Kernel& k, WaitQueueId rx_wq);

/// Pipe/FIFO transfer between processes (FIFOS_MMAP): pipe-lock sections +
/// copy work; optionally wakes the peer's queue.
KernelProgram pipe_op(Kernel& k, sim::Duration copy_work, WaitQueueId peer_wq);

/// mmap/munmap/page-table manipulation (FIFOS_MMAP, CRASHME): mm-lock
/// sections with a sampled body.
KernelProgram mm_op(Kernel& k, sim::Duration body_typical);

/// A fault/exception storm iteration (CRASHME): exception entry, mm
/// sections, signal delivery work. Tends to the long-body tail.
KernelProgram fault_storm(Kernel& k);

/// ioctl() through the generic ioctl layer. Takes the BKL unless the
/// kernel supports the per-driver no-BKL flag *and* the driver sets it
/// (§6.3). `body` is the driver's own program.
KernelProgram ioctl_op(Kernel& k, bool driver_multithreaded_flag,
                       KernelProgram body);

/// fork() + execve(): page-table copy under the mm lock, fd-table and
/// dcache work, then `spawn_child` runs (in kernel context) to create the
/// new task. The NFS-COMPILE workload churns processes through this.
KernelProgram fork_exec(Kernel& k,
                        std::function<void(Kernel&, Task&)> spawn_child);

/// wait4()-ish: reap zombies, then block on `child_exit_wq` until a child's
/// exit path wakes it.
KernelProgram wait_for_child(Kernel& k, WaitQueueId child_exit_wq);

}  // namespace kernel::sys

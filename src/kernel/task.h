// Task (process/thread) model.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "hw/cpu_mask.h"
#include "hw/types.h"
#include "kernel/kernel_ops.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace kernel {

class Kernel;

using Pid = int;

enum class SchedPolicy { kOther, kFifo, kRr };
enum class TaskState { kNew, kReady, kRunning, kBlocked, kExited };

const char* to_string(SchedPolicy p);
const char* to_string(TaskState s);

// ---- user-level actions ------------------------------------------------------

/// Burn CPU in user space (always preemptible).
struct ComputeAction {
  sim::Duration work;
  double memory_intensity = 0.2;
};

/// Enter the kernel and run `program`; `name` is for traces.
struct SyscallAction {
  std::string name;
  KernelProgram program;
};

/// nanosleep()-style sleep. Without the POSIX-timers patch the wakeup is
/// rounded up to the next local-timer tick.
struct SleepAction {
  sim::Duration duration;
};

/// Terminate the task.
struct ExitAction {};

using Action = std::variant<ComputeAction, SyscallAction, SleepAction, ExitAction>;

/// A task's user-level program: called each time the previous action
/// finishes to obtain the next one.
class Behavior {
 public:
  virtual ~Behavior() = default;
  virtual Action next_action(Kernel& kernel, Task& task) = 0;
};

// ---- execution frames ---------------------------------------------------------

/// One level of a task's (possibly paused) execution stack. The bottom frame
/// is user compute or kernel work; a SpinWait frame sits on top while the
/// task spins for a contended lock.
struct TaskFrame {
  enum class Kind {
    kUserCompute,
    kKernelWork,
    kSpinWait,
    kFault,  ///< page-fault handling interposed on user compute
  };
  Kind kind;
  sim::Duration remaining = 0;     ///< work left (compute/kernel work)
  double memory_intensity = 0.2;
  LockId lock = LockId::kCount;    ///< for kSpinWait
  /// kSpinWait only: this spin is the implicit BKL reacquisition after a
  /// sleep, not an OpLock — the program counter must not advance on grant.
  bool bkl_reacquire = false;
};

// ---- the task struct -----------------------------------------------------------

struct Task {
  Pid pid = 0;
  std::string name;

  SchedPolicy policy = SchedPolicy::kOther;
  int rt_priority = 0;  ///< 1..99 for FIFO/RR
  int nice = 0;         ///< -20..19 for OTHER

  /// Affinity the task asked for (sched_setaffinity) and the mask actually
  /// used after shield interaction (§3 semantics).
  hw::CpuMask user_affinity;
  hw::CpuMask effective_affinity;

  TaskState state = TaskState::kNew;
  hw::CpuId cpu = -1;       ///< CPU currently on (running) or last ran on
  bool mlocked = false;     ///< mlockall'd: no page-fault jitter

  std::unique_ptr<Behavior> behavior;

  /// Nominal memory intensity of this task's working set (informational;
  /// the per-action/per-op values are what the execution model samples).
  double nominal_memory_intensity = 0.2;

  // -- in-kernel execution state --
  bool in_syscall = false;
  std::string syscall_name;
  KernelProgram program;
  std::size_t pc = 0;
  std::vector<TaskFrame> frames;
  int preempt_count = 0;       ///< locks held + explicit disables
  int bkl_depth = 0;           ///< BKL recursion (dropped across sleeps)
  int irq_disable_depth = 0;   ///< irq-safe locks held by this task
  WaitQueueId waiting_on = kNoWaitQueue;
  bool needs_bkl_reacquire = false;  ///< woke up owing a BKL reacquisition

  // -- scheduling bookkeeping --
  sim::Duration timeslice_remaining = 0;
  bool on_runqueue = false;
  /// Set at wakeup, cleared at the first subsequent dispatch: marks that
  /// the next switch-in measures true wakeup→run scheduling latency (a
  /// preempted task being re-dispatched does not).
  bool freshly_woken = false;

  // -- accounting --
  std::uint64_t ctx_switches = 0;
  std::uint64_t migrations = 0;
  std::uint64_t syscalls = 0;
  sim::Duration utime = 0;   ///< user time (precise, from segment accounting)
  sim::Duration stime = 0;   ///< system time
  sim::Time last_wake = 0;   ///< when last made runnable
  sim::Time spin_started_at = 0;  ///< when the current spin-wait began

  /// Latency chain riding on this task: attached by the wakeup that made it
  /// runnable, closed (or superseded) when the task reaches its observation
  /// point. Invalid when chain tracing is off.
  sim::ChainId chain{};

  /// Static priority for preemption decisions: FIFO/RR beat OTHER; higher
  /// rt_priority beats lower; among OTHER, lower nice is higher.
  [[nodiscard]] int static_priority() const {
    if (policy == SchedPolicy::kOther) return 19 - nice;  // 0..39
    return 100 + rt_priority;                             // 101..199
  }

  [[nodiscard]] bool is_rt() const { return policy != SchedPolicy::kOther; }

  /// True when the task is executing pure user code (no syscall in flight
  /// and not inside a page-fault handler).
  [[nodiscard]] bool in_user_mode() const {
    if (in_syscall) return false;
    return frames.empty() || frames.back().kind == TaskFrame::Kind::kUserCompute;
  }

  // -- fault accounting --
  std::uint64_t minor_faults = 0;
  /// Tick-sampled CPU time (what `/proc/<pid>/stat` reports): counts local
  /// timer ticks that landed while this task ran. Shielding a CPU from the
  /// local timer freezes these — the §3 accounting trade-off.
  std::uint64_t utime_ticks = 0;
  std::uint64_t stime_ticks = 0;
};

}  // namespace kernel

// Human-readable system state reports (ps/vmstat-style), for examples,
// benches, and debugging.
#pragma once

#include <string>

#include "kernel/kernel.h"

namespace kernel {

/// Per-task table: pid, name, policy, priority, state, CPU, precise and
/// tick-sampled times, switches, migrations, syscalls, faults.
std::string format_task_table(const Kernel& k);

/// Per-CPU table: hardirqs, context switches, irq/softirq time, pending
/// bottom-half work, current task.
std::string format_cpu_table(const Kernel& k);

/// Lock contention table.
std::string format_lock_table(Kernel& k);

/// Everything above, concatenated.
std::string format_system_report(Kernel& k);

}  // namespace kernel

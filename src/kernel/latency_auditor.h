// Latency auditor: the simulator's equivalent of the preempt-off /
// irq-off latency tracers the low-latency patch effort was built around.
//
// It watches each CPU for the two holdoff intervals that bound worst-case
// response (§6's analysis):
//  * interrupts-off stretches (spin_lock_irqsave sections, hardirq
//    handlers, context switches), and
//  * non-preemptible stretches as seen by a waiting RT task — on a
//    preemptible kernel that is preempt_count > 0; on vanilla every
//    in-kernel interval counts.
//
// plus per-task scheduling latency (wakeup → first run). Benches use it to
// report "worst observed holdoff" per kernel configuration, the number the
// low-latency work optimised directly.
#pragma once

#include <vector>

#include "metrics/histogram.h"
#include "sim/time.h"

namespace kernel {

class LatencyAuditor {
 public:
  explicit LatencyAuditor(int ncpus);

  // ---- hooks called by the kernel core ---------------------------------------
  void irqs_masked(int cpu, sim::Time now);
  void irqs_unmasked(int cpu, sim::Time now);
  void preempt_disabled(int cpu, sim::Time now);
  void preempt_enabled(int cpu, sim::Time now);
  void task_woken(sim::Time now);  // reserved for rate stats
  void task_scheduled_in(sim::Time wake_time, sim::Time now, bool rt);
  /// Raise→dispatch latency of one delivered device interrupt (wire delay
  /// plus any time the line sat pending). Fed by IrqPipeline::note_dispatch
  /// from the InterruptController's raise timestamp — the same instant the
  /// ChainTracer's irq-raise segment starts, so the two agree exactly.
  void irq_dispatched(int cpu, sim::Duration latency);

  // ---- results ------------------------------------------------------------------
  [[nodiscard]] const metrics::LatencyHistogram& irq_off(int cpu) const;
  [[nodiscard]] const metrics::LatencyHistogram& preempt_off(int cpu) const;
  /// Per-CPU raise→dispatch latency of delivered device interrupts.
  /// Memory-only (not exported through any registry gauge or procfs view):
  /// exports would perturb the byte-identity gates on pre-refactor output.
  [[nodiscard]] const metrics::LatencyHistogram& irq_dispatch(int cpu) const;
  /// Wakeup→run latency over all CPUs, RT tasks only.
  [[nodiscard]] const metrics::LatencyHistogram& rt_sched_latency() const {
    return rt_sched_latency_;
  }
  [[nodiscard]] const metrics::LatencyHistogram& sched_latency() const {
    return sched_latency_;
  }

  /// Worst irq-off / preempt-off interval across all CPUs.
  [[nodiscard]] sim::Duration worst_irq_off() const;
  [[nodiscard]] sim::Duration worst_preempt_off() const;

  /// Clear every histogram. Holdoff intervals currently in flight keep
  /// their start stamps and complete into the fresh histograms.
  void reset();

 private:
  struct PerCpu {
    metrics::LatencyHistogram irq_off;
    metrics::LatencyHistogram preempt_off;
    metrics::LatencyHistogram dispatch;
    sim::Time irq_off_since = 0;
    sim::Time preempt_off_since = 0;
    bool irq_off_active = false;
    bool preempt_off_active = false;
  };
  std::vector<PerCpu> cpus_;
  metrics::LatencyHistogram rt_sched_latency_;
  metrics::LatencyHistogram sched_latency_;
};

}  // namespace kernel

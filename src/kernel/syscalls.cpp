#include "kernel/syscalls.h"

#include <utility>

namespace kernel::sys {

using namespace sim::literals;

namespace {

/// Split a sampled body into (preamble, sections..., tail) so critical
/// sections sit inside realistic non-critical work.
void add_body_with_section(ProgramBuilder& b, Kernel& k, LockId lock,
                           sim::Duration body) {
  const sim::Duration section = k.sample_section();
  const sim::Duration pre = body / 3;
  const sim::Duration post = body - pre;
  if (pre > 0) b.work(pre, 0.4);
  b.section(lock, section, 0.5);
  if (post > 0) b.work(post, 0.4);
}

}  // namespace

KernelProgram fs_op(Kernel& k, sim::Duration body_typical) {
  ProgramBuilder b;
  // In 2.4 a sizeable fraction of fs-path syscalls (open, llseek, ioctl,
  // fcntl...) grabbed the Big Kernel Lock — the reason §6.3 calls the BKL
  // "one of the most highly contended spin locks in Linux". The hold is a
  // critical-section-length stretch, so the low-latency patches (and
  // RedHawk's "BKL hold time reduction", §1) shorten it along with every
  // other section.
  if (k.rng().chance(0.30)) {
    b.section(LockId::kBkl, k.sample_section(), 0.45);
  }
  b.section(LockId::kDcache, k.sample_section(), 0.5);
  add_body_with_section(b, k, LockId::kFs, k.sample_syscall_body(body_typical));
  return std::move(b).build();
}

KernelProgram fs_io(Kernel& k, sim::Duration body_typical,
                    std::function<void(Kernel&, Task&)> submit,
                    WaitQueueId io_wq) {
  ProgramBuilder b;
  b.section(LockId::kDcache, k.sample_section(), 0.5);
  add_body_with_section(b, k, LockId::kFs, k.sample_syscall_body(body_typical));
  // Queue the request under the (irq-safe) block-layer lock, then sleep
  // until the completion interrupt wakes us.
  b.lock(LockId::kIoRequest).work(2_us, 0.4).effect(std::move(submit))
      .unlock(LockId::kIoRequest);
  b.block(io_wq);
  b.work(3_us, 0.5);  // completion bookkeeping back in task context
  return std::move(b).build();
}

KernelProgram socket_op(Kernel& k, sim::Duration proto_work,
                        std::function<void(Kernel&, Task&)> wire_effect) {
  ProgramBuilder b;
  add_body_with_section(b, k, LockId::kSocket,
                        k.sample_syscall_body(proto_work));
  if (wire_effect) b.effect(std::move(wire_effect));
  return std::move(b).build();
}

KernelProgram socket_recv(Kernel& k, WaitQueueId rx_wq) {
  ProgramBuilder b;
  b.section(LockId::kSocket, k.sample_section(), 0.5);
  b.block(rx_wq);
  b.section(LockId::kSocket, k.sample_section(), 0.5);
  b.work(5_us, 0.6);  // copy to user
  return std::move(b).build();
}

KernelProgram pipe_op(Kernel& k, sim::Duration copy_work, WaitQueueId peer_wq) {
  ProgramBuilder b;
  b.lock(LockId::kPipe).work(k.sample_section(), 0.5);
  if (copy_work > 0) b.work(copy_work, 0.7);
  b.unlock(LockId::kPipe);
  if (peer_wq != kNoWaitQueue) {
    b.effect([peer_wq](Kernel& kk, Task&) { kk.wake_up_one(peer_wq); });
  }
  return std::move(b).build();
}

KernelProgram mm_op(Kernel& k, sim::Duration body_typical) {
  ProgramBuilder b;
  add_body_with_section(b, k, LockId::kMm, k.sample_syscall_body(body_typical));
  return std::move(b).build();
}

KernelProgram fault_storm(Kernel& k) {
  // CRASHME: jump into random bytes → fault after fault; exception entry,
  // mm sections, signal setup. Bodies come from the heavy tail.
  ProgramBuilder b;
  b.work(1_us, 0.5);  // exception entry
  add_body_with_section(b, k, LockId::kMm, k.sample_syscall_body(120_us));
  b.work(2_us, 0.4);  // signal frame setup
  return std::move(b).build();
}

KernelProgram fork_exec(Kernel& k,
                        std::function<void(Kernel&, Task&)> spawn_child) {
  ProgramBuilder b;
  // fork: copy mm under the mm lock, dup the fd table.
  add_body_with_section(b, k, LockId::kMm, k.sample_syscall_body(250_us));
  b.section(LockId::kFs, k.sample_section(), 0.5);
  // execve: path lookup through the dcache, load the image.
  b.section(LockId::kDcache, k.sample_section(), 0.5);
  b.work(k.sample_syscall_body(120_us), 0.6);
  b.effect(std::move(spawn_child));
  return std::move(b).build();
}

KernelProgram wait_for_child(Kernel& k, WaitQueueId child_exit_wq) {
  ProgramBuilder b;
  b.work(2_us, 0.3);  // scan children for zombies
  b.block(child_exit_wq);
  b.work(k.sample_section(), 0.4);  // release the task struct
  return std::move(b).build();
}

KernelProgram ioctl_op(Kernel& k, bool driver_multithreaded_flag,
                       KernelProgram body) {
  const bool skip_bkl =
      k.config().bkl_ioctl_flag && driver_multithreaded_flag;
  ProgramBuilder b;
  b.work(400_ns, 0.3);  // fd lookup + generic ioctl dispatch
  if (!skip_bkl) b.lock(LockId::kBkl);
  b.append(body);
  if (!skip_bkl) b.unlock(LockId::kBkl);
  return std::move(b).build();
}

}  // namespace kernel::sys

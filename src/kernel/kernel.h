// The kernel model: tasks, scheduling, interrupts, locks, softirqs,
// syscalls.
//
// One Kernel instance models one booted machine. The execution machinery
// (segments, frames, preemption) lives in cpu_exec.cpp; setup, wakeups,
// locks and softirq policy live in kernel.cpp. Everything is driven by the
// shared sim::Engine — the kernel never advances time itself.
//
// Execution invariants:
//  * A CPU runs at most one timed "segment" at a time, belonging to the top
//    of its stack: context switch > top interrupt frame > current task's
//    top frame.
//  * Task frames (user compute / kernel work / spin-wait) persist across
//    preemption; interrupt frames belong to the CPU and must drain before a
//    context switch can happen (as in real Linux).
//  * Preemption policy is exactly the paper's taxonomy: user code is always
//    preemptible; kernel code is never preemptible on vanilla 2.4, and is
//    preemptible outside critical sections (preempt_count == 0) with the
//    preemption patch.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "config/kernel_config.h"
#include "hw/cpu_mask.h"
#include "hw/interrupt_controller.h"
#include "hw/local_timer.h"
#include "hw/memory_system.h"
#include "hw/topology.h"
#include "hw/types.h"
#include "kernel/irq_pipeline.h"
#include "kernel/kernel_ops.h"
#include "kernel/latency_auditor.h"
#include "kernel/procfs.h"
#include "kernel/scheduler.h"
#include "kernel/softirq.h"
#include "kernel/spinlock.h"
#include "kernel/task.h"
#include "kernel/wait_queue.h"
#include "sim/engine.h"

namespace kernel {

/// Pseudo interrupt vectors for CPU-local events that bypass the IO-APIC.
inline constexpr int kVectorLocalTimer = -1;
inline constexpr int kVectorReschedIpi = -2;
/// SMI-like stall injected by fault::Injector: unmaskable by shielding,
/// consumes the CPU's accumulated stall budget (see inject_cpu_stall).
inline constexpr int kVectorSmi = -3;
/// Cycles stolen from the in-band kernel by out-of-band stage execution
/// (OobPipeline). Like an SMI: unmaskable by shielding, budget-based, but
/// accounted separately so oob interference is visible as its own counter.
inline constexpr int kVectorOobStage = -4;

/// A registered device interrupt handler: sampled top-half cost plus
/// effects applied when the handler completes (wakeups, softirq raises).
struct IrqHandler {
  std::string name;
  sim::Duration cost_min = 1 * sim::kMicrosecond;
  sim::Duration cost_max = 3 * sim::kMicrosecond;
  std::function<void(Kernel&, hw::CpuId)> effects;
};

/// An interrupt-context execution frame on a CPU.
struct IrqFrame {
  enum class Kind { kHardirq, kSoftirq };
  Kind kind = Kind::kHardirq;
  int vector = 0;  ///< IRQ number or pseudo vector
  sim::Duration remaining = 0;
  double memory_intensity = 0.4;
  sim::ChainId chain{};  ///< latency chain taken from the controller
};

/// Per-CPU kernel state.
struct CpuState {
  hw::CpuId id = -1;
  Task* current = nullptr;
  std::vector<IrqFrame> irq_frames;
  std::vector<int> pending_vectors;  ///< raised while interrupts were masked
  int irq_off_depth = 0;             ///< > 0: interrupts masked
  bool need_resched = false;

  // Active timed segment (for the top frame or the context switch).
  sim::EventId seg_end{};
  sim::Time seg_start = 0;
  double seg_dilation = 1.0;
  sim::Duration seg_span = 0;  ///< work covered by this segment
  bool seg_active = false;

  // Context switch in flight.
  bool switching = false;
  Task* switch_from = nullptr;  ///< informational

  SoftirqPending softirq;
  int softirq_restarts = 0;
  Task* ksoftirqd = nullptr;
  WaitQueueId ksoftirqd_wq = kNoWaitQueue;

  // Accounting.
  sim::Duration irq_time = 0;
  sim::Duration softirq_time = 0;
  std::uint64_t switches = 0;
  std::uint64_t hardirqs = 0;
  sim::Duration spin_wait_time = 0;  ///< time tasks on this CPU spun on locks
  sim::Duration bkl_hold_time = 0;   ///< time the BKL was held from this CPU
  sim::Duration smi_stall_budget = 0;  ///< pending injected SMI stall time
  std::uint64_t smi_stalls = 0;        ///< injected stalls taken
  sim::Duration oob_stall_budget = 0;  ///< pending oob-stage steal time
  std::uint64_t oob_preemptions = 0;   ///< oob-stage stall frames taken

  [[nodiscard]] bool irqs_enabled() const { return irq_off_depth == 0; }
};

/// One per-CPU latency counter exposed through both `/proc/latency/cpuN`
/// and kernel::latency_report_json. `key` is the procfs/JSON field name;
/// `series` is the telemetry-registry metric both render from — sharing the
/// table is what keeps the two export paths agreeing by construction.
struct LatencyCounterView {
  const char* key;
  const char* series;
};
[[nodiscard]] const std::vector<LatencyCounterView>& latency_counter_views();

class Kernel {
 public:
  Kernel(sim::Engine& engine, const hw::Topology& topo, hw::MemorySystem& mem,
         hw::InterruptController& ic, config::KernelConfig cfg);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- setup ---------------------------------------------------------------

  struct TaskParams {
    std::string name = "task";
    SchedPolicy policy = SchedPolicy::kOther;
    int rt_priority = 0;
    int nice = 0;
    hw::CpuMask affinity;  ///< empty = all CPUs
    bool mlocked = false;
    double memory_intensity = 0.2;
  };

  /// Create a task; it becomes runnable when `start()` has been called (or
  /// immediately if the kernel is already running).
  Task& create_task(TaskParams params, std::unique_ptr<Behavior> behavior);

  /// Reap exited tasks: remove them (and their /proc files) from the
  /// system. Invalidates Task pointers to the reaped tasks — callers that
  /// cache pointers must not reap. Returns how many were collected.
  std::size_t reap_exited();

  void register_irq_handler(hw::Irq irq, IrqHandler handler);
  /// Whether a driver has claimed this line (fault injection uses this to
  /// avoid raising spurious interrupts on unclaimed lines, which the model
  /// treats as a fatal "no registered handler" condition).
  [[nodiscard]] bool irq_handler_registered(hw::Irq irq) const;

  /// Fault hook: steal `stall` of CPU time via an SMI-like frame —
  /// unmaskable, invisible to the scheduler, survives shielding (real SMIs
  /// do). Safe while the CPU has interrupts masked: the stall is budgeted
  /// and taken when interrupts re-enable.
  void inject_cpu_stall(hw::CpuId cpu, sim::Duration stall);

  /// Boot: spawn ksoftirqd threads, arm local timers, make created tasks
  /// runnable, hook the interrupt controller.
  void start();
  [[nodiscard]] bool started() const { return started_; }

  // ---- administrative plane (zero simulated time) ---------------------------

  /// sched_setaffinity(): records the requested mask and applies shield
  /// semantics. Fails (like EINVAL) on an empty or fully-invalid mask.
  bool sched_setaffinity(Task& t, hw::CpuMask mask);

  /// sched_setscheduler().
  void set_policy(Task& t, SchedPolicy policy, int rt_priority);

  /// Shield mask for processes (set by shield::ShieldController only).
  void set_process_shield_mask(hw::CpuMask mask);
  [[nodiscard]] hw::CpuMask process_shield_mask() const { return proc_shield_; }

  /// Recompute every task's effective affinity against the current shield
  /// mask, migrating queued/running tasks off CPUs they may no longer use.
  void reapply_affinities();

  ProcFs& procfs() { return procfs_; }

  /// Read one latency counter as the procfs/JSON views render it (a thin
  /// lookup into the engine's telemetry registry).
  [[nodiscard]] std::uint64_t latency_counter(std::string_view series,
                                              hw::CpuId cpu) const;

  /// Zero every latency counter so a reused kernel starts a second
  /// measurement run from a clean slate: per-CPU accounting, softirq raise
  /// counts, lock statistics, auditor histograms, interrupt-controller
  /// raise/delivery counts, and the registry's owned counters/histograms.
  /// Pending work (softirq backlog, held locks, queued irqs) is untouched.
  void reset_latency_counters();

  // ---- for drivers and workload effects -------------------------------------

  WaitQueueId create_wait_queue(std::string name);
  WaitQueue& wait_queue(WaitQueueId id);

  // ---- kernel timers (the POSIX-timers patch surface, §4) --------------------

  using TimerId = int;

  /// Arm a periodic timer that wakes everyone on `wq` each period. Without
  /// the POSIX-timers patch, expirations are quantized up to the next
  /// 10 ms jiffy boundary (classic 2.4 itimers); with it they are exact.
  TimerId arm_periodic_timer(WaitQueueId wq, sim::Duration period);

  /// Disarm; idempotent.
  void cancel_timer(TimerId id);

  [[nodiscard]] std::uint64_t timer_expirations(TimerId id) const;
  /// Instant of the timer's most recent expiry (0 before the first).
  [[nodiscard]] sim::Time timer_last_expiry(TimerId id) const;

  /// Wake the longest sleeper / all sleepers on a queue.
  void wake_up_one(WaitQueueId id);
  void wake_up_all(WaitQueueId id);

  /// Queue bottom-half work on a CPU (normally the CPU the irq ran on).
  void raise_softirq(hw::CpuId cpu, SoftirqType type, sim::Duration work);

  SpinLock& lock(LockId id);

  [[nodiscard]] sim::Time now() const { return engine_.now(); }
  sim::Engine& engine() { return engine_; }
  sim::Rng& rng() { return rng_; }
  [[nodiscard]] const config::KernelConfig& config() const { return cfg_; }
  [[nodiscard]] const hw::Topology& topology() const { return topo_; }
  hw::InterruptController& interrupt_controller() { return ic_; }
  hw::LocalTimer& local_timer() { return *local_timer_; }

  // ---- delivery mechanism ---------------------------------------------------

  /// Switch the interrupt-delivery mechanism. Only the inband→oob
  /// transition is supported (a stage, once brought up, stays up for the
  /// kernel's lifetime); selecting the current mechanism is a no-op. Legal
  /// before or after start().
  void set_mechanism(MechanismKind kind);
  [[nodiscard]] MechanismKind mechanism() const { return pipeline_->kind(); }
  IrqPipeline& pipeline() { return *pipeline_; }

  /// Sample a critical-section hold time from this kernel's distribution
  /// (vanilla: heavy tail to tens of ms; low-latency: capped near 1 ms).
  sim::Duration sample_section();
  /// Sample non-critical in-kernel work for a generic syscall body.
  sim::Duration sample_syscall_body(sim::Duration typical);

  // ---- introspection ----------------------------------------------------------

  [[nodiscard]] const CpuState& cpu(hw::CpuId id) const;
  [[nodiscard]] int ncpus() const { return topo_.logical_cpus(); }
  [[nodiscard]] bool cpu_busy(hw::CpuId id) const;
  [[nodiscard]] bool cpu_idle(hw::CpuId id) const { return !cpu_busy(id); }
  [[nodiscard]] const std::vector<std::unique_ptr<Task>>& tasks() const {
    return tasks_;
  }
  Task* find_task(Pid pid);
  Task* find_task(const std::string& name);

  // ---- internals shared between kernel.cpp and cpu_exec.cpp -----------------
  // (public to the library's .cpp files, not part of the user-facing API)

  void deliver_vector(hw::CpuId cpu, int vector);
  void make_runnable(Task& t);
  void check_preempt(hw::CpuId cpu, Task& woken);
  void dispatch(hw::CpuId cpu);
  void preempt_current(hw::CpuId cpu);
  void start_segment(hw::CpuId cpu);
  void pause_segment(hw::CpuId cpu);
  void on_segment_end(hw::CpuId cpu);
  void run_program(hw::CpuId cpu);
  void next_action(hw::CpuId cpu);
  void resume_task(hw::CpuId cpu);
  void begin_hardirq(hw::CpuId cpu, int vector);
  void finish_irq_frame(hw::CpuId cpu);
  bool flush_one_pending(hw::CpuId cpu);
  void irq_stack_empty(hw::CpuId cpu);
  void do_softirq(hw::CpuId cpu);
  void block_current(hw::CpuId cpu, WaitQueueId wq);
  void finish_syscall(hw::CpuId cpu);
  void begin_switch(hw::CpuId cpu);
  void finish_switch(hw::CpuId cpu);
  bool acquire_lock(hw::CpuId cpu, Task& t, LockId id, bool bkl_reacquire = false);
  void release_lock(hw::CpuId cpu, Task& t, LockId id);
  void local_timer_tick(hw::CpuId cpu);
  void preempt_enable_check(hw::CpuId cpu);
  [[nodiscard]] bool kernel_preemptible(const Task& t) const;
  CpuState& cpu_mut(hw::CpuId id);
  void trace(sim::TraceCategory cat, hw::CpuId cpu, std::string msg);
  void account_segment(hw::CpuId cpu, sim::Duration elapsed);
  void wake_task(Task& t);
  /// Adjust per-CPU interrupt masking depth; auditor hooks fire on the
  /// 0↔1 transitions.
  void mask_irqs(hw::CpuId cpu);
  void unmask_irqs(hw::CpuId cpu);
  /// Adjust a running task's preempt_count with auditor hooks.
  void preempt_count_inc(Task& t);
  void preempt_count_dec(Task& t);
  /// Holdoff and scheduling-latency instrumentation (the preempt-off /
  /// irq-off tracer equivalent).
  LatencyAuditor& auditor() { return auditor_; }
  void sleep_current_until(hw::CpuId cpu, sim::Time wake_at);
  [[nodiscard]] sim::Duration round_sleep(sim::Duration requested) const;
  Scheduler& scheduler() { return *sched_; }

  /// Close the latency chain riding on `t` (attached by the wakeup that made
  /// it runnable) at the current time, stamping the trailing in-kernel work
  /// as kernel-exit. Returns the completed chain, or nullopt when chain
  /// tracing is off / no chain was attached. rt tests call this from their
  /// behaviors at each sample's observation point.
  std::optional<sim::LatencyChain> finish_latency_chain(Task& t);

  /// Consume the wakeup-attribution window onto `t`: mark the pending
  /// chain's current segment and hand the chain to the task. No-op when no
  /// window is open, or when the window is oob-restricted and `t` is not a
  /// stage-owned task.
  void take_wake_chain(Task& t);

 private:
  friend class OobPipeline;


  void spawn_ksoftirqd(hw::CpuId cpu);
  void register_proc_files();
  void register_telemetry();

  sim::Engine& engine_;
  const hw::Topology& topo_;
  hw::MemorySystem& mem_;
  hw::InterruptController& ic_;
  config::KernelConfig cfg_;
  sim::Rng rng_;

  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<hw::LocalTimer> local_timer_;
  std::vector<CpuState> cpus_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::array<SpinLock, static_cast<std::size_t>(LockId::kCount)> locks_;
  std::vector<std::unique_ptr<WaitQueue>> wait_queues_;
  std::array<IrqHandler, hw::kMaxIrq> irq_handlers_{};
  hw::CpuMask proc_shield_;
  ProcFs procfs_;
  LatencyAuditor auditor_;
  /// Registry-owned counter: ns of lock hold time released from each CPU
  /// (all locks; the only latency counter with no pre-existing CpuState
  /// field, so it lives in the registry directly).
  telemetry::Registry::Counter lock_hold_counter_;
  Pid next_pid_ = 1;
  bool started_ = false;

  /// Wakeup-attribution window: set around irq-handler effects and timer
  /// expiry processing so make_runnable can hand the in-flight latency
  /// chain to the first task the wakeup makes runnable.
  sim::ChainId wake_chain_{};
  sim::SegmentKind wake_chain_kind_ = sim::SegmentKind::kIrqHandler;
  hw::CpuId wake_chain_cpu_ = -1;
  /// When true the open window may only be consumed by oob-stage tasks
  /// (oob handler effects can wake in-band helpers — e.g. ksoftirqd via a
  /// deferred softirq raise — which must not steal the stage's chain).
  bool wake_chain_oob_only_ = false;

  /// The active delivery mechanism; hw edges route through it. Never null.
  std::unique_ptr<IrqPipeline> pipeline_;

  struct KernelTimer {
    WaitQueueId wq = kNoWaitQueue;
    sim::Duration period = 0;
    sim::EventId pending{};
    std::uint64_t expirations = 0;
    sim::Time last_expiry = 0;
    bool armed = false;
  };
  void timer_fire(TimerId id);
  [[nodiscard]] sim::Time quantize_expiry(sim::Time ideal) const;
  std::vector<KernelTimer> timers_;
};

}  // namespace kernel

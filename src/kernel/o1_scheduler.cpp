#include "kernel/o1_scheduler.h"

#include <algorithm>

#include "sim/assert.h"

namespace kernel {

int O1Scheduler::prio_slot(const Task& t) {
  if (t.is_rt()) return 99 - t.rt_priority;  // RT 99 → slot 0
  return 100 + t.nice + 20;                  // nice -20..19 → 100..139
}

void O1Scheduler::init(int ncpus) {
  queues_.clear();
  queues_.resize(static_cast<std::size_t>(ncpus));
}

void O1Scheduler::enqueue(Task& t, hw::CpuId cpu) {
  SIM_ASSERT(!t.on_runqueue);
  SIM_ASSERT(cpu >= 0 && static_cast<std::size_t>(cpu) < queues_.size());
  auto& rq = queues_[static_cast<std::size_t>(cpu)];
  rq.active[static_cast<std::size_t>(prio_slot(t))].push_back(&t);
  rq.nr++;
  t.on_runqueue = true;
  queue_of_[&t] = cpu;
}

void O1Scheduler::dequeue(Task& t) {
  if (!t.on_runqueue) return;
  const auto it = queue_of_.find(&t);
  SIM_ASSERT(it != queue_of_.end());
  auto& rq = queues_[static_cast<std::size_t>(it->second)];
  auto& level = rq.active[static_cast<std::size_t>(prio_slot(t))];
  const auto size_before = level.size();
  std::erase(level, &t);
  SIM_ASSERT(level.size() + 1 == size_before);
  rq.nr--;
  t.on_runqueue = false;
  queue_of_.erase(it);
}

Task* O1Scheduler::pick_next(hw::CpuId cpu) {
  auto& rq = queues_[static_cast<std::size_t>(cpu)];
  for (auto& level : rq.active) {
    for (Task* t : level) {
      if (!t->effective_affinity.test(cpu)) continue;
      std::erase(level, t);
      rq.nr--;
      t->on_runqueue = false;
      queue_of_.erase(t);
      return t;
    }
  }
  return steal_for(cpu);
}

Task* O1Scheduler::steal_for(hw::CpuId cpu) {
  // Idle pull: scan other queues, busiest first, for a migratable task.
  hw::CpuId busiest = -1;
  std::size_t best_nr = 0;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (static_cast<hw::CpuId>(q) == cpu) continue;
    if (queues_[q].nr > best_nr) {
      best_nr = queues_[q].nr;
      busiest = static_cast<hw::CpuId>(q);
    }
  }
  if (busiest < 0) return nullptr;
  auto& rq = queues_[static_cast<std::size_t>(busiest)];
  for (auto& level : rq.active) {
    for (Task* t : level) {
      if (!t->effective_affinity.test(cpu)) continue;
      std::erase(level, t);
      rq.nr--;
      t->on_runqueue = false;
      queue_of_.erase(t);
      t->migrations++;
      return t;
    }
  }
  return nullptr;
}

sim::Duration O1Scheduler::pick_cost(hw::CpuId /*cpu*/) {
  // Constant: bitmap ffs + local lock.
  return cfg_.sched_pick_base + rng_.uniform_duration(0, 300);
}

hw::CpuId O1Scheduler::select_cpu(const Task& t, hw::CpuMask allowed,
                                  const std::function<bool(hw::CpuId)>& is_idle) {
  SIM_ASSERT(!allowed.empty());
  // Prefer cache-warm last CPU, then any idle CPU, then the least loaded.
  if (t.cpu >= 0 && allowed.test(t.cpu) && is_idle(t.cpu)) return t.cpu;
  hw::CpuId idle_pick = -1;
  allowed.for_each([&](hw::CpuId cpu) {
    if (idle_pick < 0 && is_idle(cpu)) idle_pick = cpu;
  });
  if (idle_pick >= 0) return idle_pick;
  hw::CpuId least = -1;
  std::size_t least_nr = ~std::size_t{0};
  allowed.for_each([&](hw::CpuId cpu) {
    const std::size_t nr = queues_[static_cast<std::size_t>(cpu)].nr;
    if (nr < least_nr) {
      least_nr = nr;
      least = cpu;
    }
  });
  return least;
}

bool O1Scheduler::task_tick(Task& t, hw::CpuId /*cpu*/) {
  if (t.policy == SchedPolicy::kFifo) return false;
  const sim::Duration slice = t.policy == SchedPolicy::kRr
                                  ? cfg_.rr_timeslice
                                  : cfg_.other_timeslice;
  if (t.timeslice_remaining <= cfg_.local_timer_period) {
    t.timeslice_remaining = t.policy == SchedPolicy::kRr ? slice : 0;
    return true;
  }
  t.timeslice_remaining -= cfg_.local_timer_period;
  return false;
}

void O1Scheduler::refresh_timeslice(Task& t) {
  if (t.policy == SchedPolicy::kFifo) return;
  if (t.timeslice_remaining == 0) {
    // O(1) scales timeslice by static priority (nice).
    const auto scale = static_cast<sim::Duration>(
        t.policy == SchedPolicy::kRr ? 20 : 20 - t.nice);
    const sim::Duration base =
        t.policy == SchedPolicy::kRr ? cfg_.rr_timeslice : cfg_.other_timeslice;
    t.timeslice_remaining = base * scale / 20;
    if (t.timeslice_remaining == 0) t.timeslice_remaining = sim::kMillisecond;
  }
}

std::size_t O1Scheduler::nr_runnable(hw::CpuId cpu) const {
  SIM_ASSERT(cpu >= 0 && static_cast<std::size_t>(cpu) < queues_.size());
  return queues_[static_cast<std::size_t>(cpu)].nr;
}

}  // namespace kernel

// JSON export of the latency-tracing state: per-CPU counters, per-lock
// wait/hold totals, chain-tracer statistics, and any completed latency
// chains the caller collected (typically each rt test's worst-case sample).
// tools/trace_report.py consumes this format.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.h"

namespace kernel {

class Kernel;

/// A completed chain with the label it should carry in the report,
/// e.g. "realfeel worst case".
struct NamedChain {
  std::string label;
  sim::LatencyChain chain;
};

/// Render the kernel's latency counters plus `chains` as a JSON document.
std::string latency_report_json(Kernel& k,
                                const std::vector<NamedChain>& chains);

}  // namespace kernel

#include "kernel/trace_export.h"

#include <sstream>

#include "kernel/kernel.h"

namespace kernel {

namespace {

// All strings in the report are model-generated identifiers (lock names,
// "irq8", task names); escape the JSON specials anyway so a hostile label
// cannot break the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void append_chain(std::ostringstream& os, const sim::LatencyChain& c) {
  os << "{\"origin\":\"" << json_escape(c.origin) << "\",\"start_ns\":"
     << c.start << ",\"end_ns\":" << c.end << ",\"total_ns\":" << c.total()
     << ",\"segments\":[";
  for (std::size_t i = 0; i < c.segments.size(); ++i) {
    const sim::ChainSegment& s = c.segments[i];
    if (i != 0) os << ",";
    os << "{\"kind\":\"" << to_string(s.kind) << "\",\"cpu\":" << s.cpu
       << ",\"begin_ns\":" << s.begin << ",\"end_ns\":" << s.end
       << ",\"span_ns\":" << s.span();
    if (!s.detail.empty()) os << ",\"detail\":\"" << json_escape(s.detail) << "\"";
    os << "}";
  }
  os << "]}";
}

}  // namespace

std::string latency_report_json(Kernel& k,
                                const std::vector<NamedChain>& chains) {
  std::ostringstream os;
  os << "{\"sim_time_ns\":" << k.now() << ",\"cpus\":[";
  // Per-CPU counters come from the same view table /proc/latency/cpuN
  // renders, so the two export paths agree field-for-field.
  for (int c = 0; c < k.ncpus(); ++c) {
    if (c != 0) os << ",";
    os << "{\"cpu\":" << c;
    for (const LatencyCounterView& v : latency_counter_views()) {
      os << ",\"" << v.key << "\":" << k.latency_counter(v.series, c);
    }
    os << "}";
  }
  os << "],\"locks\":[";
  bool first = true;
  for (int i = 0; i < static_cast<int>(LockId::kCount); ++i) {
    const SpinLock& l = k.lock(static_cast<LockId>(i));
    if (l.acquisitions() == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"lock\":\"" << to_string(static_cast<LockId>(i))
       << "\",\"acquisitions\":" << l.acquisitions()
       << ",\"contentions\":" << l.contentions()
       << ",\"wait_ns\":" << l.total_wait()
       << ",\"hold_ns\":" << l.total_hold() << "}";
  }
  const sim::ChainTracer& tracer = k.engine().chain_tracer();
  os << "],\"tracer\":{\"compiled_in\":"
     << (sim::ChainTracer::compiled_in() ? "true" : "false")
     << ",\"enabled\":" << (tracer.enabled() ? "true" : "false")
     << ",\"opened\":" << tracer.opened()
     << ",\"completed\":" << tracer.completed()
     << ",\"abandoned\":" << tracer.abandoned()
     << ",\"dropped\":" << tracer.dropped() << "}";
  os << ",\"chains\":[";
  for (std::size_t i = 0; i < chains.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"label\":\"" << json_escape(chains[i].label) << "\",\"chain\":";
    append_chain(os, chains[i].chain);
    os << "}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace kernel

#include "kernel/stats_report.h"

#include <cstdio>

namespace kernel {

namespace {

char state_char(TaskState s) {
  switch (s) {
    case TaskState::kRunning: return 'R';
    case TaskState::kReady: return 'r';
    case TaskState::kBlocked: return 'S';
    case TaskState::kExited: return 'Z';
    case TaskState::kNew: return 'N';
  }
  return '?';
}

}  // namespace

std::string format_task_table(const Kernel& k) {
  std::string out =
      "  PID NAME             POL  PRIO ST CPU      UTIME      STIME "
      "  UTCK  STCK   SWITCH    MIGR     SYSC   FAULTS\n";
  char line[256];
  for (const auto& t : k.tasks()) {
    std::snprintf(
        line, sizeof line,
        "%5d %-16s %-4s %5d  %c %3d %10s %10s %6llu %5llu %8llu %7llu %8llu %8llu\n",
        t->pid, t->name.c_str(),
        t->policy == SchedPolicy::kFifo  ? "FIFO"
        : t->policy == SchedPolicy::kRr  ? "RR"
                                         : "OTH",
        t->is_rt() ? t->rt_priority : t->nice, state_char(t->state), t->cpu,
        sim::format_duration(t->utime).c_str(),
        sim::format_duration(t->stime).c_str(),
        static_cast<unsigned long long>(t->utime_ticks),
        static_cast<unsigned long long>(t->stime_ticks),
        static_cast<unsigned long long>(t->ctx_switches),
        static_cast<unsigned long long>(t->migrations),
        static_cast<unsigned long long>(t->syscalls),
        static_cast<unsigned long long>(t->minor_faults));
    out += line;
  }
  return out;
}

std::string format_cpu_table(const Kernel& k) {
  std::string out =
      "  CPU  HARDIRQ   SWITCHES    IRQ-TIME  SOFTIRQ-TIME  BH-PENDING  "
      "CURRENT\n";
  char line[256];
  for (int c = 0; c < k.ncpus(); ++c) {
    const CpuState& cs = k.cpu(c);
    std::snprintf(line, sizeof line, "  %3d %8llu %10llu %11s %13s %11s  %s\n",
                  c, static_cast<unsigned long long>(cs.hardirqs),
                  static_cast<unsigned long long>(cs.switches),
                  sim::format_duration(cs.irq_time).c_str(),
                  sim::format_duration(cs.softirq_time).c_str(),
                  sim::format_duration(cs.softirq.total_pending()).c_str(),
                  cs.current != nullptr ? cs.current->name.c_str() : "(idle)");
    out += line;
  }
  return out;
}

std::string format_lock_table(Kernel& k) {
  std::string out = "  LOCK             IRQ-SAFE  ACQUISITIONS  CONTENTIONS\n";
  char line[256];
  for (int i = 0; i < static_cast<int>(LockId::kCount); ++i) {
    const auto id = static_cast<LockId>(i);
    const SpinLock& l = k.lock(id);
    if (l.acquisitions() == 0) continue;
    std::snprintf(line, sizeof line, "  %-16s %8s %13llu %12llu\n",
                  to_string(id), l.irq_safe() ? "yes" : "no",
                  static_cast<unsigned long long>(l.acquisitions()),
                  static_cast<unsigned long long>(l.contentions()));
    out += line;
  }
  return out;
}

std::string format_system_report(Kernel& k) {
  return "== tasks ==\n" + format_task_table(k) + "\n== cpus ==\n" +
         format_cpu_table(k) + "\n== locks ==\n" + format_lock_table(k);
}

}  // namespace kernel

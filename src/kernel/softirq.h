// Per-CPU softirq (bottom-half) bookkeeping.
//
// Device hardirq handlers are short; the real work — protocol processing,
// block completion — is queued here as *pending nanoseconds of work* per
// softirq type, then drained either in interrupt context (vanilla 2.4) or,
// beyond a budget, in ksoftirqd (the RedHawk change). Multi-millisecond
// drains in interrupt context are the §6.2 latency mechanism.
#pragma once

#include <array>
#include <cstdint>

#include "kernel/kernel_ops.h"
#include "sim/time.h"

namespace kernel {

class SoftirqPending {
 public:
  static constexpr int kTypes = static_cast<int>(SoftirqType::kCount);

  void raise(SoftirqType t, sim::Duration work) {
    pending_[idx(t)] += work;
    raised_[idx(t)]++;
  }

  [[nodiscard]] sim::Duration pending(SoftirqType t) const {
    return pending_[idx(t)];
  }

  [[nodiscard]] sim::Duration total_pending() const {
    sim::Duration sum = 0;
    for (auto d : pending_) sum += d;
    return sum;
  }

  [[nodiscard]] bool any_pending() const { return total_pending() > 0; }

  /// Take up to `budget` ns of pending work (all types, round-robin by
  /// type order) and mark it consumed. Returns the amount taken.
  sim::Duration take(sim::Duration budget) {
    sim::Duration taken = 0;
    for (auto& p : pending_) {
      if (taken >= budget) break;
      const sim::Duration slice = p < budget - taken ? p : budget - taken;
      p -= slice;
      taken += slice;
    }
    executed_ += taken;
    return taken;
  }

  [[nodiscard]] std::uint64_t raise_count(SoftirqType t) const {
    return raised_[idx(t)];
  }
  [[nodiscard]] std::uint64_t total_raised() const {
    std::uint64_t sum = 0;
    for (auto r : raised_) sum += r;
    return sum;
  }
  [[nodiscard]] sim::Duration total_executed() const { return executed_; }

  /// Zero the raise/executed accounting without touching pending work —
  /// in-flight bottom halves still drain after a counter reset.
  void reset_counts() {
    raised_.fill(0);
    executed_ = 0;
  }

 private:
  static std::size_t idx(SoftirqType t) { return static_cast<std::size_t>(t); }

  std::array<sim::Duration, kTypes> pending_{};
  std::array<std::uint64_t, kTypes> raised_{};
  sim::Duration executed_ = 0;
};

}  // namespace kernel

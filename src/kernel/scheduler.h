// Scheduler interface.
//
// Two implementations reproduce the paper's comparison points:
//  * GoodnessScheduler — the stock 2.4 scheduler: one global runqueue,
//    O(n) goodness() scan on every pick.
//  * O1Scheduler — Molnar's O(1) scheduler (adopted by RedHawk): per-CPU
//    140-priority bitmap runqueues, constant-time pick.
//
// The interface exposes exactly what the kernel core needs: queue
// membership, wake placement, pick + its modelled cost, preemption
// comparison, and tick-driven timeslice accounting.
#pragma once

#include <cstddef>
#include <functional>

#include "config/kernel_config.h"
#include "hw/cpu_mask.h"
#include "hw/types.h"
#include "kernel/task.h"

namespace kernel {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual void init(int ncpus) = 0;

  /// Place a runnable task on `cpu`'s queue (the goodness scheduler ignores
  /// the CPU — its queue is global).
  virtual void enqueue(Task& t, hw::CpuId cpu) = 0;

  /// Remove a task from whatever queue holds it.
  virtual void dequeue(Task& t) = 0;

  /// Pick (and dequeue) the next task to run on `cpu`, or nullptr for idle.
  /// Honors task affinity masks.
  virtual Task* pick_next(hw::CpuId cpu) = 0;

  /// Modelled CPU cost of the pick that just happened (runqueue lock +
  /// scan). Called immediately after pick_next.
  virtual sim::Duration pick_cost(hw::CpuId cpu) = 0;

  /// Choose the CPU on which to make a waking task runnable.
  virtual hw::CpuId select_cpu(const Task& t, hw::CpuMask allowed,
                               const std::function<bool(hw::CpuId)>& is_idle) = 0;

  /// Does `cand` preempt `cur` at wakeup? Static-priority rule shared by
  /// both schedulers: RT beats OTHER, higher rt_priority beats lower, and
  /// OTHER tasks never wake-preempt each other (timeslices rotate them).
  [[nodiscard]] virtual bool preempts(const Task& cand, const Task& cur) const;

  /// Local-timer tick for the running task; returns true if the timeslice
  /// expired and a reschedule should be requested.
  virtual bool task_tick(Task& t, hw::CpuId cpu) = 0;

  /// Refill the timeslice when a task is granted the CPU.
  virtual void refresh_timeslice(Task& t) = 0;

  [[nodiscard]] virtual std::size_t nr_runnable(hw::CpuId cpu) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace kernel

#include "kernel/goodness_scheduler.h"

#include <algorithm>

#include "sim/assert.h"

namespace kernel {

void GoodnessScheduler::init(int ncpus) { ncpus_ = ncpus; }

void GoodnessScheduler::enqueue(Task& t, hw::CpuId /*cpu*/) {
  SIM_ASSERT(!t.on_runqueue);
  runqueue_.push_back(&t);
  t.on_runqueue = true;
}

void GoodnessScheduler::dequeue(Task& t) {
  if (!t.on_runqueue) return;
  std::erase(runqueue_, &t);
  t.on_runqueue = false;
}

long GoodnessScheduler::goodness(const Task& t, hw::CpuId cpu) const {
  if (t.is_rt()) return 1000 + t.static_priority();
  // counter + nice bonus + cache-affinity bonus, as in 2.4's goodness().
  long g = static_cast<long>(t.timeslice_remaining / sim::kMillisecond);
  g += (20 - t.nice);
  if (t.cpu == cpu) g += 15;  // PROC_CHANGE_PENALTY-style affinity bonus
  return g;
}

Task* GoodnessScheduler::pick_next(hw::CpuId cpu) {
  last_pick_scan_ = runqueue_.size();
  Task* best = nullptr;
  long best_g = -1;
  for (Task* t : runqueue_) {
    if (!t->effective_affinity.test(cpu)) continue;
    const long g = goodness(*t, cpu);
    if (g > best_g) {
      best_g = g;
      best = t;
    }
  }
  if (best != nullptr && !best->is_rt() && best->timeslice_remaining == 0) {
    // 2.4's counter-recalculation epoch: when every eligible SCHED_OTHER
    // task has exhausted its counter, refill them all. (Without this, the
    // cache-affinity bonus would let one task win every pick forever.)
    for (Task* t : runqueue_) {
      if (t->is_rt()) continue;
      const auto scale = static_cast<sim::Duration>(20 - t->nice);
      t->timeslice_remaining = cfg_.other_timeslice * scale / 20;
      if (t->timeslice_remaining == 0) t->timeslice_remaining = sim::kMillisecond;
    }
    // Rescan with fresh counters.
    best = nullptr;
    best_g = -1;
    for (Task* t : runqueue_) {
      if (!t->effective_affinity.test(cpu)) continue;
      const long g = goodness(*t, cpu);
      if (g > best_g) {
        best_g = g;
        best = t;
      }
    }
  }
  if (best != nullptr) {
    std::erase(runqueue_, best);
    best->on_runqueue = false;
  }
  return best;
}

sim::Duration GoodnessScheduler::pick_cost(hw::CpuId /*cpu*/) {
  // Global runqueue lock + O(n) goodness scan over the current queue. The
  // lock is modelled as a small random add-on rather than a full contention
  // simulation: on a 2-4 CPU machine the hold times are short but nonzero.
  last_pick_scan_ = runqueue_.size();
  const sim::Duration scan =
      cfg_.sched_pick_base +
      cfg_.sched_pick_per_task * static_cast<sim::Duration>(last_pick_scan_);
  const sim::Duration lock_wait = rng_.uniform_duration(0, cfg_.sched_pick_base);
  return scan + lock_wait;
}

hw::CpuId GoodnessScheduler::select_cpu(
    const Task& t, hw::CpuMask allowed,
    const std::function<bool(hw::CpuId)>& is_idle) {
  SIM_ASSERT(!allowed.empty());
  // reschedule_idle(): prefer the task's last CPU if idle, else any idle
  // CPU, else the last CPU (the preemption check happens there).
  if (t.cpu >= 0 && allowed.test(t.cpu) && is_idle(t.cpu)) return t.cpu;
  hw::CpuId idle_pick = -1;
  allowed.for_each([&](hw::CpuId cpu) {
    if (idle_pick < 0 && is_idle(cpu)) idle_pick = cpu;
  });
  if (idle_pick >= 0) return idle_pick;
  if (t.cpu >= 0 && allowed.test(t.cpu)) return t.cpu;
  return allowed.first();
}

bool GoodnessScheduler::task_tick(Task& t, hw::CpuId /*cpu*/) {
  if (t.is_rt()) {
    if (t.policy != SchedPolicy::kRr) return false;
    if (t.timeslice_remaining <= cfg_.local_timer_period) {
      t.timeslice_remaining = cfg_.rr_timeslice;
      return true;
    }
    t.timeslice_remaining -= cfg_.local_timer_period;
    return false;
  }
  if (t.timeslice_remaining <= cfg_.local_timer_period) {
    t.timeslice_remaining = 0;
    return true;
  }
  t.timeslice_remaining -= cfg_.local_timer_period;
  return false;
}

void GoodnessScheduler::refresh_timeslice(Task& t) {
  if (t.policy == SchedPolicy::kRr) {
    if (t.timeslice_remaining == 0) t.timeslice_remaining = cfg_.rr_timeslice;
    return;
  }
  if (t.policy == SchedPolicy::kOther && t.timeslice_remaining == 0) {
    // 2.4 recalculates counters in one global sweep; the per-task effect is
    // a nice-scaled refill.
    const auto scale = static_cast<sim::Duration>(20 - t.nice);
    t.timeslice_remaining = cfg_.other_timeslice * scale / 20;
    if (t.timeslice_remaining == 0) t.timeslice_remaining = sim::kMillisecond;
  }
}

std::size_t GoodnessScheduler::nr_runnable(hw::CpuId /*cpu*/) const {
  return runqueue_.size();
}

}  // namespace kernel

#include "kernel/procfs.h"

#include "sim/assert.h"

namespace kernel {

void ProcFs::register_file(std::string path, ReadFn read, WriteFn write) {
  SIM_ASSERT_MSG(!path.empty() && path.front() == '/', "procfs paths are absolute");
  files_[std::move(path)] = Node{std::move(read), std::move(write)};
}

bool ProcFs::exists(const std::string& path) const {
  return files_.contains(path);
}

std::optional<std::string> ProcFs::read(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end() || !it->second.read) return std::nullopt;
  return it->second.read();
}

bool ProcFs::write(const std::string& path, std::string_view data) {
  const auto it = files_.find(path);
  if (it == files_.end() || !it->second.write) return false;
  return it->second.write(data);
}

bool ProcFs::remove(const std::string& path) {
  return files_.erase(path) > 0;
}

std::vector<std::string> ProcFs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, node] : files_) {
    if (path.starts_with(prefix)) out.push_back(path);
  }
  return out;
}

}  // namespace kernel

// Spinlock model.
//
// Identity + holder + FIFO waiter list. Hold *time* comes from the ops
// between OpLock and OpUnlock; this class only tracks who holds and who
// spins. The distinction the paper's §6.2 turns on is `irq_safe`:
//  * irq-safe locks disable interrupts on the holding CPU, so the holder
//    cannot be perforated by interrupt + bottom-half processing;
//  * non-irq-safe locks leave interrupts open — a bottom-half storm on the
//    holder's CPU stretches the *observed* hold time by milliseconds, and
//    every spinner eats that delay.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "kernel/kernel_ops.h"
#include "kernel/task.h"

namespace kernel {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(LockId id, bool irq_safe) : id_(id), irq_safe_(irq_safe) {}

  [[nodiscard]] LockId id() const { return id_; }
  [[nodiscard]] bool irq_safe() const { return irq_safe_; }
  [[nodiscard]] bool held() const { return holder_ != nullptr; }
  [[nodiscard]] Task* holder() const { return holder_; }

  /// Take the lock if free. Returns true on success.
  bool try_acquire(Task& t) {
    if (holder_ != nullptr) return false;
    holder_ = &t;
    ++acquisitions_;
    return true;
  }

  /// Register a spinning waiter (FIFO).
  void add_waiter(Task& t) {
    waiters_.push_back(&t);
    ++contentions_;
  }

  void remove_waiter(Task& t) { std::erase(waiters_, &t); }

  /// Release; returns the next waiter (now the owner) or nullptr.
  Task* release_and_grant() {
    holder_ = nullptr;
    if (waiters_.empty()) return nullptr;
    Task* next = waiters_.front();
    waiters_.pop_front();
    holder_ = next;
    ++acquisitions_;
    return next;
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }
  [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_; }
  [[nodiscard]] std::uint64_t contentions() const { return contentions_; }

  // -- wait/hold time accounting (stamped by the kernel; the lock itself is
  // time-agnostic). Feeds /proc/latency/locks and the JSON trace export. --
  void note_acquired(sim::Time now) { acquired_at_ = now; }
  void note_released(sim::Time now) { total_hold_ += now - acquired_at_; }
  void add_wait_time(sim::Duration d) { total_wait_ += d; }
  [[nodiscard]] sim::Time acquired_at() const { return acquired_at_; }
  [[nodiscard]] sim::Duration total_hold() const { return total_hold_; }
  [[nodiscard]] sim::Duration total_wait() const { return total_wait_; }

  /// Zero the accounting. Holder and waiter state are untouched, so a
  /// counter reset while the lock is held cannot corrupt lock semantics.
  void reset_counters() {
    acquisitions_ = 0;
    contentions_ = 0;
    total_hold_ = 0;
    total_wait_ = 0;
  }

 private:
  LockId id_ = LockId::kCount;
  bool irq_safe_ = false;
  Task* holder_ = nullptr;
  std::deque<Task*> waiters_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contentions_ = 0;
  sim::Time acquired_at_ = 0;
  sim::Duration total_hold_ = 0;
  sim::Duration total_wait_ = 0;
};

}  // namespace kernel

// RCIM driver (§6.3).
//
// The driver is fully multithreaded, so with the RedHawk "no BKL in ioctl"
// flag its wait path is: tiny irq-safe driver lock, sleep, tiny exit — no
// BKL, no fs-layer locks. Combined with the mmap'd count register for the
// measurement, this is the path that delivers the paper's 27 µs worst case.
#pragma once

#include <array>

#include "hw/rcim_device.h"
#include "kernel/kernel.h"
#include "kernel/kernel_ops.h"

namespace kernel {

class RcimDriver {
 public:
  RcimDriver(Kernel& kernel, hw::RcimDevice& device);

  [[nodiscard]] WaitQueueId wait_queue() const { return wq_; }

  /// One "wait for next periodic interrupt" ioctl. Goes through the generic
  /// ioctl layer: takes the BKL unless the kernel honours the multithreaded-
  /// driver flag (config.bkl_ioctl_flag).
  [[nodiscard]] KernelProgram wait_ioctl_program();

  /// Wait for an edge on external input `line` (the RCIM's "connect
  /// external edge-triggered device interrupts" capability, §4).
  [[nodiscard]] KernelProgram external_wait_ioctl_program(int line);

  [[nodiscard]] WaitQueueId external_wait_queue(int line) const;

  [[nodiscard]] hw::RcimDevice& device() { return device_; }

 private:
  Kernel& kernel_;
  hw::RcimDevice& device_;
  WaitQueueId wq_;
  std::array<WaitQueueId, hw::RcimDevice::kExternalLines> ext_wqs_{};
  std::uint64_t seen_timer_fires_ = 0;
};

}  // namespace kernel

#include "kernel/drivers/rcim_driver.h"

#include "kernel/syscalls.h"
#include "sim/assert.h"

namespace kernel {

using namespace sim::literals;

RcimDriver::RcimDriver(Kernel& kernel, hw::RcimDevice& device)
    : kernel_(kernel),
      device_(device),
      wq_(kernel.create_wait_queue("rcim")) {
  SIM_ASSERT_MSG(kernel.config().rcim_driver,
                 "this kernel config has no RCIM driver");
  for (int line = 0; line < hw::RcimDevice::kExternalLines; ++line) {
    ext_wqs_[static_cast<std::size_t>(line)] =
        kernel.create_wait_queue("rcim_ext" + std::to_string(line));
  }

  IrqHandler h;
  h.name = "rcim";
  h.cost_min = 2_us;  // PCI read to ack; a tight, well-behaved handler —
  h.cost_max = 4_us;  // but PCI reads stall behind DMA bursts on a busy bus
  h.effects = [this](Kernel& k, hw::CpuId) {
    // The status register says what fired: the timer, external lines, or
    // both (they share the card's PCI interrupt).
    if (device_.fire_count() != seen_timer_fires_) {
      seen_timer_fires_ = device_.fire_count();
      k.wake_up_all(wq_);
    }
    std::uint32_t status = device_.read_and_clear_external_status();
    for (int line = 0; status != 0; ++line, status >>= 1) {
      if (status & 1u) {
        k.wake_up_all(ext_wqs_[static_cast<std::size_t>(line)]);
      }
    }
  };
  kernel.register_irq_handler(device.irq(), std::move(h));
}

WaitQueueId RcimDriver::external_wait_queue(int line) const {
  SIM_ASSERT(line >= 0 && line < hw::RcimDevice::kExternalLines);
  return ext_wqs_[static_cast<std::size_t>(line)];
}

KernelProgram RcimDriver::external_wait_ioctl_program(int line) {
  ProgramBuilder body;
  body.section(LockId::kRcim, 200_ns, 0.3);
  body.block(external_wait_queue(line));
  body.work(300_ns, 0.3);
  return sys::ioctl_op(kernel_, /*driver_multithreaded_flag=*/true,
                       std::move(body).build());
}

KernelProgram RcimDriver::wait_ioctl_program() {
  ProgramBuilder body;
  body.section(LockId::kRcim, 200_ns, 0.3);  // arm the wait, irq-safe lock
  body.block(wq_);
  body.work(300_ns, 0.3);  // return status to the caller
  return sys::ioctl_op(kernel_, /*driver_multithreaded_flag=*/true,
                       std::move(body).build());
}

}  // namespace kernel

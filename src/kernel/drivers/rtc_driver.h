// /dev/rtc driver — the realfeel interrupt source (§6.1).
//
// The read() path is deliberately "less than optimal" (the paper's words):
// after the wakeup, the process exits the kernel through generic
// file-system layers with *opportunities to block waiting for spin locks*.
// Those opportunities are modelled as rare probabilistic acquisitions of
// the globally contended fs/dcache locks — rare per call, but when one
// lands while a bottom-half-perforated holder is mid-section, the Fig 6
// tail (0.1-0.6 ms) appears.
#pragma once

#include "hw/rtc_device.h"
#include "kernel/kernel.h"
#include "kernel/kernel_ops.h"

namespace kernel {

class RtcDriver {
 public:
  RtcDriver(Kernel& kernel, hw::RtcDevice& device);

  /// Wait queue the interrupt handler wakes.
  [[nodiscard]] WaitQueueId wait_queue() const { return wq_; }

  /// Build one read(/dev/rtc) invocation: fd layers in, block for the
  /// interrupt, fd layers out. Sampled per call (the lock "opportunities"
  /// differ call to call).
  [[nodiscard]] KernelProgram read_program();

  [[nodiscard]] hw::RtcDevice& device() { return device_; }

 private:
  Kernel& kernel_;
  hw::RtcDevice& device_;
  WaitQueueId wq_;
  sim::Rng rng_;
};

}  // namespace kernel

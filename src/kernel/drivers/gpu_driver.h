// Graphics driver (nVidia GeForce2 MXR class).
//
// X11perf submits command batches and blocks until the completion
// interrupt; the handler wakes the submitter and charges tasklet work.
#pragma once

#include <cstdint>

#include "hw/gpu_device.h"
#include "kernel/kernel.h"
#include "kernel/kernel_ops.h"

namespace kernel {

class GpuDriver {
 public:
  GpuDriver(Kernel& kernel, hw::GpuDevice& device);

  /// X blocks here until its batch completes.
  [[nodiscard]] WaitQueueId completion_queue() const { return wq_; }

  [[nodiscard]] hw::GpuDevice& device() { return device_; }

 private:
  Kernel& kernel_;
  hw::GpuDevice& device_;
  WaitQueueId wq_;
};

}  // namespace kernel

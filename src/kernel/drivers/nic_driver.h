// Ethernet driver.
//
// The hardirq handler is short (ring drain + ack); the real cost is the
// protocol processing it queues as net-rx softirq work. Under the paper's
// scp/ttcp loads this softirq work is the dominant jitter source on
// unshielded CPUs.
#pragma once

#include <cstdint>

#include "hw/nic_device.h"
#include "kernel/kernel.h"
#include "kernel/kernel_ops.h"

namespace kernel {

class NicDriver {
 public:
  struct Params {
    /// Protocol-processing cost per received byte (checksum, IP/TCP, skb
    /// handling on 2003-era CPUs).
    double rx_ns_per_byte = 26.0;
    /// TX-completion cost per byte (skb free, queue restart).
    double tx_ns_per_byte = 2.0;
  };

  NicDriver(Kernel& kernel, hw::NicDevice& device)
      : NicDriver(kernel, device, Params{}) {}
  NicDriver(Kernel& kernel, hw::NicDevice& device, Params params);

  /// Receivers block here; the rx path wakes it.
  [[nodiscard]] WaitQueueId rx_wait_queue() const { return rx_wq_; }

  [[nodiscard]] hw::NicDevice& device() { return device_; }
  [[nodiscard]] std::uint64_t rx_interrupts() const { return rx_irqs_; }

 private:
  Kernel& kernel_;
  hw::NicDevice& device_;
  Params params_;
  WaitQueueId rx_wq_;
  std::uint64_t rx_irqs_ = 0;
};

}  // namespace kernel

// SCSI disk driver.
//
// Submitters pass the wait-queue id as the request cookie; the completion
// handler wakes exactly that queue and charges block-softirq work per
// completed request.
#pragma once

#include <cstdint>

#include "hw/disk_device.h"
#include "kernel/kernel.h"
#include "kernel/kernel_ops.h"

namespace kernel {

class DiskDriver {
 public:
  DiskDriver(Kernel& kernel, hw::DiskDevice& device);

  /// Submit a request on behalf of `io_wq`: the completion wakes it.
  void submit(std::uint32_t bytes, bool write, WaitQueueId io_wq);

  [[nodiscard]] hw::DiskDevice& device() { return device_; }
  [[nodiscard]] std::uint64_t completions() const { return completions_; }

 private:
  Kernel& kernel_;
  hw::DiskDevice& device_;
  std::uint64_t completions_ = 0;
};

}  // namespace kernel

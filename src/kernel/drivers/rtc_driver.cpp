#include "kernel/drivers/rtc_driver.h"

namespace kernel {

using namespace sim::literals;

RtcDriver::RtcDriver(Kernel& kernel, hw::RtcDevice& device)
    : kernel_(kernel),
      device_(device),
      wq_(kernel.create_wait_queue("rtc")),
      rng_(kernel.rng().split()) {
  IrqHandler h;
  h.name = "rtc";
  h.cost_min = 2_us;  // CMOS register read to acknowledge is slow I/O
  h.cost_max = 4_us;
  const WaitQueueId wq = wq_;
  h.effects = [wq](Kernel& k, hw::CpuId) { k.wake_up_all(wq); };
  kernel.register_irq_handler(device.irq(), std::move(h));
}

KernelProgram RtcDriver::read_program() {
  // The read path crosses the generic file-system layers on the way in and
  // out (§6.2: "embedded in this code are opportunities to block waiting
  // for spin locks"). The *holds* here are tiny; the latency, when it
  // comes, is the wait for another CPU's holder — possibly one whose hold
  // is being stretched by interrupt + bottom-half activity.
  ProgramBuilder b;
  b.work(600_ns, 0.3);            // fget + f_op dispatch
  b.section(LockId::kFs, 300_ns, 0.4);
  b.section(LockId::kRtc, 250_ns, 0.3);  // arm: record that we wait
  b.block(wq_);
  b.section(LockId::kRtc, 250_ns, 0.3);  // collect the interrupt count
  b.section(LockId::kDcache, 300_ns, 0.4);  // fd release through dcache
  b.work(400_ns, 0.3);            // copy_to_user + fput
  return std::move(b).build();
}

}  // namespace kernel

#include "kernel/drivers/disk_driver.h"

namespace kernel {

using namespace sim::literals;

DiskDriver::DiskDriver(Kernel& kernel, hw::DiskDevice& device)
    : kernel_(kernel), device_(device) {
  IrqHandler h;
  h.name = "scsi";
  h.cost_min = 6_us;  // mailbox read + ack on a 2003 SCSI HBA
  h.cost_max = 12_us;
  h.effects = [this](Kernel& k, hw::CpuId cpu) {
    for (const std::uint64_t cookie : device_.drain_completions()) {
      ++completions_;
      // End-of-request block-layer processing (bio completion, unplug).
      k.raise_softirq(cpu, SoftirqType::kBlock,
                      k.rng().uniform_duration(40_us, 160_us));
      k.wake_up_one(static_cast<WaitQueueId>(cookie));
    }
  };
  kernel.register_irq_handler(device.irq(), std::move(h));
}

void DiskDriver::submit(std::uint32_t bytes, bool write, WaitQueueId io_wq) {
  device_.submit(
      hw::DiskRequest{bytes, write, static_cast<std::uint64_t>(io_wq)});
}

}  // namespace kernel

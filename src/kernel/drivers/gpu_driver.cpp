#include "kernel/drivers/gpu_driver.h"

namespace kernel {

using namespace sim::literals;

GpuDriver::GpuDriver(Kernel& kernel, hw::GpuDevice& device)
    : kernel_(kernel), device_(device), wq_(kernel.create_wait_queue("gpu")) {
  IrqHandler h;
  h.name = "nvidia";
  h.cost_min = 3_us;
  h.cost_max = 8_us;
  h.effects = [this](Kernel& k, hw::CpuId cpu) {
    const std::uint32_t done = device_.drain_completions();
    if (done > 0) {
      k.raise_softirq(cpu, SoftirqType::kTasklet,
                      static_cast<sim::Duration>(done) *
                          k.rng().uniform_duration(10_us, 40_us));
      k.wake_up_all(wq_);
    }
  };
  kernel.register_irq_handler(device.irq(), std::move(h));
}

}  // namespace kernel

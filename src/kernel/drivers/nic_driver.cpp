#include "kernel/drivers/nic_driver.h"

namespace kernel {

using namespace sim::literals;

NicDriver::NicDriver(Kernel& kernel, hw::NicDevice& device, Params params)
    : kernel_(kernel),
      device_(device),
      params_(params),
      rx_wq_(kernel.create_wait_queue("nic_rx")) {
  IrqHandler h;
  h.name = "eth0";
  h.cost_min = 4_us;  // ring drain + register ack on the 3c905C
  h.cost_max = 9_us;
  h.effects = [this](Kernel& k, hw::CpuId cpu) {
    const std::uint32_t rx = device_.drain_rx_bytes();
    const std::uint32_t tx = device_.drain_tx_bytes();
    if (rx > 0) {
      ++rx_irqs_;
      k.raise_softirq(cpu, SoftirqType::kNetRx,
                      static_cast<sim::Duration>(static_cast<double>(rx) *
                                                 params_.rx_ns_per_byte));
      // Data reaches the blocked receiver; it still pays its own socket-
      // layer exit costs in task context.
      k.wake_up_all(rx_wq_);
    }
    if (tx > 0) {
      k.raise_softirq(cpu, SoftirqType::kNetTx,
                      static_cast<sim::Duration>(static_cast<double>(tx) *
                                                 params_.tx_ns_per_byte));
    }
  };
  kernel.register_irq_handler(device.irq(), std::move(h));
}

}  // namespace kernel

// Interrupt-delivery mechanism layer.
//
// The hardware edges (hw::InterruptController device vectors, hw::LocalTimer
// ticks) no longer call into kernel::Kernel directly: they deliver into an
// IrqPipeline, the stage descriptor that decides *which kernel* services the
// interrupt. Two mechanisms exist:
//
//   * InBandPipeline — the paper's world. Every delivery lands in the
//     ordinary in-band kernel: hardirq frames, softirq bottom halves,
//     spinlock/BKL sections, the scheduler. This is a pure extraction of the
//     pre-refactor dispatch path and is bit-identical to it.
//   * OobPipeline — the dual-kernel rival (Dovetail/RROS-style out-of-band
//     stage). A second, minimal scheduler runs adopted RT tasks and adopted
//     IRQ lines *ahead of* the whole in-band kernel: no interrupt masking,
//     no runqueue, no spinlocks — in-band activity (softirqs, BKL holders,
//     storms) simply cannot delay it. Execution time spent in the oob stage
//     is charged back to the in-band CPU as a stall (kVectorOobStage),
//     modelling the cycles the oob core steals.
//
// The pipeline also owns the one shared piece of dispatch bookkeeping
// (note_dispatch): flight-recorder event, latency-chain pickup, and the
// latency auditor's raise→dispatch histogram all read the same
// InterruptController timestamp, so ChainTracer segments and auditor numbers
// agree by construction instead of by parallel hand-rolled arithmetic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/types.h"
#include "kernel/kernel_ops.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace kernel {

class Kernel;
struct Task;

/// Which delivery mechanism a kernel runs. kInBand is the default and the
/// only mechanism whose outputs are covered by the paper-reproduction
/// byte-identity gates.
enum class MechanismKind : std::uint8_t { kInBand, kOob };

[[nodiscard]] const char* to_string(MechanismKind kind);

class IrqPipeline {
 public:
  explicit IrqPipeline(Kernel& kernel) : k_(kernel) {}
  virtual ~IrqPipeline() = default;
  IrqPipeline(const IrqPipeline&) = delete;
  IrqPipeline& operator=(const IrqPipeline&) = delete;

  [[nodiscard]] virtual MechanismKind kind() const = 0;

  /// A device vector arrived from the InterruptController (post wire
  /// delay). The pipeline decides which stage services it.
  virtual void device_irq(hw::CpuId cpu, hw::Irq irq) = 0;

  /// The per-CPU local timer ticked.
  virtual void timer_tick(hw::CpuId cpu) = 0;

  /// Whether this task executes on the oob stage (never true in-band).
  [[nodiscard]] virtual bool owns(const Task& t) const;

  /// Whether this IRQ line is adopted by the oob stage.
  [[nodiscard]] virtual bool owns_irq(int irq) const;

  /// A stage-owned task became runnable (wakeup, boot, fork adoption).
  /// Only called for tasks where owns() is true.
  virtual void on_runnable(Task& t);

  /// Shared dispatch bookkeeping, called exactly once per delivered vector
  /// by whichever stage services it: records the flight-recorder dispatch
  /// event, collects the pending latency chain opened at raise time, marks
  /// its irq-raise segment, and feeds the raise→dispatch latency into the
  /// auditor's per-CPU dispatch histogram. Returns the chain (invalid for
  /// pseudo vectors or when tracing is off).
  sim::ChainId note_dispatch(hw::CpuId cpu, int vector);

 protected:
  Kernel& k_;
};

/// The ordinary in-band kernel: a pure pass-through into the pre-refactor
/// dispatch path. Constructing a Kernel installs this mechanism.
class InBandPipeline final : public IrqPipeline {
 public:
  explicit InBandPipeline(Kernel& kernel) : IrqPipeline(kernel) {}
  [[nodiscard]] MechanismKind kind() const override {
    return MechanismKind::kInBand;
  }
  void device_irq(hw::CpuId cpu, hw::Irq irq) override;
  void timer_tick(hw::CpuId cpu) override;
};

/// The out-of-band stage: a minimal second scheduler for adopted RT tasks
/// and adopted IRQ lines. Adopted interrupts dispatch in a fixed
/// oob_dispatch_cost with no masking or frames; adopted tasks run their
/// kernel programs on the stage directly (spinlock/BKL/preempt ops are
/// no-ops — the stage itself is the serialization domain; softirqs raised
/// by oob handlers stay in-band-deferrable). Kernel timers whose wait queue
/// an adopted task blocks on are captured onto a hardware-timer fast path
/// with exact (unquantized) expiries. Every nanosecond executed on the
/// stage is charged to the underlying CPU as an in-band stall.
class OobPipeline final : public IrqPipeline {
 public:
  explicit OobPipeline(Kernel& kernel);

  [[nodiscard]] MechanismKind kind() const override {
    return MechanismKind::kOob;
  }
  void device_irq(hw::CpuId cpu, hw::Irq irq) override;
  void timer_tick(hw::CpuId cpu) override;
  [[nodiscard]] bool owns(const Task& t) const override;
  [[nodiscard]] bool owns_irq(int irq) const override;
  void on_runnable(Task& t) override;

  /// Move a task onto the oob stage. Legal for tasks that have not started
  /// (kNew) and for ready tasks sitting on an in-band runqueue (the forked
  /// path creates probes post-boot); running tasks cannot migrate stages.
  void adopt_task(Task& t);

  /// Route an IRQ line to the oob stage.
  void adopt_irq(int irq);

  // Stage statistics (also exported as oob.* telemetry gauges).
  [[nodiscard]] std::uint64_t dispatches() const { return dispatches_; }
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] std::uint64_t timer_fires() const { return timer_fires_; }
  [[nodiscard]] sim::Duration stall_ns() const { return stall_ns_; }

 private:
  /// Per-adopted-task execution context. Stable address (unique_ptr'd):
  /// engine callbacks capture pointers to it, which the snapshot layer's
  /// in-place restore keeps valid.
  struct Context {
    Task* task = nullptr;
    hw::CpuId cpu = 0;          ///< CPU whose cycles the stage steals
    sim::Duration span = 0;     ///< length of the in-flight timed span
  };

  Context* context_of(const Task* t);
  void advance(Context& c);
  void begin_span(Context& c, sim::Duration d);
  void end_span(Context& c);
  void switch_in(Context& c);
  void finish_dispatch(hw::CpuId cpu, hw::Irq irq, sim::ChainId chain);
  void maybe_capture_timer(Context& c, WaitQueueId wq);
  void oob_timer_fire(int timer_id, hw::CpuId cpu);
  void charge_stall(hw::CpuId cpu, sim::Duration d);

  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<int> irqs_;
  std::vector<int> captured_timers_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t timer_fires_ = 0;
  sim::Duration stall_ns_ = 0;
};

}  // namespace kernel

// Kernel-path programs.
//
// A syscall (or kernel-thread body) is modelled as a small program of ops:
// timed kernel work, spinlock acquire/release, explicit preemption control,
// blocking on a wait queue, and zero-time side effects (submit disk I/O,
// raise a softirq, ...). Drivers and workloads build these programs; the
// executor in cpu_exec.cpp runs them with the configured preemption
// semantics. This is what makes "a critical section of 40 ms inside cat()"
// and "an ioctl that skips the BKL" the same kind of object.
#pragma once

#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "sim/time.h"

namespace kernel {

class Kernel;
struct Task;

/// Identities of the contended kernel locks in the model. Hold-time comes
/// from the op that guards the lock; identity determines *who contends*.
enum class LockId : int {
  kBkl = 0,     ///< Big Kernel Lock (special: dropped while sleeping)
  kFs,          ///< generic file-system / buffer-cache lock (not irq-safe)
  kDcache,      ///< dentry cache lock (not irq-safe)
  kRtc,         ///< RTC driver lock
  kSocket,      ///< socket/net stack lock (not irq-safe)
  kPipe,        ///< pipe/FIFO lock
  kMm,          ///< mm/page-table lock
  kIoRequest,   ///< block-layer request queue lock (irq-safe)
  kRcim,        ///< RCIM driver lock (irq-safe, multithreaded driver: tiny holds)
  kCount
};

const char* to_string(LockId id);

/// Index into the kernel's wait-queue table.
using WaitQueueId = int;
inline constexpr WaitQueueId kNoWaitQueue = -1;

enum class SoftirqType : int {
  kTimer = 0,
  kNetRx,
  kNetTx,
  kBlock,
  kTasklet,
  kCount
};

const char* to_string(SoftirqType t);

// ---- ops -------------------------------------------------------------------

/// Timed kernel work; preemptible between ops iff the kernel has the
/// preemption patch and no lock is held.
struct OpWork {
  sim::Duration duration;
  double memory_intensity = 0.35;
};

/// spin_lock(id). Spins (burning CPU) if contended.
struct OpLock {
  LockId lock;
};

/// spin_unlock(id).
struct OpUnlock {
  LockId lock;
};

/// preempt_disable() / preempt_enable() without a lock.
struct OpPreemptDisable {};
struct OpPreemptEnable {};

/// Block on a wait queue until wake_up. If the task holds the BKL it is
/// dropped across the sleep and reacquired on wakeup (2.4 semantics).
struct OpBlock {
  WaitQueueId wq;
};

/// Zero-time side effect executed inline (submit I/O, wake another queue,
/// raise a softirq, record a measurement).
struct OpEffect {
  std::function<void(Kernel&, Task&)> fn;
};

using KernelOp =
    std::variant<OpWork, OpLock, OpUnlock, OpPreemptDisable, OpPreemptEnable,
                 OpBlock, OpEffect>;

using KernelProgram = std::vector<KernelOp>;

/// Fluent builder so driver/workload code reads like annotated kernel paths:
///   ProgramBuilder{}.work(2_us).lock(LockId::kFs).work(hold).unlock(...)
class ProgramBuilder {
 public:
  ProgramBuilder& work(sim::Duration d, double mem = 0.35) {
    ops_.push_back(OpWork{d, mem});
    return *this;
  }
  ProgramBuilder& lock(LockId id) {
    ops_.push_back(OpLock{id});
    return *this;
  }
  ProgramBuilder& unlock(LockId id) {
    ops_.push_back(OpUnlock{id});
    return *this;
  }
  /// lock + hold work + unlock in one call.
  ProgramBuilder& section(LockId id, sim::Duration hold, double mem = 0.35) {
    return lock(id).work(hold, mem).unlock(id);
  }
  ProgramBuilder& preempt_off(sim::Duration hold, double mem = 0.35) {
    ops_.push_back(OpPreemptDisable{});
    ops_.push_back(OpWork{hold, mem});
    ops_.push_back(OpPreemptEnable{});
    return *this;
  }
  ProgramBuilder& block(WaitQueueId wq) {
    ops_.push_back(OpBlock{wq});
    return *this;
  }
  ProgramBuilder& effect(std::function<void(Kernel&, Task&)> fn) {
    ops_.push_back(OpEffect{std::move(fn)});
    return *this;
  }
  ProgramBuilder& append(const KernelProgram& other) {
    ops_.insert(ops_.end(), other.begin(), other.end());
    return *this;
  }

  /// Consumes the builder (chainable on temporaries and lvalues alike).
  [[nodiscard]] KernelProgram build() { return std::move(ops_); }
  [[nodiscard]] const KernelProgram& ops() const { return ops_; }

 private:
  KernelProgram ops_;
};

}  // namespace kernel

// The 2.4 "goodness" scheduler.
//
// One global runqueue protected by one global lock; schedule() scans every
// runnable task computing goodness() — O(n) work under the lock on every
// context switch. RT tasks win via a large goodness boost; among OTHER
// tasks, remaining timeslice (counter) plus nice decides. The O(n) scan and
// the global lock are themselves jitter sources the O(1) scheduler removed,
// so the pick cost model reflects queue length.
#pragma once

#include <vector>

#include "kernel/scheduler.h"
#include "sim/rng.h"

namespace kernel {

class GoodnessScheduler final : public Scheduler {
 public:
  GoodnessScheduler(const config::KernelConfig& cfg, sim::Rng rng)
      : cfg_(cfg), rng_(rng) {}

  void init(int ncpus) override;
  void enqueue(Task& t, hw::CpuId cpu) override;
  void dequeue(Task& t) override;
  Task* pick_next(hw::CpuId cpu) override;
  sim::Duration pick_cost(hw::CpuId cpu) override;
  hw::CpuId select_cpu(const Task& t, hw::CpuMask allowed,
                       const std::function<bool(hw::CpuId)>& is_idle) override;
  bool task_tick(Task& t, hw::CpuId cpu) override;
  void refresh_timeslice(Task& t) override;
  std::size_t nr_runnable(hw::CpuId cpu) const override;
  const char* name() const override { return "goodness-2.4"; }

 private:
  [[nodiscard]] long goodness(const Task& t, hw::CpuId cpu) const;

  const config::KernelConfig& cfg_;
  sim::Rng rng_;
  int ncpus_ = 0;
  std::vector<Task*> runqueue_;      // global
  std::size_t last_pick_scan_ = 0;   // tasks scanned by the last pick
};

}  // namespace kernel

// Wait queues: where blocked tasks park until an event wakes them.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "kernel/task.h"

namespace kernel {

class WaitQueue {
 public:
  WaitQueue() = default;
  explicit WaitQueue(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool empty() const { return sleepers_.empty(); }
  [[nodiscard]] std::size_t size() const { return sleepers_.size(); }

  void add(Task& t) { sleepers_.push_back(&t); }
  void remove(Task& t) { std::erase(sleepers_, &t); }

  /// Dequeue the longest-waiting task, or nullptr.
  Task* pop_first() {
    if (sleepers_.empty()) return nullptr;
    Task* t = sleepers_.front();
    sleepers_.pop_front();
    return t;
  }

 private:
  std::string name_;
  std::deque<Task*> sleepers_;
};

}  // namespace kernel

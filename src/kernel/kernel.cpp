#include "kernel/kernel.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "kernel/goodness_scheduler.h"
#include "kernel/o1_scheduler.h"
#include "shield/shield_policy.h"
#include "sim/assert.h"

namespace kernel {

using namespace sim::literals;

namespace {

/// Per-CPU bottom-half daemon: drains deferred softirq work in chunks when
/// scheduled, sleeps otherwise.
class KsoftirqdBehavior final : public Behavior {
 public:
  KsoftirqdBehavior(hw::CpuId cpu, WaitQueueId wq) : cpu_(cpu), wq_(wq) {}

  Action next_action(Kernel& k, Task& /*task*/) override {
    CpuState& cs = k.cpu_mut(cpu_);
    const sim::Duration pending = cs.softirq.total_pending();
    if (pending == 0) {
      return SyscallAction{"ksoftirqd_wait",
                           ProgramBuilder{}.block(wq_).build()};
    }
    const sim::Duration chunk = std::min(pending, k.config().ksoftirqd_chunk);
    cs.softirq.take(chunk);
    return SyscallAction{"ksoftirqd_run",
                         ProgramBuilder{}.work(chunk, 0.5).build()};
  }

 private:
  hw::CpuId cpu_;
  WaitQueueId wq_;
};

bool lock_is_irq_safe(LockId id) {
  switch (id) {
    case LockId::kIoRequest:
    case LockId::kRcim:
      return true;
    // The BKL and the fs/net-layer locks run with interrupts open — the
    // precondition for §6.2's bottom-half perforation of hold times.
    case LockId::kBkl:
    case LockId::kFs:
    case LockId::kDcache:
    case LockId::kRtc:
    case LockId::kSocket:
    case LockId::kPipe:
    case LockId::kMm:
      return false;
    case LockId::kCount:
      break;
  }
  SIM_UNREACHABLE("bad lock id");
}

}  // namespace

Kernel::Kernel(sim::Engine& engine, const hw::Topology& topo,
               hw::MemorySystem& mem, hw::InterruptController& ic,
               config::KernelConfig cfg)
    : engine_(engine),
      topo_(topo),
      mem_(mem),
      ic_(ic),
      cfg_(std::move(cfg)),
      rng_(engine.rng().split()),
      auditor_(topo.logical_cpus()) {
  switch (cfg_.scheduler) {
    case config::SchedulerKind::kGoodness24:
      sched_ = std::make_unique<GoodnessScheduler>(cfg_, rng_.split());
      break;
    case config::SchedulerKind::kO1:
      sched_ = std::make_unique<O1Scheduler>(cfg_, rng_.split());
      break;
  }
  sched_->init(topo_.logical_cpus());

  cpus_.resize(static_cast<std::size_t>(topo_.logical_cpus()));
  for (int i = 0; i < topo_.logical_cpus(); ++i) {
    cpus_[static_cast<std::size_t>(i)].id = i;
  }

  for (int i = 0; i < static_cast<int>(LockId::kCount); ++i) {
    const auto id = static_cast<LockId>(i);
    locks_[static_cast<std::size_t>(i)] = SpinLock(id, lock_is_irq_safe(id));
  }

  local_timer_ = std::make_unique<hw::LocalTimer>(engine_, topo_,
                                                  cfg_.local_timer_period);
  // The hw edges deliver into the mechanism layer, not the kernel directly:
  // the lambdas read pipeline_ at fire time, so set_mechanism needs no
  // re-hooking.
  pipeline_ = std::make_unique<InBandPipeline>(*this);
  local_timer_->set_tick_fn(
      [this](hw::CpuId cpu) { pipeline_->timer_tick(cpu); });

  register_telemetry();
  register_proc_files();
}

void Kernel::set_mechanism(MechanismKind kind) {
  if (pipeline_->kind() == kind) return;
  SIM_ASSERT_MSG(kind == MechanismKind::kOob &&
                     pipeline_->kind() == MechanismKind::kInBand,
                 "mechanism can only move from inband to oob");
  pipeline_ = std::make_unique<OobPipeline>(*this);
}

Kernel::~Kernel() = default;

CpuState& Kernel::cpu_mut(hw::CpuId id) {
  SIM_ASSERT(topo_.valid_cpu(id));
  return cpus_[static_cast<std::size_t>(id)];
}

const CpuState& Kernel::cpu(hw::CpuId id) const {
  SIM_ASSERT(topo_.valid_cpu(id));
  return cpus_[static_cast<std::size_t>(id)];
}

bool Kernel::cpu_busy(hw::CpuId id) const {
  const CpuState& cs = cpu(id);
  return cs.current != nullptr || !cs.irq_frames.empty() || cs.switching;
}

void Kernel::trace(sim::TraceCategory cat, hw::CpuId cpu, std::string msg) {
  engine_.trace().record(engine_.now(), cat, cpu, std::move(msg));
}

// ---- setup ------------------------------------------------------------------

Task& Kernel::create_task(TaskParams params, std::unique_ptr<Behavior> behavior) {
  auto task = std::make_unique<Task>();
  task->pid = next_pid_++;
  task->name = std::move(params.name);
  task->policy = params.policy;
  task->rt_priority = params.rt_priority;
  task->nice = params.nice;
  task->mlocked = params.mlocked;
  task->nominal_memory_intensity = params.memory_intensity;
  task->user_affinity =
      params.affinity.empty() ? topo_.all_cpus() : params.affinity & topo_.all_cpus();
  SIM_ASSERT_MSG(!task->user_affinity.empty(), "task affinity has no valid CPU");
  task->effective_affinity =
      shield::effective_affinity(task->user_affinity, proc_shield_);
  task->behavior = std::move(behavior);
  task->state = TaskState::kNew;
  tasks_.push_back(std::move(task));
  Task& ref = *tasks_.back();

  // /proc/<pid>/stat with the fields this model tracks (tick-sampled
  // times, like the real file; HZ=100 so a tick is 10 ms).
  Task* tp = &ref;
  procfs_.register_file(
      "/proc/" + std::to_string(ref.pid) + "/stat", [tp] {
        char buf[256];
        std::snprintf(buf, sizeof buf, "%d (%s) %c %llu %llu %llu %d\n",
                      tp->pid, tp->name.c_str(),
                      tp->state == TaskState::kRunning    ? 'R'
                      : tp->state == TaskState::kReady    ? 'R'
                      : tp->state == TaskState::kBlocked  ? 'S'
                      : tp->state == TaskState::kExited   ? 'Z'
                                                          : 'N',
                      static_cast<unsigned long long>(tp->utime_ticks),
                      static_cast<unsigned long long>(tp->stime_ticks),
                      static_cast<unsigned long long>(tp->minor_faults),
                      tp->cpu);
        return std::string(buf);
      });

  if (started_) make_runnable(ref);
  return ref;
}

std::size_t Kernel::reap_exited() {
  std::size_t reaped = 0;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    Task& t = **it;
    if (t.state == TaskState::kExited) {
      SIM_ASSERT(!t.on_runqueue && t.waiting_on == kNoWaitQueue);
      procfs_.remove("/proc/" + std::to_string(t.pid) + "/stat");
      it = tasks_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

void Kernel::register_irq_handler(hw::Irq irq, IrqHandler handler) {
  SIM_ASSERT(irq >= 0 && irq < hw::kMaxIrq);
  irq_handlers_[static_cast<std::size_t>(irq)] = std::move(handler);
}

bool Kernel::irq_handler_registered(hw::Irq irq) const {
  SIM_ASSERT(irq >= 0 && irq < hw::kMaxIrq);
  const IrqHandler& h = irq_handlers_[static_cast<std::size_t>(irq)];
  return static_cast<bool>(h.effects) || !h.name.empty();
}

void Kernel::inject_cpu_stall(hw::CpuId cpu, sim::Duration stall) {
  SIM_ASSERT(topo_.valid_cpu(cpu));
  SIM_ASSERT(stall > 0);
  cpu_mut(cpu).smi_stall_budget += stall;
  // The pending-vector list dedups by vector, so back-to-back stalls while
  // interrupts are masked coalesce into one frame that takes the summed
  // budget — exactly how piled-up SMIs behave.
  deliver_vector(cpu, kVectorSmi);
}

void Kernel::spawn_ksoftirqd(hw::CpuId cpu) {
  CpuState& cs = cpu_mut(cpu);
  cs.ksoftirqd_wq = create_wait_queue("ksoftirqd/" + std::to_string(cpu));
  TaskParams p;
  p.name = "ksoftirqd/" + std::to_string(cpu);
  p.policy = SchedPolicy::kOther;
  p.nice = cfg_.softirq_daemon_offload ? 0 : 19;
  p.affinity = hw::CpuMask::single(cpu);
  p.memory_intensity = 0.4;
  cs.ksoftirqd = &create_task(
      std::move(p), std::make_unique<KsoftirqdBehavior>(cpu, cs.ksoftirqd_wq));
}

void Kernel::start() {
  SIM_ASSERT(!started_);
  started_ = true;

  ic_.set_deliver_fn(
      [this](hw::CpuId cpu, hw::Irq irq) { pipeline_->device_irq(cpu, irq); });
  ic_.set_idle_query([this](hw::CpuId cpu) { return cpu_idle(cpu); });

  for (hw::CpuId cpu = 0; cpu < topo_.logical_cpus(); ++cpu) {
    spawn_ksoftirqd(cpu);
  }
  local_timer_->start();

  // Make all pre-created tasks runnable.
  for (auto& t : tasks_) {
    if (t->state == TaskState::kNew) make_runnable(*t);
  }
}

// ---- administrative plane ------------------------------------------------------

bool Kernel::sched_setaffinity(Task& t, hw::CpuMask mask) {
  mask = mask & topo_.all_cpus();
  if (mask.empty()) return false;
  t.user_affinity = mask;
  t.effective_affinity = shield::effective_affinity(mask, proc_shield_);
  // Stage-owned tasks only record the masks: oob placement is fixed at
  // adoption and shielding cannot move the stage.
  if (pipeline_->owns(t)) return true;
  // Requeue if parked on a CPU it may no longer use.
  if (t.on_runqueue) {
    sched_->dequeue(t);
    t.state = TaskState::kReady;
    const hw::CpuId target = sched_->select_cpu(
        t, t.effective_affinity, [this](hw::CpuId c) { return cpu_idle(c); });
    sched_->enqueue(t, target);
    check_preempt(target, t);
  } else if (t.state == TaskState::kRunning && t.cpu >= 0 &&
             !t.effective_affinity.test(t.cpu)) {
    // Running somewhere now forbidden: force a reschedule.
    CpuState& cs = cpu_mut(t.cpu);
    cs.need_resched = true;
    if (cs.irq_frames.empty() && !cs.switching &&
        (t.in_user_mode() || kernel_preemptible(t))) {
      preempt_current(t.cpu);
    }
  }
  return true;
}

void Kernel::set_policy(Task& t, SchedPolicy policy, int rt_priority) {
  SIM_ASSERT(policy == SchedPolicy::kOther ||
             (rt_priority >= 1 && rt_priority <= 99));
  if (t.on_runqueue) {
    // Re-slot under the new priority.
    sched_->dequeue(t);
    t.policy = policy;
    t.rt_priority = policy == SchedPolicy::kOther ? 0 : rt_priority;
    const hw::CpuId target = sched_->select_cpu(
        t, t.effective_affinity, [this](hw::CpuId c) { return cpu_idle(c); });
    sched_->enqueue(t, target);
    check_preempt(target, t);
    return;
  }
  t.policy = policy;
  t.rt_priority = policy == SchedPolicy::kOther ? 0 : rt_priority;
}

void Kernel::set_process_shield_mask(hw::CpuMask mask) {
  SIM_ASSERT_MSG(cfg_.shield_support || mask.empty(),
                 "this kernel has no shield support");
  proc_shield_ = mask & topo_.all_cpus();
}

void Kernel::reapply_affinities() {
  for (auto& tp : tasks_) {
    Task& t = *tp;
    if (t.state == TaskState::kExited) continue;
    const hw::CpuMask effective =
        shield::effective_affinity(t.user_affinity, proc_shield_);
    if (effective == t.effective_affinity) continue;
    t.effective_affinity = effective;
    if (pipeline_->owns(t)) continue;
    if (t.on_runqueue) {
      sched_->dequeue(t);
      const hw::CpuId target = sched_->select_cpu(
          t, t.effective_affinity, [this](hw::CpuId c) { return cpu_idle(c); });
      sched_->enqueue(t, target);
      check_preempt(target, t);
    } else if (t.state == TaskState::kRunning && t.cpu >= 0 &&
               !effective.test(t.cpu)) {
      CpuState& cs = cpu_mut(t.cpu);
      cs.need_resched = true;
      if (cs.irq_frames.empty() && !cs.switching &&
          (t.in_user_mode() || kernel_preemptible(t))) {
        preempt_current(t.cpu);
      }
      trace(sim::TraceCategory::kShield, t.cpu, "migrating " + t.name + " off");
    }
  }
}

// ---- wait queues & wakeups -------------------------------------------------------

WaitQueueId Kernel::create_wait_queue(std::string name) {
  wait_queues_.push_back(std::make_unique<WaitQueue>(std::move(name)));
  return static_cast<WaitQueueId>(wait_queues_.size()) - 1;
}

WaitQueue& Kernel::wait_queue(WaitQueueId id) {
  SIM_ASSERT(id >= 0 && static_cast<std::size_t>(id) < wait_queues_.size());
  return *wait_queues_[static_cast<std::size_t>(id)];
}

void Kernel::wake_up_one(WaitQueueId id) {
  Task* t = wait_queue(id).pop_first();
  if (t != nullptr) {
    t->waiting_on = kNoWaitQueue;
    wake_task(*t);
  }
}

void Kernel::wake_up_all(WaitQueueId id) {
  while (Task* t = wait_queue(id).pop_first()) {
    t->waiting_on = kNoWaitQueue;
    wake_task(*t);
  }
}

void Kernel::wake_task(Task& t) {
  if (t.state != TaskState::kBlocked) return;
  if (t.waiting_on != kNoWaitQueue) {
    wait_queue(t.waiting_on).remove(t);
    t.waiting_on = kNoWaitQueue;
  }
  make_runnable(t);
}

void Kernel::make_runnable(Task& t) {
  if (pipeline_->owns(t)) {
    // Stage-owned tasks never touch the in-band runqueues: the oob
    // scheduler switches them in itself.
    pipeline_->on_runnable(t);
    return;
  }
  SIM_ASSERT(t.state != TaskState::kRunning && !t.on_runqueue);
  t.state = TaskState::kReady;
  t.last_wake = engine_.now();
  t.freshly_woken = true;
  auditor_.task_woken(engine_.now());
  take_wake_chain(t);
  hw::CpuId target = sched_->select_cpu(
      t, t.effective_affinity, [this](hw::CpuId c) { return cpu_idle(c); });
  if (t.is_rt() && !cpu_idle(target)) {
    // reschedule_idle() semantics for RT wakeups: with no idle CPU, place
    // the task where it can preempt soonest — a CPU whose current context
    // is immediately preemptible beats one stuck in a non-preemptible
    // syscall or a bottom-half storm.
    int best_score = -1;
    t.effective_affinity.for_each([&](hw::CpuId c) {
      const CpuState& cs = cpu(c);
      int score = 0;
      if (cpu_idle(c)) {
        score = 4;
      } else if (cs.switching || !cs.irq_frames.empty()) {
        score = 1;
      } else if (cs.current != nullptr && sched_->preempts(t, *cs.current)) {
        score = cs.current->in_user_mode() || kernel_preemptible(*cs.current)
                    ? 3
                    : 1;
      }
      if (score > best_score) {
        best_score = score;
        target = c;
      }
    });
  }
  SIM_ASSERT(t.effective_affinity.test(target));
  sched_->enqueue(t, target);
  check_preempt(target, t);
}

void Kernel::take_wake_chain(Task& t) {
  if (!wake_chain_.valid()) return;
  if (wake_chain_oob_only_ && !pipeline_->owns(t)) return;
  // First task woken inside the attribution window inherits the latency
  // chain: the segment up to now is the waker's context (irq handler or
  // timer expiry); what follows is this task's runqueue wait.
  sim::ChainTracer& tracer = engine_.chain_tracer();
  tracer.mark(wake_chain_, wake_chain_kind_, wake_chain_cpu_, engine_.now());
  if (t.chain.valid()) tracer.abandon(t.chain);
  t.chain = wake_chain_;
  wake_chain_ = {};
}

std::optional<sim::LatencyChain> Kernel::finish_latency_chain(Task& t) {
  if (!t.chain.valid()) return std::nullopt;
  auto out = engine_.chain_tracer().close(t.chain, sim::SegmentKind::kKernelExit,
                                          t.cpu, engine_.now());
  t.chain = {};
  return out;
}

// ---- kernel timers ------------------------------------------------------------------

sim::Time Kernel::quantize_expiry(sim::Time ideal) const {
  if (cfg_.posix_timers) return ideal;
  // Classic 2.4: the timer wheel runs off the jiffy tick; an expiry lands
  // on the first tick at or after its ideal time.
  const sim::Duration p = cfg_.local_timer_period;
  return (ideal + p - 1) / p * p;
}

Kernel::TimerId Kernel::arm_periodic_timer(WaitQueueId wq,
                                           sim::Duration period) {
  SIM_ASSERT(period > 0);
  SIM_ASSERT(wq != kNoWaitQueue);
  const auto id = static_cast<TimerId>(timers_.size());
  KernelTimer timer;
  timer.wq = wq;
  timer.period = period;
  timer.armed = true;
  timers_.push_back(timer);
  const sim::Time at =
      std::max(quantize_expiry(engine_.now() + period), engine_.now() + 1);
  timers_[static_cast<std::size_t>(id)].pending =
      engine_.schedule_at(at, [this, id] { timer_fire(id); });
  return id;
}

void Kernel::timer_fire(TimerId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (!timers_[idx].armed) return;
  timers_[idx].expirations++;
  timers_[idx].last_expiry = engine_.now();
  // Timer-wheel expiry processing happens in bottom-half context; charge a
  // small amount of work where the expiry ran (CPU 0: the 2.4 wheel was
  // driven from the boot CPU's tick).
  cpu_mut(0).softirq.raise(SoftirqType::kTimer, 2 * sim::kMicrosecond);
  sim::ChainTracer& tracer = engine_.chain_tracer();
  if (tracer.enabled()) {
    // Timer-driven wakeups (cyclictest) originate here rather than at a
    // device edge; the expiry runs off the boot CPU's tick (see above).
    wake_chain_ = tracer.open("ktimer", engine_.now());
    wake_chain_kind_ = sim::SegmentKind::kTimerExpiry;
    wake_chain_cpu_ = 0;
  }
  // NOTE: waking may run behaviors that arm new timers, reallocating
  // timers_ — never hold a reference across this call.
  wake_up_all(timers_[idx].wq);
  tracer.abandon(wake_chain_);
  wake_chain_ = {};
  if (!timers_[idx].armed) return;  // a woken task may have cancelled us
  const sim::Time ideal_next = engine_.now() + timers_[idx].period;
  const sim::Time at =
      std::max(quantize_expiry(ideal_next), engine_.now() + 1);
  timers_[idx].pending =
      engine_.schedule_at(at, [this, id] { timer_fire(id); });
}

void Kernel::cancel_timer(TimerId id) {
  SIM_ASSERT(id >= 0 && static_cast<std::size_t>(id) < timers_.size());
  KernelTimer& t = timers_[static_cast<std::size_t>(id)];
  if (!t.armed) return;
  t.armed = false;
  engine_.cancel(t.pending);
}

std::uint64_t Kernel::timer_expirations(TimerId id) const {
  SIM_ASSERT(id >= 0 && static_cast<std::size_t>(id) < timers_.size());
  return timers_[static_cast<std::size_t>(id)].expirations;
}

sim::Time Kernel::timer_last_expiry(TimerId id) const {
  SIM_ASSERT(id >= 0 && static_cast<std::size_t>(id) < timers_.size());
  return timers_[static_cast<std::size_t>(id)].last_expiry;
}

// ---- softirq policy --------------------------------------------------------------

void Kernel::raise_softirq(hw::CpuId cpu, SoftirqType type, sim::Duration work) {
  if (work == 0) return;
  CpuState& cs = cpu_mut(cpu);
  cs.softirq.raise(type, work);
  engine_.flight_recorder().record(engine_.now(),
                                   telemetry::EventKind::kSoftirqRaise, cpu,
                                   static_cast<std::int32_t>(type));
  // Raised from task context (no irq frame active on that CPU): the real
  // kernel would run do_softirq at local_bh_enable; we hand the work to
  // ksoftirqd, which is immediately runnable.
  const bool in_irq_context = !cs.irq_frames.empty();
  if (!in_irq_context && cs.ksoftirqd_wq != kNoWaitQueue) {
    wake_up_one(cs.ksoftirqd_wq);
  }
}

// ---- locks ------------------------------------------------------------------------

SpinLock& Kernel::lock(LockId id) {
  SIM_ASSERT(id != LockId::kCount);
  return locks_[static_cast<std::size_t>(id)];
}

// ---- sampling ------------------------------------------------------------------------

sim::Duration Kernel::sample_section() {
  return rng_.bounded_pareto_duration(cfg_.section_min, cfg_.section_max,
                                      cfg_.section_alpha);
}

sim::Duration Kernel::sample_syscall_body(sim::Duration typical) {
  if (typical == 0) return 0;
  if (typical >= cfg_.syscall_body_max) return cfg_.syscall_body_max;
  // Common case: exponential around the typical value, clamped so routine
  // calls stay routine. Rare case: the pathological long operation.
  const sim::Duration knee =
      std::min(std::max<sim::Duration>(8 * typical, 2 * sim::kMillisecond),
               cfg_.syscall_body_max);
  if (rng_.chance(cfg_.body_long_probability) && knee < cfg_.syscall_body_max) {
    return rng_.bounded_pareto_duration(knee, cfg_.syscall_body_max,
                                        cfg_.body_long_alpha);
  }
  return std::min(rng_.exponential_duration(typical), knee);
}

// ---- introspection ----------------------------------------------------------------

Task* Kernel::find_task(Pid pid) {
  for (auto& t : tasks_) {
    if (t->pid == pid) return t.get();
  }
  return nullptr;
}

Task* Kernel::find_task(const std::string& name) {
  for (auto& t : tasks_) {
    if (t->name == name) return t.get();
  }
  return nullptr;
}

// ---- telemetry ------------------------------------------------------------------------

const std::vector<LatencyCounterView>& latency_counter_views() {
  // Order is the render order of /proc/latency/cpuN and of each per-CPU
  // object in latency_report_json. The PR 2 counters come first (existing
  // consumers parse by key, but stable order keeps text diffs quiet); the
  // fault-visible counters (softirq floods, lock-holder delays, SMI stalls)
  // follow.
  static const std::vector<LatencyCounterView> kViews = {
      {"spin_wait_ns", "kernel.spin_wait_ns"},
      {"bkl_hold_ns", "kernel.bkl_hold_ns"},
      {"irq_ns", "kernel.irq_time_ns"},
      {"softirq_ns", "kernel.softirq_time_ns"},
      {"hardirqs", "kernel.hardirqs"},
      {"switches", "sched.switches"},
      {"softirq_raised", "kernel.softirq_raised"},
      {"smi_stalls", "kernel.smi_stalls"},
      {"lock_hold_ns", "kernel.lock_hold_ns"},
      {"irq_off_max_ns", "kernel.irq_off_max_ns"},
      {"preempt_off_max_ns", "kernel.preempt_off_max_ns"},
  };
  return kViews;
}

namespace {

std::uint64_t as_u64(sim::Duration d) {
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

void Kernel::register_telemetry() {
  telemetry::Registry& reg = engine_.telemetry();
  const int n = topo_.logical_cpus();
  // Gauges over the existing CpuState accounting: snapshot-time reads, zero
  // cost on the execution paths that maintain the fields.
  reg.gauge("kernel.spin_wait_ns", "ns tasks on this CPU spun on locks", n,
            "cpu", [this](int c) { return as_u64(cpu(c).spin_wait_time); });
  reg.gauge("kernel.bkl_hold_ns", "ns the BKL was held from this CPU", n,
            "cpu", [this](int c) { return as_u64(cpu(c).bkl_hold_time); });
  reg.gauge("kernel.irq_time_ns", "ns spent in hardirq context", n, "cpu",
            [this](int c) { return as_u64(cpu(c).irq_time); });
  reg.gauge("kernel.softirq_time_ns", "ns spent draining softirq work", n,
            "cpu", [this](int c) { return as_u64(cpu(c).softirq_time); });
  reg.gauge("kernel.hardirqs", "hardirq frames entered", n, "cpu",
            [this](int c) { return cpu(c).hardirqs; });
  reg.gauge("sched.switches", "context switches completed", n, "cpu",
            [this](int c) { return cpu(c).switches; });
  reg.gauge("kernel.softirq_raised", "softirq raise events", n, "cpu",
            [this](int c) { return cpu(c).softirq.total_raised(); });
  reg.gauge("kernel.softirq_pending_ns", "queued bottom-half work, ns", n,
            "cpu",
            [this](int c) { return as_u64(cpu(c).softirq.total_pending()); });
  reg.gauge("kernel.smi_stalls", "injected SMI-like stalls taken", n, "cpu",
            [this](int c) { return cpu(c).smi_stalls; });
  reg.gauge("kernel.irq_off_max_ns", "longest interrupts-off stretch", n,
            "cpu", [this](int c) {
              const auto& h = auditor_.irq_off(c);
              return h.count() > 0 ? as_u64(h.max()) : 0;
            });
  reg.gauge("kernel.preempt_off_max_ns", "longest non-preemptible stretch",
            n, "cpu", [this](int c) {
              const auto& h = auditor_.preempt_off(c);
              return h.count() > 0 ? as_u64(h.max()) : 0;
            });
  reg.gauge("kernel.syscalls", "syscalls entered, all tasks", 1, "",
            [this](int) {
              std::uint64_t sum = 0;
              for (const auto& t : tasks_) sum += t->syscalls;
              return sum;
            });
  reg.gauge("sched.rt_latency_max_ns",
            "worst wakeup-to-run latency, RT tasks", 1, "", [this](int) {
              const auto& h = auditor_.rt_sched_latency();
              return h.count() > 0 ? as_u64(h.max()) : 0;
            });
  lock_hold_counter_ = reg.counter(
      "kernel.lock_hold_ns", "ns of lock hold time released from this CPU",
      n, "cpu");

  // Per-lock statistics, cells keyed by lock id.
  std::vector<std::string> lock_names;
  for (int i = 0; i < static_cast<int>(LockId::kCount); ++i) {
    lock_names.emplace_back(to_string(static_cast<LockId>(i)));
  }
  const int nlocks = static_cast<int>(LockId::kCount);
  auto lock_at = [this](int i) -> const SpinLock& {
    return locks_[static_cast<std::size_t>(i)];
  };
  reg.gauge("lock.acquisitions", "times the lock was taken", nlocks, "lock",
            [lock_at](int i) { return lock_at(i).acquisitions(); },
            lock_names);
  reg.gauge("lock.contentions", "acquisitions that had to spin", nlocks,
            "lock", [lock_at](int i) { return lock_at(i).contentions(); },
            lock_names);
  reg.gauge("lock.wait_ns", "total ns spinners waited", nlocks, "lock",
            [lock_at](int i) { return as_u64(lock_at(i).total_wait()); },
            lock_names);
  reg.gauge("lock.hold_ns", "total ns the lock was held", nlocks, "lock",
            [lock_at](int i) { return as_u64(lock_at(i).total_hold()); },
            lock_names);
}

std::uint64_t Kernel::latency_counter(std::string_view series,
                                      hw::CpuId cpu) const {
  return engine_.telemetry().value(series, cpu);
}

void Kernel::reset_latency_counters() {
  for (auto& cs : cpus_) {
    cs.irq_time = 0;
    cs.softirq_time = 0;
    cs.switches = 0;
    cs.hardirqs = 0;
    cs.spin_wait_time = 0;
    cs.bkl_hold_time = 0;
    cs.smi_stalls = 0;
    cs.oob_preemptions = 0;
    cs.softirq.reset_counts();
  }
  for (auto& l : locks_) l.reset_counters();
  for (auto& t : tasks_) t->syscalls = 0;
  auditor_.reset();
  ic_.reset_counters();
  engine_.telemetry().reset();
  // Observability residue from the first window: chain-tracer statistics
  // and the post-mortem ring would otherwise leak warmup events into the
  // second window's exports and flight dumps.
  engine_.chain_tracer().reset_stats();
  engine_.flight_recorder().clear();
}

// ---- procfs ---------------------------------------------------------------------------

void Kernel::register_proc_files() {
  for (hw::Irq irq = 0; irq < hw::kMaxIrq; ++irq) {
    const std::string path =
        "/proc/irq/" + std::to_string(irq) + "/smp_affinity";
    procfs_.register_file(
        path, [this, irq] { return ic_.affinity(irq).to_hex() + "\n"; },
        [this, irq](std::string_view data) {
          hw::CpuMask mask;
          if (!hw::CpuMask::parse_hex(data, mask)) return false;
          if ((mask & topo_.all_cpus()).empty()) return false;
          ic_.set_affinity(irq, mask);
          return true;
        });
  }
  procfs_.register_file("/proc/interrupts", [this] {
    std::string out = "           ";
    for (int c = 0; c < topo_.logical_cpus(); ++c) {
      out += "CPU" + std::to_string(c) + "        ";
    }
    out += "\n";
    for (hw::Irq irq = 0; irq < hw::kMaxIrq; ++irq) {
      if (ic_.raise_count(irq) == 0) continue;
      out += std::to_string(irq) + ":  ";
      for (int c = 0; c < topo_.logical_cpus(); ++c) {
        out += std::to_string(ic_.delivery_count(irq, c)) + "  ";
      }
      out += "\n";
    }
    return out;
  });
  // Per-CPU latency counters (the tracing subsystem's always-on half):
  // where each CPU's response-time budget went, in ns. Rendered from the
  // telemetry registry through the shared view table, so this file and
  // kernel::latency_report_json cannot drift apart.
  for (hw::CpuId c = 0; c < topo_.logical_cpus(); ++c) {
    procfs_.register_file(
        "/proc/latency/cpu" + std::to_string(c), [this, c] {
          std::string out;
          for (const LatencyCounterView& v : latency_counter_views()) {
            out += std::string(v.key) + " " +
                   std::to_string(latency_counter(v.series, c)) + "\n";
          }
          return out;
        });
  }
  // The whole registry in Prometheus text exposition format.
  procfs_.register_file("/proc/telemetry",
                        [this] { return engine_.telemetry().prometheus_text(); });
  procfs_.register_file("/proc/latency/locks", [this] {
    std::string out =
        "lock        acquisitions contentions      wait_ns      hold_ns\n";
    for (std::size_t i = 0; i < locks_.size(); ++i) {
      const SpinLock& l = locks_[i];
      if (l.acquisitions() == 0) continue;
      std::string name = to_string(static_cast<LockId>(i));
      name.resize(12, ' ');
      out += name + std::to_string(l.acquisitions()) + " " +
             std::to_string(l.contentions()) + " " +
             std::to_string(l.total_wait()) + " " +
             std::to_string(l.total_hold()) + "\n";
    }
    return out;
  });
}

// ---- sleep rounding ---------------------------------------------------------------------

sim::Duration Kernel::round_sleep(sim::Duration requested) const {
  if (cfg_.posix_timers) return requested;
  // Classic 2.4: the wakeup lands on the next tick at or after expiry.
  const sim::Duration p = cfg_.local_timer_period;
  return (requested + p - 1) / p * p;
}

}  // namespace kernel

#include "kernel/latency_auditor.h"

#include <algorithm>

#include "sim/assert.h"

namespace kernel {

LatencyAuditor::LatencyAuditor(int ncpus)
    : cpus_(static_cast<std::size_t>(ncpus)) {}

void LatencyAuditor::irqs_masked(int cpu, sim::Time now) {
  PerCpu& c = cpus_[static_cast<std::size_t>(cpu)];
  SIM_ASSERT(!c.irq_off_active);
  c.irq_off_active = true;
  c.irq_off_since = now;
}

void LatencyAuditor::irqs_unmasked(int cpu, sim::Time now) {
  PerCpu& c = cpus_[static_cast<std::size_t>(cpu)];
  SIM_ASSERT(c.irq_off_active);
  c.irq_off_active = false;
  c.irq_off.add(now - c.irq_off_since);
}

void LatencyAuditor::preempt_disabled(int cpu, sim::Time now) {
  PerCpu& c = cpus_[static_cast<std::size_t>(cpu)];
  SIM_ASSERT(!c.preempt_off_active);
  c.preempt_off_active = true;
  c.preempt_off_since = now;
}

void LatencyAuditor::preempt_enabled(int cpu, sim::Time now) {
  PerCpu& c = cpus_[static_cast<std::size_t>(cpu)];
  SIM_ASSERT(c.preempt_off_active);
  c.preempt_off_active = false;
  c.preempt_off.add(now - c.preempt_off_since);
}

void LatencyAuditor::task_woken(sim::Time /*now*/) {}

void LatencyAuditor::irq_dispatched(int cpu, sim::Duration latency) {
  cpus_[static_cast<std::size_t>(cpu)].dispatch.add(latency);
}

void LatencyAuditor::task_scheduled_in(sim::Time wake_time, sim::Time now,
                                       bool rt) {
  if (now < wake_time) return;  // task was never off the CPU
  const sim::Duration lat = now - wake_time;
  sched_latency_.add(lat);
  if (rt) rt_sched_latency_.add(lat);
}

const metrics::LatencyHistogram& LatencyAuditor::irq_off(int cpu) const {
  return cpus_[static_cast<std::size_t>(cpu)].irq_off;
}

const metrics::LatencyHistogram& LatencyAuditor::preempt_off(int cpu) const {
  return cpus_[static_cast<std::size_t>(cpu)].preempt_off;
}

const metrics::LatencyHistogram& LatencyAuditor::irq_dispatch(int cpu) const {
  return cpus_[static_cast<std::size_t>(cpu)].dispatch;
}

sim::Duration LatencyAuditor::worst_irq_off() const {
  sim::Duration worst = 0;
  for (const auto& c : cpus_) {
    if (c.irq_off.count() > 0) worst = std::max(worst, c.irq_off.max());
  }
  return worst;
}

void LatencyAuditor::reset() {
  for (auto& c : cpus_) {
    c.irq_off.clear();
    c.preempt_off.clear();
    c.dispatch.clear();
  }
  rt_sched_latency_.clear();
  sched_latency_.clear();
}

sim::Duration LatencyAuditor::worst_preempt_off() const {
  sim::Duration worst = 0;
  for (const auto& c : cpus_) {
    if (c.preempt_off.count() > 0) {
      worst = std::max(worst, c.preempt_off.max());
    }
  }
  return worst;
}

}  // namespace kernel

// Umbrella header: the whole public API of the shieldsim library.
//
//   #include "shieldsim.h"
//
// pulls in the platform assembly, kernel, shield controller, workloads, RT
// measurement apps, and metrics. Individual headers remain includable for
// finer-grained dependencies.
#pragma once

#include "config/kernel_config.h"
#include "config/machine_config.h"
#include "config/platform.h"
#include "hw/cpu_mask.h"
#include "hw/topology.h"
#include "kernel/kernel.h"
#include "kernel/stats_report.h"
#include "kernel/syscalls.h"
#include "metrics/histogram.h"
#include "metrics/report.h"
#include "metrics/summary.h"
#include "rt/determinism_test.h"
#include "rt/rcim_test.h"
#include "rt/cyclictest.h"
#include "rt/realfeel_test.h"
#include "shield/shield_controller.h"
#include "shield/shield_policy.h"
#include "sim/engine.h"
#include "workload/crashme.h"
#include "workload/disk_noise.h"
#include "workload/fifos_mmap.h"
#include "workload/fs_stress.h"
#include "workload/hackbench.h"
#include "workload/legacy_ioctl.h"
#include "workload/nfs_compile.h"
#include "workload/p3_fpu.h"
#include "workload/scp_copy.h"
#include "workload/stress_kernel.h"
#include "workload/ttcp.h"
#include "workload/workload.h"
#include "workload/x11perf.h"

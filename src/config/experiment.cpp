#include "config/experiment.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "fault/fault_plan.h"
#include "hw/interrupt_controller.h"

namespace config {
namespace {

using json::Value;

Value obj(std::initializer_list<std::pair<const char*, Value>> kv) {
  Value v = Value::object();
  for (const auto& [key, val] : kv) v.set(key, val);
  return v;
}

WorkloadRef wl(const char* name, Value params = Value::object()) {
  return WorkloadRef{name, std::move(params)};
}

ShieldPlan shield_all_cpu(int cpu) {
  ShieldPlan s;
  s.mode = ShieldPlan::Mode::kShieldAll;
  s.cpu = cpu;
  return s;
}

ShieldPlan dedicate_cpu(int cpu) {
  ShieldPlan s;
  s.mode = ShieldPlan::Mode::kDedicate;
  s.cpu = cpu;
  return s;
}

ShieldPlan components(int cpu, bool procs, bool irqs, bool ltmr) {
  ShieldPlan s;
  s.mode = ShieldPlan::Mode::kComponents;
  s.cpu = cpu;
  s.procs = procs;
  s.irqs = irqs;
  s.ltmr = ltmr;
  s.bind_irq = true;
  return s;
}

DurationPolicy factor_margin(double factor, sim::Duration margin) {
  DurationPolicy d;
  d.factor = factor;
  d.margin_ns = margin;
  return d;
}

DurationPolicy fixed(sim::Duration ns) {
  DurationPolicy d;
  d.fixed_ns = ns;
  return d;
}

// ---- figures ---------------------------------------------------------------

void add_figures(ScenarioRegistry& reg) {
  // Figures 1-4: execution determinism under scp + disknoise (§5).
  const auto determinism_fig = [](const char* name, const char* title,
                                  const char* kernel, bool shield,
                                  std::optional<bool> ht, const char* paper) {
    ScenarioSpec s;
    s.name = name;
    s.title = title;
    s.description = std::string("determinism, ") + title + " (paper: " +
                    paper + ")";
    s.group = "figure";
    s.machine = "dual-p4-1400";
    s.kernel = kernel;
    s.ht_override = ht;
    s.workloads = {wl("scp-copy"), wl("disknoise")};
    s.probe = "determinism";
    s.probe_params = shield ? obj({{"iterations", 60}, {"affinity_cpu", 1}})
                            : obj({{"iterations", 60}});
    if (shield) s.shield = shield_all_cpu(1);
    s.duration = factor_margin(2.0, 10 * sim::kSecond);
    s.paper_ref = paper;
    return s;
  };
  reg.add(determinism_fig("fig1", "Figure 1: kernel.org 2.4.20 (hyperthreading)",
                          "vanilla-2.4.20", false, std::nullopt,
                          "26.17% jitter"));
  reg.add(determinism_fig("fig2", "Figure 2: RedHawk 1.4, shielded CPU",
                          "redhawk-1.4", true, std::nullopt, "1.87% jitter"));
  reg.add(determinism_fig("fig3", "Figure 3: RedHawk 1.4, unshielded CPU",
                          "redhawk-1.4", false, std::nullopt, "14.82% jitter"));
  reg.add(determinism_fig("fig4",
                          "Figure 4: kernel.org 2.4.20 (no hyperthreading)",
                          "vanilla-2.4.20", false, false, "13.15% jitter"));

  // Figures 5-6 (+ the [5] configuration): realfeel under stress-kernel.
  const auto realfeel_fig = [](const char* name, const char* title,
                               const char* kernel, bool shield,
                               const char* paper) {
    ScenarioSpec s;
    s.name = name;
    s.title = title;
    s.description = std::string("realfeel response, ") + title +
                    " (paper: " + paper + ")";
    s.group = "figure";
    s.machine = "dual-p3-933";
    s.kernel = kernel;
    s.workloads = {wl("stress-kernel")};
    s.probe = "realfeel";
    s.probe_params = shield
                         ? obj({{"samples", 2'000'000}, {"affinity_cpu", 1}})
                         : obj({{"samples", 2'000'000}});
    if (shield) s.shield = dedicate_cpu(1);
    s.duration = factor_margin(1.5, 5 * sim::kSecond);
    s.paper_ref = paper;
    return s;
  };
  reg.add(realfeel_fig("fig5", "Figure 5: kernel.org 2.4.20",
                       "vanilla-2.4.20", false,
                       "max 92.3 ms (99.140% < 0.1 ms)"));
  reg.add(realfeel_fig("fig6",
                       "Figure 6: RedHawk 1.4, CPU 1 shielded "
                       "(procs+irqs+ltmr)",
                       "redhawk-1.4", true,
                       "max 0.565 ms (99.99989% < 0.1 ms)"));
  reg.add(realfeel_fig("preempt-lowlat",
                       "2.4.20 + preempt + low-latency patches",
                       "preempt-lowlat", false, "1.2 ms worst case [5]"));

  // Figure 7: RCIM response on a shielded CPU (§6.3).
  ScenarioSpec fig7;
  fig7.name = "fig7";
  fig7.title = "Figure 7: RCIM interrupt response, shielded CPU";
  fig7.description =
      "RCIM response, RedHawk 1.4 + RCIM, stress-kernel + x11perf + ttcp "
      "(paper: 11/11.3/27 us min/avg/max)";
  fig7.group = "figure";
  fig7.machine = "dual-p4-2000-rcim";
  fig7.kernel = "redhawk-1.4";
  fig7.workloads = {wl("stress-kernel"), wl("x11perf"), wl("ttcp-ethernet")};
  fig7.probe = "rcim";
  fig7.probe_params =
      obj({{"count", 2'500}, {"samples", 2'000'000}, {"affinity_cpu", 1}});
  fig7.shield = dedicate_cpu(1);
  fig7.duration = factor_margin(1.5, 5 * sim::kSecond);
  fig7.paper_ref = "min 11 us / avg 11.3 us / max 27 us";
  reg.add(std::move(fig7));
}

// ---- ablation A: shield components ----------------------------------------

void add_shield_components(ScenarioRegistry& reg) {
  struct Case {
    const char* name;
    const char* title;
    bool procs, irqs, ltmr;
  };
  const Case cases[] = {
      {"abl-shield-none", "no shield", false, false, false},
      {"abl-shield-procs", "procs only", true, false, false},
      {"abl-shield-irqs", "irqs only", false, true, false},
      {"abl-shield-ltmr", "ltmr only", false, false, true},
      {"abl-shield-procs-irqs", "procs+irqs", true, true, false},
      {"abl-shield-procs-ltmr", "procs+ltmr", true, false, true},
      {"abl-shield-irqs-ltmr", "irqs+ltmr", false, true, true},
      {"abl-shield-full", "procs+irqs+ltmr (full shield)", true, true, true},
  };
  for (const Case& c : cases) {
    ScenarioSpec s;
    s.name = c.name;
    s.title = c.title;
    s.description = std::string("ablation A: Fig-6 scenario with shield = ") +
                    c.title;
    s.group = "ablation";
    s.machine = "dual-p3-933";
    s.kernel = "redhawk-1.4";
    s.workloads = {wl("stress-kernel")};
    s.probe = "realfeel";
    s.probe_params = obj({{"samples", 400'000}, {"affinity_cpu", 1}});
    s.shield = components(1, c.procs, c.irqs, c.ltmr);
    s.duration = factor_margin(2.0, 5 * sim::kSecond);
    reg.add(std::move(s));
  }
}

// ---- ablation B: the patch stack ------------------------------------------

void add_kernel_features(ScenarioRegistry& reg) {
  struct Step {
    const char* name;
    const char* title;
    const char* kernel;
    Value overrides;
    bool shield;
  };
  Step steps[] = {
      {"abl-kernel-vanilla", "kernel.org 2.4.20", "vanilla-2.4.20",
       Value::object(), false},
      {"abl-kernel-lowlat", "+ low-latency patches only", "vanilla-2.4.20",
       obj({{"name", "2.4.20 + low-latency"},
            {"low_latency", true},
            {"section_min_ns", 1'000},
            {"section_max_ns", 1'200'000},
            {"section_alpha", 1.3}}),
       false},
      {"abl-kernel-preempt", "+ preemption patch only", "vanilla-2.4.20",
       obj({{"name", "2.4.20 + preempt"}, {"preempt_kernel", true}}), false},
      {"abl-kernel-preempt-lowlat", "+ preempt + low-latency [5]",
       "preempt-lowlat", Value::object(), false},
      {"abl-kernel-redhawk-noshield", "RedHawk 1.4, unshielded",
       "redhawk-1.4", obj({{"name", "RedHawk (shield unused)"}}), false},
      {"abl-kernel-redhawk-shielded", "RedHawk 1.4, shielded CPU",
       "redhawk-1.4", Value::object(), true},
  };
  for (Step& step : steps) {
    ScenarioSpec s;
    s.name = step.name;
    s.title = step.title;
    s.description =
        std::string("ablation B1: realfeel worst case with ") + step.title;
    s.group = "ablation";
    s.machine = "dual-p3-933";
    s.kernel = step.kernel;
    s.kernel_overrides = std::move(step.overrides);
    s.workloads = {wl("stress-kernel")};
    s.probe = "realfeel";
    s.probe_params = step.shield
                         ? obj({{"samples", 400'000}, {"affinity_cpu", 1}})
                         : obj({{"samples", 400'000}});
    if (step.shield) s.shield = dedicate_cpu(1);
    s.duration = factor_margin(2.0, 5 * sim::kSecond);
    reg.add(std::move(s));
  }

  // B2: the §6.3 BKL-ioctl flag, isolated on an early-RedHawk model with
  // 2.4-length section hold times. Ground-truth latencies: with the BKL
  // the latency can exceed the RCIM period, which wraps the register
  // measurement.
  for (const bool flagged : {false, true}) {
    ScenarioSpec s;
    s.name = flagged ? "abl-bkl-flagged" : "abl-bkl-locked";
    s.title = flagged ? "driver flag honoured (no BKL)" : "BKL around ioctl";
    s.description = std::string("ablation B2: RCIM wait path, ") + s.title;
    s.group = "ablation";
    s.machine = "dual-p4-2000-rcim";
    s.kernel = "redhawk-1.4";
    s.kernel_overrides =
        obj({{"name", flagged ? "early RedHawk (BKL-free ioctl)"
                              : "early RedHawk (BKL in every ioctl)"},
             {"section_min_ns", 2'000},
             {"section_max_ns", 8'000'000},
             {"section_alpha", 1.1},
             {"bkl_ioctl_flag", flagged}});
    s.workloads = {wl("stress-kernel"), wl("x11perf"), wl("ttcp-ethernet"),
                   wl("disknoise"), wl("legacy-ioctl")};
    s.probe = "rcim";
    s.probe_params = obj({{"samples", 200'000},
                          {"affinity_cpu", 1},
                          {"measure", "truth"}});
    s.shield = dedicate_cpu(1);
    s.duration = factor_margin(2.0, 5 * sim::kSecond);
    reg.add(std::move(s));
  }
}

// ---- ablation C: hyperthread contention -----------------------------------

void add_hyperthreading(ScenarioRegistry& reg) {
  const int duties[] = {0, 25, 50, 75, 100};
  for (const int duty : duties) {
    for (const bool ht : {true, false}) {
      ScenarioSpec s;
      s.name = "abl-ht-duty" + std::to_string(duty) +
               (ht ? "-sibling" : "-core");
      s.title = std::to_string(duty) + "% duty neighbour on " +
                (ht ? "the HT sibling" : "another core");
      s.description = "ablation C: determinism loop vs " + s.title;
      s.group = "ablation";
      s.machine = "dual-p4-1400";
      s.kernel = "vanilla-2.4.20";
      s.ht_override = ht;
      if (duty > 0) {
        s.workloads = {
            wl("sibling-hog",
               obj({{"task_name", ht ? "sibling-hog" : "other-core-hog"},
                    {"cpu", 1},
                    {"duty", duty / 100.0},
                    {"period_ns", 10'000'000},
                    {"memory_intensity", 0.7}}))};
      }
      s.probe = "determinism";
      s.probe_params = obj({{"loop_work_ns", 300'000'000},
                            {"iterations", 25},
                            {"affinity_cpu", 0}});
      s.duration = factor_margin(3.0, 10 * sim::kSecond);
      reg.add(std::move(s));
    }
  }
}

// ---- ablation D: memory locking -------------------------------------------

void add_mlock(ScenarioRegistry& reg) {
  struct Case {
    const char* name;
    const char* title;
    bool mlocked, loaded;
  };
  const Case cases[] = {
      {"abl-mlock-locked-idle", "mlockall, idle system", true, false},
      {"abl-mlock-pageable-idle", "pageable, idle system", false, false},
      {"abl-mlock-locked-loaded", "mlockall, scp+disknoise", true, true},
      {"abl-mlock-pageable-loaded", "pageable, scp+disknoise", false, true},
  };
  for (const Case& c : cases) {
    ScenarioSpec s;
    s.name = c.name;
    s.title = c.title;
    s.description =
        std::string("ablation D: page-fault jitter, ") + c.title;
    s.group = "ablation";
    s.machine = "dual-p4-1400";
    s.kernel = "redhawk-1.4";
    if (c.loaded) s.workloads = {wl("scp-copy"), wl("disknoise")};
    s.probe = "determinism";
    s.probe_params = obj({{"loop_work_ns", 300'000'000},
                          {"iterations", 30},
                          {"affinity_cpu", 1},
                          {"mlocked", c.mlocked}});
    s.shield = shield_all_cpu(1);
    s.duration = factor_margin(3.0, 10 * sim::kSecond);
    reg.add(std::move(s));
  }
}

// ---- cyclictest ladder -----------------------------------------------------

void add_cyclictest(ScenarioRegistry& reg) {
  struct Case {
    const char* name;
    const char* title;
    const char* kernel;
    bool shield;
  };
  const Case cases[] = {
      {"cyclic-vanilla", "kernel.org 2.4.20", "vanilla-2.4.20", false},
      {"cyclic-preempt-lowlat", "2.4 + preempt + low-latency",
       "preempt-lowlat", false},
      {"cyclic-redhawk", "RedHawk 1.4, unshielded", "redhawk-1.4", false},
      {"cyclic-redhawk-shielded", "RedHawk 1.4, shielded CPU", "redhawk-1.4",
       true},
  };
  for (const Case& c : cases) {
    ScenarioSpec s;
    s.name = c.name;
    s.title = c.title;
    s.description = std::string(
                        "cyclictest: 1 kHz wakeup latency under stress-kernel"
                        " + hackbench, ") +
                    c.title;
    s.group = "cyclictest";
    s.machine = "dual-p3-933";
    s.kernel = c.kernel;
    s.workloads = {wl("stress-kernel"), wl("hackbench")};
    s.probe = "cyclictest";
    s.probe_params =
        c.shield ? obj({{"period_ns", 1'000'000},
                        {"cycles", 200'000},
                        {"affinity_cpu", 1}})
                 : obj({{"period_ns", 1'000'000}, {"cycles", 200'000}});
    if (c.shield) s.shield = shield_all_cpu(1);
    // Duration-bound (see CyclicProbe): 2x the ideal 200 s of cycles plus
    // margin, matching the historical horizon. Jiffy-quantized kernels
    // collect ~1/10 of the cycles in this window — that is the result.
    s.duration = fixed(405 * sim::kSecond);
    reg.add(std::move(s));
  }
}

// ---- frequency sweep -------------------------------------------------------

void add_frequency_sweep(ScenarioRegistry& reg) {
  const unsigned rates[] = {250u, 500u, 1000u, 2000u, 4000u, 8000u, 10000u};
  for (const unsigned hz : rates) {
    ScenarioSpec s;
    s.name = "freq-" + std::to_string(hz);
    s.title = std::to_string(hz) + " Hz RCIM periodic on a shielded CPU";
    s.description =
        "frequency sweep: " + std::to_string(hz) + " Hz under stress-kernel";
    s.group = "frequency";
    s.machine = "dual-p4-2000-rcim";
    s.kernel = "redhawk-1.4";
    s.workloads = {wl("stress-kernel")};
    s.probe = "rcim";
    s.probe_params = obj({{"count", 2'500'000u / hz},
                          {"samples", 150'000},
                          {"affinity_cpu", 1}});
    s.shield = dedicate_cpu(1);
    s.duration = factor_margin(2.0, 5 * sim::kSecond);
    reg.add(std::move(s));
  }
}

// ---- POSIX timers ----------------------------------------------------------

void add_timer_gap(ScenarioRegistry& reg) {
  const int periods_ms[] = {3, 7, 10, 25};
  for (const int ms : periods_ms) {
    for (const bool hires : {false, true}) {
      ScenarioSpec s;
      s.name = "timer-gap-" + std::to_string(ms) + "ms" +
               (hires ? "-hires" : "-jiffy");
      s.title = std::to_string(ms) + " ms period, " +
                (hires ? "RedHawk (high-res)" : "2.4.20 (jiffy wheel)");
      s.description =
          "POSIX timers: periodic wakeup error at " + s.title;
      s.group = "timers";
      s.machine = "dual-p3-933";
      s.kernel = hires ? "redhawk-1.4" : "vanilla-2.4.20";
      s.probe = "timer-gap";
      s.probe_params =
          obj({{"period_ns", ms * 1'000'000}});
      s.duration = fixed(30 * sim::kSecond);
      reg.add(std::move(s));
    }
  }
}

// ---- holdoff tracer --------------------------------------------------------

void add_holdoff(ScenarioRegistry& reg) {
  struct Case {
    const char* name;
    const char* title;
    const char* kernel;
  };
  const Case cases[] = {
      {"holdoff-vanilla", "kernel.org 2.4.20", "vanilla-2.4.20"},
      {"holdoff-preempt-lowlat", "2.4 + preempt + low-latency",
       "preempt-lowlat"},
      {"holdoff-redhawk", "RedHawk 1.4", "redhawk-1.4"},
  };
  for (const Case& c : cases) {
    ScenarioSpec s;
    s.name = c.name;
    s.title = c.title;
    s.description =
        std::string("holdoff tracer: worst irq-off / preempt-off, ") +
        c.title;
    s.group = "holdoff";
    s.machine = "dual-p3-933";
    s.kernel = c.kernel;
    s.workloads = {wl("stress-kernel")};
    s.probe = "holdoff";
    s.duration = fixed(60 * sim::kSecond);
    reg.add(std::move(s));
  }
}

// ---- fault family: §6 on a hostile platform --------------------------------
//
// The robustness mirror of Figures 5/6: the same realfeel-under-stress-kernel
// setup, but with fault::Injector perturbing the machine. The claim (asserted
// by test_fault): a shielded CPU's max latency degrades gracefully — it stays
// bounded — while the unshielded max under the identical fault plan blows up
// by an order of magnitude or more.

fault::FaultSpec make_fault(fault::FaultKind kind) {
  fault::FaultSpec f;
  f.kind = kind;
  return f;
}

/// A hostile-device cocktail: a stuck NIC line storming, net-rx bottom-half
/// flood, and a disk that times out and retries a quarter of its commands.
fault::FaultPlan hostile_device_plan() {
  fault::FaultPlan plan;
  fault::FaultSpec storm = make_fault(fault::FaultKind::kIrqStorm);
  storm.irq = hw::kIrqNic;
  storm.rate_hz = 30'000.0;
  plan.faults.push_back(storm);
  // Pinned to CPU 0: bottom halves run where the line is routed, and the
  // shield routes hostile lines away from the shielded CPU.
  fault::FaultSpec flood = make_fault(fault::FaultKind::kSoftirqFlood);
  flood.cpu = 0;
  flood.rate_hz = 4'000.0;
  flood.work_ns = 100'000;
  plan.faults.push_back(flood);
  // Kept mild: disk timeouts reach even the shielded CPU through the
  // shared fs/BKL paths the realfeel read() crosses, so this term bounds
  // how clean the shielded tail can stay.
  fault::FaultSpec disk = make_fault(fault::FaultKind::kDeviceDelay);
  disk.device = "disk";
  disk.probability = 0.1;
  disk.min_ns = 1'000'000;
  disk.max_ns = 4'000'000;
  plan.faults.push_back(disk);
  return plan;
}

void add_faults(ScenarioRegistry& reg) {
  const auto faulted_realfeel = [](const char* name, const char* title,
                                   const char* desc, bool shield,
                                   fault::FaultPlan plan) {
    ScenarioSpec s;
    s.name = name;
    s.title = title;
    s.description = std::string("fault injection: ") + desc;
    s.group = "faults";
    s.machine = "dual-p3-933";
    s.kernel = "redhawk-1.4";
    s.workloads = {wl("stress-kernel")};
    s.probe = "realfeel";
    s.probe_params = shield ? obj({{"samples", 200'000}, {"affinity_cpu", 1}})
                            : obj({{"samples", 200'000}});
    if (shield) s.shield = dedicate_cpu(1);
    s.duration = factor_margin(1.5, 5 * sim::kSecond);
    s.faults = std::move(plan);
    return s;
  };

  reg.add(faulted_realfeel(
      "faults-storm-shielded",
      "NIC storm + softirq flood + disk timeouts, shielded CPU",
      "hostile devices cannot reach the shielded CPU; max stays "
      "sub-millisecond",
      true, hostile_device_plan()));
  reg.add(faulted_realfeel(
      "faults-storm-unshielded",
      "NIC storm + softirq flood + disk timeouts, no shield",
      "the same hostile devices collapse the unshielded distribution: the "
      ">100us miss fraction blows up by >= 10x",
      false, hostile_device_plan()));

  {
    // SMIs bypass interrupt masking on real hardware, so they punch through
    // the shield too — the honest limit of the mechanism. Max degrades to
    // roughly the stall ceiling but remains bounded.
    fault::FaultPlan plan;
    fault::FaultSpec smi = make_fault(fault::FaultKind::kCpuStall);
    smi.rate_hz = 20.0;
    smi.min_ns = 50'000;
    smi.max_ns = 200'000;
    plan.faults.push_back(smi);
    reg.add(faulted_realfeel(
        "faults-smi-shielded", "SMI-like CPU stalls, shielded CPU",
        "stalls are unmaskable and hit even the shielded CPU, but the "
        "degradation is bounded by the stall ceiling",
        true, std::move(plan)));
  }
  {
    // Flaky wiring: the disk line drops edges, the NIC line rings. The
    // devices and drivers absorb both; the shielded probe never notices.
    fault::FaultPlan plan;
    fault::FaultSpec lost = make_fault(fault::FaultKind::kLostIrq);
    lost.irq = hw::kIrqDisk;
    lost.probability = 0.2;
    plan.faults.push_back(lost);
    fault::FaultSpec dup = make_fault(fault::FaultKind::kDuplicateIrq);
    dup.irq = hw::kIrqNic;
    dup.probability = 0.2;
    plan.faults.push_back(dup);
    reg.add(faulted_realfeel(
        "faults-lost-dup-shielded",
        "lost disk edges + ringing NIC edges, shielded CPU",
        "drivers absorb dropped and duplicated edges; the shielded max is "
        "unaffected",
        true, std::move(plan)));
  }
  {
    // Crystal drift: every unshielded CPU's tick wanders 0.2%; the shielded
    // CPU has no tick at all, which is the point.
    fault::FaultPlan plan;
    fault::FaultSpec drift = make_fault(fault::FaultKind::kClockDrift);
    drift.drift = 0.002;
    plan.faults.push_back(drift);
    reg.add(faulted_realfeel(
        "faults-drift-shielded", "local-timer drift, shielded CPU",
        "tick drift perturbs only CPUs that still take ticks", true,
        std::move(plan)));
  }
}

// ---- mechanism family: shielding vs the out-of-band stage ------------------
//
// The paper's mechanism (shield a CPU inside one kernel) against the
// dual-kernel rival (run the RT side on an out-of-band stage that preempts
// the whole in-band kernel). Each pair is the same machine, kernel,
// workloads and probe; only the delivery mechanism — and therefore the
// shield plan — differs. Shielded in-band response floors at the irq path
// + context switch (~11 us for RCIM, §6.3); the oob stage dispatches in
// oob_dispatch_cost + oob_switch_cost with nothing in-band able to delay
// it, so its worst case sits under half a microsecond even with a NIC
// storm or SMI-like stalls hammering the in-band kernel.

void add_mechanisms(ScenarioRegistry& reg) {
  struct Pair {
    const char* tag;         // mech-<tag>-{shielded,oob}
    const char* what;        // for titles/descriptions
    const char* machine;
    const char* probe;
    Value shielded_params;   // probe params, shielded in-band variant
    Value oob_params;        // probe params, oob variant
    ShieldPlan shield;       // in-band variant's plan
    DurationPolicy duration;
    fault::FaultPlan faults;
  };

  std::vector<Pair> pairs;
  pairs.push_back({"rtc", "realfeel /dev/rtc response under stress-kernel",
                   "dual-p3-933", "realfeel",
                   obj({{"samples", 200'000}, {"affinity_cpu", 1}}),
                   obj({{"samples", 200'000}, {"affinity_cpu", 1}}),
                   dedicate_cpu(1), factor_margin(1.5, 5 * sim::kSecond),
                   {}});
  pairs.push_back({"rcim", "RCIM interrupt response under stress-kernel",
                   "dual-p4-2000-rcim", "rcim",
                   obj({{"samples", 150'000}, {"affinity_cpu", 1}}),
                   obj({{"samples", 150'000}, {"affinity_cpu", 1}}),
                   dedicate_cpu(1), factor_margin(2.0, 5 * sim::kSecond),
                   {}});
  pairs.push_back({"cyclic", "1 kHz cyclictest under stress-kernel",
                   "dual-p3-933", "cyclictest",
                   obj({{"period_ns", 1'000'000},
                        {"cycles", 20'000},
                        {"affinity_cpu", 1}}),
                   obj({{"period_ns", 1'000'000},
                        {"cycles", 20'000},
                        {"affinity_cpu", 1}}),
                   shield_all_cpu(1), fixed(45 * sim::kSecond),
                   {}});
  pairs.push_back({"storm",
                   "realfeel with a NIC storm + softirq flood + disk timeouts",
                   "dual-p3-933", "realfeel",
                   obj({{"samples", 200'000}, {"affinity_cpu", 1}}),
                   obj({{"samples", 200'000}, {"affinity_cpu", 1}}),
                   dedicate_cpu(1), factor_margin(1.5, 5 * sim::kSecond),
                   hostile_device_plan()});
  {
    fault::FaultPlan smi;
    fault::FaultSpec stall = make_fault(fault::FaultKind::kCpuStall);
    stall.rate_hz = 20.0;
    stall.min_ns = 50'000;
    stall.max_ns = 200'000;
    smi.faults.push_back(stall);
    pairs.push_back({"smi", "realfeel with SMI-like CPU stalls",
                     "dual-p3-933", "realfeel",
                     obj({{"samples", 200'000}, {"affinity_cpu", 1}}),
                     obj({{"samples", 200'000}, {"affinity_cpu", 1}}),
                     dedicate_cpu(1), factor_margin(1.5, 5 * sim::kSecond),
                     std::move(smi)});
  }

  for (Pair& pr : pairs) {
    ScenarioSpec in;
    in.name = std::string("mech-") + pr.tag + "-shielded";
    in.title = std::string(pr.what) + ", in-band kernel, shielded CPU";
    in.description = std::string("mechanism comparison (in-band+shield): ") +
                     pr.what;
    in.group = "mechanism";
    in.machine = pr.machine;
    in.kernel = "redhawk-1.4";
    in.workloads = {wl("stress-kernel")};
    in.probe = pr.probe;
    in.probe_params = pr.shielded_params;
    in.shield = pr.shield;
    in.duration = pr.duration;
    in.faults = pr.faults;
    reg.add(std::move(in));

    ScenarioSpec oob;
    oob.name = std::string("mech-") + pr.tag + "-oob";
    oob.title = std::string(pr.what) + ", out-of-band stage";
    oob.description = std::string("mechanism comparison (oob stage): ") +
                      pr.what;
    oob.group = "mechanism";
    oob.machine = pr.machine;
    oob.kernel = "redhawk-1.4";
    oob.workloads = {wl("stress-kernel")};
    oob.probe = pr.probe;
    oob.probe_params = pr.oob_params;
    oob.mechanism = "oob";  // no shield: the stage preempts the whole kernel
    oob.duration = pr.duration;
    oob.faults = std::move(pr.faults);
    reg.add(std::move(oob));
  }
}

ScenarioRegistry make_builtin() {
  ScenarioRegistry reg;
  add_figures(reg);
  add_shield_components(reg);
  add_kernel_features(reg);
  add_hyperthreading(reg);
  add_mlock(reg);
  add_cyclictest(reg);
  add_frequency_sweep(reg);
  add_timer_gap(reg);
  add_holdoff(reg);
  add_faults(reg);
  add_mechanisms(reg);
  return reg;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry reg = make_builtin();
  return reg;
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(s.name);
  return out;
}

std::vector<const ScenarioSpec*> ScenarioRegistry::group(
    const std::string& g) const {
  std::vector<const ScenarioSpec*> out;
  for (const auto& s : specs_) {
    if (s.group == g) out.push_back(&s);
  }
  return out;
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  if (find(spec.name) != nullptr) {
    throw std::runtime_error("duplicate scenario name '" + spec.name + "'");
  }
  specs_.push_back(std::move(spec));
}

}  // namespace config

#include "config/experiment.h"

#include <sstream>

#include "metrics/report.h"
#include "rt/determinism_test.h"
#include "rt/rcim_test.h"
#include "rt/realfeel_test.h"
#include "workload/disk_noise.h"
#include "workload/scp_copy.h"
#include "workload/stress_kernel.h"
#include "workload/ttcp.h"
#include "workload/x11perf.h"

namespace config {

using namespace sim::literals;

std::string ExperimentResult::render() const {
  std::ostringstream os;
  os << "== " << name << " ==\n" << description << "\n";
  if (latencies.count() == 0) {
    os << "(no samples)\n";
    return os.str();
  }
  if (ideal > 0) {
    os << metrics::determinism_legend(ideal, ideal + latencies.max()) << "\n";
  } else {
    const auto thresholds = metrics::figure5_thresholds();
    os << metric_name << ":\n"
       << metrics::cumulative_bucket_table(latencies, thresholds);
  }
  os << metrics::ascii_histogram(latencies, 50, 8);
  return os.str();
}

namespace {

ExperimentResult run_determinism(const std::string& name,
                                 const std::string& desc,
                                 const KernelConfig& kcfg,
                                 std::optional<bool> ht, bool shield,
                                 std::uint64_t seed, double scale) {
  Platform p(MachineConfig::dual_p4_xeon_1400(), kcfg, seed, ht);
  workload::ScpCopy{}.install(p);
  workload::DiskNoise{}.install(p);
  rt::DeterminismTest::Params dp;
  dp.iterations = std::max(1, static_cast<int>(60 * scale));
  if (shield) dp.affinity = hw::CpuMask::single(1);
  rt::DeterminismTest test(p.kernel(), dp);
  p.boot();
  if (shield) p.shield().shield_all(hw::CpuMask::single(1));
  p.run_for(dp.loop_work * static_cast<sim::Duration>(dp.iterations) * 2 +
            10_s);
  ExperimentResult r;
  r.name = name;
  r.description = desc;
  r.latencies = test.excess_histogram();
  r.metric_name = "loop-time excess over ideal";
  r.ideal = test.ideal();
  r.events = p.engine().events_executed();
  return r;
}

ExperimentResult run_realfeel(const std::string& name, const std::string& desc,
                              const KernelConfig& kcfg, bool shield,
                              std::uint64_t seed, double scale) {
  Platform p(MachineConfig::dual_p3_xeon_933(), kcfg, seed);
  workload::StressKernel{}.install(p);
  rt::RealfeelTest::Params rp;
  rp.samples = std::max<std::uint64_t>(
      1000, static_cast<std::uint64_t>(2'000'000 * scale));
  if (shield) rp.affinity = hw::CpuMask::single(1);
  rt::RealfeelTest test(p.kernel(), p.rtc_driver(), rp);
  p.boot();
  if (shield) p.shield().dedicate_cpu(1, test.task(), p.rtc_device().irq());
  test.start();
  p.run_for(sim::from_seconds(static_cast<double>(rp.samples) / 2048.0 * 2) +
            5_s);
  ExperimentResult r;
  r.name = name;
  r.description = desc;
  r.latencies = test.latencies();
  r.metric_name = "realfeel gap latency";
  r.events = p.engine().events_executed();
  return r;
}

ExperimentResult run_rcim(const std::string& name, const std::string& desc,
                          std::uint64_t seed, double scale) {
  Platform p(MachineConfig::dual_p4_xeon_2000_rcim(),
             KernelConfig::redhawk_1_4(), seed);
  workload::StressKernel{}.install(p);
  workload::X11Perf{}.install(p);
  workload::TtcpEthernet{}.install(p);
  rt::RcimTest::Params rp;
  rp.samples = std::max<std::uint64_t>(
      1000, static_cast<std::uint64_t>(2'000'000 * scale));
  rp.affinity = hw::CpuMask::single(1);
  rt::RcimTest test(p.kernel(), p.rcim_driver(), rp);
  p.boot();
  p.shield().dedicate_cpu(1, test.task(), p.rcim_device().irq());
  test.start();
  p.run_for(sim::from_seconds(static_cast<double>(rp.samples) / 1000.0 * 2) +
            5_s);
  ExperimentResult r;
  r.name = name;
  r.description = desc;
  r.latencies = test.latencies();
  r.metric_name = "RCIM count-register latency";
  r.events = p.engine().events_executed();
  return r;
}

ExperimentRegistry make_builtin() {
  ExperimentRegistry reg;
  reg.add({"fig1",
           "determinism, kernel.org 2.4.20, hyperthreading on (paper: 26.17% jitter)",
           [](std::uint64_t seed, double scale) {
             return run_determinism(
                 "fig1", "vanilla 2.4.20 + HT, scp+disknoise load",
                 KernelConfig::vanilla_2_4_20(), std::nullopt, false, seed,
                 scale);
           }});
  reg.add({"fig2",
           "determinism, RedHawk 1.4 shielded CPU (paper: 1.87% jitter)",
           [](std::uint64_t seed, double scale) {
             return run_determinism("fig2", "RedHawk 1.4, CPU 1 fully shielded",
                                    KernelConfig::redhawk_1_4(), std::nullopt,
                                    true, seed, scale);
           }});
  reg.add({"fig3",
           "determinism, RedHawk 1.4 unshielded (paper: 14.82% jitter)",
           [](std::uint64_t seed, double scale) {
             return run_determinism("fig3", "RedHawk 1.4, no shielding",
                                    KernelConfig::redhawk_1_4(), std::nullopt,
                                    false, seed, scale);
           }});
  reg.add({"fig4",
           "determinism, kernel.org 2.4.20, hyperthreading off (paper: 13.15%)",
           [](std::uint64_t seed, double scale) {
             return run_determinism("fig4", "vanilla 2.4.20, HT disabled",
                                    KernelConfig::vanilla_2_4_20(), false,
                                    false, seed, scale);
           }});
  reg.add({"fig5",
           "realfeel response, kernel.org 2.4.20 (paper: max 92.3 ms)",
           [](std::uint64_t seed, double scale) {
             return run_realfeel("fig5", "vanilla 2.4.20, stress-kernel load",
                                 KernelConfig::vanilla_2_4_20(), false, seed,
                                 scale);
           }});
  reg.add({"fig6",
           "realfeel response, RedHawk 1.4 shielded CPU (paper: max 0.565 ms)",
           [](std::uint64_t seed, double scale) {
             return run_realfeel("fig6", "RedHawk 1.4, CPU 1 shielded",
                                 KernelConfig::redhawk_1_4(), true, seed,
                                 scale);
           }});
  reg.add({"fig7",
           "RCIM response, shielded CPU (paper: 11/11.3/27 us min/avg/max)",
           [](std::uint64_t seed, double scale) {
             return run_rcim(
                 "fig7", "RedHawk 1.4 + RCIM, stress-kernel + x11perf + ttcp",
                 seed, scale);
           }});
  reg.add({"preempt-lowlat",
           "realfeel response, 2.4 + preempt + low-latency (the 1.2 ms claim [5])",
           [](std::uint64_t seed, double scale) {
             return run_realfeel("preempt-lowlat",
                                 "2.4.20 + preempt + low-latency patches",
                                 KernelConfig::patched_preempt_lowlat(), false,
                                 seed, scale);
           }});
  return reg;
}

}  // namespace

const ExperimentRegistry& ExperimentRegistry::builtin() {
  static const ExperimentRegistry reg = make_builtin();
  return reg;
}

const Experiment* ExperimentRegistry::find(const std::string& name) const {
  for (const auto& e : experiments_) {
    if (e.name() == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> ExperimentRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(experiments_.size());
  for (const auto& e : experiments_) out.push_back(e.name());
  return out;
}

}  // namespace config

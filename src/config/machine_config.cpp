#include "config/machine_config.h"

namespace config {

MachineConfig MachineConfig::dual_p4_xeon_1400() {
  MachineConfig m;
  m.name = "dual 1.4GHz P4 Xeon";
  m.physical_cores = 2;
  m.hyperthreading_capable = true;
  m.cpu_ghz = 1.4;
  m.has_rcim = false;
  return m;
}

MachineConfig MachineConfig::dual_p3_xeon_933() {
  MachineConfig m;
  m.name = "dual 933MHz P3 Xeon";
  m.physical_cores = 2;
  m.hyperthreading_capable = false;  // P3 has no hyperthreading
  m.cpu_ghz = 0.933;
  m.has_rcim = false;
  // Older core, slightly noisier memory system.
  m.memory.noise_sigma = 0.002;
  return m;
}

MachineConfig MachineConfig::dual_p4_xeon_2000_rcim() {
  MachineConfig m;
  m.name = "dual 2.0GHz P4 Xeon + RCIM";
  m.physical_cores = 2;
  m.hyperthreading_capable = true;
  m.cpu_ghz = 2.0;
  m.has_rcim = true;
  return m;
}

MachineConfig MachineConfig::quad_p4_xeon_2000_rcim() {
  MachineConfig m;
  m.name = "quad 2.0GHz P4 Xeon + RCIM";
  m.physical_cores = 4;
  m.hyperthreading_capable = true;
  m.cpu_ghz = 2.0;
  m.has_rcim = true;
  // Four sockets on one front-side bus: proportionally more contention.
  m.memory.bus_contention_coeff = 0.30;
  return m;
}

}  // namespace config

// Kernel configuration: which patches are applied and what the code paths
// cost.
//
// The paper compares kernel.org 2.4.20 against RedHawk 1.4 (2.4.20 + the
// MontaVista preemption patch + Morton low-latency patches + O(1) scheduler
// + POSIX timers + softirq changes + BKL reduction + shielding + RCIM).
// Every one of those deltas is a field here, so benches can also ablate them
// one at a time.
#pragma once

#include <string>

#include "sim/time.h"

namespace config {

enum class SchedulerKind {
  kGoodness24,  ///< 2.4 global-runqueue goodness() scheduler, O(n) pick
  kO1,          ///< Molnar O(1) per-CPU bitmap scheduler
};

struct KernelConfig {
  std::string name = "kernel";

  // ---- applied patches -------------------------------------------------
  SchedulerKind scheduler = SchedulerKind::kGoodness24;
  /// MontaVista preemption patch: kernel code outside critical sections is
  /// preemptible. Without it a syscall runs to completion or until it
  /// blocks before any other task can run on that CPU.
  bool preempt_kernel = false;
  /// Morton low-latency patches: the longest critical sections are broken
  /// up. Modelled as a much shorter tail on section hold times.
  bool low_latency = false;
  /// RedHawk softirq change: bottom halves beyond a small budget run in
  /// ksoftirqd (scheduled) instead of borrowing interrupt context.
  bool softirq_daemon_offload = false;
  /// RedHawk change to generic ioctl: a multithreaded driver can set a flag
  /// and the kernel will not take the BKL around its ioctl routine (§6.3).
  bool bkl_ioctl_flag = false;
  /// `/proc/shield` support (the paper's core contribution).
  bool shield_support = false;
  /// RCIM driver present.
  bool rcim_driver = false;
  /// High-resolution POSIX timers patch (sleep wakeups are not rounded up
  /// to the next 10 ms tick).
  bool posix_timers = false;
  /// Whether this kernel enables hyperthreading by default (§5.2: vanilla
  /// enables it, RedHawk disables it).
  bool default_hyperthreading = false;

  // ---- timer -----------------------------------------------------------
  sim::Duration local_timer_period = 10 * sim::kMillisecond;  ///< HZ=100
  /// Local timer handler cost: time accounting, profiling, resource limits.
  sim::Duration tick_cost_min = 2 * sim::kMicrosecond;
  sim::Duration tick_cost_max = 7 * sim::kMicrosecond;

  // ---- path costs --------------------------------------------------------
  sim::Duration syscall_entry_cost = 300;        // ns
  sim::Duration syscall_exit_cost = 400;         // ns
  sim::Duration ctx_switch_cost = 3 * sim::kMicrosecond;
  sim::Duration irq_entry_cost = 900;            // ns: vector dispatch + ack
  sim::Duration irq_exit_cost = 600;             // ns
  /// Scheduler pick cost: base plus per-runnable-task scan (the goodness
  /// scheduler is O(n); the O(1) scheduler sets per_task to zero).
  sim::Duration sched_pick_base = 1 * sim::kMicrosecond;
  sim::Duration sched_pick_per_task = 150;       // ns

  // ---- critical sections -------------------------------------------------
  /// Spinlock/preempt-off section hold times are sampled from a bounded
  /// Pareto: most sections are short, the tail is what kills latency.
  /// Vanilla 2.4 has sections of tens of ms under filesystem stress; the
  /// low-latency patches cap the tail near a millisecond.
  sim::Duration section_min = 2 * sim::kMicrosecond;
  sim::Duration section_max = 55 * sim::kMillisecond;
  double section_alpha = 1.05;

  // ---- syscall body (non-critical kernel work) ---------------------------
  /// Without the preemption patch the whole syscall is non-preemptible, so
  /// the *total* in-kernel time matters too. Bodies are sampled from a
  /// bounded Pareto with this tail — the FS/CRASHME stress produces the
  /// occasional ~90 ms in-kernel stretch behind Fig 5's worst case.
  sim::Duration syscall_body_max = 90 * sim::kMillisecond;
  /// Most syscall bodies are exponential around their typical value; a
  /// small fraction are the pathological long operations (giant truncates,
  /// buffer-cache walks) drawn from a near-flat Pareto tail.
  double body_long_probability = 0.0015;
  double body_long_alpha = 0.9;
  /// Probability that a file-descriptor syscall path takes a *globally
  /// contended* fs-layer lock (dcache hash collision, files_lock, ...).
  /// Rare in absolute terms, but when it happens while a perforated holder
  /// is mid-section, the §6.2 tail appears. Calibrated for the bench
  /// suite's default sample counts (see DESIGN.md).
  double fd_path_contended_lock_probability = 1.5e-3;

  // ---- softirq ------------------------------------------------------------
  /// Max bottom-half work executed in interrupt context per irq exit.
  /// Vanilla 2.4 drains everything (modelled as a very large budget);
  /// RedHawk caps it and kicks the remainder to ksoftirqd.
  sim::Duration softirq_budget_in_irq = 1000 * sim::kMillisecond;
  int softirq_max_restart = 10;
  /// ksoftirqd drains work in chunks of this size between preemption points.
  sim::Duration ksoftirqd_chunk = 250 * sim::kMicrosecond;

  // ---- paging ---------------------------------------------------------------
  /// Mean CPU time between minor page faults for tasks that have NOT locked
  /// their memory (mlockall). Locked tasks never fault — the determinism
  /// feature §5 credits stock Linux with.
  sim::Duration fault_mean_interval = 25 * sim::kMillisecond;
  sim::Duration fault_cost_min = 3 * sim::kMicrosecond;
  sim::Duration fault_cost_max = 25 * sim::kMicrosecond;

  // ---- scheduling ---------------------------------------------------------
  sim::Duration other_timeslice = 60 * sim::kMillisecond;
  sim::Duration rr_timeslice = 100 * sim::kMillisecond;

  // ---- out-of-band stage (OobPipeline; unused by the in-band mechanism) -----
  /// Fixed cost from adopted-vector arrival to the oob handler running:
  /// the Dovetail-style pipelined entry does no masking, no frame setup,
  /// no Linux irq_enter — a couple hundred cycles.
  sim::Duration oob_dispatch_cost = 150;
  /// Fixed cost to switch an oob task in (the stage's whole scheduler is a
  /// head-of-list pick; context is tiny and cache-hot).
  sim::Duration oob_switch_cost = 120;

  // ---- presets -------------------------------------------------------------
  /// kernel.org 2.4.20 exactly as shipped.
  static KernelConfig vanilla_2_4_20();
  /// RedHawk Linux 1.4.
  static KernelConfig redhawk_1_4();
  /// 2.4.20 + preemption + low-latency only (the "Red Hat based system"
  /// configuration that demonstrated 1.2 ms worst case, per §6 and [5]).
  static KernelConfig patched_preempt_lowlat();
};

}  // namespace config

// One executor behind every bench, tool and test.
//
// ScenarioRunner turns a ScenarioSpec into a Platform, installs the
// workloads, builds the probe, boots, applies the shield plan, runs to the
// horizon and returns a serializable ScenarioResult. Batches fan out over
// bench::SweepRunner with per-scenario seeds derived via sim::derive_seed
// (insertion-order independent), and results are cached in memory (and
// optionally on disk) keyed by (spec digest, seed, scale).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/json.h"
#include "config/platform.h"
#include "config/scenario.h"
#include "config/sweep_runner.h"
#include "rt/probe.h"

namespace config {

/// What one (spec, seed, scale) run produced. Pure simulated data — it
/// JSON-round-trips exactly, which is what makes the cache sound.
struct ScenarioResult {
  std::string name;
  std::string digest;  ///< spec digest the run was keyed by
  std::uint64_t seed = 0;
  double scale = 1.0;
  rt::ProbeResult probe;
  std::uint64_t events = 0;  ///< simulator events executed
  /// Simulated time actually executed for the measurement window. For
  /// fixed-duration specs this equals the scaled horizon; for sample-bound
  /// specs it is where the run stopped once the probe banked its budget
  /// (the horizon is an upper bound, not a target — see run_to_horizon).
  std::uint64_t duration_ns = 0;
  /// Telemetry document ({counters, timeline}) when the spec opted into the
  /// sampler; null otherwise and then absent from the serialized form, so
  /// telemetry-free results are byte-identical to pre-telemetry ones.
  json::Value telemetry;
  /// True when the result came out of the cache, not a fresh simulation.
  /// Not serialized: a round-tripped result compares equal either way.
  bool from_cache = false;

  [[nodiscard]] json::Value to_json() const;
  static ScenarioResult from_json(const json::Value& v);

  /// Render the result the way the paper reports this kind of scenario
  /// (determinism legend for probes with an ideal, cumulative latency
  /// table otherwise).
  [[nodiscard]] std::string render(const ScenarioSpec& spec) const;
};

/// Base for failures thrown while the Platform is still alive. Carries the
/// post-mortem flight-recorder dump (a null Value when the recorder was
/// off): the ring dies with the engine during stack unwind, so the dump has
/// to be captured at the throw site.
class ScenarioAbort : public std::runtime_error {
 public:
  explicit ScenarioAbort(const std::string& what,
                         json::Value flight = json::Value())
      : std::runtime_error(what),
        flight_(std::make_shared<const json::Value>(std::move(flight))) {}
  [[nodiscard]] const json::Value& flight_recording() const {
    return *flight_;
  }

 private:
  std::shared_ptr<const json::Value> flight_;  // shared: copies never throw
};

/// Thrown when a run blows through its watchdog budget (simulated-event
/// count or wall-clock seconds). Distinct from the other failures so batch
/// reports can classify it as timed_out rather than failed.
class ScenarioTimeout : public ScenarioAbort {
 public:
  using ScenarioAbort::ScenarioAbort;
};

/// A structured failure rethrown with the flight dump attached when the
/// recorder was on (plain std::exceptions pass through untouched when it
/// was not).
class ScenarioFailure : public ScenarioAbort {
 public:
  using ScenarioAbort::ScenarioAbort;
};

/// How one spec in a batch ended up.
enum class RunStatus {
  kOk,        ///< first attempt succeeded
  kRetried,   ///< succeeded after >= 1 reseeded retry (transient specs)
  kFailed,    ///< structured failure (validation, probe, assertion...)
  kTimedOut,  ///< watchdog fired on the final attempt
};
[[nodiscard]] const char* to_string(RunStatus s);

/// Per-spec record in a degraded-run batch report.
struct RunOutcome {
  std::string name;
  /// Delivery mechanism the spec ran under ("inband"/"oob"). Serialized
  /// only when non-default; feeds the report's by_mechanism breakdown.
  std::string mechanism = "inband";
  RunStatus status = RunStatus::kOk;
  int attempts = 1;
  std::string error;  ///< what() of the last failure (empty on success)
  std::optional<ScenarioResult> result;
  /// Flight-recorder dump from the final failed attempt (null unless the
  /// recorder was live when the run died). The post-mortem artifact the
  /// degraded-run report carries for watchdog timeouts.
  json::Value flight_recording;

  [[nodiscard]] bool ok() const {
    return status == RunStatus::kOk || status == RunStatus::kRetried;
  }
  [[nodiscard]] json::Value to_json() const;
};

/// The degraded-run report for a whole batch: every spec gets an outcome
/// even when some fail — callers decide what a partial batch is worth.
struct BatchReport {
  std::vector<RunOutcome> outcomes;
  /// Disk-cache entries that failed integrity checks and were quarantined
  /// and recomputed during this runner's lifetime.
  std::uint64_t cache_entries_recomputed = 0;
  /// Prefix snapshot reuse during this batch (zero/zero when the runner has
  /// prefix_reuse off): a hit forked a warmed prefix, a miss simulated one.
  std::uint64_t prefix_hits = 0;
  std::uint64_t prefix_misses = 0;

  [[nodiscard]] bool all_ok() const;
  [[nodiscard]] std::size_t count(RunStatus s) const;
  /// Schema: see docs/MODEL.md §"Degraded-run report".
  [[nodiscard]] json::Value to_json() const;
};

class ScenarioRunner {
 public:
  struct Options {
    /// Worker threads for batches (0 = all hardware threads).
    unsigned jobs = 0;
    /// Multiplies sample counts / fixed horizons, like the benches'
    /// --scale always has.
    double scale = 1.0;
    /// In-memory result cache keyed by (digest, seed, scale).
    bool cache = true;
    /// Also persist results under this directory (empty = memory only).
    /// Created (recursively) if missing; if it ends up unwritable the
    /// runner warns once on stderr and falls back to memory-only caching.
    std::string cache_dir;
    /// Watchdog: abort a run (ScenarioTimeout) after this many simulated
    /// events (0 = unlimited).
    std::uint64_t max_events = 0;
    /// Watchdog: abort a run (ScenarioTimeout) after this much wall-clock
    /// time (0 = unlimited).
    double wall_limit_s = 0.0;
    /// Attempts for specs flagged `transient` (reseeded per retry); specs
    /// not flagged always get exactly one attempt.
    int max_attempts = 2;
    /// Share simulated prefixes across scenarios: specs whose (machine,
    /// kernel, workloads) agree fork one warmed-up snapshot from a bounded
    /// in-memory LRU instead of each building and booting a platform. A
    /// forked run is bit-reproducible (same spec + seed → same result) but
    /// numerically different from a cold run of the same spec — the child's
    /// streams derive from a fork label — so cached results carry a fork
    /// marker in their key. Off by default; `shieldctl run` turns it on.
    bool prefix_reuse = false;
    /// Bound on distinct warmed prefixes kept resident (LRU beyond it).
    std::size_t prefix_cache_entries = 8;
    /// Diagnostic escape hatch: always simulate the entire horizon even
    /// after a sample-bound probe has banked its budget (the pre-stop
    /// semantics). The probe result is identical either way — probes
    /// freeze and exit at their budget — but the kernel latency report and
    /// telemetry timeline then cover the full slack window. Results run
    /// this way keep the legacy cache-key form.
    bool full_horizon = false;
  };

  /// Observation points for runs that need more than the cacheable result
  /// (e.g. --trace). Any hook forces a fresh simulation: hooks see live
  /// Platform/Probe state the cache cannot reproduce.
  struct Hooks {
    /// After workloads are installed, before the probe is constructed.
    std::function<void(Platform&)> configured;
    /// After the horizon has elapsed, before the result is extracted.
    std::function<void(Platform&, rt::Probe&)> finished;
  };

  ScenarioRunner() : ScenarioRunner(Options{}) {}
  explicit ScenarioRunner(Options opt);
  ~ScenarioRunner();

  [[nodiscard]] const Options& options() const { return opt_; }

  /// Prefix snapshot reuse counters (see Options::prefix_reuse).
  struct PrefixStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] PrefixStats prefix_stats() const {
    return {prefix_hits_.load(), prefix_misses_.load()};
  }

  /// Verification harness for the snapshot layer: run `spec` three ways —
  /// an ordinary uninterrupted run, an arena-hosted run snapshotted at
  /// mid-horizon and continued, and a restore of that snapshot replayed to
  /// the horizon — and return each run's full serialized output (scenario
  /// result + kernel latency report). `identical` means all three are
  /// byte-for-byte equal, which is the soundness gate for fork reuse.
  struct SnapshotCheck {
    bool identical = false;
    std::size_t snapshot_bytes = 0;
    std::string baseline;
    std::string continued;
    std::string resumed;
  };
  SnapshotCheck snapshot_bit_identity(const ScenarioSpec& spec,
                                      std::uint64_t seed);

  /// Run one scenario at one seed, synchronously in this thread.
  ScenarioResult run(const ScenarioSpec& spec, std::uint64_t seed,
                     const Hooks& hooks = {});

  /// Run many scenarios in parallel; seeds derive from `root_seed` per
  /// spec *name*, so adding or reordering specs does not reshuffle the
  /// streams of the others. Results come back in spec order.
  std::vector<ScenarioResult> run_batch(const std::vector<ScenarioSpec>& specs,
                                        std::uint64_t root_seed);

  /// Run one scenario at `repeats` derived seeds in parallel
  /// (seed fan-out for jitter-of-jitter studies).
  std::vector<ScenarioResult> run_seeds(const ScenarioSpec& spec,
                                        std::uint64_t root_seed, int repeats);

  /// Like run(), but never throws: failures, timeouts and (for transient
  /// specs) bounded reseeded retries are folded into the outcome record.
  RunOutcome run_outcome(const ScenarioSpec& spec, std::uint64_t seed);

  /// Hardened batch: every spec runs to an outcome regardless of other
  /// specs failing; the report carries per-spec status plus cache-repair
  /// accounting. Seeds derive like run_batch's.
  BatchReport run_batch_report(const std::vector<ScenarioSpec>& specs,
                               std::uint64_t root_seed);

  /// Disk-cache entries quarantined + recomputed so far (integrity check
  /// failures: truncated writes, corruption, checksum mismatches).
  [[nodiscard]] std::uint64_t cache_entries_recomputed() const {
    return cache_recomputed_.load();
  }

 private:
  class PrefixCache;

  ScenarioResult run_uncached(const ScenarioSpec& spec, std::uint64_t seed,
                              const Hooks& hooks);
  ScenarioResult run_forked(const ScenarioSpec& spec, std::uint64_t seed);
  void run_to_horizon(const ScenarioSpec& spec, Platform& p,
                      sim::Duration horizon, const rt::Probe& probe) const;
  [[nodiscard]] std::string cache_key(const std::string& digest,
                                      std::uint64_t seed, bool forked) const;
  [[nodiscard]] std::string cache_path(const std::string& key) const;

  Options opt_;
  bench::SweepRunner sweep_;
  std::mutex cache_mutex_;
  std::map<std::string, ScenarioResult> memory_cache_;
  std::atomic<std::uint64_t> cache_recomputed_{0};
  std::unique_ptr<PrefixCache> prefix_cache_;
  std::atomic<std::uint64_t> prefix_hits_{0};
  std::atomic<std::uint64_t> prefix_misses_{0};
};

/// Expand a parameter grid over a base spec: `grid` is a JSON object
/// mapping probe-parameter keys to arrays of values; the result is the
/// cartesian product, each copy named `<base>/<key>=<value>/...` with the
/// value substituted into probe_params. Order: last key varies fastest.
[[nodiscard]] std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                                    const json::Value& grid);

}  // namespace config

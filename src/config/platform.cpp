#include "config/platform.h"

#include "sim/assert.h"

namespace config {

Platform::Platform(const MachineConfig& machine, const KernelConfig& kcfg,
                   std::uint64_t seed, std::optional<bool> ht_override)
    : machine_(machine) {
  const bool ht = ht_override.value_or(kcfg.default_hyperthreading) &&
                  machine.hyperthreading_capable;
  engine_ = std::make_unique<sim::Engine>(seed);
  topo_ = std::make_unique<hw::Topology>(machine.physical_cores, ht,
                                         machine.cpu_ghz);
  mem_ = std::make_unique<hw::MemorySystem>(*engine_, *topo_, machine.memory);
  ic_ = std::make_unique<hw::InterruptController>(*engine_, *topo_);

  rtc_dev_ = std::make_unique<hw::RtcDevice>(*engine_, *ic_);
  nic_dev_ = std::make_unique<hw::NicDevice>(*engine_, *ic_);
  disk_dev_ = std::make_unique<hw::DiskDevice>(*engine_, *ic_);
  gpu_dev_ = std::make_unique<hw::GpuDevice>(*engine_, *ic_);
  if (machine.has_rcim && kcfg.rcim_driver) {
    rcim_dev_ = std::make_unique<hw::RcimDevice>(*engine_, *ic_);
  }

  kernel_ = std::make_unique<kernel::Kernel>(*engine_, *topo_, *mem_, *ic_,
                                             kcfg);

  rtc_drv_ = std::make_unique<kernel::RtcDriver>(*kernel_, *rtc_dev_);
  nic_drv_ = std::make_unique<kernel::NicDriver>(*kernel_, *nic_dev_);
  disk_drv_ = std::make_unique<kernel::DiskDriver>(*kernel_, *disk_dev_);
  gpu_drv_ = std::make_unique<kernel::GpuDriver>(*kernel_, *gpu_dev_);
  if (rcim_dev_ != nullptr) {
    rcim_drv_ = std::make_unique<kernel::RcimDriver>(*kernel_, *rcim_dev_);
  }
  if (kcfg.shield_support) {
    shield_ = std::make_unique<shield::ShieldController>(*kernel_);
  }
}

void Platform::boot() { kernel_->start(); }

void Platform::run_for(sim::Duration d) {
  engine_->run_until(engine_->now() + d);
}

void Platform::run_until(sim::Time t) { engine_->run_until(t); }

hw::RcimDevice& Platform::rcim_device() {
  SIM_ASSERT_MSG(rcim_dev_ != nullptr, "machine has no RCIM card");
  return *rcim_dev_;
}

kernel::RcimDriver& Platform::rcim_driver() {
  SIM_ASSERT_MSG(rcim_drv_ != nullptr, "no RCIM driver loaded");
  return *rcim_drv_;
}

shield::ShieldController& Platform::shield() {
  SIM_ASSERT_MSG(shield_ != nullptr, "kernel has no shield support");
  return *shield_;
}

}  // namespace config

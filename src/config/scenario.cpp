#include "config/scenario.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "rt/probe.h"
#include "workload/registry.h"

namespace config {
namespace {

using json::Value;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("scenario: " + what);
}

const std::string& str_field(const Value& v, const std::string& key) {
  if (!v.is_string()) fail("'" + key + "' must be a string");
  return v.as_string();
}

std::string shield_mode_token(ShieldPlan::Mode m) {
  switch (m) {
    case ShieldPlan::Mode::kNone: return "none";
    case ShieldPlan::Mode::kShieldAll: return "shield-all";
    case ShieldPlan::Mode::kDedicate: return "dedicate";
    case ShieldPlan::Mode::kComponents: return "components";
  }
  return "none";
}

ShieldPlan::Mode shield_mode_from(const std::string& token) {
  if (token == "none") return ShieldPlan::Mode::kNone;
  if (token == "shield-all") return ShieldPlan::Mode::kShieldAll;
  if (token == "dedicate") return ShieldPlan::Mode::kDedicate;
  if (token == "components") return ShieldPlan::Mode::kComponents;
  fail("unknown shield mode '" + token + "'");
}

Value shield_to_json(const ShieldPlan& s) {
  Value v = Value::object();
  v.set("mode", shield_mode_token(s.mode));
  v.set("cpu", s.cpu);
  if (s.mode == ShieldPlan::Mode::kComponents) {
    v.set("procs", s.procs);
    v.set("irqs", s.irqs);
    v.set("ltmr", s.ltmr);
    v.set("bind_irq", s.bind_irq);
  }
  return v;
}

ShieldPlan shield_from_json(const Value& v) {
  if (!v.is_object()) fail("'shield' must be an object");
  ShieldPlan s;
  for (const auto& [key, val] : v.members()) {
    if (key == "mode") {
      s.mode = shield_mode_from(str_field(val, "shield.mode"));
    } else if (key == "cpu") {
      s.cpu = static_cast<int>(val.as_i64());
    } else if (key == "procs") {
      s.procs = val.as_bool();
    } else if (key == "irqs") {
      s.irqs = val.as_bool();
    } else if (key == "ltmr") {
      s.ltmr = val.as_bool();
    } else if (key == "bind_irq") {
      s.bind_irq = val.as_bool();
    } else {
      fail("unknown shield key '" + key + "'");
    }
  }
  return s;
}

Value duration_to_json(const DurationPolicy& d) {
  Value v = Value::object();
  if (d.fixed_ns > 0) {
    v.set("fixed_ns", d.fixed_ns);
  } else {
    v.set("factor", d.factor);
    v.set("margin_ns", d.margin_ns);
  }
  return v;
}

DurationPolicy duration_from_json(const Value& v) {
  if (!v.is_object()) fail("'duration' must be an object");
  DurationPolicy d;
  for (const auto& [key, val] : v.members()) {
    if (key == "factor") {
      d.factor = val.as_double();
    } else if (key == "margin_ns") {
      d.margin_ns = val.as_u64();
    } else if (key == "fixed_ns") {
      d.fixed_ns = val.as_u64();
    } else {
      fail("unknown duration key '" + key + "'");
    }
  }
  return d;
}

Value telemetry_to_json(const TelemetryPlan& t) {
  Value v = Value::object();
  if (t.sampler) {
    v.set("sampler", true);
    if (t.sample_period_ns != 10 * sim::kMillisecond) {
      v.set("sample_period_ns", t.sample_period_ns);
    }
  }
  if (t.flight_recorder) {
    v.set("flight_recorder", true);
    if (t.flight_capacity != 4096) v.set("flight_capacity", t.flight_capacity);
  }
  return v;
}

TelemetryPlan telemetry_from_json(const Value& v) {
  if (!v.is_object()) fail("'telemetry' must be an object");
  TelemetryPlan t;
  for (const auto& [key, val] : v.members()) {
    if (key == "sampler") {
      t.sampler = val.as_bool();
    } else if (key == "sample_period_ns") {
      t.sample_period_ns = static_cast<sim::Duration>(val.as_i64());
    } else if (key == "flight_recorder") {
      t.flight_recorder = val.as_bool();
    } else if (key == "flight_capacity") {
      t.flight_capacity = static_cast<int>(val.as_i64());
    } else {
      fail("unknown telemetry key '" + key + "'");
    }
  }
  return t;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

/// Parse-time override-key check: reject a typo where it was written, with
/// a did-you-mean hint, instead of letting it ride to validate()/run time.
void check_override_keys(const Value& overrides) {
  const std::vector<std::string> known = kernel_override_keys();
  for (const auto& [key, val] : overrides.members()) {
    (void)val;
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    std::string best;
    std::size_t best_d = 4;  // suggest only near-misses
    for (const auto& k : known) {
      const std::size_t d = edit_distance(key, k);
      if (d < best_d) {
        best_d = d;
        best = k;
      }
    }
    std::string msg = "unknown kernel override '" + key + "'";
    if (!best.empty()) msg += " (did you mean '" + best + "'?)";
    fail(msg);
  }
}

}  // namespace

json::Value ScenarioSpec::to_json() const {
  Value v = Value::object();
  v.set("name", name);
  v.set("title", title);
  v.set("description", description);
  v.set("group", group);
  v.set("machine", machine);
  v.set("kernel", kernel);
  v.set("kernel_overrides", kernel_overrides);
  v.set("ht_override", ht_override ? Value(*ht_override) : Value());
  Value wl = Value::array();
  for (const auto& w : workloads) {
    Value e = Value::object();
    e.set("name", w.name);
    e.set("params", w.params);
    wl.push(std::move(e));
  }
  v.set("workloads", std::move(wl));
  v.set("probe", probe);
  v.set("probe_params", probe_params);
  // Emitted only when non-default so pre-mechanism spec digests — and their
  // cached byte-identical outputs — are unchanged.
  if (mechanism != "inband") v.set("mechanism", mechanism);
  v.set("shield", shield_to_json(shield));
  v.set("duration", duration_to_json(duration));
  // Emitted only when set so fault-free scenario digests are unchanged.
  if (!faults.empty()) v.set("faults", faults.to_json());
  if (transient) v.set("transient", true);
  if (!telemetry.is_default()) v.set("telemetry", telemetry_to_json(telemetry));
  v.set("paper_ref", paper_ref);
  return v;
}

ScenarioSpec ScenarioSpec::from_json(const json::Value& v) {
  if (!v.is_object()) fail("spec must be a JSON object");
  ScenarioSpec s;
  for (const auto& [key, val] : v.members()) {
    if (key == "name") {
      s.name = str_field(val, key);
    } else if (key == "title") {
      s.title = str_field(val, key);
    } else if (key == "description") {
      s.description = str_field(val, key);
    } else if (key == "group") {
      s.group = str_field(val, key);
    } else if (key == "machine") {
      s.machine = str_field(val, key);
    } else if (key == "kernel") {
      s.kernel = str_field(val, key);
    } else if (key == "kernel_overrides") {
      if (!val.is_object()) fail("'kernel_overrides' must be an object");
      check_override_keys(val);
      s.kernel_overrides = val;
    } else if (key == "ht_override") {
      s.ht_override =
          val.is_null() ? std::nullopt : std::optional<bool>(val.as_bool());
    } else if (key == "workloads") {
      if (!val.is_array()) fail("'workloads' must be an array");
      for (const auto& e : val.items()) {
        if (!e.is_object()) fail("workload entry must be an object");
        WorkloadRef w;
        for (const auto& [wkey, wval] : e.members()) {
          if (wkey == "name") {
            w.name = str_field(wval, "workload.name");
          } else if (wkey == "params") {
            if (!wval.is_object()) fail("workload params must be an object");
            w.params = wval;
          } else {
            fail("unknown workload key '" + wkey + "'");
          }
        }
        s.workloads.push_back(std::move(w));
      }
    } else if (key == "probe") {
      s.probe = str_field(val, key);
    } else if (key == "probe_params") {
      if (!val.is_object()) fail("'probe_params' must be an object");
      s.probe_params = val;
    } else if (key == "mechanism") {
      s.mechanism = str_field(val, key);
    } else if (key == "shield") {
      s.shield = shield_from_json(val);
    } else if (key == "duration") {
      s.duration = duration_from_json(val);
    } else if (key == "faults") {
      s.faults = fault::FaultPlan::from_json(val);
    } else if (key == "transient") {
      s.transient = val.as_bool();
    } else if (key == "telemetry") {
      s.telemetry = telemetry_from_json(val);
    } else if (key == "paper_ref") {
      s.paper_ref = str_field(val, key);
    } else {
      fail("unknown spec key '" + key + "'");
    }
  }
  return s;
}

std::string ScenarioSpec::digest() const {
  // The digest keys the result caches, so it must cover exactly the fields
  // that can change a fixed-(seed, scale) run's output — no more, no less.
  // Presentation fields (title, description, group, paper_ref) are
  // excluded: editing prose must never invalidate a cache. So is
  // `transient`: it only governs whether *failures* are retried at derived
  // seeds, never what any single (spec, seed) attempt simulates. `name`
  // stays in — it is copied into the result JSON.
  Value v = to_json();
  Value d = Value::object();
  for (const auto& [key, val] : v.members()) {
    if (key == "title" || key == "description" || key == "group" ||
        key == "paper_ref" || key == "transient") {
      continue;
    }
    d.set(key, val);
  }
  return json::content_digest(d);
}

void ScenarioSpec::validate() const {
  if (name.empty()) fail("spec has no name");
  if (!find_machine(machine)) {
    fail("'" + name + "': unknown machine preset '" + machine + "'");
  }
  const auto kcfg = find_kernel(kernel);
  if (!kcfg) fail("'" + name + "': unknown kernel preset '" + kernel + "'");
  {
    KernelConfig probe_cfg = *kcfg;
    apply_kernel_overrides(probe_cfg, kernel_overrides);  // throws on bad key
  }
  for (const auto& w : workloads) {
    if (!workload::registry_contains(w.name)) {
      fail("'" + name + "': unknown workload '" + w.name + "'");
    }
    (void)workload::make_workload(w.name, w.params);  // validates params
  }
  if (!rt::probe_contains(probe)) {
    fail("'" + name + "': unknown probe '" + probe + "'");
  }
  if (mechanism != "inband" && mechanism != "oob") {
    fail("'" + name + "': unknown mechanism '" + mechanism +
         "' (expected 'inband' or 'oob')");
  }
  if (rt::probe_duration_bound(probe)) {
    if (duration.fixed_ns == 0) {
      fail("'" + name + "': probe '" + probe +
           "' is duration-bound and needs duration.fixed_ns");
    }
  } else if (duration.fixed_ns == 0 && duration.factor <= 0.0) {
    fail("'" + name + "': duration.factor must be positive");
  }
  faults.validate(name);  // throws naming the offending fault + field
  if (telemetry.sampler && telemetry.sample_period_ns <= 0) {
    fail("'" + name + "': telemetry.sample_period_ns must be positive");
  }
  if (telemetry.flight_recorder && telemetry.flight_capacity <= 0) {
    fail("'" + name + "': telemetry.flight_capacity must be positive");
  }
}

// ---- preset lookups --------------------------------------------------------

std::vector<std::string> machine_preset_names() {
  return {"dual-p4-1400", "dual-p3-933", "dual-p4-2000-rcim",
          "quad-p4-2000-rcim"};
}

std::optional<MachineConfig> find_machine(const std::string& token) {
  if (token == "dual-p4-1400") return MachineConfig::dual_p4_xeon_1400();
  if (token == "dual-p3-933") return MachineConfig::dual_p3_xeon_933();
  if (token == "dual-p4-2000-rcim") {
    return MachineConfig::dual_p4_xeon_2000_rcim();
  }
  if (token == "quad-p4-2000-rcim") {
    return MachineConfig::quad_p4_xeon_2000_rcim();
  }
  return std::nullopt;
}

std::vector<std::string> kernel_preset_names() {
  return {"vanilla-2.4.20", "preempt-lowlat", "redhawk-1.4"};
}

std::optional<KernelConfig> find_kernel(const std::string& token) {
  if (token == "vanilla-2.4.20") return KernelConfig::vanilla_2_4_20();
  if (token == "redhawk-1.4") return KernelConfig::redhawk_1_4();
  if (token == "preempt-lowlat") return KernelConfig::patched_preempt_lowlat();
  return std::nullopt;
}

void apply_kernel_overrides(KernelConfig& cfg, const json::Value& overrides) {
  if (!overrides.is_object()) fail("kernel_overrides must be an object");
  for (const auto& [key, v] : overrides.members()) {
    if (key == "name") {
      cfg.name = v.as_string();
    } else if (key == "scheduler") {
      const std::string& s = v.as_string();
      if (s == "goodness24") {
        cfg.scheduler = SchedulerKind::kGoodness24;
      } else if (s == "o1") {
        cfg.scheduler = SchedulerKind::kO1;
      } else {
        fail("scheduler must be 'goodness24' or 'o1'");
      }
    } else if (key == "preempt_kernel") {
      cfg.preempt_kernel = v.as_bool();
    } else if (key == "low_latency") {
      cfg.low_latency = v.as_bool();
    } else if (key == "softirq_daemon_offload") {
      cfg.softirq_daemon_offload = v.as_bool();
    } else if (key == "bkl_ioctl_flag") {
      cfg.bkl_ioctl_flag = v.as_bool();
    } else if (key == "shield_support") {
      cfg.shield_support = v.as_bool();
    } else if (key == "rcim_driver") {
      cfg.rcim_driver = v.as_bool();
    } else if (key == "posix_timers") {
      cfg.posix_timers = v.as_bool();
    } else if (key == "default_hyperthreading") {
      cfg.default_hyperthreading = v.as_bool();
    } else if (key == "local_timer_period_ns") {
      cfg.local_timer_period = v.as_u64();
    } else if (key == "tick_cost_min_ns") {
      cfg.tick_cost_min = v.as_u64();
    } else if (key == "tick_cost_max_ns") {
      cfg.tick_cost_max = v.as_u64();
    } else if (key == "syscall_entry_cost_ns") {
      cfg.syscall_entry_cost = v.as_u64();
    } else if (key == "syscall_exit_cost_ns") {
      cfg.syscall_exit_cost = v.as_u64();
    } else if (key == "ctx_switch_cost_ns") {
      cfg.ctx_switch_cost = v.as_u64();
    } else if (key == "irq_entry_cost_ns") {
      cfg.irq_entry_cost = v.as_u64();
    } else if (key == "irq_exit_cost_ns") {
      cfg.irq_exit_cost = v.as_u64();
    } else if (key == "sched_pick_base_ns") {
      cfg.sched_pick_base = v.as_u64();
    } else if (key == "sched_pick_per_task_ns") {
      cfg.sched_pick_per_task = v.as_u64();
    } else if (key == "section_min_ns") {
      cfg.section_min = v.as_u64();
    } else if (key == "section_max_ns") {
      cfg.section_max = v.as_u64();
    } else if (key == "section_alpha") {
      cfg.section_alpha = v.as_double();
    } else if (key == "syscall_body_max_ns") {
      cfg.syscall_body_max = v.as_u64();
    } else if (key == "body_long_probability") {
      cfg.body_long_probability = v.as_double();
    } else if (key == "body_long_alpha") {
      cfg.body_long_alpha = v.as_double();
    } else if (key == "fd_path_contended_lock_probability") {
      cfg.fd_path_contended_lock_probability = v.as_double();
    } else if (key == "softirq_budget_in_irq_ns") {
      cfg.softirq_budget_in_irq = v.as_u64();
    } else if (key == "softirq_max_restart") {
      cfg.softirq_max_restart = static_cast<int>(v.as_i64());
    } else if (key == "ksoftirqd_chunk_ns") {
      cfg.ksoftirqd_chunk = v.as_u64();
    } else if (key == "fault_mean_interval_ns") {
      cfg.fault_mean_interval = v.as_u64();
    } else if (key == "fault_cost_min_ns") {
      cfg.fault_cost_min = v.as_u64();
    } else if (key == "fault_cost_max_ns") {
      cfg.fault_cost_max = v.as_u64();
    } else if (key == "other_timeslice_ns") {
      cfg.other_timeslice = v.as_u64();
    } else if (key == "rr_timeslice_ns") {
      cfg.rr_timeslice = v.as_u64();
    } else if (key == "oob_dispatch_cost_ns") {
      cfg.oob_dispatch_cost = v.as_u64();
    } else if (key == "oob_switch_cost_ns") {
      cfg.oob_switch_cost = v.as_u64();
    } else {
      fail("unknown kernel override '" + key + "'");
    }
  }
}

std::vector<std::string> kernel_override_keys() {
  // Must cover exactly the keys apply_kernel_overrides accepts;
  // test_scenario cross-checks by applying every listed key.
  return {"name",
          "scheduler",
          "preempt_kernel",
          "low_latency",
          "softirq_daemon_offload",
          "bkl_ioctl_flag",
          "shield_support",
          "rcim_driver",
          "posix_timers",
          "default_hyperthreading",
          "local_timer_period_ns",
          "tick_cost_min_ns",
          "tick_cost_max_ns",
          "syscall_entry_cost_ns",
          "syscall_exit_cost_ns",
          "ctx_switch_cost_ns",
          "irq_entry_cost_ns",
          "irq_exit_cost_ns",
          "sched_pick_base_ns",
          "sched_pick_per_task_ns",
          "section_min_ns",
          "section_max_ns",
          "section_alpha",
          "syscall_body_max_ns",
          "body_long_probability",
          "body_long_alpha",
          "fd_path_contended_lock_probability",
          "softirq_budget_in_irq_ns",
          "softirq_max_restart",
          "ksoftirqd_chunk_ns",
          "fault_mean_interval_ns",
          "fault_cost_min_ns",
          "fault_cost_max_ns",
          "other_timeslice_ns",
          "rr_timeslice_ns",
          "oob_dispatch_cost_ns",
          "oob_switch_cost_ns"};
}

}  // namespace config

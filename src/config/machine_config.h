// Machine (testbed) descriptions.
//
// The paper uses three dual-Xeon boxes; each is a preset here. Whether
// hyperthreading is *used* is a kernel property (§5.2: vanilla enables it,
// RedHawk disables it), so the machine only records capability.
#pragma once

#include <string>

#include "hw/memory_system.h"

namespace config {

struct MachineConfig {
  std::string name = "machine";
  int physical_cores = 2;
  bool hyperthreading_capable = true;
  double cpu_ghz = 1.4;
  hw::MemorySystemParams memory;
  bool has_rcim = false;  ///< RCIM PCI card installed

  /// §5.1: dual 1.4 GHz Pentium 4 Xeon, 1 GB RAM, SCSI (determinism tests).
  static MachineConfig dual_p4_xeon_1400();
  /// §6.1: dual 933 MHz Pentium 3 Xeon, 2 GB RAM, SCSI (realfeel tests).
  static MachineConfig dual_p3_xeon_933();
  /// §6.3: dual 2.0 GHz Pentium 4 Xeon with RCIM, 3c905C NIC, GeForce2.
  static MachineConfig dual_p4_xeon_2000_rcim();
  /// A larger SMP box (not in the paper) for multi-CPU-shield scenarios —
  /// §2 says "one or more shielded CPUs".
  static MachineConfig quad_p4_xeon_2000_rcim();
};

}  // namespace config

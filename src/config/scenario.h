// Declarative scenario description.
//
// A ScenarioSpec is pure data: machine preset, kernel preset (+ field
// overrides), hyperthreading override, workload list, RT probe + params,
// shield plan and duration policy. It serializes to/from JSON, validates
// against the workload/probe registries, and hashes to a stable digest —
// the cache key ScenarioRunner uses. Every figure and ablation in this
// repository is one of these records (see the registry in experiment.h);
// nothing about an experiment lives in bench code any more.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "config/json.h"
#include "config/kernel_config.h"
#include "config/machine_config.h"
#include "fault/fault_plan.h"
#include "sim/time.h"

namespace config {

/// One background load: a workload-registry name plus its parameters.
struct WorkloadRef {
  std::string name;
  json::Value params = json::Value::object();
};

/// How the scenario pins and shields the RT side after boot.
struct ShieldPlan {
  enum class Mode {
    kNone,        ///< no shielding
    kShieldAll,   ///< shield_all(cpu): procs + irqs + local timer
    kDedicate,    ///< dedicate_cpu(cpu, probe task, probe irq)
    kComponents,  ///< individual procs/irqs/ltmr switches (ablation A)
  };
  Mode mode = Mode::kNone;
  int cpu = 1;
  // kComponents only:
  bool procs = false;
  bool irqs = false;
  bool ltmr = false;
  /// kComponents: additionally bind the probe's IRQ to `cpu` through the
  /// procfs smp_affinity file (the "user intent" write ablation A makes
  /// in every case, shielded or not).
  bool bind_irq = false;
};

/// Simulated-time horizon. fixed_ns > 0 → horizon = fixed_ns * scale
/// (duration-bound probes); otherwise horizon = probe base duration *
/// factor + margin_ns (sample-bound probes, already scaled through their
/// sample counts).
struct DurationPolicy {
  double factor = 2.0;
  sim::Duration margin_ns = 5 * sim::kSecond;
  sim::Duration fixed_ns = 0;
};

/// Per-run telemetry switches: the registry itself is always live (it is
/// how the kernel's counters are stored), but the sampler and the flight
/// recorder only run when a scenario opts in. A default plan is not
/// serialized, so the digests of telemetry-free scenarios are unchanged and
/// their outputs stay bit-identical.
struct TelemetryPlan {
  /// Snapshot registry deltas every `sample_period_ns` of sim time into the
  /// result's timeline.
  bool sampler = false;
  sim::Duration sample_period_ns = 10 * sim::kMillisecond;
  /// Keep a ring of recent events for post-mortem dumps. (The runner also
  /// force-enables the ring whenever a watchdog is armed.)
  bool flight_recorder = false;
  int flight_capacity = 4096;

  /// Period and capacity are inert while their switch is off, so a plan
  /// counts as default — and serializes to nothing — when both are off.
  [[nodiscard]] bool is_default() const { return !sampler && !flight_recorder; }
};

struct ScenarioSpec {
  std::string name;         ///< registry key, e.g. "fig6"
  std::string title;        ///< display title, e.g. "Figure 6: ..."
  std::string description;  ///< one-liner for `shieldctl list`
  std::string group;        ///< "figure", "ablation", "sweep", ...

  std::string machine = "dual-p4-1400";      ///< machine preset token
  std::string kernel = "vanilla-2.4.20";     ///< kernel preset token
  /// KernelConfig field overrides applied over the preset (JSON object,
  /// e.g. {"section_max_ns": 8000000, "section_alpha": 1.1}).
  json::Value kernel_overrides = json::Value::object();
  std::optional<bool> ht_override;

  std::vector<WorkloadRef> workloads;

  std::string probe = "realfeel";  ///< probe registry name
  json::Value probe_params = json::Value::object();

  /// Interrupt-delivery mechanism: "inband" (the paper's kernels; default)
  /// or "oob" (the dual-kernel out-of-band stage — the probe task and its
  /// IRQ line are adopted by kernel::OobPipeline). The default is not
  /// serialized, so every pre-existing spec's digest — and its cached,
  /// byte-identical output — is unchanged.
  std::string mechanism = "inband";

  ShieldPlan shield;
  DurationPolicy duration;

  /// Optional fault plan executed by fault::Injector during the run. An
  /// empty plan is the default and is not serialized, so the digests of
  /// fault-free scenarios are unchanged.
  fault::FaultPlan faults;

  /// Scenarios whose failures are known-transient (e.g. probabilistic
  /// fault plans near an assertion boundary): ScenarioRunner retries them
  /// with a reseeded derived seed before reporting failure.
  bool transient = false;

  /// Optional telemetry (sampler timeline + flight recorder). The default
  /// plan is all-off and is not serialized.
  TelemetryPlan telemetry;

  /// The paper's reference numbers for this scenario (may be empty).
  std::string paper_ref;

  [[nodiscard]] json::Value to_json() const;
  static ScenarioSpec from_json(const json::Value& v);

  /// Content hash of the canonical JSON form — with the seed and scale,
  /// the result-cache key.
  [[nodiscard]] std::string digest() const;

  /// Check every token against its registry (machine, kernel, workloads +
  /// their params, probe + params, override keys, plan consistency).
  /// Throws std::runtime_error naming the offending field.
  void validate() const;
};

// ---- preset lookups --------------------------------------------------------

[[nodiscard]] std::vector<std::string> machine_preset_names();
[[nodiscard]] std::optional<MachineConfig> find_machine(
    const std::string& token);

[[nodiscard]] std::vector<std::string> kernel_preset_names();
[[nodiscard]] std::optional<KernelConfig> find_kernel(const std::string& token);

/// Apply a JSON object of KernelConfig overrides (keys as documented in
/// docs/MODEL.md, e.g. "preempt_kernel", "section_max_ns"). Throws
/// std::runtime_error on an unknown key.
void apply_kernel_overrides(KernelConfig& cfg, const json::Value& overrides);

/// Every override key apply_kernel_overrides accepts (kept in sync by
/// test_scenario). ScenarioSpec::from_json rejects unknown keys against
/// this list at parse time — with a did-you-mean suggestion — so a typo
/// like "fault_mean_interval_nss" fails where it was written, not at run
/// time (or never).
[[nodiscard]] std::vector<std::string> kernel_override_keys();

}  // namespace config

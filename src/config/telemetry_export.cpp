#include "config/telemetry_export.h"

namespace config {

using json::Value;

json::Value telemetry_counters_json(const telemetry::Registry& reg) {
  Value v = Value::object();
  for (const auto& s : reg.snapshot()) v.set(s.series, s.value);
  return v;
}

json::Value telemetry_timeline_json(const telemetry::Sampler& sampler) {
  Value v = Value::object();
  v.set("schema", "telemetry-timeline-v1");
  v.set("period_ns", sampler.period());
  Value series = Value::array();
  for (const auto& name : sampler.series_names()) series.push(name);
  v.set("series", std::move(series));
  Value points = Value::array();
  for (const auto& p : sampler.points()) {
    Value point = Value::object();
    point.set("t", p.at);
    Value deltas = Value::array();
    for (const auto& [index, delta] : p.deltas) {
      Value pair = Value::array();
      pair.push(index);
      pair.push(delta);
      deltas.push(std::move(pair));
    }
    point.set("d", std::move(deltas));
    points.push(std::move(point));
  }
  v.set("points", std::move(points));
  return v;
}

json::Value flight_dump_json(const telemetry::FlightRecorder& fr) {
  Value v = Value::object();
  v.set("schema", "flight-recorder-v1");
  v.set("capacity", fr.capacity());
  v.set("recorded", fr.total_recorded());
  v.set("dropped", fr.dropped());
  Value events = Value::array();
  for (const auto& e : fr.entries()) {
    Value ev = Value::object();
    ev.set("t_ns", e.at);
    ev.set("kind", to_string(e.kind));
    ev.set("cpu", e.cpu);
    ev.set("a", e.a);
    ev.set("b", e.b);
    events.push(std::move(ev));
  }
  v.set("events", std::move(events));
  return v;
}

}  // namespace config

// Named, runnable experiment descriptions.
//
// An Experiment bundles everything one measurement needs — machine, kernel,
// workloads, the RT probe, the shield plan, and a duration policy — behind
// a name like "fig6" or "rcim-shielded". The bench binaries, the shieldctl
// CLI, and downstream users all build scenarios through this registry
// instead of re-wiring platforms by hand.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "config/platform.h"
#include "metrics/histogram.h"

namespace config {

/// What an experiment run produced.
struct ExperimentResult {
  std::string name;
  std::string description;
  metrics::LatencyHistogram latencies;  ///< the experiment's primary metric
  std::string metric_name;              ///< what `latencies` measures
  sim::Duration ideal = 0;              ///< for determinism runs (else 0)
  std::uint64_t events = 0;             ///< simulator events executed
  /// Render the result the way the paper reports this experiment.
  [[nodiscard]] std::string render() const;
};

/// A runnable scenario.
class Experiment {
 public:
  struct Spec {
    std::string name;
    std::string description;
    /// Scale factor multiplies sample counts (1.0 = bench default).
    std::function<ExperimentResult(std::uint64_t seed, double scale)> run;
  };

  explicit Experiment(Spec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const std::string& description() const {
    return spec_.description;
  }
  ExperimentResult run(std::uint64_t seed = 2003, double scale = 1.0) const {
    return spec_.run(seed, scale);
  }

 private:
  Spec spec_;
};

/// The registry of every experiment this repository reproduces.
class ExperimentRegistry {
 public:
  /// The built-in registry (fig1..fig7, ablation scenarios).
  static const ExperimentRegistry& builtin();

  [[nodiscard]] const Experiment* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const std::vector<Experiment>& all() const {
    return experiments_;
  }

  void add(Experiment::Spec spec) {
    experiments_.emplace_back(std::move(spec));
  }

 private:
  std::vector<Experiment> experiments_;
};

}  // namespace config

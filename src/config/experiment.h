// The scenario registry: every experiment this repository reproduces,
// as data.
//
// Each figure, ablation case and sweep point is one declarative
// ScenarioSpec (see scenario.h) — machine + kernel presets, workload list,
// probe, shield plan, duration policy. The bench binaries, the shieldctl
// CLI and the tests all pull specs from here and execute them through
// config::ScenarioRunner; none of them wires a Platform by hand.
#pragma once

#include <string>
#include <vector>

#include "config/scenario.h"

namespace config {

class ScenarioRegistry {
 public:
  /// Every built-in scenario (fig1..fig7 plus the ablations and sweeps).
  static const ScenarioRegistry& builtin();

  [[nodiscard]] const ScenarioSpec* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const std::vector<ScenarioSpec>& all() const { return specs_; }
  /// Specs whose group tag matches (e.g. "figure", "ablation").
  [[nodiscard]] std::vector<const ScenarioSpec*> group(
      const std::string& g) const;

  /// Throws std::runtime_error on a duplicate name.
  void add(ScenarioSpec spec);

 private:
  std::vector<ScenarioSpec> specs_;
};

}  // namespace config

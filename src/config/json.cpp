#include "config/json.h"

#include <charconv>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace config::json {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("json: " + what);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) fail("not a bool");
  return bool_;
}

double Value::as_double() const {
  if (kind_ == Kind::kDouble) return dbl_;
  if (kind_ == Kind::kInt) {
    const auto mag = static_cast<double>(u64_);
    return neg_ ? -mag : mag;
  }
  fail("not a number");
}

std::int64_t Value::as_i64() const {
  if (kind_ != Kind::kInt) fail("not an integer");
  if (neg_) {
    if (u64_ > static_cast<std::uint64_t>(
                   std::numeric_limits<std::int64_t>::max()) +
                   1) {
      fail("integer out of int64 range");
    }
    return -static_cast<std::int64_t>(u64_ - 1) - 1;
  }
  if (u64_ > static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max())) {
    fail("integer out of int64 range");
  }
  return static_cast<std::int64_t>(u64_);
}

std::uint64_t Value::as_u64() const {
  if (kind_ != Kind::kInt || neg_) fail("not a non-negative integer");
  return u64_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) fail("not a string");
  return str_;
}

const Value::Array& Value::items() const {
  if (kind_ != Kind::kArray) fail("not an array");
  return arr_;
}

const Value::Object& Value::members() const {
  if (kind_ != Kind::kObject) fail("not an object");
  return obj_;
}

Value& Value::push(Value v) {
  if (kind_ != Kind::kArray) fail("push on non-array");
  arr_.push_back(std::move(v));
  return *this;
}

Value& Value::set(std::string_view key, Value v) {
  if (kind_ != Kind::kObject) fail("set on non-object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
  return *this;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kInt:
      return neg_ == other.neg_ && u64_ == other.u64_;
    case Kind::kDouble:
      return dbl_ == other.dbl_;
    case Kind::kString:
      return str_ == other.str_;
    case Kind::kArray:
      return arr_ == other.arr_;
    case Kind::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

// ---- dump -------------------------------------------------------------------

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInt: {
      if (neg_) out += '-';
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof buf, u64_);
      out.append(buf, res.ptr);
      return;
    }
    case Kind::kDouble: {
      char buf[40];
      const auto res = std::to_chars(buf, buf + sizeof buf, dbl_);
      out.append(buf, res.ptr);
      return;
    }
    case Kind::kString:
      dump_string(out, str_);
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        if (indent >= 0) append_newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        if (indent >= 0) append_newline_indent(out, indent, depth + 1);
        dump_string(out, k);
        out += indent >= 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---- parse ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) error("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void error(const std::string& what) const {
    fail(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        if (!consume("true")) error("bad literal");
        return Value(true);
      case 'f':
        if (!consume("false")) error("bad literal");
        return Value(false);
      case 'n':
        if (!consume("null")) error("bad literal");
        return Value();
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    ++pos_;  // '{'
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') error("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') error("expected ':'");
      ++pos_;
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      error("expected ',' or '}'");
    }
  }

  Value parse_array() {
    ++pos_;  // '['
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      error("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) error("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              error("bad \\u escape");
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported;
          // the serializer never emits them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          error("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") error("bad number");
    if (!is_double) {
      std::uint64_t mag = 0;
      const std::string_view digits = negative ? tok.substr(1) : tok;
      const auto res =
          std::from_chars(digits.data(), digits.data() + digits.size(), mag);
      if (res.ec == std::errc() && res.ptr == digits.data() + digits.size()) {
        Value v(mag);
        if (negative) {
          if (mag > static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max())) {
            error("integer out of range");
          }
          v = Value(-static_cast<std::int64_t>(mag));
        }
        return v;
      }
      // Overflowed uint64: fall through to double.
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      error("bad number");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

std::string content_digest(const Value& v) {
  const std::string canon = v.dump();
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : canon) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

}  // namespace config::json

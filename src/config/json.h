// Minimal JSON value: parse, build, dump.
//
// Scenario specs and results serialize through this (no external JSON
// dependency). Objects preserve insertion order, so a spec built from the
// same fields always dumps the same bytes — which is what makes the
// content-hash digest of a ScenarioSpec stable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace config::json {

class Value;
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<Value>;
  using Object = std::vector<Member>;

  Value() = default;  // null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kDouble), dbl_(d) {}
  Value(std::uint64_t u) : kind_(Kind::kInt), u64_(u) {}
  Value(std::int64_t i)
      : kind_(Kind::kInt),
        neg_(i < 0),
        u64_(i < 0 ? static_cast<std::uint64_t>(-(i + 1)) + 1
                   : static_cast<std::uint64_t>(i)) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}
  Value(unsigned u) : Value(static_cast<std::uint64_t>(u)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Object& members() const;

  // ---- builders -----------------------------------------------------------
  /// Array append (value must be an array).
  Value& push(Value v);
  /// Object insert-or-replace; keeps first-insertion order (value must be
  /// an object).
  Value& set(std::string_view key, Value v);

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Serialize. indent < 0 → compact one-liner (the canonical form used
  /// for digests); indent >= 0 → pretty-printed with that step.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws std::runtime_error with a byte
  /// offset on malformed input.
  static Value parse(std::string_view text);

  bool operator==(const Value& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool neg_ = false;          // sign of an integer value
  std::uint64_t u64_ = 0;     // magnitude of an integer value
  double dbl_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// FNV-1a content hash of a value's canonical (compact) serialization,
/// rendered as 16 hex digits. Used as the ScenarioSpec digest.
[[nodiscard]] std::string content_digest(const Value& v);

}  // namespace config::json

// JSON views over the telemetry subsystem.
//
// The telemetry library itself stays free of any JSON dependency (it is
// linked into the kernel hot path); these helpers live in config where
// json::Value already is, and define the three document schemas the tools
// consume: the final-counter map, the sampler timeline
// ("telemetry-timeline-v1") and the flight-recorder dump
// ("flight-recorder-v1"). See docs/MODEL.md §11 for the field catalogue.
#pragma once

#include "config/json.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"

namespace config {

/// Flat { series name -> value } object over every registered series.
[[nodiscard]] json::Value telemetry_counters_json(
    const telemetry::Registry& reg);

/// The sampler's sparse delta timeline:
/// { schema, period_ns, series: [names...], points: [{t, d: [[i, delta]...]}] }
[[nodiscard]] json::Value telemetry_timeline_json(
    const telemetry::Sampler& sampler);

/// Post-mortem ring dump:
/// { schema, capacity, recorded, dropped, events: [{t_ns, kind, cpu, a, b}] }
[[nodiscard]] json::Value flight_dump_json(const telemetry::FlightRecorder& fr);

}  // namespace config

#include "config/scenario_runner.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "config/telemetry_export.h"
#include "fault/injector.h"
#include "metrics/report.h"
#include "sim/rng.h"
#include "telemetry/sampler.h"
#include "workload/registry.h"

namespace config {
namespace {

using json::Value;

// ---- exact histogram / summary serialization -------------------------------

Value summary_to_json(const metrics::Summary& s) {
  Value v = Value::object();
  v.set("n", s.count());
  if (s.count() == 0) return v;  // min/max are infinities; don't emit them
  v.set("min", s.min());
  v.set("max", s.max());
  v.set("mean", s.mean());
  v.set("m2", s.m2());
  v.set("sum", s.sum());
  return v;
}

metrics::Summary summary_from_json(const Value& v) {
  const std::uint64_t n = v.find("n") ? v.find("n")->as_u64() : 0;
  if (n == 0) return metrics::Summary{};
  return metrics::Summary::restore(n, v.find("min")->as_double(),
                                   v.find("max")->as_double(),
                                   v.find("mean")->as_double(),
                                   v.find("m2")->as_double(),
                                   v.find("sum")->as_double());
}

Value hist_to_json(const metrics::LatencyHistogram& h) {
  Value v = Value::object();
  Value buckets = Value::array();
  for (const auto& [index, count] : h.bucket_counts()) {
    Value pair = Value::array();
    pair.push(index);
    pair.push(count);
    buckets.push(std::move(pair));
  }
  v.set("buckets", std::move(buckets));
  v.set("summary", summary_to_json(h.summary()));
  return v;
}

metrics::LatencyHistogram hist_from_json(const Value& v) {
  std::vector<std::pair<int, std::uint64_t>> buckets;
  if (const Value* b = v.find("buckets")) {
    for (const auto& pair : b->items()) {
      buckets.emplace_back(static_cast<int>(pair.items().at(0).as_i64()),
                           pair.items().at(1).as_u64());
    }
  }
  const Value* s = v.find("summary");
  return metrics::LatencyHistogram::restore(
      buckets, s ? summary_from_json(*s) : metrics::Summary{});
}

Value probe_result_to_json(const rt::ProbeResult& r) {
  Value v = Value::object();
  v.set("primary", hist_to_json(r.primary));
  v.set("secondary", hist_to_json(r.secondary));
  v.set("ideal_ns", r.ideal);
  v.set("collected", r.collected);
  v.set("expected", r.expected);
  v.set("complete", r.complete);
  Value stats = Value::object();
  for (const auto& [key, value] : r.stats) stats.set(key, value);
  v.set("stats", std::move(stats));
  return v;
}

rt::ProbeResult probe_result_from_json(const Value& v) {
  rt::ProbeResult r;
  if (const Value* p = v.find("primary")) r.primary = hist_from_json(*p);
  if (const Value* s = v.find("secondary")) r.secondary = hist_from_json(*s);
  if (const Value* i = v.find("ideal_ns")) r.ideal = i->as_u64();
  if (const Value* c = v.find("collected")) r.collected = c->as_u64();
  if (const Value* e = v.find("expected")) r.expected = e->as_u64();
  if (const Value* c = v.find("complete")) r.complete = c->as_bool();
  if (const Value* s = v.find("stats")) {
    for (const auto& [key, value] : s->members()) {
      r.stats[key] = value.as_double();
    }
  }
  return r;
}

// ---- shield plan -----------------------------------------------------------

void apply_shield(const ScenarioSpec& spec, Platform& p, rt::Probe& probe) {
  const ShieldPlan& s = spec.shield;
  if (s.mode == ShieldPlan::Mode::kNone) return;
  if (!p.has_shield()) {
    throw std::runtime_error("scenario '" + spec.name +
                             "': kernel has no shield support");
  }
  const auto mask = hw::CpuMask::single(s.cpu);
  switch (s.mode) {
    case ShieldPlan::Mode::kNone:
      return;
    case ShieldPlan::Mode::kShieldAll:
      p.shield().shield_all(mask);
      return;
    case ShieldPlan::Mode::kDedicate:
      if (probe.task() == nullptr || probe.irq() < 0) {
        throw std::runtime_error(
            "scenario '" + spec.name +
            "': dedicate shield plan needs a probe with a task and an IRQ");
      }
      p.shield().dedicate_cpu(s.cpu, *probe.task(), probe.irq());
      return;
    case ShieldPlan::Mode::kComponents: {
      if (s.bind_irq && probe.irq() >= 0) {
        // The "user intent" procfs write: bind the probe's IRQ to the
        // shield CPU whether or not the irq shield is up.
        p.kernel().procfs().write(
            "/proc/irq/" + std::to_string(probe.irq()) + "/smp_affinity",
            std::to_string(std::uint64_t{1} << s.cpu));
      }
      if (s.procs) p.shield().set_process_shield(mask);
      if (s.irqs) p.shield().set_irq_shield(mask);
      if (s.ltmr) p.shield().set_ltmr_shield(mask);
      return;
    }
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}

// ---- disk-cache integrity ---------------------------------------------------

/// Cache files are a small envelope around the result payload so partial
/// writes and bit rot are detectable: the checksum is the content digest of
/// the payload, recomputed on read. Files in the old bare-result format fail
/// the check and get recomputed — migration by quarantine.
constexpr const char* kCacheFormat = "shieldsim-cache-v1";

std::string encode_cache_entry(const ScenarioResult& r) {
  Value payload = r.to_json();
  Value env = Value::object();
  env.set("format", kCacheFormat);
  env.set("checksum", json::content_digest(payload));
  env.set("result", std::move(payload));
  return env.dump(2);
}

std::optional<ScenarioResult> decode_cache_entry(const std::string& text) {
  try {
    const Value env = Value::parse(text);
    const Value* fmt = env.find("format");
    const Value* sum = env.find("checksum");
    const Value* payload = env.find("result");
    if (fmt == nullptr || sum == nullptr || payload == nullptr) {
      return std::nullopt;
    }
    if (fmt->as_string() != kCacheFormat) return std::nullopt;
    if (sum->as_string() != json::content_digest(*payload)) return std::nullopt;
    return ScenarioResult::from_json(*payload);
  } catch (const std::exception&) {
    return std::nullopt;  // truncated / not JSON / wrong shapes
  }
}

void quarantine_cache_file(const std::string& path) {
  // Keep the evidence next to the cache rather than deleting it: a
  // .quarantined file is inert (never read back) but diagnosable.
  (void)std::rename(path.c_str(), (path + ".quarantined").c_str());
}

/// mkdir -p. Returns false when the final path is not a directory.
bool make_dirs(const std::string& path) {
  std::string dir;
  for (std::size_t i = 0; i < path.size(); ++i) {
    dir += path[i];
    const bool boundary = path[i] == '/' || i + 1 == path.size();
    if (!boundary) continue;
    std::string component = dir;
    while (!component.empty() && component.back() == '/') component.pop_back();
    if (component.empty()) continue;
    if (::mkdir(component.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
  }
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace

// ---- ScenarioResult --------------------------------------------------------

json::Value ScenarioResult::to_json() const {
  Value v = Value::object();
  v.set("name", name);
  v.set("digest", digest);
  v.set("seed", seed);
  v.set("scale", scale);
  v.set("events", events);
  v.set("probe", probe_result_to_json(probe));
  // Absent entirely when telemetry was off, so older cache entries and
  // telemetry-free results keep their exact serialized form.
  if (!telemetry.is_null()) v.set("telemetry", telemetry);
  return v;
}

ScenarioResult ScenarioResult::from_json(const json::Value& v) {
  ScenarioResult r;
  if (const Value* f = v.find("name")) r.name = f->as_string();
  if (const Value* f = v.find("digest")) r.digest = f->as_string();
  if (const Value* f = v.find("seed")) r.seed = f->as_u64();
  if (const Value* f = v.find("scale")) r.scale = f->as_double();
  if (const Value* f = v.find("events")) r.events = f->as_u64();
  if (const Value* f = v.find("probe")) r.probe = probe_result_from_json(*f);
  if (const Value* f = v.find("telemetry")) r.telemetry = *f;
  return r;
}

std::string ScenarioResult::render(const ScenarioSpec& spec) const {
  std::ostringstream os;
  os << "== " << (spec.title.empty() ? name : spec.title) << " ==\n";
  if (!spec.description.empty()) os << spec.description << "\n";
  if (probe.primary.count() == 0) {
    os << "(no samples)\n";
    return os.str();
  }
  if (!probe.complete) {
    os << "WARNING: only " << probe.collected << "/" << probe.expected
       << " samples collected\n";
  }
  if (probe.ideal > 0) {
    os << metrics::determinism_legend(probe.ideal,
                                      probe.ideal + probe.primary.max())
       << "\n";
  } else {
    const auto thresholds = metrics::figure5_thresholds();
    os << metrics::cumulative_bucket_table(probe.primary, thresholds);
  }
  os << metrics::ascii_histogram(probe.primary, 50, 8);
  if (!spec.paper_ref.empty()) os << "paper: " << spec.paper_ref << "\n";
  return os.str();
}

// ---- RunOutcome / BatchReport ----------------------------------------------

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kRetried: return "retried";
    case RunStatus::kFailed: return "failed";
    case RunStatus::kTimedOut: return "timed_out";
  }
  return "failed";
}

json::Value RunOutcome::to_json() const {
  Value v = Value::object();
  v.set("name", name);
  v.set("status", to_string(status));
  v.set("attempts", attempts);
  if (!error.empty()) v.set("error", error);
  if (result) {
    v.set("seed", result->seed);
    v.set("events", result->events);
  }
  if (!flight_recording.is_null()) v.set("flight_recording", flight_recording);
  return v;
}

bool BatchReport::all_ok() const {
  for (const auto& o : outcomes) {
    if (!o.ok()) return false;
  }
  return true;
}

std::size_t BatchReport::count(RunStatus s) const {
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (o.status == s) n++;
  }
  return n;
}

json::Value BatchReport::to_json() const {
  Value v = Value::object();
  v.set("schema", "degraded-run-report-v1");
  v.set("total", outcomes.size());
  v.set("ok", count(RunStatus::kOk));
  v.set("retried", count(RunStatus::kRetried));
  v.set("failed", count(RunStatus::kFailed));
  v.set("timed_out", count(RunStatus::kTimedOut));
  v.set("cache_entries_recomputed", cache_entries_recomputed);
  Value arr = Value::array();
  for (const auto& o : outcomes) arr.push(o.to_json());
  v.set("outcomes", std::move(arr));
  return v;
}

// ---- ScenarioRunner --------------------------------------------------------

ScenarioRunner::ScenarioRunner(Options opt)
    : opt_(std::move(opt)), sweep_(opt_.jobs) {
  if (!opt_.cache_dir.empty()) {
    const bool usable =
        make_dirs(opt_.cache_dir) && ::access(opt_.cache_dir.c_str(), W_OK) == 0;
    if (!usable) {
      std::fprintf(stderr,
                   "warning: cache dir '%s' is not writable; "
                   "falling back to in-memory cache\n",
                   opt_.cache_dir.c_str());
      opt_.cache_dir.clear();
    }
  }
}

std::string ScenarioRunner::cache_key(const std::string& digest,
                                      std::uint64_t seed) const {
  return digest + "-" + std::to_string(seed) + "-" +
         Value(opt_.scale).dump();
}

std::string ScenarioRunner::cache_path(const std::string& key) const {
  return opt_.cache_dir + "/" + key + ".json";
}

ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec,
                                   std::uint64_t seed, const Hooks& hooks) {
  const bool observed = hooks.configured != nullptr ||
                        hooks.finished != nullptr;
  const std::string key = cache_key(spec.digest(), seed);
  if (opt_.cache && !observed) {
    {
      const std::scoped_lock hold(cache_mutex_);
      const auto it = memory_cache_.find(key);
      if (it != memory_cache_.end()) {
        ScenarioResult r = it->second;
        r.from_cache = true;
        return r;
      }
    }
    if (!opt_.cache_dir.empty()) {
      std::string text;
      const std::string path = cache_path(key);
      if (read_file(path, text)) {
        if (auto cached = decode_cache_entry(text)) {
          cached->from_cache = true;
          const std::scoped_lock hold(cache_mutex_);
          memory_cache_[key] = *cached;
          return *cached;
        }
        // Truncated, corrupt or checksum-mismatched entry: never trust it.
        quarantine_cache_file(path);
        cache_recomputed_.fetch_add(1);
      }
    }
  }

  ScenarioResult r = run_uncached(spec, seed, hooks);
  if (opt_.cache && !observed) {
    const std::scoped_lock hold(cache_mutex_);
    memory_cache_[key] = r;
    if (!opt_.cache_dir.empty()) {
      write_file(cache_path(key), encode_cache_entry(r));
    }
  }
  return r;
}

ScenarioResult ScenarioRunner::run_uncached(const ScenarioSpec& spec,
                                            std::uint64_t seed,
                                            const Hooks& hooks) {
  spec.validate();
  const auto machine = find_machine(spec.machine);
  auto kcfg = *find_kernel(spec.kernel);
  apply_kernel_overrides(kcfg, spec.kernel_overrides);

  Platform p(*machine, kcfg, seed, spec.ht_override);
  // The flight recorder is passive (no events, no RNG, no model state), so
  // arming it alongside a watchdog cannot perturb the run it may have to
  // explain. Enabled before boot so the ring sees the earliest events too.
  const bool watchdog = opt_.max_events > 0 || opt_.wall_limit_s > 0.0;
  if (spec.telemetry.flight_recorder || watchdog) {
    const int cap =
        spec.telemetry.flight_recorder ? spec.telemetry.flight_capacity : 4096;
    p.engine().flight_recorder().enable(static_cast<std::size_t>(cap));
  }
  for (const auto& w : spec.workloads) {
    workload::make_workload(w.name, w.params)->install(p);
  }
  if (hooks.configured) hooks.configured(p);

  const auto probe =
      rt::make_probe(spec.probe, p, spec.probe_params, opt_.scale);
  p.boot();
  apply_shield(spec, p, *probe);
  probe->start();

  sim::Duration horizon;
  if (spec.duration.fixed_ns > 0) {
    horizon = static_cast<sim::Duration>(
        static_cast<double>(spec.duration.fixed_ns) * opt_.scale);
  } else {
    horizon = static_cast<sim::Duration>(
                  static_cast<double>(probe->base_duration()) *
                  spec.duration.factor) +
              spec.duration.margin_ns;
  }
  if (horizon <= 0) {
    throw std::runtime_error(
        "scenario '" + spec.name +
        "': computed horizon is zero — check the duration policy (and "
        "--scale; scaling a fixed horizon down to nothing counts)");
  }

  std::unique_ptr<fault::Injector> injector;
  if (!spec.faults.empty()) {
    // The injector derives its own RNG stream from the scenario seed, so a
    // fault-free spec and an empty plan produce bit-identical runs.
    injector = std::make_unique<fault::Injector>(p, spec.faults, seed);
    injector->arm(p.engine().now() + horizon);
  }

  std::optional<telemetry::Sampler> sampler;
  if (spec.telemetry.sampler) {
    sampler.emplace(p.engine(), p.engine().telemetry());
    sampler->start(spec.telemetry.sample_period_ns);
  }

  try {
    run_to_horizon(spec, p, horizon);
  } catch (const ScenarioAbort&) {
    throw;  // already carries its dump
  } catch (const std::exception& e) {
    // A structured mid-run failure (probe error, workload assertion thrown
    // as an exception): keep the evidence if the ring was on.
    if (!p.engine().flight_recorder().enabled()) throw;
    throw ScenarioFailure(e.what(),
                          flight_dump_json(p.engine().flight_recorder()));
  }

  if (hooks.finished) hooks.finished(p, *probe);

  ScenarioResult r;
  r.name = spec.name;
  r.digest = spec.digest();
  r.seed = seed;
  r.scale = opt_.scale;
  r.probe = probe->result();
  r.events = p.engine().events_executed();
  if (sampler) {
    sampler->stop();
    Value t = Value::object();
    t.set("schema", "telemetry-v1");
    t.set("counters", telemetry_counters_json(p.engine().telemetry()));
    t.set("timeline", telemetry_timeline_json(*sampler));
    r.telemetry = std::move(t);
  }
  return r;
}

void ScenarioRunner::run_to_horizon(const ScenarioSpec& spec, Platform& p,
                                    sim::Duration horizon) const {
  const bool watchdog = opt_.max_events > 0 || opt_.wall_limit_s > 0.0;
  if (!watchdog) {
    p.run_for(horizon);  // the zero-overhead path every existing caller gets
    return;
  }
  const std::uint64_t start_events = p.engine().events_executed();
  const auto wall_start = std::chrono::steady_clock::now();
  const sim::Time end = p.engine().now() + horizon;
  // Slice the horizon so the budgets are checked often enough to matter but
  // rarely enough that the loop itself is noise.
  const auto slice = std::max<sim::Duration>(1, horizon / 64);
  while (p.engine().now() < end) {
    p.run_until(std::min<sim::Time>(end, p.engine().now() + slice));
    if (opt_.max_events > 0 &&
        p.engine().events_executed() - start_events > opt_.max_events) {
      throw ScenarioTimeout(
          "scenario '" + spec.name + "': exceeded the event watchdog (" +
              std::to_string(opt_.max_events) + " simulated events) at t=" +
              std::to_string(p.engine().now()) + "ns",
          flight_dump_json(p.engine().flight_recorder()));
    }
    if (opt_.wall_limit_s > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - wall_start;
      if (elapsed.count() > opt_.wall_limit_s) {
        throw ScenarioTimeout(
            "scenario '" + spec.name +
                "': exceeded the wall-clock watchdog (" +
                std::to_string(opt_.wall_limit_s) + "s) at t=" +
                std::to_string(p.engine().now()) + "ns",
            flight_dump_json(p.engine().flight_recorder()));
      }
    }
  }
}

RunOutcome ScenarioRunner::run_outcome(const ScenarioSpec& spec,
                                       std::uint64_t seed) {
  RunOutcome out;
  out.name = spec.name;
  const int allowed = spec.transient ? std::max(1, opt_.max_attempts) : 1;
  std::uint64_t attempt_seed = seed;
  for (int attempt = 1; attempt <= allowed; ++attempt) {
    out.attempts = attempt;
    try {
      out.result = run(spec, attempt_seed);
      out.status = attempt > 1 ? RunStatus::kRetried : RunStatus::kOk;
      out.error.clear();
      return out;
    } catch (const ScenarioTimeout& e) {
      out.status = RunStatus::kTimedOut;
      out.error = e.what();
      out.flight_recording = e.flight_recording();
    } catch (const ScenarioAbort& e) {
      out.status = RunStatus::kFailed;
      out.error = e.what();
      out.flight_recording = e.flight_recording();
    } catch (const std::exception& e) {
      out.status = RunStatus::kFailed;
      out.error = e.what();
    }
    // Reseed deterministically off the original seed, not the failed one,
    // so retry N of a spec is the same run no matter how earlier attempts
    // interleaved across worker threads.
    attempt_seed = sim::derive_seed(seed, "retry#" + std::to_string(attempt));
  }
  return out;
}

BatchReport ScenarioRunner::run_batch_report(
    const std::vector<ScenarioSpec>& specs, std::uint64_t root_seed) {
  BatchReport report;
  // run_outcome never throws, so one hostile spec cannot sink the batch the
  // way run_batch's first-exception-wins rethrow does.
  report.outcomes = sweep_.map<RunOutcome>(specs.size(), [&](std::size_t i) {
    return run_outcome(specs[i], sim::derive_seed(root_seed, specs[i].name));
  });
  report.cache_entries_recomputed = cache_recomputed_.load();
  return report;
}

std::vector<ScenarioResult> ScenarioRunner::run_batch(
    const std::vector<ScenarioSpec>& specs, std::uint64_t root_seed) {
  return sweep_.map<ScenarioResult>(specs.size(), [&](std::size_t i) {
    return run(specs[i], sim::derive_seed(root_seed, specs[i].name));
  });
}

std::vector<ScenarioResult> ScenarioRunner::run_seeds(const ScenarioSpec& spec,
                                                      std::uint64_t root_seed,
                                                      int repeats) {
  const auto n = static_cast<std::size_t>(repeats < 0 ? 0 : repeats);
  return sweep_.map<ScenarioResult>(n, [&](std::size_t i) {
    return run(spec, sim::derive_seed(root_seed,
                                      spec.name + "#" + std::to_string(i)));
  });
}

std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                      const json::Value& grid) {
  if (!grid.is_object()) {
    throw std::runtime_error("scenario grid must be a JSON object");
  }
  std::vector<ScenarioSpec> out{base};
  for (const auto& [key, values] : grid.members()) {
    if (!values.is_array() || values.items().empty()) {
      throw std::runtime_error("grid key '" + key +
                               "' must map to a non-empty array");
    }
    std::vector<ScenarioSpec> next;
    next.reserve(out.size() * values.items().size());
    for (const auto& s : out) {
      for (const auto& v : values.items()) {
        ScenarioSpec ns = s;
        ns.name += "/" + key + "=" +
                   (v.is_string() ? v.as_string() : v.dump());
        ns.probe_params.set(key, v);
        next.push_back(std::move(ns));
      }
    }
    out = std::move(next);
  }
  return out;
}

}  // namespace config

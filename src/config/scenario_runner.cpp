#include "config/scenario_runner.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "config/telemetry_export.h"
#include "fault/injector.h"
#include "kernel/trace_export.h"
#include "metrics/report.h"
#include "sim/arena.h"
#include "sim/rng.h"
#include "sim/snapshot.h"
#include "telemetry/sampler.h"
#include "workload/registry.h"

namespace config {
namespace {

using json::Value;

// ---- exact histogram / summary serialization -------------------------------

Value summary_to_json(const metrics::Summary& s) {
  Value v = Value::object();
  v.set("n", s.count());
  if (s.count() == 0) return v;  // min/max are infinities; don't emit them
  v.set("min", s.min());
  v.set("max", s.max());
  v.set("mean", s.mean());
  v.set("m2", s.m2());
  v.set("sum", s.sum());
  return v;
}

metrics::Summary summary_from_json(const Value& v) {
  const std::uint64_t n = v.find("n") ? v.find("n")->as_u64() : 0;
  if (n == 0) return metrics::Summary{};
  return metrics::Summary::restore(n, v.find("min")->as_double(),
                                   v.find("max")->as_double(),
                                   v.find("mean")->as_double(),
                                   v.find("m2")->as_double(),
                                   v.find("sum")->as_double());
}

Value hist_to_json(const metrics::LatencyHistogram& h) {
  Value v = Value::object();
  Value buckets = Value::array();
  for (const auto& [index, count] : h.bucket_counts()) {
    Value pair = Value::array();
    pair.push(index);
    pair.push(count);
    buckets.push(std::move(pair));
  }
  v.set("buckets", std::move(buckets));
  v.set("summary", summary_to_json(h.summary()));
  return v;
}

metrics::LatencyHistogram hist_from_json(const Value& v) {
  std::vector<std::pair<int, std::uint64_t>> buckets;
  if (const Value* b = v.find("buckets")) {
    for (const auto& pair : b->items()) {
      buckets.emplace_back(static_cast<int>(pair.items().at(0).as_i64()),
                           pair.items().at(1).as_u64());
    }
  }
  const Value* s = v.find("summary");
  return metrics::LatencyHistogram::restore(
      buckets, s ? summary_from_json(*s) : metrics::Summary{});
}

Value probe_result_to_json(const rt::ProbeResult& r) {
  Value v = Value::object();
  v.set("primary", hist_to_json(r.primary));
  v.set("secondary", hist_to_json(r.secondary));
  v.set("ideal_ns", r.ideal);
  v.set("collected", r.collected);
  v.set("expected", r.expected);
  v.set("complete", r.complete);
  Value stats = Value::object();
  for (const auto& [key, value] : r.stats) stats.set(key, value);
  v.set("stats", std::move(stats));
  return v;
}

rt::ProbeResult probe_result_from_json(const Value& v) {
  rt::ProbeResult r;
  if (const Value* p = v.find("primary")) r.primary = hist_from_json(*p);
  if (const Value* s = v.find("secondary")) r.secondary = hist_from_json(*s);
  if (const Value* i = v.find("ideal_ns")) r.ideal = i->as_u64();
  if (const Value* c = v.find("collected")) r.collected = c->as_u64();
  if (const Value* e = v.find("expected")) r.expected = e->as_u64();
  if (const Value* c = v.find("complete")) r.complete = c->as_bool();
  if (const Value* s = v.find("stats")) {
    for (const auto& [key, value] : s->members()) {
      r.stats[key] = value.as_double();
    }
  }
  return r;
}

// ---- shield plan -----------------------------------------------------------

void apply_shield(const ScenarioSpec& spec, Platform& p, rt::Probe& probe) {
  const ShieldPlan& s = spec.shield;
  if (s.mode == ShieldPlan::Mode::kNone) return;
  if (!p.has_shield()) {
    throw std::runtime_error("scenario '" + spec.name +
                             "': kernel has no shield support");
  }
  const auto mask = hw::CpuMask::single(s.cpu);
  switch (s.mode) {
    case ShieldPlan::Mode::kNone:
      return;
    case ShieldPlan::Mode::kShieldAll:
      p.shield().shield_all(mask);
      return;
    case ShieldPlan::Mode::kDedicate:
      if (probe.task() == nullptr || probe.irq() < 0) {
        throw std::runtime_error(
            "scenario '" + spec.name +
            "': dedicate shield plan needs a probe with a task and an IRQ");
      }
      p.shield().dedicate_cpu(s.cpu, *probe.task(), probe.irq());
      return;
    case ShieldPlan::Mode::kComponents: {
      if (s.bind_irq && probe.irq() >= 0) {
        // The "user intent" procfs write: bind the probe's IRQ to the
        // shield CPU whether or not the irq shield is up.
        p.kernel().procfs().write(
            "/proc/irq/" + std::to_string(probe.irq()) + "/smp_affinity",
            std::to_string(std::uint64_t{1} << s.cpu));
      }
      if (s.procs) p.shield().set_process_shield(mask);
      if (s.irqs) p.shield().set_irq_shield(mask);
      if (s.ltmr) p.shield().set_ltmr_shield(mask);
      return;
    }
  }
}

// ---- delivery mechanism ----------------------------------------------------

/// Install the spec's interrupt-delivery mechanism on the booted-or-booting
/// kernel. For "oob" the probe's task and IRQ line move onto the out-of-band
/// stage; "inband" (the default) leaves the kernel exactly as constructed,
/// so omitting the field cannot perturb any byte of any output.
void apply_mechanism(const ScenarioSpec& spec, Platform& p, rt::Probe& probe) {
  if (spec.mechanism != "oob") return;
  kernel::Kernel& k = p.kernel();
  k.set_mechanism(kernel::MechanismKind::kOob);
  auto& oob = static_cast<kernel::OobPipeline&>(k.pipeline());
  if (probe.task() != nullptr) oob.adopt_task(*probe.task());
  if (probe.irq() >= 0) oob.adopt_irq(probe.irq());
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}

// ---- disk-cache integrity ---------------------------------------------------

/// Cache files are a small envelope around the result payload so partial
/// writes and bit rot are detectable: the checksum is the content digest of
/// the payload, recomputed on read. Files in the old bare-result format fail
/// the check and get recomputed — migration by quarantine.
constexpr const char* kCacheFormat = "shieldsim-cache-v1";

std::string encode_cache_entry(const ScenarioResult& r) {
  Value payload = r.to_json();
  Value env = Value::object();
  env.set("format", kCacheFormat);
  env.set("checksum", json::content_digest(payload));
  env.set("result", std::move(payload));
  return env.dump(2);
}

std::optional<ScenarioResult> decode_cache_entry(const std::string& text) {
  try {
    const Value env = Value::parse(text);
    const Value* fmt = env.find("format");
    const Value* sum = env.find("checksum");
    const Value* payload = env.find("result");
    if (fmt == nullptr || sum == nullptr || payload == nullptr) {
      return std::nullopt;
    }
    if (fmt->as_string() != kCacheFormat) return std::nullopt;
    if (sum->as_string() != json::content_digest(*payload)) return std::nullopt;
    return ScenarioResult::from_json(*payload);
  } catch (const std::exception&) {
    return std::nullopt;  // truncated / not JSON / wrong shapes
  }
}

void quarantine_cache_file(const std::string& path) {
  // Keep the evidence next to the cache rather than deleting it: a
  // .quarantined file is inert (never read back) but diagnosable.
  (void)std::rename(path.c_str(), (path + ".quarantined").c_str());
}

// ---- prefix sharing ---------------------------------------------------------

/// Which part of a spec the shared prefix covers: platform construction,
/// workload installation and boot. Shield plan, probe, probe params,
/// faults, telemetry and duration are all applied after the fork, so they
/// stay out of the key. `ramp_ns` reserves room for a future simulated
/// warm-up period shared by the prefix.
std::string prefix_key(const ScenarioSpec& spec) {
  Value v = Value::object();
  v.set("machine", spec.machine);
  v.set("kernel", spec.kernel);
  v.set("kernel_overrides", spec.kernel_overrides);
  v.set("ht_override",
        spec.ht_override ? Value(*spec.ht_override) : Value());
  Value wl = Value::array();
  for (const auto& w : spec.workloads) {
    Value e = Value::object();
    e.set("name", w.name);
    e.set("params", w.params);
    wl.push(std::move(e));
  }
  v.set("workloads", std::move(wl));
  v.set("ramp_ns", 0);
  return json::content_digest(v);
}

/// Root folded into every prefix-platform seed; the per-prefix seed is
/// derived from the prefix key so identical prefixes are identical across
/// processes and runs.
constexpr std::uint64_t kPrefixSeedRoot = 0x707265666978ull;  // "prefix"

/// Function-local statics in model code (the probe/workload factory maps,
/// the kernel's latency-counter view table, stream/locale machinery) must
/// make their first heap allocation on the ordinary heap: a static whose
/// buffer landed in an arena would dangle once that arena rewinds. The
/// factory maps are touched by ScenarioSpec::validate() (always called
/// before any arena activates); this covers the rest, once per process.
void warm_process_statics() {
  static std::once_flag once;
  std::call_once(once, [] {
    (void)kernel::latency_counter_views();
    std::ostringstream os;
    os << 0.5;
    (void)os.str();
  });
}

/// mkdir -p. Returns false when the final path is not a directory.
bool make_dirs(const std::string& path) {
  std::string dir;
  for (std::size_t i = 0; i < path.size(); ++i) {
    dir += path[i];
    const bool boundary = path[i] == '/' || i + 1 == path.size();
    if (!boundary) continue;
    std::string component = dir;
    while (!component.empty() && component.back() == '/') component.pop_back();
    if (component.empty()) continue;
    if (::mkdir(component.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
  }
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace

// ---- PrefixCache -----------------------------------------------------------

/// Bounded LRU of warmed prefixes. Each entry owns a pooled StateArena
/// hosting a constructed, booted Platform plus the Snapshot taken right
/// after boot. One run uses an entry at a time (Entry::mu); batch
/// scheduling groups same-prefix specs onto one worker so the lock is
/// uncontended on the hot path.
class ScenarioRunner::PrefixCache {
 public:
  struct Entry {
    std::mutex mu;
    sim::StateArena* arena = nullptr;  // pooled; returned by the destructor
    Platform* platform = nullptr;      // arena-allocated; null until built
    sim::Snapshot snap;
    std::uint64_t prefix_seed = 0;
    std::uint64_t last_used = 0;  // LRU tick, guarded by the cache mutex

    Entry() : arena(sim::StateArena::acquire_pooled()) {}
    ~Entry() {
      if (platform != nullptr) {
        sim::StateArena::Scope scope(*arena);
        // Roll back to the snapshot first so the destructor walks the
        // coherent post-boot object graph, not whatever state the last
        // forked run left behind.
        if (snap.valid()) snap.restore(*arena);
        delete platform;
      }
      sim::StateArena::release_pooled(arena);
    }
    Entry(const Entry&) = delete;
    Entry& operator=(const Entry&) = delete;
  };

  explicit PrefixCache(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {}

  /// Look up or insert the entry for `key`. The caller locks the entry's
  /// mutex and builds the prefix if `platform` is still null. When the
  /// cache is full and every resident entry is in use, the returned entry
  /// is transient (not cached) — correctness never waits on capacity.
  std::shared_ptr<Entry> acquire(const std::string& key) {
    const std::scoped_lock hold(mu_);
    ++tick_;
    if (const auto it = entries_.find(key); it != entries_.end()) {
      it->second->last_used = tick_;
      return it->second;
    }
    if (entries_.size() >= capacity_) evict_one_unlocked();
    auto entry = std::make_shared<Entry>();
    entry->last_used = tick_;
    if (entries_.size() < capacity_) entries_.emplace(key, entry);
    return entry;
  }

 private:
  void evict_one_unlocked() {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim != entries_.end() &&
          it->second->last_used >= victim->second->last_used) {
        continue;
      }
      if (it->second->mu.try_lock()) {  // skip entries mid-run
        it->second->mu.unlock();
        victim = it;
      }
    }
    if (victim != entries_.end()) entries_.erase(victim);
  }

  std::mutex mu_;
  std::uint64_t tick_ = 0;
  std::size_t capacity_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
};

// ---- ScenarioResult --------------------------------------------------------

json::Value ScenarioResult::to_json() const {
  Value v = Value::object();
  v.set("name", name);
  v.set("digest", digest);
  v.set("seed", seed);
  v.set("scale", scale);
  v.set("events", events);
  v.set("duration_ns", duration_ns);
  v.set("probe", probe_result_to_json(probe));
  // Absent entirely when telemetry was off, so older cache entries and
  // telemetry-free results keep their exact serialized form.
  if (!telemetry.is_null()) v.set("telemetry", telemetry);
  return v;
}

ScenarioResult ScenarioResult::from_json(const json::Value& v) {
  ScenarioResult r;
  if (const Value* f = v.find("name")) r.name = f->as_string();
  if (const Value* f = v.find("digest")) r.digest = f->as_string();
  if (const Value* f = v.find("seed")) r.seed = f->as_u64();
  if (const Value* f = v.find("scale")) r.scale = f->as_double();
  if (const Value* f = v.find("events")) r.events = f->as_u64();
  if (const Value* f = v.find("duration_ns")) r.duration_ns = f->as_u64();
  if (const Value* f = v.find("probe")) r.probe = probe_result_from_json(*f);
  if (const Value* f = v.find("telemetry")) r.telemetry = *f;
  return r;
}

std::string ScenarioResult::render(const ScenarioSpec& spec) const {
  std::ostringstream os;
  os << "== " << (spec.title.empty() ? name : spec.title) << " ==\n";
  if (!spec.description.empty()) os << spec.description << "\n";
  if (probe.primary.count() == 0) {
    os << "(no samples)\n";
    return os.str();
  }
  if (!probe.complete) {
    os << "WARNING: only " << probe.collected << "/" << probe.expected
       << " samples collected\n";
  }
  if (probe.ideal > 0) {
    os << metrics::determinism_legend(probe.ideal,
                                      probe.ideal + probe.primary.max())
       << "\n";
  } else {
    const auto thresholds = metrics::figure5_thresholds();
    os << metrics::cumulative_bucket_table(probe.primary, thresholds);
  }
  os << metrics::ascii_histogram(probe.primary, 50, 8);
  if (!spec.paper_ref.empty()) os << "paper: " << spec.paper_ref << "\n";
  return os.str();
}

// ---- RunOutcome / BatchReport ----------------------------------------------

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kRetried: return "retried";
    case RunStatus::kFailed: return "failed";
    case RunStatus::kTimedOut: return "timed_out";
  }
  return "failed";
}

json::Value RunOutcome::to_json() const {
  Value v = Value::object();
  v.set("name", name);
  // Default mechanism omitted: pre-mechanism reports keep their exact bytes.
  if (mechanism != "inband") v.set("mechanism", mechanism);
  v.set("status", to_string(status));
  v.set("attempts", attempts);
  if (!error.empty()) v.set("error", error);
  if (result) {
    v.set("seed", result->seed);
    v.set("events", result->events);
  }
  if (!flight_recording.is_null()) v.set("flight_recording", flight_recording);
  return v;
}

bool BatchReport::all_ok() const {
  for (const auto& o : outcomes) {
    if (!o.ok()) return false;
  }
  return true;
}

std::size_t BatchReport::count(RunStatus s) const {
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (o.status == s) n++;
  }
  return n;
}

json::Value BatchReport::to_json() const {
  Value v = Value::object();
  v.set("schema", "degraded-run-report-v1");
  v.set("total", outcomes.size());
  v.set("ok", count(RunStatus::kOk));
  v.set("retried", count(RunStatus::kRetried));
  v.set("failed", count(RunStatus::kFailed));
  v.set("timed_out", count(RunStatus::kTimedOut));
  v.set("cache_entries_recomputed", cache_entries_recomputed);
  // Only present when the batch ran with prefix sharing, so reports from
  // runners with the feature off keep their exact serialized form.
  if (prefix_hits + prefix_misses > 0) {
    Value pr = Value::object();
    pr.set("hits", prefix_hits);
    pr.set("misses", prefix_misses);
    pr.set("hit_rate", static_cast<double>(prefix_hits) /
                           static_cast<double>(prefix_hits + prefix_misses));
    v.set("prefix_reuse", std::move(pr));
  }
  // Per-mechanism pass/fail breakdown, present only when the batch actually
  // mixed mechanisms in (any non-default outcome) — all-inband reports keep
  // their exact serialized form.
  bool any_non_default = false;
  for (const auto& o : outcomes) {
    if (o.mechanism != "inband") any_non_default = true;
  }
  if (any_non_default) {
    std::map<std::string, std::pair<std::size_t, std::size_t>> mech;  // ok/fail
    for (const auto& o : outcomes) {
      auto& [okc, failc] = mech[o.mechanism];
      (o.ok() ? okc : failc)++;
    }
    Value by = Value::object();
    for (const auto& [kind, counts] : mech) {
      Value e = Value::object();
      e.set("ok", counts.first);
      e.set("failed", counts.second);
      by.set(kind, std::move(e));
    }
    v.set("by_mechanism", std::move(by));
  }
  Value arr = Value::array();
  for (const auto& o : outcomes) arr.push(o.to_json());
  v.set("outcomes", std::move(arr));
  return v;
}

// ---- ScenarioRunner --------------------------------------------------------

ScenarioRunner::ScenarioRunner(Options opt)
    : opt_(std::move(opt)), sweep_(opt_.jobs) {
  if (opt_.prefix_reuse) {
    prefix_cache_ =
        std::make_unique<PrefixCache>(opt_.prefix_cache_entries);
  }
  if (!opt_.cache_dir.empty()) {
    const bool usable =
        make_dirs(opt_.cache_dir) && ::access(opt_.cache_dir.c_str(), W_OK) == 0;
    if (!usable) {
      std::fprintf(stderr,
                   "warning: cache dir '%s' is not writable; "
                   "falling back to in-memory cache\n",
                   opt_.cache_dir.c_str());
      opt_.cache_dir.clear();
    }
  }
}

ScenarioRunner::~ScenarioRunner() = default;

std::string ScenarioRunner::cache_key(const std::string& digest,
                                      std::uint64_t seed, bool forked) const {
  // A forked run is deterministic but draws different streams than a cold
  // run of the same (spec, seed), so the two must never share a cache slot.
  // The marker is versioned with the fork semantics. "-es1" versions the
  // early-stop horizon semantics (sample-bound runs end when the probe
  // banks its budget, so latency/telemetry exports cover a shorter
  // window); full_horizon runs keep the legacy key form and stay
  // compatible with entries written before early stop existed.
  return digest + "-" + std::to_string(seed) + "-" + Value(opt_.scale).dump() +
         (opt_.full_horizon ? "" : "-es1") + (forked ? "-fork1" : "");
}

std::string ScenarioRunner::cache_path(const std::string& key) const {
  return opt_.cache_dir + "/" + key + ".json";
}

ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec,
                                   std::uint64_t seed, const Hooks& hooks) {
  const bool observed = hooks.configured != nullptr ||
                        hooks.finished != nullptr;
  // Hooks need a cold platform built in this very call; everything else
  // may fork a shared prefix when the runner has prefix_reuse on.
  const bool forked = opt_.prefix_reuse && !observed;
  const std::string key = cache_key(spec.digest(), seed, forked);
  if (opt_.cache && !observed) {
    {
      const std::scoped_lock hold(cache_mutex_);
      const auto it = memory_cache_.find(key);
      if (it != memory_cache_.end()) {
        ScenarioResult r = it->second;
        r.from_cache = true;
        return r;
      }
    }
    if (!opt_.cache_dir.empty()) {
      std::string text;
      const std::string path = cache_path(key);
      if (read_file(path, text)) {
        if (auto cached = decode_cache_entry(text)) {
          cached->from_cache = true;
          const std::scoped_lock hold(cache_mutex_);
          memory_cache_[key] = *cached;
          return *cached;
        }
        // Truncated, corrupt or checksum-mismatched entry: never trust it.
        quarantine_cache_file(path);
        cache_recomputed_.fetch_add(1);
      }
    }
  }

  ScenarioResult r =
      forked ? run_forked(spec, seed) : run_uncached(spec, seed, hooks);
  if (opt_.cache && !observed) {
    const std::scoped_lock hold(cache_mutex_);
    memory_cache_[key] = r;
    if (!opt_.cache_dir.empty()) {
      write_file(cache_path(key), encode_cache_entry(r));
    }
  }
  return r;
}

ScenarioResult ScenarioRunner::run_uncached(const ScenarioSpec& spec,
                                            std::uint64_t seed,
                                            const Hooks& hooks) {
  spec.validate();
  const auto machine = find_machine(spec.machine);
  auto kcfg = *find_kernel(spec.kernel);
  apply_kernel_overrides(kcfg, spec.kernel_overrides);

  Platform p(*machine, kcfg, seed, spec.ht_override);
  // The flight recorder is passive (no events, no RNG, no model state), so
  // arming it alongside a watchdog cannot perturb the run it may have to
  // explain. Enabled before boot so the ring sees the earliest events too.
  const bool watchdog = opt_.max_events > 0 || opt_.wall_limit_s > 0.0;
  if (spec.telemetry.flight_recorder || watchdog) {
    const int cap =
        spec.telemetry.flight_recorder ? spec.telemetry.flight_capacity : 4096;
    p.engine().flight_recorder().enable(static_cast<std::size_t>(cap));
  }
  for (const auto& w : spec.workloads) {
    workload::make_workload(w.name, w.params)->install(p);
  }
  if (hooks.configured) hooks.configured(p);

  const auto probe =
      rt::make_probe(spec.probe, p, spec.probe_params, opt_.scale);
  apply_mechanism(spec, p, *probe);
  p.boot();
  apply_shield(spec, p, *probe);
  probe->start();

  sim::Duration horizon;
  if (spec.duration.fixed_ns > 0) {
    horizon = static_cast<sim::Duration>(
        static_cast<double>(spec.duration.fixed_ns) * opt_.scale);
  } else {
    horizon = static_cast<sim::Duration>(
                  static_cast<double>(probe->base_duration()) *
                  spec.duration.factor) +
              spec.duration.margin_ns;
  }
  if (horizon <= 0) {
    throw std::runtime_error(
        "scenario '" + spec.name +
        "': computed horizon is zero — check the duration policy (and "
        "--scale; scaling a fixed horizon down to nothing counts)");
  }

  std::unique_ptr<fault::Injector> injector;
  if (!spec.faults.empty()) {
    // The injector derives its own RNG stream from the scenario seed, so a
    // fault-free spec and an empty plan produce bit-identical runs.
    injector = std::make_unique<fault::Injector>(p, spec.faults, seed);
    injector->arm(p.engine().now() + horizon);
  }

  std::optional<telemetry::Sampler> sampler;
  if (spec.telemetry.sampler) {
    sampler.emplace(p.engine(), p.engine().telemetry());
    sampler->start(spec.telemetry.sample_period_ns);
  }

  const sim::Time run_start = p.engine().now();
  try {
    run_to_horizon(spec, p, horizon, *probe);
  } catch (const ScenarioAbort&) {
    throw;  // already carries its dump
  } catch (const std::exception& e) {
    // A structured mid-run failure (probe error, workload assertion thrown
    // as an exception): keep the evidence if the ring was on.
    if (!p.engine().flight_recorder().enabled()) throw;
    throw ScenarioFailure(e.what(),
                          flight_dump_json(p.engine().flight_recorder()));
  }

  if (hooks.finished) hooks.finished(p, *probe);

  ScenarioResult r;
  r.name = spec.name;
  r.digest = spec.digest();
  r.seed = seed;
  r.scale = opt_.scale;
  r.probe = probe->result();
  r.events = p.engine().events_executed();
  r.duration_ns = static_cast<std::uint64_t>(p.engine().now() - run_start);
  if (sampler) {
    sampler->stop();
    Value t = Value::object();
    t.set("schema", "telemetry-v1");
    t.set("counters", telemetry_counters_json(p.engine().telemetry()));
    t.set("timeline", telemetry_timeline_json(*sampler));
    r.telemetry = std::move(t);
  }
  return r;
}

ScenarioResult ScenarioRunner::run_forked(const ScenarioSpec& spec,
                                          std::uint64_t seed) {
  spec.validate();  // also touches the factory-map statics (see warm note)
  const auto machine = find_machine(spec.machine);
  auto kcfg = *find_kernel(spec.kernel);
  apply_kernel_overrides(kcfg, spec.kernel_overrides);
  warm_process_statics();

  const std::string pkey = prefix_key(spec);
  const auto entry = prefix_cache_->acquire(pkey);
  const std::scoped_lock hold(entry->mu);

  ScenarioResult out;
  std::exception_ptr failure;
  try {
    sim::StateArena::Scope scope(*entry->arena);
    if (entry->platform == nullptr) {
      // Miss: simulate the prefix — construct, install workloads, boot —
      // then checkpoint. The prefix platform's seed derives from the
      // prefix key, never from the scenario seed: siblings must share the
      // prefix bit-for-bit, and divergence enters only at the fork below.
      prefix_misses_.fetch_add(1);
      entry->arena->reset();
      entry->prefix_seed = sim::derive_seed(kPrefixSeedRoot, pkey);
      auto* p = new Platform(*machine, kcfg, entry->prefix_seed,
                             spec.ht_override);
      for (const auto& w : spec.workloads) {
        workload::make_workload(w.name, w.params)->install(*p);
      }
      p->boot();
      entry->snap = sim::Snapshot::capture(*entry->arena);
      entry->platform = p;
    } else {
      // Hit: rewind the arena to the post-boot checkpoint. This also
      // wipes everything the previous forked run did — counters, flight
      // ring, pending events — so the child observes a pristine prefix.
      prefix_hits_.fetch_add(1);
      entry->snap.restore(*entry->arena);
    }
    Platform& p = *entry->platform;

    // Fork: reseed the engine's root stream from the fork label. Streams
    // split before the snapshot (devices, workloads) continue their
    // checkpointed sequences identically in every sibling; every stream
    // split after this point (probe, injector) diverges per (spec, seed).
    p.engine().reseed(sim::derive_seed(
        entry->prefix_seed, sim::SeedDomain::kFork,
        spec.digest() + "#" + std::to_string(seed)));

    // The ring starts empty here — the prefix is simulated with the
    // recorder off and a restore wipes any previous child's entries — so
    // a watchdog dump from this child carries only this child's events.
    const bool watchdog = opt_.max_events > 0 || opt_.wall_limit_s > 0.0;
    if (spec.telemetry.flight_recorder || watchdog) {
      const int cap = spec.telemetry.flight_recorder
                          ? spec.telemetry.flight_capacity
                          : 4096;
      p.engine().flight_recorder().enable(static_cast<std::size_t>(cap));
    }

    // Post-boot probe construction: probe tasks enter the scheduler as
    // immediately runnable, which create_task supports on a live kernel.
    const auto probe =
        rt::make_probe(spec.probe, p, spec.probe_params, opt_.scale);
    apply_mechanism(spec, p, *probe);
    apply_shield(spec, p, *probe);
    probe->start();

    sim::Duration horizon;
    if (spec.duration.fixed_ns > 0) {
      horizon = static_cast<sim::Duration>(
          static_cast<double>(spec.duration.fixed_ns) * opt_.scale);
    } else {
      horizon = static_cast<sim::Duration>(
                    static_cast<double>(probe->base_duration()) *
                    spec.duration.factor) +
                spec.duration.margin_ns;
    }
    if (horizon <= 0) {
      throw std::runtime_error(
          "scenario '" + spec.name +
          "': computed horizon is zero — check the duration policy (and "
          "--scale; scaling a fixed horizon down to nothing counts)");
    }

    std::unique_ptr<fault::Injector> injector;
    if (!spec.faults.empty()) {
      injector = std::make_unique<fault::Injector>(p, spec.faults, seed);
      injector->arm(p.engine().now() + horizon);
    }

    std::optional<telemetry::Sampler> sampler;
    if (spec.telemetry.sampler) {
      sampler.emplace(p.engine(), p.engine().telemetry());
      sampler->start(spec.telemetry.sample_period_ns);
    }

    const sim::Time run_start = p.engine().now();
    run_to_horizon(spec, p, horizon, *probe);

    ScenarioResult r;
    r.name = spec.name;
    r.digest = spec.digest();
    r.seed = seed;
    r.scale = opt_.scale;
    r.probe = probe->result();
    r.events = p.engine().events_executed();
    r.duration_ns = static_cast<std::uint64_t>(p.engine().now() - run_start);
    if (sampler) {
      sampler->stop();
      Value t = Value::object();
      t.set("schema", "telemetry-v1");
      t.set("counters", telemetry_counters_json(p.engine().telemetry()));
      t.set("timeline", telemetry_timeline_json(*sampler));
      r.telemetry = std::move(t);
    }
    // Deep-copy the result off the arena: `r`'s innards live in arena
    // memory that the next fork's restore will rewind.
    scope.pause();
    out = r;
    scope.resume();
  } catch (const ScenarioTimeout& e) {
    // Rebuild every failure on the ordinary heap before the entry unlocks:
    // the original exception's message and flight dump live in the arena,
    // which the next acquirer will rewind.
    failure = std::make_exception_ptr(
        ScenarioTimeout(e.what(), json::Value(e.flight_recording())));
  } catch (const ScenarioAbort& e) {
    failure = std::make_exception_ptr(
        ScenarioFailure(e.what(), json::Value(e.flight_recording())));
  } catch (const std::exception& e) {
    failure = std::make_exception_ptr(std::runtime_error(e.what()));
  }
  if (failure) std::rethrow_exception(failure);
  return out;
}

void ScenarioRunner::run_to_horizon(const ScenarioSpec& spec, Platform& p,
                                    sim::Duration horizon,
                                    const rt::Probe& probe) const {
  const bool watchdog = opt_.max_events > 0 || opt_.wall_limit_s > 0.0;
  // The horizon of a sample-bound spec is an upper bound, not a target:
  // DurationPolicy pads the probe's nominal duration with factor + margin
  // so abnormal-latency runs still finish, and the probe freezes its
  // result (the measuring task exits) the moment the budget is banked.
  // Simulating past that point adds nothing to any export, so the run
  // stops at the first slice boundary where the probe reports done. The
  // check cadence derives from the probe's own nominal duration — not the
  // horizon — so duration-policy slack can never shift the stop time (and
  // therefore never perturbs the latency report or telemetry timeline).
  const bool sample_bound = !opt_.full_horizon && spec.duration.fixed_ns == 0 &&
                            probe.base_duration() > 0;
  if (!watchdog && !sample_bound) {
    p.run_for(horizon);  // the zero-overhead path for fixed-duration specs
    return;
  }
  const std::uint64_t start_events = p.engine().events_executed();
  const auto wall_start = std::chrono::steady_clock::now();
  const sim::Time end = p.engine().now() + horizon;
  // Slice the horizon so the budgets are checked often enough to matter but
  // rarely enough that the loop itself is noise.
  const auto slice = sample_bound
                         ? std::max<sim::Duration>(1, probe.base_duration() / 64)
                         : std::max<sim::Duration>(1, horizon / 64);
  while (p.engine().now() < end) {
    if (sample_bound && probe.done()) break;
    p.run_until(std::min<sim::Time>(end, p.engine().now() + slice));
    if (opt_.max_events > 0 &&
        p.engine().events_executed() - start_events > opt_.max_events) {
      throw ScenarioTimeout(
          "scenario '" + spec.name + "': exceeded the event watchdog (" +
              std::to_string(opt_.max_events) + " simulated events) at t=" +
              std::to_string(p.engine().now()) + "ns",
          flight_dump_json(p.engine().flight_recorder()));
    }
    if (opt_.wall_limit_s > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - wall_start;
      if (elapsed.count() > opt_.wall_limit_s) {
        throw ScenarioTimeout(
            "scenario '" + spec.name +
                "': exceeded the wall-clock watchdog (" +
                std::to_string(opt_.wall_limit_s) + "s) at t=" +
                std::to_string(p.engine().now()) + "ns",
            flight_dump_json(p.engine().flight_recorder()));
      }
    }
  }
}

ScenarioRunner::SnapshotCheck ScenarioRunner::snapshot_bit_identity(
    const ScenarioSpec& spec, std::uint64_t seed) {
  spec.validate();
  const auto machine = find_machine(spec.machine);
  auto kcfg = *find_kernel(spec.kernel);
  apply_kernel_overrides(kcfg, spec.kernel_overrides);
  warm_process_statics();
  SnapshotCheck out;

  // Baseline: the ordinary malloc-hosted, uninterrupted run, with a
  // finished-hook grabbing the latency report at the same point the
  // arena-hosted extractions below will.
  std::string baseline_latency;
  Hooks hooks;
  hooks.finished = [&](Platform& p, rt::Probe&) {
    baseline_latency = kernel::latency_report_json(p.kernel(), {});
  };
  const ScenarioResult base = run_uncached(spec, seed, hooks);
  out.baseline = base.to_json().dump(2) + "\n" + baseline_latency;

  // Arena-hosted replica of run_uncached's exact sequence, split at
  // mid-horizon: run the first half, snapshot, continue to the end and
  // extract; then restore and re-run the second half and extract again.
  // All three serialized outputs must agree to the byte.
  sim::PooledArena arena;
  {
    sim::StateArena::Scope scope(*arena);
    auto* p = new Platform(*machine, kcfg, seed, spec.ht_override);
    const bool watchdog = opt_.max_events > 0 || opt_.wall_limit_s > 0.0;
    if (spec.telemetry.flight_recorder || watchdog) {
      const int cap = spec.telemetry.flight_recorder
                          ? spec.telemetry.flight_capacity
                          : 4096;
      p->engine().flight_recorder().enable(static_cast<std::size_t>(cap));
    }
    for (const auto& w : spec.workloads) {
      workload::make_workload(w.name, w.params)->install(*p);
    }
    auto probe =
        rt::make_probe(spec.probe, *p, spec.probe_params, opt_.scale);
    apply_mechanism(spec, *p, *probe);
    p->boot();
    apply_shield(spec, *p, *probe);
    probe->start();

    sim::Duration horizon;
    if (spec.duration.fixed_ns > 0) {
      horizon = static_cast<sim::Duration>(
          static_cast<double>(spec.duration.fixed_ns) * opt_.scale);
    } else {
      horizon = static_cast<sim::Duration>(
                    static_cast<double>(probe->base_duration()) *
                    spec.duration.factor) +
                spec.duration.margin_ns;
    }
    if (horizon <= 0) {
      throw std::runtime_error("scenario '" + spec.name +
                               "': computed horizon is zero");
    }

    std::unique_ptr<fault::Injector> injector;
    if (!spec.faults.empty()) {
      injector = std::make_unique<fault::Injector>(*p, spec.faults, seed);
      injector->arm(p->engine().now() + horizon);
    }
    // The sampler must be arena-resident (unlike run_uncached's stack
    // instance): a mid-run restore has to rewind its timeline too.
    std::unique_ptr<telemetry::Sampler> sampler;
    if (spec.telemetry.sampler) {
      sampler = std::make_unique<telemetry::Sampler>(p->engine(),
                                                     p->engine().telemetry());
      sampler->start(spec.telemetry.sample_period_ns);
    }

    const sim::Time run_start = p->engine().now();

    // Mirrors run_uncached's extraction order exactly (latency report at
    // the finished-hook point, then the result, then sampler shutdown).
    const auto extract = [&]() {
      const std::string latency = kernel::latency_report_json(p->kernel(), {});
      ScenarioResult r;
      r.name = spec.name;
      r.digest = spec.digest();
      r.seed = seed;
      r.scale = opt_.scale;
      r.probe = probe->result();
      r.events = p->engine().events_executed();
      r.duration_ns = static_cast<std::uint64_t>(p->engine().now() - run_start);
      if (sampler) {
        sampler->stop();
        Value t = Value::object();
        t.set("schema", "telemetry-v1");
        t.set("counters", telemetry_counters_json(p->engine().telemetry()));
        t.set("timeline", telemetry_timeline_json(*sampler));
        r.telemetry = std::move(t);
      }
      return r.to_json().dump(2) + "\n" + latency;
    };

    // Replicate run_to_horizon's slicing bit-for-bit: the stop time of a
    // sample-bound run is "first slice boundary at which the probe is
    // done", so this replica must walk the same boundary sequence
    // (t0 + k*slice) or its outputs would cover a different window than
    // the baseline's. Pausing at a boundary to take the snapshot does not
    // perturb the event stream — run_until(a); run_until(b) executes the
    // same events as run_until(b).
    const bool sample_bound = !opt_.full_horizon &&
                              spec.duration.fixed_ns == 0 &&
                              probe->base_duration() > 0;
    const auto slice =
        sample_bound
            ? std::max<sim::Duration>(1, probe->base_duration() / 64)
            : std::max<sim::Duration>(1, horizon / 64);
    const sim::Time t0 = p->engine().now();
    const sim::Time end = t0 + horizon;
    const auto run_span = [&](sim::Time until) {
      while (p->engine().now() < until) {
        if (sample_bound && probe->done()) break;
        p->run_until(std::min<sim::Time>(until, p->engine().now() + slice));
      }
    };

    // Snapshot at the boundary nearest mid-run (the 32nd slice), clamped
    // to the horizon for degenerate slicings.
    const sim::Time mid = std::min<sim::Time>(
        end, t0 + static_cast<sim::Time>(32) * static_cast<sim::Time>(slice));
    run_span(mid);
    const sim::Snapshot snap = sim::Snapshot::capture(*arena);
    out.snapshot_bytes = snap.bytes();

    run_span(end);
    {
      const std::string blob = extract();
      scope.pause();
      out.continued.assign(blob.data(), blob.size());
      scope.resume();
    }

    snap.restore(*arena);
    run_span(end);
    {
      const std::string blob = extract();
      scope.pause();
      out.resumed.assign(blob.data(), blob.size());
      scope.resume();
    }

    snap.restore(*arena);  // destruct against the coherent checkpoint graph
    sampler.reset();
    injector.reset();
    probe.reset();
    delete p;
  }

  out.identical =
      out.baseline == out.continued && out.baseline == out.resumed;
  return out;
}

RunOutcome ScenarioRunner::run_outcome(const ScenarioSpec& spec,
                                       std::uint64_t seed) {
  RunOutcome out;
  out.name = spec.name;
  out.mechanism = spec.mechanism;
  const int allowed = spec.transient ? std::max(1, opt_.max_attempts) : 1;
  std::uint64_t attempt_seed = seed;
  for (int attempt = 1; attempt <= allowed; ++attempt) {
    out.attempts = attempt;
    try {
      out.result = run(spec, attempt_seed);
      out.status = attempt > 1 ? RunStatus::kRetried : RunStatus::kOk;
      out.error.clear();
      return out;
    } catch (const ScenarioTimeout& e) {
      out.status = RunStatus::kTimedOut;
      out.error = e.what();
      out.flight_recording = e.flight_recording();
    } catch (const ScenarioAbort& e) {
      out.status = RunStatus::kFailed;
      out.error = e.what();
      out.flight_recording = e.flight_recording();
    } catch (const std::exception& e) {
      out.status = RunStatus::kFailed;
      out.error = e.what();
    }
    // Reseed deterministically off the original seed, not the failed one,
    // so retry N of a spec is the same run no matter how earlier attempts
    // interleaved across worker threads. The retry domain keeps these
    // streams disjoint from batch names and fork labels (a spec literally
    // named "retry#1" must not share a stream with anyone's first retry).
    attempt_seed = sim::derive_seed(seed, sim::SeedDomain::kRetry,
                                    "retry#" + std::to_string(attempt));
  }
  return out;
}

namespace {

/// With prefix sharing on, same-prefix specs should land on the same
/// worker: the group's first run builds the snapshot and the rest fork it
/// without ever contending on the entry lock. Returns batch indices
/// grouped by prefix key (group order follows first appearance, so a
/// prefix-sorted registry keeps its familiar execution order).
std::vector<std::vector<std::size_t>> group_by_prefix(
    const std::vector<ScenarioSpec>& specs) {
  std::vector<std::vector<std::size_t>> groups;
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string key = prefix_key(specs[i]);
    const auto [it, inserted] = index.emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  return groups;
}

}  // namespace

BatchReport ScenarioRunner::run_batch_report(
    const std::vector<ScenarioSpec>& specs, std::uint64_t root_seed) {
  BatchReport report;
  const auto seed_of = [&](std::size_t i) {
    return sim::derive_seed(root_seed, sim::SeedDomain::kBatch,
                            specs[i].name);
  };
  const std::uint64_t hits0 = prefix_hits_.load();
  const std::uint64_t misses0 = prefix_misses_.load();
  // run_outcome never throws, so one hostile spec cannot sink the batch the
  // way run_batch's first-exception-wins rethrow does.
  if (opt_.prefix_reuse) {
    const auto groups = group_by_prefix(specs);
    const auto per_group = sweep_.map<std::vector<RunOutcome>>(
        groups.size(), [&](std::size_t g) {
          std::vector<RunOutcome> outs;
          outs.reserve(groups[g].size());
          for (const std::size_t i : groups[g]) {
            outs.push_back(run_outcome(specs[i], seed_of(i)));
          }
          return outs;
        });
    report.outcomes.resize(specs.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (std::size_t k = 0; k < groups[g].size(); ++k) {
        report.outcomes[groups[g][k]] = std::move(per_group[g][k]);
      }
    }
  } else {
    report.outcomes = sweep_.map<RunOutcome>(specs.size(), [&](std::size_t i) {
      return run_outcome(specs[i], seed_of(i));
    });
  }
  report.cache_entries_recomputed = cache_recomputed_.load();
  report.prefix_hits = prefix_hits_.load() - hits0;
  report.prefix_misses = prefix_misses_.load() - misses0;
  return report;
}

std::vector<ScenarioResult> ScenarioRunner::run_batch(
    const std::vector<ScenarioSpec>& specs, std::uint64_t root_seed) {
  const auto seed_of = [&](std::size_t i) {
    return sim::derive_seed(root_seed, sim::SeedDomain::kBatch,
                            specs[i].name);
  };
  if (opt_.prefix_reuse) {
    const auto groups = group_by_prefix(specs);
    const auto per_group = sweep_.map<std::vector<ScenarioResult>>(
        groups.size(), [&](std::size_t g) {
          std::vector<ScenarioResult> outs;
          outs.reserve(groups[g].size());
          for (const std::size_t i : groups[g]) {
            outs.push_back(run(specs[i], seed_of(i)));
          }
          return outs;
        });
    std::vector<ScenarioResult> results(specs.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (std::size_t k = 0; k < groups[g].size(); ++k) {
        results[groups[g][k]] = std::move(per_group[g][k]);
      }
    }
    return results;
  }
  return sweep_.map<ScenarioResult>(specs.size(), [&](std::size_t i) {
    return run(specs[i], seed_of(i));
  });
}

std::vector<ScenarioResult> ScenarioRunner::run_seeds(const ScenarioSpec& spec,
                                                      std::uint64_t root_seed,
                                                      int repeats) {
  const auto n = static_cast<std::size_t>(repeats < 0 ? 0 : repeats);
  return sweep_.map<ScenarioResult>(n, [&](std::size_t i) {
    return run(spec,
               sim::derive_seed(root_seed, sim::SeedDomain::kFanout,
                                spec.name + "#" + std::to_string(i)));
  });
}

std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                      const json::Value& grid) {
  if (!grid.is_object()) {
    throw std::runtime_error("scenario grid must be a JSON object");
  }
  std::vector<ScenarioSpec> out{base};
  for (const auto& [key, values] : grid.members()) {
    if (!values.is_array() || values.items().empty()) {
      throw std::runtime_error("grid key '" + key +
                               "' must map to a non-empty array");
    }
    std::vector<ScenarioSpec> next;
    next.reserve(out.size() * values.items().size());
    for (const auto& s : out) {
      for (const auto& v : values.items()) {
        ScenarioSpec ns = s;
        ns.name += "/" + key + "=" +
                   (v.is_string() ? v.as_string() : v.dump());
        ns.probe_params.set(key, v);
        next.push_back(std::move(ns));
      }
    }
    out = std::move(next);
  }
  return out;
}

}  // namespace config

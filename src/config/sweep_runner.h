// Parallel map over independent simulation cases.
//
// Lives in the library (not bench/) so config::ScenarioRunner can batch
// scenarios over it; the bench binaries keep using it through
// bench/bench_util.h. The namespace stays `bench` — it is the bench-suite
// execution strategy, whoever links it.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace bench {

/// Runs the independent cases of a config sweep across all hardware
/// threads. Each case builds its own Platform (engine, kernel, devices,
/// RNG streams) from its own seed, so workers share no mutable state and
/// the per-case results are identical to a serial run; only wall-clock
/// changes. Results come back in case order — print them serially after.
class SweepRunner {
 public:
  explicit SweepRunner(unsigned workers = 0)
      : workers_(workers != 0
                     ? workers
                     : std::max(1u, std::thread::hardware_concurrency())) {}

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Invoke `fn(i)` for every i in [0, n), spread over the workers, and
  /// return the results in index order. `fn` must be self-contained: one
  /// engine per case, no shared mutable state, no printing. If a case
  /// throws, the sweep stops claiming new cases and the first exception is
  /// rethrown here after all workers have joined (an exception escaping a
  /// plain thread would have called std::terminate).
  template <typename T, typename Fn>
  std::vector<T> map(std::size_t n, Fn fn) const {
    std::vector<T> results(n);
    const auto workers = static_cast<unsigned>(
        std::min<std::size_t>(workers_, n));
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
      return results;
    }
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    const auto drain = [&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          results[i] = fn(i);
        } catch (...) {
          const std::scoped_lock hold(error_mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (auto& t : pool) t.join();
    if (error) std::rethrow_exception(error);
    return results;
  }

 private:
  unsigned workers_;
};

}  // namespace bench

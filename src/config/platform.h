// Platform: one fully assembled simulated machine.
//
// Owns the engine, hardware, devices, kernel, drivers, and (when the
// kernel supports it) the shield controller — everything an experiment or
// example needs, wired in the right order. This is the main entry point of
// the library's public API:
//
//   config::Platform p(config::MachineConfig::dual_p4_xeon_2000_rcim(),
//                      config::KernelConfig::redhawk_1_4(), /*seed=*/42);
//   p.boot();
//   p.shield().dedicate_cpu(1, my_task, p.rcim_device().irq());
//   p.run_for(10 * sim::kSecond);
#pragma once

#include <memory>
#include <optional>

#include "config/kernel_config.h"
#include "config/machine_config.h"
#include "hw/disk_device.h"
#include "hw/gpu_device.h"
#include "hw/interrupt_controller.h"
#include "hw/memory_system.h"
#include "hw/nic_device.h"
#include "hw/rcim_device.h"
#include "hw/rtc_device.h"
#include "hw/topology.h"
#include "kernel/drivers/disk_driver.h"
#include "kernel/drivers/gpu_driver.h"
#include "kernel/drivers/nic_driver.h"
#include "kernel/drivers/rcim_driver.h"
#include "kernel/drivers/rtc_driver.h"
#include "kernel/kernel.h"
#include "shield/shield_controller.h"
#include "sim/engine.h"

namespace config {

class Platform {
 public:
  /// `ht_override` forces hyperthreading on/off regardless of the kernel's
  /// default (used by §5.2's "vanilla with HT disabled via GRUB" run).
  Platform(const MachineConfig& machine, const KernelConfig& kcfg,
           std::uint64_t seed, std::optional<bool> ht_override = std::nullopt);

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Start the kernel (ksoftirqd, local timers, created tasks).
  void boot();

  /// Advance simulated time by `d`.
  void run_for(sim::Duration d);
  /// Advance simulated time until absolute time `t`.
  void run_until(sim::Time t);

  // ---- accessors ------------------------------------------------------------
  sim::Engine& engine() { return *engine_; }
  const hw::Topology& topology() const { return *topo_; }
  hw::MemorySystem& memory() { return *mem_; }
  hw::InterruptController& interrupt_controller() { return *ic_; }
  kernel::Kernel& kernel() { return *kernel_; }

  hw::RtcDevice& rtc_device() { return *rtc_dev_; }
  hw::NicDevice& nic_device() { return *nic_dev_; }
  hw::DiskDevice& disk_device() { return *disk_dev_; }
  hw::GpuDevice& gpu_device() { return *gpu_dev_; }
  /// Only present when the machine has the card *and* the kernel ships the
  /// driver.
  [[nodiscard]] bool has_rcim() const { return rcim_dev_ != nullptr; }
  hw::RcimDevice& rcim_device();

  kernel::RtcDriver& rtc_driver() { return *rtc_drv_; }
  kernel::NicDriver& nic_driver() { return *nic_drv_; }
  kernel::DiskDriver& disk_driver() { return *disk_drv_; }
  kernel::GpuDriver& gpu_driver() { return *gpu_drv_; }
  kernel::RcimDriver& rcim_driver();

  [[nodiscard]] bool has_shield() const { return shield_ != nullptr; }
  shield::ShieldController& shield();

  const MachineConfig& machine_config() const { return machine_; }
  const KernelConfig& kernel_config() const { return kernel_->config(); }

 private:
  MachineConfig machine_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<hw::Topology> topo_;
  std::unique_ptr<hw::MemorySystem> mem_;
  std::unique_ptr<hw::InterruptController> ic_;
  std::unique_ptr<hw::RtcDevice> rtc_dev_;
  std::unique_ptr<hw::RcimDevice> rcim_dev_;
  std::unique_ptr<hw::NicDevice> nic_dev_;
  std::unique_ptr<hw::DiskDevice> disk_dev_;
  std::unique_ptr<hw::GpuDevice> gpu_dev_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<kernel::RtcDriver> rtc_drv_;
  std::unique_ptr<kernel::RcimDriver> rcim_drv_;
  std::unique_ptr<kernel::NicDriver> nic_drv_;
  std::unique_ptr<kernel::DiskDriver> disk_drv_;
  std::unique_ptr<kernel::GpuDriver> gpu_drv_;
  std::unique_ptr<shield::ShieldController> shield_;
};

}  // namespace config

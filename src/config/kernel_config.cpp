#include "config/kernel_config.h"

namespace config {

using namespace sim::literals;

KernelConfig KernelConfig::vanilla_2_4_20() {
  KernelConfig c;
  c.name = "kernel.org 2.4.20";
  c.scheduler = SchedulerKind::kGoodness24;
  c.preempt_kernel = false;
  c.low_latency = false;
  c.softirq_daemon_offload = false;
  c.bkl_ioctl_flag = false;
  c.shield_support = false;
  c.rcim_driver = false;
  c.posix_timers = false;
  c.default_hyperthreading = true;  // §5.2: "this version of Linux enables hyperthreading"
  c.section_min = 2_us;
  c.section_max = 55_ms;
  c.section_alpha = 1.05;
  c.syscall_body_max = 90_ms;
  c.sched_pick_per_task = 150_ns;
  return c;
}

KernelConfig KernelConfig::redhawk_1_4() {
  KernelConfig c;
  c.name = "RedHawk 1.4";
  c.scheduler = SchedulerKind::kO1;
  c.preempt_kernel = true;
  c.low_latency = true;
  c.softirq_daemon_offload = true;
  c.bkl_ioctl_flag = true;
  c.shield_support = true;
  c.rcim_driver = true;
  c.posix_timers = true;
  c.default_hyperthreading = false;  // "hyperthreading is disabled by default in RedHawk"
  // Low-latency patches + Concurrent's "further low-latency work" (§4):
  // shorter sections than the stock Morton patch set.
  c.section_min = 1_us;
  c.section_max = 450_us;
  c.section_alpha = 1.2;
  // Preemptible kernel: body length no longer gates latency, but keep it
  // realistic.
  c.syscall_body_max = 90_ms;
  c.sched_pick_per_task = 0;  // O(1)
  // RedHawk still drains normal bottom-half volumes in interrupt context —
  // Fig 3 shows an unshielded RedHawk CPU suffers nearly vanilla jitter —
  // but caps a runaway storm and kicks the rest to ksoftirqd.
  c.softirq_budget_in_irq = 1_ms;
  // Tick work was also slimmed down.
  c.tick_cost_min = 1_us;
  c.tick_cost_max = 4_us;
  return c;
}

KernelConfig KernelConfig::patched_preempt_lowlat() {
  KernelConfig c = vanilla_2_4_20();
  c.name = "2.4 + preempt + low-latency";
  c.preempt_kernel = true;
  c.low_latency = true;
  c.section_min = 1_us;
  c.section_max = 1200_us;
  c.section_alpha = 1.3;
  return c;
}

}  // namespace config

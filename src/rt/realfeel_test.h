// realfeel (§6.1): Andrew Morton's interrupt-response benchmark.
//
// The RTC fires periodically at 2048 Hz; the test loops reading /dev/rtc
// (which blocks until the next interrupt) and timestamps each return with
// the TSC. The latency metric is the paper's: the gap between consecutive
// returns minus the expected period — a late wakeup stretches one gap.
#pragma once

#include <cstdint>
#include <optional>

#include "kernel/drivers/rtc_driver.h"
#include "kernel/kernel.h"
#include "metrics/histogram.h"
#include "sim/trace.h"

namespace rt {

class RealfeelTest {
 public:
  struct Params {
    int rate_hz = 2048;
    std::uint64_t samples = 1'000'000;
    int rt_priority = 95;
    hw::CpuMask affinity;  ///< empty = all CPUs
  };

  RealfeelTest(kernel::Kernel& kernel, kernel::RtcDriver& driver,
               Params params);

  /// Arms the RTC at the configured rate. Call after boot.
  void start();

  [[nodiscard]] kernel::Task& task() { return *task_; }
  [[nodiscard]] bool done() const { return collected_ >= params_.samples; }
  [[nodiscard]] std::uint64_t collected() const { return collected_; }

  /// Histogram of (gap - period) latencies, the figures' metric.
  [[nodiscard]] const metrics::LatencyHistogram& latencies() const {
    return latencies_;
  }
  /// Cross-check: wakeup latency measured against the device's actual fire
  /// time (not observable on real hardware, but exact in the simulator).
  [[nodiscard]] const metrics::LatencyHistogram& wake_latencies() const {
    return wake_latencies_;
  }

  /// Decomposition of the worst wake latency observed so far. Present only
  /// when the engine's chain tracer was enabled before start().
  [[nodiscard]] const std::optional<sim::LatencyChain>& worst_chain() const {
    return worst_chain_;
  }

 private:
  class Behavior;

  kernel::Kernel& kernel_;
  kernel::RtcDriver& driver_;
  Params params_;
  kernel::Task* task_ = nullptr;
  metrics::LatencyHistogram latencies_;
  metrics::LatencyHistogram wake_latencies_;
  std::optional<sim::LatencyChain> worst_chain_;
  std::uint64_t collected_ = 0;
};

}  // namespace rt

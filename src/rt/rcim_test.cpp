#include "rt/rcim_test.h"

#include <memory>

#include "sim/assert.h"

namespace rt {

class RcimTest::Behavior final : public kernel::Behavior {
 public:
  explicit Behavior(RcimTest& owner) : owner_(owner) {}

  kernel::Action next_action(kernel::Kernel& k, kernel::Task& t) override {
    const sim::Time now = k.now();
    auto chain = k.finish_latency_chain(t);
    if (waited_ && !owner_.done()) {
      auto& dev = owner_.driver_.device();
      // The user-space measurement: mmap'd count register.
      owner_.latencies_.add(dev.elapsed_in_cycle());
      // Ground truth from the simulator.
      const sim::Duration truth = now - dev.last_fire();
      owner_.true_latencies_.add(truth);
      if (truth >= dev.period()) owner_.overruns_++;
      owner_.collected_++;
      if (chain && (!owner_.worst_chain_ ||
                    chain->total() > owner_.worst_chain_->total())) {
        owner_.worst_chain_ = std::move(chain);
      }
    }
    if (owner_.done()) return kernel::ExitAction{};
    waited_ = true;
    return kernel::SyscallAction{"ioctl(RCIM_WAIT)",
                                 owner_.driver_.wait_ioctl_program()};
  }

 private:
  RcimTest& owner_;
  bool waited_ = false;
};

RcimTest::RcimTest(kernel::Kernel& kernel, kernel::RcimDriver& driver,
                   Params params)
    : kernel_(kernel), driver_(driver), params_(params) {
  SIM_ASSERT(params_.samples > 0 && params_.count > 0);
  kernel::Kernel::TaskParams tp;
  tp.name = "rcim-response";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = params_.rt_priority;
  tp.affinity = params_.affinity;
  tp.mlocked = true;
  tp.memory_intensity = 0.2;
  task_ = &kernel.create_task(std::move(tp), std::make_unique<Behavior>(*this));
}

void RcimTest::start() { driver_.device().program_periodic(params_.count); }

}  // namespace rt

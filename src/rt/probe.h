// RT probe registry: one uniform interface over every measurement the
// paper (and the ablations) run.
//
// A scenario names its probe ("determinism", "realfeel", "rcim",
// "cyclictest", "timer-gap", "holdoff") plus a JSON parameter object; the
// registry builds the concrete rt:: test on a Platform and adapts it to
// the Probe interface the ScenarioRunner drives: construct before boot,
// start() after boot + shield setup, run to the horizon, then collect a
// serializable ProbeResult.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "config/json.h"
#include "config/platform.h"
#include "metrics/histogram.h"
#include "sim/trace.h"

namespace rt {

/// Everything a scenario result keeps from a probe run. Pure simulated
/// data — it serializes exactly (histograms via bucket counts + summary),
/// which is what makes scenario results cacheable.
struct ProbeResult {
  metrics::LatencyHistogram primary;  ///< the headline latency distribution
  /// Probe-specific cross-check (realfeel: wake latencies; rcim: the other
  /// of register/truth). Empty when the probe has no second view.
  metrics::LatencyHistogram secondary;
  sim::Duration ideal = 0;  ///< determinism: the unloaded loop time
  std::uint64_t collected = 0;
  /// Target sample count; 0 means the probe is duration-bound and
  /// `complete` is always true.
  std::uint64_t expected = 0;
  bool complete = false;
  std::map<std::string, double> stats;  ///< probe-specific scalars
};

/// Adapter between the ScenarioRunner and one concrete RT measurement.
class Probe {
 public:
  virtual ~Probe() = default;

  /// The measuring task, if the probe has one (shield plans pin it).
  [[nodiscard]] virtual kernel::Task* task() { return nullptr; }
  /// IRQ line of the probe's device, or -1 (dedicate plans pin it).
  [[nodiscard]] virtual int irq() const { return -1; }
  /// Arm devices/timers. Called after boot and shield setup.
  virtual void start() {}
  /// Nominal simulated time the probe needs to collect its samples; the
  /// scenario's DurationPolicy turns this into a horizon. 0 for
  /// duration-bound probes (they need a fixed-duration policy).
  [[nodiscard]] virtual sim::Duration base_duration() const = 0;
  [[nodiscard]] virtual bool done() const = 0;
  [[nodiscard]] virtual ProbeResult result() const = 0;
  /// Worst-sample decomposition when the chain tracer was enabled. Not
  /// part of the cacheable result — reach it through ScenarioRunner hooks.
  [[nodiscard]] virtual const std::optional<sim::LatencyChain>& worst_chain()
      const;
};

/// All registered probe names, sorted.
[[nodiscard]] std::vector<std::string> probe_names();

[[nodiscard]] bool probe_contains(const std::string& name);

/// True when the probe collects for as long as it runs (no sample target,
/// base_duration() == 0) and therefore needs a fixed-duration policy.
[[nodiscard]] bool probe_duration_bound(const std::string& name);

/// Build a probe on a platform; call before boot() (probes create their
/// measuring task in the constructor). `params` must be a JSON object;
/// `scale` multiplies sample counts the way the benches' --scale always
/// has. Throws std::runtime_error on unknown names or parameter keys.
[[nodiscard]] std::unique_ptr<Probe> make_probe(
    const std::string& name, config::Platform& platform,
    const config::json::Value& params, double scale);

}  // namespace rt

// The §6.3 RCIM interrupt-response test.
//
// The RCIM timer is programmed periodic; the test loops on the wait ioctl.
// On wakeup it reads the memory-mapped count register: since the register
// auto-reloaded when the interrupt fired, (initial - count) * tick is the
// elapsed time since the interrupt — an almost-free latency measurement.
#pragma once

#include <cstdint>
#include <optional>

#include "kernel/drivers/rcim_driver.h"
#include "kernel/kernel.h"
#include "metrics/histogram.h"
#include "sim/trace.h"

namespace rt {

class RcimTest {
 public:
  struct Params {
    /// RCIM count register load; period = count * device tick (400 ns).
    /// 2500 ticks = 1 ms.
    std::uint32_t count = 2'500;
    std::uint64_t samples = 1'000'000;
    int rt_priority = 95;
    hw::CpuMask affinity;  ///< empty = all CPUs
  };

  RcimTest(kernel::Kernel& kernel, kernel::RcimDriver& driver, Params params);

  /// Program the RCIM periodic timer. Call after boot.
  void start();

  [[nodiscard]] kernel::Task& task() { return *task_; }
  [[nodiscard]] bool done() const { return collected_ >= params_.samples; }
  [[nodiscard]] std::uint64_t collected() const { return collected_; }

  /// Latencies as the paper measures them: the mmap'd count register read.
  [[nodiscard]] const metrics::LatencyHistogram& latencies() const {
    return latencies_;
  }
  /// Simulator ground truth (now - actual fire time) — identical to the
  /// register method unless an overrun wrapped the counter.
  [[nodiscard]] const metrics::LatencyHistogram& true_latencies() const {
    return true_latencies_;
  }
  [[nodiscard]] std::uint64_t overruns() const { return overruns_; }

  /// Decomposition of the worst true latency observed so far. Present only
  /// when the engine's chain tracer was enabled before start().
  [[nodiscard]] const std::optional<sim::LatencyChain>& worst_chain() const {
    return worst_chain_;
  }

 private:
  class Behavior;

  kernel::Kernel& kernel_;
  kernel::RcimDriver& driver_;
  Params params_;
  kernel::Task* task_ = nullptr;
  metrics::LatencyHistogram latencies_;
  metrics::LatencyHistogram true_latencies_;
  std::optional<sim::LatencyChain> worst_chain_;
  std::uint64_t collected_ = 0;
  std::uint64_t overruns_ = 0;
};

}  // namespace rt

#include "rt/determinism_test.h"

#include <algorithm>
#include <memory>

#include "sim/assert.h"

namespace rt {

class DeterminismTest::Behavior final : public kernel::Behavior {
 public:
  explicit Behavior(DeterminismTest& owner) : owner_(owner) {}

  kernel::Action next_action(kernel::Kernel& k, kernel::Task&) override {
    const sim::Time now = k.now();  // rdtsc
    if (started_) {
      owner_.samples_.push_back(now - loop_start_);
    }
    if (static_cast<int>(owner_.samples_.size()) >=
        owner_.params_.iterations) {
      return kernel::ExitAction{};
    }
    started_ = true;
    loop_start_ = now;
    return kernel::ComputeAction{owner_.params_.loop_work,
                                 owner_.params_.memory_intensity};
  }

 private:
  DeterminismTest& owner_;
  bool started_ = false;
  sim::Time loop_start_ = 0;
};

DeterminismTest::DeterminismTest(kernel::Kernel& kernel, Params params)
    : kernel_(kernel), params_(params) {
  SIM_ASSERT(params_.iterations > 0 && params_.loop_work > 0);
  kernel::Kernel::TaskParams tp;
  tp.name = "determinism-test";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = params_.rt_priority;
  tp.affinity = params_.affinity;
  tp.mlocked = true;
  tp.memory_intensity = params_.memory_intensity;
  task_ = &kernel.create_task(std::move(tp), std::make_unique<Behavior>(*this));
}

sim::Duration DeterminismTest::max_observed() const {
  sim::Duration m = 0;
  for (const auto s : samples_) m = std::max(m, s);
  return m;
}

metrics::LatencyHistogram DeterminismTest::excess_histogram() const {
  metrics::LatencyHistogram h;
  for (const auto s : samples_) {
    h.add(s > params_.loop_work ? s - params_.loop_work : 0);
  }
  return h;
}

}  // namespace rt

#include "rt/realfeel_test.h"

#include <memory>

#include "sim/assert.h"

namespace rt {

class RealfeelTest::Behavior final : public kernel::Behavior {
 public:
  explicit Behavior(RealfeelTest& owner) : owner_(owner) {}

  kernel::Action next_action(kernel::Kernel& k, kernel::Task& t) override {
    const sim::Time now = k.now();  // rdtsc after read() returned
    auto chain = k.finish_latency_chain(t);
    if (have_prev_ && !owner_.done()) {
      const sim::Duration gap = now - prev_return_;
      const sim::Duration period = owner_.driver_.device().nominal_period();
      owner_.latencies_.add(gap > period ? gap - period : 0);
      owner_.wake_latencies_.add(now - owner_.driver_.device().last_fire());
      owner_.collected_++;
      if (chain && (!owner_.worst_chain_ ||
                    chain->total() > owner_.worst_chain_->total())) {
        owner_.worst_chain_ = std::move(chain);
      }
    }
    if (owner_.done()) return kernel::ExitAction{};
    prev_return_ = now;
    have_prev_ = true;
    return kernel::SyscallAction{"read(/dev/rtc)",
                                 owner_.driver_.read_program()};
  }

 private:
  RealfeelTest& owner_;
  bool have_prev_ = false;
  sim::Time prev_return_ = 0;
};

RealfeelTest::RealfeelTest(kernel::Kernel& kernel, kernel::RtcDriver& driver,
                           Params params)
    : kernel_(kernel), driver_(driver), params_(params) {
  SIM_ASSERT(params_.samples > 0);
  kernel::Kernel::TaskParams tp;
  tp.name = "realfeel";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = params_.rt_priority;
  tp.affinity = params_.affinity;
  tp.mlocked = true;
  tp.memory_intensity = 0.2;
  task_ = &kernel.create_task(std::move(tp), std::make_unique<Behavior>(*this));
}

void RealfeelTest::start() {
  driver_.device().set_rate_hz(params_.rate_hz);
  driver_.device().start_periodic();
}

}  // namespace rt

#include "rt/probe.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

#include "kernel/latency_auditor.h"
#include "rt/cyclictest.h"
#include "rt/determinism_test.h"
#include "rt/rcim_test.h"
#include "rt/realfeel_test.h"
#include "workload/workload.h"

namespace rt {
namespace {

using config::json::Value;

std::uint64_t scaled(std::uint64_t n, double scale) {
  const auto s =
      static_cast<std::uint64_t>(static_cast<double>(n) * scale);
  return s == 0 ? 1 : s;
}

[[noreturn]] void unknown_key(const std::string& probe,
                              const std::string& key) {
  throw std::runtime_error("probe '" + probe + "': unknown parameter '" +
                           key + "'");
}

void require_object(const std::string& probe, const Value& params) {
  if (!params.is_object()) {
    throw std::runtime_error("probe '" + probe +
                             "': params must be a JSON object");
  }
}

hw::CpuMask cpu_mask(std::int64_t cpu) {
  return cpu < 0 ? hw::CpuMask{} : hw::CpuMask::single(static_cast<int>(cpu));
}

const std::optional<sim::LatencyChain>& no_chain() {
  static const std::optional<sim::LatencyChain> none;
  return none;
}

// ---- determinism ----------------------------------------------------------

class DeterminismProbe final : public Probe {
 public:
  DeterminismProbe(config::Platform& p, const Value& params, double scale) {
    DeterminismTest::Params dp;
    bool mlocked = true;
    for (const auto& [key, v] : params.members()) {
      if (key == "loop_work_ns") {
        dp.loop_work = static_cast<sim::Duration>(v.as_u64());
      } else if (key == "iterations") {
        dp.iterations = static_cast<int>(v.as_u64());
      } else if (key == "memory_intensity") {
        dp.memory_intensity = v.as_double();
      } else if (key == "rt_priority") {
        dp.rt_priority = static_cast<int>(v.as_i64());
      } else if (key == "affinity_cpu") {
        dp.affinity = cpu_mask(v.as_i64());
      } else if (key == "mlocked") {
        mlocked = v.as_bool();
      } else {
        unknown_key("determinism", key);
      }
    }
    dp.iterations = static_cast<int>(
        scaled(static_cast<std::uint64_t>(dp.iterations), scale));
    params_ = dp;
    test_ = std::make_unique<DeterminismTest>(p.kernel(), dp);
    test_->task().mlocked = mlocked;
  }

  kernel::Task* task() override { return &test_->task(); }
  sim::Duration base_duration() const override {
    return params_.loop_work *
           static_cast<sim::Duration>(params_.iterations);
  }
  bool done() const override { return test_->done(); }

  ProbeResult result() const override {
    ProbeResult r;
    r.primary = test_->excess_histogram();
    r.ideal = test_->ideal();
    r.collected = test_->samples().size();
    r.expected = static_cast<std::uint64_t>(params_.iterations);
    r.complete = test_->done();
    r.stats["max_observed_ns"] = static_cast<double>(test_->max_observed());
    r.stats["minor_faults"] = static_cast<double>(
        const_cast<DeterminismTest&>(*test_).task().minor_faults);
    return r;
  }

 private:
  DeterminismTest::Params params_;
  std::unique_ptr<DeterminismTest> test_;
};

// ---- realfeel -------------------------------------------------------------

class RealfeelProbe final : public Probe {
 public:
  RealfeelProbe(config::Platform& p, const Value& params, double scale)
      : irq_(p.rtc_device().irq()) {
    RealfeelTest::Params rp;
    for (const auto& [key, v] : params.members()) {
      if (key == "rate_hz") {
        rp.rate_hz = static_cast<int>(v.as_i64());
      } else if (key == "samples") {
        rp.samples = v.as_u64();
      } else if (key == "rt_priority") {
        rp.rt_priority = static_cast<int>(v.as_i64());
      } else if (key == "affinity_cpu") {
        rp.affinity = cpu_mask(v.as_i64());
      } else {
        unknown_key("realfeel", key);
      }
    }
    rp.samples = scaled(rp.samples, scale);
    params_ = rp;
    test_ = std::make_unique<RealfeelTest>(p.kernel(), p.rtc_driver(), rp);
  }

  kernel::Task* task() override { return &test_->task(); }
  int irq() const override { return irq_; }
  void start() override { test_->start(); }
  sim::Duration base_duration() const override {
    return sim::from_seconds(static_cast<double>(params_.samples) /
                             static_cast<double>(params_.rate_hz));
  }
  bool done() const override { return test_->done(); }

  ProbeResult result() const override {
    ProbeResult r;
    r.primary = test_->latencies();
    r.secondary = test_->wake_latencies();
    r.collected = test_->collected();
    r.expected = params_.samples;
    r.complete = test_->done();
    return r;
  }
  const std::optional<sim::LatencyChain>& worst_chain() const override {
    return test_->worst_chain();
  }

 private:
  int irq_;
  RealfeelTest::Params params_;
  std::unique_ptr<RealfeelTest> test_;
};

// ---- rcim -----------------------------------------------------------------

class RcimProbe final : public Probe {
 public:
  RcimProbe(config::Platform& p, const Value& params, double scale) {
    if (!p.has_rcim()) {
      throw std::runtime_error(
          "probe 'rcim': the machine has no RCIM card (or the kernel has "
          "no driver)");
    }
    irq_ = p.rcim_device().irq();
    tick_ = p.rcim_device().tick();
    RcimTest::Params rp;
    for (const auto& [key, v] : params.members()) {
      if (key == "count") {
        rp.count = static_cast<std::uint32_t>(v.as_u64());
      } else if (key == "samples") {
        rp.samples = v.as_u64();
      } else if (key == "rt_priority") {
        rp.rt_priority = static_cast<int>(v.as_i64());
      } else if (key == "affinity_cpu") {
        rp.affinity = cpu_mask(v.as_i64());
      } else if (key == "measure") {
        const std::string& m = v.as_string();
        if (m == "truth") {
          truth_ = true;
        } else if (m != "register") {
          throw std::runtime_error(
              "probe 'rcim': measure must be 'register' or 'truth'");
        }
      } else {
        unknown_key("rcim", key);
      }
    }
    rp.samples = scaled(rp.samples, scale);
    params_ = rp;
    test_ = std::make_unique<RcimTest>(p.kernel(), p.rcim_driver(), rp);
  }

  kernel::Task* task() override { return &test_->task(); }
  int irq() const override { return irq_; }
  void start() override { test_->start(); }
  sim::Duration base_duration() const override {
    return static_cast<sim::Duration>(params_.count) * tick_ *
           params_.samples;
  }
  bool done() const override { return test_->done(); }

  ProbeResult result() const override {
    ProbeResult r;
    r.primary = truth_ ? test_->true_latencies() : test_->latencies();
    r.secondary = truth_ ? test_->latencies() : test_->true_latencies();
    r.collected = test_->collected();
    r.expected = params_.samples;
    r.complete = test_->done();
    r.stats["overruns"] = static_cast<double>(test_->overruns());
    return r;
  }
  const std::optional<sim::LatencyChain>& worst_chain() const override {
    return test_->worst_chain();
  }

 private:
  int irq_ = -1;
  sim::Duration tick_ = 400;
  bool truth_ = false;
  RcimTest::Params params_;
  std::unique_ptr<RcimTest> test_;
};

// ---- cyclictest -----------------------------------------------------------

class CyclicProbe final : public Probe {
 public:
  CyclicProbe(config::Platform& p, const Value& params, double scale) {
    CyclicTest::Params cp;
    for (const auto& [key, v] : params.members()) {
      if (key == "period_ns") {
        cp.period = static_cast<sim::Duration>(v.as_u64());
      } else if (key == "cycles") {
        cp.cycles = v.as_u64();
      } else if (key == "rt_priority") {
        cp.rt_priority = static_cast<int>(v.as_i64());
      } else if (key == "affinity_cpu") {
        cp.affinity = cpu_mask(v.as_i64());
      } else {
        unknown_key("cyclictest", key);
      }
    }
    cp.cycles = scaled(cp.cycles, scale);
    params_ = cp;
    test_ = std::make_unique<CyclicTest>(p.kernel(), cp);
  }

  kernel::Task* task() override { return &test_->task(); }
  void start() override { test_->start(); }
  sim::Duration base_duration() const override {
    return params_.period * params_.cycles;
  }
  bool done() const override { return test_->done(); }

  ProbeResult result() const override {
    ProbeResult r;
    r.primary = test_->latencies();
    r.collected = test_->collected();
    // Duration-bound: a jiffy-quantized kernel stretches the effective
    // period ~10x, so "cycles collected in the window" is the measurement,
    // not a completion target (the cycles param only caps fast kernels).
    r.expected = 0;
    r.complete = true;
    return r;
  }
  const std::optional<sim::LatencyChain>& worst_chain() const override {
    return test_->worst_chain();
  }

 private:
  CyclicTest::Params params_;
  std::unique_ptr<CyclicTest> test_;
};

// ---- timer-gap ------------------------------------------------------------

// The posix-timers measurement: a SCHED_FIFO task sleeps on a kernel
// periodic timer and records |inter-wakeup gap - requested period|. On a
// jiffy-wheel kernel the error is millisecond-scale quantization; on a
// high-res kernel it is the microsecond wake-path cost. Duration-bound:
// pair it with a fixed-duration policy.
class TimerGapProbe final : public Probe {
 public:
  TimerGapProbe(config::Platform& p, const Value& params, double /*scale*/)
      : kernel_(p.kernel()) {
    sim::Duration period = 10 * sim::kMillisecond;
    int rt_priority = 90;
    for (const auto& [key, v] : params.members()) {
      if (key == "period_ns") {
        period = static_cast<sim::Duration>(v.as_u64());
      } else if (key == "rt_priority") {
        rt_priority = static_cast<int>(v.as_i64());
      } else {
        unknown_key("timer-gap", key);
      }
    }
    period_ = period;
    wq_ = kernel_.create_wait_queue("periodic");
    state_ = std::make_shared<State>();

    kernel::Kernel::TaskParams tp;
    tp.name = "periodic";
    tp.policy = kernel::SchedPolicy::kFifo;
    tp.rt_priority = rt_priority;
    tp.mlocked = true;
    auto st = state_;
    const auto wq = wq_;
    task_ = &workload::spawn(
        kernel_, std::move(tp),
        [st, wq, period](kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
          const sim::Time now = kk.now();
          if (st->have_prev) {
            const sim::Duration gap = now - st->prev;
            st->err.add(gap > period ? gap - period : period - gap);
          }
          st->prev = now;
          st->have_prev = true;
          return kernel::SyscallAction{
              "timer_wait", kernel::ProgramBuilder{}.block(wq).build()};
        });
  }

  kernel::Task* task() override { return task_; }
  void start() override { kernel_.arm_periodic_timer(wq_, period_); }
  sim::Duration base_duration() const override { return 0; }
  bool done() const override { return false; }

  ProbeResult result() const override {
    ProbeResult r;
    r.primary = state_->err;
    r.collected = state_->err.count();
    r.expected = 0;
    r.complete = true;
    return r;
  }
  const std::optional<sim::LatencyChain>& worst_chain() const override {
    return no_chain();
  }

 private:
  struct State {
    metrics::LatencyHistogram err;
    sim::Time prev = 0;
    bool have_prev = false;
  };

  kernel::Kernel& kernel_;
  kernel::WaitQueueId wq_;
  sim::Duration period_ = 0;
  kernel::Task* task_ = nullptr;
  std::shared_ptr<State> state_;
};

// ---- holdoff --------------------------------------------------------------

// No measuring task at all: run the workloads for the horizon, then read
// the kernel's latency auditor — worst irq-off / preempt-off holdoffs and
// the merged preempt-off distribution. Duration-bound.
class HoldoffProbe final : public Probe {
 public:
  HoldoffProbe(config::Platform& p, const Value& params, double /*scale*/)
      : platform_(p) {
    if (!params.members().empty()) {
      unknown_key("holdoff", params.members().front().first);
    }
  }

  sim::Duration base_duration() const override { return 0; }
  bool done() const override { return false; }

  ProbeResult result() const override {
    auto& k = platform_.kernel();
    const auto& a = k.auditor();
    ProbeResult r;
    for (int c = 0; c < k.ncpus(); ++c) r.primary.merge(a.preempt_off(c));
    r.collected = r.primary.count();
    r.expected = 0;
    r.complete = true;
    r.stats["worst_irq_off_ns"] = static_cast<double>(a.worst_irq_off());
    r.stats["worst_preempt_off_ns"] =
        static_cast<double>(a.worst_preempt_off());
    return r;
  }
  const std::optional<sim::LatencyChain>& worst_chain() const override {
    return no_chain();
  }

 private:
  config::Platform& platform_;
};

using Factory = std::function<std::unique_ptr<Probe>(
    config::Platform&, const Value&, double)>;

template <typename P>
Factory make_factory() {
  return [](config::Platform& p, const Value& params,
            double scale) -> std::unique_ptr<Probe> {
    return std::make_unique<P>(p, params, scale);
  };
}

const std::map<std::string, Factory>& table() {
  static const std::map<std::string, Factory> t = {
      {"determinism", make_factory<DeterminismProbe>()},
      {"realfeel", make_factory<RealfeelProbe>()},
      {"rcim", make_factory<RcimProbe>()},
      {"cyclictest", make_factory<CyclicProbe>()},
      {"timer-gap", make_factory<TimerGapProbe>()},
      {"holdoff", make_factory<HoldoffProbe>()},
  };
  return t;
}

}  // namespace

const std::optional<sim::LatencyChain>& Probe::worst_chain() const {
  return no_chain();
}

std::vector<std::string> probe_names() {
  std::vector<std::string> names;
  names.reserve(table().size());
  for (const auto& [name, factory] : table()) names.push_back(name);
  return names;
}

bool probe_contains(const std::string& name) {
  return table().count(name) != 0;
}

bool probe_duration_bound(const std::string& name) {
  return name == "timer-gap" || name == "holdoff" || name == "cyclictest";
}

std::unique_ptr<Probe> make_probe(const std::string& name,
                                  config::Platform& platform,
                                  const config::json::Value& params,
                                  double scale) {
  require_object(name, params);
  const auto it = table().find(name);
  if (it == table().end()) {
    throw std::runtime_error("unknown probe '" + name + "'");
  }
  return it->second(platform, params, scale);
}

}  // namespace rt

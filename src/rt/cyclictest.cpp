#include "rt/cyclictest.h"

#include <memory>

#include "sim/assert.h"

namespace rt {

class CyclicTest::Behavior final : public kernel::Behavior {
 public:
  explicit Behavior(CyclicTest& owner) : owner_(owner) {}

  kernel::Action next_action(kernel::Kernel& k, kernel::Task& t) override {
    const sim::Time now = k.now();
    auto chain = k.finish_latency_chain(t);
    if (waited_ && !owner_.done() && owner_.timer_ >= 0) {
      const sim::Time expiry = k.timer_last_expiry(owner_.timer_);
      if (expiry > 0 && now >= expiry) {
        // How late did we run after the expiry that woke us?
        owner_.latencies_.add(now - expiry);
        owner_.collected_++;
        if (chain && (!owner_.worst_chain_ ||
                      chain->total() > owner_.worst_chain_->total())) {
          owner_.worst_chain_ = std::move(chain);
        }
      }
    }
    if (owner_.done()) return kernel::ExitAction{};
    waited_ = true;
    return kernel::SyscallAction{
        "clock_nanosleep",
        kernel::ProgramBuilder{}.block(owner_.wq_).build()};
  }

 private:
  CyclicTest& owner_;
  bool waited_ = false;
};

CyclicTest::CyclicTest(kernel::Kernel& kernel, Params params)
    : kernel_(kernel),
      params_(params),
      wq_(kernel.create_wait_queue("cyclictest")) {
  SIM_ASSERT(params_.cycles > 0 && params_.period > 0);
  kernel::Kernel::TaskParams tp;
  tp.name = "cyclictest";
  tp.policy = kernel::SchedPolicy::kFifo;
  tp.rt_priority = params_.rt_priority;
  tp.affinity = params_.affinity;
  tp.mlocked = true;
  tp.memory_intensity = 0.15;
  task_ = &kernel.create_task(std::move(tp), std::make_unique<Behavior>(*this));
}

void CyclicTest::start() {
  timer_ = kernel_.arm_periodic_timer(wq_, params_.period);
}

}  // namespace rt

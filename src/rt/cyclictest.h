// cyclictest-equivalent: periodic-timer wakeup latency.
//
// The third classic RT measurement (alongside the paper's realfeel and
// RCIM tests): a SCHED_FIFO task sleeps on a kernel periodic timer and
// measures how late each wakeup ran relative to the timer's ideal expiry.
// Exercises the timer subsystem + scheduler wake path with no device
// interrupt involved, so it isolates *scheduling* latency:
//   latency = (actual run time) - (ideal expiry time)
// On a 2.4 kernel without the POSIX-timers patch the ideal expiries are
// themselves jiffy-quantized; the measurement is against the quantized
// schedule, as the real cyclictest sees through clock_nanosleep.
#pragma once

#include <cstdint>
#include <optional>

#include "kernel/kernel.h"
#include "metrics/histogram.h"
#include "sim/trace.h"

namespace rt {

class CyclicTest {
 public:
  struct Params {
    sim::Duration period = sim::kMillisecond;
    std::uint64_t cycles = 100'000;
    int rt_priority = 95;
    hw::CpuMask affinity;  ///< empty = all CPUs
  };

  CyclicTest(kernel::Kernel& kernel, Params params);

  /// Arm the periodic timer. Call after boot.
  void start();

  [[nodiscard]] kernel::Task& task() { return *task_; }
  [[nodiscard]] bool done() const { return collected_ >= params_.cycles; }
  [[nodiscard]] std::uint64_t collected() const { return collected_; }

  /// Wakeup latency vs the timer's actual expiry instants.
  [[nodiscard]] const metrics::LatencyHistogram& latencies() const {
    return latencies_;
  }

  /// Decomposition of the worst wakeup latency observed so far. Present
  /// only when the engine's chain tracer was enabled before start().
  [[nodiscard]] const std::optional<sim::LatencyChain>& worst_chain() const {
    return worst_chain_;
  }

 private:
  class Behavior;

  kernel::Kernel& kernel_;
  Params params_;
  kernel::Task* task_ = nullptr;
  kernel::WaitQueueId wq_;
  kernel::Kernel::TimerId timer_ = -1;
  sim::Time last_expiry_ = 0;
  metrics::LatencyHistogram latencies_;
  std::optional<sim::LatencyChain> worst_chain_;
  std::uint64_t collected_ = 0;
};

}  // namespace rt
